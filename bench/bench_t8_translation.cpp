// T8 — the cost of the "generic" alternative: crash-to-Byzantine
// translation of the crash-tolerant renaming [14], versus the paper's
// native Alg. 1.
//
// Section I's case against the translation approach of [3]/[13] has two
// parts: (a) it blows up message and step complexity (every simulated
// message is echoed by everyone), and (b) it presupposes that receivers
// can attribute messages to senders — in which case renaming is trivial
// anyway. This bench measures (a): steps, messages, and wire bytes of
// the translated pipeline next to Alg. 1 on the same instances. (b) is
// structural: the translated row only runs with scramble_links off.

#include <iostream>
#include <string>

#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;
  std::cout << "T8: crash-to-Byzantine translation of [14] vs native Alg. 1\n\n";
  obs::BenchReporter reporter("bench_t8");
  trace::Table table({"N", "t", "pipeline", "steps", "correct msgs", "wire MB", "max name",
                      "verdict"});
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{7, 2}, {13, 4}, {25, 8}, {40, 13}}) {
    for (const core::Algorithm algorithm :
         {core::Algorithm::kOpRenaming, core::Algorithm::kTranslatedRenaming}) {
      core::ScenarioConfig config;
      config.params = {.n = n, .t = t};
      config.algorithm = algorithm;
      // Same adversary class for both rows: silent keeps the cost
      // comparison apples-to-apples (costs are adversary-independent for
      // correct processes).
      config.adversary = "silent";
      config.seed = 8;
      const core::ScenarioResult result =
          reporter.run(config, std::string(core::to_string(algorithm)) + " N=" +
                                   std::to_string(n) + " t=" + std::to_string(t));
      table.add_row({std::to_string(n), std::to_string(t),
                     std::string(core::to_string(algorithm)), std::to_string(result.run.rounds),
                     std::to_string(result.run.metrics.total_correct_messages()),
                     trace::fmt_double(static_cast<double>(result.run.metrics.total_correct_bits()) /
                                           (8.0 * 1024.0 * 1024.0),
                                       3),
                     std::to_string(result.report.max_name),
                     result.report.all_ok() ? "all ok" : result.report.detail});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nExpected: the translated pipeline doubles the crash protocol's steps (ending near\n"
         "Alg. 1's count, since [14] already costs 1+3log(t)+3) but multiplies messages and\n"
         "bytes by ~N (every cast re-broadcast by everyone) — the measured form of Section\n"
         "I's first objection. Its second objection is structural: this row only exists in\n"
         "the sender-authenticated model, where renaming is trivial to begin with.\n";
  reporter.announce(std::cout);
  return 0;
}
