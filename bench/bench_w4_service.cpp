// W4 — renaming-as-a-service soak: drives svc::Scheduler the way
// byzrenamed does, with three tenants submitting a mixed protocol and
// adversary workload (op/const/fast × idflood/split/asymflood/
// orderbreak) from concurrent submitter threads that honor admission
// backpressure (sleep-and-retry on 429-equivalent rejections). After
// the concurrent soak, every scenario is re-evaluated serially on one
// thread and the two verdict sets are compared byte-for-byte through
// svc::write_verdict_document — the service-plane restatement of the
// repro guarantee that a verdict is a pure function of its scenario.
//
// Emits bench/out/BENCH_service.json (byzrename.series/1 lines); the
// committed copy under bench/baseline/ is the CI reference: mismatches
// must be exactly zero, throughput within 0.75x of baseline, p99
// latency within 1.5x.
//
// Latency is measured per instance from submit-admission to
// completion (queueing included — that is what a service client
// experiences), reported as p50/p99/mean milliseconds.
//
// Heap allocations are counted through the shared obs::AllocProfiler
// interposition (obs/prof/alloc_interpose.h — the one definition of
// the counting operator new this binary gets): allocs-per-instance for
// the concurrent soak (scheduler + queueing overhead included) and for
// the serial ground-truth pass (pure evaluate_scenario cost). The
// serial figure is single-threaded and deterministic; the soak figure
// moves with thread interleaving and is informational.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm.h"
#include "exp/repro.h"
#include "obs/bench_report.h"
#include "obs/prof/alloc_interpose.h"
#include "svc/api.h"
#include "svc/scheduler.h"

namespace {

using namespace byzrename;

std::uint64_t alloc_count() { return obs::prof::AllocProfiler::process_counts().count; }

constexpr std::size_t kDefaultInstances = 10000;
constexpr int kDefaultThreads = 8;
constexpr std::size_t kBatch = 64;
const char* const kTenants[] = {"alpha", "beta", "gamma"};
constexpr std::size_t kTenantCount = sizeof(kTenants) / sizeof(kTenants[0]);

/// Instance index -> scenario, deterministically. Small systems keep a
/// single instance in the low-millisecond range so a 10k soak stays a
/// bench, not a campaign; the orderbreak/no-validation slice makes the
/// violation counters move (verdict kind diversity is part of what the
/// byte-compare must survive).
exp::ReproScenario scenario_for(std::size_t index) {
  exp::ReproScenario scenario;
  const std::uint64_t seed = 0x57a7u + index;
  switch (index % 4) {
    case 0:
      scenario.algorithm = *core::algorithm_from_token("op");
      scenario.params = {.n = 10, .t = 3};
      scenario.adversary = "idflood";
      break;
    case 1:
      scenario.algorithm = *core::algorithm_from_token("const");
      scenario.params = {.n = 16, .t = 3};
      scenario.adversary = "split";
      break;
    case 2:
      scenario.algorithm = *core::algorithm_from_token("fast");
      scenario.params = {.n = 11, .t = 2};
      scenario.adversary = "asymflood";
      break;
    default:
      scenario.algorithm = *core::algorithm_from_token("op");
      scenario.params = {.n = 10, .t = 3};
      scenario.adversary = "orderbreak";
      scenario.validate_votes = false;
      break;
  }
  scenario.seed = seed;
  return scenario;
}

std::string normal_form(const exp::ReproScenario& scenario, const exp::ReproVerdict& verdict) {
  std::ostringstream os;
  svc::write_verdict_document(os, scenario, verdict);
  return os.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct SoakResult {
  double seconds = 0;
  std::uint64_t rejections = 0;
  std::vector<double> latencies;  ///< seconds, unordered
  /// seed -> verdict normal form. Instance ids come from a counter
  /// shared across sessions, so a tenant's ids are not contiguous once
  /// batches interleave; the seed is the stable per-instance key (it
  /// encodes the instance index by construction).
  std::map<std::uint64_t, std::string> verdicts;
};

SoakResult run_soak(std::size_t instances, int threads) {
  SoakResult result;
  std::mutex latency_mutex;

  svc::SchedulerOptions options;
  options.threads = threads;
  // Tight enough that the flood actually trips admission (the retry
  // loop below is the cooperative-backpressure half of the bench),
  // roomy enough that workers never starve.
  options.admission.max_queue_depth = 2048;
  options.admission.max_session_inflight = 1024;
  options.admission.max_batch = 256;
  options.on_complete = [&](const svc::InstanceResult&, double latency_seconds) {
    // Called with the scheduler mutex held; keep it to a push.
    result.latencies.push_back(latency_seconds);
  };

  svc::Scheduler scheduler(options);
  for (const char* tenant : kTenants) scheduler.open_session(tenant);

  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> rejections{0};
  std::vector<std::thread> submitters;
  for (std::size_t tenant_index = 0; tenant_index < kTenantCount; ++tenant_index) {
    submitters.emplace_back([&, tenant_index] {
      const std::string tenant = kTenants[tenant_index];
      std::vector<exp::ReproScenario> batch;
      batch.reserve(kBatch);
      // Tenant k owns instance indices k, k+3, k+6, ...
      for (std::size_t index = tenant_index; index < instances;) {
        batch.clear();
        for (std::size_t i = index; i < instances && batch.size() < kBatch;
             i += kTenantCount) {
          batch.push_back(scenario_for(i));
        }
        for (;;) {
          const svc::Scheduler::SubmitOutcome outcome = scheduler.submit(tenant, batch);
          if (outcome.admitted) break;
          // Admission said "not now": back off briefly and retry. The
          // HTTP client analogue honors Retry-After; in-process the
          // drain rate is milliseconds, so the hint floor (1s) would
          // just idle the bench.
          rejections.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        index += kBatch * kTenantCount;
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  scheduler.wait_idle();
  result.seconds = seconds_since(start);
  result.rejections = rejections.load();

  for (const char* tenant : kTenants) {
    const svc::Scheduler::PollResult poll = scheduler.poll(tenant, 0, 0);
    for (const svc::InstanceResult& item : poll.items) {
      result.verdicts[item.scenario.seed] = normal_form(item.scenario, item.verdict);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t instances = kDefaultInstances;
  int threads = kDefaultThreads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      instances = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_w4_service [--instances N] [--threads N]\n");
      return 2;
    }
  }

  obs::BenchReporter reporter("BENCH_service.json");
  std::printf("W4 — service soak: %zu instances, %zu tenants, %d worker threads\n", instances,
              kTenantCount, threads);

  const std::uint64_t soak_allocs_before = alloc_count();
  SoakResult soak = run_soak(instances, threads);
  const double soak_allocs_per_instance =
      static_cast<double>(alloc_count() - soak_allocs_before) / static_cast<double>(instances);

  if (soak.verdicts.size() != instances) {
    std::fprintf(stderr, "FATAL: %zu instances submitted, %zu verdicts polled\n", instances,
                 soak.verdicts.size());
    return 1;
  }

  // Serial ground truth: same scenarios, one at a time, one thread, no
  // scheduler — exp::evaluate_scenario exactly as `byzrename
  // --verdict-out` would produce them.
  const auto serial_start = std::chrono::steady_clock::now();
  const std::uint64_t serial_allocs_before = alloc_count();
  std::size_t mismatches = 0;
  for (std::size_t index = 0; index < instances; ++index) {
    const exp::ReproScenario scenario = scenario_for(index);
    const std::string expected = normal_form(scenario, exp::evaluate_scenario(scenario));
    const auto found = soak.verdicts.find(scenario.seed);
    if (found == soak.verdicts.end() || found->second != expected) {
      if (++mismatches <= 5) {
        std::fprintf(stderr, "MISMATCH instance %zu\n  serial:  %s", index, expected.c_str());
        if (found != soak.verdicts.end()) {
          std::fprintf(stderr, "  service: %s", found->second.c_str());
        }
      }
    }
  }
  const double serial_seconds = seconds_since(serial_start);
  const double serial_allocs_per_instance =
      static_cast<double>(alloc_count() - serial_allocs_before) /
      static_cast<double>(instances);

  std::sort(soak.latencies.begin(), soak.latencies.end());
  const auto percentile = [&](double p) {
    if (soak.latencies.empty()) return 0.0;
    const std::size_t at = std::min(
        soak.latencies.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(soak.latencies.size())));
    return soak.latencies[at];
  };
  double latency_sum = 0;
  for (const double latency : soak.latencies) latency_sum += latency;
  const double mean_ms =
      soak.latencies.empty() ? 0.0
                             : latency_sum / static_cast<double>(soak.latencies.size()) * 1e3;
  const double p50_ms = percentile(0.50) * 1e3;
  const double p99_ms = percentile(0.99) * 1e3;
  const double service_rate = static_cast<double>(instances) / soak.seconds;
  const double serial_rate = static_cast<double>(instances) / serial_seconds;

  std::printf("%-28s %12s\n", "metric", "value");
  std::printf("%-28s %12.1f\n", "instances_per_second", service_rate);
  std::printf("%-28s %12.1f\n", "serial_instances_per_second", serial_rate);
  std::printf("%-28s %12.2f\n", "speedup_vs_serial", service_rate / serial_rate);
  std::printf("%-28s %12.3f\n", "latency_p50_ms", p50_ms);
  std::printf("%-28s %12.3f\n", "latency_p99_ms", p99_ms);
  std::printf("%-28s %12.3f\n", "latency_mean_ms", mean_ms);
  std::printf("%-28s %12llu\n", "admission_rejections",
              static_cast<unsigned long long>(soak.rejections));
  std::printf("%-28s %12zu\n", "verdict_mismatches", mismatches);
  std::printf("%-28s %12.1f\n", "soak_allocs_per_instance", soak_allocs_per_instance);
  std::printf("%-28s %12.1f\n", "serial_allocs_per_instance", serial_allocs_per_instance);

  reporter.write_series("soak",
                        {{"instances", static_cast<double>(instances)},
                         {"threads", static_cast<double>(threads)},
                         {"instances_per_second", service_rate},
                         {"latency_p50_ms", p50_ms},
                         {"latency_p99_ms", p99_ms},
                         {"latency_mean_ms", mean_ms},
                         {"admission_rejections", static_cast<double>(soak.rejections)},
                         {"verdict_mismatches", static_cast<double>(mismatches)},
                         {"allocs_per_instance", soak_allocs_per_instance}});
  reporter.write_series("serial", {{"instances_per_second", serial_rate},
                                   {"speedup", service_rate / serial_rate},
                                   {"allocs_per_instance", serial_allocs_per_instance}});
  reporter.announce(std::cout);

  if (mismatches != 0) {
    std::fprintf(stderr, "FATAL: %zu verdicts differ between service and serial execution\n",
                 mismatches);
    return 1;
  }
  return 0;
}
