// F2 — namespace size vs fault budget t at fixed N, across the three
// regimes the paper identifies:
//   N > 3t       : Alg. 1, namespace N+t-1,
//   N > t^2+2t   : Alg. 1 constant-time, namespace N (strong),
//   N > 2t^2+t   : Alg. 4, namespace N^2 in 2 steps.
// CSV series: measured max name per (algorithm, t) under id flooding.

#include <iostream>
#include <string>

#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/csv.h"

int main() {
  using namespace byzrename;
  const int n = 50;
  std::cout << "F2: namespace used vs t at N=" << n << " (idflood adversary)\n";
  std::cout << "# '-' = (n,t) outside that algorithm's regime\n";
  obs::BenchReporter reporter("bench_f2");
  trace::CsvWriter csv(std::cout, {"t", "alg1_maxname", "alg1_bound", "const_maxname",
                                   "const_bound", "fast_maxname", "fast_bound"});
  for (int t = 1; 3 * t < n; ++t) {
    std::vector<std::string> row{std::to_string(t)};
    {
      core::ScenarioConfig config;
      config.params = {.n = n, .t = t};
      config.adversary = "idflood";
      config.seed = 2;
      const auto result = reporter.run(config, "op t=" + std::to_string(t));
      row.push_back(std::to_string(result.report.max_name));
      row.push_back(std::to_string(n + t - 1));
    }
    if (core::valid_for_constant_time({.n = n, .t = t})) {
      core::ScenarioConfig config;
      config.params = {.n = n, .t = t};
      config.algorithm = core::Algorithm::kOpRenamingConstantTime;
      config.adversary = "idflood";
      config.seed = 2;
      const auto result = reporter.run(config, "const t=" + std::to_string(t));
      row.push_back(std::to_string(result.report.max_name));
      row.push_back(std::to_string(n));
    } else {
      row.push_back("-");
      row.push_back("-");
    }
    if (core::valid_for_fast_renaming({.n = n, .t = t})) {
      core::ScenarioConfig config;
      config.params = {.n = n, .t = t};
      config.algorithm = core::Algorithm::kFastRenaming;
      config.adversary = "idflood";
      config.seed = 2;
      const auto result = reporter.run(config, "fast t=" + std::to_string(t));
      row.push_back(std::to_string(result.report.max_name));
      row.push_back(std::to_string(static_cast<long>(n) * n));
    } else {
      row.push_back("-");
      row.push_back("-");
    }
    csv.write_row(row);
  }
  reporter.announce(std::cout);
  return 0;
}
