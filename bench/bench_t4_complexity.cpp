// T4 — Section IV-D complexity claims for Alg. 1:
//   steps   = 3*ceil(log2 t) + 7,
//   messages= O(N^2 log t)   (all-to-all each step),
//   msg size= O((N+t-1)(log Nmax + log N)) bits.
//
// The table reports measured counters next to the formulas. The message
// constant shown is measured_messages / (N^2 * steps) — it should hover
// around 1 plus the per-id Echo/Ready fan-out of the selection phase.
//
// Runs on the src/exp campaign engine: the 9-point diagonal executes in
// parallel on the work-stealing pool, and bench_t4.jsonl carries the
// per-run byzrename.run/1 lines plus deterministic byzrename.campaign/1
// cell aggregates.

#include <iostream>
#include <string>

#include "core/harness.h"
#include "exp/campaign.h"
#include "obs/bench_report.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;
  std::cout << "T4: Alg. 1 complexity — steps, messages, message size vs paper formulas\n\n";
  obs::BenchReporter reporter("bench_t4");

  exp::CampaignSpec spec;
  spec.name = "bench_t4";
  spec.algorithms = {core::Algorithm::kOpRenaming};
  spec.systems = {{.n = 4, .t = 1},   {.n = 7, .t = 2},   {.n = 10, .t = 3},
                  {.n = 13, .t = 4},  {.n = 22, .t = 7},  {.n = 31, .t = 10},
                  {.n = 40, .t = 13}, {.n = 52, .t = 17}, {.n = 64, .t = 21}};
  spec.adversaries = {"split"};  // keeps the voting phase fully loaded
  spec.master_seed = 11;

  exp::CampaignOptions options;
  options.sample_probes = true;
  const exp::CampaignResult result = reporter.run_campaign(spec, options);

  trace::Table table({"N", "t", "steps", "3log(t)+7", "correct msgs", "N^2*steps",
                      "max msg bits", "(N+t)(64+log N) bits"});
  for (std::size_t slot = 0; slot < result.cells.size(); ++slot) {
    const exp::CampaignCell& cell = result.cells[slot];
    const exp::RunRecord& run = result.runs[slot];  // reps == 1: run slot == cell slot
    const int n = cell.params.n;
    const int t = cell.params.t;
    const int formula_steps = 3 * core::ceil_log2(t) + 7;
    const long nn_steps = static_cast<long>(n) * n * run.rounds;
    const std::size_t size_bound =
        static_cast<std::size_t>(n + t) * (64 + static_cast<std::size_t>(core::ceil_log2(n)) + 40);
    table.add_row({std::to_string(n), std::to_string(t), std::to_string(run.rounds),
                   std::to_string(formula_steps), std::to_string(run.correct_messages),
                   std::to_string(nn_steps), std::to_string(run.max_correct_message_bits),
                   std::to_string(size_bound)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: steps == formula; correct msgs within a small constant of N^2*steps\n"
               "(the selection phase sends one Echo/Ready per id, adding a factor <= N+t-1 for\n"
               "4 of the steps); max message bits below the size bound. Rank encodings grow by\n"
               "~log2(N) bits per voting round (exact rationals), remaining O((N+t) log N).\n";
  std::cout << "\n[campaign] " << result.executed << " runs on " << result.threads
            << " thread(s) in " << result.wall_seconds << "s (" << result.steals << " steals)\n";
  reporter.announce(std::cout);
  return result.all_ok() ? 0 : 1;
}
