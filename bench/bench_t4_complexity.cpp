// T4 — Section IV-D complexity claims for Alg. 1:
//   steps   = 3*ceil(log2 t) + 7,
//   messages= O(N^2 log t)   (all-to-all each step),
//   msg size= O((N+t-1)(log Nmax + log N)) bits.
//
// The table reports measured counters next to the formulas. The message
// constant shown is measured_messages / (N^2 * steps) — it should hover
// around 1 plus the per-id Echo/Ready fan-out of the selection phase.

#include <iostream>
#include <string>

#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;
  std::cout << "T4: Alg. 1 complexity — steps, messages, message size vs paper formulas\n\n";
  obs::BenchReporter reporter("bench_t4");
  trace::Table table({"N", "t", "steps", "3log(t)+7", "correct msgs", "N^2*steps",
                      "max msg bits", "(N+t)(64+log N) bits"});
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{
           {4, 1}, {7, 2}, {10, 3}, {13, 4}, {22, 7}, {31, 10}, {40, 13}, {52, 17}, {64, 21}}) {
    core::ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "split";  // keeps the voting phase fully loaded
    config.seed = 11;
    const core::ScenarioResult result =
        reporter.run(config, "N=" + std::to_string(n) + " t=" + std::to_string(t));
    const int formula_steps = 3 * core::ceil_log2(t) + 7;
    const long nn_steps = static_cast<long>(n) * n * result.run.rounds;
    const std::size_t size_bound =
        static_cast<std::size_t>(n + t) * (64 + static_cast<std::size_t>(core::ceil_log2(n)) + 40);
    table.add_row({std::to_string(n), std::to_string(t), std::to_string(result.run.rounds),
                   std::to_string(formula_steps),
                   std::to_string(result.run.metrics.total_correct_messages()),
                   std::to_string(nn_steps),
                   std::to_string(result.run.metrics.max_correct_message_bits()),
                   std::to_string(size_bound)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: steps == formula; correct msgs within a small constant of N^2*steps\n"
               "(the selection phase sends one Echo/Ready per id, adding a factor <= N+t-1 for\n"
               "4 of the steps); max message bits below the size bound. Rank encodings grow by\n"
               "~log2(N) bits per voting round (exact rationals), remaining O((N+t) log N).\n";
  reporter.announce(std::cout);
  return 0;
}
