// F3 — substrate check: the Byzantine approximate agreement of [7]
// contracts the spread of correct values by at least
// sigma_t = floor((N-2t)/t)+1 per round (Lemma IV.8's engine).
//
// Runs the standalone scalar AA against an equivocating adversary and
// prints the measured per-round contraction factor next to sigma_t, plus
// the crash-model mean-averaging AA for contrast.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "aa/byzantine_aa.h"
#include "aa/crash_aa.h"
#include "core/params.h"
#include "numeric/rational.h"
#include "obs/bench_report.h"
#include "sim/network.h"
#include "sim/runner.h"
#include "trace/table.h"

namespace {

using namespace byzrename;
using numeric::Rational;

class Equivocator final : public sim::ProcessBehavior {
 public:
  explicit Equivocator(int n) : n_(n) {}
  void on_send(sim::Round, sim::Outbox& out) override {
    for (int dest = 0; dest < n_; ++dest) {
      out.send_to(dest, sim::AAValueMsg{Rational(dest < n_ / 2 ? -1'000'000 : 1'000'000)});
    }
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  int n_;
};

Rational spread_of(const std::vector<Rational>& values) {
  Rational lo = values.front();
  Rational hi = values.front();
  for (const Rational& v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}

void run_case(obs::BenchReporter& reporter, trace::Table& table, int n, int t, int rounds) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  std::vector<bool> byzantine;
  const int correct = n - t;
  for (int i = 0; i < correct; ++i) {
    behaviors.push_back(std::make_unique<aa::ByzantineAAProcess>(
        sim::SystemParams{.n = n, .t = t}, Rational(i * 1000), rounds));
    byzantine.push_back(false);
  }
  for (int i = 0; i < t; ++i) {
    behaviors.push_back(std::make_unique<Equivocator>(n));
    byzantine.push_back(true);
  }
  sim::Network net(std::move(behaviors), std::move(byzantine), sim::Rng(12));

  std::vector<Rational> spreads;
  spreads.push_back(Rational((correct - 1) * 1000));
  sim::run_to_completion(net, rounds, [&](sim::Round, const sim::Network& network) {
    std::vector<Rational> values;
    for (sim::ProcessIndex i = 0; i < correct; ++i) {
      values.push_back(dynamic_cast<const aa::ByzantineAAProcess&>(network.behavior(i)).value());
    }
    spreads.push_back(spread_of(values));
  });

  double worst_factor = 1e18;
  for (std::size_t r = 1; r < spreads.size(); ++r) {
    if (spreads[r].is_zero()) break;
    worst_factor = std::min(worst_factor, spreads[r - 1].to_double() / spreads[r].to_double());
  }
  const int constructive = (n - 2 * t - 1) / t + 1;  // |select_t| on N-2t elements
  table.add_row({std::to_string(n), std::to_string(t),
                 std::to_string(core::sigma_t({.n = n, .t = t})), std::to_string(constructive),
                 trace::fmt_double(worst_factor, 2),
                 trace::fmt_double(spreads.back().to_double(), 9), std::to_string(rounds)});

  // Not a run_scenario workload, so emit the spread trajectory as a
  // byzrename.series/1 line instead of a run report.
  std::vector<std::pair<std::string, double>> series;
  series.emplace_back("sigma_t", core::sigma_t({.n = n, .t = t}));
  series.emplace_back("select_t", constructive);
  series.emplace_back("min_factor", worst_factor);
  for (std::size_t r = 0; r < spreads.size(); ++r) {
    series.emplace_back("spread_r" + std::to_string(r), spreads[r].to_double());
  }
  reporter.write_series("N=" + std::to_string(n) + " t=" + std::to_string(t), series);
}

}  // namespace

int main() {
  std::cout << "F3: scalar Byzantine AA contraction per round vs sigma_t (equivocating faults)\n\n";
  trace::Table table(
      {"N", "t", "sigma_t (paper)", "|select_t|", "measured min factor", "final spread", "rounds"});
  obs::BenchReporter reporter("bench_f3");
  run_case(reporter, table, 4, 1, 8);
  run_case(reporter, table, 7, 2, 8);
  run_case(reporter, table, 10, 3, 8);
  run_case(reporter, table, 13, 3, 8);
  run_case(reporter, table, 25, 8, 8);
  run_case(reporter, table, 40, 5, 8);
  run_case(reporter, table, 64, 21, 8);
  table.print(std::cout);
  std::cout
      << "\nExpected: measured factor >= |select_t| = floor((N-2t-1)/t)+1 in every row.\n"
         "Reproduction note: the paper states the rate as sigma_t = floor((N-2t)/t)+1, but its\n"
         "constructive definition of select_t (\"the smallest and each t-th element after it\")\n"
         "yields floor((N-2t-1)/t)+1 elements — one fewer whenever t divides N-2t (e.g. the\n"
         "N=4,t=1 and N=40,t=5 rows). The measured contraction matches the constructive count.\n"
         "All end-to-end round counts still suffice (bench_t5, tests); see EXPERIMENTS.md.\n";
  reporter.announce(std::cout);
  return 0;
}
