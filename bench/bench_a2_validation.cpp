// A2 (ablation) — what the isValid filter (Alg. 2) is for.
//
// The paper's Section IV-B argues that replacing Okun's crash-tolerant
// AA with Byzantine AA is NOT enough: without per-vote validation,
// Byzantine votes can make the per-id agreements converge inconsistently
// and destroy the order the stretch factor delta created. This ablation
// runs the gap-collapsing "orderbreak" adversary twice — validation on
// (production) and off (ablated) — and reports the minimum pairwise rank
// gap between adjacent correct ids at decision time. With validation on
// the gap never drops below delta (Corollary IV.6); with it off the
// invariant collapses, and with it every proof of Theorem IV.10.

#include <iostream>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/op_renaming.h"
#include "obs/bench_report.h"
#include "trace/table.h"

namespace {

using namespace byzrename;
using numeric::Rational;

struct Probe {
  Rational min_gap;       ///< min over processes/adjacent timely id pairs
  bool order_ok = false;
  bool unique_ok = false;
};

Probe probe(obs::BenchReporter& reporter, int n, int t, bool validate) {
  core::ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.adversary = "orderbreak";
  config.options.validate_votes = validate;
  config.seed = 1;
  Probe result;
  result.min_gap = Rational(1'000'000);
  const int last = core::expected_steps(core::Algorithm::kOpRenaming, config.params);
  config.observer = [&result, last](sim::Round round, const sim::Network& net) {
    if (round != last) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& op = dynamic_cast<const core::OpRenamingProcess&>(net.behavior(i));
      const Rational* previous = nullptr;
      for (const sim::Id id : op.timely()) {
        const auto it = op.ranks().find(id);
        if (it == op.ranks().end()) continue;
        if (previous != nullptr) result.min_gap = std::min(result.min_gap, it->second - *previous);
        previous = &it->second;
      }
    }
  };
  const core::ScenarioResult outcome =
      reporter.run(config, "N=" + std::to_string(n) + " t=" + std::to_string(t) +
                               " validate=" + (validate ? "on" : "off"));
  result.order_ok = outcome.report.order_preservation;
  result.unique_ok = outcome.report.uniqueness;
  return result;
}

}  // namespace

int main() {
  std::cout << "A2: validation ablation — minimum adjacent-rank gap at decision time\n"
            << "(orderbreak adversary: gap-collapsing votes; delta-gap must survive)\n\n";
  trace::Table table(
      {"N", "t", "isValid", "min gap", "delta", "gap >= delta", "order", "unique"});
  obs::BenchReporter reporter("bench_a2");
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{10, 3}, {13, 4}, {16, 5}, {25, 8}}) {
    const Rational d = core::delta({.n = n, .t = t});
    for (const bool validate : {true, false}) {
      const Probe result = probe(reporter, n, t, validate);
      table.add_row({std::to_string(n), std::to_string(t), validate ? "on" : "OFF (ablated)",
                     trace::fmt_double(result.min_gap.to_double(), 6),
                     trace::fmt_double(d.to_double(), 6),
                     result.min_gap >= d ? "yes" : "NO", trace::fmt_bool(result.order_ok),
                     trace::fmt_bool(result.unique_ok)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: with isValid on, min gap >= delta in every row (Corollary IV.6)\n"
               "and all properties hold. With isValid off, the gap collapses below delta —\n"
               "the invariant every correctness proof of Alg. 1 rests on is gone, and name\n"
               "collisions follow wherever the collapsed pair straddles a rounding boundary.\n";
  reporter.announce(std::cout);
  return 0;
}
