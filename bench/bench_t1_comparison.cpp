// T1 — headline comparison table (paper Sections I, III, VII).
//
// One row per algorithm per system size: resilience requirement, measured
// steps, namespace bound vs largest name actually used, message count,
// and whether every renaming property held under that row's worst
// registered adversary. The paper states these as asymptotic claims; this
// table is the measured instantiation.

#include <iostream>
#include <string>

#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/table.h"

namespace {

using namespace byzrename;

struct Row {
  core::Algorithm algorithm;
  const char* resilience;
  const char* namespace_formula;
  const char* adversary;
  const char* order;
};

void run_size(obs::BenchReporter& reporter, trace::Table& table, int n, int t) {
  const Row rows[] = {
      {core::Algorithm::kOpRenaming, "N>3t", "N+t-1", "idflood", "yes"},
      {core::Algorithm::kOpRenamingConstantTime, "N>t^2+2t", "N", "idflood", "yes"},
      {core::Algorithm::kFastRenaming, "N>2t^2+t", "N^2", "suppress", "yes"},
      {core::Algorithm::kConsensusRenaming, "N>4t", "N", "random", "yes"},
      {core::Algorithm::kBitRenaming, "N>3t", "2N", "idflood", "no"},
      {core::Algorithm::kCrashRenaming, "crash only", "N", "crash", "yes"},
      {core::Algorithm::kTranslatedRenaming, "N>3t, auth links", "N", "random", "yes"},
  };
  for (const Row& row : rows) {
    const sim::SystemParams params{.n = n, .t = t};
    const bool in_regime =
        (row.algorithm != core::Algorithm::kOpRenamingConstantTime ||
         core::valid_for_constant_time(params)) &&
        (row.algorithm != core::Algorithm::kFastRenaming || core::valid_for_fast_renaming(params)) &&
        (row.algorithm != core::Algorithm::kConsensusRenaming || n > 4 * t);
    if (!in_regime) {
      table.add_row({std::to_string(n), std::to_string(t),
                     std::string(core::to_string(row.algorithm)), row.resilience, "-", "-",
                     row.namespace_formula, "-", "-", "out of regime"});
      continue;
    }
    core::ScenarioConfig config;
    config.params = params;
    config.algorithm = row.algorithm;
    config.adversary = row.adversary;
    config.seed = 2013;
    const core::ScenarioResult result =
        reporter.run(config, std::string(core::to_string(row.algorithm)) + " N=" +
                                 std::to_string(n) + " t=" + std::to_string(t));
    table.add_row({std::to_string(n), std::to_string(t),
                   std::string(core::to_string(row.algorithm)), row.resilience,
                   std::to_string(result.run.rounds),
                   std::to_string(result.run.metrics.total_messages()), row.namespace_formula,
                   std::to_string(result.report.max_name) + "/" +
                       std::to_string(result.target_namespace),
                   row.order, result.report.all_ok() ? "all ok" : result.report.detail});
  }
}

}  // namespace

int main() {
  std::cout << "T1: algorithm comparison (steps / namespace / messages), worst adversary per row\n"
            << "Paper claims: Alg.1 3log(t)+7 steps & N+t-1 names; Alg.1-const 8 steps & N names;\n"
            << "Alg.4 2 steps & N^2 names; consensus renaming linear steps; [15]-style 2N names;\n"
            << "[14]-style crash baseline log steps & N names.\n\n";
  trace::Table table({"N", "t", "algorithm", "resilience", "steps", "msgs", "M(formula)",
                      "maxname/M", "order", "verdict"});
  obs::BenchReporter reporter("bench_t1");
  run_size(reporter, table, 16, 2);
  run_size(reporter, table, 25, 3);
  run_size(reporter, table, 40, 4);
  run_size(reporter, table, 64, 5);
  table.print(std::cout);
  reporter.announce(std::cout);
  return 0;
}
