// A1 (ablation) — is the paper's iteration budget 3*ceil(log2 t)+3 tight?
//
// Lemma IV.9 claims the residual spread after the prescribed iterations
// is below the decision margin (delta-1)/2. Under the calibrated
// asymmetric flood — which meets Lemma IV.7's initial-discrepancy bound
// with equality and contracts at exactly sigma_t per round — the measured
// residual EXCEEDS the margin for configurations with sigma_t = 2 and
// t >= 4 (e.g. N=13, t=4): the lemma's arithmetic is loose there, and
// roughly 6(N+t) < 4t^2 is needed for the stated chain to go through.
// Order preservation did not actually break in any execution we could
// construct (breaking additionally requires the residual to straddle a
// rounding boundary), but a deployment can buy the proof margin back
// with +1..2 iterations — this table measures that cost/benefit.

#include <iostream>
#include <map>
#include <string>

#include "core/harness.h"
#include "core/probe.h"
#include "obs/bench_report.h"
#include "trace/table.h"

namespace {

using namespace byzrename;
using numeric::Rational;

struct Probe {
  Rational spread;
  bool all_ok = false;
};

Probe probe(obs::BenchReporter& reporter, int n, int t, int iterations, const char* adversary) {
  core::ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.adversary = adversary;
  config.options.approximation_iterations = iterations;
  config.seed = 1;
  Probe result;
  const int last = 4 + iterations;
  config.observer = [&result, last](sim::Round round, const sim::Network& net) {
    if (round == last) result.spread = core::max_rank_spread(net);
  };
  result.all_ok = reporter
                      .run(config, "N=" + std::to_string(n) + " t=" + std::to_string(t) + " k=" +
                                       std::to_string(iterations) + " adversary=" + adversary)
                      .report.all_ok();
  return result;
}

}  // namespace

int main() {
  std::cout << "A1: residual spread after k voting iterations vs the (delta-1)/2 margin\n"
            << "(k0 = paper's 3*ceil(log2 t)+3; asymflood = worst initial discrepancy with\n"
            << "silent votes, hybrid = the same plus valid-vote steering)\n\n";
  trace::Table table({"N", "t", "adversary", "k", "residual spread", "(delta-1)/2", "margin met",
                      "outcome ok"});
  obs::BenchReporter reporter("bench_a1");
  for (const auto& [n, t] :
       std::vector<std::pair<int, int>>{{10, 3}, {13, 4}, {16, 5}, {19, 6}, {25, 8}, {40, 13}}) {
    const int k0 = core::default_approximation_iterations(t);
    // asymflood = worst initial discrepancy, silent votes; hybrid adds
    // valid-vote steering on top of the same discrepancy.
    for (const char* adversary : {"asymflood", "hybrid"}) {
      for (const int k : {k0, k0 + 1, k0 + 2}) {
        const Probe result = probe(reporter, n, t, k, adversary);
        const Rational margin = Rational::of(1, 6 * (n + t));
        table.add_row({std::to_string(n), std::to_string(t), adversary,
                       std::to_string(k) + (k == k0 ? " (paper)" : ""),
                       trace::fmt_double(result.spread.to_double(), 9),
                       trace::fmt_double(margin.to_double(), 9),
                       result.spread < margin ? "yes" : "NO",
                       result.all_ok ? "yes" : "VIOLATION"});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nReproduction finding: rows marked 'NO' exceed Lemma IV.9's stated margin at\n"
               "the paper's iteration count; one or two extra iterations always restore it.\n"
               "No actual renaming-property violation was observed in any run.\n";
  reporter.announce(std::cout);
  return 0;
}
