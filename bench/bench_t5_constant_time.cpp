// T5 — Section V: in the regime N > t^2 + 2t, Alg. 1 with exactly 4
// voting iterations is strong order-preserving renaming in 8 steps.
//   Lemma V.1: namespace exactly N (the flood cannot add a single id).
//   Lemma V.2: after 4 iterations the spread is below (delta-1)/2.

#include <iostream>
#include <map>
#include <string>

#include "core/harness.h"
#include "core/probe.h"
#include "obs/bench_report.h"
#include "trace/table.h"

using namespace byzrename;
using numeric::Rational;

int main() {
  std::cout << "T5: constant-time strong renaming (Theorem V.3) at the regime edge N=t^2+2t+1\n\n";
  obs::BenchReporter reporter("bench_t5");
  trace::Table table({"N", "t", "adversary", "steps", "max name", "M=N", "final spread",
                      "(delta-1)/2", "verdict"});
  for (const int t : {1, 2, 3, 4, 5}) {
    const int n = t * t + 2 * t + 1;
    for (const char* adversary : {"idflood", "split", "suppress"}) {
      core::ScenarioConfig config;
      config.params = {.n = n, .t = t};
      config.algorithm = core::Algorithm::kOpRenamingConstantTime;
      config.adversary = adversary;
      config.seed = 5;
      Rational spread;
      config.observer = [&spread](sim::Round round, const sim::Network& net) {
        if (round == 8) spread = core::max_rank_spread(net);
      };
      const core::ScenarioResult result = reporter.run(
          config,
          "N=" + std::to_string(n) + " t=" + std::to_string(t) + " adversary=" + adversary);
      const Rational margin = Rational::of(1, 6 * (n + t));
      table.add_row({std::to_string(n), std::to_string(t), adversary,
                     std::to_string(result.run.rounds), std::to_string(result.report.max_name),
                     std::to_string(n), trace::fmt_double(spread.to_double(), 9),
                     trace::fmt_double(margin.to_double(), 9),
                     result.report.all_ok() && spread < margin ? "ok" : "VIOLATION"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: 8 steps, max name <= N (strong), spread < (delta-1)/2 in every row.\n";
  reporter.announce(std::cout);
  return 0;
}
