// T7 — "renaming is cheaper than consensus" (Sections I and III).
//
// Runs Alg. 1 and the consensus-based renaming baseline at matched (N, t)
// and reports rounds and messages. The paper's claim is asymptotic
// (O(log t) vs Omega(t) rounds); the crossover in measured rounds as t
// grows is the reproduced shape. Note the consensus baseline additionally
// *requires* sender-authenticated links — it could not run at all in the
// paper's anonymous-link model (see DESIGN.md).

#include <iostream>
#include <string>

#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;
  std::cout << "T7: Alg. 1 (O(log t) steps) vs phase-king consensus renaming (O(t) steps)\n\n";
  obs::BenchReporter reporter("bench_t7");
  trace::Table table({"N", "t", "alg1 steps", "alg1 msgs", "consensus steps", "consensus msgs",
                      "alg1 ok", "consensus ok"});
  for (const int t : {1, 2, 3, 4, 6, 8, 10, 12}) {
    const int n = 4 * t + 2;  // satisfies both N > 3t and N > 4t
    core::ScenarioConfig renaming;
    renaming.params = {.n = n, .t = t};
    renaming.algorithm = core::Algorithm::kOpRenaming;
    renaming.adversary = "split";
    renaming.seed = 4;
    const auto renaming_result =
        reporter.run(renaming, "op N=" + std::to_string(n) + " t=" + std::to_string(t));

    core::ScenarioConfig consensus;
    consensus.params = {.n = n, .t = t};
    consensus.algorithm = core::Algorithm::kConsensusRenaming;
    consensus.adversary = "random";
    consensus.seed = 4;
    const auto consensus_result =
        reporter.run(consensus, "consensus N=" + std::to_string(n) + " t=" + std::to_string(t));

    table.add_row({std::to_string(n), std::to_string(t),
                   std::to_string(renaming_result.run.rounds),
                   std::to_string(renaming_result.run.metrics.total_correct_messages()),
                   std::to_string(consensus_result.run.rounds),
                   std::to_string(consensus_result.run.metrics.total_correct_messages()),
                   trace::fmt_bool(renaming_result.report.all_ok()),
                   trace::fmt_bool(consensus_result.report.all_ok())});
  }
  table.print(std::cout);
  std::cout << "\nExpected: Alg. 1 rounds grow like 3 log2(t)+7; consensus rounds like 2t+3.\n"
               "The crossover sits near t=8 and widens quickly after it.\n";
  reporter.announce(std::cout);
  return 0;
}
