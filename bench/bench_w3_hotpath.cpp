// W3 — hot-path benchmark with allocation accounting (engineering).
//
// Pins the two measured hot paths of EXPERIMENTS.md W1 — broadcast
// fan-out in sim::Network and exact-rational trimmed averaging — plus
// full Alg. 1 runs, and emits bench/out/BENCH_hotpath.json (gitignored
// live output) via BenchReporter so every future PR can diff its perf
// against this one. The single tracked copy is the committed baseline
// bench/baseline/BENCH_hotpath.json; CI compares the N=64 macro case
// against it (>25% regression fails the job; see docs/PERFORMANCE.md).
//
// Heap allocations are counted through the shared obs::AllocProfiler
// interposition (obs/prof/alloc_interpose.h, included by exactly this
// translation unit), which makes allocs_per_round/allocs_per_run exact
// and hardware-independent — the stable half of the baseline.

#include <chrono>
#include <iostream>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/harness.h"
#include "core/rank_approx.h"
#include "core/voting_kernel.h"
#include "exp/progress.h"
#include "numeric/rational.h"
#include "obs/bench_report.h"
#include "obs/http/exposition.h"
#include "obs/http/http_server.h"
#include "obs/prof/alloc_interpose.h"
#include "obs/prof/profiler.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/rng.h"

namespace {

using namespace byzrename;
using numeric::Rational;
using Clock = std::chrono::steady_clock;

std::uint64_t alloc_count() { return obs::prof::AllocProfiler::process_counts().count; }

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Measurement {
  double unit_seconds = 0;  ///< wall-clock per round / step / run
  double unit_allocs = 0;   ///< heap allocations per round / step / run
};

/// Broadcasts a realistic voting-phase payload every round: N rank
/// entries with exact-rational ranks, the message shape Alg. 1 floods
/// N-to-N during its entire voting phase.
class FanoutBehavior final : public sim::ProcessBehavior {
 public:
  explicit FanoutBehavior(int n) {
    const Rational d = core::delta({.n = n, .t = n / 4});
    msg_.entries.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      msg_.entries.push_back({i + 1, Rational(i + 1) * d});
    }
  }

  void on_send(sim::Round, sim::Outbox& out) override { out.broadcast(msg_); }
  void on_receive(sim::Round, const sim::Inbox& inbox) override { delivered_ += inbox.size(); }
  [[nodiscard]] bool done() const override { return false; }

 private:
  sim::RanksMsg msg_;
  std::size_t delivered_ = 0;
};

/// One synchronous round of all-to-all RanksMsg broadcast: N sends,
/// N^2 deliveries, the per-receiver link ordering pass.
Measurement bench_fanout(int n, int rounds) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  behaviors.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) behaviors.push_back(std::make_unique<FanoutBehavior>(n));
  sim::Network network(std::move(behaviors), std::vector<bool>(static_cast<std::size_t>(n), false),
                       sim::Rng(7));
  // Warm one round so pooled buffers reach steady state before counting.
  network.run_round(1);
  const std::uint64_t allocs_before = alloc_count();
  const auto start = Clock::now();
  for (int r = 0; r < rounds; ++r) network.run_round(r + 2);
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = alloc_count() - allocs_before;
  return {elapsed / rounds, static_cast<double>(allocs) / rounds};
}

/// One Alg. 3 voting step over N validated rank arrays — the exact
/// rational kernel W1 blames for the ms-per-step cost at N=64.
Measurement bench_trimmed_mean(int n, int steps) {
  const int t = n / 4;
  const sim::SystemParams params{.n = n, .t = t};
  const Rational d = core::delta(params);

  core::RankMap mine;
  std::set<sim::Id> accepted;
  for (int i = 0; i < n; ++i) {
    accepted.insert(i + 1);
    mine.emplace(i + 1, Rational(i + 1) * d);
  }
  const std::vector<core::RankMap> votes(static_cast<std::size_t>(n), mine);

  {  // warm-up
    std::set<sim::Id> working = accepted;
    (void)core::approximate(params, working, mine, votes);
  }
  const std::uint64_t allocs_before = alloc_count();
  const auto start = Clock::now();
  for (int s = 0; s < steps; ++s) {
    std::set<sim::Id> working = accepted;
    const core::ApproximateResult result = core::approximate(params, working, mine, votes);
    if (result.new_ranks.empty()) std::abort();  // defeat dead-code elimination
  }
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = alloc_count() - allocs_before;
  return {elapsed / steps, static_cast<double>(allocs) / steps};
}

/// Full Alg. 1 run (selection + voting + decision) under the split-world
/// adversary — the macro case the CI perf gate tracks at N=64. With
/// @p profiler attached, the run is phase-attributed through the full
/// obs/prof plane (scope tree + per-round phase hooks), which is how
/// the profiler-overhead gate measures what `byzrename --profile`
/// costs.
Measurement bench_macro_op(int n, int reps, obs::prof::Profiler* profiler = nullptr) {
  core::ScenarioConfig config;
  config.params = {.n = n, .t = (n - 1) / 3};
  config.adversary = "split";
  config.seed = 21;
  config.profiler = profiler;

  // Deterministic alloc count from a single scored rep.
  const std::uint64_t allocs_before = alloc_count();
  {
    const core::ScenarioResult result = core::run_scenario(config);
    if (!result.report.all_ok()) std::abort();
  }
  const std::uint64_t allocs = alloc_count() - allocs_before;

  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const core::ScenarioResult result = core::run_scenario(config);
    const double elapsed = seconds_since(start);
    if (!result.report.all_ok()) std::abort();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return {best, static_cast<double>(allocs)};
}

/// One warmed fixed-kernel voting step over N full rank votes, driven
/// directly against FixedVotingEngine — and the PR's zero-allocation
/// guarantee, enforced: any heap allocation in the scored steps aborts
/// the bench (and with it the CI perf gate).
Measurement bench_voting_round(int n, int steps) {
  const int t = (n - 1) / 3;
  const sim::SystemParams params{.n = n, .t = t};
  core::RenamingOptions options;
  core::FixedVotingEngine engine(params, options,
                                 core::default_approximation_iterations(t));
  if (!engine.enabled()) std::abort();

  std::set<sim::Id> accepted;
  for (int i = 0; i < n; ++i) accepted.insert(i + 1);
  engine.assign_initial_ranks(accepted);
  const std::set<sim::Id> timely = accepted;

  // N identical honest votes, one per link, sharing a single payload —
  // the inbox shape of a fault-free voting round.
  const sim::PayloadRef vote = engine.encode_ranks();
  sim::Inbox inbox;
  for (int link = 0; link < n; ++link) inbox.push_back({link, vote});

  int rejected = 0;
  // Two warm-up steps bring every pooled buffer (including the swapped
  // next-generation rank arrays) to steady-state capacity.
  engine.step(inbox, timely, accepted, rejected);
  engine.step(inbox, timely, accepted, rejected);

  const std::uint64_t allocs_before = alloc_count();
  const auto start = Clock::now();
  for (int s = 0; s < steps; ++s) engine.step(inbox, timely, accepted, rejected);
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = alloc_count() - allocs_before;
  if (allocs != 0) {
    std::fprintf(stderr,
                 "voting_round_n%d: %llu heap allocations in %d steady-state "
                 "voting steps (expected 0)\n",
                 n, static_cast<unsigned long long>(allocs), steps);
    std::abort();
  }
  if (accepted.size() != static_cast<std::size_t>(n)) std::abort();
  return {elapsed / steps, static_cast<double>(allocs) / steps};
}

/// The warmed fixed-kernel voting step again, but with every scored
/// step bracketed by an obs::prof::Scope on a live Profiler — the
/// steady-state cost of phase attribution itself. The warm-up steps
/// also run under the scope so the node is interned (its one-time
/// allocation) before counting starts; after that, a profiled voting
/// step must still allocate exactly zero bytes, enforced with the same
/// abort gate as the unprofiled row.
Measurement bench_voting_round_prof(int n, int steps) {
  const int t = (n - 1) / 3;
  const sim::SystemParams params{.n = n, .t = t};
  core::RenamingOptions options;
  core::FixedVotingEngine engine(params, options,
                                 core::default_approximation_iterations(t));
  if (!engine.enabled()) std::abort();

  std::set<sim::Id> accepted;
  for (int i = 0; i < n; ++i) accepted.insert(i + 1);
  engine.assign_initial_ranks(accepted);
  const std::set<sim::Id> timely = accepted;

  const sim::PayloadRef vote = engine.encode_ranks();
  sim::Inbox inbox;
  for (int link = 0; link < n; ++link) inbox.push_back({link, vote});

  obs::prof::Profiler profiler;
  int rejected = 0;
  for (int warm = 0; warm < 2; ++warm) {
    obs::prof::Scope scope(&profiler, "voting step");
    engine.step(inbox, timely, accepted, rejected);
  }

  const std::uint64_t allocs_before = alloc_count();
  const auto start = Clock::now();
  for (int s = 0; s < steps; ++s) {
    obs::prof::Scope scope(&profiler, "voting step");
    engine.step(inbox, timely, accepted, rejected);
  }
  const double elapsed = seconds_since(start);
  const std::uint64_t allocs = alloc_count() - allocs_before;
  if (allocs != 0) {
    std::fprintf(stderr,
                 "voting_round_prof_n%d: %llu heap allocations in %d profiled "
                 "steady-state voting steps (expected 0 — the profiler must "
                 "stay allocation-free once its nodes are interned)\n",
                 n, static_cast<unsigned long long>(allocs), steps);
    std::abort();
  }
  if (profiler.snapshot().nodes.empty()) std::abort();
  return {elapsed / steps, static_cast<double>(allocs) / steps};
}

}  // namespace

int main() {
  obs::BenchReporter reporter("BENCH_hotpath.json");

  std::printf("W3 — hot-path baseline (fan-out, trimmed mean, full Alg. 1)\n");
  std::printf("%-22s %14s %16s\n", "case", "time/unit", "allocs/unit");

  const auto emit = [&](const std::string& label, const Measurement& m, const char* unit,
                        double scale) {
    std::printf("%-22s %11.3f %s %16.1f\n", label.c_str(), m.unit_seconds * scale, unit,
                m.unit_allocs);
    reporter.write_series(label, {{"seconds_per_unit", m.unit_seconds},
                                  {"allocs_per_unit", m.unit_allocs}});
  };

  for (const int n : {16, 64, 128}) {
    emit("fanout_n" + std::to_string(n), bench_fanout(n, n >= 128 ? 20 : 50), "ms/round", 1e3);
  }
  for (const int n : {16, 64}) {
    emit("trimmed_mean_n" + std::to_string(n), bench_trimmed_mean(n, n >= 64 ? 10 : 40),
         "ms/step", 1e3);
  }
  Measurement macro_n64;
  for (const int n : {16, 64, 128, 256}) {
    const Measurement m = bench_macro_op(n, n >= 128 ? 1 : 3);
    if (n == 64) macro_n64 = m;
    emit("macro_op_n" + std::to_string(n), m, "s/run ", 1.0);
  }

  {
    // The profiler-overhead gate (docs/PERFORMANCE.md): the N=64 macro
    // case once more with a live obs/prof Profiler attached — scope
    // tree, per-round phase hooks, hardware counters where available.
    // Compared against the macro_op_n64 best-of measured seconds ago in
    // this same process (machine-relative, so the gate is immune to
    // host speed), the profiled run must stay within +5% plus a 2 ms
    // absolute epsilon that absorbs timer jitter on the ~150 ms base.
    obs::prof::Profiler profiler;
    const Measurement prof = bench_macro_op(64, 3, &profiler);
    emit("macro_op_prof_n64", prof, "s/run ", 1.0);
    const double bound = macro_n64.unit_seconds * 1.05 + 2e-3;
    if (prof.unit_seconds > bound) {
      std::fprintf(stderr,
                   "macro_op_prof_n64: profiled run took %.6f s vs %.6f s "
                   "unprofiled (bound %.6f s = +5%% + 2 ms) — the profiler "
                   "hot path got too expensive\n",
                   prof.unit_seconds, macro_n64.unit_seconds, bound);
      std::abort();
    }
  }

  for (const int n : {128, 1024}) {
    emit("voting_round_n" + std::to_string(n), bench_voting_round(n, n >= 1024 ? 5 : 20),
         "ms/step", 1e3);
  }
  // Phase attribution on the smallest hot unit we have: a profiled
  // steady-state voting step must cost microseconds more, not allocate
  // (bench_voting_round_prof aborts otherwise).
  emit("voting_round_prof_n128", bench_voting_round_prof(128, 20), "ms/step", 1e3);
  if (const char* full = std::getenv("BYZRENAME_BENCH_N1024");
      full != nullptr && full[0] == '1') {
    // The full N=1024 Alg. 1 instance (split adversary): minutes of
    // wall clock on one core, so opt-in rather than part of the tracked
    // baseline. docs/PERFORMANCE.md records a measured reference run.
    emit("macro_op_n1024", bench_macro_op(1024, 1), "s/run ", 1.0);
  }

  {
    // The live-telemetry overhead row (docs/OBSERVABILITY.md): the N=64
    // macro case again, but with an idle obs/http server thread holding
    // the full exposition plane (hub + /metrics + /healthz + /progress)
    // on an ephemeral port. The server only poll()s between scrapes, so
    // this should track macro_op_n64 within noise — the acceptance bound
    // is <= +3%, and the alloc count is identical by construction (an
    // idle accept loop allocates nothing).
    exp::ProgressTracker progress;
    obs::ExpositionHub hub;
    hub.add_writer([&progress](std::ostream& os) { progress.write_prometheus(os); });
    hub.add_writer([](std::ostream& os) { obs::write_process_metrics(os); });
    obs::HttpServer server;
    obs::mount_prometheus(server, hub);
    obs::mount_healthz(server);
    obs::mount_json(server, "/progress",
                    [&progress](std::ostream& os) { progress.write_progress_json(os); });
    server.start(0);
    emit("macro_op_serve_n64", bench_macro_op(64, 3), "s/run ", 1.0);
    server.stop();
  }

  reporter.announce(std::cout);
  return 0;
}
