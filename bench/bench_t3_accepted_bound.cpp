// T3 — Lemma IV.3: |accepted| <= N + floor(t^2/(N-2t)) at the end of the
// id selection phase.
//
// The calibrated colluding id-flood announces each fake id to exactly
// enough correct processes that its echoes reach the acceptance quorum,
// which *saturates* the bound when f == t. The table shows the measured
// maximum |accepted| against the formula — they should be equal in the
// saturating rows, witnessing the lemma's tightness.

#include <iostream>
#include <string>

#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;
  std::cout << "T3: Lemma IV.3 accepted-set bound under calibrated id flooding\n\n";
  obs::BenchReporter reporter("bench_t3");
  trace::Table table(
      {"N", "t", "bound N+t^2/(N-2t)", "N+t-1", "|accepted| max", "|accepted| min", "saturated"});
  for (const int t : {1, 2, 3, 4, 5, 6, 8}) {
    for (const int n : {3 * t + 1, 3 * t + 2, 4 * t, 6 * t, 10 * t}) {
      if (n <= 3 * t) continue;
      core::ScenarioConfig config;
      config.params = {.n = n, .t = t};
      config.adversary = "idflood";
      config.seed = 7;
      const core::ScenarioResult result =
          reporter.run(config, "N=" + std::to_string(n) + " t=" + std::to_string(t));
      const int bound = n + (t * t) / (n - 2 * t);
      table.add_row({std::to_string(n), std::to_string(t), std::to_string(bound),
                     std::to_string(n + t - 1), std::to_string(result.max_accepted),
                     std::to_string(result.min_accepted),
                     result.max_accepted == static_cast<std::size_t>(bound) ? "yes" : "no"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: measured max == bound (tight) and always <= N+t-1.\n";
  reporter.announce(std::cout);
  return 0;
}
