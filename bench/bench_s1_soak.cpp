// S1 — soak sweep: every algorithm x every adversary x many seeds.
//
// Not a paper table; the release-confidence run. Expectation: zero
// property violations across the whole grid (thousands of executions).
// A nightly CI points here; a single violation prints its full repro
// coordinates (algorithm, N, t, adversary, seed).

#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/table.h"

namespace {

using namespace byzrename;

struct GridPoint {
  core::Algorithm algorithm;
  int n;
  int t;
};

}  // namespace

int main() {
  const std::vector<GridPoint> grid = {
      {core::Algorithm::kOpRenaming, 4, 1},
      {core::Algorithm::kOpRenaming, 7, 2},
      {core::Algorithm::kOpRenaming, 10, 3},
      {core::Algorithm::kOpRenaming, 13, 4},
      {core::Algorithm::kOpRenaming, 16, 5},
      {core::Algorithm::kOpRenamingConstantTime, 16, 3},
      {core::Algorithm::kOpRenamingConstantTime, 25, 4},
      {core::Algorithm::kFastRenaming, 11, 2},
      {core::Algorithm::kFastRenaming, 22, 3},
      {core::Algorithm::kConsensusRenaming, 9, 2},
      {core::Algorithm::kBitRenaming, 10, 3},
      {core::Algorithm::kTranslatedRenaming, 9, 2},
      {core::Algorithm::kCrashRenaming, 9, 3},
  };
  constexpr std::uint64_t kSeeds = 10;

  long runs = 0;
  long violations = 0;
  trace::Table failures({"algorithm", "N", "t", "adversary", "seed", "detail"});
  obs::BenchReporter reporter("bench_s1");
  // Thousands of executions: keep the counters, skip the per-round
  // rational probes so the soak's runtime stays dominated by the runs.
  reporter.telemetry().set_probes_enabled(false);

  for (const GridPoint& point : grid) {
    for (const std::string& adversary : adversary::adversary_names()) {
      // Crash-model baseline only faces benign strategies.
      if (point.algorithm == core::Algorithm::kCrashRenaming && adversary != "crash" &&
          adversary != "silent" && adversary != "mute") {
        continue;
      }
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        core::ScenarioConfig config;
        config.params = {.n = point.n, .t = point.t};
        config.algorithm = point.algorithm;
        config.adversary = adversary;
        config.seed = seed;
        const core::ScenarioResult result = reporter.run(
            config, std::string(core::to_string(point.algorithm)) + " N=" +
                        std::to_string(point.n) + " t=" + std::to_string(point.t) +
                        " adversary=" + adversary + " seed=" + std::to_string(seed));
        ++runs;
        const bool order_required = point.algorithm != core::Algorithm::kBitRenaming;
        const bool ok = result.report.validity && result.report.termination &&
                        result.report.uniqueness &&
                        (!order_required || result.report.order_preservation);
        if (!ok) {
          ++violations;
          failures.add_row({std::string(core::to_string(point.algorithm)),
                            std::to_string(point.n), std::to_string(point.t), adversary,
                            std::to_string(seed), result.report.detail});
        }
      }
    }
  }

  std::cout << "S1 soak: " << runs << " executions, " << violations << " violations\n";
  if (violations > 0) {
    std::cout << '\n';
    failures.print(std::cout);
    return 1;
  }
  std::cout << "every execution satisfied validity, termination, uniqueness"
               " (and order preservation where promised)\n";
  reporter.announce(std::cout);
  return 0;
}
