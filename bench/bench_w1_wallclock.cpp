// W1 — wall-clock microbenchmarks (engineering, not in the paper).
//
// Covers the arithmetic kernels the voting phase leans on, one
// approximate() step at realistic sizes, and whole-protocol runs.

#include <benchmark/benchmark.h>

#include <set>
#include <vector>

#include "core/harness.h"
#include "core/rank_approx.h"
#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace {

using namespace byzrename;
using numeric::BigInt;
using numeric::Rational;

void BM_BigIntMul(benchmark::State& state) {
  const BigInt a = BigInt::from_string("123456789012345678901234567890123456789");
  const BigInt b = BigInt::from_string("987654321098765432109876543210987654321");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul);

void BM_BigIntDivMod(benchmark::State& state) {
  const BigInt num = BigInt::from_string("123456789012345678901234567890123456789012345678901");
  const BigInt den = BigInt::from_string("98765432109876543210987654321");
  BigInt q, r;
  for (auto _ : state) {
    BigInt::div_mod(num, den, q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod);

void BM_RationalNormalizedAdd(benchmark::State& state) {
  const Rational a = Rational::of(123456789, 987654321);
  const Rational b = Rational::of(987654321, 123456787);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_RationalNormalizedAdd);

void BM_ApproximateStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = n / 4;
  const sim::SystemParams params{.n = n, .t = t};
  const Rational d = core::delta(params);

  core::RankMap mine;
  std::set<sim::Id> accepted;
  for (int i = 0; i < n; ++i) {
    accepted.insert(i + 1);
    mine.emplace(i + 1, Rational(i + 1) * d);
  }
  std::vector<core::RankMap> votes(static_cast<std::size_t>(n), mine);

  for (auto _ : state) {
    std::set<sim::Id> working = accepted;
    benchmark::DoNotOptimize(core::approximate(params, working, mine, votes));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ApproximateStep)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_IsValid(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const sim::SystemParams params{.n = n, .t = n / 4};
  const Rational d = core::delta(params);
  std::set<sim::Id> timely;
  core::RankMap vote;
  for (int i = 0; i < n; ++i) {
    timely.insert(i + 1);
    vote.emplace(i + 1, Rational(i + 1) * d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::is_valid_ranks(timely, vote, d));
  }
}
BENCHMARK(BM_IsValid)->Arg(16)->Arg(64);

void BM_FullOpRenaming(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  for (auto _ : state) {
    core::ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "split";
    config.seed = 21;
    benchmark::DoNotOptimize(core::run_scenario(config));
  }
}
BENCHMARK(BM_FullOpRenaming)->Arg(7)->Arg(13)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_FullFastRenaming(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = 2;
  for (auto _ : state) {
    core::ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.algorithm = core::Algorithm::kFastRenaming;
    config.adversary = "suppress";
    config.seed = 21;
    benchmark::DoNotOptimize(core::run_scenario(config));
  }
}
BENCHMARK(BM_FullFastRenaming)->Arg(11)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_FullConsensusRenaming(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 4;
  for (auto _ : state) {
    core::ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.algorithm = core::Algorithm::kConsensusRenaming;
    config.adversary = "silent";
    config.seed = 21;
    benchmark::DoNotOptimize(core::run_scenario(config));
  }
}
BENCHMARK(BM_FullConsensusRenaming)->Arg(9)->Arg(17)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
