// F1 — Lemmas IV.8/IV.9: per-iteration convergence of the voting phase.
//
// Prints, for each voting round, the maximum spread Delta_r of any timely
// id's rank across correct processes, next to the geometric envelope
// Delta_5 / sigma_t^(r-5) the paper guarantees. Also prints the final
// decision margin (delta-1)/2 that Lemma IV.9 requires. Output is CSV so
// the series can be plotted directly.
//
// The six profiled cases run concurrently on the src/exp campaign
// engine; each run's observer collects its spread series into a slot
// owned by that run index, so workers never share state, and the CSVs
// print in case order afterwards.

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/probe.h"
#include "exp/campaign.h"
#include "obs/bench_report.h"
#include "trace/csv.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;
  using numeric::Rational;
  std::cout
      << "F1: voting-phase convergence Delta_r per round vs geometric envelope\n\n"
         "Reproduction note: adversaries that are honest during id selection (split, skew)\n"
         "provably cannot create ANY initial-rank divergence — all correct processes compute\n"
         "identical accepted sets, and trimming then removes the t faulty votes outright, so\n"
         "Delta_r stays 0. Divergence requires selection-phase asymmetry: the hybrid strategy\n"
         "(suppressed announcements + split-world votes) is the worst case profiled here.\n\n";
  obs::BenchReporter reporter("bench_f1");

  exp::CampaignSpec spec;
  spec.name = "bench_f1";
  spec.scenarios = {
      {core::Algorithm::kOpRenaming, {.n = 10, .t = 3}, "split"},
      {core::Algorithm::kOpRenaming, {.n = 10, .t = 3}, "hybrid"},
      {core::Algorithm::kOpRenaming, {.n = 10, .t = 3}, "asymflood"},
      {core::Algorithm::kOpRenaming, {.n = 13, .t = 4}, "asymflood"},
      {core::Algorithm::kOpRenaming, {.n = 25, .t = 8}, "asymflood"},
      {core::Algorithm::kOpRenaming, {.n = 40, .t = 13}, "asymflood"},
  };
  spec.master_seed = 3;

  // One spread series per run, owned by its run index: the configure
  // hook runs on worker threads, but distinct runs write distinct slots.
  std::vector<std::vector<Rational>> spreads(spec.scenarios.size());
  exp::CampaignOptions options;
  options.sample_probes = true;
  options.configure = [&spreads](std::size_t run_index, core::ScenarioConfig& config) {
    config.observer = [&spreads, run_index](sim::Round round, const sim::Network& net) {
      if (round >= 4) {
        spreads[run_index].push_back(core::max_rank_spread(net, /*timely_only=*/true));
      }
    };
  };
  const exp::CampaignResult result = reporter.run_campaign(spec, options);

  for (std::size_t slot = 0; slot < result.cells.size(); ++slot) {
    const exp::CampaignCell& cell = result.cells[slot];
    const exp::RunRecord& run = result.runs[slot];  // reps == 1: run slot == cell slot
    std::cout << "# N=" << cell.params.n << " t=" << cell.params.t
              << " adversary=" << cell.adversary << " sigma_t=" << core::sigma_t(cell.params)
              << " margin=(delta-1)/2=1/" << 6 * (cell.params.n + cell.params.t) << "\n";
    trace::CsvWriter csv(std::cout, {"round", "delta_r", "delta_r_float", "envelope_float"});
    const double sigma = core::sigma_t(cell.params);
    const std::vector<Rational>& series = spreads[slot];
    double envelope = series.empty() ? 0.0 : series.front().to_double();
    for (std::size_t i = 0; i < series.size(); ++i) {
      csv.write_row({std::to_string(4 + i), series[i].to_string(),
                     trace::fmt_double(series[i].to_double(), 9), trace::fmt_double(envelope, 9)});
      envelope /= sigma;
    }
    std::cout << "# verdict: " << (run.ok ? "all ok" : run.detail) << "\n\n";
  }
  std::cout << "[campaign] " << result.executed << " runs on " << result.threads
            << " thread(s) in " << result.wall_seconds << "s\n";
  reporter.announce(std::cout);
  return result.all_ok() ? 0 : 1;
}
