// F1 — Lemmas IV.8/IV.9: per-iteration convergence of the voting phase.
//
// Prints, for each voting round, the maximum spread Delta_r of any timely
// id's rank across correct processes, next to the geometric envelope
// Delta_5 / sigma_t^(r-5) the paper guarantees. Also prints the final
// decision margin (delta-1)/2 that Lemma IV.9 requires. Output is CSV so
// the series can be plotted directly.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/probe.h"
#include "obs/bench_report.h"
#include "trace/csv.h"
#include "trace/table.h"

namespace {

using namespace byzrename;
using numeric::Rational;

void run_case(obs::BenchReporter& reporter, int n, int t, const std::string& adversary) {
  std::cout << "# N=" << n << " t=" << t << " adversary=" << adversary
            << " sigma_t=" << core::sigma_t({.n = n, .t = t}) << " margin=(delta-1)/2=1/"
            << 6 * (n + t) << "\n";
  trace::CsvWriter csv(std::cout, {"round", "delta_r", "delta_r_float", "envelope_float"});

  std::vector<Rational> spreads;
  core::ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.adversary = adversary;
  config.seed = 3;
  config.observer = [&spreads](sim::Round round, const sim::Network& net) {
    if (round >= 4) spreads.push_back(core::max_rank_spread(net, /*timely_only=*/true));
  };
  const core::ScenarioResult result = reporter.run(
      config, "N=" + std::to_string(n) + " t=" + std::to_string(t) + " adversary=" + adversary);

  const double sigma = core::sigma_t({.n = n, .t = t});
  double envelope = spreads.empty() ? 0.0 : spreads.front().to_double();
  for (std::size_t i = 0; i < spreads.size(); ++i) {
    csv.write_row({std::to_string(4 + i), spreads[i].to_string(),
                   trace::fmt_double(spreads[i].to_double(), 9), trace::fmt_double(envelope, 9)});
    envelope /= sigma;
  }
  std::cout << "# verdict: " << (result.report.all_ok() ? "all ok" : result.report.detail)
            << "\n\n";
}

}  // namespace

int main() {
  std::cout
      << "F1: voting-phase convergence Delta_r per round vs geometric envelope\n\n"
         "Reproduction note: adversaries that are honest during id selection (split, skew)\n"
         "provably cannot create ANY initial-rank divergence — all correct processes compute\n"
         "identical accepted sets, and trimming then removes the t faulty votes outright, so\n"
         "Delta_r stays 0. Divergence requires selection-phase asymmetry: the hybrid strategy\n"
         "(suppressed announcements + split-world votes) is the worst case profiled here.\n\n";
  obs::BenchReporter reporter("bench_f1");
  run_case(reporter, 10, 3, "split");
  run_case(reporter, 10, 3, "hybrid");
  run_case(reporter, 10, 3, "asymflood");
  run_case(reporter, 13, 4, "asymflood");
  run_case(reporter, 25, 8, "asymflood");
  run_case(reporter, 40, 13, "asymflood");
  reporter.announce(std::cout);
  return 0;
}
