// T6 — Theorem VI.3 and Lemmas VI.1/VI.2: the 2-step algorithm at the
// regime edge N = 2t^2 + t + 1.
//
// Reports the measured per-id name discrepancy Delta (Lemma VI.1 bounds
// it by 2t^2), the minimum gap between consecutive correct names (Lemma
// VI.2 bounds it below by N-t), and the namespace actually used.

#include <algorithm>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/probe.h"
#include "obs/bench_report.h"
#include "trace/table.h"

using namespace byzrename;

int main() {
  std::cout << "T6: 2-step renaming (Theorem VI.3) at the regime edge N=2t^2+t+1\n\n";
  obs::BenchReporter reporter("bench_t6");
  trace::Table table({"N", "t", "adversary", "steps", "max name", "M=N^2", "Delta", "2t^2",
                      "min gap", "N-t", "verdict"});
  for (const int t : {1, 2, 3, 4}) {
    const int n = 2 * t * t + t + 1;
    for (const char* adversary : {"idflood", "asymflood", "suppress", "random"}) {
      core::ScenarioConfig config;
      config.params = {.n = n, .t = t};
      config.algorithm = core::Algorithm::kFastRenaming;
      config.adversary = adversary;
      config.seed = 6;
      core::FastNameStats stats;
      config.observer = [&stats](sim::Round round, const sim::Network& net) {
        if (round == 2) stats = core::fast_name_stats(net);
      };
      const core::ScenarioResult result = reporter.run(
          config,
          "N=" + std::to_string(n) + " t=" + std::to_string(t) + " adversary=" + adversary);
      const bool ok = result.report.all_ok() && stats.max_discrepancy <= 2 * t * t &&
                      stats.min_gap >= n - t;
      table.add_row({std::to_string(n), std::to_string(t), adversary,
                     std::to_string(result.run.rounds), std::to_string(result.report.max_name),
                     std::to_string(static_cast<sim::Name>(n) * n),
                     std::to_string(stats.max_discrepancy), std::to_string(2 * t * t),
                     std::to_string(stats.min_gap), std::to_string(n - t),
                     ok ? "ok" : "VIOLATION"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: 2 steps, names <= N^2, Delta <= 2t^2, min gap >= N-t everywhere.\n";
  reporter.announce(std::cout);
  return 0;
}
