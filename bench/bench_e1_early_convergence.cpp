// E1 (extension) — convergence time as a function of the number of
// ACTUAL faults f, not the budget t.
//
// Alistarh, Attiya, Guerraoui & Travers (SIROCCO 2012 — the paper's
// reference [1]) observed that in the crash model the AA-based renaming
// of [14] converges in O(log f) rounds, and the paper's Section V builds
// its constant-time regime on the same effect. This bench measures the
// Byzantine analogue on Alg. 1: with the worst registered adversary
// scaled down to f faulty processes, how many voting rounds pass before
// the global spread drops below the decision margin (delta-1)/2?
//
// Expected shape: the measured round count tracks ~log2 of the initial
// discrepancy (which grows with f), far below the worst-case budget
// 3*ceil(log2 t)+3 when f << t — the early-deciding opportunity [1]
// formalizes for crashes and the paper leaves open for Byzantine faults.

#include <iostream>
#include <map>
#include <string>

#include "core/harness.h"
#include "core/probe.h"
#include "obs/bench_report.h"
#include "trace/table.h"

namespace {

using namespace byzrename;
using numeric::Rational;

/// First voting round after which the global rank spread is below the
/// decision margin; 0 if it already is at the end of selection.
int rounds_to_margin(obs::BenchReporter& reporter, int n, int t, int f,
                     const std::string& adversary) {
  core::ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.actual_faults = f;
  config.adversary = adversary;
  config.seed = 3;
  // Generous iteration budget so the measurement is not clipped.
  config.options.approximation_iterations = core::default_approximation_iterations(t) + 6;

  const Rational margin = Rational::of(1, 6 * (n + t));
  int converged_at = -1;
  config.observer = [&](sim::Round round, const sim::Network& net) {
    if (round < 4 || converged_at >= 0) return;
    if (core::max_rank_spread(net) < margin) converged_at = round - 4;
  };
  (void)reporter.run(config, "N=" + std::to_string(n) + " t=" + std::to_string(t) + " f=" +
                                 std::to_string(f) + " adversary=" + adversary);
  return converged_at;
}

}  // namespace

int main() {
  std::cout << "E1: voting rounds until spread < (delta-1)/2, as a function of actual faults f\n"
            << "(adversary scaled to f; budget stays 3*ceil(log2 t)+3 for the full t)\n\n";
  trace::Table table({"N", "t", "f", "adversary", "rounds to margin", "budget for t"});
  obs::BenchReporter reporter("bench_e1");
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{25, 8}, {40, 13}}) {
    // Only adversaries with a calibrated selection attack create any
    // divergence to measure (see EXPERIMENTS.md finding #3).
    for (const char* adversary : {"asymflood", "orderbreak"}) {
      for (int f = 0; f <= t; f = (f == 0 ? 1 : f * 2)) {
        const int measured = rounds_to_margin(reporter, n, t, std::min(f, t), adversary);
        table.add_row({std::to_string(n), std::to_string(t), std::to_string(std::min(f, t)),
                       adversary, std::to_string(measured),
                       std::to_string(core::default_approximation_iterations(t))});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: rounds grow roughly like log2(f) + const and sit well below the\n"
               "t-budget for f << t — the early-deciding opportunity of [1], measured in the\n"
               "Byzantine model. (Whether a process can *safely exploit* it without knowing f\n"
               "is the open question the paper's Section VII leaves for future work.)\n";
  reporter.announce(std::cout);
  return 0;
}
