// T2 — Theorem IV.10: Alg. 1 implements order-preserving renaming for
// N > 3t with target namespace N+t-1.
//
// Sweeps N with t at its resilience maximum (and at half), runs every
// registered adversary, and reports the largest name used and the number
// of property violations (which must be zero everywhere).

#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/harness.h"
#include "obs/bench_report.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;
  std::cout << "T2: Theorem IV.10 — validity/uniqueness/order under every adversary\n\n";
  obs::BenchReporter reporter("bench_t2");
  trace::Table table({"N", "t", "steps", "M=N+t-1", "max name", "worst adversary (by max name)",
                      "violations"});

  // Every registered strategy runs at small and medium sizes; at large N
  // the strategies that wrap inner OpRenaming processes (hybrid, chaos,
  // orderbreak, split, skew, invalid, mute, crash) multiply the exact-
  // rational work several-fold, so only the calibrated worst cases run
  // there — they dominate the others on every measured quantity anyway.
  const std::vector<std::string> all_adversaries = adversary::adversary_names();
  const std::vector<std::string> heavy_size_adversaries = {"silent", "idflood", "asymflood",
                                                           "suppress", "random"};
  for (const int n : {4, 7, 10, 13, 16, 22, 28, 40, 52, 64}) {
    for (const int t : {(n - 1) / 3, (n - 1) / 6}) {
      if (t < 1) continue;
      sim::Name worst_name = 0;
      std::string worst_adversary = "-";
      int violations = 0;
      int steps = 0;
      const auto& adversaries = n >= 40 ? heavy_size_adversaries : all_adversaries;
      for (const std::string& adversary : adversaries) {
        for (std::uint64_t seed = 1; seed <= 2; ++seed) {
          core::ScenarioConfig config;
          config.params = {.n = n, .t = t};
          config.adversary = adversary;
          config.seed = seed;
          const core::ScenarioResult result = reporter.run(
              config, "N=" + std::to_string(n) + " t=" + std::to_string(t) + " adversary=" +
                          adversary + " seed=" + std::to_string(seed));
          steps = result.run.rounds;
          if (!result.report.all_ok()) ++violations;
          if (result.report.max_name > worst_name) {
            worst_name = result.report.max_name;
            worst_adversary = adversary;
          }
        }
      }
      table.add_row({std::to_string(n), std::to_string(t), std::to_string(steps),
                     std::to_string(n + t - 1), std::to_string(worst_name), worst_adversary,
                     std::to_string(violations)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: zero violations; max name <= N+t-1 in every row.\n";
  reporter.announce(std::cout);
  return 0;
}
