// Trace debugging: watch a renaming run message by message.
//
// Attaches the structured event log to a small Alg. 1 run with an
// equivocating adversary, then prints (a) everything the Byzantine
// processes sent — the omniscient view that exposes their equivocation —
// and (b) the first rounds as one correct process experienced them,
// where the same faulty peer is just an anonymous link label. Comparing
// the two views is the whole point of the paper's model.
//
// Also exports the same log as trace_debug.trace.json — load it in
// chrome://tracing or https://ui.perfetto.dev to scrub the run visually
// (one track per process; see docs/OBSERVABILITY.md).

#include <fstream>
#include <iostream>

#include "core/harness.h"
#include "obs/trace_export.h"
#include "trace/event_log.h"

int main() {
  using namespace byzrename;

  trace::EventLog log;
  core::ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.algorithm = core::Algorithm::kOpRenaming;
  config.adversary = "split";  // faulty process equivocates in the vote
  config.seed = 5;
  config.event_log = &log;

  const core::ScenarioResult result = core::run_scenario(config);

  std::cout << "=== what the Byzantine process actually sent (omniscient view) ===\n";
  log.render(std::cout, [](const trace::Event& event) {
    return event.byzantine_actor && event.kind == trace::Event::Kind::kSend;
  });

  std::cout << "\n=== what correct process p0 received in rounds 1 and 5 (its own view) ===\n";
  log.render(std::cout, [](const trace::Event& event) {
    return event.actor == 0 && event.kind == trace::Event::Kind::kDeliver &&
           (event.round == 1 || event.round == 5);
  });

  std::cout << "\nNote: p0 sees only link labels. The equivocating votes above arrive on\n"
               "one stable link, but nothing in p0's view connects that link to a process\n"
               "identity — which is why the algorithm never relies on attribution, only on\n"
               "quorum counting and vote validation.\n\n";

  std::cout << "outcome: " << (result.report.all_ok() ? "all renaming properties hold" : result.report.detail)
            << "; names:";
  for (const core::NamedProcess& p : result.named) {
    std::cout << ' ' << p.original_id << "->" << p.new_name.value_or(-1);
  }
  std::cout << '\n';

  std::ofstream trace_out("trace_debug.trace.json", std::ios::trunc);
  if (trace_out.is_open()) {
    obs::TraceMeta meta;
    meta.title = "trace_debug: op-renaming N=4 t=1 split seed=5";
    meta.process_count = 4;
    meta.rounds = result.run.rounds;
    meta.byzantine = {false, false, false, true};
    obs::write_chrome_trace(trace_out, log, meta);
    std::cout << "wrote trace_debug.trace.json — open it in chrome://tracing or Perfetto\n";
  }
  return result.report.all_ok() ? 0 : 1;
}
