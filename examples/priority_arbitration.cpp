// Priority arbitration: the motivating scenario of the paper's
// introduction — original ids encode priority (lower id = higher
// priority for a shared resource), so renaming must preserve order.
//
// A cluster of 13 controllers holds sparse priority ids from a huge
// namespace (issued over years, with gaps). They need compact slot
// numbers to index a fixed-size arbitration table, and up to 4 of them
// may be compromised. Alg. 1 compacts the namespace from ~10^12 down to
// N+t-1 = 16 slots while keeping every correct controller's relative
// priority intact — which a non-order-preserving renaming would destroy.

#include <iostream>
#include <vector>

#include "core/harness.h"

int main() {
  using namespace byzrename;

  // Sparse priority ids: issued historically, heavily clustered.
  const std::vector<sim::Id> priorities = {
      1002, 1007, 48211, 48213, 900000017, 900000018, 900000019, 931112200, 931112201,
  };

  core::ScenarioConfig config;
  config.params = {.n = 13, .t = 4};
  config.algorithm = core::Algorithm::kOpRenaming;
  config.correct_ids = priorities;  // 13 - 4 = 9 correct controllers
  config.adversary = "split";       // compromised nodes equivocate in the vote
  config.seed = 7;

  const core::ScenarioResult result = core::run_scenario(config);

  std::cout << "priority arbitration: 13 controllers, up to 4 compromised\n"
            << "arbitration table size: " << result.target_namespace << " slots\n\n"
            << "priority id      slot   (order must match)\n";
  sim::Name previous = 0;
  bool order_ok = true;
  for (const core::NamedProcess& p : result.named) {
    const sim::Name slot = p.new_name.value_or(-1);
    std::cout << "  " << p.original_id << "\t->  slot " << slot << '\n';
    if (slot <= previous) order_ok = false;
    previous = slot;
  }

  std::cout << "\nrelative priorities preserved: " << (order_ok ? "yes" : "NO") << '\n'
            << "checker verdict: " << (result.report.all_ok() ? "all properties hold" : result.report.detail)
            << '\n';
  return result.report.all_ok() && order_ok ? 0 : 1;
}
