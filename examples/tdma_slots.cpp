// TDMA slot assignment: the time-constrained scenario motivating the
// 2-step algorithm (Section VI).
//
// 11 radios must agree on transmission slots before the next frame
// boundary — there is no time for a logarithmic number of rounds, let
// alone consensus. Alg. 4 assigns order-preserving slots out of a frame
// of N^2 = 121 micro-slots in exactly 2 message exchanges, tolerating 2
// Byzantine radios. The comparison run shows what Alg. 1 would cost in
// rounds on the same instance.

#include <iostream>

#include "core/harness.h"

int main() {
  using namespace byzrename;

  core::ScenarioConfig fast;
  fast.params = {.n = 11, .t = 2};  // N > 2t^2 + t = 10
  fast.algorithm = core::Algorithm::kFastRenaming;
  fast.adversary = "suppress";  // jamming radios echo selectively
  fast.seed = 99;
  const core::ScenarioResult fast_result = core::run_scenario(fast);

  core::ScenarioConfig slow = fast;
  slow.algorithm = core::Algorithm::kOpRenaming;
  const core::ScenarioResult slow_result = core::run_scenario(slow);

  std::cout << "TDMA slot assignment, 11 radios, up to 2 Byzantine\n"
            << "frame: " << fast_result.target_namespace << " micro-slots\n\n"
            << "radio id    ->  slot\n";
  for (const core::NamedProcess& p : fast_result.named) {
    std::cout << "  " << p.original_id << "  ->  " << p.new_name.value_or(-1) << '\n';
  }

  std::cout << "\nexchanges needed:   Alg. 4 (this run): " << fast_result.run.rounds
            << "   vs   Alg. 1 on the same instance: " << slow_result.run.rounds << '\n'
            << "slot order follows radio id order: "
            << (fast_result.report.order_preservation ? "yes" : "NO") << '\n'
            << "checker verdict: "
            << (fast_result.report.all_ok() ? "all properties hold" : fast_result.report.detail)
            << '\n';
  return fast_result.report.all_ok() ? 0 : 1;
}
