// Regime planner: "I have N nodes, up to t compromised, a step budget
// and a table size — which of the paper's algorithms should I run?"
//
// Walks a few deployment profiles through core::plan_renaming and shows
// how the constraints move the answer across the paper's three regimes.

#include <iostream>
#include <string>

#include "core/planner.h"
#include "trace/table.h"

namespace {

using namespace byzrename;

void show(const char* title, const sim::SystemParams& params,
          const core::PlanConstraints& constraints) {
  std::cout << "### " << title << "  (N=" << params.n << ", t=" << params.t;
  if (constraints.max_steps > 0) std::cout << ", steps<=" << constraints.max_steps;
  if (constraints.max_namespace > 0) std::cout << ", names<=" << constraints.max_namespace;
  if (!constraints.order_preserving) std::cout << ", order not required";
  if (constraints.authenticated_links) std::cout << ", authenticated links";
  std::cout << ")\n";

  const auto options = core::plan_renaming(params, constraints);
  if (options.empty()) {
    std::cout << "  nothing fits — relax a constraint or lower t\n\n";
    return;
  }
  trace::Table table({"choice", "algorithm", "steps", "namespace", "order-preserving"});
  int rank = 0;
  for (const core::PlanOption& option : options) {
    table.add_row({++rank == 1 ? "-> recommended" : std::to_string(rank),
                   std::string(core::to_string(option.algorithm)), std::to_string(option.steps),
                   std::to_string(option.namespace_size),
                   option.order_preserving ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "regime planner: constraints -> algorithm, across the paper's regimes\n\n";

  // A latency-critical cluster with few expected faults: Alg. 4 wins.
  show("TDMA frame assignment", {.n = 11, .t = 2}, {});

  // The same cluster, but the arbitration table has only N slots:
  // Alg. 4's N^2 namespace is out; constant-time Alg. 1 takes over.
  show("...with a tight table", {.n = 11, .t = 2}, {.max_namespace = 11});

  // A hostile deployment at maximum fault density: only Alg. 1 fits.
  show("maximum fault density", {.n = 13, .t = 4}, {});

  // Two steps, high fault density: impossible — the planner says so.
  show("two rounds at high fault density", {.n = 13, .t = 4}, {.max_steps = 2});

  // Order not needed and links authenticated: more options appear, but
  // they never beat the native algorithms on cost.
  show("relaxed everything", {.n = 13, .t = 3},
       {.order_preserving = false, .authenticated_links = true});
  return 0;
}
