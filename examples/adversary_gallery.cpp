// Adversary gallery: runs Alg. 1 against every registered Byzantine
// strategy and shows that the guarantees hold against each — plus what
// each attack *does* manage to distort (accepted-set size, rejected
// votes, largest name used).
//
// Useful as a template for plugging in your own adversary: implement
// sim::ProcessBehavior, register a factory, and the whole test and bench
// surface picks it up.

#include <iostream>

#include "adversary/adversary.h"
#include "core/harness.h"
#include "trace/table.h"

int main() {
  using namespace byzrename;

  const int n = 13;
  const int t = 4;
  std::cout << "adversary gallery: Alg. 1 at N=" << n << ", t=" << t
            << " (bound: names <= " << n + t - 1 << ")\n\n";

  trace::Table table({"adversary", "rounds", "max |accepted|", "rejected votes", "max name",
                      "properties"});
  bool all_ok = true;
  for (const std::string& name : adversary::adversary_names()) {
    core::ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = name;
    config.seed = 2024;
    const core::ScenarioResult result = core::run_scenario(config);
    all_ok = all_ok && result.report.all_ok();
    table.add_row({name, std::to_string(result.run.rounds), std::to_string(result.max_accepted),
                   std::to_string(result.total_rejected), std::to_string(result.report.max_name),
                   result.report.all_ok() ? "all hold" : result.report.detail});
  }
  table.print(std::cout);

  std::cout << "\nhow to read this:\n"
            << "  - idflood maxes out |accepted| at N + t^2/(N-2t) = "
            << n + t * t / (n - 2 * t) << " (Lemma IV.3, tight)\n"
            << "  - invalid generates only rejected votes (validation catches every one)\n"
            << "  - split/skew distort the voting phase but trimming + select_t converge anyway\n";
  return all_ok ? 0 : 1;
}
