// Quickstart: rename 10 processes, 3 of them Byzantine, with Alg. 1.
//
// Shows the three-line happy path of the public API: describe the
// scenario, run it, read back the names — plus how to check the outcome
// with the independent property checker.

#include <iostream>

#include "core/harness.h"

int main() {
  using namespace byzrename;

  core::ScenarioConfig config;
  config.params = {.n = 10, .t = 3};              // 10 processes, up to 3 Byzantine
  config.algorithm = core::Algorithm::kOpRenaming;  // Alg. 1 of the paper
  config.adversary = "split";                     // worst-case equivocating faults
  config.seed = 42;

  const core::ScenarioResult result = core::run_scenario(config);

  std::cout << "order-preserving Byzantine renaming, N=10 t=3\n"
            << "rounds used: " << result.run.rounds << " (= 3*ceil(log2 t) + 7)\n"
            << "target namespace: [1.." << result.target_namespace << "]\n\n"
            << "original id      ->  new name\n";
  for (const core::NamedProcess& p : result.named) {
    std::cout << "  " << p.original_id << "  ->  " << p.new_name.value_or(-1) << '\n';
  }

  std::cout << "\nchecker: validity=" << result.report.validity
            << " termination=" << result.report.termination
            << " uniqueness=" << result.report.uniqueness
            << " order-preserving=" << result.report.order_preservation << '\n';
  return result.report.all_ok() ? 0 : 1;
}
