#include <gtest/gtest.h>

#include "baselines/bit_renaming.h"
#include "baselines/consensus_renaming.h"
#include "baselines/crash_renaming.h"
#include "core/harness.h"

namespace byzrename::core {
namespace {

TEST(CrashRenaming, NoFaultsGivesSortedRanks) {
  ScenarioConfig config;
  config.params = {.n = 6, .t = 2};
  config.algorithm = Algorithm::kCrashRenaming;
  config.actual_faults = 0;
  const ScenarioResult result = run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  for (std::size_t i = 0; i < result.named.size(); ++i) {
    EXPECT_EQ(result.named[i].new_name, static_cast<sim::Name>(i + 1));
  }
}

TEST(CrashRenaming, SurvivesCrashFaults) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ScenarioConfig config;
    config.params = {.n = 9, .t = 3};
    config.algorithm = Algorithm::kCrashRenaming;
    config.adversary = "crash";
    config.seed = seed;
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << "seed " << seed << ": " << result.report.detail;
    EXPECT_LE(result.report.max_name, 9);
  }
}

TEST(CrashRenaming, SilentFaultsAreCrashFaults) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.algorithm = Algorithm::kCrashRenaming;
  config.adversary = "silent";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(CrashRenaming, StepCountMatchesOkunStructure) {
  // 1 id-exchange step + 3*ceil(log2 t)+3 voting steps.
  ScenarioConfig config;
  config.params = {.n = 9, .t = 3};
  config.algorithm = Algorithm::kCrashRenaming;
  config.adversary = "crash";
  const ScenarioResult result = run_scenario(config);
  EXPECT_EQ(result.run.rounds, 1 + 3 * 2 + 3);
}

TEST(ConsensusRenaming, StrongOrderPreservingWithoutFaults) {
  ScenarioConfig config;
  config.params = {.n = 9, .t = 2};
  config.algorithm = Algorithm::kConsensusRenaming;
  config.actual_faults = 0;
  const ScenarioResult result = run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_LE(result.report.max_name, 9);
  for (std::size_t i = 0; i < result.named.size(); ++i) {
    EXPECT_EQ(result.named[i].new_name, static_cast<sim::Name>(i + 1));
  }
}

TEST(ConsensusRenaming, SurvivesByzantineFaults) {
  for (const char* adversary : {"silent", "random", "crash"}) {
    ScenarioConfig config;
    config.params = {.n = 9, .t = 2};
    config.algorithm = Algorithm::kConsensusRenaming;
    config.adversary = adversary;
    config.seed = 31;
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << adversary << ": " << result.report.detail;
    EXPECT_LE(result.report.max_name, 9) << adversary;
  }
}

TEST(ConsensusRenaming, RoundsAreLinearInT) {
  for (int t = 1; t <= 3; ++t) {
    const int n = 4 * t + 1;
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.algorithm = Algorithm::kConsensusRenaming;
    config.adversary = "silent";
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
    EXPECT_EQ(result.run.rounds, 1 + 2 * (t + 1));
  }
}

TEST(ConsensusRenaming, AgreedClaimsMatchAcrossCorrectProcesses) {
  ScenarioConfig config;
  config.params = {.n = 9, .t = 2};
  config.algorithm = Algorithm::kConsensusRenaming;
  config.adversary = "random";
  config.seed = 77;
  std::vector<std::vector<std::int64_t>> claims;
  config.observer = [&](sim::Round round, const sim::Network& net) {
    if (round != 1 + 2 * (2 + 1)) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      claims.push_back(dynamic_cast<const baselines::ConsensusRenamingProcess&>(net.behavior(i))
                           .agreed_claims());
    }
  };
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  ASSERT_GE(claims.size(), 2u);
  for (std::size_t i = 1; i < claims.size(); ++i) {
    EXPECT_EQ(claims[i], claims[0]) << "claim vectors diverged";
  }
}

TEST(BitRenaming, NoFaultsIsCollisionFree) {
  ScenarioConfig config;
  config.params = {.n = 8, .t = 2};
  config.algorithm = Algorithm::kBitRenaming;
  config.actual_faults = 0;
  const ScenarioResult result = run_scenario(config);
  // Non-order-preserving by design: only check the other three properties.
  EXPECT_TRUE(result.report.validity) << result.report.detail;
  EXPECT_TRUE(result.report.termination) << result.report.detail;
  EXPECT_TRUE(result.report.uniqueness) << result.report.detail;
  EXPECT_LE(result.report.max_name, 2 * 8);
}

TEST(BitRenaming, UniquenessUnderAdversaries) {
  for (const char* adversary : {"silent", "crash", "random", "idflood"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ScenarioConfig config;
      config.params = {.n = 10, .t = 3};
      config.algorithm = Algorithm::kBitRenaming;
      config.adversary = adversary;
      config.seed = seed;
      const ScenarioResult result = run_scenario(config);
      EXPECT_TRUE(result.report.termination) << adversary << "/" << seed;
      EXPECT_TRUE(result.report.uniqueness)
          << adversary << "/" << seed << ": " << result.report.detail;
      EXPECT_TRUE(result.report.validity)
          << adversary << "/" << seed << ": " << result.report.detail;
    }
  }
}

TEST(BitRenaming, StepCountIsLogarithmic) {
  ScenarioConfig config;
  config.params = {.n = 8, .t = 2};
  config.algorithm = Algorithm::kBitRenaming;
  config.adversary = "silent";
  const ScenarioResult result = run_scenario(config);
  EXPECT_EQ(result.run.rounds, 4 + 2 * 4);  // ceil(log2 16) = 4 phases
}

}  // namespace
}  // namespace byzrename::core
