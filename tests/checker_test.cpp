#include "core/checker.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace byzrename::core {
namespace {

TEST(Checker, AcceptsPerfectRenaming) {
  const CheckReport report = check_renaming({{10, 1}, {20, 2}, {30, 3}}, 3);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.min_name, 1);
  EXPECT_EQ(report.max_name, 3);
  EXPECT_TRUE(report.detail.empty());
}

TEST(Checker, FlagsMissingDecision) {
  const CheckReport report = check_renaming({{10, 1}, {20, std::nullopt}}, 3);
  EXPECT_FALSE(report.termination);
  EXPECT_TRUE(report.validity);
  EXPECT_NE(report.detail.find("did not decide"), std::string::npos);
}

TEST(Checker, FlagsNameOutOfRange) {
  EXPECT_FALSE(check_renaming({{10, 0}}, 3).validity);   // below 1
  EXPECT_FALSE(check_renaming({{10, 4}}, 3).validity);   // above M
  EXPECT_TRUE(check_renaming({{10, 3}}, 3).validity);    // boundary
  EXPECT_TRUE(check_renaming({{10, 1}}, 3).validity);    // boundary
}

TEST(Checker, FlagsDuplicateNames) {
  const CheckReport report = check_renaming({{10, 2}, {20, 2}}, 3);
  EXPECT_FALSE(report.uniqueness);
  EXPECT_NE(report.detail.find("assigned twice"), std::string::npos);
}

TEST(Checker, FlagsOrderViolation) {
  const CheckReport report = check_renaming({{10, 3}, {20, 1}}, 3);
  EXPECT_FALSE(report.order_preservation);
  EXPECT_TRUE(report.uniqueness);
}

TEST(Checker, FlagsNonAdjacentDuplicateEvenWhenOrderAlsoBreaks) {
  const CheckReport report = check_renaming({{10, 5}, {20, 3}, {30, 5}}, 9);
  EXPECT_FALSE(report.uniqueness);
  EXPECT_FALSE(report.order_preservation);
}

TEST(Checker, InputOrderDoesNotMatter) {
  // The checker sorts by original id internally.
  const CheckReport report = check_renaming({{30, 3}, {10, 1}, {20, 2}}, 3);
  EXPECT_TRUE(report.all_ok());
}

TEST(Checker, EmptyInputIsVacuouslyOk) {
  const CheckReport report = check_renaming({}, 3);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.min_name, 0);
  EXPECT_EQ(report.max_name, 0);
}

TEST(Checker, UndecidedProcessesDoNotBreakOtherChecks) {
  const CheckReport report = check_renaming({{10, 1}, {20, std::nullopt}, {30, 2}}, 3);
  EXPECT_FALSE(report.termination);
  EXPECT_TRUE(report.uniqueness);
  EXPECT_TRUE(report.order_preservation);
}

TEST(Checker, NegativeNameIsInvalid) {
  EXPECT_FALSE(check_renaming({{10, -5}}, 3).validity);
}

TEST(Checker, ClassifiesViolationsCanonically) {
  // Termination + order break together; classes() lists them in the
  // canonical declaration order regardless of detection order.
  const CheckReport report = check_renaming({{10, 3}, {20, std::nullopt}, {30, 1}}, 3);
  EXPECT_FALSE(report.termination);
  EXPECT_FALSE(report.order_preservation);
  EXPECT_TRUE(report.has(ViolationClass::kTermination));
  EXPECT_TRUE(report.has(ViolationClass::kOrder));
  EXPECT_FALSE(report.has(ViolationClass::kUniqueness));
  EXPECT_FALSE(report.has(ViolationClass::kRange));
  EXPECT_EQ(report.classes(), "termination,order");
}

TEST(Checker, CleanRunHasNoViolationRecords) {
  const CheckReport report = check_renaming({{10, 1}, {20, 2}}, 3);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.classes(), "");
}

TEST(Checker, ViolationRecordsCarryProvenance) {
  // Process with index/decided_round set: the record and its message
  // must carry both.
  NamedProcess undecided;
  undecided.original_id = 20;
  undecided.new_name = std::nullopt;
  undecided.index = 2;
  NamedProcess ok;
  ok.original_id = 10;
  ok.new_name = 1;
  ok.index = 0;
  ok.decided_round = 7;
  const CheckReport report = check_renaming({ok, undecided}, 3);
  ASSERT_EQ(report.violations.size(), 1u);
  const ViolationRecord& rec = report.violations.front();
  EXPECT_EQ(rec.cls, ViolationClass::kTermination);
  EXPECT_EQ(rec.id, 20);
  EXPECT_EQ(rec.pid, 2);
  EXPECT_NE(rec.message.find("did not decide"), std::string::npos);
  EXPECT_NE(rec.message.find("(p2)"), std::string::npos);
}

TEST(Checker, UniquenessRecordNamesBothHolders) {
  NamedProcess a{10, 2, 0, 3};
  NamedProcess b{20, 2, 1, 4};
  // A duplicate also breaks ordering (equal names, ascending ids), so two
  // records result; pick out the uniqueness one.
  const CheckReport report = check_renaming({a, b}, 3);
  ASSERT_EQ(report.violations.size(), 2u);
  const auto it = std::find_if(report.violations.begin(), report.violations.end(),
                               [](const ViolationRecord& r) {
                                 return r.cls == ViolationClass::kUniqueness;
                               });
  ASSERT_NE(it, report.violations.end());
  const ViolationRecord& rec = *it;
  EXPECT_EQ(rec.id, 20);
  EXPECT_EQ(rec.pid, 1);
  EXPECT_EQ(rec.round, 4);
  EXPECT_NE(rec.message.find("assigned twice"), std::string::npos);
  EXPECT_NE(rec.message.find("id 10"), std::string::npos);
  EXPECT_NE(rec.message.find("id 20"), std::string::npos);
  EXPECT_NE(rec.message.find("(p0, r3)"), std::string::npos);
  EXPECT_NE(rec.message.find("(p1, r4)"), std::string::npos);
}

TEST(Checker, AllViolationsRecordedNotJustFirstPerClass) {
  // Three undecided processes: detail keeps only the first, but every
  // one gets a record (degradation curves count them all).
  const CheckReport report =
      check_renaming({{10, std::nullopt}, {20, std::nullopt}, {30, std::nullopt}}, 3);
  EXPECT_EQ(report.violations.size(), 3u);
  for (const ViolationRecord& rec : report.violations) {
    EXPECT_EQ(rec.cls, ViolationClass::kTermination);
  }
}

TEST(Checker, ProvenanceOmittedWhenUnknown) {
  // Bare brace-init inputs have no index/round; messages stay clean.
  const CheckReport report = check_renaming({{10, 2}, {20, 2}}, 3);
  ASSERT_FALSE(report.violations.empty());
  for (const ViolationRecord& rec : report.violations) {
    EXPECT_EQ(rec.message.find("(p"), std::string::npos);
    EXPECT_EQ(rec.pid, -1);
    EXPECT_EQ(rec.round, 0);
  }
}

TEST(Checker, ViolationClassNames) {
  EXPECT_EQ(to_string(ViolationClass::kTermination), "termination");
  EXPECT_EQ(to_string(ViolationClass::kRange), "range");
  EXPECT_EQ(to_string(ViolationClass::kUniqueness), "uniqueness");
  EXPECT_EQ(to_string(ViolationClass::kOrder), "order");
}

}  // namespace
}  // namespace byzrename::core
