#include "core/checker.h"

#include <gtest/gtest.h>

namespace byzrename::core {
namespace {

TEST(Checker, AcceptsPerfectRenaming) {
  const CheckReport report = check_renaming({{10, 1}, {20, 2}, {30, 3}}, 3);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.min_name, 1);
  EXPECT_EQ(report.max_name, 3);
  EXPECT_TRUE(report.detail.empty());
}

TEST(Checker, FlagsMissingDecision) {
  const CheckReport report = check_renaming({{10, 1}, {20, std::nullopt}}, 3);
  EXPECT_FALSE(report.termination);
  EXPECT_TRUE(report.validity);
  EXPECT_NE(report.detail.find("did not decide"), std::string::npos);
}

TEST(Checker, FlagsNameOutOfRange) {
  EXPECT_FALSE(check_renaming({{10, 0}}, 3).validity);   // below 1
  EXPECT_FALSE(check_renaming({{10, 4}}, 3).validity);   // above M
  EXPECT_TRUE(check_renaming({{10, 3}}, 3).validity);    // boundary
  EXPECT_TRUE(check_renaming({{10, 1}}, 3).validity);    // boundary
}

TEST(Checker, FlagsDuplicateNames) {
  const CheckReport report = check_renaming({{10, 2}, {20, 2}}, 3);
  EXPECT_FALSE(report.uniqueness);
  EXPECT_NE(report.detail.find("assigned twice"), std::string::npos);
}

TEST(Checker, FlagsOrderViolation) {
  const CheckReport report = check_renaming({{10, 3}, {20, 1}}, 3);
  EXPECT_FALSE(report.order_preservation);
  EXPECT_TRUE(report.uniqueness);
}

TEST(Checker, FlagsNonAdjacentDuplicateEvenWhenOrderAlsoBreaks) {
  const CheckReport report = check_renaming({{10, 5}, {20, 3}, {30, 5}}, 9);
  EXPECT_FALSE(report.uniqueness);
  EXPECT_FALSE(report.order_preservation);
}

TEST(Checker, InputOrderDoesNotMatter) {
  // The checker sorts by original id internally.
  const CheckReport report = check_renaming({{30, 3}, {10, 1}, {20, 2}}, 3);
  EXPECT_TRUE(report.all_ok());
}

TEST(Checker, EmptyInputIsVacuouslyOk) {
  const CheckReport report = check_renaming({}, 3);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.min_name, 0);
  EXPECT_EQ(report.max_name, 0);
}

TEST(Checker, UndecidedProcessesDoNotBreakOtherChecks) {
  const CheckReport report = check_renaming({{10, 1}, {20, std::nullopt}, {30, 2}}, 3);
  EXPECT_FALSE(report.termination);
  EXPECT_TRUE(report.uniqueness);
  EXPECT_TRUE(report.order_preservation);
}

TEST(Checker, NegativeNameIsInvalid) {
  EXPECT_FALSE(check_renaming({{10, -5}}, 3).validity);
}

}  // namespace
}  // namespace byzrename::core
