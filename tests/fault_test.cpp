// Fault-injection substrate: plan grammar, deterministic link fates,
// harness composition with Byzantine adversaries, and degradation-aware
// checker verdicts under injected model violations.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "adversary/adversary.h"
#include "core/harness.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/rng.h"

namespace byzrename {
namespace {

/// Broadcasts its id each round and records every inbox it sees.
class InboxProbe final : public sim::ProcessBehavior {
 public:
  explicit InboxProbe(sim::Id id) : id_(id) {}

  void on_send(sim::Round, sim::Outbox& out) override { out.broadcast(sim::IdMsg{id_}); }
  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    by_round[round] = inbox;
  }
  [[nodiscard]] bool done() const override { return true; }

  std::map<sim::Round, sim::Inbox> by_round;

 private:
  sim::Id id_;
};

TEST(FaultPlan, ParsesEveryEventKind) {
  const sim::FaultPlan plan = sim::parse_fault_plan(
      "drop:0.25@2..5+dup:0.5+delay:0.75x3@1..9+crash:2@3..6+part:0-2@4..7+overshoot:1");
  ASSERT_EQ(plan.links.size(), 3u);
  EXPECT_EQ(plan.links[0].kind, sim::LinkFaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.links[0].probability, 0.25);
  EXPECT_EQ(plan.links[0].from_round, 2);
  EXPECT_EQ(plan.links[0].to_round, 5);
  EXPECT_EQ(plan.links[1].kind, sim::LinkFaultKind::kDuplicate);
  EXPECT_EQ(plan.links[1].from_round, 1);
  EXPECT_EQ(plan.links[1].to_round, 0);  // open window
  EXPECT_EQ(plan.links[2].kind, sim::LinkFaultKind::kDelay);
  EXPECT_EQ(plan.links[2].delay_rounds, 3);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].process, 2);
  EXPECT_EQ(plan.crashes[0].from_round, 3);
  EXPECT_EQ(plan.crashes[0].to_round, 6);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].lo, 0);
  EXPECT_EQ(plan.partitions[0].hi, 2);
  EXPECT_EQ(plan.fault_overshoot, 1);
  EXPECT_EQ(plan.event_count(), 6u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const sim::FaultPlan plan = sim::parse_fault_plan("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(sim::to_spec(plan), "");
}

TEST(FaultPlan, SpecRoundTripsThroughToSpec) {
  const char* specs[] = {
      "drop:0.25@2..5",
      "dup:0.5",
      "delay:0.75x3@1..9",
      "crash:2@3..6",
      "crash:4@2",
      "part:0-2@4..7",
      "overshoot:2",
      "drop:0.1+dup:0.2+crash:0@1+overshoot:1",
  };
  for (const char* spec : specs) {
    const sim::FaultPlan plan = sim::parse_fault_plan(spec);
    EXPECT_EQ(sim::parse_fault_plan(sim::to_spec(plan)), plan) << spec;
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "drop",              // no kind:value separator
      "drop:x",            // non-numeric probability
      "drop:1.5",          // probability out of [0, 1]
      "drop:0.5@3",        // link windows need r1..r2
      "delay:0.5",         // missing xK
      "delay:0.5x0",       // delay must be >= 1
      "crash:3",           // crash needs @r1
      "crash:3@0",         // rounds start at 1
      "part:0-2",          // partition needs a window
      "part:5-2@1..3",     // HI < LO
      "overshoot:0",       // overshoot must be >= 1
      "bogus:1",           // unknown kind
      "drop:0.5++dup:0.5", // doubled separator
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)sim::parse_fault_plan(spec), std::invalid_argument) << spec;
  }
}

TEST(FaultInjector, FateIsDeterministicPerSeed) {
  const sim::FaultPlan plan = sim::parse_fault_plan("drop:0.5");
  const sim::FaultInjector a(plan, 42);
  const sim::FaultInjector b(plan, 42);
  const sim::FaultInjector other(plan, 43);
  int drops = 0;
  int differs = 0;
  for (sim::Round round = 1; round <= 10; ++round) {
    for (sim::ProcessIndex s = 0; s < 8; ++s) {
      for (sim::ProcessIndex r = 0; r < 8; ++r) {
        const auto fate_a = a.fate(round, s, r);
        EXPECT_EQ(fate_a.drop, b.fate(round, s, r).drop);
        drops += fate_a.drop ? 1 : 0;
        differs += fate_a.drop != other.fate(round, s, r).drop ? 1 : 0;
      }
    }
  }
  // A 50% rule must actually fire, and a different seed must pick a
  // different subset of deliveries.
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 640);
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, CrashWindowDropsAllTrafficToProcess) {
  const sim::FaultInjector injector(sim::parse_fault_plan("crash:2@3..5"), 1);
  EXPECT_FALSE(injector.crashed(2, 2));
  EXPECT_TRUE(injector.crashed(2, 3));
  EXPECT_TRUE(injector.crashed(2, 5));
  EXPECT_FALSE(injector.crashed(2, 6));  // recovery
  EXPECT_FALSE(injector.crashed(1, 4));
  EXPECT_TRUE(injector.fate(4, 0, 2).drop);
  EXPECT_FALSE(injector.fate(6, 0, 2).drop);
}

TEST(FaultInjector, PartitionCutsOnlyCrossIslandLinks) {
  const sim::FaultInjector injector(sim::parse_fault_plan("part:0-2@2..4"), 1);
  EXPECT_TRUE(injector.fate(3, 0, 5).drop);   // island -> rest
  EXPECT_TRUE(injector.fate(3, 5, 1).drop);   // rest -> island
  EXPECT_FALSE(injector.fate(3, 0, 1).drop);  // inside the island
  EXPECT_FALSE(injector.fate(3, 4, 5).drop);  // inside the complement
  EXPECT_FALSE(injector.fate(5, 0, 5).drop);  // window closed
}

TEST(FaultInjector, DuplicationAndDelayAccumulate) {
  const sim::FaultInjector injector(
      sim::parse_fault_plan("dup:1.0+delay:1.0x2+delay:1.0x3"), 9);
  const auto fate = injector.fate(1, 0, 1);
  EXPECT_FALSE(fate.drop);
  EXPECT_EQ(fate.copies, 2);
  EXPECT_EQ(fate.delay, 5);
}

TEST(FaultInjector, DuplicatedAndDelayedDeliveryKeepsItsCopies) {
  // Composition of dup and delay on the same delivery: the duplicate must
  // travel with the delayed message, not vanish. (The network used to
  // enqueue only the first copy when a delivery was both duplicated and
  // postponed.)
  const sim::FaultPlan plan = sim::parse_fault_plan("dup:1.0+delay:1.0x2");
  const sim::FaultInjector injector(plan, 5);
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  behaviors.push_back(std::make_unique<InboxProbe>(1));
  behaviors.push_back(std::make_unique<InboxProbe>(2));
  auto* probe = static_cast<InboxProbe*>(behaviors[0].get());
  sim::Network net(std::move(behaviors), {false, false}, sim::Rng(7),
                   /*scramble_links=*/false);
  net.attach_fault_injector(&injector);
  net.run_round(1);
  net.run_round(2);
  net.run_round(3);

  // Every round-1 delivery is postponed to round 3; nothing arrives early.
  EXPECT_TRUE(probe->by_round[1].empty());
  EXPECT_TRUE(probe->by_round[2].empty());
  // Round 3 holds the round-1 batch: 2 senders x 2 copies each.
  const sim::Inbox& late = probe->by_round[3];
  ASSERT_EQ(late.size(), 4u);
  int from_first = 0;
  int from_second = 0;
  for (const sim::Delivery& d : late) {
    const auto& msg = std::get<sim::IdMsg>(*d.payload);
    if (msg.id == 1) ++from_first;
    if (msg.id == 2) ++from_second;
  }
  EXPECT_EQ(from_first, 2);
  EXPECT_EQ(from_second, 2);
  // The link-label ordering contract holds for delayed batches too.
  EXPECT_TRUE(std::is_sorted(
      late.begin(), late.end(),
      [](const sim::Delivery& a, const sim::Delivery& b) { return a.link < b.link; }));
  // Metrics account for every injected event in the round it was sent:
  // 4 delayed deliveries (2 senders x 2 receivers), each with one extra copy.
  EXPECT_EQ(net.metrics().per_round()[0].injected_delays, 4u);
  EXPECT_EQ(net.metrics().per_round()[0].injected_duplicates, 4u);
}

TEST(FaultHarness, DropAllViolatesTerminationWithProvenance) {
  core::ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.seed = 11;
  config.fault_plan = sim::parse_fault_plan("drop:1.0");
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_FALSE(result.report.all_ok());
  EXPECT_TRUE(result.report.has(core::ViolationClass::kTermination));
  ASSERT_FALSE(result.report.violations.empty());
  for (const core::ViolationRecord& record : result.report.violations) {
    if (record.cls != core::ViolationClass::kTermination) continue;
    EXPECT_GE(record.pid, 0);  // provenance: which process starved
  }
  EXPECT_NE(result.report.classes().find("termination"), std::string::npos);
}

TEST(FaultHarness, CrashingAFaultyProcessIsBenign) {
  core::ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.seed = 3;
  // Index 9 is on the Byzantine tail under the silent adversary; crashing
  // it changes nothing observable.
  config.fault_plan = sim::parse_fault_plan("crash:9@1");
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(FaultHarness, FaultedRunIsBitReproducible) {
  core::ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.adversary = "idflood";
  config.seed = 77;
  config.fault_plan = sim::parse_fault_plan("drop:0.15+dup:0.1");
  const core::ScenarioResult first = core::run_scenario(config);
  const core::ScenarioResult second = core::run_scenario(config);
  EXPECT_EQ(first.report.all_ok(), second.report.all_ok());
  EXPECT_EQ(first.report.classes(), second.report.classes());
  EXPECT_EQ(first.run.rounds, second.run.rounds);
  EXPECT_EQ(first.run.decisions, second.run.decisions);
  EXPECT_EQ(first.run.decide_rounds, second.run.decide_rounds);
  EXPECT_EQ(first.run.metrics.total_messages(), second.run.metrics.total_messages());
}

TEST(FaultHarness, OvershootExceedsDeclaredBudget) {
  core::ScenarioConfig config;
  config.params = {.n = 13, .t = 2};
  config.seed = 5;
  config.fault_plan = sim::parse_fault_plan("overshoot:1");
  // 3 actual faults against a declared budget of t=2: the run must
  // complete (whatever the verdict) rather than throw.
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_EQ(result.named.size(), 10u);  // n - (t + overshoot) correct processes
}

TEST(FaultHarness, OvershootLeavingNoCorrectProcessThrows) {
  core::ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.fault_plan = sim::parse_fault_plan("overshoot:3");
  EXPECT_THROW((void)core::run_scenario(config), std::invalid_argument);
}

TEST(FaultPlan, ParsesForgeAndRestartEvents) {
  const sim::FaultPlan plan = sim::parse_fault_plan(
      "forge:3x0.5=replay@2..6+forge:0+restart:4@5,scramble+restart:0@1");
  ASSERT_EQ(plan.forges.size(), 2u);
  EXPECT_EQ(plan.forges[0].count, 3);
  EXPECT_DOUBLE_EQ(plan.forges[0].probability, 0.5);
  EXPECT_EQ(plan.forges[0].strategy, "replay");
  EXPECT_EQ(plan.forges[0].from_round, 2);
  EXPECT_EQ(plan.forges[0].to_round, 6);
  EXPECT_EQ(plan.forges[1].count, 0);  // k = 0 is a valid no-op rule
  EXPECT_DOUBLE_EQ(plan.forges[1].probability, 1.0);
  EXPECT_EQ(plan.forges[1].strategy, "ghost");
  ASSERT_EQ(plan.restarts.size(), 2u);
  EXPECT_EQ(plan.restarts[0].process, 4);
  EXPECT_EQ(plan.restarts[0].round, 5);
  EXPECT_EQ(plan.restarts[0].state, sim::RestartState::kScramble);
  EXPECT_EQ(plan.restarts[1].process, 0);
  EXPECT_EQ(plan.restarts[1].round, 1);
  EXPECT_EQ(plan.restarts[1].state, sim::RestartState::kReset);
  EXPECT_EQ(plan.event_count(), 4u);
  // The ISSUE's `state=` spelling is accepted too.
  EXPECT_EQ(sim::parse_fault_plan("restart:4@5,state=scramble"),
            sim::parse_fault_plan("restart:4@5,scramble"));
}

TEST(FaultPlan, ForgeAndRestartRoundTripThroughToSpec) {
  const char* specs[] = {
      "forge:1",
      "forge:0",
      "forge:2x0.5",
      "forge:1=replay",
      "forge:3x0.25=ranklie@2..6",
      "restart:3@5",
      "restart:0@2,scramble",
      "restart:1@1",
      "restart:1@4,reset",
      "drop:0.1+forge:2+restart:3@4,scramble+overshoot:1",
  };
  for (const char* spec : specs) {
    const sim::FaultPlan plan = sim::parse_fault_plan(spec);
    EXPECT_EQ(sim::parse_fault_plan(sim::to_spec(plan)), plan) << spec;
  }
}

TEST(FaultPlan, RejectsMalformedForgeAndRestartSpecs) {
  const char* bad[] = {
      "forge:-1",          // negative K
      "forge:1x1.5",       // probability out of [0, 1]
      "forge:1=",          // empty strategy name
      "forge:1@3",         // link-rule windows need the full r1..r2 form
      "restart:3",         // restart needs @R
      "restart:3@0",       // rounds start at 1
      "restart:3@2,bogus", // state must be scramble or reset
      "restart:x@2",       // non-numeric PID
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)sim::parse_fault_plan(spec), std::invalid_argument) << spec;
  }
}

TEST(FaultInjector, ForgedSlotsAreDeterministicBoundedAndSeedSensitive) {
  const sim::FaultPlan plan = sim::parse_fault_plan("forge:3x0.5@2..4");
  const sim::FaultInjector a(plan, 42);
  const sim::FaultInjector b(plan, 42);
  const sim::FaultInjector other(plan, 43);
  int fired = 0;
  int differs = 0;
  std::vector<sim::FaultInjector::ForgedMessage> out_a, out_b, out_other;
  for (sim::Round round = 1; round <= 6; ++round) {
    for (sim::ProcessIndex receiver = 0; receiver < 8; ++receiver) {
      out_a.clear();
      out_b.clear();
      out_other.clear();
      a.forged(round, receiver, /*n=*/8, out_a);
      b.forged(round, receiver, /*n=*/8, out_b);
      other.forged(round, receiver, /*n=*/8, out_other);
      // Same seed: identical decisions, identities, and entropy.
      ASSERT_EQ(out_a.size(), out_b.size());
      for (std::size_t i = 0; i < out_a.size(); ++i) {
        EXPECT_EQ(out_a[i].spoofed_sender, out_b[i].spoofed_sender);
        EXPECT_EQ(out_a[i].entropy, out_b[i].entropy);
        EXPECT_GE(out_a[i].spoofed_sender, 0);
        EXPECT_LT(out_a[i].spoofed_sender, 8);
      }
      EXPECT_LE(out_a.size(), 3u);  // at most K per receiver per round
      if (round < 2 || round > 4) {
        EXPECT_TRUE(out_a.empty());  // window closed
      }
      fired += static_cast<int>(out_a.size());
      if (out_a.size() != out_other.size()) differs += 1;
    }
  }
  EXPECT_GT(fired, 0);
  EXPECT_GT(differs, 0);

  // Degenerate rules inject nothing.
  std::vector<sim::FaultInjector::ForgedMessage> out;
  sim::FaultInjector(sim::parse_fault_plan("forge:0"), 1).forged(1, 0, 8, out);
  EXPECT_TRUE(out.empty());
  sim::FaultInjector(sim::parse_fault_plan("forge:3x0"), 1).forged(1, 0, 8, out);
  EXPECT_TRUE(out.empty());
  // Probability 1 fires every slot.
  sim::FaultInjector(sim::parse_fault_plan("forge:3"), 1).forged(1, 0, 8, out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(FaultInjector, RestartSkewIsDeterministicAndBounded) {
  const sim::FaultPlan plan = sim::parse_fault_plan("restart:2@7,scramble+restart:3@1,scramble");
  const sim::FaultInjector a(plan, 5);
  const sim::FaultInjector b(plan, 5);
  const int skew = a.restart_skew(0, plan.restarts[0]);
  EXPECT_EQ(skew, b.restart_skew(0, plan.restarts[0]));
  EXPECT_GE(skew, 0);
  EXPECT_LT(skew, 7);
  // A round-1 restart has no past to scramble into.
  EXPECT_EQ(a.restart_skew(1, plan.restarts[1]), 0);
}

TEST(FaultHarness, ForgeCountZeroMatchesTheUnfaultedRun) {
  core::ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.seed = 5;
  const core::ScenarioResult plain = core::run_scenario(config);
  config.fault_plan = sim::parse_fault_plan("forge:0");
  const core::ScenarioResult noop = core::run_scenario(config);
  EXPECT_TRUE(noop.report.all_ok());
  EXPECT_EQ(noop.run.rounds, plain.run.rounds);
  EXPECT_EQ(noop.run.decisions, plain.run.decisions);
  EXPECT_EQ(noop.run.metrics.total_messages(), plain.run.metrics.total_messages());
  EXPECT_EQ(noop.run.metrics.total_injected_forgeries(), 0u);
}

TEST(FaultHarness, ImpersonationPreservesSafetyWithSmallerMarginThanByzantine) {
  // The tentpole claim, measured: k-impersonation (Okun) is strictly
  // weaker than full Byzantine. The ghost strategy's single phantom
  // identity costs at most one extra name, while the Byzantine idflood
  // adversary drives the namespace to the tight N+t-1 bound.
  core::ScenarioConfig forged;
  forged.params = {.n = 13, .t = 4};
  forged.seed = 7;
  forged.fault_plan = sim::parse_fault_plan("forge:8");
  const core::ScenarioResult under_forge = core::run_scenario(forged);
  EXPECT_TRUE(under_forge.report.all_ok()) << under_forge.report.detail;
  EXPECT_GT(under_forge.run.metrics.total_injected_forgeries(), 0u);

  core::ScenarioConfig byzantine;
  byzantine.params = {.n = 13, .t = 4};
  byzantine.seed = 7;
  byzantine.adversary = "idflood";
  const core::ScenarioResult under_byzantine = core::run_scenario(byzantine);
  const auto max_name = [](const core::ScenarioResult& result) {
    sim::Name max = 0;
    for (const core::NamedProcess& p : result.named) {
      if (p.new_name.has_value()) max = std::max(max, *p.new_name);
    }
    return max;
  };
  // idflood saturates the namespace bound exactly (EXPERIMENTS T2);
  // impersonation stays strictly below it.
  EXPECT_EQ(max_name(under_byzantine), 16);  // N + t - 1
  EXPECT_LT(max_name(under_forge), max_name(under_byzantine));
}

TEST(FaultHarness, GhostAdmissionNeedsTheWeakQuorum) {
  // The ghost id is accepted only once the forged Ready links reach the
  // N-2t amplification quorum accumulated over selection steps 3..4 —
  // k=2 stays below it at n=13, t=4 (4 links < 5), k=4 crosses it.
  const auto accepted_at = [](int k) {
    core::ScenarioConfig config;
    config.params = {.n = 13, .t = 4};
    config.seed = 7;
    config.fault_plan = sim::parse_fault_plan("forge:" + std::to_string(k));
    return core::run_scenario(config).max_accepted;
  };
  EXPECT_EQ(accepted_at(2), 9u);   // the 9 correct ids only
  EXPECT_EQ(accepted_at(4), 10u);  // + the ghost
}

TEST(FaultHarness, UnknownForgeryStrategyThrows) {
  core::ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.fault_plan = sim::parse_fault_plan("forge:1=no-such-strategy");
  EXPECT_THROW((void)core::run_scenario(config), std::invalid_argument);
}

TEST(FaultHarness, RestartAtRoundOneRecovers) {
  // Restarting before anything was sent loses nothing: the process
  // re-runs the protocol from scratch, in lockstep with everyone else.
  core::ScenarioConfig config;
  config.params = {.n = 13, .t = 2};
  config.seed = 7;
  config.extra_rounds = 8;
  config.fault_plan = sim::parse_fault_plan("restart:3@1");
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.report.restarted, 1);
  EXPECT_EQ(result.report.recovered, 1);
  int restarted_named = 0;
  for (const core::NamedProcess& p : result.named) restarted_named += p.restarted ? 1 : 0;
  EXPECT_EQ(restarted_named, 1);
  EXPECT_EQ(result.run.metrics.total_injected_restarts(), 1u);
}

TEST(FaultHarness, MidProtocolRestartStarvesButStaysSafe) {
  // A restart after the one-shot id-announcement round has no rejoin
  // path in Alg. 1: the restarted process starves (termination loss for
  // it alone) while every safety class survives — the same fail-safe
  // shape the drop sweeps show (EXPERIMENTS.md).
  core::ScenarioConfig config;
  config.params = {.n = 13, .t = 2};
  config.seed = 7;
  config.extra_rounds = 8;
  config.fault_plan = sim::parse_fault_plan("restart:3@2");
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_TRUE(result.report.has(core::ViolationClass::kTermination));
  EXPECT_FALSE(result.report.has(core::ViolationClass::kUniqueness));
  EXPECT_FALSE(result.report.has(core::ViolationClass::kOrder));
  EXPECT_FALSE(result.report.has(core::ViolationClass::kRange));
  EXPECT_EQ(result.report.restarted, 1);
  EXPECT_EQ(result.report.recovered, 0);
}

TEST(FaultHarness, RestartAfterTerminationIsANoOp) {
  // fast renaming finishes in 2 rounds; a restart scheduled for round 3
  // never fires because the run is already over.
  core::ScenarioConfig config;
  config.algorithm = core::Algorithm::kFastRenaming;
  config.params = {.n = 13, .t = 2};
  config.seed = 7;
  config.fault_plan = sim::parse_fault_plan("restart:3@3");
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.report.restarted, 0);
  EXPECT_EQ(result.run.metrics.total_injected_restarts(), 0u);
}

TEST(FaultHarness, ForgeDropDelayCompositionIsBitReproducible) {
  core::ScenarioConfig config;
  config.params = {.n = 13, .t = 4};
  config.adversary = "idflood";
  config.seed = 77;
  config.fault_plan =
      sim::parse_fault_plan("forge:2x0.5+drop:0.1+delay:0.5x2+restart:1@3,scramble");
  config.extra_rounds = 4;
  const core::ScenarioResult first = core::run_scenario(config);
  const core::ScenarioResult second = core::run_scenario(config);
  EXPECT_EQ(first.report.all_ok(), second.report.all_ok());
  EXPECT_EQ(first.report.classes(), second.report.classes());
  EXPECT_EQ(first.report.restarted, second.report.restarted);
  EXPECT_EQ(first.report.recovered, second.report.recovered);
  EXPECT_EQ(first.run.rounds, second.run.rounds);
  EXPECT_EQ(first.run.decisions, second.run.decisions);
  EXPECT_EQ(first.run.metrics.total_messages(), second.run.metrics.total_messages());
  EXPECT_EQ(first.run.metrics.total_injected_forgeries(),
            second.run.metrics.total_injected_forgeries());
  EXPECT_EQ(first.run.metrics.total_injected_restarts(),
            second.run.metrics.total_injected_restarts());
}

TEST(AdversaryRegistry, EveryListedNameResolvesAndUnknownThrows) {
  const std::vector<std::string> names = adversary::adversary_names();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    EXPECT_NO_THROW((void)adversary::find_adversary(name)) << name;
  }
  EXPECT_THROW((void)adversary::find_adversary("no-such-strategy"), std::out_of_range);
}

TEST(AdversaryRegistry, EveryStrategyComposesWithAFaultPlan) {
  for (const std::string& name : adversary::adversary_names()) {
    core::ScenarioConfig config;
    config.params = {.n = 13, .t = 4};
    config.adversary = name;
    config.seed = 21;
    config.fault_plan = sim::parse_fault_plan("drop:0.05+dup:0.05+crash:1@2..3");
    core::ScenarioResult result;
    ASSERT_NO_THROW(result = core::run_scenario(config)) << name;
    // decide_rounds provenance is populated for every physical process.
    EXPECT_EQ(result.run.decide_rounds.size(), 13u) << name;
    EXPECT_EQ(result.named.size(), 9u) << name;
  }
}

}  // namespace
}  // namespace byzrename
