// Fault-injection substrate: plan grammar, deterministic link fates,
// harness composition with Byzantine adversaries, and degradation-aware
// checker verdicts under injected model violations.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>
#include <variant>
#include <vector>

#include "adversary/adversary.h"
#include "core/harness.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/rng.h"

namespace byzrename {
namespace {

/// Broadcasts its id each round and records every inbox it sees.
class InboxProbe final : public sim::ProcessBehavior {
 public:
  explicit InboxProbe(sim::Id id) : id_(id) {}

  void on_send(sim::Round, sim::Outbox& out) override { out.broadcast(sim::IdMsg{id_}); }
  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    by_round[round] = inbox;
  }
  [[nodiscard]] bool done() const override { return true; }

  std::map<sim::Round, sim::Inbox> by_round;

 private:
  sim::Id id_;
};

TEST(FaultPlan, ParsesEveryEventKind) {
  const sim::FaultPlan plan = sim::parse_fault_plan(
      "drop:0.25@2..5+dup:0.5+delay:0.75x3@1..9+crash:2@3..6+part:0-2@4..7+overshoot:1");
  ASSERT_EQ(plan.links.size(), 3u);
  EXPECT_EQ(plan.links[0].kind, sim::LinkFaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.links[0].probability, 0.25);
  EXPECT_EQ(plan.links[0].from_round, 2);
  EXPECT_EQ(plan.links[0].to_round, 5);
  EXPECT_EQ(plan.links[1].kind, sim::LinkFaultKind::kDuplicate);
  EXPECT_EQ(plan.links[1].from_round, 1);
  EXPECT_EQ(plan.links[1].to_round, 0);  // open window
  EXPECT_EQ(plan.links[2].kind, sim::LinkFaultKind::kDelay);
  EXPECT_EQ(plan.links[2].delay_rounds, 3);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].process, 2);
  EXPECT_EQ(plan.crashes[0].from_round, 3);
  EXPECT_EQ(plan.crashes[0].to_round, 6);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].lo, 0);
  EXPECT_EQ(plan.partitions[0].hi, 2);
  EXPECT_EQ(plan.fault_overshoot, 1);
  EXPECT_EQ(plan.event_count(), 6u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const sim::FaultPlan plan = sim::parse_fault_plan("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(sim::to_spec(plan), "");
}

TEST(FaultPlan, SpecRoundTripsThroughToSpec) {
  const char* specs[] = {
      "drop:0.25@2..5",
      "dup:0.5",
      "delay:0.75x3@1..9",
      "crash:2@3..6",
      "crash:4@2",
      "part:0-2@4..7",
      "overshoot:2",
      "drop:0.1+dup:0.2+crash:0@1+overshoot:1",
  };
  for (const char* spec : specs) {
    const sim::FaultPlan plan = sim::parse_fault_plan(spec);
    EXPECT_EQ(sim::parse_fault_plan(sim::to_spec(plan)), plan) << spec;
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "drop",              // no kind:value separator
      "drop:x",            // non-numeric probability
      "drop:1.5",          // probability out of [0, 1]
      "drop:0.5@3",        // link windows need r1..r2
      "delay:0.5",         // missing xK
      "delay:0.5x0",       // delay must be >= 1
      "crash:3",           // crash needs @r1
      "crash:3@0",         // rounds start at 1
      "part:0-2",          // partition needs a window
      "part:5-2@1..3",     // HI < LO
      "overshoot:0",       // overshoot must be >= 1
      "bogus:1",           // unknown kind
      "drop:0.5++dup:0.5", // doubled separator
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)sim::parse_fault_plan(spec), std::invalid_argument) << spec;
  }
}

TEST(FaultInjector, FateIsDeterministicPerSeed) {
  const sim::FaultPlan plan = sim::parse_fault_plan("drop:0.5");
  const sim::FaultInjector a(plan, 42);
  const sim::FaultInjector b(plan, 42);
  const sim::FaultInjector other(plan, 43);
  int drops = 0;
  int differs = 0;
  for (sim::Round round = 1; round <= 10; ++round) {
    for (sim::ProcessIndex s = 0; s < 8; ++s) {
      for (sim::ProcessIndex r = 0; r < 8; ++r) {
        const auto fate_a = a.fate(round, s, r);
        EXPECT_EQ(fate_a.drop, b.fate(round, s, r).drop);
        drops += fate_a.drop ? 1 : 0;
        differs += fate_a.drop != other.fate(round, s, r).drop ? 1 : 0;
      }
    }
  }
  // A 50% rule must actually fire, and a different seed must pick a
  // different subset of deliveries.
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 640);
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, CrashWindowDropsAllTrafficToProcess) {
  const sim::FaultInjector injector(sim::parse_fault_plan("crash:2@3..5"), 1);
  EXPECT_FALSE(injector.crashed(2, 2));
  EXPECT_TRUE(injector.crashed(2, 3));
  EXPECT_TRUE(injector.crashed(2, 5));
  EXPECT_FALSE(injector.crashed(2, 6));  // recovery
  EXPECT_FALSE(injector.crashed(1, 4));
  EXPECT_TRUE(injector.fate(4, 0, 2).drop);
  EXPECT_FALSE(injector.fate(6, 0, 2).drop);
}

TEST(FaultInjector, PartitionCutsOnlyCrossIslandLinks) {
  const sim::FaultInjector injector(sim::parse_fault_plan("part:0-2@2..4"), 1);
  EXPECT_TRUE(injector.fate(3, 0, 5).drop);   // island -> rest
  EXPECT_TRUE(injector.fate(3, 5, 1).drop);   // rest -> island
  EXPECT_FALSE(injector.fate(3, 0, 1).drop);  // inside the island
  EXPECT_FALSE(injector.fate(3, 4, 5).drop);  // inside the complement
  EXPECT_FALSE(injector.fate(5, 0, 5).drop);  // window closed
}

TEST(FaultInjector, DuplicationAndDelayAccumulate) {
  const sim::FaultInjector injector(
      sim::parse_fault_plan("dup:1.0+delay:1.0x2+delay:1.0x3"), 9);
  const auto fate = injector.fate(1, 0, 1);
  EXPECT_FALSE(fate.drop);
  EXPECT_EQ(fate.copies, 2);
  EXPECT_EQ(fate.delay, 5);
}

TEST(FaultInjector, DuplicatedAndDelayedDeliveryKeepsItsCopies) {
  // Composition of dup and delay on the same delivery: the duplicate must
  // travel with the delayed message, not vanish. (The network used to
  // enqueue only the first copy when a delivery was both duplicated and
  // postponed.)
  const sim::FaultPlan plan = sim::parse_fault_plan("dup:1.0+delay:1.0x2");
  const sim::FaultInjector injector(plan, 5);
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  behaviors.push_back(std::make_unique<InboxProbe>(1));
  behaviors.push_back(std::make_unique<InboxProbe>(2));
  auto* probe = static_cast<InboxProbe*>(behaviors[0].get());
  sim::Network net(std::move(behaviors), {false, false}, sim::Rng(7),
                   /*scramble_links=*/false);
  net.attach_fault_injector(&injector);
  net.run_round(1);
  net.run_round(2);
  net.run_round(3);

  // Every round-1 delivery is postponed to round 3; nothing arrives early.
  EXPECT_TRUE(probe->by_round[1].empty());
  EXPECT_TRUE(probe->by_round[2].empty());
  // Round 3 holds the round-1 batch: 2 senders x 2 copies each.
  const sim::Inbox& late = probe->by_round[3];
  ASSERT_EQ(late.size(), 4u);
  int from_first = 0;
  int from_second = 0;
  for (const sim::Delivery& d : late) {
    const auto& msg = std::get<sim::IdMsg>(*d.payload);
    if (msg.id == 1) ++from_first;
    if (msg.id == 2) ++from_second;
  }
  EXPECT_EQ(from_first, 2);
  EXPECT_EQ(from_second, 2);
  // The link-label ordering contract holds for delayed batches too.
  EXPECT_TRUE(std::is_sorted(
      late.begin(), late.end(),
      [](const sim::Delivery& a, const sim::Delivery& b) { return a.link < b.link; }));
  // Metrics account for every injected event in the round it was sent:
  // 4 delayed deliveries (2 senders x 2 receivers), each with one extra copy.
  EXPECT_EQ(net.metrics().per_round()[0].injected_delays, 4u);
  EXPECT_EQ(net.metrics().per_round()[0].injected_duplicates, 4u);
}

TEST(FaultHarness, DropAllViolatesTerminationWithProvenance) {
  core::ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.seed = 11;
  config.fault_plan = sim::parse_fault_plan("drop:1.0");
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_FALSE(result.report.all_ok());
  EXPECT_TRUE(result.report.has(core::ViolationClass::kTermination));
  ASSERT_FALSE(result.report.violations.empty());
  for (const core::ViolationRecord& record : result.report.violations) {
    if (record.cls != core::ViolationClass::kTermination) continue;
    EXPECT_GE(record.pid, 0);  // provenance: which process starved
  }
  EXPECT_NE(result.report.classes().find("termination"), std::string::npos);
}

TEST(FaultHarness, CrashingAFaultyProcessIsBenign) {
  core::ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.seed = 3;
  // Index 9 is on the Byzantine tail under the silent adversary; crashing
  // it changes nothing observable.
  config.fault_plan = sim::parse_fault_plan("crash:9@1");
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(FaultHarness, FaultedRunIsBitReproducible) {
  core::ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.adversary = "idflood";
  config.seed = 77;
  config.fault_plan = sim::parse_fault_plan("drop:0.15+dup:0.1");
  const core::ScenarioResult first = core::run_scenario(config);
  const core::ScenarioResult second = core::run_scenario(config);
  EXPECT_EQ(first.report.all_ok(), second.report.all_ok());
  EXPECT_EQ(first.report.classes(), second.report.classes());
  EXPECT_EQ(first.run.rounds, second.run.rounds);
  EXPECT_EQ(first.run.decisions, second.run.decisions);
  EXPECT_EQ(first.run.decide_rounds, second.run.decide_rounds);
  EXPECT_EQ(first.run.metrics.total_messages(), second.run.metrics.total_messages());
}

TEST(FaultHarness, OvershootExceedsDeclaredBudget) {
  core::ScenarioConfig config;
  config.params = {.n = 13, .t = 2};
  config.seed = 5;
  config.fault_plan = sim::parse_fault_plan("overshoot:1");
  // 3 actual faults against a declared budget of t=2: the run must
  // complete (whatever the verdict) rather than throw.
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_EQ(result.named.size(), 10u);  // n - (t + overshoot) correct processes
}

TEST(FaultHarness, OvershootLeavingNoCorrectProcessThrows) {
  core::ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.fault_plan = sim::parse_fault_plan("overshoot:3");
  EXPECT_THROW((void)core::run_scenario(config), std::invalid_argument);
}

TEST(AdversaryRegistry, EveryListedNameResolvesAndUnknownThrows) {
  const std::vector<std::string> names = adversary::adversary_names();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    EXPECT_NO_THROW((void)adversary::find_adversary(name)) << name;
  }
  EXPECT_THROW((void)adversary::find_adversary("no-such-strategy"), std::out_of_range);
}

TEST(AdversaryRegistry, EveryStrategyComposesWithAFaultPlan) {
  for (const std::string& name : adversary::adversary_names()) {
    core::ScenarioConfig config;
    config.params = {.n = 13, .t = 4};
    config.adversary = name;
    config.seed = 21;
    config.fault_plan = sim::parse_fault_plan("drop:0.05+dup:0.05+crash:1@2..3");
    core::ScenarioResult result;
    ASSERT_NO_THROW(result = core::run_scenario(config)) << name;
    // decide_rounds provenance is populated for every physical process.
    EXPECT_EQ(result.run.decide_rounds.size(), 13u) << name;
    EXPECT_EQ(result.named.size(), 9u) << name;
  }
}

}  // namespace
}  // namespace byzrename
