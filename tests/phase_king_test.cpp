#include "consensus/phase_king.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/network.h"
#include "sim/runner.h"

namespace byzrename::consensus {
namespace {

/// Faulty participant: equivocates in value rounds and, when it is the
/// king, tells each half of the system a different value.
class ByzantineKing final : public sim::ProcessBehavior {
 public:
  ByzantineKing(int n, sim::ProcessIndex my_index) : n_(n), my_index_(my_index) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    const int phase = (round - 1) / 2;
    const bool is_round_a = (round - 1) % 2 == 0;
    if (!is_round_a && my_index_ != phase) return;  // not my phase to speak as king
    for (int dest = 0; dest < n_; ++dest) {
      out.send_to(dest, sim::WordMsg{round, {dest < n_ / 2 ? 111 : 222}});
    }
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  int n_;
  sim::ProcessIndex my_index_;
};

std::vector<std::int64_t> run_phase_king(int n, int t, const std::vector<std::int64_t>& inputs,
                                         int faulty) {
  const sim::SystemParams params{.n = n, .t = t};
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  std::vector<bool> byzantine;
  const int correct = n - faulty;
  for (int i = 0; i < correct; ++i) {
    behaviors.push_back(std::make_unique<PhaseKingProcess>(params, i, inputs[static_cast<std::size_t>(i)]));
    byzantine.push_back(false);
  }
  for (int i = correct; i < n; ++i) {
    behaviors.push_back(std::make_unique<ByzantineKing>(n, i));
    byzantine.push_back(true);
  }
  sim::Network net(std::move(behaviors), std::move(byzantine), sim::Rng(4), /*scramble=*/false);
  sim::run_to_completion(net, PhaseKingProcess::total_rounds(params));
  std::vector<std::int64_t> decided;
  for (int i = 0; i < correct; ++i) {
    decided.push_back(dynamic_cast<const PhaseKingProcess&>(net.behavior(i)).decided_value());
  }
  return decided;
}

TEST(PhaseKing, RequiresNGreaterThan4t) {
  EXPECT_THROW(PhaseKingInstance({.n = 8, .t = 2}, 0), std::invalid_argument);
  EXPECT_NO_THROW(PhaseKingInstance({.n = 9, .t = 2}, 0));
}

TEST(PhaseKing, ValidityWithUnanimousInputs) {
  const auto decided = run_phase_king(9, 2, std::vector<std::int64_t>(7, 5), 2);
  for (const std::int64_t v : decided) EXPECT_EQ(v, 5);
}

TEST(PhaseKing, AgreementWithSplitInputs) {
  std::vector<std::int64_t> inputs{1, 1, 1, 2, 2, 2, 3};
  const auto decided = run_phase_king(9, 2, inputs, 2);
  const std::set<std::int64_t> values(decided.begin(), decided.end());
  EXPECT_EQ(values.size(), 1u) << "correct processes decided differently";
}

TEST(PhaseKing, NoFaultsDecidesPlurality) {
  const auto decided = run_phase_king(5, 1, {7, 7, 7, 2, 2}, 0);
  for (const std::int64_t v : decided) EXPECT_EQ(v, 7);
}

TEST(PhaseKing, AgreementAcrossManySeedsAndSplits) {
  for (int split = 1; split < 8; ++split) {
    std::vector<std::int64_t> inputs;
    for (int i = 0; i < 11; ++i) inputs.push_back(i < split ? 100 : 200);
    const auto decided = run_phase_king(13, 3, inputs, 2);
    const std::set<std::int64_t> values(decided.begin(), decided.end());
    EXPECT_EQ(values.size(), 1u) << "split=" << split;
  }
}

TEST(PhaseKing, TotalRoundsIsLinearInT) {
  EXPECT_EQ(PhaseKingProcess::total_rounds({.n = 5, .t = 1}), 4);
  EXPECT_EQ(PhaseKingProcess::total_rounds({.n = 9, .t = 2}), 6);
  EXPECT_EQ(PhaseKingProcess::total_rounds({.n = 21, .t = 5}), 12);
}

TEST(PhaseKingInstance, SilentKingKeepsPlurality) {
  PhaseKingInstance instance({.n = 9, .t = 2}, 4);
  instance.on_round_a({4, 4, 4, 9, 9});
  instance.on_round_b(std::nullopt);
  EXPECT_EQ(instance.value(), 4);
}

TEST(PhaseKingInstance, WeakCountAdoptsKing) {
  PhaseKingInstance instance({.n = 9, .t = 2}, 4);
  instance.on_round_a({4, 4, 4, 9, 9});  // plurality 4 with count 3 < N-t = 7
  instance.on_round_b(9);
  EXPECT_EQ(instance.value(), 9);
}

TEST(PhaseKingInstance, StrongCountIgnoresKing) {
  PhaseKingInstance instance({.n = 9, .t = 2}, 4);
  instance.on_round_a({4, 4, 4, 4, 4, 4, 4, 9, 9});  // count 7 >= N-t
  instance.on_round_b(9);
  EXPECT_EQ(instance.value(), 4);
}

TEST(PhaseKingInstance, TiesBreakTowardSmallestValue) {
  PhaseKingInstance instance({.n = 9, .t = 2}, 0);
  instance.on_round_a({8, 3, 8, 3});
  instance.on_round_b(std::nullopt);
  EXPECT_EQ(instance.value(), 3);
}

}  // namespace
}  // namespace byzrename::consensus
