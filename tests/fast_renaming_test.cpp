#include "core/fast_renaming.h"

#include <gtest/gtest.h>

#include <map>

#include "core/harness.h"

namespace byzrename::core {
namespace {

TEST(FastRenaming, RejectsInsufficientResilience) {
  // N > 2t^2 + t.
  EXPECT_THROW(FastRenamingProcess({.n = 3, .t = 1}, 1), std::invalid_argument);
  EXPECT_NO_THROW(FastRenamingProcess({.n = 4, .t = 1}, 1));
  EXPECT_THROW(FastRenamingProcess({.n = 10, .t = 2}, 1), std::invalid_argument);
  EXPECT_NO_THROW(FastRenamingProcess({.n = 11, .t = 2}, 1));
  EXPECT_THROW(FastRenamingProcess({.n = 21, .t = 3}, 1), std::invalid_argument);
  EXPECT_NO_THROW(FastRenamingProcess({.n = 22, .t = 3}, 1));
}

TEST(FastRenaming, CompletesInExactlyTwoRounds) {
  ScenarioConfig config;
  config.params = {.n = 11, .t = 2};
  config.algorithm = Algorithm::kFastRenaming;
  config.adversary = "silent";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.run.rounds, 2);
}

TEST(FastRenaming, NoFaultsGivesUniformSpacing) {
  // With every process correct, every counter is N >= N-t, so names are
  // (N-t), 2(N-t), ... in id order.
  ScenarioConfig config;
  config.params = {.n = 6, .t = 1};
  config.algorithm = Algorithm::kFastRenaming;
  config.actual_faults = 0;
  const ScenarioResult result = run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  for (std::size_t i = 0; i < result.named.size(); ++i) {
    EXPECT_EQ(result.named[i].new_name, static_cast<sim::Name>((i + 1) * (6 - 1)));
  }
}

TEST(FastRenaming, NamespaceWithinNSquared) {
  for (const char* adversary : {"silent", "idflood", "suppress", "random", "invalid", "crash"}) {
    ScenarioConfig config;
    config.params = {.n = 11, .t = 2};
    config.algorithm = Algorithm::kFastRenaming;
    config.adversary = adversary;
    config.seed = 23;
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << adversary << ": " << result.report.detail;
    EXPECT_LE(result.report.max_name, 11 * 11) << adversary;
  }
}

TEST(FastRenaming, LemmaVI2MinimumGapBetweenCorrectNames) {
  // newid[id'] >= newid[id] + (N-t) for correct id < id', at every
  // correct process (Lemma VI.2).
  ScenarioConfig config;
  config.params = {.n = 11, .t = 2};
  config.algorithm = Algorithm::kFastRenaming;
  config.adversary = "suppress";
  config.seed = 7;
  std::vector<std::map<sim::Id, sim::Name>> all_newids;
  std::vector<sim::Id> correct_ids;
  config.observer = [&](sim::Round round, const sim::Network& net) {
    if (round != 2) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& fast = dynamic_cast<const FastRenamingProcess&>(net.behavior(i));
      all_newids.push_back(fast.newid());
      correct_ids.push_back(fast.my_id());
    }
  };
  const ScenarioResult result = run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  std::sort(correct_ids.begin(), correct_ids.end());
  for (const auto& newid : all_newids) {
    for (std::size_t i = 1; i < correct_ids.size(); ++i) {
      const auto lo = newid.find(correct_ids[i - 1]);
      const auto hi = newid.find(correct_ids[i]);
      ASSERT_NE(lo, newid.end());
      ASSERT_NE(hi, newid.end());
      EXPECT_GE(hi->second - lo->second, 11 - 2);
    }
  }
}

TEST(FastRenaming, LemmaVI1DiscrepancyBound) {
  // The estimates of a correct id's name across correct processes differ
  // by at most 2t^2 (Lemma VI.1).
  ScenarioConfig config;
  config.params = {.n = 11, .t = 2};
  config.algorithm = Algorithm::kFastRenaming;
  config.adversary = "suppress";
  config.seed = 13;
  std::vector<std::map<sim::Id, sim::Name>> all_newids;
  std::set<sim::Id> correct_ids;
  config.observer = [&](sim::Round round, const sim::Network& net) {
    if (round != 2) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& fast = dynamic_cast<const FastRenamingProcess&>(net.behavior(i));
      all_newids.push_back(fast.newid());
      correct_ids.insert(fast.my_id());
    }
  };
  (void)run_scenario(config);
  ASSERT_FALSE(all_newids.empty());
  for (const sim::Id id : correct_ids) {
    sim::Name lo = std::numeric_limits<sim::Name>::max();
    sim::Name hi = std::numeric_limits<sim::Name>::min();
    for (const auto& newid : all_newids) {
      const auto it = newid.find(id);
      ASSERT_NE(it, newid.end());
      lo = std::min(lo, it->second);
      hi = std::max(hi, it->second);
    }
    EXPECT_LE(hi - lo, 2 * 2 * 2) << "id " << id;  // 2t^2, t = 2
  }
}

TEST(FastRenaming, InvalidEchoesAreRejectedAndCounted) {
  ScenarioConfig config;
  config.params = {.n = 11, .t = 2};
  config.algorithm = Algorithm::kFastRenaming;
  config.adversary = "invalid";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  // 2 faulty senders x 9 correct receivers, one bad MultiEcho each.
  EXPECT_EQ(result.total_rejected, 2 * 9);
}

TEST(FastRenaming, EchoFromSilentLinkIsRejected) {
  // A MultiEcho from a process that never announced an id in step 1 must
  // fail isValid (linkid == bottom). The silent adversary has no echoes,
  // so exercise it directly at the unit level.
  const sim::SystemParams params{.n = 4, .t = 1};
  FastRenamingProcess p(params, 50);
  // Step 1: hear 3 ids (links 0..2); link 3 stays silent.
  sim::Inbox step1;
  step1.push_back({0, sim::IdMsg{50}});
  step1.push_back({1, sim::IdMsg{60}});
  step1.push_back({2, sim::IdMsg{70}});
  p.on_receive(1, step1);
  // Step 2: valid echoes from links 0-2, plus one from the silent link 3.
  sim::Inbox step2;
  for (sim::LinkIndex link = 0; link < 3; ++link) {
    step2.push_back({link, sim::MultiEchoMsg{{50, 60, 70}}});
  }
  step2.push_back({3, sim::MultiEchoMsg{{50, 60, 70}}});
  p.on_receive(2, step2);
  EXPECT_EQ(p.rejected_echoes(), 1);
  ASSERT_TRUE(p.decision().has_value());
  // Counters clamp at N-t = 3: names 3, 6, 9 for ids 50, 60, 70.
  EXPECT_EQ(*p.decision(), 3);
}

TEST(FastRenaming, RepeatedIdsInOneEchoCountOnce) {
  const sim::SystemParams params{.n = 4, .t = 1};
  FastRenamingProcess p(params, 50);
  sim::Inbox step1;
  for (sim::LinkIndex link = 0; link < 4; ++link) step1.push_back({link, sim::IdMsg{50 + link}});
  p.on_receive(1, step1);
  // One echo repeats id 50 — the counter may rise by one only.
  sim::Inbox step2;
  step2.push_back({0, sim::MultiEchoMsg{{50, 50, 51, 52}}});
  step2.push_back({1, sim::MultiEchoMsg{{50, 51, 52, 53}}});
  step2.push_back({2, sim::MultiEchoMsg{{50, 51, 52, 53}}});
  p.on_receive(2, step2);
  ASSERT_TRUE(p.decision().has_value());
  // counter[50] = 3 (clamped at N-t = 3) -> my name is 3.
  EXPECT_EQ(*p.decision(), 3);
}

TEST(FastRenaming, OversizedEchoIsRejected) {
  const sim::SystemParams params{.n = 4, .t = 1};
  FastRenamingProcess p(params, 50);
  sim::Inbox step1;
  for (sim::LinkIndex link = 0; link < 4; ++link) step1.push_back({link, sim::IdMsg{50 + link}});
  p.on_receive(1, step1);
  sim::MultiEchoMsg oversized;
  for (int i = 0; i < 5; ++i) oversized.ids.push_back(50 + i);  // 5 > N distinct ids
  sim::Inbox step2;
  step2.push_back({0, oversized});
  p.on_receive(2, step2);
  EXPECT_EQ(p.rejected_echoes(), 1);
}

TEST(FastRenaming, LowOverlapEchoIsRejected) {
  const sim::SystemParams params{.n = 4, .t = 1};
  FastRenamingProcess p(params, 50);
  sim::Inbox step1;
  for (sim::LinkIndex link = 0; link < 4; ++link) step1.push_back({link, sim::IdMsg{50 + link}});
  p.on_receive(1, step1);
  // Overlap 2 < N-t = 3 with my timely {50,51,52,53}.
  sim::Inbox step2;
  step2.push_back({0, sim::MultiEchoMsg{{50, 51, 99, 98}}});
  p.on_receive(2, step2);
  EXPECT_EQ(p.rejected_echoes(), 1);
}

TEST(FastRenaming, StressLargerSystem) {
  ScenarioConfig config;
  config.params = {.n = 29, .t = 3};  // 2*9+3 = 21 < 29
  config.algorithm = Algorithm::kFastRenaming;
  config.adversary = "idflood";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_LE(result.report.max_name, 29 * 29);
}

}  // namespace
}  // namespace byzrename::core
