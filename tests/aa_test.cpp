#include "aa/byzantine_aa.h"

#include <gtest/gtest.h>

#include <memory>

#include "aa/crash_aa.h"
#include "adversary/adversary.h"
#include "sim/network.h"
#include "sim/runner.h"

namespace byzrename::aa {
namespace {

using numeric::Rational;

struct AARun {
  std::vector<Rational> values;          ///< final values of correct processes
  std::vector<Rational> initial;        ///< initial values of correct processes
  std::vector<std::vector<Rational>> per_round;  ///< correct values after each round
};

/// Byzantine AA network with `faulty` equivocating processes that send
/// value `low` to the first half and `high` to the rest.
class EquivocatorBehavior final : public sim::ProcessBehavior {
 public:
  EquivocatorBehavior(int n, Rational low, Rational high)
      : n_(n), low_(std::move(low)), high_(std::move(high)) {}
  void on_send(sim::Round, sim::Outbox& out) override {
    for (int dest = 0; dest < n_; ++dest) {
      out.send_to(dest, sim::AAValueMsg{dest < n_ / 2 ? low_ : high_});
    }
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  int n_;
  Rational low_;
  Rational high_;
};

AARun run_byzantine_aa(const sim::SystemParams& params, int faulty, int rounds,
                       const std::vector<Rational>& initial) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  std::vector<bool> byzantine;
  const int correct = params.n - faulty;
  for (int i = 0; i < correct; ++i) {
    behaviors.push_back(std::make_unique<ByzantineAAProcess>(params, initial[static_cast<std::size_t>(i)], rounds));
    byzantine.push_back(false);
  }
  for (int i = 0; i < faulty; ++i) {
    behaviors.push_back(
        std::make_unique<EquivocatorBehavior>(params.n, Rational(-1'000'000), Rational(1'000'000)));
    byzantine.push_back(true);
  }
  sim::Network net(std::move(behaviors), std::move(byzantine), sim::Rng(5));
  AARun run;
  run.initial = initial;
  sim::run_to_completion(net, rounds, [&](sim::Round, const sim::Network& n) {
    std::vector<Rational> snapshot;
    for (sim::ProcessIndex i = 0; i < correct; ++i) {
      snapshot.push_back(dynamic_cast<const ByzantineAAProcess&>(n.behavior(i)).value());
    }
    run.per_round.push_back(snapshot);
  });
  for (sim::ProcessIndex i = 0; i < correct; ++i) {
    run.values.push_back(dynamic_cast<const ByzantineAAProcess&>(net.behavior(i)).value());
  }
  return run;
}

Rational spread(const std::vector<Rational>& values) {
  Rational lo = values.front();
  Rational hi = values.front();
  for (const Rational& v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}

TEST(ByzantineAA, RejectsInsufficientResilience) {
  EXPECT_THROW(ByzantineAAProcess({.n = 6, .t = 2}, Rational(0), 1), std::invalid_argument);
  EXPECT_NO_THROW(ByzantineAAProcess({.n = 7, .t = 2}, Rational(0), 1));
}

TEST(ByzantineAA, UnanimousInputIsFixpoint) {
  const sim::SystemParams params{.n = 7, .t = 2};
  const std::vector<Rational> initial(5, Rational(42));
  const AARun run = run_byzantine_aa(params, 2, 3, initial);
  for (const Rational& v : run.values) EXPECT_EQ(v, Rational(42));
}

TEST(ByzantineAA, OutputsStayInCorrectRange) {
  const sim::SystemParams params{.n = 7, .t = 2};
  const std::vector<Rational> initial{Rational(0), Rational(5), Rational(10), Rational(15),
                                      Rational(20)};
  const AARun run = run_byzantine_aa(params, 2, 5, initial);
  for (const Rational& v : run.values) {
    EXPECT_GE(v, Rational(0));
    EXPECT_LE(v, Rational(20));
  }
}

TEST(ByzantineAA, ContractsByAtLeastSigmaEachRound) {
  const sim::SystemParams params{.n = 13, .t = 3};
  const int sigma = core::sigma_t(params);  // floor(7/3)+1 = 3
  std::vector<Rational> initial;
  for (int i = 0; i < 10; ++i) initial.emplace_back(100 * i);
  const AARun run = run_byzantine_aa(params, 3, 6, initial);
  Rational previous = spread(initial);
  for (const auto& snapshot : run.per_round) {
    const Rational current = spread(snapshot);
    EXPECT_LE(current * Rational(sigma), previous)
        << "round spread " << current << " vs previous " << previous;
    previous = current;
  }
}

TEST(ByzantineAA, ConvergesGeometrically) {
  const sim::SystemParams params{.n = 10, .t = 3};
  std::vector<Rational> initial;
  for (int i = 0; i < 7; ++i) initial.emplace_back(i);
  const AARun run = run_byzantine_aa(params, 3, 16, initial);
  // Contraction rate here is 2 per round: spread 6 / 2^16 < 1/1000.
  EXPECT_LT(spread(run.values), Rational::of(1, 1000));
}

TEST(ByzantineAA, OversizedValuesAreIgnored) {
  // A value whose encoding exceeds the budget must not poison the round.
  const sim::SystemParams params{.n = 4, .t = 1};
  ByzantineAAProcess p(params, Rational(5), 1, /*max_value_bits=*/128);
  sim::Inbox inbox;
  inbox.push_back({0, sim::AAValueMsg{Rational(5)}});
  inbox.push_back({1, sim::AAValueMsg{Rational(5)}});
  inbox.push_back({2, sim::AAValueMsg{Rational(5)}});
  inbox.push_back({3, sim::AAValueMsg{Rational(numeric::BigInt(1), numeric::BigInt(1) << 4096)}});
  p.on_receive(1, inbox);
  EXPECT_EQ(p.value(), Rational(5));
}

TEST(ByzantineAA, DuplicateLinkValuesCountOnce) {
  const sim::SystemParams params{.n = 4, .t = 1};
  ByzantineAAProcess p(params, Rational(0), 1);
  sim::Inbox inbox;
  // Link 0 spams three values; only the first counts, rest of ballot is
  // padded with the local value 0.
  inbox.push_back({0, sim::AAValueMsg{Rational(100)}});
  inbox.push_back({0, sim::AAValueMsg{Rational(200)}});
  inbox.push_back({0, sim::AAValueMsg{Rational(300)}});
  p.on_receive(1, inbox);
  // Ballot [100, 0, 0, 0] sorted [0,0,0,100], trim 1 -> [0,0,0]... wait
  // trim removes 1 low and 1 high: [0, 0]; select_1 = both; avg 0.
  EXPECT_EQ(p.value(), Rational(0));
}

TEST(CrashAA, MeanConvergesWithoutFaults) {
  const sim::SystemParams params{.n = 5, .t = 0};
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  std::vector<bool> byzantine(5, false);
  for (int i = 0; i < 5; ++i) {
    behaviors.push_back(std::make_unique<CrashAAProcess>(params, Rational(i * 10), 1));
  }
  sim::Network net(std::move(behaviors), std::move(byzantine), sim::Rng(3));
  sim::run_to_completion(net, 1);
  for (sim::ProcessIndex i = 0; i < 5; ++i) {
    EXPECT_EQ(dynamic_cast<const CrashAAProcess&>(net.behavior(i)).value(), Rational(20));
  }
}

TEST(CrashAA, SurvivesTotalSilence) {
  const sim::SystemParams params{.n = 3, .t = 2};
  CrashAAProcess p(params, Rational(7), 1);
  p.on_receive(1, {});
  EXPECT_EQ(p.value(), Rational(7));
  EXPECT_TRUE(p.done());
}

}  // namespace
}  // namespace byzrename::aa
