#include "core/op_renaming.h"

#include <gtest/gtest.h>

#include <map>

#include "core/harness.h"
#include "numeric/rational.h"

namespace byzrename::core {
namespace {

using numeric::Rational;

TEST(OpRenaming, RejectsInsufficientResilience) {
  EXPECT_THROW(OpRenamingProcess({.n = 6, .t = 2}, 1), std::invalid_argument);
  EXPECT_THROW(OpRenamingProcess({.n = 3, .t = 1}, 1), std::invalid_argument);
  EXPECT_NO_THROW(OpRenamingProcess({.n = 7, .t = 2}, 1));
}

TEST(OpRenaming, TotalStepsMatchesPaperFormula) {
  // 3*ceil(log2 t) + 7 steps total (Section IV-D).
  EXPECT_EQ(OpRenamingProcess({.n = 4, .t = 1}, 1).total_steps(), 7);    // log 1 = 0
  EXPECT_EQ(OpRenamingProcess({.n = 7, .t = 2}, 1).total_steps(), 10);   // 3*1+7
  EXPECT_EQ(OpRenamingProcess({.n = 13, .t = 4}, 1).total_steps(), 13);  // 3*2+7
  EXPECT_EQ(OpRenamingProcess({.n = 22, .t = 7}, 1).total_steps(), 16);  // 3*3+7
}

TEST(OpRenaming, NoFaultsYieldsRankOrder) {
  ScenarioConfig config;
  config.params = {.n = 6, .t = 0};
  config.adversary = "silent";
  config.actual_faults = 0;
  const ScenarioResult result = run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  // With t = 0 names are exactly the sorted ranks 1..N.
  for (std::size_t i = 0; i < result.named.size(); ++i) {
    EXPECT_EQ(result.named[i].new_name, static_cast<sim::Name>(i + 1));
  }
  EXPECT_EQ(result.run.rounds, 4);  // no voting phase needed
}

TEST(OpRenaming, SilentFaultsStillRenameCorrectly) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.adversary = "silent";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_LE(result.report.max_name, 7 + 2 - 1);
  EXPECT_EQ(result.run.rounds, 10);
}

TEST(OpRenaming, DeterministicAcrossIdenticalSeeds) {
  ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.adversary = "random";
  config.seed = 42;
  const ScenarioResult a = run_scenario(config);
  const ScenarioResult b = run_scenario(config);
  ASSERT_EQ(a.named.size(), b.named.size());
  for (std::size_t i = 0; i < a.named.size(); ++i) {
    EXPECT_EQ(a.named[i].new_name, b.named[i].new_name);
  }
}

TEST(OpRenaming, NamespaceBoundHoldsUnderIdFlood) {
  // The flood maximizes |accepted|; names must still fit in N+t-1.
  for (int t = 1; t <= 5; ++t) {
    const int n = 3 * t + 1;
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "idflood";
    config.seed = static_cast<std::uint64_t>(t);
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << "t=" << t << ": " << result.report.detail;
    EXPECT_LE(result.report.max_name, n + t - 1) << "t=" << t;
  }
}

TEST(OpRenaming, InvalidVotesAreAllRejected) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.adversary = "invalid";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  // Every decodable-but-invalid vote must have been rejected and counted:
  // 2 faulty senders x 5 correct receivers x 6 voting rounds, minus the
  // few sends where the adversary used a wrong message type entirely
  // (those are not votes, so they are skipped rather than counted).
  const int voting_rounds = default_approximation_iterations(2);
  EXPECT_GE(result.total_rejected, 2 * 4 * voting_rounds);
  EXPECT_LE(result.total_rejected, 2 * 5 * voting_rounds);
}

TEST(OpRenaming, InvalidVotesRunMatchesMuteRun) {
  // Validation must make the malformed-vote adversary observationally
  // identical to one that participates in id selection and then goes
  // silent ("mute") — the selection phases are identical, and every
  // voting-phase message is rejected.
  ScenarioConfig invalid;
  invalid.params = {.n = 10, .t = 3};
  invalid.adversary = "invalid";
  invalid.seed = 5;
  ScenarioConfig mute = invalid;
  mute.adversary = "mute";
  const ScenarioResult a = run_scenario(invalid);
  const ScenarioResult b = run_scenario(mute);
  ASSERT_EQ(a.named.size(), b.named.size());
  for (std::size_t i = 0; i < a.named.size(); ++i) {
    EXPECT_EQ(a.named[i].new_name, b.named[i].new_name) << "position " << i;
  }
}

TEST(OpRenaming, RanksStayDeltaSeparatedEveryRound) {
  // Corollary IV.6, observed directly: at every correct process, in every
  // voting round, ranks of any two correct ids stay >= delta apart.
  ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.adversary = "split";
  config.seed = 11;
  const Rational d = delta(config.params);
  bool checked = false;
  config.observer = [&](sim::Round round, const sim::Network& net) {
    if (round <= 4) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& op = dynamic_cast<const OpRenamingProcess&>(net.behavior(i));
      const Rational* previous = nullptr;
      for (const sim::Id id : op.timely()) {
        const auto it = op.ranks().find(id);
        ASSERT_NE(it, op.ranks().end());
        if (previous != nullptr) {
          EXPECT_GE(it->second - *previous, d) << "round " << round;
          checked = true;
        }
        previous = &it->second;
      }
    }
  };
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_TRUE(checked);
}

TEST(OpRenaming, ConvergenceReachesDecisionMargin) {
  // Lemma IV.9: after all voting rounds the spread of each timely id's
  // rank across correct processes is < (delta-1)/2.
  ScenarioConfig config;
  config.params = {.n = 13, .t = 4};
  config.adversary = "split";
  config.seed = 3;
  const Rational margin =
      (delta(config.params) - Rational(1)) / Rational(2);
  const int last_round = expected_steps(Algorithm::kOpRenaming, config.params);
  bool checked = false;
  config.observer = [&](sim::Round round, const sim::Network& net) {
    if (round != last_round) return;
    std::map<sim::Id, std::pair<Rational, Rational>> extremes;  // id -> (min, max)
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& op = dynamic_cast<const OpRenamingProcess&>(net.behavior(i));
      for (const auto& [id, rank] : op.ranks()) {
        const auto it = extremes.find(id);
        if (it == extremes.end()) {
          extremes.emplace(id, std::make_pair(rank, rank));
        } else {
          it->second.first = std::min(it->second.first, rank);
          it->second.second = std::max(it->second.second, rank);
        }
      }
    }
    for (const auto& [id, range] : extremes) {
      EXPECT_LT(range.second - range.first, margin) << "id " << id;
      checked = true;
    }
  };
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_TRUE(checked);
}

TEST(OpRenaming, FewerActualFaultsThanBudget) {
  ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.actual_faults = 1;
  config.adversary = "skew";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(OpRenaming, AdjacentNumericIdsStayOrdered) {
  // Order preservation with deliberately adjacent original ids.
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.correct_ids = {100, 101, 102, 103, 104};
  config.adversary = "split";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(OpRenaming, ConstantTimeModeRunsEightSteps) {
  // Section V: t^2 + 2t < N allows 4 voting iterations (8 steps total)
  // and a strong namespace of exactly N.
  ScenarioConfig config;
  config.params = {.n = 16, .t = 3};  // 3^2 + 6 = 15 < 16
  config.algorithm = Algorithm::kOpRenamingConstantTime;
  config.adversary = "idflood";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.run.rounds, 8);
  EXPECT_LE(result.report.max_name, 16);
}

TEST(OpRenaming, ConstantTimeStrongNamespaceAcrossAdversaries) {
  for (const char* adversary : {"silent", "idflood", "split", "skew", "suppress", "random"}) {
    ScenarioConfig config;
    config.params = {.n = 24, .t = 4};  // 4^2 + 8 = 24 == n? needs n > 24
    config.params.n = 25;
    config.algorithm = Algorithm::kOpRenamingConstantTime;
    config.adversary = adversary;
    config.seed = 17;
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << adversary << ": " << result.report.detail;
    EXPECT_LE(result.report.max_name, 25) << adversary;
  }
}

}  // namespace
}  // namespace byzrename::core
