// Fixed-width rank kernel: boundary behavior of the numeric layer and
// the oracle cross-check contract — the fixed kernel must be observably
// indistinguishable from the exact-Rational oracle on every output a
// run exposes (verdicts, names, per-round metrics JSONL, audit records,
// campaign aggregates), across adversaries, fault plans, and thread
// counts. The suite carries the "kernel" ctest label; the ASan and TSan
// CI jobs both run it.

#include "numeric/fixed_rank.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "aa/byzantine_aa.h"
#include "adversary/adversary.h"
#include "core/harness.h"
#include "core/params.h"
#include "core/voting_kernel.h"
#include "exp/campaign.h"
#include "exp/spec_parse.h"
#include "obs/complexity_audit.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "sim/codec.h"
#include "sim/fault.h"
#include "sim/payload.h"

namespace byzrename {
namespace {

using numeric::BigInt;
using numeric::FixedConvert;
using numeric::FixedSpec;
using numeric::kFixedRankLimbs;
using numeric::limb_t;
using numeric::Rational;

// ---------------------------------------------------------------------------
// FixedSpec derivation (the §IV-D bit budget made concrete)

TEST(FixedSpec, DerivesCommonDenominatorFromBitBudget) {
  // n=64, t=21: c = floor((64 - 42 - 1)/21) + 1 = 2, I = 3*ceil(lg 21)+3
  // = 18, S = 3(n+t) * c^I = 255 * 2^18.
  const int iterations = core::default_approximation_iterations(21);
  ASSERT_EQ(iterations, 18);
  const FixedSpec spec = numeric::derive_fixed_spec(64, 21, iterations);
  ASSERT_TRUE(spec.ok);
  EXPECT_EQ(spec.select_count, 2);
  EXPECT_EQ(spec.width, 2);
  EXPECT_EQ(spec.scale_bits, 26u);  // bits(255 * 2^18) = 8 + 18
  EXPECT_EQ(spec.scale[0], std::uint64_t{255} << 18);
  EXPECT_EQ(spec.scale[1], 0u);
  // delta * S = S + c^I; here 255*2^18 + 2^18 = 2^26.
  EXPECT_EQ(spec.delta_scaled[0], std::uint64_t{1} << 26);
  EXPECT_EQ(spec.delta_scaled[1], 0u);
}

TEST(FixedSpec, FaultFreeInstanceKeepsEveryValue) {
  const FixedSpec spec = numeric::derive_fixed_spec(5, 0, 0);
  ASSERT_TRUE(spec.ok);
  EXPECT_EQ(spec.select_count, 5);  // t = 0: select_t keeps all N values
}

TEST(FixedSpec, OverBudgetIterationCountDowngradesToOracle) {
  // c^I alone would exceed the limb capacity: the instance must refuse
  // the fixed path (spec.ok == false) rather than silently truncate.
  const FixedSpec spec = numeric::derive_fixed_spec(64, 21, 400);
  EXPECT_FALSE(spec.ok);
}

// ---------------------------------------------------------------------------
// Conversion boundaries: the symmetric two's-complement range edge

class FixedConvertBoundary : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = numeric::derive_fixed_spec(64, 21, core::default_approximation_iterations(21));
    ASSERT_TRUE(spec_.ok);
  }
  FixedSpec spec_;
};

TEST_F(FixedConvertBoundary, GridValuesRoundTripExactly) {
  const sim::SystemParams params{.n = 64, .t = 21};
  const Rational d = core::delta(params);
  limb_t out[kFixedRankLimbs];
  for (int position = 1; position <= 85; ++position) {
    const Rational value = Rational(position) * d;
    ASSERT_EQ(numeric::rational_to_fixed(value, spec_, out), FixedConvert::kOk);
    EXPECT_EQ(numeric::fixed_to_rational(out, spec_.width, spec_.scale_big), value);
  }
  const Rational negative = Rational(-7) * d;
  ASSERT_EQ(numeric::rational_to_fixed(negative, spec_, out), FixedConvert::kOk);
  EXPECT_EQ(numeric::fixed_to_rational(out, spec_.width, spec_.scale_big), negative);
}

TEST_F(FixedConvertBoundary, DenominatorNotDividingScaleIsOffGrid) {
  // S = 255 * 2^18 = 3*5*17 * 2^18: 7 does not divide it.
  limb_t out[kFixedRankLimbs];
  EXPECT_EQ(numeric::rational_to_fixed(Rational::of(1, 7), spec_, out),
            FixedConvert::kOffGrid);
  // A denominator larger than S itself can never divide it.
  const BigInt huge_den =
      BigInt(2) * spec_.scale_big + BigInt(1);  // odd, > S: no reduction, no division
  EXPECT_EQ(numeric::rational_to_fixed(Rational(BigInt(1), huge_den), spec_, out),
            FixedConvert::kOffGrid);
}

TEST_F(FixedConvertBoundary, OverflowTriggersExactlyAtTheSymmetricRangeEdge) {
  // Scaled magnitudes below 2^(64w-1) = 2^127 convert; 2^127 itself must
  // not (two's-complement sign headroom). Denominator = S makes the grid
  // multiplier exactly 1, so the boundary is hit with no rounding slack;
  // the numerator 2^126 + 3 shares no factor with S = 3*5*17*2^18.
  const std::uint64_t in_range_words[2] = {3, std::uint64_t{1} << 62};   // 2^126 + 3
  const std::uint64_t over_words[2] = {0, std::uint64_t{1} << 63};       // 2^127
  for (const bool negative : {false, true}) {
    const Rational in_range(BigInt::from_words64(in_range_words, 2, negative),
                            spec_.scale_big);
    ASSERT_EQ(in_range.denominator(), spec_.scale_big);  // stayed unreduced
    limb_t out[kFixedRankLimbs];
    ASSERT_EQ(numeric::rational_to_fixed(in_range, spec_, out), FixedConvert::kOk);
    EXPECT_EQ(numeric::fixed_to_rational(out, spec_.width, spec_.scale_big), in_range);

    const Rational over(BigInt::from_words64(over_words, 2, negative), spec_.scale_big);
    EXPECT_EQ(numeric::rational_to_fixed(over, spec_, out), FixedConvert::kOverflow);
  }
}

// ---------------------------------------------------------------------------
// Wire codec: FixedRanksMsg and its RanksMsg twin are one wire format

TEST(FixedRanksCodec, EncodesByteIdenticallyToClassicForm) {
  const sim::SystemParams params{.n = 10, .t = 3};
  core::FixedVotingEngine engine(params, core::RenamingOptions{},
                                 core::default_approximation_iterations(3));
  ASSERT_TRUE(engine.enabled());
  std::set<sim::Id> accepted;
  for (sim::Id id : {5, 11, 23, 42, 100, 2001}) accepted.insert(id);
  engine.assign_initial_ranks(accepted);

  const sim::PayloadRef fixed_payload = engine.encode_ranks();
  const auto* fixed = std::get_if<sim::FixedRanksMsg>(&*fixed_payload);
  ASSERT_NE(fixed, nullptr);
  const sim::RanksMsg classic = sim::to_ranks_msg(*fixed);

  const std::vector<std::uint8_t> fixed_bytes = sim::encode(*fixed_payload);
  EXPECT_EQ(fixed_bytes, sim::encode(sim::Payload{classic}));
  EXPECT_EQ(sim::encoded_bits(*fixed_payload), 8 * fixed_bytes.size());

  // decode() of those bytes yields the classic form (the wire kind is
  // kRanks), equal entry by entry.
  const std::optional<sim::Payload> decoded = sim::decode(fixed_bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* round_trip = std::get_if<sim::RanksMsg>(&*decoded);
  ASSERT_NE(round_trip, nullptr);
  EXPECT_EQ(*round_trip, classic);
}

// ---------------------------------------------------------------------------
// Byzantine admission under the fixed engine

TEST(FixedVotingEngine, OversizedRankEncodingStillRejected) {
  const sim::SystemParams params{.n = 4, .t = 1};
  core::FixedVotingEngine engine(params, core::RenamingOptions{},
                                 core::default_approximation_iterations(1));
  ASSERT_TRUE(engine.enabled());
  std::set<sim::Id> accepted{1, 2, 3, 4};
  engine.assign_initial_ranks(accepted);
  const std::set<sim::Id> timely = accepted;
  const core::RankMap before = engine.materialize();

  const sim::PayloadRef honest = engine.encode_ranks();
  sim::RanksMsg bloated = sim::to_ranks_msg(std::get<sim::FixedRanksMsg>(*honest));
  // Denominator inflation far past max_rank_bits (default 4096): ~66
  // words of 64 bits. The structural bits check must reject the vote
  // before any arithmetic touches it.
  std::vector<std::uint64_t> words(66, 0);
  words[65] = 1;
  bloated.entries[0].rank =
      Rational(BigInt(1), BigInt::from_words64(words.data(), 66, false));

  sim::Inbox inbox;
  for (int link = 0; link < 3; ++link) inbox.push_back({link, honest});
  inbox.push_back({3, sim::PayloadRef(std::move(bloated))});

  int rejected = 0;
  engine.step(inbox, timely, accepted, rejected);
  EXPECT_EQ(rejected, 1);
  EXPECT_EQ(accepted.size(), 4u);
  // 3 identical honest votes (= n - t) plus own padding: ranks unchanged.
  EXPECT_EQ(engine.materialize(), before);
}

TEST(FixedVotingEngine, OverlongFixedVoteRejected) {
  const sim::SystemParams params{.n = 4, .t = 1};
  core::FixedVotingEngine engine(params, core::RenamingOptions{},
                                 core::default_approximation_iterations(1));
  ASSERT_TRUE(engine.enabled());
  std::set<sim::Id> accepted{1, 2, 3, 4};
  engine.assign_initial_ranks(accepted);
  const std::set<sim::Id> timely = accepted;

  const sim::PayloadRef honest = engine.encode_ranks();
  sim::FixedRanksMsg spam = std::get<sim::FixedRanksMsg>(*honest);
  // Entry count past n + t (Lemma IV.3's cap): must be rejected whole.
  while (spam.ids.size() <= 5) {
    spam.ids.push_back(spam.ids.back() + 1000);
    spam.nums.insert(spam.nums.end(), {0, 0});
  }
  sim::Inbox inbox;
  for (int link = 0; link < 3; ++link) inbox.push_back({link, honest});
  inbox.push_back({3, sim::PayloadRef(std::move(spam))});

  int rejected = 0;
  engine.step(inbox, timely, accepted, rejected);
  EXPECT_EQ(rejected, 1);
}

// ---------------------------------------------------------------------------
// Oracle cross-check: fixed vs exact, byte-compared on every output

struct DeepRun {
  core::ScenarioResult result;
  std::string metrics_jsonl;
  std::string audit_jsonl;
};

DeepRun run_deep(core::ScenarioConfig config) {
  obs::MetricsSink sink;
  obs::ComplexityAuditor auditor;
  obs::Telemetry telemetry;
  telemetry.add_sink(sink);
  telemetry.add_sink(auditor);
  config.telemetry = &telemetry;
  DeepRun run;
  run.result = core::run_scenario(config);
  std::ostringstream metrics;
  sink.write_metrics_jsonl(metrics);
  run.metrics_jsonl = metrics.str();
  std::ostringstream audit;
  auditor.write_audit_jsonl(audit);
  run.audit_jsonl = audit.str();
  return run;
}

void expect_kernels_identical(core::ScenarioConfig config) {
  config.options.rank_kernel = core::RankKernel::kFixed;
  const DeepRun fixed = run_deep(config);
  config.options.rank_kernel = core::RankKernel::kExact;
  const DeepRun exact = run_deep(config);

  SCOPED_TRACE("adversary=" + config.adversary + " n=" + std::to_string(config.params.n));
  EXPECT_EQ(fixed.result.report.all_ok(), exact.result.report.all_ok());
  EXPECT_EQ(fixed.result.max_accepted, exact.result.max_accepted);
  EXPECT_EQ(fixed.result.min_accepted, exact.result.min_accepted);
  EXPECT_EQ(fixed.result.total_rejected, exact.result.total_rejected);
  ASSERT_EQ(fixed.result.named.size(), exact.result.named.size());
  for (std::size_t i = 0; i < fixed.result.named.size(); ++i) {
    EXPECT_EQ(fixed.result.named[i].original_id, exact.result.named[i].original_id);
    EXPECT_EQ(fixed.result.named[i].new_name, exact.result.named[i].new_name);
    EXPECT_EQ(fixed.result.named[i].decided_round, exact.result.named[i].decided_round);
  }
  // The strong form: per-round metrics timeseries and the complexity
  // audit verdict are byte-identical documents.
  EXPECT_EQ(fixed.metrics_jsonl, exact.metrics_jsonl);
  EXPECT_EQ(fixed.audit_jsonl, exact.audit_jsonl);
}

core::ScenarioConfig op_config(int n, const std::string& adversary, std::uint64_t seed) {
  core::ScenarioConfig config;
  config.params = {.n = n, .t = (n - 1) / 3};
  config.adversary = adversary;
  config.seed = seed;
  return config;
}

TEST(OracleCrossCheck, EveryAdversaryByteIdenticalAtSmallN) {
  for (const std::string& adversary : adversary::adversary_names()) {
    for (const int n : {13, 16}) {
      expect_kernels_identical(op_config(n, adversary, 77));
    }
  }
}

TEST(OracleCrossCheck, SplitWorldByteIdenticalAtN64) {
  expect_kernels_identical(op_config(64, "split", 21));
}

TEST(OracleCrossCheck, FaultPlansByteIdentical) {
  const char* plans[] = {
      "drop:0.2",
      "dup:0.5+delay:1.0x2",
      "crash:2@3..5",
      "restart:4@5,scramble",
      "forge:3x0.5@2..4",
  };
  for (const char* plan : plans) {
    for (const char* adversary : {"silent", "split"}) {
      core::ScenarioConfig config = op_config(13, adversary, 5);
      config.fault_plan = sim::parse_fault_plan(plan);
      config.extra_rounds = 8;  // injected faults may defer decisions
      SCOPED_TRACE(std::string("plan=") + plan);
      expect_kernels_identical(config);
    }
  }
}

TEST(OracleCrossCheck, CampaignsAgreeAcrossKernelsAndThreadCounts) {
  const auto run = [](const char* kernel, int threads) {
    const exp::CampaignSpec spec = exp::parse_campaign_spec(
        std::string("nt=13:4,16:5;adversary=split,asymflood,random;reps=2;seed=9;kernel=") +
        kernel);
    exp::CampaignOptions options;
    options.threads = threads;
    return exp::run_campaign(spec, options);
  };
  const exp::CampaignResult reference = run("exact", 1);
  for (const char* kernel : {"fixed", "exact"}) {
    for (const int threads : {1, 8}) {
      if (std::string(kernel) == "exact" && threads == 1) continue;
      const exp::CampaignResult other = run(kernel, threads);
      SCOPED_TRACE(std::string("kernel=") + kernel + " threads=" + std::to_string(threads));
      ASSERT_EQ(other.runs.size(), reference.runs.size());
      for (std::size_t i = 0; i < reference.runs.size(); ++i) {
        const exp::RunRecord& a = reference.runs[i];
        const exp::RunRecord& b = other.runs[i];
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.terminated, b.terminated);
        EXPECT_EQ(a.rounds, b.rounds);
        EXPECT_EQ(a.max_name, b.max_name);
        EXPECT_EQ(a.messages, b.messages);
        EXPECT_EQ(a.bits, b.bits);
        EXPECT_EQ(a.correct_messages, b.correct_messages);
        EXPECT_EQ(a.correct_bits, b.correct_bits);
        EXPECT_EQ(a.max_message_bits, b.max_message_bits);
        EXPECT_EQ(a.max_correct_message_bits, b.max_correct_message_bits);
        EXPECT_EQ(a.min_accepted, b.min_accepted);
        EXPECT_EQ(a.max_accepted, b.max_accepted);
        EXPECT_EQ(a.rejected_votes, b.rejected_votes);
        EXPECT_EQ(a.violation_classes, b.violation_classes);
      }
    }
  }
}

TEST(CheckKernel, LockstepShadowAgreesOnAdversarySweep) {
  // kCheck runs the fixed engine with an exact shadow and throws
  // std::logic_error on the first divergence — a clean all_ok run IS
  // the assertion.
  for (const std::string& adversary : adversary::adversary_names()) {
    core::ScenarioConfig config = op_config(13, adversary, 31);
    config.options.rank_kernel = core::RankKernel::kCheck;
    const core::ScenarioResult result = core::run_scenario(config);
    EXPECT_TRUE(result.run.terminated) << adversary;
  }
}

// ---------------------------------------------------------------------------
// AA substrate cross-check, including off-grid Byzantine values

TEST(ByzantineAACrossCheck, OffGridInboxKeepsKernelsInLockstep) {
  const sim::SystemParams params{.n = 7, .t = 2};
  const int rounds = 5;
  aa::ByzantineAAProcess fixed(params, Rational::of(1, 3), rounds, std::size_t{1} << 16,
                               core::RankKernel::kFixed);
  aa::ByzantineAAProcess exact(params, Rational::of(1, 3), rounds, std::size_t{1} << 16,
                               core::RankKernel::kExact);
  aa::ByzantineAAProcess check(params, Rational::of(1, 3), rounds, std::size_t{1} << 16,
                               core::RankKernel::kCheck);
  ASSERT_EQ(fixed.kernel(), core::RankKernel::kFixed);

  // Off-grid fractions (1/7, 1/11) mixed with extremes: the fixed lane
  // must detour through the exact oracle and land on the same value.
  sim::Inbox inbox;
  inbox.push_back({0, sim::PayloadRef(sim::AAValueMsg{Rational::of(1, 7)})});
  inbox.push_back({1, sim::PayloadRef(sim::AAValueMsg{Rational(-1000)})});
  inbox.push_back({2, sim::PayloadRef(sim::AAValueMsg{Rational(1000)})});
  inbox.push_back({3, sim::PayloadRef(sim::AAValueMsg{Rational::of(-3, 11)})});
  inbox.push_back({4, sim::PayloadRef(sim::AAValueMsg{Rational::of(5, 2)})});
  inbox.push_back({5, sim::PayloadRef(sim::AAValueMsg{Rational(0)})});
  inbox.push_back({6, sim::PayloadRef(sim::AAValueMsg{Rational::of(1, 3)})});

  for (int round = 1; round <= rounds; ++round) {
    fixed.on_receive(round, inbox);
    exact.on_receive(round, inbox);
    check.on_receive(round, inbox);
    ASSERT_EQ(fixed.value(), exact.value()) << "round " << round;
    ASSERT_EQ(check.value(), exact.value()) << "round " << round;
  }
}

}  // namespace
}  // namespace byzrename
