#include "numeric/rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>

namespace byzrename::numeric {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_integer());
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(Rational, NormalizesSignIntoNumerator) {
  const Rational v = Rational::of(3, -6);
  EXPECT_EQ(v.to_string(), "-1/2");
  EXPECT_TRUE(v.is_negative());
  EXPECT_FALSE(v.denominator().is_negative());
}

TEST(Rational, ReducesToLowestTerms) {
  EXPECT_EQ(Rational::of(6, 8).to_string(), "3/4");
  EXPECT_EQ(Rational::of(100, 10).to_string(), "10");
  EXPECT_EQ(Rational::of(0, 7).to_string(), "0");
  EXPECT_EQ(Rational::of(0, 7).denominator(), BigInt(1));
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW((void)Rational::of(1, 0), std::domain_error);
  EXPECT_THROW((void)(Rational(1) / Rational(0)), std::domain_error);
}

TEST(Rational, ExactArithmetic) {
  const Rational third = Rational::of(1, 3);
  EXPECT_EQ(third + third + third, Rational(1));
  EXPECT_EQ(Rational::of(1, 2) + Rational::of(1, 3), Rational::of(5, 6));
  EXPECT_EQ(Rational::of(1, 2) - Rational::of(1, 3), Rational::of(1, 6));
  EXPECT_EQ(Rational::of(2, 3) * Rational::of(3, 4), Rational::of(1, 2));
  EXPECT_EQ(Rational::of(2, 3) / Rational::of(4, 3), Rational::of(1, 2));
}

TEST(Rational, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational::of(1, 3), Rational::of(1, 2));
  EXPECT_LT(Rational::of(-1, 2), Rational::of(-1, 3));
  EXPECT_LT(Rational::of(-1, 2), Rational(0));
  EXPECT_EQ(Rational::of(2, 4), Rational::of(1, 2));
  EXPECT_GT(Rational::of(7, 6), Rational(1));
}

TEST(Rational, FloorForPositivesAndNegatives) {
  EXPECT_EQ(Rational::of(7, 2).floor(), BigInt(3));
  EXPECT_EQ(Rational::of(-7, 2).floor(), BigInt(-4));
  EXPECT_EQ(Rational(5).floor(), BigInt(5));
  EXPECT_EQ(Rational(-5).floor(), BigInt(-5));
  EXPECT_EQ(Rational::of(1, 3).floor(), BigInt(0));
  EXPECT_EQ(Rational::of(-1, 3).floor(), BigInt(-1));
}

TEST(Rational, RoundToNearestInteger) {
  EXPECT_EQ(Rational::of(7, 2).round(), BigInt(4));    // 3.5 -> 4
  EXPECT_EQ(Rational::of(10, 3).round(), BigInt(3));   // 3.33 -> 3
  EXPECT_EQ(Rational::of(11, 3).round(), BigInt(4));   // 3.67 -> 4
  EXPECT_EQ(Rational::of(-7, 2).round(), BigInt(-4));  // -3.5 -> -4 (away from zero)
  EXPECT_EQ(Rational::of(-10, 3).round(), BigInt(-3));
  EXPECT_EQ(Rational(0).round(), BigInt(0));
  EXPECT_EQ(Rational(9).round(), BigInt(9));
}

TEST(Rational, RoundIsStableUnderTinyPerturbation) {
  // The algorithm's final rounding must map rank +- (delta-1)/2 to the
  // same integer; check the pattern at a representative scale.
  const Rational rank(17);
  const Rational eps = Rational::of(1, 6 * (64 + 4));  // (delta-1)/2 for N=64, t=4
  EXPECT_EQ((rank + eps).round(), BigInt(17));
  EXPECT_EQ((rank - eps).round(), BigInt(17));
}

TEST(Rational, EncodedBitsGrowsWithMagnitude) {
  EXPECT_LT(Rational::of(1, 2).encoded_bits(), Rational::of(1, 1'000'000'007).encoded_bits());
  const Rational huge(BigInt(1), BigInt(1) << 5000);
  EXPECT_GT(huge.encoded_bits(), 5000u);
}

TEST(Rational, ToDoubleApproximates) {
  EXPECT_NEAR(Rational::of(1, 3).to_double(), 0.333333, 1e-6);
  EXPECT_NEAR(Rational::of(-22, 7).to_double(), -3.142857, 1e-6);
}

TEST(Rational, AbsAndNegate) {
  EXPECT_EQ((-Rational::of(1, 2)).to_string(), "-1/2");
  EXPECT_EQ(Rational::of(-1, 2).abs(), Rational::of(1, 2));
  EXPECT_EQ((-Rational(0)).to_string(), "0");
}

TEST(Rational, DeltaExpression) {
  // delta = 1 + 1/(3(N+t)) stays an exact rational, and (delta-1)/2 is
  // exactly 1/(6(N+t)) — the identity Lemma V.2 computes with.
  const Rational delta = Rational(1) + Rational::of(1, 3 * (10 + 3));
  EXPECT_EQ(delta, Rational::of(40, 39));
  EXPECT_EQ((delta - Rational(1)) / Rational(2), Rational::of(1, 78));
}

TEST(Rational, RepeatedAveragingStaysExact) {
  // Mimics the voting phase: averaging values separated by exactly delta
  // preserves the separation exactly, with no drift, for many rounds.
  const Rational delta = Rational(1) + Rational::of(1, 3 * 20);
  Rational low = Rational(3) * delta;
  Rational high = Rational(4) * delta;
  for (int round = 0; round < 50; ++round) {
    const Rational low2 = (low + (low + delta)) / Rational(2) - delta;
    const Rational high2 = (high + (high + delta)) / Rational(2) - delta;
    ASSERT_EQ(high2 - low2, high - low);
    low = low2;
    high = high2;
  }
  EXPECT_EQ(high - low, delta);
}

TEST(Rational, RandomizedFieldAxioms) {
  std::mt19937_64 rng(4242);
  auto random_rational = [&rng] {
    const auto num = static_cast<std::int64_t>(rng() % 20001) - 10000;
    const auto den = static_cast<std::int64_t>(rng() % 999) + 1;
    return Rational::of(num, den);
  };
  for (int i = 0; i < 300; ++i) {
    const Rational a = random_rational();
    const Rational b = random_rational();
    const Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
  }
}

TEST(Rational, Int64FastPathBoundary) {
  // Components at the int64 limit: cross products need the full 128-bit
  // intermediate range, and results legitimately outgrow int64 — the
  // switch between the machine-word fast path and the BigInt slow path
  // must be value-invisible. Reference values computed with Python's
  // fractions module.
  const std::int64_t m = std::numeric_limits<std::int64_t>::max();
  const Rational a = Rational::of(m, m - 1);
  const Rational b = Rational::of(m - 2, m);
  EXPECT_EQ((a + b).to_string(),
            "170141183460469231667123699457900675079/85070591730234615838173535747377725442");
  EXPECT_EQ((a * b).to_string(), "9223372036854775805/9223372036854775806");
  EXPECT_EQ((a / b).to_string(),
            "85070591730234615847396907784232501249/85070591730234615819726791673668173830");
  EXPECT_LT(b, a);
  EXPECT_EQ((a - a).to_string(), "0");
  // A value that no longer fits int64 must take the slow path and still
  // compose with small values.
  const Rational big = Rational(BigInt(m) * BigInt(m), BigInt(1));
  EXPECT_EQ((big + Rational::of(1, 3)).to_string(),
            "255211775190703847542190723352697503748/3");
  EXPECT_GT(big, a);
  // INT64_MIN numerators sit exactly on the fits_int64 edge.
  const std::int64_t lowest = std::numeric_limits<std::int64_t>::lowest();
  const Rational edge = Rational::of(lowest, 3);
  EXPECT_EQ((edge + edge).to_string(), "-18446744073709551616/3");
  EXPECT_EQ((edge - edge).to_string(), "0");
  EXPECT_EQ((edge / edge).to_string(), "1");
}

}  // namespace
}  // namespace byzrename::numeric
