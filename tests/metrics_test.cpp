// Tests for the round-resolved metrics engine and the complexity
// auditor: MetricsRegistry units, the phase taxonomy, MetricsSink
// against real scenario runs, the byzrename.metrics/1 and
// byzrename.audit/1 JSONL records round-tripped through the production
// obs::parse_json, malformed-input rejection, the 13-adversary
// zero-false-alarm audit sweep of the acceptance criteria, and a
// golden-file comparison of a full N=16 run's metrics stream.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/harness.h"
#include "core/phase.h"
#include "obs/complexity_audit.h"
#include "obs/json_parse.h"
#include "obs/metrics_registry.h"
#include "obs/schema.h"
#include "obs/telemetry.h"

namespace {

using namespace byzrename;
using core::Phase;
using obs::ComplexityAuditor;
using obs::JsonValue;
using obs::MetricsRegistry;
using obs::MetricsSink;

// ---------------------------------------------------------------------------
// MetricsRegistry units

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry registry;
  const auto handle = registry.counter("byzrename_widgets_total", "widgets", "selection");
  EXPECT_EQ(registry.counter_value(handle), 0u);
  registry.add(handle, 3);
  registry.add(handle, 4);
  EXPECT_EQ(registry.counter_value(handle), 7u);
}

TEST(MetricsRegistry, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  const auto handle = registry.gauge("byzrename_spread", "rank spread");
  registry.set(handle, 2.5);
  registry.set(handle, 0.125);
  EXPECT_EQ(registry.gauge_value(handle), 0.125);
}

TEST(MetricsRegistry, HistogramBucketsAreExactAndCumulativeInText) {
  MetricsRegistry registry;
  const auto handle = registry.histogram("byzrename_bits", "message bits", {1, 2, 4});
  registry.observe(handle, 1);  // bucket le=1 (bounds are inclusive)
  registry.observe(handle, 2);  // bucket le=2
  registry.observe(handle, 3);  // bucket le=4
  registry.observe(handle, 5);  // +Inf bucket
  EXPECT_EQ(registry.histogram_count(handle), 4u);
  EXPECT_EQ(registry.histogram_sum(handle), 11u);

  std::ostringstream text;
  registry.write_prometheus(text);
  const std::string out = text.str();
  EXPECT_NE(out.find("byzrename_bits_bucket{le=\"1\"} 1\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_bits_bucket{le=\"2\"} 2\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_bits_bucket{le=\"4\"} 3\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_bits_bucket{le=\"+Inf\"} 4\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_bits_sum 11\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_bits_count 4\n"), std::string::npos) << out;
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  const auto counter = registry.counter("byzrename_c_total", "c");
  const auto gauge = registry.gauge("byzrename_g", "g");
  EXPECT_THROW(registry.set(counter, 1.0), std::invalid_argument);
  EXPECT_THROW(registry.add(gauge, 1), std::invalid_argument);
  EXPECT_THROW(registry.observe(counter, 1), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramBoundsMustStrictlyIncrease) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("byzrename_h", "h", {4, 2, 1}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("byzrename_h", "h", {1, 1}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("byzrename_h", "h", {}), std::invalid_argument);
}

TEST(MetricsRegistry, ExponentialBounds) {
  const std::vector<std::uint64_t> expected{8, 16, 32, 64};
  EXPECT_EQ(MetricsRegistry::exponential_bounds(8, 2, 4), expected);
}

TEST(MetricsRegistry, UntouchedInstrumentsAreSkippedInText) {
  MetricsRegistry registry;
  const auto used = registry.counter("byzrename_used_total", "used", "echo");
  registry.counter("byzrename_unused_total", "never written", "echo");
  registry.add(used, 1);
  std::ostringstream text;
  registry.write_prometheus(text);
  EXPECT_NE(text.str().find("byzrename_used_total"), std::string::npos);
  EXPECT_EQ(text.str().find("byzrename_unused_total"), std::string::npos) << text.str();
}

TEST(MetricsRegistry, FamilyHeaderEmittedOncePerFamily) {
  MetricsRegistry registry;
  const auto a = registry.counter("byzrename_m_total", "m", "selection");
  const auto b = registry.counter("byzrename_m_total", "m", "echo");
  registry.add(a, 1);
  registry.add(b, 2);
  std::ostringstream text;
  registry.write_prometheus(text);
  const std::string out = text.str();
  std::size_t headers = 0;
  for (std::size_t pos = out.find("# HELP byzrename_m_total"); pos != std::string::npos;
       pos = out.find("# HELP byzrename_m_total", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u) << out;
  EXPECT_NE(out.find("byzrename_m_total{phase=\"selection\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("byzrename_m_total{phase=\"echo\"} 2\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus text-format escaping: label values escape \, ", and LF;
// HELP text escapes \ and LF. Hostile strings (adversary names, cell
// keys) must never be able to break a sample line or fake extra series.

TEST(PrometheusEscaping, LabelValueEscapesBackslashQuoteAndNewline) {
  std::ostringstream os;
  obs::write_prometheus_label_value(os, "a\\b\"c\nd");
  EXPECT_EQ(os.str(), "a\\\\b\\\"c\\nd");
}

TEST(PrometheusEscaping, HelpEscapesBackslashAndNewlineButNotQuote) {
  std::ostringstream os;
  obs::write_prometheus_help(os, "say \"hi\"\\\nbye");
  EXPECT_EQ(os.str(), "say \"hi\"\\\\\\nbye");
}

TEST(PrometheusEscaping, HostileLabelAndHelpCannotCorruptExposition) {
  MetricsRegistry registry;
  // A phase label carrying every hostile byte class, and HELP text with
  // an embedded newline: the rendered text must stay one sample line
  // with the payload inside the quotes.
  const auto handle = registry.counter("byzrename_hostile_total",
                                       "line1\nline2 \\ \"quoted\"",
                                       "evil\"} 99\nfake_series 1");
  registry.add(handle, 5);
  std::ostringstream text;
  registry.write_prometheus(text);
  const std::string out = text.str();
  EXPECT_NE(out.find("# HELP byzrename_hostile_total line1\\nline2 \\\\ \"quoted\"\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("byzrename_hostile_total{phase=\"evil\\\"} 99\\nfake_series 1\"} 5\n"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("\nfake_series"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// Phase taxonomy (core/phase.h)

TEST(PhaseTaxonomy, OpRenamingRoundsClassifyPerAlgorithmOne) {
  using core::round_phase;
  const auto algo = core::Algorithm::kOpRenaming;
  const int iterations = 9;  // n=13, t=4 default: 3*ceil(log2 4)+3
  EXPECT_EQ(round_phase(algo, 1, iterations).phase, Phase::kSelection);
  EXPECT_EQ(round_phase(algo, 2, iterations).phase, Phase::kEcho);
  EXPECT_EQ(round_phase(algo, 3, iterations).phase, Phase::kReady);
  EXPECT_EQ(round_phase(algo, 4, iterations).phase, Phase::kReady);
  EXPECT_EQ(round_phase(algo, 5, iterations).phase, Phase::kVoting);
  EXPECT_EQ(round_phase(algo, 5, iterations).voting_iteration, 1);
  EXPECT_EQ(round_phase(algo, 12, iterations).phase, Phase::kVoting);
  EXPECT_EQ(round_phase(algo, 12, iterations).voting_iteration, 8);
  EXPECT_EQ(round_phase(algo, 13, iterations).phase, Phase::kDecision);
  EXPECT_EQ(round_phase(algo, 13, iterations).voting_iteration, 9);
}

TEST(PhaseTaxonomy, FastAndBaselineClassification) {
  using core::round_phase;
  EXPECT_EQ(round_phase(core::Algorithm::kFastRenaming, 1, -1).phase, Phase::kSelection);
  EXPECT_EQ(round_phase(core::Algorithm::kFastRenaming, 2, -1).phase, Phase::kDecision);
  EXPECT_EQ(round_phase(core::Algorithm::kCrashRenaming, 3, -1).phase, Phase::kProtocol);
}

TEST(PhaseTaxonomy, LabelsCarryVotingIteration) {
  EXPECT_EQ(core::phase_label({Phase::kVoting, 2}), "voting k=2");
  EXPECT_EQ(core::phase_label({Phase::kDecision, 9}), "decision k=9");
  EXPECT_EQ(core::phase_label({Phase::kSelection, 0}), "selection");
}

// ---------------------------------------------------------------------------
// MetricsSink against real runs

struct MetricsCapture {
  MetricsSink sink;
  ComplexityAuditor auditor;
  core::ScenarioResult result;
};

MetricsCapture run_with_metrics(core::ScenarioConfig config) {
  MetricsCapture capture;
  obs::Telemetry telemetry;
  telemetry.add_sink(capture.sink);
  telemetry.add_sink(capture.auditor);
  config.telemetry = &telemetry;
  capture.result = core::run_scenario(config);
  return capture;
}

core::ScenarioConfig op_config(int n, int t, const std::string& adversary, std::uint64_t seed) {
  core::ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.algorithm = core::Algorithm::kOpRenaming;
  config.adversary = adversary;
  config.seed = seed;
  return config;
}

TEST(MetricsSink, CapturesOneRowPerRoundWithMatchingTotals) {
  const MetricsCapture capture = run_with_metrics(op_config(10, 3, "asymflood", 42));
  const sim::Metrics& metrics = capture.result.run.metrics;
  ASSERT_EQ(capture.sink.rows().size(), metrics.per_round().size());
  ASSERT_EQ(static_cast<int>(capture.sink.rows().size()), capture.result.run.rounds);

  std::size_t messages = 0;
  std::size_t correct_bits = 0;
  for (const MetricsSink::Row& row : capture.sink.rows()) {
    messages += row.sample.metrics.messages;
    correct_bits += row.sample.metrics.correct_bits;
  }
  EXPECT_EQ(messages, metrics.total_messages());
  EXPECT_EQ(correct_bits, metrics.total_correct_bits());
}

TEST(MetricsSink, PrometheusPhaseSeriesSumToRunTotals) {
  const MetricsCapture capture = run_with_metrics(op_config(13, 4, "asymflood", 7));
  std::ostringstream text;
  capture.sink.write_prometheus(text);
  const std::string out = text.str();

  // Sum every byzrename_messages_total{phase="..."} sample and check it
  // reproduces the run's total message count exactly.
  std::uint64_t total = 0;
  std::map<std::string, std::uint64_t> by_phase;
  std::istringstream lines(out);
  std::string line;
  const std::string prefix = "byzrename_messages_total{phase=\"";
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t close = line.find('"', prefix.size());
    ASSERT_NE(close, std::string::npos);
    const std::string phase = line.substr(prefix.size(), close - prefix.size());
    const std::uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
    by_phase[phase] += value;
    total += value;
  }
  EXPECT_EQ(total, capture.result.run.metrics.total_messages()) << out;
  // An op run visits every modeled phase; `protocol` must not appear.
  for (const char* phase : {"selection", "echo", "ready", "voting", "decision"}) {
    EXPECT_TRUE(by_phase.count(phase)) << "missing phase series: " << phase;
  }
  EXPECT_FALSE(by_phase.count("protocol")) << out;
  EXPECT_NE(out.find("byzrename_rounds_total"), std::string::npos);
  EXPECT_NE(out.find("byzrename_rank_spread"), std::string::npos);
}

TEST(MetricsSink, JsonlIsDeterministicAcrossIdenticalRuns) {
  const MetricsCapture a = run_with_metrics(op_config(10, 3, "split", 11));
  const MetricsCapture b = run_with_metrics(op_config(10, 3, "split", 11));
  std::ostringstream out_a;
  std::ostringstream out_b;
  a.sink.write_metrics_jsonl(out_a);
  b.sink.write_metrics_jsonl(out_b);
  EXPECT_FALSE(out_a.str().empty());
  EXPECT_EQ(out_a.str(), out_b.str());
}

// ---------------------------------------------------------------------------
// byzrename.metrics/1 round-trip through the production JSON parser

TEST(MetricsJsonl, EveryLineRoundTripsThroughParseJson) {
  const MetricsCapture capture = run_with_metrics(op_config(13, 4, "split", 3));
  std::ostringstream out;
  capture.sink.write_metrics_jsonl(out);

  std::istringstream lines(out.str());
  std::string line;
  int round = 0;
  std::uint64_t messages = 0;
  while (std::getline(lines, line)) {
    const JsonValue record = obs::parse_json(line);
    EXPECT_EQ(record.at("schema").as_string(), obs::kMetricsSchema);
    const JsonValue& run = record.at("run");
    EXPECT_EQ(run.at("algorithm").as_string(), "op-renaming");
    EXPECT_EQ(run.at("n").as_int(), 13);
    EXPECT_EQ(run.at("t").as_int(), 4);
    EXPECT_EQ(run.at("adversary").as_string(), "split");
    EXPECT_EQ(run.at("seed").as_uint(), 3u);
    round += 1;
    EXPECT_EQ(record.at("round").as_int(), round);
    messages += record.at("messages").as_uint();
    // Phase labels follow the taxonomy for this round.
    const core::RoundPhase phase = core::round_phase(
        core::Algorithm::kOpRenaming, round, static_cast<int>(run.at("iterations").as_int()));
    EXPECT_EQ(record.at("phase").as_string(), core::to_string(phase.phase));
    EXPECT_EQ(record.at("voting_iteration").as_int(), phase.voting_iteration);
    EXPECT_TRUE(record.find("rank_spread") != nullptr);
    EXPECT_TRUE(record.find("max_correct_message_bits") != nullptr);
  }
  EXPECT_EQ(round, capture.result.run.rounds);
  EXPECT_EQ(messages, capture.result.run.metrics.total_messages());
}

TEST(MetricsJsonl, ParserRejectsTruncatedLines) {
  const MetricsCapture capture = run_with_metrics(op_config(7, 2, "silent", 1));
  std::ostringstream out;
  capture.sink.write_metrics_jsonl(out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  for (const std::size_t keep : {line.size() - 1, line.size() / 2, std::size_t{1}}) {
    EXPECT_THROW((void)obs::parse_json(line.substr(0, keep)), std::invalid_argument)
        << "accepted a line truncated to " << keep << " bytes";
  }
}

TEST(MetricsJsonl, ParserRejectsNaNAndInfinity) {
  EXPECT_THROW((void)obs::parse_json("{\"rank_spread\": NaN}"), std::invalid_argument);
  EXPECT_THROW((void)obs::parse_json("{\"rank_spread\": nan}"), std::invalid_argument);
  EXPECT_THROW((void)obs::parse_json("{\"rank_spread\": Infinity}"), std::invalid_argument);
  EXPECT_THROW((void)obs::parse_json("{\"rank_spread\": -inf}"), std::invalid_argument);
}

TEST(MetricsJsonl, ParserRejectsNumericOverflow) {
  // A double overflow is a hard parse error...
  EXPECT_THROW((void)obs::parse_json("{\"bits\": 1e999}"), std::invalid_argument);
  // ...and an integer past uint64 survives only as a lossy double, which
  // the typed integer accessors refuse.
  const JsonValue huge = obs::parse_json("{\"bits\": 18446744073709551616}");
  EXPECT_THROW((void)huge.at("bits").as_uint(), std::invalid_argument);
  EXPECT_THROW((void)huge.at("bits").as_int(), std::invalid_argument);
  // The largest representable uint64 still round-trips exactly.
  const JsonValue max = obs::parse_json("{\"seed\": 18446744073709551615}");
  EXPECT_EQ(max.at("seed").as_uint(), 18446744073709551615ull);
}

// ---------------------------------------------------------------------------
// ComplexityAuditor

TEST(ComplexityAuditor, ZeroFalseAlarmsAcrossFullAdversarySweep) {
  // Acceptance criterion: every registered adversary at n=13, t=4 audits
  // clean — the paper's budgets hold and the auditor raises no alarm.
  const std::vector<std::string> names = adversary::adversary_names();
  ASSERT_GE(names.size(), 13u);
  for (const std::string& name : names) {
    const MetricsCapture capture = run_with_metrics(op_config(13, 4, name, 11));
    EXPECT_TRUE(capture.result.report.all_ok()) << name;
    ASSERT_TRUE(capture.auditor.complete()) << name;
    EXPECT_TRUE(capture.auditor.all_ok()) << name;
    for (const obs::AuditBound& bound : capture.auditor.bounds()) {
      EXPECT_TRUE(bound.ok) << name << ": " << bound.bound << " observed " << bound.observed
                            << (bound.upper ? " > " : " < ") << bound.limit << " " << bound.detail;
    }
  }
}

TEST(ComplexityAuditor, OpRunChecksAllFourBounds) {
  const MetricsCapture capture = run_with_metrics(op_config(13, 4, "asymflood", 1));
  ASSERT_TRUE(capture.auditor.complete());
  std::vector<std::string> ids;
  for (const obs::AuditBound& bound : capture.auditor.bounds()) ids.push_back(bound.bound);
  const std::vector<std::string> expected{"steps", "messages", "bit_size", "rank_contraction"};
  EXPECT_EQ(ids, expected);
  // Default iterations at t=4 resolve to the theorem's closed form.
  EXPECT_EQ(capture.auditor.bounds().front().formula, "3*ceil(log2 t)+7 (Thm. IV.12)");
  EXPECT_EQ(capture.auditor.bounds().front().limit, 13.0);
}

TEST(ComplexityAuditor, FastRenamingChecksLemmaSixBounds) {
  core::ScenarioConfig config = op_config(11, 2, "suppress", 9);
  config.algorithm = core::Algorithm::kFastRenaming;
  const MetricsCapture capture = run_with_metrics(config);
  ASSERT_TRUE(capture.auditor.complete());
  EXPECT_TRUE(capture.auditor.all_ok());

  bool saw_discrepancy = false;
  bool saw_gap = false;
  for (const obs::AuditBound& bound : capture.auditor.bounds()) {
    if (bound.bound == "steps") {
      EXPECT_EQ(bound.limit, 2.0);
    }
    if (bound.bound == "fast_discrepancy") {
      saw_discrepancy = true;
      EXPECT_TRUE(bound.upper);
      EXPECT_EQ(bound.limit, 2.0 * 2 * 2);  // 2t^2, t=2
    }
    if (bound.bound == "fast_gap") {
      saw_gap = true;
      EXPECT_FALSE(bound.upper);  // the one lower bound
      EXPECT_EQ(bound.limit, 9.0);  // N - t
    }
  }
  EXPECT_TRUE(saw_discrepancy);
  EXPECT_TRUE(saw_gap);
}

TEST(ComplexityAuditor, BaselineRunsAuditOnlyTheMessageBudget) {
  core::ScenarioConfig config = op_config(10, 3, "crash", 5);
  config.algorithm = core::Algorithm::kCrashRenaming;
  const MetricsCapture capture = run_with_metrics(config);
  ASSERT_TRUE(capture.auditor.complete());
  EXPECT_TRUE(capture.auditor.all_ok());
  for (const obs::AuditBound& bound : capture.auditor.bounds()) {
    EXPECT_EQ(bound.bound, "messages");
  }
}

TEST(ComplexityAuditor, ContractionRateMatchesFindingOne) {
  EXPECT_EQ(ComplexityAuditor::contraction_rate(13, 4), 2);   // floor(4/4)+1
  EXPECT_EQ(ComplexityAuditor::contraction_rate(10, 3), 2);   // floor(3/3)+1
  EXPECT_EQ(ComplexityAuditor::contraction_rate(40, 13), 2);  // floor(13/13)+1
  EXPECT_EQ(ComplexityAuditor::contraction_rate(22, 4), 4);   // floor(13/4)+1
  // One below Lemma IV.8's floor((N-2t)/t)+1 exactly when t | (N-2t).
  EXPECT_EQ(ComplexityAuditor::contraction_rate(12, 3), 2);   // lemma rate: 3
}

TEST(AuditJsonl, VerdictRoundTripsThroughParseJson) {
  const MetricsCapture capture = run_with_metrics(op_config(13, 4, "asymflood", 11));
  std::ostringstream out;
  capture.auditor.write_audit_jsonl(out);
  const JsonValue record = obs::parse_json(out.str());
  EXPECT_EQ(record.at("schema").as_string(), obs::kAuditSchema);
  const JsonValue& verdict = record.at("verdict");
  EXPECT_TRUE(verdict.at("complete").as_bool());
  EXPECT_TRUE(verdict.at("all_ok").as_bool());
  EXPECT_EQ(verdict.at("violations").as_int(), 0);
  const auto& bounds = record.at("bounds").as_array();
  EXPECT_EQ(verdict.at("bounds_checked").as_int(), static_cast<std::int64_t>(bounds.size()));
  for (const JsonValue& bound : bounds) {
    EXPECT_FALSE(bound.at("bound").as_string().empty());
    EXPECT_FALSE(bound.at("formula").as_string().empty());
    const std::string direction = bound.at("direction").as_string();
    EXPECT_TRUE(direction == "upper" || direction == "lower") << direction;
    EXPECT_TRUE(bound.at("ok").as_bool());
    // limit/observed are plain finite numbers (ints or doubles).
    const JsonValue& limit = bound.at("limit");
    EXPECT_TRUE(limit.kind() == JsonValue::Kind::kInt ||
                limit.kind() == JsonValue::Kind::kDouble);
  }
}

// ---------------------------------------------------------------------------
// Golden file: a full N=16 run's metrics stream, byte for byte

TEST(MetricsJsonl, GoldenStreamForNSixteenRun) {
  const MetricsCapture capture = run_with_metrics(op_config(16, 5, "asymflood", 5));
  std::ostringstream out;
  capture.sink.write_metrics_jsonl(out);

  const std::string path = std::string(BYZRENAME_TEST_GOLDEN_DIR) + "/metrics_n16.jsonl";
  if (std::getenv("BYZRENAME_REGEN_GOLDEN") != nullptr) {
    std::ofstream regen(path, std::ios::trunc);
    ASSERT_TRUE(regen.is_open()) << "cannot regenerate " << path;
    regen << out.str();
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path
                            << " (regenerate with BYZRENAME_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(out.str(), golden.str())
      << "metrics stream drifted from tests/golden/metrics_n16.jsonl; if the change is "
         "intentional, rerun with BYZRENAME_REGEN_GOLDEN=1 and commit the diff";
}

}  // namespace
