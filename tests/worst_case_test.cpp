// Tests for the calibrated worst-case executions: the asymmetric flood
// (Lemma IV.7 met with equality) and the orderbreak attack (the
// execution isValid exists to stop). These pin down the adversary
// library's sharpest tools so the benches built on them stay honest.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <vector>

#include "core/fast_renaming.h"
#include "core/harness.h"
#include "core/op_renaming.h"
#include "core/probe.h"
#include "numeric/rational.h"

namespace byzrename::core {
namespace {

using numeric::Rational;

/// Max spread of any id's rank across correct processes at round @p at.
Rational spread_at_round(ScenarioConfig& config, sim::Round at) {
  Rational spread;
  config.observer = [&spread, at](sim::Round round, const sim::Network& net) {
    if (round == at) spread = max_rank_spread(net);
  };
  (void)run_scenario(config);
  return spread;
}

TEST(AsymFlood, SaturatesLemmaIV7Exactly) {
  // Initial discrepancy == (t + floor(t^2/(N-2t))) * delta, exactly.
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{10, 3}, {13, 4}, {25, 8}}) {
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "asymflood";
    config.seed = 1;
    const Rational initial = spread_at_round(config, 4);
    const Rational bound =
        Rational(t + (t * t) / (n - 2 * t)) * delta({.n = n, .t = t});
    EXPECT_EQ(initial, bound) << "n=" << n << " t=" << t;
  }
}

TEST(AsymFlood, FakesStayOutOfEveryTimelySet) {
  // The calibration keeps every fake strictly below the timely threshold
  // — otherwise Lemma IV.1 would force symmetric acceptance.
  ScenarioConfig config;
  config.params = {.n = 13, .t = 4};
  config.adversary = "asymflood";
  config.seed = 1;
  bool checked = false;
  config.observer = [&checked](sim::Round round, const sim::Network& net) {
    if (round != 4) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& op = dynamic_cast<const OpRenamingProcess&>(net.behavior(i));
      // Timely must be exactly the 9 correct ids.
      EXPECT_EQ(op.timely().size(), 9u);
      checked = true;
    }
  };
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(checked);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(AsymFlood, RenamingSurvivesTheWorstCase) {
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{10, 3}, {13, 4}, {16, 5}, {25, 8}}) {
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "asymflood";
    config.seed = 2;
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << "n=" << n << " t=" << t << ": " << result.report.detail;
  }
}

TEST(AsymFlood, SpreadContractsEveryVotingRound) {
  ScenarioConfig base;
  base.params = {.n = 13, .t = 4};
  base.adversary = "asymflood";
  base.seed = 1;
  ScenarioConfig at5 = base;
  ScenarioConfig at9 = base;
  const Rational early = spread_at_round(at5, 6);
  const Rational later = spread_at_round(at9, 10);
  EXPECT_GT(early, Rational(0));
  EXPECT_GT(later, Rational(0));
  // Four rounds at contraction factor >= 2 shrink by >= 16.
  EXPECT_LE(later * Rational(16), early);
}

TEST(AsymFlood, SaturatesLemmaVI1Against2StepAlgorithm) {
  // The Alg. 4 flavor reaches the per-id name discrepancy bound of
  // Lemma VI.1 (Delta == 2t^2) exactly, while order preservation
  // survives by the single name Lemma VI.2's N-t gap leaves over.
  for (const int t : {1, 2, 3}) {
    const int n = 2 * t * t + t + 1;
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.algorithm = Algorithm::kFastRenaming;
    config.adversary = "asymflood";
    config.seed = 1;
    sim::Name max_discrepancy = 0;
    config.observer = [&max_discrepancy](sim::Round round, const sim::Network& net) {
      if (round == 2) max_discrepancy = fast_name_stats(net).max_discrepancy;
    };
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << "t=" << t << ": " << result.report.detail;
    EXPECT_EQ(max_discrepancy, 2 * t * t) << "t=" << t;
  }
}

TEST(AsymFlood, CorollaryIV5TimelyIdsAreNeverDropped) {
  // Corollary IV.5: an id in any correct process's timely set keeps
  // receiving >= N-t valid votes and is never discarded by approximate();
  // the asymmetric flood is the strongest pressure on that guarantee.
  ScenarioConfig config;
  config.params = {.n = 13, .t = 4};
  config.adversary = "asymflood";
  config.seed = 4;
  bool checked = false;
  config.observer = [&checked](sim::Round round, const sim::Network& net) {
    if (round <= 4) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& op = dynamic_cast<const OpRenamingProcess&>(net.behavior(i));
      for (const sim::Id id : op.timely()) {
        EXPECT_TRUE(op.ranks().contains(id))
            << "timely id " << id << " lost its rank in round " << round;
        EXPECT_TRUE(op.accepted().contains(id))
            << "timely id " << id << " dropped from accepted in round " << round;
        checked = true;
      }
    }
  };
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_TRUE(checked);
}

TEST(OrderBreak, HarmlessWithValidationOn) {
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{10, 3}, {13, 4}, {25, 8}}) {
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "orderbreak";
    config.seed = 1;
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << "n=" << n << " t=" << t << ": " << result.report.detail;
  }
}

TEST(OrderBreak, BreaksRenamingWithValidationAblated) {
  // The demonstration behind bench_a2: without Alg. 2's isValid filter
  // the very same adversary destroys uniqueness/order. This test pins
  // the ablation's behaviour so the bench's story stays true; it is NOT
  // a statement about the production configuration (validate_votes
  // defaults to true and the test above covers it).
  int broken = 0;
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{10, 3}, {13, 4}, {25, 8}}) {
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "orderbreak";
    config.options.validate_votes = false;
    config.seed = 1;
    const ScenarioResult result = run_scenario(config);
    if (!result.report.uniqueness || !result.report.order_preservation) ++broken;
  }
  EXPECT_GE(broken, 2) << "the ablated configuration should break in most sizes";
}

TEST(Hybrid, SelectionHonestAdversariesCannotDiverge) {
  // The F1 finding as a test: adversaries that run id selection honestly
  // leave all correct processes with identical ranks (spread 0 at every
  // voting round); only selection-phase attacks create divergence.
  for (const char* adversary : {"split", "skew"}) {
    ScenarioConfig config;
    config.params = {.n = 10, .t = 3};
    config.adversary = adversary;
    config.seed = 1;
    EXPECT_EQ(spread_at_round(config, 8), Rational(0)) << adversary;
  }
  ScenarioConfig asym;
  asym.params = {.n = 10, .t = 3};
  asym.adversary = "asymflood";
  asym.seed = 1;
  EXPECT_GT(spread_at_round(asym, 8), Rational(0));
}

}  // namespace
}  // namespace byzrename::core
