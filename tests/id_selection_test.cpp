#include "core/id_selection.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/harness.h"
#include "core/op_renaming.h"
#include "sim/network.h"
#include "sim/runner.h"

namespace byzrename::core {
namespace {

using sim::Id;
using sim::Inbox;

/// Builds an inbox where links [0..count) each deliver the given payload
/// factory's message.
template <typename Factory>
Inbox inbox_from_links(int count, Factory make_payload) {
  Inbox inbox;
  for (int link = 0; link < count; ++link) inbox.push_back({link, make_payload(link)});
  return inbox;
}

// ---------------------------------------------------------------------------
// Unit-level: drive the state machine with fabricated inboxes.
// ---------------------------------------------------------------------------

TEST(IdSelectionUnit, AcceptsIdEchoedByQuorum) {
  const sim::SystemParams params{.n = 7, .t = 2};
  IdSelection sel(params, 10);

  sim::Outbox out1(false);
  sel.on_send(1, out1);
  ASSERT_EQ(out1.entries().size(), 1u);
  EXPECT_EQ(std::get<sim::IdMsg>(*out1.entries()[0].payload).id, 10);

  // Step 1: hear ids 10..16 from 7 distinct links.
  sel.on_receive(1, inbox_from_links(7, [](int link) {
    return sim::Payload(sim::IdMsg{10 + link});
  }));

  // Step 2: this process echoes everything it heard.
  sim::Outbox out2(false);
  sel.on_send(2, out2);
  EXPECT_EQ(out2.entries().size(), 7u);

  // All 7 links echo id 10; only 3 links echo id 99 (below N-t = 5).
  Inbox echoes = inbox_from_links(7, [](int) { return sim::Payload(sim::EchoMsg{10}); });
  for (int link = 0; link < 3; ++link) echoes.push_back({link, sim::EchoMsg{99}});
  sel.on_receive(2, echoes);

  // Step 3: Ready goes out only for id 10.
  sim::Outbox out3(false);
  sel.on_send(3, out3);
  ASSERT_EQ(out3.entries().size(), 1u);
  EXPECT_EQ(std::get<sim::ReadyMsg>(*out3.entries()[0].payload).id, 10);

  sel.on_receive(3, inbox_from_links(7, [](int) { return sim::Payload(sim::ReadyMsg{10}); }));
  EXPECT_TRUE(sel.timely().contains(10));

  sim::Outbox out4(false);
  sel.on_send(4, out4);
  sel.on_receive(4, {});
  EXPECT_TRUE(sel.accepted().contains(10));
  EXPECT_FALSE(sel.accepted().contains(99));
}

TEST(IdSelectionUnit, OneIdPerLinkInStepOne) {
  const sim::SystemParams params{.n = 4, .t = 1};
  IdSelection sel(params, 1);
  // One link spams three different ids; only the first may count.
  Inbox inbox;
  inbox.push_back({0, sim::IdMsg{5}});
  inbox.push_back({0, sim::IdMsg{6}});
  inbox.push_back({0, sim::IdMsg{7}});
  sel.on_receive(1, inbox);
  sim::Outbox out(false);
  sel.on_send(2, out);
  ASSERT_EQ(out.entries().size(), 1u);
  EXPECT_EQ(std::get<sim::EchoMsg>(*out.entries()[0].payload).id, 5);
}

TEST(IdSelectionUnit, DuplicateEchoesFromSameLinkCountOnce) {
  const sim::SystemParams params{.n = 4, .t = 1};
  IdSelection sel(params, 1);
  sel.on_receive(1, {});
  // N-t = 3 echoes needed; two arrive from the same link.
  Inbox echoes;
  echoes.push_back({0, sim::EchoMsg{9}});
  echoes.push_back({0, sim::EchoMsg{9}});
  echoes.push_back({1, sim::EchoMsg{9}});
  sel.on_receive(2, echoes);
  sim::Outbox out(false);
  sel.on_send(3, out);
  EXPECT_TRUE(out.entries().empty());
}

TEST(IdSelectionUnit, WeakReadyQuorumTriggersStepFourAmplification) {
  const sim::SystemParams params{.n = 7, .t = 2};
  IdSelection sel(params, 1);
  sel.on_receive(1, {});
  sel.on_receive(2, {});  // nothing echoed: this process is not Ready for 42
  // Step 3: N-2t = 3 Readys arrive for id 42 — below timely (N-t = 5) but
  // enough that at least one correct process saw an echo quorum.
  sel.on_receive(3, inbox_from_links(3, [](int) { return sim::Payload(sim::ReadyMsg{42}); }));
  EXPECT_FALSE(sel.timely().contains(42));
  sim::Outbox out4(false);
  sel.on_send(4, out4);
  ASSERT_EQ(out4.entries().size(), 1u);
  EXPECT_EQ(std::get<sim::ReadyMsg>(*out4.entries()[0].payload).id, 42);
  // Two more Readys in step 4 complete the N-t quorum: accepted.
  Inbox more;
  more.push_back({3, sim::ReadyMsg{42}});
  more.push_back({4, sim::ReadyMsg{42}});
  sel.on_receive(4, more);
  EXPECT_TRUE(sel.accepted().contains(42));
  EXPECT_FALSE(sel.timely().contains(42));
}

TEST(IdSelectionUnit, NoAmplificationBelowWeakQuorum) {
  const sim::SystemParams params{.n = 7, .t = 2};
  IdSelection sel(params, 1);
  sel.on_receive(1, {});
  sel.on_receive(2, {});
  sel.on_receive(3, inbox_from_links(2, [](int) { return sim::Payload(sim::ReadyMsg{42}); }));
  sim::Outbox out4(false);
  sel.on_send(4, out4);
  EXPECT_TRUE(out4.entries().empty());
}

TEST(IdSelectionUnit, IgnoresWrongMessageTypes) {
  const sim::SystemParams params{.n = 4, .t = 1};
  IdSelection sel(params, 1);
  Inbox inbox;
  inbox.push_back({0, sim::EchoMsg{5}});               // echo during step 1
  inbox.push_back({1, sim::RanksMsg{}});               // vote during step 1
  inbox.push_back({2, sim::WordMsg{1, {1, 2, 3}}});    // consensus traffic
  sel.on_receive(1, inbox);
  sim::Outbox out(false);
  sel.on_send(2, out);
  EXPECT_TRUE(out.entries().empty());
}

TEST(IdSelectionUnit, RejectsOutOfRangeSteps) {
  const sim::SystemParams params{.n = 4, .t = 1};
  IdSelection sel(params, 1);
  sim::Outbox out(false);
  EXPECT_THROW(sel.on_send(5, out), std::logic_error);
  EXPECT_THROW(sel.on_receive(0, {}), std::logic_error);
}

// ---------------------------------------------------------------------------
// Integration-level: the lemmas, measured over whole networks.
// ---------------------------------------------------------------------------

struct LemmaCase {
  int n;
  int t;
  const char* adversary;
  std::uint64_t seed;
};

class IdSelectionLemmas : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(IdSelectionLemmas, LemmasHoldUnderAdversary) {
  const LemmaCase& c = GetParam();
  ScenarioConfig config;
  config.params = {.n = c.n, .t = c.t};
  config.algorithm = Algorithm::kOpRenaming;
  config.adversary = c.adversary;
  config.seed = c.seed;

  // Capture per-process selection sets right after step 4.
  std::vector<std::set<Id>> timely_sets;
  std::vector<std::set<Id>> accepted_sets;
  config.observer = [&](sim::Round round, const sim::Network& net) {
    if (round != 4) return;
    for (sim::ProcessIndex i = 0; i < net.size(); ++i) {
      if (net.is_byzantine(i)) continue;
      const auto& op = dynamic_cast<const OpRenamingProcess&>(net.behavior(i));
      timely_sets.push_back(op.timely());
      accepted_sets.push_back(op.selection_accepted());
    }
  };
  const ScenarioResult result = run_scenario(config);
  ASSERT_FALSE(timely_sets.empty());

  // Correct ids (harness convention: correct processes are in id order).
  std::set<Id> correct_ids;
  for (const NamedProcess& p : result.named) correct_ids.insert(p.original_id);

  const int bound = c.n + (c.t * c.t) / (c.n - 2 * c.t);
  for (std::size_t p = 0; p < timely_sets.size(); ++p) {
    // Lemma IV.2: every correct id is timely everywhere.
    for (const Id id : correct_ids) {
      EXPECT_TRUE(timely_sets[p].contains(id)) << "correct id missing from timely";
    }
    // Lemma IV.3: |accepted| <= N + floor(t^2/(N-2t)).
    EXPECT_LE(static_cast<int>(accepted_sets[p].size()), bound);
    // Lemma IV.1: timely_p subseteq accepted_q for all correct p, q.
    for (std::size_t q = 0; q < accepted_sets.size(); ++q) {
      for (const Id id : timely_sets[p]) {
        EXPECT_TRUE(accepted_sets[q].contains(id))
            << "timely id " << id << " missing from another accepted set";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IdSelectionLemmas,
    ::testing::Values(LemmaCase{4, 1, "silent", 1}, LemmaCase{4, 1, "idflood", 2},
                      LemmaCase{7, 2, "idflood", 3}, LemmaCase{7, 2, "suppress", 4},
                      LemmaCase{10, 3, "idflood", 5}, LemmaCase{10, 3, "random", 6},
                      LemmaCase{13, 4, "idflood", 7}, LemmaCase{13, 4, "split", 8},
                      LemmaCase{16, 5, "idflood", 9}, LemmaCase{16, 5, "crash", 10},
                      LemmaCase{25, 8, "idflood", 11}, LemmaCase{25, 8, "suppress", 12}));

TEST(IdSelectionBound, FloodSaturatesLemmaIV3Exactly) {
  // With f == t the calibrated flood reaches |accepted| == N + t^2/(N-2t).
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{7, 2}, {10, 3}, {13, 4}, {16, 5}}) {
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "idflood";
    config.seed = 99;
    const ScenarioResult result = run_scenario(config);
    const std::size_t bound = static_cast<std::size_t>(n + (t * t) / (n - 2 * t));
    EXPECT_EQ(result.max_accepted, bound) << "n=" << n << " t=" << t;
  }
}

}  // namespace
}  // namespace byzrename::core
