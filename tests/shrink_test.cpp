// Failure repro + shrinking: scenario evaluation digests, the greedy
// delta-debugging shrinker, repro-bundle round-trips, and the JSON parser
// the bundle loader is built on.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/repro.h"
#include "exp/shrink.h"
#include "obs/json_parse.h"
#include "sim/fault.h"

namespace byzrename {
namespace {

exp::ReproScenario failing_scenario() {
  exp::ReproScenario scenario;
  scenario.params = {.n = 10, .t = 3};
  scenario.seed = 7;
  scenario.fault_plan = sim::parse_fault_plan("drop:1.0");
  return scenario;
}

TEST(EvaluateScenario, CleanRunYieldsNoFailure) {
  exp::ReproScenario scenario;
  scenario.params = {.n = 7, .t = 2};
  const exp::ReproVerdict verdict = exp::evaluate_scenario(scenario);
  EXPECT_EQ(verdict.kind, exp::FailureKind::kNone);
  EXPECT_FALSE(verdict.failed());
  EXPECT_TRUE(verdict.terminated);
  EXPECT_TRUE(verdict.classes.empty());
}

TEST(EvaluateScenario, IsDeterministic) {
  const exp::ReproScenario scenario = failing_scenario();
  const exp::ReproVerdict a = exp::evaluate_scenario(scenario);
  const exp::ReproVerdict b = exp::evaluate_scenario(scenario);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.kind, exp::FailureKind::kViolation);
  EXPECT_NE(a.classes.find("termination"), std::string::npos);
}

TEST(EvaluateScenario, ExceptionsBecomeVerdictsNotThrows) {
  exp::ReproScenario scenario;
  scenario.params = {.n = 7, .t = 2};
  scenario.adversary = "no-such-strategy";
  const exp::ReproVerdict verdict = exp::evaluate_scenario(scenario);
  EXPECT_EQ(verdict.kind, exp::FailureKind::kException);
  EXPECT_FALSE(verdict.detail.empty());
}

TEST(SameFailure, MatchesByKindSpecificFields) {
  exp::ReproVerdict violation_a{exp::FailureKind::kViolation, "order", "msg a", 5, true, 9};
  exp::ReproVerdict violation_b{exp::FailureKind::kViolation, "order", "msg b", 3, true, 7};
  exp::ReproVerdict violation_c{exp::FailureKind::kViolation, "uniqueness", "msg a", 5, true, 9};
  EXPECT_TRUE(exp::same_failure(violation_a, violation_b));  // detail may differ
  EXPECT_FALSE(exp::same_failure(violation_a, violation_c));

  exp::ReproVerdict exception_a{exp::FailureKind::kException, "", "boom", 0, false, 0};
  exp::ReproVerdict exception_b{exp::FailureKind::kException, "", "boom", 0, false, 0};
  exp::ReproVerdict exception_c{exp::FailureKind::kException, "", "other", 0, false, 0};
  EXPECT_TRUE(exp::same_failure(exception_a, exception_b));
  EXPECT_FALSE(exp::same_failure(exception_a, exception_c));
  EXPECT_FALSE(exp::same_failure(violation_a, exception_a));
}

TEST(Shrinker, SizeMetricShrinksWithTheScenario) {
  exp::ReproScenario big = failing_scenario();
  exp::ReproScenario small = big;
  small.params.n = 4;
  small.params.t = 1;
  small.fault_plan = {};
  EXPECT_LT(exp::scenario_size(small), exp::scenario_size(big));
}

TEST(Shrinker, CandidatesAreStrictlySimplerAndDeterministic) {
  const exp::ReproScenario scenario = failing_scenario();
  const auto first = exp::shrink_candidates(scenario);
  const auto second = exp::shrink_candidates(scenario);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);
}

TEST(Shrinker, RefusesAPassingScenario) {
  exp::ReproScenario scenario;
  scenario.params = {.n = 7, .t = 2};
  EXPECT_THROW((void)exp::shrink_scenario(scenario), std::invalid_argument);
}

TEST(Shrinker, MinimizesSeededFailureToSameClassStrictlySmaller) {
  const exp::ReproScenario scenario = failing_scenario();
  const exp::ReproVerdict original = exp::evaluate_scenario(scenario);
  ASSERT_EQ(original.kind, exp::FailureKind::kViolation);

  const exp::ShrinkResult result = exp::shrink_scenario(scenario);
  EXPECT_TRUE(result.shrank());
  EXPECT_LT(result.final_size, result.original_size);
  EXPECT_GT(result.accepted_shrinks, 0);
  // Same failure class set, still actually failing.
  EXPECT_EQ(result.verdict.kind, exp::FailureKind::kViolation);
  EXPECT_EQ(result.verdict.classes, original.classes);
  EXPECT_EQ(exp::evaluate_scenario(result.scenario), result.verdict);
  // Deterministic: shrinking again lands on the same minimum.
  const exp::ShrinkResult again = exp::shrink_scenario(scenario);
  EXPECT_EQ(again.scenario, result.scenario);
}

TEST(Shrinker, RestartFailureShedsTheIrrelevantForgeRule) {
  // A mid-protocol restart starves the restarted process (termination
  // violation); the forge rule riding along contributes nothing to that
  // failure, so the shrinker must delete it and keep the restart.
  exp::ReproScenario scenario;
  scenario.params = {.n = 13, .t = 2};
  scenario.seed = 7;
  scenario.extra_rounds = 8;
  scenario.fault_plan = sim::parse_fault_plan("restart:3@2+forge:1");
  const exp::ReproVerdict original = exp::evaluate_scenario(scenario);
  ASSERT_EQ(original.kind, exp::FailureKind::kViolation);
  ASSERT_NE(original.classes.find("termination"), std::string::npos);

  const exp::ShrinkResult result = exp::shrink_scenario(scenario);
  EXPECT_TRUE(result.shrank());
  EXPECT_LT(result.final_size, result.original_size);
  EXPECT_EQ(result.verdict.classes, original.classes);
  EXPECT_TRUE(result.scenario.fault_plan.forges.empty());
  ASSERT_EQ(result.scenario.fault_plan.restarts.size(), 1u);
}

TEST(Shrinker, ForgeHeavyFailureMinimizesStrictlySmaller) {
  // The failure is carried by the total drop; the forge rule (and its
  // count, which the shrinker halves before erasing) must disappear from
  // the minimized scenario while the failure class is preserved.
  exp::ReproScenario scenario;
  scenario.params = {.n = 10, .t = 3};
  scenario.seed = 7;
  scenario.fault_plan = sim::parse_fault_plan("drop:1.0+forge:8x0.5");
  const exp::ReproVerdict original = exp::evaluate_scenario(scenario);
  ASSERT_EQ(original.kind, exp::FailureKind::kViolation);

  const exp::ShrinkResult result = exp::shrink_scenario(scenario);
  EXPECT_TRUE(result.shrank());
  EXPECT_LT(result.final_size, result.original_size);
  EXPECT_EQ(result.verdict.classes, original.classes);
  EXPECT_TRUE(result.scenario.fault_plan.forges.empty());
  // Deterministic: the same input shrinks to the same minimum.
  EXPECT_EQ(exp::shrink_scenario(scenario).scenario, result.scenario);
}

TEST(ReproBundle, WriteParseRoundTripsIncludingUint64Seed) {
  exp::ReproBundle bundle;
  bundle.campaign = "unit";
  bundle.cell = "op/n10/t3/silent";
  bundle.rep = 4;
  bundle.scenario = failing_scenario();
  bundle.scenario.seed = std::numeric_limits<std::uint64_t>::max() - 1;  // > int64 max
  bundle.scenario.adversary = "idflood";
  bundle.scenario.actual_faults = 2;
  bundle.scenario.iterations = 12;
  bundle.scenario.validate_votes = false;
  bundle.scenario.extra_rounds = 3;
  bundle.expected = {exp::FailureKind::kViolation, "termination", "detail text", 9, false, 4};

  std::ostringstream out;
  exp::write_repro_bundle(out, bundle);
  const exp::ReproBundle parsed = exp::parse_repro_bundle(out.str());
  EXPECT_EQ(parsed.campaign, bundle.campaign);
  EXPECT_EQ(parsed.cell, bundle.cell);
  EXPECT_EQ(parsed.rep, bundle.rep);
  EXPECT_EQ(parsed.scenario, bundle.scenario);
  EXPECT_EQ(parsed.expected, bundle.expected);

  // Serialization itself is deterministic.
  std::ostringstream out2;
  exp::write_repro_bundle(out2, parsed);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(ReproBundle, RejectsUnknownSchemaAndGarbage) {
  EXPECT_THROW((void)exp::parse_repro_bundle("{\"schema\":\"bogus/9\"}"),
               std::invalid_argument);
  EXPECT_THROW((void)exp::parse_repro_bundle("not json"), std::invalid_argument);
  EXPECT_THROW((void)exp::parse_repro_bundle("{}"), std::invalid_argument);
}

TEST(ReproVerdictDoc, IsDeterministicAndRecordsMatch) {
  exp::ReproBundle bundle;
  bundle.scenario = failing_scenario();
  bundle.expected = exp::evaluate_scenario(bundle.scenario);
  std::ostringstream a;
  std::ostringstream b;
  exp::write_repro_verdict(a, bundle, bundle.expected, 8, true);
  exp::write_repro_verdict(b, bundle, bundle.expected, 8, true);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"matches_expected\":true"), std::string::npos);
  const exp::ReproVerdict mismatched;  // kNone != the violation verdict
  std::ostringstream c;
  exp::write_repro_verdict(c, bundle, mismatched, 8, true);
  EXPECT_NE(c.str().find("\"matches_expected\":false"), std::string::npos);
}

TEST(JsonParse, ParsesScalarsContainersAndEscapes) {
  const obs::JsonValue doc = obs::parse_json(
      R"({"b":true,"i":-5,"d":2.5,"s":"a\"\\\n\u0041\u00e9","arr":[1,2,3],"obj":{"k":null}})");
  EXPECT_TRUE(doc.at("b").as_bool());
  EXPECT_EQ(doc.at("i").as_int(), -5);
  EXPECT_DOUBLE_EQ(doc.at("d").as_double(), 2.5);
  EXPECT_EQ(doc.at("s").as_string(), "a\"\\\nA\xc3\xa9");
  EXPECT_EQ(doc.at("arr").as_array().size(), 3u);
  EXPECT_EQ(doc.at("arr").as_array()[2].as_int(), 3);
  EXPECT_TRUE(doc.at("obj").at("k").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), std::invalid_argument);
}

TEST(JsonParse, PreservesFullUint64Range) {
  const obs::JsonValue doc = obs::parse_json("{\"seed\":18446744073709551614}");
  EXPECT_EQ(doc.at("seed").as_uint(), 18446744073709551614ull);
  EXPECT_THROW((void)doc.at("seed").as_int(), std::invalid_argument);  // > int64 max
  const obs::JsonValue small = obs::parse_json("{\"seed\":42}");
  EXPECT_EQ(small.at("seed").as_int(), 42);
  EXPECT_EQ(small.at("seed").as_uint(), 42u);
  const obs::JsonValue negative = obs::parse_json("{\"x\":-1}");
  EXPECT_THROW((void)negative.at("x").as_uint(), std::invalid_argument);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1,]",        // trailing comma
      "{\"a\":1,}",  // trailing comma in object
      "\"\\u12\"",   // truncated escape
      "\"\\ud800\"", // unpaired surrogate
      "{} trailing", // trailing content
      "{\"a\" 1}",   // missing colon
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)obs::parse_json(text), std::invalid_argument) << text;
  }
}

TEST(Watchdog, DeadlineObserverThrowsPastTimeout) {
  exp::ReproScenario scenario;
  scenario.params = {.n = 7, .t = 2};
  // A generous deadline never fires on a millisecond-scale run...
  EXPECT_EQ(exp::evaluate_scenario(scenario, 30.0).kind, exp::FailureKind::kNone);
  // ...while an already-expired one converts the run into a timeout
  // verdict at the first round boundary.
  EXPECT_EQ(exp::evaluate_scenario(scenario, 1e-9).kind, exp::FailureKind::kTimeout);
}

}  // namespace
}  // namespace byzrename
