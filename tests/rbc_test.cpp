#include "rbc/sync_rbc.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/network.h"
#include "sim/runner.h"

namespace byzrename::rbc {
namespace {

/// A faulty sender that equivocates: value `a` to the first half, `b` to
/// the second half, in round 1; silent afterwards.
class EquivocatingSender final : public sim::ProcessBehavior {
 public:
  EquivocatingSender(int n, std::int64_t a, std::int64_t b) : n_(n), a_(a), b_(b) {}
  void on_send(sim::Round round, sim::Outbox& out) override {
    if (round != 1) return;
    for (int dest = 0; dest < n_; ++dest) {
      out.send_to(dest, sim::WordMsg{1, {dest < n_ / 2 ? a_ : b_}});
    }
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  int n_;
  std::int64_t a_;
  std::int64_t b_;
};

/// A faulty process that echoes/readies a value of its own invention.
class LyingParticipant final : public sim::ProcessBehavior {
 public:
  explicit LyingParticipant(std::int64_t value) : value_(value) {}
  void on_send(sim::Round round, sim::Outbox& out) override {
    if (round == 2) out.broadcast(sim::WordMsg{2, {value_}});
    if (round == 3 || round == 4) out.broadcast(sim::WordMsg{3, {value_}});
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  std::int64_t value_;
};

struct RbcOutcome {
  std::vector<std::optional<std::int64_t>> delivered;  ///< per correct process
};

RbcOutcome run_rbc(int n, int t, sim::ProcessIndex sender,
                   std::vector<std::unique_ptr<sim::ProcessBehavior>> faulty,
                   std::int64_t sender_value = 77) {
  const sim::SystemParams params{.n = n, .t = t};
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  std::vector<bool> byzantine;
  const int correct = n - static_cast<int>(faulty.size());
  for (int i = 0; i < correct; ++i) {
    behaviors.push_back(std::make_unique<SyncRbcProcess>(params, i, sender, sender_value));
    byzantine.push_back(false);
  }
  for (auto& f : faulty) {
    behaviors.push_back(std::move(f));
    byzantine.push_back(true);
  }
  // RBC presupposes sender-authenticated links: scramble off.
  sim::Network net(std::move(behaviors), std::move(byzantine), sim::Rng(9), false);
  sim::run_to_completion(net, 4);
  RbcOutcome outcome;
  for (int i = 0; i < correct; ++i) {
    outcome.delivered.push_back(
        dynamic_cast<const SyncRbcProcess&>(net.behavior(i)).delivered());
  }
  return outcome;
}

TEST(SyncRbc, CorrectSenderDeliversEverywhere) {
  const RbcOutcome outcome = run_rbc(4, 1, 0, {});
  for (const auto& d : outcome.delivered) {
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 77);
  }
}

TEST(SyncRbc, CorrectSenderSurvivesLyingParticipant) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> faulty;
  faulty.push_back(std::make_unique<LyingParticipant>(666));
  const RbcOutcome outcome = run_rbc(7, 2, 0, std::move(faulty));
  for (const auto& d : outcome.delivered) {
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 77);
  }
}

TEST(SyncRbc, EquivocatingSenderNeverSplitsDeliveries) {
  // Agreement: whatever subset delivers, it delivers one value.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<std::unique_ptr<sim::ProcessBehavior>> faulty;
    faulty.push_back(std::make_unique<EquivocatingSender>(7, 10, 20));
    const RbcOutcome outcome = run_rbc(7, 2, /*sender=*/6, std::move(faulty));
    std::set<std::int64_t> values;
    for (const auto& d : outcome.delivered) {
      if (d.has_value()) values.insert(*d);
    }
    EXPECT_LE(values.size(), 1u) << "two correct processes delivered different values";
  }
}

TEST(SyncRbc, SilentSenderDeliversNothing) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> faulty;
  faulty.push_back(std::make_unique<LyingParticipant>(0));  // never sends round-1 Send
  const RbcOutcome outcome = run_rbc(4, 1, /*sender=*/3, std::move(faulty));
  for (const auto& d : outcome.delivered) EXPECT_FALSE(d.has_value());
}

TEST(SyncRbc, SendMessageOnWrongLinkIsIgnored) {
  // A Send arriving on a non-sender link must not be believed — this is
  // the attribution step that anonymous links make impossible.
  const sim::SystemParams params{.n = 4, .t = 1};
  SyncRbcProcess p(params, /*my_index=*/0, /*sender_index=*/2, /*value=*/0);
  sim::Inbox round1;
  round1.push_back({1, sim::WordMsg{1, {55}}});  // link 1 != sender 2
  p.on_receive(1, round1);
  sim::Outbox out(false);
  p.on_send(2, out);
  EXPECT_TRUE(out.entries().empty());  // nothing to echo
}

TEST(SyncRbc, RequiresByzantineQuorum) {
  EXPECT_THROW(SyncRbcProcess({.n = 6, .t = 2}, 0, 0, 1), std::invalid_argument);
  EXPECT_NO_THROW(SyncRbcProcess({.n = 7, .t = 2}, 0, 0, 1));
}

}  // namespace
}  // namespace byzrename::rbc
