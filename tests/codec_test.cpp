#include "sim/codec.h"

#include <gtest/gtest.h>

#include <random>

#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace byzrename::sim {
namespace {

using numeric::BigInt;
using numeric::Rational;

void expect_round_trip(const Payload& payload) {
  const std::vector<std::uint8_t> bytes = encode(payload);
  const std::optional<Payload> decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value()) << describe(payload);
  EXPECT_EQ(*decoded, payload) << describe(payload);
}

TEST(Codec, RoundTripsSimpleMessages) {
  expect_round_trip(IdMsg{0});
  expect_round_trip(IdMsg{1});
  expect_round_trip(IdMsg{-1});
  expect_round_trip(IdMsg{std::numeric_limits<std::int64_t>::max()});
  expect_round_trip(IdMsg{std::numeric_limits<std::int64_t>::min()});
  expect_round_trip(EchoMsg{123456789});
  expect_round_trip(ReadyMsg{987654321});
}

TEST(Codec, RoundTripsRanks) {
  expect_round_trip(RanksMsg{});
  expect_round_trip(RanksMsg{{{5, Rational::of(41, 40)}}});
  RanksMsg big;
  for (int i = 0; i < 100; ++i) {
    big.entries.push_back({1000 + i, Rational::of(i * 41 + 1, 40)});
  }
  expect_round_trip(big);
}

TEST(Codec, RoundTripsNegativeAndHugeRationals) {
  expect_round_trip(AAValueMsg{Rational(0)});
  expect_round_trip(AAValueMsg{Rational(-7)});
  expect_round_trip(AAValueMsg{Rational::of(-22, 7)});
  const BigInt huge = (BigInt(1) << 300) + BigInt(12345);
  expect_round_trip(AAValueMsg{Rational(huge, (BigInt(1) << 128) + BigInt(1))});
  expect_round_trip(AAValueMsg{Rational(-huge, BigInt(3))});
}

TEST(Codec, RoundTripsMultiEchoAndWords) {
  expect_round_trip(MultiEchoMsg{});
  expect_round_trip(MultiEchoMsg{{1, 2, 3, -5, 1'000'000'000'000}});
  expect_round_trip(WordMsg{0, {}});
  expect_round_trip(WordMsg{-42, {1, -2, 3, std::numeric_limits<std::int64_t>::min()}});
}

TEST(Codec, SmallMessagesEncodeSmall) {
  // Varint efficiency: a 1-digit id costs 2 bytes total, not 9.
  EXPECT_EQ(encode(IdMsg{5}).size(), 2u);
  EXPECT_LE(encode(RanksMsg{{{3, Rational::of(41, 40)}}}).size(), 8u);
}

TEST(Codec, RejectsEmptyAndUnknownKind) {
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode({0x00}).has_value());
  EXPECT_FALSE(decode({0xFF, 0x01}).has_value());
}

TEST(Codec, RejectsTruncation) {
  const std::vector<std::uint8_t> good = encode(RanksMsg{{{5, Rational::of(41, 40)}}});
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(good.begin(),
                                              good.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = encode(IdMsg{7});
  bytes.push_back(0x00);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsZeroDenominator) {
  // AAValue with numerator 1 and denominator of zero length.
  std::vector<std::uint8_t> bytes;
  bytes.push_back(6);     // kAAValue
  bytes.push_back(0x02);  // numerator header: 1 byte, positive
  bytes.push_back(0x01);  // numerator magnitude = 1
  bytes.push_back(0x00);  // denominator length 0 => zero
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsNonCanonicalBigintPadding) {
  // A magnitude with a trailing zero byte must be rejected so equal
  // values have exactly one encoding (no malleability).
  std::vector<std::uint8_t> bytes;
  bytes.push_back(6);     // kAAValue
  bytes.push_back(0x04);  // numerator header: 2 bytes, positive
  bytes.push_back(0x01);  // 1
  bytes.push_back(0x00);  // padded high byte
  bytes.push_back(0x01);  // denominator length 1
  bytes.push_back(0x01);  // denominator 1
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsNonMinimalVarints) {
  // 0x80 0x00 is a padded encoding of 0; only 0x00 is canonical.
  EXPECT_FALSE(decode({1 /*kId*/, 0x80, 0x00}).has_value());
  EXPECT_TRUE(decode({1 /*kId*/, 0x00}).has_value());
}

TEST(Codec, RejectsAbsurdVectorCounts) {
  std::vector<std::uint8_t> bytes;
  bytes.push_back(5);  // kMultiEcho
  // count = 2^40 as varint
  for (int i = 0; i < 5; ++i) bytes.push_back(0x80);
  bytes.push_back(0x10);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, FuzzDecodeNeverCrashes) {
  // Byzantine processes control every byte: decode must be total.
  std::mt19937_64 rng(20130707);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    const auto decoded = decode(bytes);  // must not crash or throw
    if (decoded.has_value()) {
      // Whatever decodes must re-encode to the same bytes (canonicality).
      EXPECT_EQ(encode(*decoded), bytes);
    }
  }
}

TEST(Codec, FuzzRoundTripRandomPayloads) {
  std::mt19937_64 rng(424242);
  for (int i = 0; i < 2000; ++i) {
    Payload payload;
    switch (rng() % 5) {
      case 0:
        payload = IdMsg{static_cast<std::int64_t>(rng())};
        break;
      case 1: {
        MultiEchoMsg msg;
        for (std::uint64_t k = rng() % 10; k > 0; --k) {
          msg.ids.push_back(static_cast<std::int64_t>(rng()));
        }
        payload = std::move(msg);
        break;
      }
      case 2: {
        RanksMsg msg;
        for (std::uint64_t k = rng() % 6; k > 0; --k) {
          msg.entries.push_back(
              {static_cast<std::int64_t>(rng() % 100000),
               Rational::of(static_cast<std::int64_t>(rng() % 2001) - 1000,
                            static_cast<std::int64_t>(rng() % 999) + 1)});
        }
        payload = std::move(msg);
        break;
      }
      case 3: {
        WordMsg msg{static_cast<std::int64_t>(rng() % 1000), {}};
        for (std::uint64_t k = rng() % 8; k > 0; --k) {
          msg.words.push_back(static_cast<std::int64_t>(rng()));
        }
        payload = std::move(msg);
        break;
      }
      default:
        payload = AAValueMsg{Rational::of(static_cast<std::int64_t>(rng()) / 1024,
                                          static_cast<std::int64_t>(rng() % 4095) + 1)};
        break;
    }
    const auto decoded = decode(encode(payload));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(Codec, EncodedBitsMatchesEncodeSize) {
  const Payload payload = RanksMsg{{{5, Rational::of(41, 40)}, {9, Rational::of(82, 40)}}};
  EXPECT_EQ(encoded_bits(payload), encode(payload).size() * 8);
}

TEST(BigIntBytes, MagnitudeRoundTrip) {
  for (const char* text : {"0", "1", "255", "256", "4294967295", "4294967296",
                           "340282366920938463463374607431768211457"}) {
    const BigInt value = BigInt::from_string(text);
    EXPECT_EQ(BigInt::from_magnitude_bytes(value.magnitude_bytes(), false), value) << text;
    EXPECT_EQ(BigInt::from_magnitude_bytes(value.magnitude_bytes(), true),
              value.is_zero() ? value : -value)
        << text;
  }
}

TEST(BigIntBytes, ToleratesTrailingZeroBytes) {
  EXPECT_EQ(BigInt::from_magnitude_bytes({0x05, 0x00, 0x00}, false), BigInt(5));
  EXPECT_EQ(BigInt::from_magnitude_bytes({}, true), BigInt(0));
}

}  // namespace
}  // namespace byzrename::sim
