#include <gtest/gtest.h>

#include <sstream>

#include "core/harness.h"
#include "trace/csv.h"
#include "trace/event_log.h"
#include "trace/table.h"

namespace byzrename::trace {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"a", "long header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide cell", "x", "y"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("long header"), std::string::npos);
  EXPECT_NE(text.find("wide cell"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsWrongCellCount) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "y"});
  csv.write_row({"plain", "with,comma"});
  csv.write_row({"with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(), "x,y\nplain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, QuotesFieldsMixingCommasQuotesAndNewlines) {
  std::ostringstream out;
  CsvWriter csv(out, {"v"});
  csv.write_row({"a,\"b\"\nc"});
  csv.write_row({""});
  EXPECT_EQ(out.str(), "v\n\"a,\"\"b\"\"\nc\"\n\n");
}

TEST(Csv, HeaderCellsAreQuotedToo) {
  std::ostringstream out;
  CsvWriter csv(out, {"plain", "needs,quoting"});
  csv.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "plain,\"needs,quoting\"\n1,2\n");
}

TEST(Csv, RejectsColumnMismatch) {
  std::ostringstream out;
  CsvWriter csv(out, {"x"});
  EXPECT_THROW(csv.write_row({"a", "b"}), std::invalid_argument);
}

TEST(FmtHelpers, Format) {
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "NO");
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
}

TEST(EventLog, CapturesSendsAndDeliveries) {
  EventLog log;
  core::ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.adversary = "silent";
  config.event_log = &log;
  const core::ScenarioResult result = core::run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  ASSERT_FALSE(log.empty());

  int sends = 0;
  int deliveries = 0;
  int decides = 0;
  for (const Event& event : log.events()) {
    if (event.kind == Event::Kind::kSend) {
      ++sends;
      EXPECT_FALSE(event.peer.has_value());  // correct processes broadcast
      EXPECT_FALSE(event.byzantine_actor);   // the silent one never sends
    } else if (event.kind == Event::Kind::kDeliver) {
      ++deliveries;
      EXPECT_GE(event.link, 0);
      EXPECT_LT(event.link, 4);
    } else {
      ++decides;
      EXPECT_FALSE(event.byzantine_actor);
    }
    EXPECT_FALSE(event.payload.empty());
  }
  // Every broadcast fans out to N deliveries.
  EXPECT_EQ(deliveries, sends * 4);
  // Every correct process decides exactly once (n=4, t=1, one silent fault).
  EXPECT_EQ(decides, 3);
}

TEST(EventLog, RecordsOneDecisionPerCorrectProcess) {
  EventLog log;
  core::ScenarioConfig config;
  config.params = {.n = 5, .t = 1};
  config.adversary = "idflood";
  config.event_log = &log;
  const core::ScenarioResult result = core::run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;

  std::vector<int> decide_counts(5, 0);
  for (const Event& event : log.events()) {
    if (event.kind != Event::Kind::kDecide) continue;
    ++decide_counts[static_cast<std::size_t>(event.actor)];
    EXPECT_NE(event.payload.find("name="), std::string::npos);
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(decide_counts[static_cast<std::size_t>(i)], 1);
  EXPECT_EQ(decide_counts[4], 0);  // the Byzantine tail never decides

  // The renderer spells decisions out and the decide filter composes with it.
  std::ostringstream rendered;
  log.render(rendered, [](const Event& event) { return event.kind == Event::Kind::kDecide; });
  EXPECT_NE(rendered.str().find("decides"), std::string::npos);
  EXPECT_EQ(rendered.str().find("->"), std::string::npos);
}

TEST(EventLog, FiltersSelectSubsets) {
  EventLog log;
  core::ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.adversary = "split";  // byzantine sender -> targeted sends in the log
  config.event_log = &log;
  (void)core::run_scenario(config);

  std::ostringstream round_one;
  log.render(round_one, EventLog::only_round(1));
  EXPECT_NE(round_one.str().find("--- round 1 ---"), std::string::npos);
  EXPECT_EQ(round_one.str().find("--- round 2 ---"), std::string::npos);

  std::ostringstream byz_only;
  log.render(byz_only, EventLog::only_byzantine());
  EXPECT_NE(byz_only.str().find("*"), std::string::npos);

  std::ostringstream actor_zero;
  log.render(actor_zero, EventLog::only_actor(0));
  EXPECT_NE(actor_zero.str().find("p0"), std::string::npos);
  EXPECT_EQ(actor_zero.str().find("p1 "), std::string::npos);
}

TEST(EventLog, ComposedFiltersIntersect) {
  EventLog log;
  core::ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.adversary = "split";
  config.event_log = &log;
  (void)core::run_scenario(config);

  // AND-compose the stock filters by hand: round 1, actor 0 only.
  const auto round_one = EventLog::only_round(1);
  const auto actor_zero = EventLog::only_actor(0);
  std::ostringstream both;
  log.render(both, [&](const Event& event) { return round_one(event) && actor_zero(event); });
  const std::string text = both.str();
  EXPECT_NE(text.find("--- round 1 ---"), std::string::npos);
  EXPECT_EQ(text.find("--- round 2 ---"), std::string::npos);
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_EQ(text.find("p1 "), std::string::npos);

  // A filter matching nothing renders nothing, not empty round banners.
  std::ostringstream none;
  log.render(none, [](const Event&) { return false; });
  EXPECT_TRUE(none.str().empty());
}

TEST(EventLog, ByzantineTargetedSendsAreAttributed) {
  EventLog log;
  core::ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.adversary = "split";
  config.event_log = &log;
  (void)core::run_scenario(config);
  bool saw_targeted_byzantine_send = false;
  for (const Event& event : log.events()) {
    if (event.kind == Event::Kind::kSend && event.byzantine_actor && event.peer.has_value()) {
      saw_targeted_byzantine_send = true;
    }
  }
  EXPECT_TRUE(saw_targeted_byzantine_send);
}

}  // namespace
}  // namespace byzrename::trace
