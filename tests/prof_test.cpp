// Tests for the obs/prof profiling plane: scoped timer-tree shape
// (nesting, reentrancy, sibling interning), graceful degradation when
// perf_event_open is unavailable (BYZRENAME_NO_PERF forces the path on
// machines where counters would work), allocation attribution through
// the interposed operator new, the collapsed-stack exporter against a
// golden file (deterministic via injected clocks), campaign-aggregate
// merge commutativity, and a TSan scrape-during-run hammer matching
// what a live GET /profile does to a profiler mid-run.
//
// This binary includes obs/prof/alloc_interpose.h (the one TU rule),
// so every test here runs with real allocation accounting. Counts from
// explicit, same-thread allocations are asserted as lower bounds, not
// exact values — gtest internals and sanitizer runtimes may allocate
// between the probe points, and the contract under test is attribution,
// not the standard library's allocation pattern.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/harness.h"
#include "obs/prof/alloc_interpose.h"
#include "obs/prof/profile_io.h"
#include "obs/prof/profiler.h"

namespace byzrename {
namespace {

using obs::prof::AllocCounts;
using obs::prof::AllocProfiler;
using obs::prof::PerfCounters;
using obs::prof::Profiler;
using obs::prof::ProfileAggregate;
using obs::prof::ProfileSnapshot;

// ---------------------------------------------------------------------------
// Injected clocks: each read advances by a fixed step, so every scope
// delta is a pure function of the enter/exit call sequence — which is
// what makes the exporter golden below byte-stable on any machine.

std::uint64_t g_fake_wall = 0;
std::uint64_t g_fake_cpu = 0;

std::uint64_t fake_wall_ns() { return g_fake_wall += 1'000'000; }  // +1 ms per read
std::uint64_t fake_cpu_ns() { return g_fake_cpu += 250'000; }      // +0.25 ms per read

Profiler::Options fake_clock_options() {
  g_fake_wall = 0;
  g_fake_cpu = 0;
  Profiler::Options options;
  options.hw_counters = false;
  options.clock.wall_ns = fake_wall_ns;
  options.clock.cpu_ns = fake_cpu_ns;
  return options;
}

/// Index of the node whose full path is @p path, or -1.
int find_path(const ProfileSnapshot& snapshot, const std::string& path) {
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    if (snapshot.path(i) == path) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Timer-tree shape

TEST(ProfilerTree, NestingBuildsFirstVisitOrderedTree) {
  Profiler profiler(fake_clock_options());
  {
    obs::prof::Scope run(&profiler, "run");
    {
      obs::prof::Scope selection(&profiler, "selection");
    }
    for (int k = 1; k <= 2; ++k) {
      obs::prof::Scope voting(&profiler, k == 1 ? "voting k=1" : "voting k=2");
    }
  }
  {
    obs::prof::Scope check(&profiler, "check");
  }

  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 5u);
  // First-visit order, parents before children.
  EXPECT_EQ(snapshot.path(0), "run");
  EXPECT_EQ(snapshot.path(1), "run;selection");
  EXPECT_EQ(snapshot.path(2), "run;voting k=1");
  EXPECT_EQ(snapshot.path(3), "run;voting k=2");
  EXPECT_EQ(snapshot.path(4), "check");
  EXPECT_EQ(snapshot.nodes[0].parent, -1);
  EXPECT_EQ(snapshot.nodes[1].parent, 0);
  EXPECT_EQ(snapshot.nodes[0].depth, 0);
  EXPECT_EQ(snapshot.nodes[1].depth, 1);
  EXPECT_EQ(snapshot.nodes[4].parent, -1);
  for (const auto& node : snapshot.nodes) EXPECT_EQ(node.calls, 1u);
  // Inclusive semantics: the parent's wall covers its three children.
  EXPECT_GT(snapshot.nodes[0].wall_ns,
            snapshot.nodes[1].wall_ns + snapshot.nodes[2].wall_ns + snapshot.nodes[3].wall_ns);
}

TEST(ProfilerTree, RepeatVisitsReuseTheInternedNode) {
  Profiler profiler(fake_clock_options());
  for (int i = 0; i < 5; ++i) {
    obs::prof::Scope scope(&profiler, "step");
  }
  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 1u);
  EXPECT_EQ(snapshot.nodes[0].calls, 5u);
  // 5 calls × 1 ms of fake wall between the enter and exit reads.
  EXPECT_EQ(snapshot.nodes[0].wall_ns, 5'000'000u);
  EXPECT_EQ(snapshot.nodes[0].cpu_ns, 5u * 250'000u);
}

TEST(ProfilerTree, ReentrantScopesMakeOneNodePerDepth) {
  Profiler profiler(fake_clock_options());
  // Direct recursion: the same name nested inside itself is a DIFFERENT
  // node per depth (the path disambiguates), not an accumulating cycle.
  std::function<void(int)> recurse = [&](int depth) {
    obs::prof::Scope scope(&profiler, "recurse");
    if (depth > 0) recurse(depth - 1);
  };
  recurse(2);
  recurse(2);

  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 3u);
  EXPECT_EQ(snapshot.path(0), "recurse");
  EXPECT_EQ(snapshot.path(1), "recurse;recurse");
  EXPECT_EQ(snapshot.path(2), "recurse;recurse;recurse");
  for (const auto& node : snapshot.nodes) EXPECT_EQ(node.calls, 2u);
}

TEST(ProfilerTree, NullScopeIsInertAndCloseIsIdempotent) {
  obs::prof::Scope inert(nullptr, "nothing");
  inert.close();
  inert.close();

  Profiler profiler(fake_clock_options());
  obs::prof::Scope scope(&profiler, "once");
  scope.close();
  scope.close();  // second close must not exit() again
  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 1u);
  EXPECT_EQ(snapshot.nodes[0].calls, 1u);
}

TEST(ProfilerTree, UnbalancedExitIsTolerated) {
  Profiler profiler(fake_clock_options());
  profiler.exit();  // empty stack: no-op, not UB
  profiler.enter("a");
  profiler.exit();
  profiler.exit();  // unbalanced again
  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 1u);
  EXPECT_EQ(snapshot.nodes[0].calls, 1u);
}

// ---------------------------------------------------------------------------
// Ambient (thread-local) profiler

TEST(ProfilerAmbient, GuardInstallsAndRestores) {
  EXPECT_EQ(obs::prof::thread_profiler(), nullptr);
  Profiler outer(fake_clock_options());
  {
    obs::prof::ThreadProfilerGuard guard(&outer);
    EXPECT_EQ(obs::prof::thread_profiler(), &outer);
    {
      Profiler inner(fake_clock_options());
      obs::prof::ThreadProfilerGuard nested(&inner);
      EXPECT_EQ(obs::prof::thread_profiler(), &inner);
      obs::prof::AmbientScope scope("inner scope");
    }
    EXPECT_EQ(obs::prof::thread_profiler(), &outer);
    obs::prof::AmbientScope scope("outer scope");
  }
  EXPECT_EQ(obs::prof::thread_profiler(), nullptr);
  obs::prof::AmbientScope inert("no profiler installed");  // must not crash

  EXPECT_EQ(find_path(outer.snapshot(), "outer scope"), 0);

  // thread_local: another thread starts with no ambient profiler even
  // while this one holds a guard.
  obs::prof::ThreadProfilerGuard guard(&outer);
  Profiler* seen = &outer;
  std::thread([&seen] { seen = obs::prof::thread_profiler(); }).join();
  EXPECT_EQ(seen, nullptr);
}

// ---------------------------------------------------------------------------
// Perf-counter degradation

TEST(ProfilerPerf, NoPerfEnvForcesTimerOnlyMode) {
  ASSERT_EQ(setenv("BYZRENAME_NO_PERF", "1", 1), 0);
  EXPECT_TRUE(PerfCounters::disabled_by_env());

  Profiler profiler;  // hw_counters defaults to true — env must win
  {
    obs::prof::Scope scope(&profiler, "work");
    std::vector<int> sink(1024, 1);
    ASSERT_EQ(sink.back(), 1);
  }
  EXPECT_FALSE(profiler.hw_available());
  const ProfileSnapshot snapshot = profiler.snapshot();
  EXPECT_FALSE(snapshot.hw_available);
  ASSERT_EQ(snapshot.nodes.size(), 1u);
  EXPECT_EQ(snapshot.nodes[0].hw.cycles, 0u);
  EXPECT_EQ(snapshot.nodes[0].hw.instructions, 0u);
  EXPECT_EQ(snapshot.nodes[0].hw.llc_misses, 0u);
  EXPECT_EQ(snapshot.nodes[0].hw.branch_misses, 0u);
  // Timer-only mode still measures: this is the degradation contract.
  EXPECT_GT(snapshot.nodes[0].wall_ns, 0u);
  EXPECT_EQ(snapshot.nodes[0].calls, 1u);

  ASSERT_EQ(unsetenv("BYZRENAME_NO_PERF"), 0);
}

TEST(ProfilerPerf, CountersMayBeUnavailableButNeverBreakTheTree) {
  // Whatever this machine supports (CI containers typically return
  // ENOSYS/EACCES), the profiler must produce a well-formed tree and a
  // consistent hw_available flag.
  Profiler profiler;
  {
    obs::prof::Scope scope(&profiler, "probe");
  }
  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.nodes.size(), 1u);
  if (!snapshot.hw_available) {
    EXPECT_EQ(snapshot.nodes[0].hw.cycles, 0u);
    EXPECT_EQ(snapshot.nodes[0].hw.instructions, 0u);
  }
}

TEST(ProfilerPerf, ThreadCpuClockIsMonotonic) {
  const std::uint64_t first = obs::prof::thread_cpu_ns();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  const std::uint64_t second = obs::prof::thread_cpu_ns();
  EXPECT_GE(second, first);
}

// ---------------------------------------------------------------------------
// Allocation attribution

TEST(ProfilerAlloc, InterpositionIsRegisteredInThisBinary) {
  EXPECT_TRUE(AllocProfiler::interposed());
}

TEST(ProfilerAlloc, ThreadCountersSeeExplicitAllocations) {
  const AllocCounts before = AllocProfiler::thread_counts();
  std::vector<char> block(4096);
  block[0] = 1;
  const AllocCounts after = AllocProfiler::thread_counts();
  EXPECT_GE(after.count - before.count, 1u);
  EXPECT_GE(after.bytes - before.bytes, 4096u);
  // Process totals move at least as much as this thread's.
  EXPECT_GE(AllocProfiler::process_counts().count, after.count);
}

TEST(ProfilerAlloc, ScopesAttributeAllocationsInclusively) {
  Profiler profiler(fake_clock_options());
  {
    obs::prof::Scope outer(&profiler, "outer");
    {
      obs::prof::Scope inner(&profiler, "inner");
      std::vector<char> block(8192);
      block[0] = 1;
    }
  }
  const ProfileSnapshot snapshot = profiler.snapshot();
  const int outer_at = find_path(snapshot, "outer");
  const int inner_at = find_path(snapshot, "outer;inner");
  ASSERT_GE(outer_at, 0);
  ASSERT_GE(inner_at, 0);
  const auto& inner = snapshot.nodes[static_cast<std::size_t>(inner_at)];
  const auto& outer = snapshot.nodes[static_cast<std::size_t>(outer_at)];
  EXPECT_GE(inner.allocs, 1u);
  EXPECT_GE(inner.alloc_bytes, 8192u);
  // Inclusive semantics: the parent covers the child's allocations.
  EXPECT_GE(outer.allocs, inner.allocs);
  EXPECT_GE(outer.alloc_bytes, inner.alloc_bytes);
}

// ---------------------------------------------------------------------------
// Exporters

/// The fixed tree every exporter test uses; with the fake clocks its
/// deltas are fully determined by the enter/exit call sequence.
void build_golden_tree(Profiler& profiler) {
  obs::prof::Scope run(&profiler, "run");
  {
    obs::prof::Scope selection(&profiler, "selection");
  }
  for (int k = 1; k <= 2; ++k) {
    obs::prof::Scope voting(&profiler, k == 1 ? "voting k=1" : "voting k=2");
  }
  run.close();
  obs::prof::Scope check(&profiler, "check");
}

TEST(ProfilerExport, CollapsedStackMatchesGolden) {
  Profiler profiler(fake_clock_options());
  build_golden_tree(profiler);

  std::ostringstream out;
  obs::prof::write_collapsed(out, profiler.snapshot());

  const std::string path = std::string(BYZRENAME_TEST_GOLDEN_DIR) + "/profile_collapsed.txt";
  if (std::getenv("BYZRENAME_REGEN_GOLDEN") != nullptr) {
    std::ofstream regen(path, std::ios::trunc);
    ASSERT_TRUE(regen.is_open());
    regen << out.str();
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << path
                            << " (regenerate with BYZRENAME_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(out.str(), golden.str())
      << "collapsed-stack output drifted from tests/golden/profile_collapsed.txt; if the "
         "change is intentional, rerun with BYZRENAME_REGEN_GOLDEN=1 and commit the diff";
}

TEST(ProfilerExport, ProfileJsonCarriesSchemaAndVolatileSplit) {
  Profiler profiler(fake_clock_options());
  build_golden_tree(profiler);

  std::ostringstream out;
  obs::prof::write_profile_json(out, profiler.snapshot(), "test-run");
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"byzrename.profile/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"run\""), std::string::npos);
  EXPECT_NE(doc.find("\"label\":\"test-run\""), std::string::npos);
  EXPECT_NE(doc.find("\"path\":\"run;voting k=2\""), std::string::npos);
  // The determinism split: wall time lives ONLY under "volatile" — the
  // first "wall_seconds" in the document opens a volatile object, so
  // stripping `volatile` with jq removes every wall-clock field.
  const std::size_t first_volatile = doc.find("\"volatile\":{\"wall_seconds\"");
  ASSERT_NE(first_volatile, std::string::npos);
  EXPECT_EQ(doc.find("\"wall_seconds\""),
            first_volatile + std::string("\"volatile\":{").size());
}

TEST(ProfilerExport, PrometheusFamiliesOmitHardwareWhenUnavailable) {
  ASSERT_EQ(setenv("BYZRENAME_NO_PERF", "1", 1), 0);
  Profiler profiler;
  build_golden_tree(profiler);

  std::ostringstream out;
  obs::prof::write_profile_prometheus(out, profiler.snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("byzrename_profile_calls_total"), std::string::npos);
  EXPECT_NE(text.find("scope=\"run;voting k=1\""), std::string::npos);
  // Absent, not zero: no hardware families in timer-only mode.
  EXPECT_EQ(text.find("byzrename_profile_cycles_total"), std::string::npos);
  ASSERT_EQ(unsetenv("BYZRENAME_NO_PERF"), 0);
}

// ---------------------------------------------------------------------------
// Campaign aggregation

TEST(ProfilerAggregate, MergeIsCommutativeAndSumsCounts)
{
  Profiler a(fake_clock_options());
  build_golden_tree(a);
  Profiler b(fake_clock_options());
  {
    obs::prof::Scope run(&b, "run");
    obs::prof::Scope voting(&b, "voting k=1");
  }

  ProfileAggregate ab;
  ab.merge(a.snapshot());
  ab.merge(b.snapshot());
  ProfileAggregate ba;
  ba.merge(b.snapshot());
  ba.merge(a.snapshot());

  EXPECT_EQ(ab.runs(), 2u);
  ASSERT_EQ(ab.entries().size(), 5u);  // run, selection, voting k=1/2, check

  const auto& voting1 = ab.entries().at("run;voting k=1");
  EXPECT_EQ(voting1.runs, 2u);   // present in both trees
  EXPECT_EQ(voting1.calls, 2u);  // one call each
  const auto& check = ab.entries().at("check");
  EXPECT_EQ(check.runs, 1u);  // only tree A had it

  // Byte-identical documents regardless of merge order — the campaign's
  // --threads invariance in miniature.
  std::ostringstream doc_ab;
  std::ostringstream doc_ba;
  obs::prof::write_profile_aggregate_json(doc_ab, ab, "camp", "cell-key", 3);
  obs::prof::write_profile_aggregate_json(doc_ba, ba, "camp", "cell-key", 3);
  EXPECT_EQ(doc_ab.str(), doc_ba.str());
  EXPECT_NE(doc_ab.str().find("\"kind\":\"cell\""), std::string::npos);
  EXPECT_NE(doc_ab.str().find("\"runs\":2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: harness phase attribution is deterministic

TEST(ProfilerHarness, PhaseTreeCountsAreRunInvariant) {
  const auto profile_counts = [] {
    obs::prof::Profiler profiler;
    core::ScenarioConfig config;
    config.params = {.n = 10, .t = 3};
    config.adversary = "split";
    config.seed = 21;
    config.profiler = &profiler;
    const core::ScenarioResult result = core::run_scenario(config);
    EXPECT_TRUE(result.report.all_ok());

    const ProfileSnapshot snapshot = profiler.snapshot();
    std::vector<std::string> rows;
    rows.reserve(snapshot.nodes.size());
    for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
      const auto& node = snapshot.nodes[i];
      rows.push_back(snapshot.path(i) + "|calls=" + std::to_string(node.calls) +
                     "|allocs=" + std::to_string(node.allocs) +
                     "|bytes=" + std::to_string(node.alloc_bytes));
    }
    return rows;
  };

  // The process's very first run pays one-time lazy initialization
  // (static caches) inside its setup scope; discard it so the compare
  // sees steady state — the same warmed regime the campaign's
  // --threads 1 vs 8 byte-identity gate runs in.
  (void)profile_counts();
  const std::vector<std::string> first = profile_counts();
  const std::vector<std::string> second = profile_counts();
  // Counts (calls, allocs, bytes) are pure functions of the run: two
  // identical scenarios produce identical rows, including paths and
  // their first-visit order.
  EXPECT_EQ(first, second);

  // The harness taxonomy made it into the tree.
  const auto has = [&](const std::string& prefix) {
    for (const std::string& row : first) {
      if (row.compare(0, prefix.size(), prefix) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("setup|"));
  EXPECT_TRUE(has("run|"));
  EXPECT_TRUE(has("check|"));
  EXPECT_TRUE(has("run;selection|"));
  EXPECT_TRUE(has("run;voting k=1|"));
}

// ---------------------------------------------------------------------------
// Concurrency: live scraping during a run (the GET /profile shape).
// Run under TSan in CI (ctest -L prof in the TSan job).

TEST(ProfilerConcurrency, SnapshotDuringEnterExitHammer) {
  Profiler profiler;
  std::atomic<bool> stop{false};

  std::thread measured([&profiler, &stop] {
    int k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      obs::prof::Scope run(&profiler, "run");
      obs::prof::Scope voting(&profiler, (k++ % 2) == 0 ? "voting k=1" : "voting k=2");
      std::vector<int> churn(64, k);
      ASSERT_EQ(churn.back(), k);
    }
  });

  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&profiler, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const ProfileSnapshot snapshot = profiler.snapshot();
        std::ostringstream sink;
        obs::prof::write_profile_json(sink, snapshot, "hammer");
        obs::prof::write_collapsed(sink, snapshot);
        obs::prof::write_profile_prometheus(sink, snapshot);
        ASSERT_FALSE(sink.str().empty());
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  measured.join();
  for (std::thread& scraper : scrapers) scraper.join();

  const ProfileSnapshot final_snapshot = profiler.snapshot();
  ASSERT_GE(final_snapshot.nodes.size(), 3u);
  EXPECT_GE(final_snapshot.nodes[0].calls, 1u);
}

}  // namespace
}  // namespace byzrename
