// Unit-level tests for the bit-by-bit baseline's filtering: driven with
// fabricated inboxes through the selection phase and one split phase.

#include "baselines/bit_renaming.h"

#include <gtest/gtest.h>

#include <memory>

namespace byzrename::baselines {
namespace {

using sim::Id;
using sim::Inbox;

const sim::SystemParams kParams{.n = 4, .t = 1};
constexpr std::int64_t kClaimTag = 1001;   // kClaimBase + phase 1
constexpr std::int64_t kEchoTag = 2001;    // kEchoBase + phase 1

/// Runs the 4-step selection with everything honest: 4 processes with
/// ids 10, 20, 30, 40; we drive the process holding id 10.
std::unique_ptr<BitRenamingProcess> selected_process() {
  auto p_owner = std::make_unique<BitRenamingProcess>(kParams, 10);
  BitRenamingProcess& p = *p_owner;
  const std::vector<Id> ids{10, 20, 30, 40};
  // Step 1: ids arrive, one per link.
  Inbox step1;
  for (int link = 0; link < 4; ++link) step1.push_back({link, sim::IdMsg{ids[static_cast<std::size_t>(link)]}});
  sim::Outbox out1(false);
  p.on_send(1, out1);
  p.on_receive(1, step1);
  // Step 2: everyone echoes everything.
  sim::Outbox out2(false);
  p.on_send(2, out2);
  Inbox step2;
  for (int link = 0; link < 4; ++link) {
    for (const Id id : ids) step2.push_back({link, sim::EchoMsg{id}});
  }
  p.on_receive(2, step2);
  // Step 3: everyone Readys everything.
  sim::Outbox out3(false);
  p.on_send(3, out3);
  Inbox step3;
  for (int link = 0; link < 4; ++link) {
    for (const Id id : ids) step3.push_back({link, sim::ReadyMsg{id}});
  }
  p.on_receive(3, step3);
  sim::Outbox out4(false);
  p.on_send(4, out4);
  p.on_receive(4, {});
  return p_owner;
}

TEST(BitRenamingUnit, ClaimsCarryIdAndFullInterval) {
  auto p_owner = selected_process();
  BitRenamingProcess& p = *p_owner;
  sim::Outbox claim_out(false);
  p.on_send(5, claim_out);  // first claim round
  ASSERT_EQ(claim_out.entries().size(), 1u);
  const auto& msg = std::get<sim::WordMsg>(*claim_out.entries()[0].payload);
  EXPECT_EQ(msg.tag, kClaimTag);
  ASSERT_EQ(msg.words.size(), 3u);
  EXPECT_EQ(msg.words[0], 10);  // my id
  EXPECT_EQ(msg.words[1], 0);   // lo
  EXPECT_EQ(msg.words[2], 8);   // hi = 2N
}

TEST(BitRenamingUnit, UnselectedIdsCannotClaim) {
  auto p_owner = selected_process();
  BitRenamingProcess& p = *p_owner;
  // Claim round: id 99 never passed selection; its claim must be ignored
  // (no echo of it in the echo round's outbox).
  Inbox claims;
  claims.push_back({0, sim::WordMsg{kClaimTag, {10, 0, 8}}});
  claims.push_back({1, sim::WordMsg{kClaimTag, {99, 0, 8}}});
  p.on_receive(5, claims);
  sim::Outbox echo_out(false);
  p.on_send(6, echo_out);
  ASSERT_EQ(echo_out.entries().size(), 1u);
  const auto& echo = std::get<sim::WordMsg>(*echo_out.entries()[0].payload);
  EXPECT_EQ(echo.tag, kEchoTag);
  EXPECT_EQ(echo.words.size(), 3u);  // only the claim by id 10 echoed
  EXPECT_EQ(echo.words[0], 10);
}

TEST(BitRenamingUnit, OneClaimPerLinkPerPhase) {
  auto p_owner = selected_process();
  BitRenamingProcess& p = *p_owner;
  Inbox claims;
  claims.push_back({0, sim::WordMsg{kClaimTag, {10, 0, 8}}});
  claims.push_back({0, sim::WordMsg{kClaimTag, {20, 0, 8}}});  // same link again
  p.on_receive(5, claims);
  sim::Outbox echo_out(false);
  p.on_send(6, echo_out);
  ASSERT_EQ(echo_out.entries().size(), 1u);  // second claim discarded
}

TEST(BitRenamingUnit, MalformedIntervalsAreIgnored) {
  auto p_owner = selected_process();
  BitRenamingProcess& p = *p_owner;
  Inbox claims;
  claims.push_back({0, sim::WordMsg{kClaimTag, {10, 5, 3}}});   // hi <= lo
  claims.push_back({1, sim::WordMsg{kClaimTag, {20, -1, 8}}});  // negative lo
  claims.push_back({2, sim::WordMsg{kClaimTag, {30, 0, 99}}});  // hi > 2N
  p.on_receive(5, claims);
  sim::Outbox echo_out(false);
  p.on_send(6, echo_out);
  EXPECT_TRUE(echo_out.entries().empty());
}

TEST(BitRenamingUnit, SplitsByConfirmedRank) {
  auto p_owner = selected_process();
  BitRenamingProcess& p = *p_owner;
  // Claims by ids 10 and 20 for the full interval.
  Inbox claims;
  claims.push_back({0, sim::WordMsg{kClaimTag, {10, 0, 8}}});
  claims.push_back({1, sim::WordMsg{kClaimTag, {20, 0, 8}}});
  p.on_receive(5, claims);
  // Echoes: both claims confirmed by N-t = 3 links.
  Inbox echoes;
  for (int link = 0; link < 3; ++link) {
    echoes.push_back({link, sim::WordMsg{kEchoTag, {10, 0, 8, 20, 0, 8}}});
  }
  p.on_receive(6, echoes);
  // Rank of id 10 among {10, 20} is 1 <= half=4: go left.
  sim::Outbox next_claim(false);
  p.on_send(7, next_claim);
  const auto& msg = std::get<sim::WordMsg>(*next_claim.entries()[0].payload);
  EXPECT_EQ(msg.words[1], 0);  // lo unchanged
  EXPECT_EQ(msg.words[2], 4);  // hi halved
}

TEST(BitRenamingUnit, UnconfirmedClaimsDoNotAffectRank) {
  auto p_owner = selected_process();
  BitRenamingProcess& p = *p_owner;
  Inbox claims;
  claims.push_back({0, sim::WordMsg{kClaimTag, {10, 0, 8}}});
  claims.push_back({1, sim::WordMsg{kClaimTag, {20, 0, 8}}});
  p.on_receive(5, claims);
  // Id 20's claim gets only 2 echoes (< N-t): not confirmed, so my rank
  // stays 1 either way; confirm only my own claim.
  Inbox echoes;
  for (int link = 0; link < 3; ++link) {
    echoes.push_back({link, sim::WordMsg{kEchoTag, {10, 0, 8}}});
  }
  echoes.push_back({0, sim::WordMsg{kEchoTag, {20, 0, 8}}});
  echoes.push_back({1, sim::WordMsg{kEchoTag, {20, 0, 8}}});
  p.on_receive(6, echoes);
  sim::Outbox next_claim(false);
  p.on_send(7, next_claim);
  const auto& msg = std::get<sim::WordMsg>(*next_claim.entries()[0].payload);
  EXPECT_EQ(msg.words[1], 0);
  EXPECT_EQ(msg.words[2], 4);
}

TEST(BitRenamingUnit, TotalStepsFormula) {
  EXPECT_EQ(BitRenamingProcess(kParams, 1).total_steps(), 4 + 2 * 3);  // ceil(log2 8) = 3
  EXPECT_EQ(BitRenamingProcess({.n = 10, .t = 3}, 1).total_steps(), 4 + 2 * 5);
}

}  // namespace
}  // namespace byzrename::baselines
