#include "adversary/adversary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/harness.h"

namespace byzrename::adversary {
namespace {

AdversaryEnv make_env(int n, int t) {
  AdversaryEnv env;
  env.params = {.n = n, .t = t};
  const int correct = n - t;
  for (int i = 0; i < correct; ++i) env.correct.emplace_back(i, 100 + i);
  for (int i = correct; i < n; ++i) {
    env.byz_indices.push_back(i);
    env.byz_ids.push_back(1000 + i);
  }
  env.seed = 9;
  return env;
}

TEST(Registry, KnowsAllStrategies) {
  const auto names = adversary_names();
  EXPECT_EQ(names.size(), 13u);
  for (const char* expected :
       {"silent", "mute", "crash", "random", "chaos", "idflood", "asymflood", "split", "skew",
        "invalid", "suppress", "hybrid", "orderbreak"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
}

TEST(Registry, ThrowsOnUnknownName) {
  EXPECT_THROW((void)find_adversary("nope"), std::out_of_range);
}

TEST(Registry, EveryFactoryProducesOneBehaviorPerFault) {
  const AdversaryEnv env = make_env(10, 3);
  for (const std::string& name : adversary_names()) {
    const auto team = find_adversary(name)(env);
    EXPECT_EQ(team.size(), 3u) << name;
    for (const auto& behavior : team) EXPECT_NE(behavior, nullptr) << name;
  }
}

TEST(Registry, FactoriesCoverEveryAlgorithm) {
  // No strategy may crash when instantiated for any protocol.
  using core::Algorithm;
  for (const Algorithm algorithm :
       {Algorithm::kOpRenaming, Algorithm::kOpRenamingConstantTime, Algorithm::kFastRenaming,
        Algorithm::kCrashRenaming, Algorithm::kBitRenaming, Algorithm::kScalarAA}) {
    AdversaryEnv env = make_env(26, 3);  // large enough for the fast regime
    env.algorithm = algorithm;
    for (const std::string& name : adversary_names()) {
      EXPECT_NO_THROW((void)find_adversary(name)(env))
          << name << " for " << core::to_string(algorithm);
    }
  }
}

TEST(Silent, NeverSends) {
  auto behavior = make_silent();
  sim::Outbox out(/*targeted_allowed=*/true);
  for (sim::Round r = 1; r <= 10; ++r) behavior->on_send(r, out);
  EXPECT_TRUE(out.entries().empty());
  EXPECT_TRUE(behavior->done());
  EXPECT_FALSE(behavior->decision().has_value());
}

TEST(IdFlood, PlansDistinctFakeIds) {
  const AdversaryEnv env = make_env(10, 3);
  const auto team = find_adversary("idflood")(env);
  // The attack's effect is covered by integration tests; here just check
  // the step-1 sends are well-formed per-destination messages.
  sim::Outbox out(/*targeted_allowed=*/true);
  team[0]->on_send(1, out);
  for (const auto& entry : out.entries()) {
    ASSERT_TRUE(entry.dest.has_value());
    const auto* msg = std::get_if<sim::IdMsg>(&*entry.payload);
    ASSERT_NE(msg, nullptr);
    // Fake ids never collide with real ones.
    for (const auto& [index, id] : env.correct) EXPECT_NE(msg->id, id);
    for (const sim::Id id : env.byz_ids) EXPECT_NE(msg->id, id);
  }
}

// End-to-end: every adversary against every renaming algorithm it can
// legally attack must leave the algorithm's guarantees intact. This is
// the "no strategy beats the protocol" umbrella.
struct AttackCase {
  core::Algorithm algorithm;
  int n;
  int t;
};

class AdversaryVsAlgorithm
    : public ::testing::TestWithParam<std::tuple<AttackCase, std::string>> {};

TEST_P(AdversaryVsAlgorithm, GuaranteesHold) {
  const auto& [c, adversary] = GetParam();
  core::ScenarioConfig config;
  config.params = {.n = c.n, .t = c.t};
  config.algorithm = c.algorithm;
  config.adversary = adversary;
  config.seed = 1234;
  const core::ScenarioResult result = core::run_scenario(config);
  EXPECT_TRUE(result.report.validity) << result.report.detail;
  EXPECT_TRUE(result.report.termination) << result.report.detail;
  EXPECT_TRUE(result.report.uniqueness) << result.report.detail;
  if (c.algorithm != core::Algorithm::kBitRenaming) {
    EXPECT_TRUE(result.report.order_preservation) << result.report.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpRenaming, AdversaryVsAlgorithm,
    ::testing::Combine(::testing::Values(AttackCase{core::Algorithm::kOpRenaming, 10, 3},
                                         AttackCase{core::Algorithm::kOpRenaming, 13, 4}),
                       ::testing::Values("silent", "mute", "crash", "random", "idflood", "split",
                                         "skew", "invalid", "suppress", "hybrid")));

INSTANTIATE_TEST_SUITE_P(
    ConstantTime, AdversaryVsAlgorithm,
    ::testing::Combine(::testing::Values(AttackCase{core::Algorithm::kOpRenamingConstantTime, 16, 3}),
                       ::testing::Values("silent", "crash", "random", "idflood", "split", "skew",
                                         "invalid", "suppress")));

INSTANTIATE_TEST_SUITE_P(
    FastRenaming, AdversaryVsAlgorithm,
    ::testing::Combine(::testing::Values(AttackCase{core::Algorithm::kFastRenaming, 11, 2}),
                       ::testing::Values("silent", "crash", "random", "idflood", "invalid",
                                         "suppress")));

}  // namespace
}  // namespace byzrename::adversary
