// Tests for the live telemetry plane: the embedded obs/http server
// (routing, status codes, HEAD, query stripping), the ExpositionHub /
// GuardedMetricsSink exposition path, the exp::ProgressTracker progress
// and ETA engine (snapshot counters, byzrename.progress/1 JSON through
// the production parser, Prometheus families), cooperative campaign
// cancellation, and — the reason this binary carries the "exp" label so
// the TSan CI job runs it — a scrape-during-write hammer that curls
// /metrics and /progress from client threads while an 8-thread campaign
// produces the data, then asserts the deterministic aggregates are
// byte-identical to a serial run of the same spec.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "exp/progress.h"
#include "exp/spec_parse.h"
#include "obs/http/buildinfo.h"
#include "obs/http/exposition.h"
#include "obs/http/http_server.h"
#include "obs/json_parse.h"
#include "obs/schema.h"
#include "obs/telemetry.h"

namespace {

using namespace byzrename;
using exp::CampaignOptions;
using exp::CampaignResult;
using exp::CampaignSpec;
using exp::ProgressTracker;
using obs::ExpositionHub;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::HttpServer;

/// Blocking one-shot HTTP client over a raw socket — the test's view of
/// the server is exactly what curl would see, headers included.
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("connect() failed");
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // Connection: close — EOF ends the response
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string http_post(std::uint16_t port, const std::string& path, const std::string& body,
                      const std::string& content_type = "application/json") {
  return http_request(port, "POST " + path + " HTTP/1.1\r\nHost: localhost\r\nContent-Type: " +
                                content_type +
                                "\r\nContent-Length: " + std::to_string(body.size()) +
                                "\r\n\r\n" + body);
}

/// Sends a request and then half-closes the write side, so a server
/// waiting for more body bytes sees EOF instead of a 2 s read timeout —
/// the hostile truncated-body case.
std::string http_request_half_close(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("connect() failed");
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Body of a response (everything after the blank line).
std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

// ---------------------------------------------------------------------------
// HttpServer units

TEST(HttpServer, ServesRegisteredPathOnEphemeralPort) {
  HttpServer server;
  server.handle("/hello", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "hi\n";
    return response;
  });
  server.start(0);
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string response = http_get(server.port(), "/hello");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length: 3"), std::string::npos) << response;
  EXPECT_EQ(body_of(response), "hi\n");
  EXPECT_GE(server.requests_served(), 1u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, UnknownPathIs404) {
  HttpServer server;
  server.handle("/known", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  EXPECT_NE(http_get(server.port(), "/nope").find("HTTP/1.1 404"), std::string::npos);
}

TEST(HttpServer, NonGetMethodIs405AndBadRequestLineIs400) {
  HttpServer server;
  server.handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  EXPECT_NE(http_request(server.port(), "POST /x HTTP/1.1\r\nHost: h\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
}

TEST(HttpServer, HeadOmitsBodyButKeepsContentLength) {
  HttpServer server;
  server.handle("/h", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "12345";
    return response;
  });
  server.start(0);
  const std::string response =
      http_request(server.port(), "HEAD /h HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos) << response;
  EXPECT_EQ(body_of(response), "");
}

TEST(HttpServer, QueryStringIsStrippedAndPassedSeparately) {
  HttpServer server;
  server.handle("/q", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.query;
    return response;
  });
  server.start(0);
  EXPECT_EQ(body_of(http_get(server.port(), "/q?a=1&b=2")), "a=1&b=2");
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  HttpServer server;
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  server.start(0);
  EXPECT_NE(http_get(server.port(), "/boom").find("HTTP/1.1 500"), std::string::npos);
}

TEST(HttpServer, RegisteringAfterStartThrows) {
  HttpServer server;
  server.start(0);
  EXPECT_THROW(server.handle("/late", [](const HttpRequest&) { return HttpResponse{}; }),
               std::logic_error);
}

TEST(HttpServer, StopIsIdempotentAndRestartWorks) {
  HttpServer server;
  server.handle("/p", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  server.stop();
  server.stop();
  server.start(0);
  EXPECT_NE(http_get(server.port(), "/p").find("200 OK"), std::string::npos);
}

// ---------------------------------------------------------------------------
// POST routes: the byzrenamed control plane rides these, so the
// validation ladder (405/411/413/415/400) gets hostile-request coverage
// at the raw-socket level.

TEST(HttpServerPost, PostRouteReceivesBodyAndEchoesIt) {
  HttpServer server;
  server.handle_post("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.status = 202;
    response.body = request.method + "|" + request.content_type + "|" + request.body;
    return response;
  });
  server.start(0);
  const std::string response = http_post(server.port(), "/echo", "{\"a\":1}");
  EXPECT_NE(response.find("HTTP/1.1 202"), std::string::npos) << response;
  EXPECT_EQ(body_of(response), "POST|application/json|{\"a\":1}");
}

TEST(HttpServerPost, GetAndPostCoexistOnOnePath) {
  HttpServer server;
  server.handle("/both", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "via-get";
    return response;
  });
  server.handle_post("/both", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "via-post";
    return response;
  });
  server.start(0);
  EXPECT_EQ(body_of(http_get(server.port(), "/both")), "via-get");
  EXPECT_EQ(body_of(http_post(server.port(), "/both", "{}")), "via-post");
}

TEST(HttpServerPost, GetOnPostOnlyRouteIs405) {
  HttpServer server;
  server.handle_post("/postonly", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  EXPECT_NE(http_get(server.port(), "/postonly").find("HTTP/1.1 405"), std::string::npos);
}

TEST(HttpServerPost, MissingContentLengthIs411) {
  HttpServer server;
  server.handle_post("/p", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  const std::string response = http_request(
      server.port(), "POST /p HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 411"), std::string::npos) << response;
}

TEST(HttpServerPost, MalformedContentLengthIs400) {
  HttpServer server;
  server.handle_post("/p", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  const std::string response = http_request(
      server.port(),
      "POST /p HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\n"
      "Content-Length: banana\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
}

TEST(HttpServerPost, DeclaredBodyOverRouteCapIs413WithoutReadingIt) {
  HttpServer server;
  std::atomic<bool> handler_ran{false};
  server.handle_post(
      "/small",
      [&handler_ran](const HttpRequest&) {
        handler_ran.store(true);
        return HttpResponse{};
      },
      HttpServer::PostOptions{/*max_body_bytes=*/64, "application/json"});
  server.start(0);
  // Declare a huge body but never send it: the server must answer from
  // the headers alone (no buffering, no timeout waiting for the body).
  const std::string response = http_request_half_close(
      server.port(),
      "POST /small HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\n"
      "Content-Length: 1000000\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
  EXPECT_FALSE(handler_ran.load());
}

TEST(HttpServerPost, WrongContentTypeIs415ButParametersAreIgnored) {
  HttpServer server;
  server.handle_post("/typed", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  EXPECT_NE(http_post(server.port(), "/typed", "{}", "text/plain").find("HTTP/1.1 415"),
            std::string::npos);
  // "; charset=..." parameters must not defeat the match.
  EXPECT_NE(
      http_post(server.port(), "/typed", "{}", "application/json; charset=utf-8")
          .find("HTTP/1.1 200"),
      std::string::npos);
}

TEST(HttpServerPost, TruncatedBodyIs400) {
  HttpServer server;
  server.handle_post("/t", [](const HttpRequest&) { return HttpResponse{}; });
  server.start(0);
  const std::string response = http_request_half_close(
      server.port(),
      "POST /t HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\n"
      "Content-Length: 10\r\n\r\n{\"a\"");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
}

TEST(HttpServerPost, ExtraHeadersAreEmittedBeforeConnectionClose) {
  HttpServer server;
  server.handle_post("/retry", [](const HttpRequest&) {
    HttpResponse response;
    response.status = 429;
    response.extra_headers.emplace_back("Retry-After", "7");
    return response;
  });
  server.start(0);
  const std::string response = http_post(server.port(), "/retry", "{}");
  EXPECT_NE(response.find("HTTP/1.1 429"), std::string::npos) << response;
  EXPECT_NE(response.find("Retry-After: 7\r\n"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
}

TEST(HttpServerPost, RegisteringPostAfterStartThrows) {
  HttpServer server;
  server.start(0);
  EXPECT_THROW(
      server.handle_post("/late", [](const HttpRequest&) { return HttpResponse{}; }),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// obs::parse_json hardening: these properties are what make it safe to
// point the parser at hostile POST bodies (stack-bounded recursion,
// no silent last-key-wins aliasing).

std::string nested_json(int depth, char open, char close) {
  std::string text;
  for (int i = 0; i < depth; ++i) {
    text += open;
    if (open == '{' && i + 1 < depth) text += "\"k\":";
  }
  if (open == '{') text += "\"k\":1";
  else text += "1";
  for (int i = 0; i < depth; ++i) text += close;
  return text;
}

TEST(JsonParseHardening, DeepButLegalNestingParses) {
  // Well under the 256 cap: must parse, and the innermost value must be
  // reachable.
  const obs::JsonValue arrays = obs::parse_json(nested_json(200, '[', ']'));
  const obs::JsonValue* cursor = &arrays;
  for (int i = 0; i < 200; ++i) cursor = &cursor->as_array().at(0);
  EXPECT_EQ(cursor->as_int(), 1);
  EXPECT_NO_THROW(obs::parse_json(nested_json(200, '{', '}')));
}

TEST(JsonParseHardening, NestingPastTheCapThrowsInsteadOfOverflowing) {
  EXPECT_THROW(obs::parse_json(nested_json(50000, '[', ']')), std::invalid_argument);
  EXPECT_THROW(obs::parse_json(nested_json(50000, '{', '}')), std::invalid_argument);
  EXPECT_THROW(obs::parse_json(nested_json(257, '[', ']')), std::invalid_argument);
}

TEST(JsonParseHardening, DuplicateObjectKeysAreRejected) {
  EXPECT_THROW(obs::parse_json("{\"a\":1,\"a\":2}"), std::invalid_argument);
  EXPECT_THROW(obs::parse_json("{\"x\":{\"a\":1,\"a\":1}}"), std::invalid_argument);
  // Same key at DIFFERENT depths is legal.
  EXPECT_NO_THROW(obs::parse_json("{\"a\":{\"a\":1}}"));
}

// ---------------------------------------------------------------------------
// /buildinfo: one shared identity endpoint for every serving tool.

TEST(BuildInfo, EndpointServesSchemaVersionAndGitSha) {
  HttpServer server;
  obs::mount_buildinfo(server);
  server.start(0);
  const std::string response = http_get(server.port(), "/buildinfo");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos) << response;
  const obs::JsonValue doc = obs::parse_json(body_of(response));
  EXPECT_EQ(doc.at("schema").as_string(), obs::kBuildinfoSchema);
  EXPECT_FALSE(doc.at("version").as_string().empty());
  EXPECT_FALSE(doc.at("git_sha").as_string().empty());
  EXPECT_FALSE(doc.at("compiler").as_string().empty());
  EXPECT_FALSE(doc.at("sanitizers").as_string().empty());
}

// ---------------------------------------------------------------------------
// Exposition plumbing

TEST(ExpositionHub, WritersRenderInRegistrationOrder) {
  ExpositionHub hub;
  hub.add_writer([](std::ostream& os) { os << "alpha\n"; });
  hub.add_writer([](std::ostream& os) { os << "beta\n"; });
  std::ostringstream os;
  hub.write(os);
  EXPECT_EQ(os.str(), "alpha\nbeta\n");
}

TEST(Exposition, MountedEndpointsServeHubHealthzAndJson) {
  ExpositionHub hub;
  hub.add_writer([](std::ostream& os) { os << "byzrename_x_total 1\n"; });
  HttpServer server;
  obs::mount_prometheus(server, hub);
  obs::mount_healthz(server);
  obs::mount_json(server, "/progress", [](std::ostream& os) { os << "{\"a\":1}\n"; });
  server.start(0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos) << metrics;
  EXPECT_EQ(body_of(metrics), "byzrename_x_total 1\n");
  EXPECT_EQ(body_of(http_get(server.port(), "/healthz")), "ok\n");
  const std::string progress = http_get(server.port(), "/progress");
  EXPECT_NE(progress.find("application/json"), std::string::npos) << progress;
  EXPECT_EQ(body_of(progress), "{\"a\":1}\n");
}

TEST(Exposition, ProcessMetricsReportResidentSetOnProcfs) {
  std::ostringstream os;
  obs::write_process_metrics(os);
  // On Linux (the CI platform) procfs is present, so the gauge must be
  // there with a positive value; the writer is allowed to emit nothing
  // only where /proc/self/status does not exist.
  EXPECT_NE(os.str().find("process_resident_memory_bytes"), std::string::npos) << os.str();
  // Same procfs condition for the start-time gauge (absent, not zero,
  // where /proc/self/stat or btime cannot be read).
  EXPECT_NE(os.str().find("process_start_time_seconds"), std::string::npos) << os.str();
  // The build-info gauge has no procfs dependency: always present,
  // always value 1, with the standard three labels.
  EXPECT_NE(os.str().find("byzrename_build_info{version=\""), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("git_sha=\""), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("build_type=\""), std::string::npos) << os.str();
}

// ---------------------------------------------------------------------------
// ProgressTracker

std::vector<exp::CampaignCell> two_cells() {
  std::vector<exp::CampaignCell> cells(2);
  cells[0].index = 0;
  cells[0].params = {.n = 7, .t = 2};
  cells[0].adversary = "silent";
  cells[1].index = 1;
  cells[1].params = {.n = 10, .t = 3};
  cells[1].adversary = "idflood";
  return cells;
}

TEST(ProgressTracker, CountsRollUpPerCellAndGlobally) {
  ProgressTracker tracker;
  tracker.begin("unit", two_cells(), /*repetitions=*/3, /*workers=*/2);

  tracker.task_started();
  tracker.task_finished(0, /*ok=*/true, /*quarantined=*/false);
  tracker.task_started();
  tracker.task_finished(1, /*ok=*/false, /*quarantined=*/false);
  tracker.task_started();
  tracker.task_finished(1, /*ok=*/false, /*quarantined=*/true);

  const ProgressTracker::Snapshot snapshot = tracker.snapshot();
  EXPECT_TRUE(snapshot.started);
  EXPECT_FALSE(snapshot.done);
  EXPECT_EQ(snapshot.campaign, "unit");
  EXPECT_EQ(snapshot.total_runs, 6u);
  EXPECT_EQ(snapshot.completed, 3u);
  EXPECT_EQ(snapshot.ok, 1u);
  EXPECT_EQ(snapshot.violations, 1u);  // quarantined runs are not violations
  EXPECT_EQ(snapshot.quarantined, 1u);
  EXPECT_EQ(snapshot.workers, 2);
  EXPECT_EQ(snapshot.workers_busy, 0);
  ASSERT_EQ(snapshot.cells.size(), 2u);
  EXPECT_EQ(snapshot.cells[0].key, "op-renaming/n7/t2/silent");
  EXPECT_EQ(snapshot.cells[0].completed, 1u);
  EXPECT_EQ(snapshot.cells[0].ok, 1u);
  EXPECT_EQ(snapshot.cells[1].completed, 2u);
  EXPECT_EQ(snapshot.cells[1].violations, 1u);
  EXPECT_EQ(snapshot.cells[1].quarantined, 1u);

  tracker.finish(/*interrupted=*/false);
  EXPECT_TRUE(tracker.snapshot().done);
}

TEST(ProgressTracker, ProgressJsonIsValidAndCarriesTheSchema) {
  ProgressTracker tracker;
  tracker.begin("json-campaign", two_cells(), 2, 4);
  tracker.task_started();
  tracker.task_finished(0, true, false);

  std::ostringstream os;
  tracker.write_progress_json(os);
  const obs::JsonValue doc = obs::parse_json(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), obs::kProgressSchema);
  EXPECT_EQ(doc.at("campaign").as_string(), "json-campaign");
  EXPECT_EQ(doc.at("state").as_string(), "running");
  EXPECT_EQ(doc.at("total_runs").as_uint(), 4u);
  EXPECT_EQ(doc.at("completed").as_uint(), 1u);
  EXPECT_EQ(doc.at("workers").at("total").as_int(), 4);
  ASSERT_EQ(doc.at("cells").as_array().size(), 2u);
  EXPECT_EQ(doc.at("cells").as_array()[0].at("cell").as_string(), "op-renaming/n7/t2/silent");
  EXPECT_GE(doc.at("elapsed_seconds").as_double(), 0.0);
  // rate_source names which estimator produced eta_seconds; with one
  // completion the EWMA may or may not be warm, but the field is always
  // one of the three documented values.
  const std::string rate_source = doc.at("rate_source").as_string();
  EXPECT_TRUE(rate_source == "ewma" || rate_source == "mean" || rate_source == "none")
      << rate_source;

  tracker.finish(true);
  std::ostringstream done;
  tracker.write_progress_json(done);
  EXPECT_EQ(obs::parse_json(done.str()).at("state").as_string(), "interrupted");
}

TEST(ProgressTracker, IdleTrackerReportsIdleStateAndEmptyPrometheus) {
  ProgressTracker tracker;
  std::ostringstream json;
  tracker.write_progress_json(json);
  EXPECT_EQ(obs::parse_json(json.str()).at("state").as_string(), "idle");
  std::ostringstream prom;
  tracker.write_prometheus(prom);
  EXPECT_TRUE(prom.str().empty()) << prom.str();
}

TEST(ProgressTracker, EtaConvergesAsCompletionsArrive) {
  ProgressTracker tracker;
  std::vector<exp::CampaignCell> cells(1);
  cells[0].params = {.n = 7, .t = 2};
  cells[0].adversary = "silent";
  tracker.begin("eta", cells, /*repetitions=*/200, /*workers=*/1);

  {
    const ProgressTracker::Snapshot idle = tracker.snapshot();
    EXPECT_LT(idle.eta_seconds, 0.0);  // nothing finished yet
    EXPECT_STREQ(idle.rate_source, "none");  // -1 sentinel, no estimator
  }

  // 50 completions at a (roughly) steady 1 ms cadence: the EWMA rate
  // must land near 1000 runs/s and the ETA near 150 remaining * 1 ms.
  for (int i = 0; i < 50; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    tracker.task_finished(0, true, false);
  }
  const ProgressTracker::Snapshot snapshot = tracker.snapshot();
  EXPECT_EQ(snapshot.completed, 50u);
  EXPECT_GT(snapshot.runs_per_second, 0.0);
  ASSERT_GT(snapshot.eta_seconds, 0.0);
  // Generous envelope — CI timers jitter — but the estimate must be the
  // right order of magnitude, not a default or a garbage value.
  EXPECT_LT(snapshot.eta_seconds, 30.0);
  // A warm EWMA after 50 steady completions must be the source the ETA
  // came from — the field that makes a dashboard's ETA auditable.
  EXPECT_STREQ(snapshot.rate_source, "ewma");

  tracker.finish(false);
  EXPECT_EQ(tracker.snapshot().eta_seconds, 0.0);  // done: nothing remains
}

TEST(ProgressTracker, PrometheusFamiliesCarryTheCounters) {
  ProgressTracker tracker;
  tracker.begin("prom", two_cells(), 1, 3);
  tracker.task_finished(0, true, false);
  std::ostringstream os;
  tracker.write_prometheus(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE byzrename_campaign_runs gauge"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_campaign_runs 2\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_campaign_runs_completed_total 1\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_campaign_runs_ok_total 1\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_campaign_runs_pending 1\n"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrename_campaign_workers 3\n"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// Campaign integration: cancellation and the tracker as a run_campaign
// observer.

TEST(CampaignCancel, PreArmedCancelFlagYieldsInterruptedEmptyResult) {
  const CampaignSpec spec =
      exp::parse_campaign_spec("algo=op;n=7;t=2;adversary=silent;reps=8;seed=5");
  std::atomic<bool> cancel{true};
  CampaignOptions options;
  options.threads = 2;
  options.cancel = &cancel;
  const CampaignResult result = exp::run_campaign(spec, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.executed, 0u);
  EXPECT_FALSE(result.all_ok());
}

TEST(CampaignCancel, UnsetCancelFlagChangesNothing) {
  const CampaignSpec spec =
      exp::parse_campaign_spec("algo=op;n=7;t=2;adversary=silent;reps=2;seed=5");
  std::atomic<bool> cancel{false};
  CampaignOptions with_flag;
  with_flag.threads = 1;
  with_flag.cancel = &cancel;
  const CampaignResult a = exp::run_campaign(spec, with_flag);
  const CampaignResult b = exp::run_campaign(spec, {});
  EXPECT_FALSE(a.interrupted);
  EXPECT_EQ(a.executed, b.executed);

  std::ostringstream cells_a;
  std::ostringstream cells_b;
  exp::write_campaign_cells(cells_a, spec, a);
  exp::write_campaign_cells(cells_b, spec, b);
  EXPECT_EQ(cells_a.str(), cells_b.str());
}

TEST(ProgressTracker, RunCampaignFeedsTheTrackerToCompletion) {
  const CampaignSpec spec =
      exp::parse_campaign_spec("algo=op;n=7,10;t=2;adversary=silent;reps=3;seed=5");
  ProgressTracker tracker;
  CampaignOptions options;
  options.threads = 2;
  options.progress = &tracker;
  const CampaignResult result = exp::run_campaign(spec, options);
  const ProgressTracker::Snapshot snapshot = tracker.snapshot();
  EXPECT_TRUE(snapshot.done);
  EXPECT_FALSE(snapshot.interrupted);
  EXPECT_EQ(snapshot.total_runs, result.runs.size());
  EXPECT_EQ(snapshot.completed, result.executed);
  EXPECT_EQ(snapshot.ok, result.executed - result.violations - result.quarantined);
  EXPECT_EQ(snapshot.workers_busy, 0);
  EXPECT_EQ(snapshot.eta_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Scrape-during-write: the TSan-relevant test. Client threads hammer
// /metrics and /progress over real sockets while an 8-thread campaign
// runs underneath; every response must be well-formed, and the
// deterministic aggregate output must be byte-identical to the same
// spec run serially with no telemetry plane at all.

TEST(LiveScrape, HammeringEndpointsDuringCampaignIsSafeAndChangesNothing) {
  const char* kSpec = "algo=op;nt=10:3,13:4;adversary=split,idflood;reps=6;seed=11;name=live";
  const CampaignSpec spec = exp::parse_campaign_spec(kSpec);

  ProgressTracker tracker;
  ExpositionHub hub;
  hub.add_writer([&tracker](std::ostream& os) { tracker.write_prometheus(os); });
  hub.add_writer([](std::ostream& os) { obs::write_process_metrics(os); });
  HttpServer server;
  obs::mount_prometheus(server, hub);
  obs::mount_healthz(server);
  obs::mount_json(server, "/progress",
                  [&tracker](std::ostream& os) { tracker.write_progress_json(os); });
  server.start(0);
  const std::uint16_t port = server.port();

  std::atomic<bool> stop_scraping{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 2; ++i) {
    scrapers.emplace_back([&, i] {
      while (!stop_scraping.load(std::memory_order_relaxed)) {
        const std::string path = i == 0 ? "/metrics" : "/progress";
        const std::string response = http_get(port, path);
        ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
        if (path == "/progress") {
          // Every scrape must parse, whatever instant it hit.
          const obs::JsonValue doc = obs::parse_json(body_of(response));
          ASSERT_EQ(doc.at("schema").as_string(), obs::kProgressSchema);
        }
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  CampaignOptions live;
  live.threads = 8;
  live.progress = &tracker;
  const CampaignResult observed = exp::run_campaign(spec, live);
  stop_scraping.store(true, std::memory_order_relaxed);
  for (std::thread& scraper : scrapers) scraper.join();
  server.stop();
  EXPECT_GT(scrapes.load(), 0u);

  const CampaignResult reference = exp::run_campaign(spec, {});
  std::ostringstream observed_cells;
  std::ostringstream reference_cells;
  exp::write_campaign_cells(observed_cells, spec, observed);
  exp::write_campaign_cells(reference_cells, spec, reference);
  EXPECT_EQ(observed_cells.str(), reference_cells.str())
      << "live telemetry plane changed a deterministic aggregate";
}

/// GuardedMetricsSink: a single run's registry scraped concurrently with
/// the telemetry hooks feeding it. TSan checks the mutex actually covers
/// both sides; the assert checks a scrape never sees a torn document.
TEST(LiveScrape, GuardedMetricsSinkSurvivesConcurrentScrapes) {
  obs::GuardedMetricsSink sink;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      sink.write_prometheus(os);
    }
  });
  for (int run = 0; run < 20; ++run) {
    obs::RunInfo info;
    info.algorithm = "op-renaming";
    info.n = 10;
    info.t = 3;
    info.adversary = "silent";
    info.seed = static_cast<std::uint64_t>(run + 1);
    sink.on_run_start(info);
    for (int round = 1; round <= 12; ++round) {
      obs::RoundSample sample;
      sample.round = round;
      sample.metrics.messages = 100;
      sample.metrics.bits = 6400;
      sink.on_round(sample);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  std::ostringstream os;
  sink.write_prometheus(os);
  EXPECT_NE(os.str().find("byzrename_rounds_total"), std::string::npos) << os.str();
}

}  // namespace
