// Tests for the src/svc renaming-as-a-service subsystem: the wire API
// (request parsing, verdict serialization, query strings), the pure
// admission policy, the multi-tenant fair-queueing Scheduler over the
// work-stealing executor, and the full Daemon HTTP surface exercised
// over raw sockets. The load-bearing property throughout: a verdict is
// a pure function of its scenario, so the service at any thread count
// must produce results byte-identical to serial evaluation — which is
// asserted here by serializing both sides through
// svc::write_verdict_document. Carries the "exp" label so the TSan CI
// job runs the scheduler and daemon under the race detector.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "exp/repro.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/schema.h"
#include "svc/admission.h"
#include "svc/api.h"
#include "svc/daemon.h"
#include "svc/scheduler.h"

namespace {

using namespace byzrename;
using svc::AdmissionController;
using svc::AdmissionLimits;
using svc::InstanceResult;
using svc::InstanceStatus;
using svc::Scheduler;
using svc::SchedulerOptions;

// --- raw-socket client (the daemon tests' view is exactly curl's) ----------

std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("connect() failed");
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string http_post(std::uint16_t port, const std::string& path, const std::string& body,
                      const std::string& content_type = "application/json") {
  return http_request(port, "POST " + path + " HTTP/1.1\r\nHost: localhost\r\nContent-Type: " +
                                content_type +
                                "\r\nContent-Length: " + std::to_string(body.size()) +
                                "\r\n\r\n" + body);
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

// --- scenario helpers ------------------------------------------------------

exp::ReproScenario scenario_of(const char* algorithm, int n, int t, const char* adversary,
                               std::uint64_t seed) {
  exp::ReproScenario scenario;
  scenario.algorithm = *core::algorithm_from_token(algorithm);
  scenario.params = {.n = n, .t = t};
  scenario.adversary = adversary;
  scenario.seed = seed;
  return scenario;
}

/// A small mixed workload: three protocols, three adversaries, plus one
/// scenario whose checker verdict is a violation (orderbreak with
/// validation off), so the ok/violation counters both move.
std::vector<exp::ReproScenario> mixed_scenarios(std::size_t count, std::uint64_t seed_base) {
  std::vector<exp::ReproScenario> scenarios;
  scenarios.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    exp::ReproScenario scenario;
    switch (i % 4) {
      case 0: scenario = scenario_of("op", 10, 3, "idflood", seed_base + i); break;
      case 1: scenario = scenario_of("const", 16, 3, "split", seed_base + i); break;
      case 2: scenario = scenario_of("fast", 11, 2, "asymflood", seed_base + i); break;
      default:
        scenario = scenario_of("op", 10, 3, "orderbreak", seed_base + i);
        scenario.validate_votes = false;
        break;
    }
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

std::string verdict_normal_form(const exp::ReproScenario& scenario,
                                const exp::ReproVerdict& verdict) {
  std::ostringstream os;
  svc::write_verdict_document(os, scenario, verdict);
  return os.str();
}

/// write_repro_scenario emits `"scenario":{...}`; the submit array
/// wants the bare object, so serialize wrapped and peel the key off.
std::string scenario_json(const exp::ReproScenario& scenario) {
  std::ostringstream one;
  obs::JsonWriter inner(one);
  inner.begin_object();
  exp::write_repro_scenario(inner, scenario);
  inner.end_object();
  const std::string wrapped = one.str();
  constexpr std::string_view prefix = "{\"scenario\":";
  return wrapped.substr(prefix.size(), wrapped.size() - prefix.size() - 1);
}

std::string submit_body(const std::string& session,
                        const std::vector<exp::ReproScenario>& scenarios) {
  std::string body = "{\"schema\":\"";
  body += obs::kSubmitSchema;
  body += "\",\"session\":\"";
  body += session;
  body += "\",\"instances\":[";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i != 0) body += ',';
    body += scenario_json(scenarios[i]);
  }
  body += "]}";
  return body;
}

// ---------------------------------------------------------------------------
// API units

TEST(SvcApi, SessionNameValidation) {
  EXPECT_TRUE(svc::valid_session_name("tenant-a"));
  EXPECT_TRUE(svc::valid_session_name("A.b_c-9"));
  EXPECT_FALSE(svc::valid_session_name(""));
  EXPECT_FALSE(svc::valid_session_name("has space"));
  EXPECT_FALSE(svc::valid_session_name("quote\"name"));
  EXPECT_FALSE(svc::valid_session_name("newline\n"));
  EXPECT_FALSE(svc::valid_session_name(std::string(65, 'a')));
  EXPECT_TRUE(svc::valid_session_name(std::string(64, 'a')));
}

TEST(SvcApi, SessionRequestParsesAndRejects) {
  EXPECT_EQ(svc::parse_session_request(
                "{\"schema\":\"byzrename.session/1\",\"tenant\":\"alpha\"}"),
            "alpha");
  EXPECT_THROW(svc::parse_session_request("not json"), std::invalid_argument);
  EXPECT_THROW(svc::parse_session_request("{\"schema\":\"wrong/1\",\"tenant\":\"a\"}"),
               std::invalid_argument);
  EXPECT_THROW(svc::parse_session_request(
                   "{\"schema\":\"byzrename.session/1\",\"tenant\":\"bad name\"}"),
               std::invalid_argument);
  EXPECT_THROW(svc::parse_session_request("{\"schema\":\"byzrename.session/1\"}"),
               std::invalid_argument);
}

TEST(SvcApi, SubmitRequestRoundTripsScenarios) {
  const std::vector<exp::ReproScenario> scenarios = mixed_scenarios(5, 100);
  const svc::SubmitRequest request =
      svc::parse_submit_request(submit_body("tenant-a", scenarios));
  EXPECT_EQ(request.session, "tenant-a");
  ASSERT_EQ(request.instances.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(request.instances[i], scenarios[i]) << "instance " << i;
  }
}

TEST(SvcApi, SubmitRequestRejectsEmptyAndMalformed) {
  EXPECT_THROW(svc::parse_submit_request(
                   "{\"schema\":\"byzrename.submit/1\",\"session\":\"a\",\"instances\":[]}"),
               std::invalid_argument);
  EXPECT_THROW(svc::parse_submit_request(
                   "{\"schema\":\"byzrename.submit/1\",\"session\":\"a\","
                   "\"instances\":[{\"bogus\":1}]}"),
               std::invalid_argument);
  EXPECT_THROW(svc::parse_submit_request("{\"schema\":\"byzrename.submit/1\"}"),
               std::invalid_argument);
}

TEST(SvcApi, QueryStringParsing) {
  const auto params = svc::parse_query("session=a&cursor=12&max=5");
  EXPECT_EQ(params.at("session"), "a");
  EXPECT_EQ(params.at("cursor"), "12");
  EXPECT_EQ(params.at("max"), "5");
  EXPECT_TRUE(svc::parse_query("").empty());
  EXPECT_THROW(svc::parse_query("session=a&session=b"), std::invalid_argument);
  EXPECT_THROW(svc::parse_query("noequals"), std::invalid_argument);
}

TEST(SvcApi, VerdictDocumentCarriesScenarioAndVerdictShapes) {
  const exp::ReproScenario scenario = scenario_of("op", 10, 3, "idflood", 7);
  const exp::ReproVerdict verdict = exp::evaluate_scenario(scenario);
  const std::string document = verdict_normal_form(scenario, verdict);
  const obs::JsonValue doc = obs::parse_json(document);
  EXPECT_EQ(doc.at("schema").as_string(), obs::kVerdictSchema);
  EXPECT_EQ(doc.at("status").as_string(), "done");
  // Round-trip through the shared parsers reproduces the inputs.
  EXPECT_EQ(exp::parse_repro_scenario(doc.at("scenario")), scenario);
  EXPECT_EQ(exp::parse_repro_verdict(doc.at("verdict")), verdict);
}

// ---------------------------------------------------------------------------
// Admission policy units (pure: no threads, no clocks)

TEST(Admission, AdmitsWithinEveryLimit) {
  const AdmissionController admission(AdmissionLimits{100, 50, 10});
  const svc::AdmissionDecision decision = admission.decide(10, 0, 0, 0.0);
  EXPECT_TRUE(decision.admitted);
  EXPECT_EQ(decision.retry_after_seconds, 0);
}

TEST(Admission, OversizedBatchIsStructuralRejection) {
  const AdmissionController admission(AdmissionLimits{100, 50, 10});
  const svc::AdmissionDecision decision = admission.decide(11, 0, 0, 1000.0);
  EXPECT_FALSE(decision.admitted);
  // Retrying the same request can never succeed: no Retry-After.
  EXPECT_EQ(decision.retry_after_seconds, 0);
  EXPECT_NE(decision.reason.find("split"), std::string::npos) << decision.reason;
}

TEST(Admission, QueueDepthRejectionComputesRetryAfterFromDrainRate) {
  const AdmissionController admission(AdmissionLimits{100, 1000, 512});
  // 95 queued + 10 = 105 > 100, overload 5 at 2.5/s -> ceil(2) = 2s.
  const svc::AdmissionDecision decision = admission.decide(10, 95, 0, 2.5);
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.retry_after_seconds, 2);
  // Unknown drain rate falls back to a fixed hint.
  EXPECT_EQ(admission.decide(10, 95, 0, 0.0).retry_after_seconds, 5);
  // A glacial rate clamps at 30s, a torrential one at 1s.
  EXPECT_EQ(admission.decide(10, 95, 0, 0.0001).retry_after_seconds, 30);
  EXPECT_EQ(admission.decide(10, 95, 0, 1e9).retry_after_seconds, 1);
}

TEST(Admission, PerSessionInflightCapRejects) {
  const AdmissionController admission(AdmissionLimits{10000, 50, 512});
  EXPECT_TRUE(admission.decide(10, 0, 40, 1.0).admitted);
  const svc::AdmissionDecision decision = admission.decide(11, 0, 40, 1.0);
  EXPECT_FALSE(decision.admitted);
  EXPECT_GE(decision.retry_after_seconds, 1);
  EXPECT_LE(decision.retry_after_seconds, 30);
}

// ---------------------------------------------------------------------------
// Scheduler

TEST(SvcScheduler, SubmitPollRoundTripMatchesSerialEvaluationByteForByte) {
  const std::vector<exp::ReproScenario> scenarios = mixed_scenarios(12, 1000);
  SchedulerOptions options;
  options.threads = 4;
  Scheduler scheduler(options);
  ASSERT_TRUE(scheduler.open_session("tenant-a"));
  EXPECT_FALSE(scheduler.open_session("tenant-a"));  // reopen: not created

  const Scheduler::SubmitOutcome outcome = scheduler.submit("tenant-a", scenarios);
  ASSERT_TRUE(outcome.admitted);
  EXPECT_EQ(outcome.accepted, scenarios.size());
  EXPECT_EQ(outcome.first_id, 1u);
  scheduler.wait_idle();

  const Scheduler::PollResult poll = scheduler.poll("tenant-a", 0, 0);
  ASSERT_EQ(poll.items.size(), scenarios.size());
  EXPECT_EQ(poll.pending, 0u);
  EXPECT_EQ(poll.cursor, scenarios.size());

  // Completion order is nondeterministic; id -> submit order is not.
  std::map<std::uint64_t, const InstanceResult*> by_id;
  for (const InstanceResult& item : poll.items) {
    EXPECT_EQ(item.session, "tenant-a");
    EXPECT_EQ(item.status, InstanceStatus::kDone);
    by_id[item.id] = &item;
  }
  ASSERT_EQ(by_id.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const InstanceResult& item = *by_id.at(outcome.first_id + i);
    EXPECT_EQ(item.scenario, scenarios[i]) << "instance " << i;
    EXPECT_EQ(verdict_normal_form(item.scenario, item.verdict),
              verdict_normal_form(scenarios[i], exp::evaluate_scenario(scenarios[i])))
        << "instance " << i;
  }
}

TEST(SvcScheduler, VerdictsAreIdenticalAtOneAndEightThreads) {
  const std::vector<exp::ReproScenario> scenarios = mixed_scenarios(12, 4242);
  const auto run_at = [&scenarios](int threads) {
    SchedulerOptions options;
    options.threads = threads;
    Scheduler scheduler(options);
    scheduler.open_session("s");
    const Scheduler::SubmitOutcome outcome = scheduler.submit("s", scenarios);
    scheduler.wait_idle();
    const Scheduler::PollResult poll = scheduler.poll("s", 0, 0);
    std::map<std::uint64_t, std::string> normal;
    for (const InstanceResult& item : poll.items) {
      normal[item.id - outcome.first_id] = verdict_normal_form(item.scenario, item.verdict);
    }
    std::string all;
    for (const auto& [index, document] : normal) all += document;
    return all;
  };
  EXPECT_EQ(run_at(1), run_at(8));
}

TEST(SvcScheduler, CursorAndMaxItemsPaginate) {
  SchedulerOptions options;
  options.threads = 2;
  Scheduler scheduler(options);
  scheduler.open_session("s");
  scheduler.submit("s", mixed_scenarios(6, 77));
  scheduler.wait_idle();

  const Scheduler::PollResult page1 = scheduler.poll("s", 0, 4);
  ASSERT_EQ(page1.items.size(), 4u);
  EXPECT_EQ(page1.cursor, 4u);
  const Scheduler::PollResult page2 = scheduler.poll("s", page1.cursor, 4);
  ASSERT_EQ(page2.items.size(), 2u);
  EXPECT_EQ(page2.cursor, 6u);
  // Paged-out ids and one-shot ids agree.
  const Scheduler::PollResult all = scheduler.poll("s", 0, 0);
  std::vector<std::uint64_t> paged;
  for (const InstanceResult& item : page1.items) paged.push_back(item.id);
  for (const InstanceResult& item : page2.items) paged.push_back(item.id);
  std::vector<std::uint64_t> whole;
  for (const InstanceResult& item : all.items) whole.push_back(item.id);
  EXPECT_EQ(paged, whole);
}

TEST(SvcScheduler, UnknownSessionAndRejections) {
  SchedulerOptions options;
  options.threads = 1;
  options.admission = AdmissionLimits{/*max_queue_depth=*/4096,
                                      /*max_session_inflight=*/1024, /*max_batch=*/4};
  Scheduler scheduler(options);
  EXPECT_TRUE(scheduler.submit("ghost", mixed_scenarios(1, 1)).unknown_session);
  EXPECT_TRUE(scheduler.poll("ghost", 0, 0).unknown_session);

  scheduler.open_session("s");
  const Scheduler::SubmitOutcome rejected = scheduler.submit("s", mixed_scenarios(5, 1));
  EXPECT_FALSE(rejected.admitted);
  EXPECT_FALSE(rejected.unknown_session);
  EXPECT_FALSE(rejected.reason.empty());
  // The whole batch was rejected: nothing becomes pollable.
  scheduler.wait_idle();
  EXPECT_EQ(scheduler.poll("s", 0, 0).items.size(), 0u);
}

TEST(SvcScheduler, FairQueueingLetsASmallTenantThroughAMonopolist) {
  SchedulerOptions options;
  options.threads = 1;  // serial execution makes completion order meaningful
  options.fair_quantum = 4;
  // on_complete runs with the scheduler mutex held, so plain pushes are
  // serialized; wait_idle() synchronizes the read below.
  std::vector<std::string> completion_sessions;
  options.on_complete = [&](const InstanceResult& result, double) {
    completion_sessions.push_back(result.session);
  };
  Scheduler scheduler(options);
  scheduler.open_session("big");
  scheduler.open_session("small");

  std::vector<exp::ReproScenario> flood;
  for (std::size_t i = 0; i < 120; ++i) {
    flood.push_back(scenario_of("op", 7, 2, "silent", 9000 + i));
  }
  ASSERT_TRUE(scheduler.submit("big", flood).admitted);
  ASSERT_TRUE(scheduler.submit("small", {scenario_of("op", 7, 2, "silent", 1)}).admitted);
  scheduler.wait_idle();

  const auto small_at = std::find(completion_sessions.begin(), completion_sessions.end(),
                                  std::string("small"));
  ASSERT_NE(small_at, completion_sessions.end());
  const std::size_t position =
      static_cast<std::size_t>(small_at - completion_sessions.begin());
  // Round-robin gathering must interleave the singleton well before the
  // flood drains; without fairness it would complete dead last. The
  // bound is generous (first gather may race the second submit).
  EXPECT_LT(position, 100u) << "small tenant starved behind the flood";
}

TEST(SvcScheduler, DrainCancelQueuedReportsCancelledStatuses) {
  SchedulerOptions options;
  options.threads = 1;
  Scheduler scheduler(options);
  scheduler.open_session("s");
  std::vector<exp::ReproScenario> batch;
  for (std::size_t i = 0; i < 64; ++i) {
    batch.push_back(scenario_of("op", 10, 3, "idflood", 500 + i));
  }
  const Scheduler::SubmitOutcome outcome = scheduler.submit("s", batch);
  ASSERT_TRUE(outcome.admitted);
  scheduler.shutdown(Scheduler::DrainMode::kCancelQueued);

  // After shutdown: no new sessions, submits report draining.
  EXPECT_FALSE(scheduler.open_session("late"));
  EXPECT_TRUE(scheduler.draining());
  EXPECT_TRUE(scheduler.submit("s", mixed_scenarios(1, 1)).draining);

  // Every admitted instance is accounted for exactly once — done or
  // cancelled, never vanished.
  const Scheduler::PollResult poll = scheduler.poll("s", 0, 0);
  EXPECT_TRUE(poll.draining);
  ASSERT_EQ(poll.items.size(), batch.size());
  std::size_t done = 0;
  std::size_t cancelled = 0;
  for (const InstanceResult& item : poll.items) {
    if (item.status == InstanceStatus::kDone) {
      ++done;
    } else {
      ++cancelled;
      // A cancelled instance still names its scenario.
      EXPECT_FALSE(item.scenario.adversary.empty());
    }
  }
  EXPECT_EQ(done + cancelled, batch.size());
}

TEST(SvcScheduler, DrainWaitAllRunsEverythingAdmitted) {
  SchedulerOptions options;
  options.threads = 2;
  Scheduler scheduler(options);
  scheduler.open_session("s");
  scheduler.submit("s", mixed_scenarios(8, 3000));
  scheduler.shutdown(Scheduler::DrainMode::kWaitAll);
  const Scheduler::PollResult poll = scheduler.poll("s", 0, 0);
  ASSERT_EQ(poll.items.size(), 8u);
  for (const InstanceResult& item : poll.items) {
    EXPECT_EQ(item.status, InstanceStatus::kDone);
  }
}

TEST(SvcScheduler, MetricsExposePerTenantFamiliesAndServiceGauges) {
  SchedulerOptions options;
  options.threads = 2;
  Scheduler scheduler(options);
  scheduler.open_session("alpha");
  scheduler.open_session("beta");
  scheduler.submit("alpha", mixed_scenarios(4, 10));
  scheduler.submit("beta", mixed_scenarios(3, 20));
  scheduler.wait_idle();

  std::ostringstream os;
  scheduler.write_metrics(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("byzrenamed_sessions 2"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrenamed_queued_instances 0"), std::string::npos) << out;
  EXPECT_NE(out.find("byzrenamed_instances_submitted_total{session=\"alpha\"} 4"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("byzrenamed_instances_submitted_total{session=\"beta\"} 3"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("byzrenamed_instances_completed_total{session=\"alpha\"} 4"),
            std::string::npos)
      << out;
  // The mixed workload contains orderbreak/no-validation instances, so
  // the violations family is live too.
  EXPECT_NE(out.find("byzrenamed_instances_violations_total{session=\"alpha\"}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("byzrenamed_completion_latency_microseconds_count"), std::string::npos)
      << out;
  // One # TYPE header per family even though the two tenants' series
  // were registered at different times.
  std::size_t type_headers = 0;
  for (std::size_t at = out.find("# TYPE byzrenamed_instances_submitted_total");
       at != std::string::npos;
       at = out.find("# TYPE byzrenamed_instances_submitted_total", at + 1)) {
    ++type_headers;
  }
  EXPECT_EQ(type_headers, 1u) << out;
}

TEST(SvcScheduler, LongPollReturnsEarlyWhenResultsArrive) {
  SchedulerOptions options;
  options.threads = 2;
  Scheduler scheduler(options);
  scheduler.open_session("s");
  scheduler.submit("s", mixed_scenarios(2, 60));
  const auto start = std::chrono::steady_clock::now();
  const Scheduler::PollResult poll = scheduler.poll("s", 0, 0, /*wait_ms=*/30000);
  const double waited = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(poll.items.size(), 1u);
  EXPECT_LT(waited, 25.0) << "long-poll did not return on completion";
}

TEST(SvcScheduler, RetentionEvictsOldResultsAndFlagsStaleCursors) {
  SchedulerOptions options;
  options.threads = 2;
  options.retention_cap = 4;
  Scheduler scheduler(options);
  scheduler.open_session("s");
  scheduler.submit("s", mixed_scenarios(10, 900));
  scheduler.wait_idle();

  // The oldest 6 results were evicted; cursor 0 addresses lost history.
  const Scheduler::PollResult stale = scheduler.poll("s", 0, 0);
  EXPECT_FALSE(stale.unknown_session);
  EXPECT_TRUE(stale.evicted);
  EXPECT_TRUE(stale.items.empty());
  EXPECT_EQ(stale.oldest_cursor, 6u);

  // Resuming from the reported cursor replays exactly the retained tail.
  const Scheduler::PollResult tail = scheduler.poll("s", stale.oldest_cursor, 0);
  EXPECT_FALSE(tail.evicted);
  ASSERT_EQ(tail.items.size(), 4u);
  EXPECT_EQ(tail.cursor, 10u);
  // The live end of the window is not "evicted" — just empty.
  const Scheduler::PollResult live = scheduler.poll("s", tail.cursor, 0);
  EXPECT_FALSE(live.evicted);
  EXPECT_TRUE(live.items.empty());

  // Eviction is visible on /metrics.
  std::ostringstream os;
  scheduler.write_metrics(os);
  EXPECT_NE(os.str().find("byzrenamed_results_evicted_total{session=\"s\"} 6"),
            std::string::npos)
      << os.str();
}

TEST(SvcScheduler, RetentionZeroDisablesEviction) {
  SchedulerOptions options;
  options.threads = 2;
  options.retention_cap = 0;
  Scheduler scheduler(options);
  scheduler.open_session("s");
  scheduler.submit("s", mixed_scenarios(10, 901));
  scheduler.wait_idle();
  const Scheduler::PollResult poll = scheduler.poll("s", 0, 0);
  EXPECT_FALSE(poll.evicted);
  EXPECT_EQ(poll.items.size(), 10u);
}

TEST(SvcDaemon, EvictedCursorPolls404WithDistinctErrorCode) {
  svc::DaemonOptions options;
  options.scheduler.threads = 2;
  options.scheduler.retention_cap = 2;
  svc::Daemon daemon(options);
  daemon.start();
  const std::uint16_t port = daemon.port();

  http_post(port, "/v1/session", "{\"schema\":\"byzrename.session/1\",\"tenant\":\"s\"}");
  http_post(port, "/v1/submit", submit_body("s", mixed_scenarios(6, 902)));
  daemon.scheduler().wait_idle();

  const std::string stale = http_get(port, "/v1/poll?session=s&cursor=0");
  EXPECT_NE(stale.find("HTTP/1.1 404"), std::string::npos) << stale;
  const obs::JsonValue error = obs::parse_json(body_of(stale));
  EXPECT_EQ(error.at("schema").as_string(), obs::kErrorSchema);
  EXPECT_EQ(error.at("code").as_string(), "cursor-evicted");
  // The message names the oldest retained cursor so clients can resume.
  EXPECT_NE(error.at("error").as_string().find("oldest retained cursor is 4"),
            std::string::npos)
      << error.at("error").as_string();

  const std::string tail = http_get(port, "/v1/poll?session=s&cursor=4");
  EXPECT_NE(tail.find("HTTP/1.1 200"), std::string::npos) << tail;
  EXPECT_EQ(obs::parse_json(body_of(tail)).at("items").as_array().size(), 2u);
  // A plain unknown-session 404 carries no code field.
  const std::string unknown = http_get(port, "/v1/poll?session=ghost");
  EXPECT_NE(unknown.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_EQ(body_of(unknown).find("\"code\""), std::string::npos) << unknown;

  daemon.stop(Scheduler::DrainMode::kCancelQueued);
}

// ---------------------------------------------------------------------------
// Daemon over HTTP

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    svc::DaemonOptions options;
    options.scheduler.threads = 2;
    options.scheduler.admission = AdmissionLimits{/*max_queue_depth=*/4096,
                                                  /*max_session_inflight=*/1024,
                                                  /*max_batch=*/64};
    daemon_ = std::make_unique<svc::Daemon>(options);
    daemon_->start();
    port_ = daemon_->port();
  }

  void TearDown() override {
    daemon_->stop(Scheduler::DrainMode::kCancelQueued);
  }

  std::string open_session(const std::string& tenant) {
    return http_post(port_, "/v1/session",
                     "{\"schema\":\"byzrename.session/1\",\"tenant\":\"" + tenant + "\"}");
  }

  std::unique_ptr<svc::Daemon> daemon_;
  std::uint16_t port_ = 0;
};

TEST_F(DaemonTest, SessionLifecycleAndErrorMapping) {
  EXPECT_NE(open_session("alpha").find("HTTP/1.1 200"), std::string::npos);
  // Reopen is idempotent success.
  EXPECT_NE(open_session("alpha").find("HTTP/1.1 200"), std::string::npos);
  // Malformed body -> 400 with a byzrename.error/1 body.
  const std::string bad = http_post(port_, "/v1/session", "{\"schema\":\"nope/1\"}");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos) << bad;
  EXPECT_EQ(obs::parse_json(body_of(bad)).at("schema").as_string(), obs::kErrorSchema);
  // Submit to an unknown session -> 404.
  const std::string orphan =
      http_post(port_, "/v1/submit", submit_body("ghost", mixed_scenarios(1, 1)));
  EXPECT_NE(orphan.find("HTTP/1.1 404"), std::string::npos) << orphan;
  // Wrong content type never reaches the JSON parser -> 415.
  EXPECT_NE(http_post(port_, "/v1/session", "x", "text/plain").find("HTTP/1.1 415"),
            std::string::npos);
}

TEST_F(DaemonTest, SubmitPollConversationMatchesSerialEvaluation) {
  const std::vector<exp::ReproScenario> scenarios = mixed_scenarios(6, 5000);
  ASSERT_NE(open_session("tenant-a").find("HTTP/1.1 200"), std::string::npos);

  const std::string ack = http_post(port_, "/v1/submit", submit_body("tenant-a", scenarios));
  ASSERT_NE(ack.find("HTTP/1.1 202"), std::string::npos) << ack;
  const obs::JsonValue ack_doc = obs::parse_json(body_of(ack));
  EXPECT_EQ(ack_doc.at("schema").as_string(), obs::kSubmitAckSchema);
  EXPECT_EQ(ack_doc.at("accepted").as_uint(), scenarios.size());
  const std::uint64_t first_id = ack_doc.at("first_id").as_uint();

  // Long-poll until every verdict arrived.
  std::map<std::uint64_t, std::string> by_id;
  std::uint64_t cursor = 0;
  for (int spins = 0; by_id.size() < scenarios.size() && spins < 200; ++spins) {
    const std::string response = http_get(
        port_, "/v1/poll?session=tenant-a&cursor=" + std::to_string(cursor) + "&wait_ms=2000");
    ASSERT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
    const obs::JsonValue doc = obs::parse_json(body_of(response));
    EXPECT_EQ(doc.at("schema").as_string(), obs::kPollSchema);
    cursor = doc.at("cursor").as_uint();
    for (const obs::JsonValue& item : doc.at("items").as_array()) {
      EXPECT_EQ(item.at("schema").as_string(), obs::kVerdictSchema);
      EXPECT_EQ(item.at("session").as_string(), "tenant-a");
      EXPECT_EQ(item.at("status").as_string(), "done");
      // Re-derive the identity-free normal form from the wire item.
      const exp::ReproScenario scenario = exp::parse_repro_scenario(item.at("scenario"));
      const exp::ReproVerdict verdict = exp::parse_repro_verdict(item.at("verdict"));
      by_id[item.at("id").as_uint()] = verdict_normal_form(scenario, verdict);
    }
  }
  ASSERT_EQ(by_id.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(by_id.at(first_id + i),
              verdict_normal_form(scenarios[i], exp::evaluate_scenario(scenarios[i])))
        << "instance " << i << " differs between service and serial execution";
  }
}

TEST_F(DaemonTest, OversizedBatchIs429AndOverloadCarriesRetryAfter) {
  ASSERT_NE(open_session("flood").find("HTTP/1.1 200"), std::string::npos);
  // Structural: batch over max_batch (64) -> 429, no Retry-After.
  const std::string structural =
      http_post(port_, "/v1/submit", submit_body("flood", mixed_scenarios(65, 1)));
  EXPECT_NE(structural.find("HTTP/1.1 429"), std::string::npos) << structural;
  EXPECT_EQ(structural.find("Retry-After:"), std::string::npos) << structural;
  // Load: exceed the per-session in-flight cap with admitted work, then
  // one more batch must bounce with a Retry-After hint.
  std::vector<exp::ReproScenario> slow;
  for (std::size_t i = 0; i < 64; ++i) {
    slow.push_back(scenario_of("op", 13, 4, "asymflood", 7000 + i));
  }
  std::size_t admitted = 0;
  std::string last;
  for (int batch = 0; batch < 20; ++batch) {
    last = http_post(port_, "/v1/submit", submit_body("flood", slow));
    if (last.find("HTTP/1.1 202") != std::string::npos) {
      admitted += slow.size();
      continue;
    }
    break;
  }
  ASSERT_NE(last.find("HTTP/1.1 429"), std::string::npos)
      << "in-flight cap never tripped after " << admitted << " admitted: " << last;
  EXPECT_NE(last.find("Retry-After: "), std::string::npos) << last;
}

TEST_F(DaemonTest, PollValidationAndMetricsAndBuildinfo) {
  ASSERT_NE(open_session("alpha").find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(http_get(port_, "/v1/poll").find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(http_get(port_, "/v1/poll?session=ghost").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_get(port_, "/v1/poll?session=alpha&cursor=frog").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(http_get(port_, "/v1/poll?session=alpha&cursor=1&cursor=2").find("HTTP/1.1 400"),
            std::string::npos);

  http_post(port_, "/v1/submit", submit_body("alpha", mixed_scenarios(2, 88)));
  daemon_->scheduler().wait_idle();
  const std::string metrics = body_of(http_get(port_, "/metrics"));
  EXPECT_NE(metrics.find("byzrenamed_sessions"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("byzrenamed_instances_completed_total{session=\"alpha\"} 2"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("process_resident_memory_bytes"), std::string::npos) << metrics;

  const std::string buildinfo = http_get(port_, "/buildinfo");
  EXPECT_NE(buildinfo.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(obs::parse_json(body_of(buildinfo)).at("schema").as_string(),
            obs::kBuildinfoSchema);
}

TEST_F(DaemonTest, DrainingRejectsNewWorkWith503) {
  ASSERT_NE(open_session("alpha").find("HTTP/1.1 200"), std::string::npos);
  daemon_->scheduler().shutdown(Scheduler::DrainMode::kCancelQueued);
  EXPECT_NE(open_session("beta").find("HTTP/1.1 503"), std::string::npos);
  const std::string submit =
      http_post(port_, "/v1/submit", submit_body("alpha", mixed_scenarios(1, 1)));
  EXPECT_NE(submit.find("HTTP/1.1 503"), std::string::npos) << submit;
  // Polls still answer during the grace window, flagged draining.
  const std::string poll = http_get(port_, "/v1/poll?session=alpha");
  EXPECT_NE(poll.find("HTTP/1.1 200"), std::string::npos) << poll;
  EXPECT_NE(body_of(poll).find("\"draining\":true"), std::string::npos) << poll;
}

}  // namespace
