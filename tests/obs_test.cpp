// Tests for the src/obs run-telemetry subsystem: observer fan-out,
// streaming JSON writer, the byzrename.run/1 JSONL report round-trip,
// and the Chrome trace-event exporter.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/harness.h"
#include "sim/network.h"
#include "sim/rng.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "obs/schema.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "trace/event_log.h"

namespace byzrename::obs {
namespace {

// --- Minimal recursive-descent JSON reader (tests only) -------------------
//
// Just enough of RFC 8259 to round-trip what the writer emits; throws
// std::runtime_error on malformed input so schema bugs fail loudly.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;                            // Type::kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // Type::kObject

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    for (const auto& [name, value] : members) {
      if (name == key) return value;
    }
    throw std::runtime_error("missing key: " + key);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    for (const auto& [name, value] : members) {
      if (name == key) return true;
    }
    return false;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage after JSON value");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_word(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      throw std::runtime_error("bad literal, expected " + word);
    }
    pos_ += word.size();
  }

  JsonValue parse_value() {
    JsonValue value;
    switch (peek()) {
      case '{': {
        value.type = JsonValue::Type::kObject;
        ++pos_;
        if (consume('}')) return value;
        do {
          JsonValue key = parse_string();
          expect(':');
          value.members.emplace_back(key.string, parse_value());
        } while (consume(','));
        expect('}');
        return value;
      }
      case '[': {
        value.type = JsonValue::Type::kArray;
        ++pos_;
        if (consume(']')) return value;
        do {
          value.array.push_back(parse_value());
        } while (consume(','));
        expect(']');
        return value;
      }
      case '"':
        return parse_string();
      case 't':
        expect_word("true");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        expect_word("false");
        value.type = JsonValue::Type::kBool;
        return value;
      case 'n':
        expect_word("null");
        return value;
      default: {
        value.type = JsonValue::Type::kNumber;
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
                text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E')) {
          ++end;
        }
        value.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return value;
      }
    }
  }

  JsonValue parse_string() {
    JsonValue value;
    value.type = JsonValue::Type::kString;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        value.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) throw std::runtime_error("dangling escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value.string.push_back('"'); break;
        case '\\': value.string.push_back('\\'); break;
        case '/': value.string.push_back('/'); break;
        case 'n': value.string.push_back('\n'); break;
        case 'r': value.string.push_back('\r'); break;
        case 't': value.string.push_back('\t'); break;
        case 'b': value.string.push_back('\b'); break;
        case 'f': value.string.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u escape");
          const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          if (code > 0x7f) throw std::runtime_error("non-ASCII \\u escape unsupported in tests");
          value.string.push_back(static_cast<char>(code));
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
    expect('"');
    return value;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- ObserverHub -----------------------------------------------------------

class IdleBehavior final : public sim::ProcessBehavior {
 public:
  void on_send(sim::Round, sim::Outbox&) override {}
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }
};

sim::Network make_idle_network() {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  behaviors.push_back(std::make_unique<IdleBehavior>());
  return sim::Network(std::move(behaviors), {false}, sim::Rng(1));
}

TEST(ObserverHub, FansOutInRegistrationOrder) {
  ObserverHub hub;
  std::vector<int> order;
  hub.add([&order](sim::Round, const sim::Network&) { order.push_back(1); });
  hub.add([&order](sim::Round, const sim::Network&) { order.push_back(2); });
  hub.add([&order](sim::Round, const sim::Network&) { order.push_back(3); });

  const sim::RoundObserver fused = hub.as_observer();
  ASSERT_TRUE(static_cast<bool>(fused));
  const sim::Network network = make_idle_network();
  fused(1, network);
  fused(2, network);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 1, 2, 3}));
}

TEST(ObserverHub, EmptyHubYieldsNullObserver) {
  ObserverHub hub;
  EXPECT_TRUE(hub.empty());
  EXPECT_FALSE(static_cast<bool>(hub.as_observer()));
  hub.add(sim::RoundObserver{});  // null observers are skipped, hub stays empty
  EXPECT_TRUE(hub.empty());
}

TEST(Telemetry, InactiveWithoutSinks) {
  Telemetry telemetry;
  EXPECT_FALSE(telemetry.active());
}

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, EscapesAndNestsCorrectly) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("plain", std::string("a\"b\\c\nd\te"));
  json.field("int", static_cast<std::int64_t>(-42));
  json.field("flag", true);
  json.key("nested").begin_array();
  json.value(static_cast<std::int64_t>(1));
  json.begin_object();
  json.field("x", 2.5);
  json.end_object();
  json.end_array();
  json.end_object();

  const JsonValue parsed = JsonReader(out.str()).parse();
  EXPECT_EQ(parsed.at("plain").string, "a\"b\\c\nd\te");
  EXPECT_EQ(parsed.at("int").number, -42.0);
  EXPECT_TRUE(parsed.at("flag").boolean);
  ASSERT_EQ(parsed.at("nested").array.size(), 2u);
  EXPECT_EQ(parsed.at("nested").array[1].at("x").number, 2.5);
}

TEST(JsonWriter, ControlCharactersBecomeUnicodeEscapes) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("ctl", std::string("a\x01z"));
  json.end_object();
  EXPECT_NE(out.str().find("\\u0001"), std::string::npos);
  EXPECT_EQ(JsonReader(out.str()).parse().at("ctl").string, std::string("a\x01z"));
}

// --- RunReportSink: schema round-trip against a real run -------------------

struct Capture {
  core::ScenarioResult result;
  JsonValue report;
};

Capture run_and_parse(core::ScenarioConfig config) {
  std::ostringstream out;
  RunReportSink sink(out, "obs_test");
  Telemetry telemetry;
  telemetry.add_sink(sink);
  config.telemetry = &telemetry;
  Capture capture;
  capture.result = core::run_scenario(config);
  const std::string line = out.str();
  EXPECT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');  // JSONL: exactly one newline-terminated line
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  capture.report = JsonReader(line.substr(0, line.size() - 1)).parse();
  return capture;
}

TEST(RunReportSink, RoundTripsScenarioAndTotals) {
  core::ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.adversary = "asymflood";
  config.seed = 42;
  config.telemetry_label = "row 1";
  const Capture capture = run_and_parse(config);
  const JsonValue& report = capture.report;
  const core::ScenarioResult& result = capture.result;
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;

  EXPECT_EQ(report.at("schema").string, kRunSchema);
  EXPECT_EQ(report.at("bench").string, "obs_test");
  EXPECT_EQ(report.at("label").string, "row 1");

  const JsonValue& scenario = report.at("scenario");
  EXPECT_EQ(scenario.at("algorithm").string, "op-renaming");
  EXPECT_EQ(scenario.at("n").number, 10.0);
  EXPECT_EQ(scenario.at("t").number, 3.0);
  EXPECT_EQ(scenario.at("faults").number, 3.0);
  EXPECT_EQ(scenario.at("adversary").string, "asymflood");
  EXPECT_EQ(scenario.at("seed").number, 42.0);
  EXPECT_TRUE(scenario.at("validate_votes").boolean);
  EXPECT_EQ(scenario.at("target_namespace").number, 12.0);  // N+t-1

  const JsonValue& outcome = report.at("outcome");
  EXPECT_EQ(outcome.at("rounds").number, result.run.rounds);
  EXPECT_TRUE(outcome.at("terminated").boolean);
  EXPECT_EQ(outcome.at("max_name").number, static_cast<double>(result.report.max_name));
  EXPECT_GE(outcome.at("wall_seconds").number, 0.0);
  EXPECT_EQ(outcome.at("accepted").at("max").number,
            static_cast<double>(result.max_accepted));
  EXPECT_TRUE(outcome.at("verdict").at("all_ok").boolean);

  const sim::Metrics& metrics = result.run.metrics;
  const JsonValue& totals = report.at("totals");
  EXPECT_EQ(totals.at("messages").number, static_cast<double>(metrics.total_messages()));
  EXPECT_EQ(totals.at("bits").number, static_cast<double>(metrics.total_bits()));
  EXPECT_EQ(totals.at("correct_messages").number,
            static_cast<double>(metrics.total_correct_messages()));
  EXPECT_EQ(totals.at("equivocating_sends").number,
            static_cast<double>(metrics.total_equivocating_sends()));
}

TEST(RunReportSink, PerRoundSeriesMatchesMetrics) {
  core::ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.adversary = "split";
  config.seed = 3;
  const Capture capture = run_and_parse(config);
  const std::vector<sim::RoundMetrics>& per_round = capture.result.run.metrics.per_round();

  const JsonValue& series = capture.report.at("per_round");
  ASSERT_EQ(series.array.size(), per_round.size());
  bool saw_rank_probe = false;
  for (std::size_t r = 0; r < per_round.size(); ++r) {
    const JsonValue& row = series.array[r];
    EXPECT_EQ(row.at("round").number, static_cast<double>(r + 1));
    EXPECT_EQ(row.at("messages").number, static_cast<double>(per_round[r].messages));
    EXPECT_EQ(row.at("bits").number, static_cast<double>(per_round[r].bits));
    EXPECT_EQ(row.at("correct_messages").number,
              static_cast<double>(per_round[r].correct_messages));
    EXPECT_EQ(row.at("equivocating_sends").number,
              static_cast<double>(per_round[r].equivocating_sends));
    EXPECT_GE(row.at("wall_seconds").number, 0.0);
    if (row.has("rank_spread")) {
      saw_rank_probe = true;
      EXPECT_FALSE(row.at("rank_spread_exact").string.empty());
    }
  }
  // Alg. 1 exposes rank probes once the voting phase is underway.
  EXPECT_TRUE(saw_rank_probe);
}

TEST(RunReportSink, FastRenamingEmitsFastProbes) {
  core::ScenarioConfig config;
  config.params = {.n = 11, .t = 2};
  config.algorithm = core::Algorithm::kFastRenaming;
  config.adversary = "suppress";
  config.seed = 9;
  const Capture capture = run_and_parse(config);
  const JsonValue& series = capture.report.at("per_round");
  ASSERT_FALSE(series.array.empty());
  bool saw_fast_probe = false;
  for (const JsonValue& row : series.array) {
    if (row.has("fast_max_discrepancy")) {
      saw_fast_probe = true;
      EXPECT_TRUE(row.has("fast_min_gap"));
    }
  }
  EXPECT_TRUE(saw_fast_probe);
  EXPECT_EQ(capture.report.at("scenario").at("iterations").number, -1.0);
}

TEST(RunReportSink, MultipleSinksSeeTheSameRun) {
  std::ostringstream first;
  std::ostringstream second;
  RunReportSink sink_a(first);
  RunReportSink sink_b(second, "twin");
  Telemetry telemetry;
  telemetry.add_sink(sink_a);
  telemetry.add_sink(sink_b);

  core::ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.telemetry = &telemetry;
  (void)core::run_scenario(config);

  const JsonValue a = JsonReader(first.str()).parse();
  const JsonValue b = JsonReader(second.str()).parse();
  EXPECT_FALSE(a.has("bench"));
  EXPECT_EQ(b.at("bench").string, "twin");
  EXPECT_EQ(a.at("outcome").at("rounds").number, b.at("outcome").at("rounds").number);
  EXPECT_EQ(a.at("totals").at("messages").number, b.at("totals").at("messages").number);
}

// --- Chrome trace exporter -------------------------------------------------

TEST(TraceExport, EmitsWellFormedTraceEvents) {
  trace::EventLog log;
  core::ScenarioConfig config;
  config.params = {.n = 5, .t = 1};
  config.adversary = "split";
  config.seed = 2;
  config.event_log = &log;
  const core::ScenarioResult result = core::run_scenario(config);
  ASSERT_FALSE(log.empty());

  TraceMeta meta;
  meta.title = "obs_test trace";
  meta.process_count = 5;
  meta.rounds = result.run.rounds;
  meta.byzantine = {false, false, false, false, true};
  std::ostringstream out;
  write_chrome_trace(out, log, meta);

  const JsonValue trace = JsonReader(out.str()).parse();
  const JsonValue& events = trace.at("traceEvents");
  ASSERT_GT(events.array.size(), 0u);

  int metadata = 0;
  int slices = 0;
  int decide_slices = 0;
  for (const JsonValue& event : events.array) {
    const std::string& phase = event.at("ph").string;
    EXPECT_TRUE(event.has("pid"));
    EXPECT_TRUE(event.has("tid"));
    EXPECT_TRUE(event.has("name"));
    if (phase == "M") {
      ++metadata;
    } else {
      ASSERT_EQ(phase, "X");
      ++slices;
      EXPECT_GE(event.at("ts").number, 0.0);
      EXPECT_GT(event.at("dur").number, 0.0);
      if (event.at("cat").string.rfind("decide", 0) == 0) ++decide_slices;
    }
  }
  // thread_name per process + the rounds track + process_name at least.
  EXPECT_GE(metadata, 7);
  EXPECT_GT(slices, 0);
  // Every correct process decides exactly once.
  EXPECT_EQ(decide_slices, 4);
}

TEST(TraceExport, EmptyLogStillProducesValidJson) {
  trace::EventLog log;
  TraceMeta meta;
  meta.title = "empty";
  meta.process_count = 2;
  std::ostringstream out;
  write_chrome_trace(out, log, meta);
  const JsonValue trace = JsonReader(out.str()).parse();
  EXPECT_TRUE(trace.has("traceEvents"));
  EXPECT_EQ(trace.at("displayTimeUnit").string, "ms");
}

}  // namespace
}  // namespace byzrename::obs
