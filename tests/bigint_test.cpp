#include "numeric/bigint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <utility>

namespace byzrename::numeric {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_EQ(zero.to_int64(), 0);
  EXPECT_EQ(zero.bit_length(), 0u);
}

TEST(BigInt, ConstructsFromInt64) {
  EXPECT_EQ(BigInt(42).to_int64(), 42);
  EXPECT_EQ(BigInt(-42).to_int64(), -42);
  EXPECT_EQ(BigInt(0).to_string(), "0");
  EXPECT_EQ(BigInt(1).to_string(), "1");
  EXPECT_EQ(BigInt(-1).to_string(), "-1");
}

TEST(BigInt, HandlesInt64Extremes) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  const std::int64_t min = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(BigInt(max).to_int64(), max);
  EXPECT_EQ(BigInt(min).to_int64(), min);
  EXPECT_EQ(BigInt(max).to_string(), "9223372036854775807");
  EXPECT_EQ(BigInt(min).to_string(), "-9223372036854775808");
}

TEST(BigInt, ToInt64ThrowsWhenOutOfRange) {
  const BigInt big = BigInt(std::numeric_limits<std::int64_t>::max()) + BigInt(1);
  EXPECT_FALSE(big.fits_int64());
  EXPECT_THROW((void)big.to_int64(), std::overflow_error);
  // INT64_MIN itself still fits.
  const BigInt min(std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(min.fits_int64());
  EXPECT_THROW((void)(min - BigInt(1)).to_int64(), std::overflow_error);
}

TEST(BigInt, FromStringRoundTrips) {
  for (const char* text :
       {"0", "1", "-1", "123456789", "-987654321", "340282366920938463463374607431768211456",
        "-170141183460469231731687303715884105728"}) {
    EXPECT_EQ(BigInt::from_string(text).to_string(), text) << text;
  }
}

TEST(BigInt, FromStringAcceptsPlusSign) {
  EXPECT_EQ(BigInt::from_string("+17").to_int64(), 17);
}

TEST(BigInt, FromStringNormalizesLeadingZeros) {
  EXPECT_EQ(BigInt::from_string("000123").to_int64(), 123);
  EXPECT_EQ(BigInt::from_string("-000").to_string(), "0");
}

TEST(BigInt, FromStringRejectsMalformedInput) {
  EXPECT_THROW((void)BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string("12a"), std::invalid_argument);
  EXPECT_THROW((void)BigInt::from_string(" 12"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, SubtractionBorrowsAcrossLimbs) {
  const BigInt a = BigInt::from_string("18446744073709551616");  // 2^64
  EXPECT_EQ((a - BigInt(1)).to_string(), "18446744073709551615");
  EXPECT_EQ((BigInt(5) - BigInt(7)).to_int64(), -2);
}

TEST(BigInt, MixedSignAddition) {
  EXPECT_EQ((BigInt(10) + BigInt(-3)).to_int64(), 7);
  EXPECT_EQ((BigInt(-10) + BigInt(3)).to_int64(), -7);
  EXPECT_EQ((BigInt(-10) + BigInt(-3)).to_int64(), -13);
  EXPECT_EQ((BigInt(10) + BigInt(-10)).to_string(), "0");
}

TEST(BigInt, MultiplicationMatchesKnownProducts) {
  EXPECT_EQ((BigInt(0) * BigInt(12345)).to_string(), "0");
  EXPECT_EQ((BigInt(-7) * BigInt(6)).to_int64(), -42);
  EXPECT_EQ((BigInt(-7) * BigInt(-6)).to_int64(), 42);
  const BigInt big = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ((big * big).to_string(),
            "15241578753238836750495351562536198787501905199875019052100");
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_int64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_int64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_int64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_int64(), 3);
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_int64(), 1);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_int64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_int64(), 1);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW((void)(BigInt(1) / BigInt(0)), std::domain_error);
  EXPECT_THROW((void)(BigInt(1) % BigInt(0)), std::domain_error);
}

TEST(BigInt, MultiLimbDivisionKnownQuotients) {
  const BigInt num = BigInt::from_string("340282366920938463463374607431768211456");  // 2^128
  const BigInt den = BigInt::from_string("18446744073709551616");                     // 2^64
  EXPECT_EQ((num / den).to_string(), "18446744073709551616");
  EXPECT_EQ((num % den).to_string(), "0");
  EXPECT_EQ(((num + BigInt(5)) % den).to_int64(), 5);
}

TEST(BigInt, DivisionIdentityHoldsOnRandomInputs) {
  std::mt19937_64 rng(12345);
  for (int i = 0; i < 500; ++i) {
    BigInt a(static_cast<std::int64_t>(rng()));
    BigInt b(static_cast<std::int64_t>(rng()) >> (rng() % 48));
    a = a * BigInt(static_cast<std::int64_t>(rng())) + BigInt(static_cast<std::int64_t>(rng()));
    if (b.is_zero()) continue;
    BigInt q;
    BigInt r;
    BigInt::div_mod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
    // Remainder carries the dividend's sign (truncated division).
    if (!r.is_zero()) {
      EXPECT_EQ(r.is_negative(), a.is_negative());
    }
  }
}

TEST(BigInt, MultiLimbDivisionIdentityOnWideOperands) {
  // Random dividends up to ~10 limbs against divisors of 2..6 limbs:
  // exercises the full Knuth-D path (normalization, q-hat refinement,
  // and occasionally the D6 add-back).
  std::mt19937_64 rng(0xD1BD1B);
  auto random_wide = [&rng](int limbs) {
    BigInt value;
    for (int i = 0; i < limbs; ++i) {
      value = (value << 32) + BigInt(static_cast<std::int64_t>(rng() & 0xFFFFFFFF));
    }
    return value;
  };
  for (int i = 0; i < 400; ++i) {
    const BigInt num = random_wide(2 + static_cast<int>(rng() % 9));
    BigInt den = random_wide(2 + static_cast<int>(rng() % 5));
    if (den.is_zero()) den = BigInt(1);
    BigInt q;
    BigInt r;
    BigInt::div_mod(num, den, q, r);
    EXPECT_EQ(q * den + r, num);
    EXPECT_LT(r, den);
    EXPECT_FALSE(r.is_negative());
  }
}

TEST(BigInt, DivisorsWithHighTopLimbStressQHat) {
  // Divisors whose top limb is 0xFFFFFFFF maximize q-hat overestimation.
  std::mt19937_64 rng(31337);
  for (int i = 0; i < 200; ++i) {
    BigInt den = (BigInt(0xFFFFFFFF) << 32) + BigInt(static_cast<std::int64_t>(rng() & 0xFFFFFFFF));
    BigInt num = den * BigInt(static_cast<std::int64_t>(rng() >> 1)) +
                 BigInt(static_cast<std::int64_t>(rng() & 0x7FFFFFFF));
    BigInt q;
    BigInt r;
    BigInt::div_mod(num, den, q, r);
    EXPECT_EQ(q * den + r, num);
    EXPECT_LT(r, den);
  }
}

TEST(BigInt, KnuthDAddBackCase) {
  // Constructed to exercise the rare D6 add-back branch: divisor with a
  // high top limb, dividend just below a multiple.
  const BigInt den = (BigInt(1) << 64) - (BigInt(1) << 32);  // 0xFFFFFFFF00000000
  const BigInt num = (den * BigInt::from_string("4294967296")) - BigInt(1);
  BigInt q;
  BigInt r;
  BigInt::div_mod(num, den, q, r);
  EXPECT_EQ(q * den + r, num);
}

TEST(BigInt, ShiftsMatchMultiplication) {
  BigInt one(1);
  EXPECT_EQ((one << 100).to_string(), "1267650600228229401496703205376");
  EXPECT_EQ(((one << 100) >> 100), one);
  EXPECT_EQ((BigInt(5) << 3).to_int64(), 40);
  EXPECT_EQ((BigInt(40) >> 3).to_int64(), 5);
  EXPECT_EQ((BigInt(1) >> 1).to_string(), "0");
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(2).bit_length(), 2u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ((BigInt(1) << 1000).bit_length(), 1001u);
}

TEST(BigInt, ComparisonIsTotalOrder) {
  const BigInt values[] = {BigInt::from_string("-99999999999999999999"), BigInt(-2), BigInt(0),
                           BigInt(3), BigInt::from_string("99999999999999999999")};
  for (std::size_t i = 0; i < std::size(values); ++i) {
    for (std::size_t j = 0; j < std::size(values); ++j) {
      EXPECT_EQ(values[i] < values[j], i < j);
      EXPECT_EQ(values[i] == values[j], i == j);
      EXPECT_EQ(values[i] >= values[j], i >= j);
    }
  }
}

TEST(BigInt, GcdMatchesEuclid) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(5), BigInt(0)).to_int64(), 5);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)).to_int64(), 0);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_int64(), 1);
  const BigInt a = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ(BigInt::gcd(a * BigInt(35), a * BigInt(21)), a * BigInt(7));
}

TEST(BigInt, NegationAndAbs) {
  EXPECT_EQ((-BigInt(5)).to_int64(), -5);
  EXPECT_EQ((-BigInt(-5)).to_int64(), 5);
  EXPECT_EQ((-BigInt(0)).to_string(), "0");
  EXPECT_FALSE((-BigInt(0)).is_negative());
  EXPECT_EQ(BigInt(-5).abs().to_int64(), 5);
}

TEST(BigInt, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(1000).to_double(), 1000.0);
  EXPECT_DOUBLE_EQ(BigInt(-1000).to_double(), -1000.0);
  const double big = (BigInt(1) << 64).to_double();
  EXPECT_NEAR(big, 1.8446744073709552e19, 1e5);
}

TEST(BigInt, RandomizedAlgebraicIdentities) {
  std::mt19937_64 rng(777);
  for (int i = 0; i < 300; ++i) {
    const BigInt a(static_cast<std::int64_t>(rng()));
    const BigInt b(static_cast<std::int64_t>(rng()));
    const BigInt c(static_cast<std::int64_t>(rng()));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
  }
}

// --- Small-buffer storage edge cases -----------------------------------
// The limb store keeps up to 4 limbs (128 bits) inline; these tests pin
// the behavior exactly at and across that boundary, where a bug in the
// inline/heap transition would silently corrupt magnitudes.

TEST(BigInt, CarryAcrossInlineHeapBoundary) {
  // 2^128 - 1 occupies all four inline limbs; + 1 must carry into a
  // fifth limb, spilling to the heap.
  const BigInt all_ones = (BigInt(1) << 128) - BigInt(1);
  EXPECT_EQ(all_ones.bit_length(), 128u);
  EXPECT_EQ(all_ones.to_string(), "340282366920938463463374607431768211455");
  const BigInt spilled = all_ones + BigInt(1);
  EXPECT_EQ(spilled.bit_length(), 129u);
  EXPECT_EQ(spilled.to_string(), "340282366920938463463374607431768211456");
  // And back: the borrow must walk down from the heap limb again.
  EXPECT_EQ(spilled - BigInt(1), all_ones);
  EXPECT_EQ(spilled - all_ones, BigInt(1));
  // Multiplication spills too: 2^64 * 2^64 = 2^128.
  const BigInt two64 = BigInt(1) << 64;
  EXPECT_EQ(two64 * two64, all_ones + BigInt(1));
  // Squaring the spilled value and dividing back round-trips through a
  // genuinely heap-resident intermediate (257 bits).
  EXPECT_EQ((spilled * spilled) / spilled, spilled);
}

TEST(BigInt, NegationOfMostNegativeInlineValue) {
  const std::int64_t min64 = std::numeric_limits<std::int64_t>::min();
  const BigInt lowest(min64);
  EXPECT_EQ(lowest.to_int64(), min64);
  EXPECT_EQ(lowest.to_string(), "-9223372036854775808");
  // |INT64_MIN| = 2^63 does not fit int64, so negation must widen.
  const BigInt negated = -lowest;
  EXPECT_FALSE(negated.fits_int64());
  EXPECT_THROW((void)negated.to_int64(), std::overflow_error);
  EXPECT_EQ(negated.to_string(), "9223372036854775808");
  EXPECT_EQ(negated + lowest, BigInt(0));
  EXPECT_EQ(lowest + lowest, -(BigInt(1) << 64));
  EXPECT_EQ(lowest - lowest, BigInt(0));
  EXPECT_FALSE((lowest - lowest).is_negative());
}

TEST(BigInt, FromMagPartsCanonicalizes) {
  EXPECT_TRUE(BigInt::from_mag_parts(0, 0, true).is_zero());
  EXPECT_FALSE(BigInt::from_mag_parts(0, 0, true).is_negative());
  EXPECT_EQ(BigInt::from_mag_parts(42, 0, false), BigInt(42));
  EXPECT_EQ(BigInt::from_mag_parts(42, 0, true), BigInt(-42));
  // hi = 1 contributes exactly 2^64.
  EXPECT_EQ(BigInt::from_mag_parts(0, 1, false), BigInt(1) << 64);
  const BigInt wide = BigInt::from_mag_parts(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull, false);
  EXPECT_EQ(wide, (BigInt(1) << 128) - BigInt(1));
  // Wire round-trip preserves value and sign.
  const BigInt reloaded = BigInt::from_magnitude_bytes(wide.magnitude_bytes(), true);
  EXPECT_EQ(reloaded, -wide);
}

// Reference conversion: hardware 128-bit arithmetic is the independent
// oracle for everything the fast paths compute (the same role the old
// all-vector implementation played before the small-buffer rewrite).
__extension__ typedef __int128 RefInt128;
__extension__ typedef unsigned __int128 RefUint128;

std::string ref_to_string(RefInt128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  RefUint128 mag = negative ? ~static_cast<RefUint128>(value) + 1 : static_cast<RefUint128>(value);
  std::string digits;
  while (mag != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
    mag /= 10;
  }
  if (negative) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

TEST(BigInt, RandomizedCrossCheckAgainstHardwareInt128) {
  std::mt19937_64 rng(20260805);
  for (int i = 0; i < 500; ++i) {
    const auto raw_a = static_cast<std::int64_t>(rng());
    const auto raw_b = static_cast<std::int64_t>(rng());
    const BigInt a(raw_a);
    const BigInt b(raw_b);
    const RefInt128 ra = raw_a;
    const RefInt128 rb = raw_b;
    EXPECT_EQ((a + b).to_string(), ref_to_string(ra + rb));
    EXPECT_EQ((a - b).to_string(), ref_to_string(ra - rb));
    EXPECT_EQ((a * b).to_string(), ref_to_string(ra * rb));
    if (raw_b != 0) {
      EXPECT_EQ((a / b).to_string(), ref_to_string(ra / rb));
      EXPECT_EQ((a % b).to_string(), ref_to_string(ra % rb));
    }
    EXPECT_EQ(a.compare(b), raw_a < raw_b ? -1 : (raw_a > raw_b ? 1 : 0));
  }
}

TEST(BigInt, RandomizedWideOperandsCrossInlineBoundary) {
  // 128-bit operands fill the inline store exactly; sums reach 129 bits
  // and products 256 bits, so every identity here exercises the
  // inline-to-heap transition in both directions.
  std::mt19937_64 rng(424242);
  for (int i = 0; i < 200; ++i) {
    const BigInt a = BigInt::from_mag_parts(rng(), rng(), (rng() & 1) != 0);
    const BigInt b = BigInt::from_mag_parts(rng(), rng() | 1, (rng() & 1) != 0);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
    EXPECT_EQ(a * b, b * a);
    BigInt quot;
    BigInt rem;
    BigInt::div_mod(a, b, quot, rem);
    EXPECT_EQ(quot * b + rem, a);
    EXPECT_LT(rem.abs(), b.abs());
    EXPECT_EQ(((a * b) / b), a);
    EXPECT_TRUE(((a * b) % b).is_zero());
  }
}

TEST(BigInt, BinaryGcdMatchesEuclidReference) {
  // The Euclidean loop the implementation used before the binary-GCD
  // rewrite, kept here as the reference oracle.
  const auto euclid = [](BigInt a, BigInt b) {
    a = a.abs();
    b = b.abs();
    while (!b.is_zero()) {
      BigInt r = a % b;
      a = std::move(b);
      b = std::move(r);
    }
    return a;
  };
  std::mt19937_64 rng(171717);
  for (int i = 0; i < 60; ++i) {
    // Build operands with a planted common factor and trailing zeros so
    // the binary algorithm's shift bookkeeping is actually exercised.
    const BigInt base = BigInt::from_mag_parts(rng() | 1, rng(), false);
    const BigInt a = (base * BigInt(static_cast<std::int64_t>(rng() % 1000 + 1)))
                     << static_cast<unsigned>(rng() % 70);
    const BigInt b = (base * BigInt(static_cast<std::int64_t>(rng() % 1000 + 1)))
                     << static_cast<unsigned>(rng() % 70);
    const BigInt g = BigInt::gcd(a, b);
    EXPECT_EQ(g, euclid(a, b));
    EXPECT_TRUE((a % g).is_zero());
    EXPECT_TRUE((b % g).is_zero());
  }
  // Pure powers of two reduce entirely through the common-shift factor.
  EXPECT_EQ(BigInt::gcd(BigInt(1) << 100, BigInt(1) << 64), BigInt(1) << 64);
  EXPECT_EQ(BigInt::gcd(BigInt(1) << 130, -(BigInt(1) << 130)), BigInt(1) << 130);
}

}  // namespace
}  // namespace byzrename::numeric
