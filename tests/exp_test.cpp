// Tests for the src/exp campaign engine: StreamingStats determinism,
// the work-stealing executor, seed derivation goldens, grid parsing,
// thread-count/shard invariance of campaign output, fail-fast
// cancellation, and concurrent JSONL writers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "exp/executor.h"
#include "exp/spec_parse.h"
#include "exp/stats.h"
#include "core/harness.h"
#include "obs/json_parse.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "sim/rng.h"

namespace byzrename::exp {
namespace {

// --- StreamingStats -------------------------------------------------------

TEST(StreamingStats, ExactMomentsBelowCapacity) {
  StreamingStats stats(/*reservoir_capacity=*/16, /*salt=*/1);
  for (std::uint64_t i = 0; i < 10; ++i) stats.add(i, static_cast<std::int64_t>(i + 1));
  EXPECT_EQ(stats.count(), 10u);
  EXPECT_EQ(stats.min(), 1);
  EXPECT_EQ(stats.max(), 10);
  EXPECT_EQ(stats.sum(), 55);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.5);
  // count <= capacity: quantiles are exact nearest-rank over all samples.
  EXPECT_EQ(stats.quantile(0.0), 1);
  EXPECT_EQ(stats.quantile(0.5), 5);
  EXPECT_EQ(stats.quantile(1.0), 10);
}

TEST(StreamingStats, OrderIndependent) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> samples;
  sim::Rng rng(99);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    samples.emplace_back(i, rng.uniform(0, 1 << 20));
  }
  StreamingStats forward(64, /*salt=*/7);
  for (const auto& [index, value] : samples) forward.add(index, value);
  StreamingStats shuffled(64, /*salt=*/7);
  std::reverse(samples.begin(), samples.end());
  std::swap(samples[3], samples[700]);
  for (const auto& [index, value] : samples) shuffled.add(index, value);

  EXPECT_EQ(forward.sum(), shuffled.sum());
  EXPECT_EQ(forward.min(), shuffled.min());
  EXPECT_EQ(forward.max(), shuffled.max());
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(forward.quantile(q), shuffled.quantile(q)) << "q=" << q;
  }
}

TEST(StreamingStats, MergeEqualsSingleAccumulator) {
  // Split the index space between two partials (a shard / per-worker
  // pattern); the merged result must equal the single-accumulator run.
  StreamingStats whole(32, /*salt=*/5);
  StreamingStats even(32, /*salt=*/5);
  StreamingStats odd(32, /*salt=*/5);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto value = static_cast<std::int64_t>((i * 2654435761u) % 10007);
    whole.add(i, value);
    (i % 2 == 0 ? even : odd).add(i, value);
  }
  even.merge(odd);
  EXPECT_EQ(even.count(), whole.count());
  EXPECT_EQ(even.sum(), whole.sum());
  EXPECT_EQ(even.min(), whole.min());
  EXPECT_EQ(even.max(), whole.max());
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(even.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

// --- seed derivation ------------------------------------------------------

TEST(SeedDerivation, GoldenValues) {
  // Pinned: changing splitmix64, derive_stream, or derive_seed
  // invalidates every recorded campaign. Update ONLY with a schema bump.
  EXPECT_EQ(sim::splitmix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sim::splitmix64(1), 0x910a2dec89025cc1ull);
  EXPECT_EQ(sim::Rng::derive_stream(42, 0), 0x79c32cd79ccd877eull);
  EXPECT_EQ(derive_seed(42, 0, 0), 0x55d682349343e6ull);
  EXPECT_EQ(derive_seed(42, 0, 1), 0xcef9a50036afc780ull);
  EXPECT_EQ(derive_seed(42, 1, 0), 0x6c10be6ef3b55619ull);
  EXPECT_EQ(derive_seed(1, 0, 0), 0x22d29894c92033d6ull);
}

TEST(SeedDerivation, DistinctAcrossGrid) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t cell = 0; cell < 64; ++cell) {
    for (std::uint64_t rep = 0; rep < 16; ++rep) {
      seeds.insert(derive_seed(7, cell, rep));
    }
  }
  EXPECT_EQ(seeds.size(), 64u * 16u);
}

// --- executor -------------------------------------------------------------

TEST(Executor, RunsEveryTaskExactlyOnce) {
  Executor executor(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  const Executor::Stats stats =
      executor.run(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(stats.executed, hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(Executor, SingleThreadIsSequential) {
  Executor executor(1);
  std::vector<std::size_t> order;
  executor.run(20, [&order](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(20);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(Executor, CancellationStopsUnstartedTasks) {
  Executor executor(1);  // deterministic: sequential order, exact cutoff
  std::vector<std::size_t> ran;
  const Executor::Stats stats = executor.run(100, [&](std::size_t i) {
    ran.push_back(i);
    if (i == 4) executor.cancel();
  });
  EXPECT_TRUE(executor.cancelled());
  EXPECT_EQ(stats.executed, 5u);
  EXPECT_EQ(ran.size(), 5u);
  // The flag resets on the next run().
  const Executor::Stats again = executor.run(3, [](std::size_t) {});
  EXPECT_EQ(again.executed, 3u);
  EXPECT_FALSE(executor.cancelled());
}

TEST(Executor, UnevenTasksGetStolen) {
  // One giant task on worker 0's block forces the other workers to steal
  // the rest of its preloaded indices. Stealing is timing-dependent, so
  // only assert the invariant that makes it observable at all: every
  // task runs exactly once even under heavy imbalance.
  Executor executor(4);
  std::atomic<std::size_t> done{0};
  std::atomic<std::uint64_t> benchmark_sink{0};
  const Executor::Stats stats = executor.run(64, [&](std::size_t i) {
    if (i == 0) {
      for (std::uint64_t k = 0; k < 3'000'000; ++k) {
        benchmark_sink.fetch_add(k, std::memory_order_relaxed);
      }
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(stats.executed, 64u);
  EXPECT_EQ(done.load(), 64u);
}

// --- grid parsing ---------------------------------------------------------

TEST(SpecParse, GridAxesAndDefaults) {
  const CampaignSpec spec = parse_campaign_spec("n=10,13;t=3,4;reps=2;seed=9;name=sweep");
  EXPECT_EQ(spec.name, "sweep");
  ASSERT_EQ(spec.algorithms.size(), 1u);  // default algo=op
  EXPECT_EQ(spec.algorithms[0], core::Algorithm::kOpRenaming);
  EXPECT_EQ(spec.n_values, (std::vector<int>{10, 13}));
  EXPECT_EQ(spec.t_values, (std::vector<int>{3, 4}));
  ASSERT_EQ(spec.adversaries.size(), 1u);  // default adversary=silent
  EXPECT_EQ(spec.adversaries[0], "silent");
  EXPECT_EQ(spec.repetitions, 2);
  EXPECT_EQ(spec.master_seed, 9u);
  EXPECT_TRUE(spec.skip_invalid);
}

TEST(SpecParse, RangesAndPairs) {
  const CampaignSpec spec = parse_campaign_spec("n=4..10/3;t=1..2;nt=22:7,31:10");
  EXPECT_EQ(spec.n_values, (std::vector<int>{4, 7, 10}));
  EXPECT_EQ(spec.t_values, (std::vector<int>{1, 2}));
  ASSERT_EQ(spec.systems.size(), 2u);
  EXPECT_EQ(spec.systems[0].n, 22);
  EXPECT_EQ(spec.systems[0].t, 7);
  EXPECT_EQ(spec.systems[1].n, 31);
  EXPECT_EQ(spec.systems[1].t, 10);
}

TEST(SpecParse, FlagsAndOverrides) {
  const CampaignSpec spec =
      parse_campaign_spec("nt=10:3;keep-invalid;no-validation;faults=2;extra=1;iterations=5");
  EXPECT_FALSE(spec.skip_invalid);
  EXPECT_FALSE(spec.options.validate_votes);
  EXPECT_EQ(spec.actual_faults, 2);
  EXPECT_EQ(spec.extra_rounds, 1);
}

TEST(SpecParse, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_campaign_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("n=10"), std::invalid_argument);          // t missing
  EXPECT_THROW(parse_campaign_spec("adversary=split"), std::invalid_argument);  // no systems
  EXPECT_THROW(parse_campaign_spec("n=10;t=3;bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("n=x;t=3"), std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("n=10..4;t=3"), std::invalid_argument);   // empty range
  EXPECT_THROW(parse_campaign_spec("algo=nope;n=10;t=3"), std::invalid_argument);
}

// --- cell expansion -------------------------------------------------------

TEST(ExpandCells, FiltersInvalidAndIndexesFullGrid) {
  CampaignSpec spec;
  spec.algorithms = {core::Algorithm::kOpRenaming};
  spec.n_values = {7, 10};
  spec.t_values = {2, 3};  // (7, 3) violates n > 3t
  spec.adversaries = {"silent"};
  const std::vector<CampaignCell> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 3u);
  for (const CampaignCell& cell : cells) {
    EXPECT_TRUE(cell_valid(cell.algorithm, cell.params)) << cell_key(cell);
  }
  // Indices are assigned after filtering: contiguous 0..k-1 so sharding
  // partitions exactly.
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);

  spec.skip_invalid = false;
  EXPECT_EQ(expand_cells(spec).size(), 4u);
}

// --- campaign engine ------------------------------------------------------

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "exp-test";
  spec.algorithms = {core::Algorithm::kOpRenaming};
  spec.n_values = {7, 10};
  spec.t_values = {2};
  spec.adversaries = {"silent", "idflood"};
  spec.repetitions = 3;
  spec.master_seed = 21;
  return spec;
}

std::string cells_text(const CampaignSpec& spec, const CampaignResult& result) {
  std::ostringstream os;
  write_campaign_cells(os, spec, result);
  return os.str();
}

TEST(Campaign, OutputIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = small_spec();
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 8;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(cells_text(spec, a), cells_text(spec, b));
  // Per-run records agree too (same derived seeds, same outcomes).
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].seed, b.runs[i].seed);
    EXPECT_EQ(a.runs[i].rounds, b.runs[i].rounds);
    EXPECT_EQ(a.runs[i].correct_messages, b.runs[i].correct_messages);
    EXPECT_EQ(a.runs[i].max_name, b.runs[i].max_name);
  }
}

TEST(Campaign, ShardUnionEqualsFullCampaign) {
  const CampaignSpec spec = small_spec();
  const CampaignResult full = run_campaign(spec, {});

  std::vector<std::string> shard_lines;
  std::size_t shard_cells = 0;
  for (int shard = 0; shard < 2; ++shard) {
    CampaignOptions options;
    options.shard_index = shard;
    options.shard_count = 2;
    const CampaignResult part = run_campaign(spec, options);
    shard_cells += part.cells.size();
    std::istringstream lines(cells_text(spec, part));
    for (std::string line; std::getline(lines, line);) shard_lines.push_back(line);
  }
  EXPECT_EQ(shard_cells, full.cells.size());

  std::vector<std::string> full_lines;
  std::istringstream lines(cells_text(spec, full));
  for (std::string line; std::getline(lines, line);) full_lines.push_back(line);
  std::sort(full_lines.begin(), full_lines.end());
  std::sort(shard_lines.begin(), shard_lines.end());
  EXPECT_EQ(shard_lines, full_lines);
}

TEST(Campaign, FailFastCancelsRemainingRuns) {
  // orderbreak with validation disabled reliably violates order
  // preservation; with threads=1 the cutoff is exact.
  CampaignSpec spec;
  spec.name = "fail-fast";
  spec.algorithms = {core::Algorithm::kOpRenaming};
  spec.n_values = {10};
  spec.t_values = {3};
  spec.adversaries = {"orderbreak"};
  spec.options.validate_votes = false;
  spec.repetitions = 40;
  spec.master_seed = 5;

  CampaignOptions options;
  options.threads = 1;
  options.fail_fast = true;
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_GE(result.violations, 1u);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.all_ok());
  EXPECT_LT(result.executed, result.runs.size());
  // Skipped runs are recorded as such, not silently dropped.
  std::size_t skipped = 0;
  for (const RunRecord& run : result.runs) skipped += run.executed ? 0 : 1;
  EXPECT_EQ(skipped, result.runs.size() - result.executed);
}

TEST(Campaign, HooksSeeEveryRunIndex) {
  const CampaignSpec spec = small_spec();
  const std::size_t total = expand_cells(spec).size() * static_cast<std::size_t>(spec.repetitions);
  std::vector<std::atomic<int>> configured(total);
  std::vector<std::atomic<int>> inspected(total);
  for (auto& c : configured) c.store(0);
  for (auto& c : inspected) c.store(0);

  CampaignOptions options;
  options.threads = 4;
  options.configure = [&configured](std::size_t run_index, core::ScenarioConfig&) {
    configured[run_index].fetch_add(1);
  };
  options.inspect = [&inspected](std::size_t run_index, const core::ScenarioResult& result) {
    EXPECT_TRUE(result.run.terminated);
    inspected[run_index].fetch_add(1);
  };
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_EQ(result.executed, total);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(configured[i].load(), 1) << "run " << i;
    EXPECT_EQ(inspected[i].load(), 1) << "run " << i;
  }
}

// --- concurrent JSONL writers ---------------------------------------------

TEST(Campaign, ConcurrentRunLinesNeverInterleave) {
  const CampaignSpec spec = small_spec();
  std::ostringstream runs;
  CampaignOptions options;
  options.threads = 8;
  options.runs_out = &runs;
  options.runs_bench = "exp-test";
  const CampaignResult result = run_campaign(spec, options);

  std::size_t lines = 0;
  std::istringstream in(runs.str());
  for (std::string line; std::getline(in, line); ++lines) {
    // Every line is a complete, well-formed run report: interleaved
    // writes would tear the schema prefix or the closing brace.
    EXPECT_EQ(line.rfind("{\"schema\":\"byzrename.run/1\"", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"bench\":\"exp-test\""), std::string::npos);
  }
  EXPECT_EQ(lines, result.executed);
}

TEST(RunReportSink, SharedMutexSerialisesManualWriters) {
  // Many threads each emit whole runs through sinks sharing one mutex —
  // the BenchReporter-under-campaign configuration.
  std::ostringstream out;
  std::mutex guard;
  std::vector<std::thread> writers;
  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 25;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&out, &guard, w] {
      obs::RunReportSink sink(out, "mt-test", &guard);
      obs::Telemetry telemetry;
      telemetry.add_sink(sink);
      telemetry.set_probes_enabled(false);
      for (int r = 0; r < kRunsPerThread; ++r) {
        core::ScenarioConfig config;
        config.algorithm = core::Algorithm::kOpRenaming;
        config.params = {.n = 7, .t = 2};
        config.adversary = "silent";
        config.seed = static_cast<std::uint64_t>(w * kRunsPerThread + r);
        config.telemetry = &telemetry;
        config.telemetry_label = "mt";
        const core::ScenarioResult result = core::run_scenario(config);
        EXPECT_TRUE(result.run.terminated);
      }
    });
  }
  for (std::thread& t : writers) t.join();

  std::size_t lines = 0;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line); ++lines) {
    EXPECT_EQ(line.rfind("{\"schema\":\"byzrename.run/1\"", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads) * kRunsPerThread);
}


// --- StreamingStats edge cases ---------------------------------------------

TEST(StreamingStats, ZeroSamplesYieldNeutralAggregate) {
  const StreamingStats stats(16, /*salt=*/3);
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.sum(), 0);
  EXPECT_EQ(stats.min(), 0);
  EXPECT_EQ(stats.max(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.quantile(0.5), 0);  // empty reservoir, not a crash
  EXPECT_EQ(stats.reservoir_size(), 0u);
}

TEST(StreamingStats, SingleSampleIsEveryStatistic) {
  StreamingStats stats(16, /*salt=*/3);
  stats.add(0, -42);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.min(), -42);
  EXPECT_EQ(stats.max(), -42);
  EXPECT_EQ(stats.sum(), -42);
  EXPECT_DOUBLE_EQ(stats.mean(), -42.0);
  for (const double q : {0.0, 0.5, 0.95, 1.0}) EXPECT_EQ(stats.quantile(q), -42);
}

TEST(StreamingStats, MergingAnEmptyAccumulatorIsIdentity) {
  StreamingStats stats(16, /*salt=*/3);
  stats.add(0, 5);
  stats.add(1, 9);
  const StreamingStats empty(16, /*salt=*/3);
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_EQ(stats.sum(), 14);
  StreamingStats other(16, /*salt=*/3);
  other.merge(stats);  // merge INTO empty works too
  EXPECT_EQ(other.count(), 2u);
  EXPECT_EQ(other.min(), 5);
  EXPECT_EQ(other.max(), 9);
}

// --- retry-then-quarantine containment -------------------------------------

CampaignSpec throwing_spec() {
  // Every run of this cell throws inside run_scenario (unknown adversary
  // name), standing in for an assert-failure in protocol code.
  CampaignSpec spec;
  spec.name = "quarantine-test";
  spec.algorithms = {core::Algorithm::kOpRenaming};
  spec.n_values = {7};
  spec.t_values = {2};
  spec.adversaries = {"no-such-strategy"};
  spec.repetitions = 3;
  spec.master_seed = 5;
  return spec;
}

TEST(Campaign, ThrowingRunsAreRetriedThenQuarantinedSweepSurvives) {
  CampaignOptions options;
  options.threads = 2;
  options.quarantine_retries = 1;
  const CampaignResult result = run_campaign(throwing_spec(), options);
  EXPECT_EQ(result.quarantined, 3u);
  EXPECT_EQ(result.violations, 0u);  // infrastructure failures are not verdicts
  EXPECT_FALSE(result.cancelled);
  EXPECT_FALSE(result.all_ok());
  ASSERT_EQ(result.runs.size(), 3u);
  for (const RunRecord& record : result.runs) {
    EXPECT_TRUE(record.quarantined);
    EXPECT_EQ(record.failure, FailureKind::kException);
    EXPECT_EQ(record.attempts, 2);  // 1 try + 1 retry, then quarantine
    EXPECT_NE(record.detail.find("no-such-strategy"), std::string::npos);
  }
  // Quarantined runs never enter the deterministic aggregates.
  EXPECT_EQ(result.aggregates.at(0).executed, 0u);
  EXPECT_EQ(result.aggregates.at(0).quarantined, 3u);
  EXPECT_EQ(result.aggregates.at(0).rounds.count(), 0u);
}

TEST(Campaign, HangingRunIsQuarantinedByWatchdog) {
  CampaignSpec spec = small_spec();
  spec.n_values = {7};
  spec.adversaries = {"silent"};
  spec.repetitions = 2;
  CampaignOptions options;
  options.threads = 2;
  options.quarantine_retries = 0;
  options.run_timeout_seconds = 0.02;
  // The injected hang: every round of rep 0 sleeps past the watchdog
  // deadline. Rep 1 runs clean and must be unaffected.
  options.configure = [](std::size_t run_index, core::ScenarioConfig& config) {
    if (run_index % 2 == 0) {
      config.observer = [](sim::Round, const sim::Network&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      };
    }
  };
  const CampaignResult result = run_campaign(spec, options);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_TRUE(result.runs[0].quarantined);
  EXPECT_EQ(result.runs[0].failure, FailureKind::kTimeout);
  EXPECT_EQ(result.runs[0].attempts, 1);
  EXPECT_FALSE(result.runs[1].quarantined);
  EXPECT_TRUE(result.runs[1].ok);
  EXPECT_EQ(result.quarantined, 1u);
}

TEST(Campaign, AllQuarantinedCellEmitsSchemaValidDeterministicOutput) {
  const CampaignSpec spec = throwing_spec();
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 4;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);
  // Exception-kind quarantines are deterministic, so the cell lines stay
  // bit-identical across thread counts even when every run failed.
  EXPECT_EQ(cells_text(spec, a), cells_text(spec, b));

  // Both documents parse as JSON and carry the quarantine accounting.
  std::istringstream lines(cells_text(spec, a));
  std::size_t cell_lines = 0;
  for (std::string line; std::getline(lines, line); ++cell_lines) {
    const obs::JsonValue cell = obs::parse_json(line);
    EXPECT_EQ(cell.at("schema").as_string(), "byzrename.campaign/1");
    EXPECT_EQ(cell.at("quarantined").as_int(), 3);
    EXPECT_EQ(cell.at("executed").as_int(), 0);
    EXPECT_EQ(cell.at("stats").at("rounds").at("count").as_int(), 0);
  }
  EXPECT_EQ(cell_lines, 1u);

  std::ostringstream summary_os;
  write_campaign_summary(summary_os, spec, a);
  const obs::JsonValue summary = obs::parse_json(summary_os.str());
  EXPECT_EQ(summary.at("schema").as_string(), "byzrename.campaign-summary/1");
  EXPECT_EQ(summary.at("quarantined").as_int(), 3);
  const obs::JsonValue::Array& quarantined_runs = summary.at("quarantined_runs").as_array();
  ASSERT_EQ(quarantined_runs.size(), 3u);
  for (const obs::JsonValue& entry : quarantined_runs) {
    EXPECT_EQ(entry.at("kind").as_string(), "exception");
    EXPECT_EQ(entry.at("attempts").as_int(), 2);
    EXPECT_EQ(entry.at("cell").as_string(), "op-renaming/n7/t2/no-such-strategy");
    (void)entry.at("seed").as_uint();  // present and integral
  }
}

TEST(Campaign, ViolationsAreResultsNeverRetried) {
  // orderbreak with validation disabled produces checker violations; the
  // engine must record them on attempt 1, not burn retries.
  CampaignSpec spec;
  spec.name = "violation-test";
  spec.algorithms = {core::Algorithm::kOpRenaming};
  spec.n_values = {10};
  spec.t_values = {3};
  spec.adversaries = {"orderbreak"};
  spec.repetitions = 6;
  spec.master_seed = 3;
  spec.options.validate_votes = false;
  CampaignOptions options;
  options.threads = 2;
  options.quarantine_retries = 3;
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_GT(result.violations, 0u);
  for (const RunRecord& record : result.runs) {
    EXPECT_EQ(record.attempts, 1);
    EXPECT_FALSE(record.quarantined);
    if (!record.ok) {
      EXPECT_EQ(record.failure, FailureKind::kViolation);
      EXPECT_FALSE(record.violation_classes.empty());
    }
  }
}

// --- Per-round cell aggregation (--round-stats) ---------------------------

TEST(Campaign, RoundStatsOffByDefaultKeepsOutputUnchanged) {
  const CampaignSpec spec = small_spec();
  const CampaignResult result = run_campaign(spec, {});
  for (const CellAggregate& aggregate : result.aggregates) {
    EXPECT_TRUE(aggregate.per_round.empty());
  }
  EXPECT_EQ(cells_text(spec, result).find("per_round"), std::string::npos);
}

TEST(Campaign, RoundStatsAggregateByteIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = small_spec();
  CampaignOptions serial;
  serial.threads = 1;
  serial.round_stats = true;
  CampaignOptions parallel;
  parallel.threads = 8;
  parallel.round_stats = true;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);
  const std::string text_a = cells_text(spec, a);
  EXPECT_EQ(text_a, cells_text(spec, b));
  EXPECT_NE(text_a.find("\"per_round\""), std::string::npos);
}

TEST(Campaign, RoundStatsSeriesAreConsistentWithCellTotals) {
  const CampaignSpec spec = small_spec();
  CampaignOptions options;
  options.round_stats = true;
  const CampaignResult result = run_campaign(spec, options);
  ASSERT_FALSE(result.aggregates.empty());
  for (std::size_t slot = 0; slot < result.aggregates.size(); ++slot) {
    const CellAggregate& aggregate = result.aggregates[slot];
    ASSERT_FALSE(aggregate.per_round.empty());
    // The per-round message series sums back to the cell's total message
    // aggregate exactly (integer sums, no averaging involved). A round
    // some runs never reached carries count < executed, never more.
    std::int64_t sum_over_rounds = 0;
    for (const CellAggregate::RoundStats& round : aggregate.per_round) {
      ASSERT_GE(round.messages.count(), 1u);
      ASSERT_LE(round.messages.count(), aggregate.executed);
      sum_over_rounds += round.messages.sum();
    }
    EXPECT_EQ(sum_over_rounds, aggregate.messages.sum());
  }

  // The emitted JSONL carries one per_round entry per executed round,
  // parseable by the production JSON reader.
  std::istringstream lines(cells_text(spec, result));
  std::string line;
  std::size_t checked = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue record = obs::parse_json(line);
    const obs::JsonValue& per_round = record.at("per_round");
    ASSERT_FALSE(per_round.as_array().empty());
    std::int64_t expected_round = 1;
    for (const obs::JsonValue& entry : per_round.as_array()) {
      EXPECT_EQ(entry.at("round").as_int(), expected_round++);
      EXPECT_GE(entry.at("messages").at("count").as_int(), 1);
      EXPECT_TRUE(entry.find("bits") != nullptr);
      EXPECT_TRUE(entry.find("correct_messages") != nullptr);
      EXPECT_TRUE(entry.find("equivocating_sends") != nullptr);
    }
    ++checked;
  }
  EXPECT_EQ(checked, result.aggregates.size());
}

}  // namespace
}  // namespace byzrename::exp
