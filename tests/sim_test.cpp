#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "sim/network.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/runner.h"

namespace byzrename::sim {
namespace {

/// Records everything it hears; broadcasts its id each round.
class EchoRecorder final : public ProcessBehavior {
 public:
  explicit EchoRecorder(Id id, int rounds) : id_(id), rounds_(rounds) {}

  void on_send(Round, Outbox& out) override { out.broadcast(IdMsg{id_}); }
  void on_receive(Round round, const Inbox& inbox) override {
    last_round_ = round;
    inboxes.push_back(inbox);
  }
  [[nodiscard]] bool done() const override { return last_round_ >= rounds_; }
  [[nodiscard]] std::optional<Name> decision() const override { return id_; }

  std::vector<Inbox> inboxes;

 private:
  Id id_;
  int rounds_;
  Round last_round_ = 0;
};

/// Sends one targeted message to destination 0 each round.
class TargetedSender final : public ProcessBehavior {
 public:
  void on_send(Round, Outbox& out) override { out.send_to(0, IdMsg{99}); }
  void on_receive(Round, const Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }
};

Network make_network(int n, int rounds, std::vector<bool> byzantine = {},
                     bool scramble = true, std::uint64_t seed = 7) {
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors;
  for (int i = 0; i < n; ++i) behaviors.push_back(std::make_unique<EchoRecorder>(i + 1, rounds));
  if (byzantine.empty()) byzantine.assign(static_cast<std::size_t>(n), false);
  return Network(std::move(behaviors), std::move(byzantine), Rng(seed), scramble);
}

TEST(Outbox, CorrectProcessCannotSendTargeted) {
  Outbox out(/*targeted_allowed=*/false);
  EXPECT_THROW(out.send_to(1, IdMsg{1}), std::logic_error);
  out.broadcast(IdMsg{1});
  EXPECT_EQ(out.entries().size(), 1u);
}

TEST(Outbox, ByzantineProcessMaySendTargeted) {
  Outbox out(/*targeted_allowed=*/true);
  out.send_to(2, IdMsg{1});
  ASSERT_EQ(out.entries().size(), 1u);
  EXPECT_EQ(out.entries()[0].dest, 2);
}

TEST(Network, BroadcastReachesEveryProcessIncludingSelf) {
  Network net = make_network(5, 1);
  net.run_round(1);
  for (ProcessIndex i = 0; i < 5; ++i) {
    const auto& recorder = dynamic_cast<const EchoRecorder&>(net.behavior(i));
    ASSERT_EQ(recorder.inboxes.size(), 1u);
    EXPECT_EQ(recorder.inboxes[0].size(), 5u);  // all peers + self-loop
    std::set<Id> ids;
    for (const Delivery& d : recorder.inboxes[0]) {
      ids.insert(std::get<IdMsg>(*d.payload).id);
    }
    EXPECT_EQ(ids.size(), 5u);
  }
}

TEST(Network, LinkLabelsAreDistinctAndStable) {
  Network net = make_network(6, 2);
  net.run_round(1);
  net.run_round(2);
  for (ProcessIndex i = 0; i < 6; ++i) {
    const auto& recorder = dynamic_cast<const EchoRecorder&>(net.behavior(i));
    // Each round delivers over 6 distinct link labels 0..5.
    for (const Inbox& inbox : recorder.inboxes) {
      std::set<LinkIndex> links;
      for (const Delivery& d : inbox) links.insert(d.link);
      EXPECT_EQ(links.size(), 6u);
      EXPECT_EQ(*links.begin(), 0);
      EXPECT_EQ(*links.rbegin(), 5);
    }
    // Stability: the same id arrives on the same link in both rounds.
    std::map<LinkIndex, Id> first_round;
    for (const Delivery& d : recorder.inboxes[0]) {
      first_round[d.link] = std::get<IdMsg>(*d.payload).id;
    }
    for (const Delivery& d : recorder.inboxes[1]) {
      EXPECT_EQ(first_round.at(d.link), std::get<IdMsg>(*d.payload).id);
    }
  }
}

TEST(Network, ScramblingPermutesLinksPerReceiver) {
  // With scrambling on and enough processes, at least one receiver must
  // see some sender on a link different from the sender's index.
  Network net = make_network(8, 1, {}, /*scramble=*/true, /*seed=*/123);
  bool any_permuted = false;
  for (ProcessIndex r = 0; r < 8; ++r) {
    for (ProcessIndex s = 0; s < 8; ++s) {
      if (net.link_of(r, s) != s) any_permuted = true;
    }
  }
  EXPECT_TRUE(any_permuted);
}

TEST(Network, IdentityLinksWhenScramblingDisabled) {
  Network net = make_network(5, 1, {}, /*scramble=*/false);
  for (ProcessIndex r = 0; r < 5; ++r) {
    for (ProcessIndex s = 0; s < 5; ++s) {
      EXPECT_EQ(net.link_of(r, s), s);
    }
  }
}

TEST(Network, TargetedSendReachesOnlyItsDestination) {
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors;
  behaviors.push_back(std::make_unique<EchoRecorder>(1, 1));
  behaviors.push_back(std::make_unique<EchoRecorder>(2, 1));
  behaviors.push_back(std::make_unique<TargetedSender>());
  Network net(std::move(behaviors), {false, false, true}, Rng(1));
  net.run_round(1);
  const auto& p0 = dynamic_cast<const EchoRecorder&>(net.behavior(0));
  const auto& p1 = dynamic_cast<const EchoRecorder&>(net.behavior(1));
  EXPECT_EQ(p0.inboxes[0].size(), 3u);  // two broadcasts (incl. self) + targeted
  EXPECT_EQ(p1.inboxes[0].size(), 2u);
}

TEST(Network, MetricsCountBroadcastAsNMessages) {
  Network net = make_network(4, 2);
  net.run_round(1);
  const Metrics& m = net.metrics();
  ASSERT_EQ(m.per_round().size(), 1u);
  // 4 broadcasts x 4 receivers.
  EXPECT_EQ(m.per_round()[0].messages, 16u);
  EXPECT_EQ(m.per_round()[0].correct_messages, 16u);
  EXPECT_GT(m.per_round()[0].bits, 0u);
  EXPECT_EQ(m.per_round()[0].equivocating_sends, 0u);
  EXPECT_EQ(m.total_messages(), 16u);
}

TEST(Network, MetricsSeparateByzantineTraffic) {
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors;
  behaviors.push_back(std::make_unique<EchoRecorder>(1, 1));
  behaviors.push_back(std::make_unique<TargetedSender>());
  Network net(std::move(behaviors), {false, true}, Rng(1));
  net.run_round(1);
  EXPECT_EQ(net.metrics().per_round()[0].messages, 3u);          // broadcast(2) + targeted(1)
  EXPECT_EQ(net.metrics().per_round()[0].correct_messages, 2u);  // broadcast only
  EXPECT_EQ(net.metrics().per_round()[0].equivocating_sends, 1u);
}

TEST(Metrics, RunningTotalsMatchPerRoundSums) {
  Metrics m;
  m.add_round({.messages = 10, .bits = 800, .correct_messages = 7, .correct_bits = 560,
               .equivocating_sends = 2});
  m.add_round({.messages = 4, .bits = 100, .correct_messages = 4, .correct_bits = 100,
               .equivocating_sends = 0});
  m.note_message_bits(96, /*correct_sender=*/false);
  m.note_message_bits(80, /*correct_sender=*/true);

  std::size_t messages = 0, bits = 0, correct_messages = 0, correct_bits = 0, equivocating = 0;
  for (const RoundMetrics& r : m.per_round()) {
    messages += r.messages;
    bits += r.bits;
    correct_messages += r.correct_messages;
    correct_bits += r.correct_bits;
    equivocating += r.equivocating_sends;
  }
  EXPECT_EQ(m.rounds(), 2u);
  EXPECT_EQ(m.total_messages(), messages);
  EXPECT_EQ(m.total_bits(), bits);
  EXPECT_EQ(m.total_correct_messages(), correct_messages);
  EXPECT_EQ(m.total_correct_bits(), correct_bits);
  EXPECT_EQ(m.total_equivocating_sends(), equivocating);
  EXPECT_EQ(m.max_message_bits(), 96u);
  EXPECT_EQ(m.max_correct_message_bits(), 80u);
}

TEST(Metrics, TotalsStayConsistentAfterRealRun) {
  Network net = make_network(5, 3);
  run_to_completion(net, 5);
  const Metrics& m = net.metrics();
  std::size_t messages = 0, bits = 0;
  for (const RoundMetrics& r : m.per_round()) {
    messages += r.messages;
    bits += r.bits;
  }
  EXPECT_EQ(m.total_messages(), messages);
  EXPECT_EQ(m.total_bits(), bits);
}

TEST(Network, RejectsMismatchedConstruction) {
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors;
  behaviors.push_back(std::make_unique<EchoRecorder>(1, 1));
  EXPECT_THROW(Network(std::move(behaviors), {false, true}, Rng(1)), std::invalid_argument);
  std::vector<std::unique_ptr<ProcessBehavior>> empty;
  EXPECT_THROW(Network(std::move(empty), {}, Rng(1)), std::invalid_argument);
}

TEST(Runner, StopsWhenAllCorrectDone) {
  Network net = make_network(3, 2);
  const RunResult result = run_to_completion(net, 10);
  EXPECT_TRUE(result.terminated);
  EXPECT_EQ(result.rounds, 2);
  ASSERT_EQ(result.decisions.size(), 3u);
  EXPECT_EQ(result.decisions[0], 1);
  EXPECT_EQ(result.decisions[2], 3);
}

TEST(Runner, ReportsNonTerminationWhenBudgetExhausted) {
  Network net = make_network(3, 100);
  const RunResult result = run_to_completion(net, 5);
  EXPECT_FALSE(result.terminated);
  EXPECT_EQ(result.rounds, 5);
}

TEST(Runner, ByzantineDecisionsAreSuppressed) {
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors;
  behaviors.push_back(std::make_unique<EchoRecorder>(1, 1));
  behaviors.push_back(std::make_unique<EchoRecorder>(2, 1));
  Network net(std::move(behaviors), {false, true}, Rng(1));
  const RunResult result = run_to_completion(net, 3);
  EXPECT_TRUE(result.decisions[0].has_value());
  EXPECT_FALSE(result.decisions[1].has_value());
}

TEST(Runner, ObserverSeesEveryRound) {
  Network net = make_network(3, 3);
  std::vector<Round> seen;
  const RunResult result = run_to_completion(net, 10, [&seen](Round r, const Network&) {
    seen.push_back(r);
  });
  EXPECT_TRUE(result.terminated);
  EXPECT_EQ(seen, (std::vector<Round>{1, 2, 3}));
}

TEST(Payload, WireBitsReflectContentSize) {
  EXPECT_LT(wire_bits(IdMsg{1}), wire_bits(RanksMsg{{{1, numeric::Rational(1)}}}));
  RanksMsg two{{{1, numeric::Rational(1)}, {2, numeric::Rational(2)}}};
  RanksMsg one{{{1, numeric::Rational(1)}}};
  EXPECT_GT(wire_bits(two), wire_bits(one));
  MultiEchoMsg echo{{1, 2, 3}};
  EXPECT_EQ(wire_bits(echo), 8u + 32u + 3u * 64u);
}

TEST(Payload, DescribeNamesEveryAlternative) {
  EXPECT_EQ(describe(IdMsg{7}), "Id(7)");
  EXPECT_EQ(describe(EchoMsg{7}), "Echo(7)");
  EXPECT_EQ(describe(ReadyMsg{7}), "Ready(7)");
  EXPECT_NE(describe(RanksMsg{}).find("Ranks"), std::string::npos);
  EXPECT_NE(describe(MultiEchoMsg{}).find("MultiEcho"), std::string::npos);
  EXPECT_NE(describe(AAValueMsg{numeric::Rational::of(1, 2)}).find("1/2"), std::string::npos);
  EXPECT_NE(describe(WordMsg{1, {2, 3}}).find("Word"), std::string::npos);
}

}  // namespace
}  // namespace byzrename::sim
