// Boundary configurations: the smallest legal systems, extreme ids from
// the far end of the Nmax namespace, zero-fault modes of every
// algorithm, and bit-for-bit determinism of whole runs.

#include <gtest/gtest.h>

#include <limits>

#include "core/harness.h"

namespace byzrename::core {
namespace {

TEST(EdgeCase, SingleProcessSystemRenamesItself) {
  ScenarioConfig config;
  config.params = {.n = 1, .t = 0};
  config.actual_faults = 0;
  const ScenarioResult result = run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.named.size(), 1u);
  EXPECT_EQ(result.named[0].new_name, 1);
}

TEST(EdgeCase, SmallestByzantineSystem) {
  // N = 4, t = 1 is the smallest system with a Byzantine fault.
  ScenarioConfig config;
  config.params = {.n = 4, .t = 1};
  config.adversary = "asymflood";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_LE(result.report.max_name, 4);  // N+t-1 = 4
}

TEST(EdgeCase, IdsAtTheTopOfTheNamespace) {
  // Nmax is huge; ids near 2^62 must flow through ranks, votes and the
  // codec without loss (exact rationals make this a non-event — that is
  // the point of the test).
  const sim::Id top = (std::int64_t{1} << 62);
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.correct_ids = {top - 4, top - 3, top - 2, top - 1, top};
  config.adversary = "split";
  const ScenarioResult result = run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.named.back().original_id, top);
  EXPECT_LE(result.report.max_name, 8);
}

TEST(EdgeCase, MixedMagnitudeIds) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.correct_ids = {1, 2, 1'000'000, (std::int64_t{1} << 40), (std::int64_t{1} << 55)};
  config.adversary = "suppress";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(EdgeCase, EveryAlgorithmHandlesZeroFaultBudget) {
  for (const Algorithm algorithm :
       {Algorithm::kOpRenaming, Algorithm::kFastRenaming, Algorithm::kCrashRenaming,
        Algorithm::kConsensusRenaming, Algorithm::kBitRenaming, Algorithm::kTranslatedRenaming}) {
    ScenarioConfig config;
    config.params = {.n = 5, .t = 0};
    config.algorithm = algorithm;
    config.actual_faults = 0;
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.validity) << to_string(algorithm) << ": " << result.report.detail;
    EXPECT_TRUE(result.report.termination) << to_string(algorithm);
    EXPECT_TRUE(result.report.uniqueness) << to_string(algorithm);
    if (algorithm != Algorithm::kBitRenaming) {
      EXPECT_TRUE(result.report.order_preservation) << to_string(algorithm);
    }
  }
}

TEST(EdgeCase, RunsAreBitForBitDeterministic) {
  auto run_once = [] {
    ScenarioConfig config;
    config.params = {.n = 10, .t = 3};
    config.adversary = "chaos";  // the most randomized strategy
    config.seed = 99;
    return run_scenario(config);
  };
  const ScenarioResult a = run_once();
  const ScenarioResult b = run_once();
  EXPECT_EQ(a.run.rounds, b.run.rounds);
  EXPECT_EQ(a.run.metrics.total_messages(), b.run.metrics.total_messages());
  EXPECT_EQ(a.run.metrics.total_bits(), b.run.metrics.total_bits());
  ASSERT_EQ(a.named.size(), b.named.size());
  for (std::size_t i = 0; i < a.named.size(); ++i) {
    EXPECT_EQ(a.named[i].new_name, b.named[i].new_name);
  }
}

TEST(EdgeCase, DifferentSeedsChangeLinkScrambling) {
  auto run_with_seed = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.params = {.n = 10, .t = 3};
    config.adversary = "random";
    config.seed = seed;
    return run_scenario(config);
  };
  // Different seeds give different adversary traffic; metrics differ
  // with overwhelming probability.
  const ScenarioResult a = run_with_seed(1);
  const ScenarioResult b = run_with_seed(2);
  EXPECT_NE(a.run.metrics.total_bits(), b.run.metrics.total_bits());
}

TEST(EdgeCase, ZeroIterationOverrideDecidesAfterSelection) {
  ScenarioConfig config;
  config.params = {.n = 10, .t = 3};
  config.actual_faults = 0;
  config.options.approximation_iterations = 0;
  const ScenarioResult result = run_scenario(config);
  // With no actual faults, views agree after selection; zero voting
  // rounds still yield a correct renaming.
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.run.rounds, 4);
}

TEST(EdgeCase, ExtraIterationsNeverHurt) {
  ScenarioConfig config;
  config.params = {.n = 13, .t = 4};
  config.adversary = "asymflood";
  config.options.approximation_iterations = default_approximation_iterations(4) + 5;
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.run.rounds, 4 + 9 + 5);
}

TEST(EdgeCase, MaximalFaultDensityAcrossScales) {
  // t at its resilience maximum for growing N.
  for (const int n : {4, 7, 10, 13, 16, 19, 22}) {
    const int t = (n - 1) / 3;
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "asymflood";
    config.seed = static_cast<std::uint64_t>(n);
    const ScenarioResult result = run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << "n=" << n << ": " << result.report.detail;
  }
}

}  // namespace
}  // namespace byzrename::core
