#include "translate/crash_to_byzantine.h"

#include <gtest/gtest.h>

#include "baselines/crash_renaming.h"
#include "core/harness.h"
#include "sim/codec.h"

namespace byzrename::translate {
namespace {

using core::Algorithm;
using core::ScenarioConfig;
using core::ScenarioResult;

TEST(Translation, NoFaultsRenamesLikeTheInnerProtocol) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.algorithm = Algorithm::kTranslatedRenaming;
  config.actual_faults = 0;
  const ScenarioResult result = core::run_scenario(config);
  ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
  // Inner [14]-style renaming with identical views: names are 1..m.
  for (std::size_t i = 0; i < result.named.size(); ++i) {
    EXPECT_EQ(result.named[i].new_name, static_cast<sim::Name>(i + 1));
  }
}

TEST(Translation, DoublesTheStepCount) {
  ScenarioConfig config;
  config.params = {.n = 9, .t = 2};
  config.algorithm = Algorithm::kTranslatedRenaming;
  config.adversary = "silent";
  const ScenarioResult translated = core::run_scenario(config);
  EXPECT_TRUE(translated.report.all_ok()) << translated.report.detail;

  ScenarioConfig crash = config;
  crash.algorithm = Algorithm::kCrashRenaming;
  const ScenarioResult native = core::run_scenario(crash);
  EXPECT_EQ(translated.run.rounds, 2 * native.run.rounds);
}

TEST(Translation, MessageComplexityBlowsUpByAFactorOfN) {
  // The echo round re-broadcasts every cast: ~N real messages per
  // simulated message. This measured blowup is the paper's first
  // objection to the translation approach (Section I).
  ScenarioConfig config;
  config.params = {.n = 9, .t = 2};
  config.algorithm = Algorithm::kTranslatedRenaming;
  config.adversary = "silent";
  const ScenarioResult translated = core::run_scenario(config);

  ScenarioConfig crash = config;
  crash.algorithm = Algorithm::kCrashRenaming;
  const ScenarioResult native = core::run_scenario(crash);

  const double blowup = static_cast<double>(translated.run.metrics.total_correct_messages()) /
                        static_cast<double>(native.run.metrics.total_correct_messages());
  EXPECT_GT(blowup, 0.5 * 9);  // at least N/2 in practice
}

TEST(Translation, SurvivesCrashFaults) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig config;
    config.params = {.n = 9, .t = 2};
    config.algorithm = Algorithm::kTranslatedRenaming;
    config.adversary = "crash";
    config.seed = seed;
    const ScenarioResult result = core::run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << "seed " << seed << ": " << result.report.detail;
  }
}

TEST(Translation, SurvivesByzantineLiars) {
  // The whole point of the translation: the inner crash-only protocol,
  // which random Byzantine lies would corrupt directly, stays correct
  // behind the echo filter.
  for (const char* adversary : {"silent", "random"}) {
    ScenarioConfig config;
    config.params = {.n = 9, .t = 2};
    config.algorithm = Algorithm::kTranslatedRenaming;
    config.adversary = adversary;
    config.seed = 3;
    const ScenarioResult result = core::run_scenario(config);
    EXPECT_TRUE(result.report.all_ok()) << adversary << ": " << result.report.detail;
    EXPECT_LE(result.report.max_name, 9);
  }
}

TEST(Translation, EquivocatingCastsNeverSplitDeliveries) {
  // Unit-level: a Byzantine sender casting two versions of its round-r
  // message can get at most one delivered (the other lacks a quorum).
  const sim::SystemParams params{.n = 4, .t = 1};

  /// Inner probe that records what it receives.
  class Probe final : public sim::ProcessBehavior {
   public:
    void on_send(sim::Round, sim::Outbox&) override {}
    void on_receive(sim::Round, const sim::Inbox& inbox) override { received = inbox; }
    [[nodiscard]] bool done() const override { return false; }
    sim::Inbox received;
  };

  auto probe = std::make_unique<Probe>();
  Probe* probe_view = probe.get();
  TranslatedProcess translated(params, std::move(probe), /*inner_steps=*/3);

  const std::vector<std::uint8_t> version_a = sim::encode(sim::IdMsg{111});
  const std::vector<std::uint8_t> version_b = sim::encode(sim::IdMsg{222});

  // Real round 1 (cast): link 2 is the equivocator; we are told version A.
  sim::Inbox cast_round;
  cast_round.push_back({2, sim::WrappedCastMsg{1, version_a}});
  translated.on_receive(1, cast_round);

  // Real round 2 (echo): two links echo version A, two echo version B —
  // neither reaches N-t = 3.
  sim::Inbox echo_round;
  echo_round.push_back({0, sim::WrappedEchoMsg{2, 1, version_a}});
  echo_round.push_back({1, sim::WrappedEchoMsg{2, 1, version_a}});
  echo_round.push_back({2, sim::WrappedEchoMsg{2, 1, version_b}});
  echo_round.push_back({3, sim::WrappedEchoMsg{2, 1, version_b}});
  translated.on_receive(2, echo_round);
  EXPECT_TRUE(probe_view->received.empty());
  EXPECT_EQ(translated.undelivered_casts(), 2);

  // Next simulated round: version A gets a proper quorum -> delivered,
  // attributed to link 2.
  sim::Inbox cast_round_2;
  cast_round_2.push_back({2, sim::WrappedCastMsg{2, version_a}});
  translated.on_receive(3, cast_round_2);
  sim::Inbox echo_round_2;
  for (sim::LinkIndex link = 0; link < 3; ++link) {
    echo_round_2.push_back({link, sim::WrappedEchoMsg{2, 2, version_a}});
  }
  translated.on_receive(4, echo_round_2);
  ASSERT_EQ(probe_view->received.size(), 1u);
  EXPECT_EQ(probe_view->received[0].link, 2);
  EXPECT_EQ(std::get<sim::IdMsg>(*probe_view->received[0].payload).id, 111);
}

TEST(Translation, GarbageBlobsWithQuorumAreDropped) {
  const sim::SystemParams params{.n = 4, .t = 1};
  class Probe final : public sim::ProcessBehavior {
   public:
    void on_send(sim::Round, sim::Outbox&) override {}
    void on_receive(sim::Round, const sim::Inbox& inbox) override { received = inbox; }
    [[nodiscard]] bool done() const override { return false; }
    sim::Inbox received;
  };
  auto probe = std::make_unique<Probe>();
  Probe* probe_view = probe.get();
  TranslatedProcess translated(params, std::move(probe), 2);

  const std::vector<std::uint8_t> garbage{0xFF, 0xFF, 0xFF};
  translated.on_receive(1, {});
  sim::Inbox echo_round;
  for (sim::LinkIndex link = 0; link < 4; ++link) {
    echo_round.push_back({link, sim::WrappedEchoMsg{1, 1, garbage}});
  }
  translated.on_receive(2, echo_round);
  EXPECT_TRUE(probe_view->received.empty());
  EXPECT_EQ(translated.undelivered_casts(), 1);
}

TEST(Translation, OutOfRangeSenderInEchoIsIgnored) {
  const sim::SystemParams params{.n = 4, .t = 1};
  class Probe final : public sim::ProcessBehavior {
   public:
    void on_send(sim::Round, sim::Outbox&) override {}
    void on_receive(sim::Round, const sim::Inbox& inbox) override { received = inbox; }
    [[nodiscard]] bool done() const override { return false; }
    sim::Inbox received;
  };
  auto probe = std::make_unique<Probe>();
  Probe* probe_view = probe.get();
  TranslatedProcess translated(params, std::move(probe), 2);

  const std::vector<std::uint8_t> blob = sim::encode(sim::IdMsg{7});
  translated.on_receive(1, {});
  sim::Inbox echo_round;
  for (sim::LinkIndex link = 0; link < 4; ++link) {
    echo_round.push_back({link, sim::WrappedEchoMsg{/*sender=*/99, 1, blob}});
  }
  translated.on_receive(2, echo_round);
  EXPECT_TRUE(probe_view->received.empty());
}

// ---------------------------------------------------------------------------
// The translation's documented limitation, probed: a Byzantine sender can
// produce *repeated partial* deliveries (omission behaviour, not a clean
// crash) by steering the echo quorum differently every simulated round.
// The full translations of [3]/[13] pay extra machinery (history echoes)
// to close exactly this; ours deliberately does not, because measuring
// the cheap version's cost is bench_t8's point. This test documents that
// the wrapped AA-style protocol survives the omission pattern anyway —
// trimmed averaging tolerates per-round absence.
// ---------------------------------------------------------------------------

namespace {

class OmissionAttacker final : public sim::ProcessBehavior {
 public:
  OmissionAttacker(sim::SystemParams params, sim::Id claimed_id, int correct_count)
      : params_(params), claimed_id_(claimed_id), correct_count_(correct_count) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    const sim::Round sim_round = (round + 1) / 2;
    const bool is_cast_round = round % 2 == 1;
    const sim::Payload inner_payload =
        sim_round == 1 ? sim::Payload(sim::IdMsg{claimed_id_})
                       : sim::Payload(sim::RanksMsg{{{claimed_id_, numeric::Rational(1)}}});
    const std::vector<std::uint8_t> blob = sim::encode(inner_payload);
    if (is_cast_round) {
      // Rotate which half hears the cast, round after round.
      const int offset = static_cast<int>(sim_round) % correct_count_;
      for (int c = 0; c < correct_count_ / 2; ++c) {
        out.send_to((offset + c) % correct_count_, sim::WrappedCastMsg{sim_round, blob});
      }
    } else {
      // Echo own cast toward a rotating subset, pushing it just past the
      // quorum there and nowhere else.
      const int offset = static_cast<int>(sim_round) % correct_count_;
      for (int c = 0; c < correct_count_ / 2 + params_.t; ++c) {
        out.send_to((offset + c) % correct_count_,
                    sim::WrappedEchoMsg{/*sender=*/correct_count_, sim_round, blob});
      }
    }
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  sim::SystemParams params_;
  sim::Id claimed_id_;
  int correct_count_;
};

TEST(Translation, SurvivesRepeatedOmissionSteering) {
  const sim::SystemParams params{.n = 9, .t = 2};
  const int correct_count = params.n - params.t;
  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  std::vector<bool> byzantine;
  std::vector<sim::Id> ids;
  for (int i = 0; i < correct_count; ++i) {
    const sim::Id id = 100 + 10 * i;
    ids.push_back(id);
    auto inner = std::make_unique<baselines::CrashRenamingProcess>(params, id);
    const int steps = inner->total_steps();
    behaviors.push_back(
        std::make_unique<TranslatedProcess>(params, std::move(inner), steps));
    byzantine.push_back(false);
  }
  for (int i = 0; i < params.t; ++i) {
    behaviors.push_back(std::make_unique<OmissionAttacker>(params, 500 + i, correct_count));
    byzantine.push_back(true);
  }
  // Authenticated links: scramble off.
  sim::Network net(std::move(behaviors), std::move(byzantine), sim::Rng(2), false);
  const sim::RunResult run = sim::run_to_completion(
      net, TranslatedProcess::real_steps(1 + core::default_approximation_iterations(params.t)));
  ASSERT_TRUE(run.terminated);

  std::vector<core::NamedProcess> named;
  for (int i = 0; i < correct_count; ++i) named.push_back({ids[static_cast<std::size_t>(i)], run.decisions[static_cast<std::size_t>(i)]});
  const core::CheckReport report = core::check_renaming(named, params.n);
  EXPECT_TRUE(report.all_ok()) << report.detail;
}

}  // namespace

}  // namespace
}  // namespace byzrename::translate
