// Broad parameterized property sweep: Theorem IV.10, Theorem V.3 and
// Theorem VI.3 checked end-to-end over a grid of (N, t, adversary, seed).
// These are the paper's headline guarantees; everything else in the test
// suite exists so that a failure here can be localized.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/harness.h"

namespace byzrename::core {
namespace {

using SweepParam = std::tuple<int /*n*/, int /*t*/, std::string /*adversary*/, int /*seed*/>;

class OpRenamingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OpRenamingSweep, TheoremIV10) {
  const auto& [n, t, adversary, seed] = GetParam();
  ASSERT_GT(n, 3 * t);
  ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.algorithm = Algorithm::kOpRenaming;
  config.adversary = adversary;
  config.seed = static_cast<std::uint64_t>(seed);
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok())
      << "n=" << n << " t=" << t << " adv=" << adversary << " seed=" << seed << ": "
      << result.report.detail;
  EXPECT_LE(result.report.max_name, t > 0 ? n + t - 1 : n);
  EXPECT_EQ(result.run.rounds, expected_steps(Algorithm::kOpRenaming, config.params));
}

INSTANTIATE_TEST_SUITE_P(
    MinimalResilience, OpRenamingSweep,
    ::testing::Combine(::testing::Values(4), ::testing::Values(1),
                       ::testing::Values("silent", "idflood", "asymflood", "split", "skew",
                                         "suppress", "hybrid", "orderbreak", "random", "invalid",
                                         "crash"),
                       ::testing::Values(1, 2, 3)));

INSTANTIATE_TEST_SUITE_P(
    TightResilienceT2, OpRenamingSweep,
    ::testing::Combine(::testing::Values(7), ::testing::Values(2),
                       ::testing::Values("silent", "idflood", "asymflood", "split", "skew",
                                         "suppress", "hybrid", "orderbreak", "random", "invalid",
                                         "crash"),
                       ::testing::Values(1, 2, 3)));

INSTANTIATE_TEST_SUITE_P(
    TightResilienceT4, OpRenamingSweep,
    ::testing::Combine(::testing::Values(13), ::testing::Values(4),
                       ::testing::Values("silent", "idflood", "asymflood", "split", "skew",
                                         "suppress", "hybrid", "orderbreak", "random"),
                       ::testing::Values(1, 2)));

INSTANTIATE_TEST_SUITE_P(
    LooseResilience, OpRenamingSweep,
    ::testing::Combine(::testing::Values(16, 25), ::testing::Values(2, 3),
                       ::testing::Values("idflood", "asymflood", "split", "suppress", "hybrid",
                                         "orderbreak"),
                       ::testing::Values(1, 2)));

INSTANTIATE_TEST_SUITE_P(
    LargerSystems, OpRenamingSweep,
    ::testing::Combine(::testing::Values(40), ::testing::Values(13),
                       ::testing::Values("idflood", "asymflood", "split", "hybrid"),
                       ::testing::Values(1)));

class ConstantTimeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConstantTimeSweep, TheoremV3) {
  const auto& [n, t, adversary, seed] = GetParam();
  ASSERT_GT(n, t * t + 2 * t) << "outside the constant-time regime";
  ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.algorithm = Algorithm::kOpRenamingConstantTime;
  config.adversary = adversary;
  config.seed = static_cast<std::uint64_t>(seed);
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok())
      << "n=" << n << " t=" << t << " adv=" << adversary << ": " << result.report.detail;
  // Strong renaming: namespace exactly N (Lemma V.1).
  EXPECT_LE(result.report.max_name, n);
  // Exactly 8 steps (Theorem V.3).
  EXPECT_EQ(result.run.rounds, 8);
}

INSTANTIATE_TEST_SUITE_P(
    Regime, ConstantTimeSweep,
    ::testing::Combine(::testing::Values(16, 24, 36), ::testing::Values(1, 2, 3),
                       ::testing::Values("silent", "idflood", "split", "skew", "suppress"),
                       ::testing::Values(1, 2)));

class FastRenamingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FastRenamingSweep, TheoremVI3) {
  const auto& [n, t, adversary, seed] = GetParam();
  ASSERT_GT(n, 2 * t * t + t) << "outside the 2-step regime";
  ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.algorithm = Algorithm::kFastRenaming;
  config.adversary = adversary;
  config.seed = static_cast<std::uint64_t>(seed);
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok())
      << "n=" << n << " t=" << t << " adv=" << adversary << ": " << result.report.detail;
  EXPECT_LE(result.report.max_name, static_cast<sim::Name>(n) * n);
  EXPECT_EQ(result.run.rounds, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Regime, FastRenamingSweep,
    ::testing::Combine(::testing::Values(11, 16), ::testing::Values(1, 2),
                       ::testing::Values("silent", "idflood", "suppress", "random", "invalid",
                                         "crash"),
                       ::testing::Values(1, 2)));

INSTANTIATE_TEST_SUITE_P(
    LargerSystems, FastRenamingSweep,
    ::testing::Combine(::testing::Values(22, 36), ::testing::Values(3),
                       ::testing::Values("idflood", "suppress"), ::testing::Values(1)));

// Chaos sweeps: the randomized protocol-aware adversary across many
// seeds — cheap property-based search over mixed strategies.
class ChaosSweep : public ::testing::TestWithParam<std::tuple<std::pair<int, int>, int>> {};

TEST_P(ChaosSweep, GuaranteesHoldUnderRandomizedMixtures) {
  const auto& [nt, seed] = GetParam();
  const auto& [n, t] = nt;
  ScenarioConfig config;
  config.params = {.n = n, .t = t};
  config.adversary = "chaos";
  config.seed = static_cast<std::uint64_t>(seed);
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok())
      << "n=" << n << " t=" << t << " seed=" << seed << ": " << result.report.detail;
}

INSTANTIATE_TEST_SUITE_P(Grid, ChaosSweep,
                         ::testing::Combine(::testing::Values(std::pair<int, int>{7, 2},
                                                              std::pair<int, int>{10, 3},
                                                              std::pair<int, int>{13, 4}),
                                            ::testing::Range(1, 17)));

// Degraded-fault sweeps: fewer actual faults than the budget t must never
// hurt (the adversary only gets weaker).
class UnderloadedSweep : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(UnderloadedSweep, FewerFaultsThanBudget) {
  const auto& [faults, adversary] = GetParam();
  ScenarioConfig config;
  config.params = {.n = 13, .t = 4};
  config.actual_faults = faults;
  config.adversary = adversary;
  config.seed = 55;
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok())
      << "f=" << faults << " adv=" << adversary << ": " << result.report.detail;
}

INSTANTIATE_TEST_SUITE_P(Grid, UnderloadedSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values("silent", "idflood", "split",
                                                              "suppress")));

}  // namespace
}  // namespace byzrename::core
