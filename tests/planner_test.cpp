#include "core/planner.h"

#include <gtest/gtest.h>

namespace byzrename::core {
namespace {

TEST(Planner, TinyFaultBudgetPrefersTwoSteps) {
  // N=11, t=2 is inside every regime; Alg. 4's 2 steps win on latency.
  const auto plan = recommend_renaming({.n = 11, .t = 2});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->algorithm, Algorithm::kFastRenaming);
  EXPECT_EQ(plan->steps, 2);
  EXPECT_EQ(plan->namespace_size, 121);
}

TEST(Planner, TightNamespaceForcesConstantTime) {
  PlanConstraints constraints;
  constraints.max_namespace = 11;  // N^2 = 121 no longer allowed
  const auto plan = recommend_renaming({.n = 11, .t = 2}, constraints);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->algorithm, Algorithm::kOpRenamingConstantTime);
  EXPECT_EQ(plan->steps, 8);
  EXPECT_EQ(plan->namespace_size, 11);
}

TEST(Planner, LargeTLeavesOnlyFullAlgorithmOne) {
  // N=13, t=4: t^2+2t = 24 > 13 and 2t^2+t = 36 > 13; only Alg. 1 fits.
  const auto plans = plan_renaming({.n = 13, .t = 4});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].algorithm, Algorithm::kOpRenaming);
  EXPECT_EQ(plans[0].namespace_size, 16);
}

TEST(Planner, NothingFitsBeyondResilience) {
  EXPECT_TRUE(plan_renaming({.n = 9, .t = 3}).empty());  // N == 3t
  EXPECT_FALSE(recommend_renaming({.n = 10, .t = 3}).has_value() == false);
}

TEST(Planner, StepBudgetFiltersSlowOptions) {
  PlanConstraints constraints;
  constraints.max_steps = 2;
  const auto plans = plan_renaming({.n = 13, .t = 4}, constraints);
  EXPECT_TRUE(plans.empty());  // Alg. 1 needs 13 steps; nothing renames in 2
}

TEST(Planner, NonOrderPreservingUnlocksBitRenaming) {
  PlanConstraints constraints;
  constraints.order_preserving = false;
  const auto plans = plan_renaming({.n = 13, .t = 4}, constraints);
  bool found_bit = false;
  for (const PlanOption& option : plans) {
    if (option.algorithm == Algorithm::kBitRenaming) {
      found_bit = true;
      EXPECT_FALSE(option.order_preserving);
      EXPECT_EQ(option.namespace_size, 26);
    }
  }
  EXPECT_TRUE(found_bit);
}

TEST(Planner, AuthenticatedLinksUnlockConsensus) {
  PlanConstraints constraints;
  constraints.authenticated_links = true;
  const auto plans = plan_renaming({.n = 9, .t = 2}, constraints);
  bool found_consensus = false;
  for (const PlanOption& option : plans) {
    found_consensus = found_consensus || option.algorithm == Algorithm::kConsensusRenaming;
  }
  EXPECT_TRUE(found_consensus);

  PlanConstraints anonymous;
  for (const PlanOption& option : plan_renaming({.n = 9, .t = 2}, anonymous)) {
    EXPECT_NE(option.algorithm, Algorithm::kConsensusRenaming);
  }
}

TEST(Planner, OptionsAreSortedBySteps) {
  const auto plans = plan_renaming({.n = 30, .t = 2});
  ASSERT_GE(plans.size(), 3u);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].steps, plans[i].steps);
  }
  EXPECT_EQ(plans.front().algorithm, Algorithm::kFastRenaming);
}

TEST(Planner, RecommendationMatchesScenarioReality) {
  // The planner's cost predictions are exactly what a run produces.
  const sim::SystemParams params{.n = 16, .t = 3};
  const auto plan = recommend_renaming(params, {.max_namespace = 16});
  ASSERT_TRUE(plan.has_value());
  ScenarioConfig config;
  config.params = params;
  config.algorithm = plan->algorithm;
  config.adversary = "idflood";
  const ScenarioResult result = run_scenario(config);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
  EXPECT_EQ(result.run.rounds, plan->steps);
  EXPECT_LE(result.report.max_name, plan->namespace_size);
}

}  // namespace
}  // namespace byzrename::core
