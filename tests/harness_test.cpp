#include "core/harness.h"

#include <gtest/gtest.h>

#include <set>

namespace byzrename::core {
namespace {

TEST(Harness, GenerateIdsAreDistinctAndDeterministic) {
  const auto a = generate_ids(50, 7);
  const auto b = generate_ids(50, 7);
  const auto c = generate_ids(50, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const std::set<sim::Id> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 50u);
  for (const sim::Id id : a) EXPECT_GE(id, 1);
}

TEST(Harness, NamespaceSizesMatchPaper) {
  const sim::SystemParams params{.n = 10, .t = 3};
  EXPECT_EQ(namespace_size(Algorithm::kOpRenaming, params), 12);           // N+t-1
  EXPECT_EQ(namespace_size(Algorithm::kOpRenamingConstantTime, params), 10);
  EXPECT_EQ(namespace_size(Algorithm::kFastRenaming, params), 100);        // N^2
  EXPECT_EQ(namespace_size(Algorithm::kCrashRenaming, params), 10);
  EXPECT_EQ(namespace_size(Algorithm::kConsensusRenaming, params), 10);
  EXPECT_EQ(namespace_size(Algorithm::kBitRenaming, params), 20);          // 2N
  EXPECT_EQ(namespace_size(Algorithm::kOpRenaming, {.n = 10, .t = 0}), 10);
}

TEST(Harness, ExpectedStepsMatchPaper) {
  const sim::SystemParams params{.n = 13, .t = 4};
  EXPECT_EQ(expected_steps(Algorithm::kOpRenaming, params), 4 + 3 * 2 + 3);  // 3 ceil(log 4)+7
  EXPECT_EQ(expected_steps(Algorithm::kOpRenamingConstantTime, params), 8);
  EXPECT_EQ(expected_steps(Algorithm::kFastRenaming, params), 2);
  EXPECT_EQ(expected_steps(Algorithm::kConsensusRenaming, params), 1 + 2 * 5);
}

TEST(Harness, RejectsBadConfigs) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.actual_faults = 3;  // more than t
  EXPECT_THROW((void)run_scenario(config), std::invalid_argument);

  ScenarioConfig aa;
  aa.params = {.n = 7, .t = 2};
  aa.algorithm = Algorithm::kScalarAA;
  EXPECT_THROW((void)run_scenario(aa), std::invalid_argument);

  ScenarioConfig unknown;
  unknown.params = {.n = 7, .t = 2};
  unknown.adversary = "does-not-exist";
  EXPECT_THROW((void)run_scenario(unknown), std::out_of_range);

  ScenarioConfig mismatched;
  mismatched.params = {.n = 7, .t = 2};
  mismatched.correct_ids = {1, 2, 3};  // needs n - t = 5 ids
  EXPECT_THROW((void)run_scenario(mismatched), std::invalid_argument);

  // Exactly ON the constant-time regime boundary (N == t^2+2t): rejected,
  // because the idflood adversary provably produces N+1 names there (the
  // soak sweep caught precisely this before the guard existed).
  ScenarioConfig boundary;
  boundary.params = {.n = 24, .t = 4};
  boundary.algorithm = Algorithm::kOpRenamingConstantTime;
  EXPECT_THROW((void)run_scenario(boundary), std::invalid_argument);
  ScenarioConfig inside = boundary;
  inside.params.n = 25;
  EXPECT_NO_THROW((void)run_scenario(inside));
}

TEST(Harness, ExplicitCorrectIdsAreHonored) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.correct_ids = {500, 100, 300, 200, 400};  // unsorted on purpose
  config.adversary = "silent";
  const ScenarioResult result = run_scenario(config);
  ASSERT_EQ(result.named.size(), 5u);
  // Harness sorts: named[] comes back in id order.
  EXPECT_EQ(result.named.front().original_id, 100);
  EXPECT_EQ(result.named.back().original_id, 500);
  EXPECT_TRUE(result.report.all_ok()) << result.report.detail;
}

TEST(Harness, MetricsArePopulated) {
  ScenarioConfig config;
  config.params = {.n = 7, .t = 2};
  config.adversary = "silent";
  const ScenarioResult result = run_scenario(config);
  EXPECT_EQ(result.run.metrics.rounds(), static_cast<std::size_t>(result.run.rounds));
  EXPECT_GT(result.run.metrics.total_messages(), 0u);
  EXPECT_GT(result.run.metrics.total_bits(), 0u);
  EXPECT_GT(result.run.metrics.max_correct_message_bits(), 0u);
}

TEST(Harness, MessageSizeStaysWithinPaperBound) {
  // Section IV-D: message size O((N+t-1)(log Nmax + log N)) bits. The
  // exact-rational ranks add ~log2(N) bits per voting round; the
  // generous constant below covers that, and the real encoded sizes
  // (binary codec) must stay under it.
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{10, 3}, {22, 7}, {40, 13}}) {
    ScenarioConfig config;
    config.params = {.n = n, .t = t};
    config.adversary = "asymflood";
    const ScenarioResult result = run_scenario(config);
    ASSERT_TRUE(result.report.all_ok()) << result.report.detail;
    const std::size_t bound =
        static_cast<std::size_t>(n + t) * (64 + static_cast<std::size_t>(ceil_log2(n)) + 40);
    EXPECT_LE(result.run.metrics.max_correct_message_bits(), bound) << "n=" << n;
  }
}

TEST(Harness, MakeCorrectBehaviorCoversEveryAlgorithm) {
  const sim::SystemParams params{.n = 11, .t = 2};  // inside every regime incl. N > 2t^2+t
  EXPECT_NE(make_correct_behavior(Algorithm::kOpRenaming, params, 1), nullptr);
  EXPECT_NE(make_correct_behavior(Algorithm::kOpRenamingConstantTime, params, 1), nullptr);
  EXPECT_NE(make_correct_behavior(Algorithm::kFastRenaming, params, 1), nullptr);
  EXPECT_NE(make_correct_behavior(Algorithm::kCrashRenaming, params, 1), nullptr);
  EXPECT_NE(make_correct_behavior(Algorithm::kBitRenaming, params, 1), nullptr);
  EXPECT_NE(make_correct_behavior(Algorithm::kScalarAA, params, 1), nullptr);
  EXPECT_NE(make_correct_behavior(Algorithm::kConsensusRenaming, params, 1, {}, 0), nullptr);
  EXPECT_THROW((void)make_correct_behavior(Algorithm::kConsensusRenaming, params, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace byzrename::core
