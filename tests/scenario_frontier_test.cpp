// Scenario frontier: end-to-end degradation boundaries of the
// impersonation (forge) and transient-restart fault families, measured
// across the three renaming regimes — plus the campaign-level
// thread-count invariance the EXPERIMENTS.md boundary tables rely on.
//
// These tests pin MEASURED boundaries, not assumed ones: where the
// ghost id crosses the amplification quorum, how much namespace margin
// impersonation can consume compared to a full Byzantine adversary, and
// at which round a restarted process loses its rejoin path.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/harness.h"
#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "exp/spec_parse.h"
#include "sim/fault.h"

namespace byzrename {
namespace {

core::ScenarioConfig frontier_config(core::Algorithm algorithm, const char* fault_plan,
                                     int extra_rounds = 0) {
  core::ScenarioConfig config;
  config.algorithm = algorithm;
  config.params = {.n = 13, .t = 2};  // valid for op, const, and fast regimes
  config.seed = 7;
  config.extra_rounds = extra_rounds;
  config.fault_plan = sim::parse_fault_plan(fault_plan);
  return config;
}

sim::Name max_name(const core::ScenarioResult& result) {
  sim::Name max = 0;
  for (const core::NamedProcess& p : result.named) {
    if (p.new_name.has_value()) max = std::max(max, *p.new_name);
  }
  return max;
}

constexpr core::Algorithm kRegimes[] = {
    core::Algorithm::kOpRenaming,
    core::Algorithm::kOpRenamingConstantTime,
    core::Algorithm::kFastRenaming,
};

TEST(ScenarioFrontier, ImpersonationNeverBreaksSafetyInAnyRegime) {
  // The impersonation frontier has no safety cliff: even at k = 32
  // forged messages per receiver per round — far past any Byzantine
  // budget the regimes admit — uniqueness, order, and validity hold in
  // all three algorithms. (Contrast: 1-2% message drop already breaks
  // fast's uniqueness, EXPERIMENTS.md.)
  for (const core::Algorithm algorithm : kRegimes) {
    for (const char* plan : {"forge:1", "forge:8", "forge:32", "forge:8=replay"}) {
      const core::ScenarioResult result =
          core::run_scenario(frontier_config(algorithm, plan));
      EXPECT_FALSE(result.report.has(core::ViolationClass::kUniqueness))
          << core::to_string(algorithm) << " " << plan;
      EXPECT_FALSE(result.report.has(core::ViolationClass::kOrder))
          << core::to_string(algorithm) << " " << plan;
      EXPECT_FALSE(result.report.has(core::ViolationClass::kRange))
          << core::to_string(algorithm) << " " << plan;
      EXPECT_GT(result.run.metrics.total_injected_forgeries(), 0u)
          << core::to_string(algorithm) << " " << plan;
    }
  }
}

TEST(ScenarioFrontier, ImpersonationMarginIsSmallerThanByzantineInEveryRegime) {
  // Okun's separation, measured: the namespace margin an impersonation
  // adversary can consume is strictly smaller than what the full
  // Byzantine idflood adversary extracts from the same configuration.
  // The ghost strategy sustains exactly one consistent phantom identity,
  // so it costs at most one name; idflood saturates the per-regime
  // bound.
  for (const core::Algorithm algorithm : kRegimes) {
    const core::ScenarioResult forged =
        core::run_scenario(frontier_config(algorithm, "forge:32"));
    core::ScenarioConfig byzantine = frontier_config(algorithm, "");
    byzantine.adversary = "idflood";
    const core::ScenarioResult under_byzantine = core::run_scenario(byzantine);
    EXPECT_LT(max_name(forged), max_name(under_byzantine)) << core::to_string(algorithm);
  }
}

TEST(ScenarioFrontier, RestartRecoveryBoundaryIsRoundTwo) {
  // The restart frontier is sharp and identical in all three regimes:
  // a round-1 restart recovers fully (nothing was announced yet), a
  // round-2 restart permanently starves the restarted process — these
  // one-shot protocols have no rejoin path once the id-announcement
  // round has passed — while every safety class survives.
  for (const core::Algorithm algorithm : kRegimes) {
    const core::ScenarioResult early =
        core::run_scenario(frontier_config(algorithm, "restart:3@1", /*extra_rounds=*/8));
    EXPECT_TRUE(early.report.all_ok())
        << core::to_string(algorithm) << ": " << early.report.detail;
    EXPECT_EQ(early.report.restarted, 1) << core::to_string(algorithm);
    EXPECT_EQ(early.report.recovered, 1) << core::to_string(algorithm);

    const core::ScenarioResult late =
        core::run_scenario(frontier_config(algorithm, "restart:3@2", /*extra_rounds=*/8));
    EXPECT_TRUE(late.report.has(core::ViolationClass::kTermination))
        << core::to_string(algorithm);
    EXPECT_FALSE(late.report.has(core::ViolationClass::kUniqueness))
        << core::to_string(algorithm);
    EXPECT_FALSE(late.report.has(core::ViolationClass::kOrder))
        << core::to_string(algorithm);
    EXPECT_EQ(late.report.recovered, 0) << core::to_string(algorithm);
  }
}

TEST(ScenarioFrontier, ScrambledRestartCanRelandOnTheLiveRound) {
  // kScramble draws the corrupted round counter from [1, R]; when the
  // hash lands it back on the live round the process re-enters the
  // protocol mid-flight and can recover through Ready amplification.
  // Deterministic instance pinned by seed: op, restart:3@3,scramble at
  // seed 2 recovers; the reset flavor of the same event never does.
  core::ScenarioConfig config = frontier_config(core::Algorithm::kOpRenaming,
                                                "restart:3@3,scramble", /*extra_rounds=*/8);
  config.seed = 2;
  const core::ScenarioResult scrambled = core::run_scenario(config);
  EXPECT_EQ(scrambled.report.restarted, 1);
  EXPECT_EQ(scrambled.report.recovered, 1) << scrambled.report.detail;

  config.fault_plan = sim::parse_fault_plan("restart:3@3");
  const core::ScenarioResult reset = core::run_scenario(config);
  EXPECT_EQ(reset.report.recovered, 0);
  EXPECT_TRUE(reset.report.has(core::ViolationClass::kTermination));
}

TEST(ScenarioFrontier, ForgeAndRestartCampaignCellsAreThreadCountInvariant) {
  // The acceptance gate of the frontier tables: a campaign cell mixing
  // forge and restart rules with a link fault serializes byte-identically
  // at --threads 1 and --threads 8. CI enforces the same property on the
  // released binary with cmp.
  const exp::CampaignSpec spec = exp::parse_campaign_spec(
      "name=frontier;algo=op,fast;n=13;t=2;adversary=silent;reps=3;seed=7;extra=6;"
      "fault=forge:4x0.5+restart:3@2,scramble+drop:0.01");
  exp::CampaignOptions serial;
  serial.threads = 1;
  exp::CampaignOptions parallel;
  parallel.threads = 8;
  const exp::CampaignResult a = exp::run_campaign(spec, serial);
  const exp::CampaignResult b = exp::run_campaign(spec, parallel);
  const auto cells_text = [&](const exp::CampaignResult& result) {
    std::ostringstream os;
    exp::write_campaign_cells(os, spec, result);
    return os.str();
  };
  EXPECT_EQ(cells_text(a), cells_text(b));
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].seed, b.runs[i].seed);
    EXPECT_EQ(a.runs[i].rounds, b.runs[i].rounds);
    EXPECT_EQ(a.runs[i].max_name, b.runs[i].max_name);
  }
}

}  // namespace
}  // namespace byzrename
