#include "core/rank_approx.h"

#include <gtest/gtest.h>

#include <random>

#include "numeric/bigint.h"

namespace byzrename::core {
namespace {

using numeric::BigInt;
using numeric::Rational;
using sim::Id;

const sim::SystemParams kParams{.n = 7, .t = 2};
const Rational kDelta = delta(kParams);

RankMap ranks_of(std::initializer_list<std::pair<Id, Rational>> entries) {
  RankMap map;
  for (const auto& [id, rank] : entries) map.emplace(id, rank);
  return map;
}

// ---------------------------------------------------------------------------
// decode_vote
// ---------------------------------------------------------------------------

TEST(DecodeVote, AcceptsWellFormedSortedEntries) {
  sim::RanksMsg msg{{{1, Rational(1)}, {5, Rational(2)}, {9, Rational(3)}}};
  RankMap out;
  EXPECT_TRUE(decode_vote(msg, kParams, {}, out));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out.at(5), Rational(2));
}

TEST(DecodeVote, RejectsUnsortedIds) {
  sim::RanksMsg msg{{{5, Rational(1)}, {1, Rational(2)}}};
  RankMap out;
  EXPECT_FALSE(decode_vote(msg, kParams, {}, out));
}

TEST(DecodeVote, RejectsDuplicateIds) {
  sim::RanksMsg msg{{{5, Rational(1)}, {5, Rational(2)}}};
  RankMap out;
  EXPECT_FALSE(decode_vote(msg, kParams, {}, out));
}

TEST(DecodeVote, RejectsEntryCountSpam) {
  sim::RanksMsg msg;
  for (int i = 0; i < kParams.n + kParams.t + 1; ++i) {
    msg.entries.push_back({i + 1, Rational(i + 1)});
  }
  RankMap out;
  EXPECT_FALSE(decode_vote(msg, kParams, {}, out));
  // One fewer entry fits the bound.
  msg.entries.pop_back();
  EXPECT_TRUE(decode_vote(msg, kParams, {}, out));
}

TEST(DecodeVote, RejectsOversizedRankEncodings) {
  RenamingOptions options;
  options.max_rank_bits = 64;
  sim::RanksMsg msg{{{1, Rational(BigInt(1), BigInt(1) << 128)}}};
  RankMap out;
  EXPECT_FALSE(decode_vote(msg, kParams, options, out));
  sim::RanksMsg small{{{1, Rational::of(1, 3)}}};
  EXPECT_TRUE(decode_vote(small, kParams, options, out));
}

TEST(DecodeVote, AcceptsEmptyVote) {
  RankMap out;
  EXPECT_TRUE(decode_vote(sim::RanksMsg{}, kParams, {}, out));
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// is_valid_ranks (Alg. 2)
// ---------------------------------------------------------------------------

TEST(IsValid, AcceptsDeltaSpacedCoverage) {
  const std::set<Id> timely{1, 2, 3};
  const RankMap vote = ranks_of({{1, kDelta}, {2, kDelta * Rational(2)}, {3, kDelta * Rational(3)}});
  EXPECT_TRUE(is_valid_ranks(timely, vote, kDelta));
}

TEST(IsValid, RejectsMissingTimelyId) {
  const std::set<Id> timely{1, 2, 3};
  const RankMap vote = ranks_of({{1, kDelta}, {3, kDelta * Rational(2)}});
  EXPECT_FALSE(is_valid_ranks(timely, vote, kDelta));
}

TEST(IsValid, RejectsSubDeltaSpacing) {
  const std::set<Id> timely{1, 2};
  const RankMap vote =
      ranks_of({{1, kDelta}, {2, kDelta + kDelta * Rational::of(99, 100)}});
  EXPECT_FALSE(is_valid_ranks(timely, vote, kDelta));
}

TEST(IsValid, AcceptsExactDeltaSpacing) {
  const std::set<Id> timely{1, 2};
  const RankMap vote = ranks_of({{1, Rational(5)}, {2, Rational(5) + kDelta}});
  EXPECT_TRUE(is_valid_ranks(timely, vote, kDelta));
}

TEST(IsValid, RejectsInvertedOrder) {
  const std::set<Id> timely{1, 2};
  const RankMap vote = ranks_of({{1, Rational(9)}, {2, Rational(1)}});
  EXPECT_FALSE(is_valid_ranks(timely, vote, kDelta));
}

TEST(IsValid, ExtraNonTimelyEntriesAreAllowed) {
  // Votes rank the sender's whole accepted set, which may exceed the
  // receiver's timely set; only timely coverage and spacing matter.
  const std::set<Id> timely{2, 4};
  const RankMap vote = ranks_of({{1, Rational(1)},
                                 {2, Rational(1) + kDelta},
                                 {3, Rational(100)},
                                 {4, Rational(1) + kDelta * Rational(2)}});
  EXPECT_TRUE(is_valid_ranks(timely, vote, kDelta));
}

TEST(IsValid, EmptyTimelyAcceptsAnything) {
  EXPECT_TRUE(is_valid_ranks({}, {}, kDelta));
  EXPECT_TRUE(is_valid_ranks({}, ranks_of({{1, Rational(0)}}), kDelta));
}

// ---------------------------------------------------------------------------
// select_t
// ---------------------------------------------------------------------------

TEST(SelectT, PicksSmallestAndEveryTth) {
  const std::vector<Rational> sorted{Rational(1), Rational(2), Rational(3),
                                     Rational(4), Rational(5), Rational(6)};
  const auto chosen = select_t(sorted, 2);
  ASSERT_EQ(chosen.size(), 3u);  // positions 0, 2, 4
  EXPECT_EQ(chosen[0], Rational(1));
  EXPECT_EQ(chosen[1], Rational(3));
  EXPECT_EQ(chosen[2], Rational(5));
}

TEST(SelectT, CountMatchesSigmaFormula) {
  // |select_t| on N-2t elements is floor((N-2t-1)/t)+1, which is
  // sigma_t = floor((N-2t)/t)+1 whenever t does not divide N-2t.
  for (int n = 4; n <= 40; ++n) {
    for (int t = 1; 3 * t < n; ++t) {
      std::vector<Rational> sorted;
      for (int i = 0; i < n - 2 * t; ++i) sorted.emplace_back(i);
      const int count = static_cast<int>(select_t(sorted, t).size());
      EXPECT_EQ(count, (n - 2 * t - 1) / t + 1) << "n=" << n << " t=" << t;
      EXPECT_GE(count, 2) << "contraction requires at least two points";
    }
  }
}

TEST(SelectT, ZeroTReturnsEverything) {
  const std::vector<Rational> sorted{Rational(1), Rational(2)};
  EXPECT_EQ(select_t(sorted, 0).size(), 2u);
}

// ---------------------------------------------------------------------------
// approximate (Alg. 3)
// ---------------------------------------------------------------------------

std::vector<RankMap> identical_votes(int count, const RankMap& vote) {
  return std::vector<RankMap>(static_cast<std::size_t>(count), vote);
}

TEST(Approximate, UnanimousVotesAreFixpoint) {
  std::set<Id> accepted{1, 2, 3};
  const RankMap mine =
      ranks_of({{1, kDelta}, {2, kDelta * Rational(2)}, {3, kDelta * Rational(3)}});
  const ApproximateResult result =
      approximate(kParams, accepted, mine, identical_votes(kParams.n, mine));
  EXPECT_TRUE(result.dropped.empty());
  EXPECT_EQ(result.new_ranks, mine);
}

TEST(Approximate, DropsIdsBelowVoteThreshold) {
  std::set<Id> accepted{1, 2};
  const RankMap with_both = ranks_of({{1, Rational(1)}, {2, Rational(1) + kDelta}});
  const RankMap only_one = ranks_of({{1, Rational(1)}});
  // Id 2 appears in only 4 votes < N-t = 5.
  std::vector<RankMap> votes = identical_votes(4, with_both);
  votes.push_back(only_one);
  const ApproximateResult result = approximate(kParams, accepted, with_both, votes);
  EXPECT_TRUE(result.dropped.contains(2));
  EXPECT_FALSE(accepted.contains(2));
  EXPECT_TRUE(result.new_ranks.contains(1));
  EXPECT_FALSE(result.new_ranks.contains(2));
}

TEST(Approximate, TrimNeutralizesExtremeMinority) {
  // t = 2 Byzantine votes at +/- 10^6 must not drag the result outside
  // the correct range [1, 1+delta].
  std::set<Id> accepted{1};
  const RankMap mine = ranks_of({{1, Rational(1)}});
  std::vector<RankMap> votes = identical_votes(kParams.n - kParams.t, mine);
  votes.push_back(ranks_of({{1, Rational(1'000'000)}}));
  votes.push_back(ranks_of({{1, Rational(-1'000'000)}}));
  const ApproximateResult result = approximate(kParams, accepted, mine, votes);
  EXPECT_EQ(result.new_ranks.at(1), Rational(1));
}

TEST(Approximate, OutputStaysInCorrectRange) {
  // Lemma IV.8 containment: with 5 correct votes in [10, 20] and 2
  // Byzantine extremes, the new value must stay in [10, 20].
  std::set<Id> accepted{1};
  const RankMap mine = ranks_of({{1, Rational(10)}});
  std::vector<RankMap> votes;
  votes.push_back(ranks_of({{1, Rational(10)}}));
  votes.push_back(ranks_of({{1, Rational(12)}}));
  votes.push_back(ranks_of({{1, Rational(15)}}));
  votes.push_back(ranks_of({{1, Rational(18)}}));
  votes.push_back(ranks_of({{1, Rational(20)}}));
  votes.push_back(ranks_of({{1, Rational(1'000'000)}}));
  votes.push_back(ranks_of({{1, Rational(-1'000'000)}}));
  const ApproximateResult result = approximate(kParams, accepted, mine, votes);
  EXPECT_GE(result.new_ranks.at(1), Rational(10));
  EXPECT_LE(result.new_ranks.at(1), Rational(20));
}

TEST(Approximate, PadsMissingVotesWithOwnValue) {
  // Exactly N-t votes arrive; the remaining t slots are filled with the
  // local value, which then influences the average.
  std::set<Id> accepted{1};
  const RankMap mine = ranks_of({{1, Rational(0)}});
  const std::vector<RankMap> votes = identical_votes(kParams.n - kParams.t, ranks_of({{1, Rational(10)}}));
  const ApproximateResult result = approximate(kParams, accepted, mine, votes);
  // Ballot (sorted): [0, 0, 10, 10, 10, 10, 10] -> trim 2 -> [10,10,10]
  // wait: trim removes two lowest (0,0) and two highest (10,10): [10,10,10].
  EXPECT_EQ(result.new_ranks.at(1), Rational(10));
}

TEST(Approximate, PairwiseDeltaGapIsPreservedAcrossStep) {
  // Lemma A.3: if every vote spaces two ids by >= delta, so does the
  // output — even when votes disagree wildly about absolute positions.
  std::set<Id> accepted{1, 2};
  std::mt19937_64 rng(99);
  const RankMap mine = ranks_of({{1, Rational(3)}, {2, Rational(3) + kDelta}});
  std::vector<RankMap> votes;
  for (int v = 0; v < kParams.n; ++v) {
    const Rational base(static_cast<std::int64_t>(rng() % 1000));
    const Rational gap = kDelta + Rational::of(static_cast<std::int64_t>(rng() % 5), 3);
    votes.push_back(ranks_of({{1, base}, {2, base + gap}}));
  }
  std::set<Id> accepted_copy = accepted;
  const ApproximateResult result = approximate(kParams, accepted_copy, mine, votes);
  EXPECT_GE(result.new_ranks.at(2) - result.new_ranks.at(1), kDelta);
}

TEST(Approximate, ContractionMatchesSigma) {
  // Two processes whose vote multisets differ in at most t entries end up
  // within Delta/sigma_t of each other (Lemma IV.8).
  const sim::SystemParams params{.n = 13, .t = 2};
  const int sigma = sigma_t(params);
  // Correct votes spread over [0, 100]; the two processes see the same
  // correct votes but different Byzantine extremes.
  std::vector<RankMap> correct_votes;
  for (int i = 0; i < params.n - params.t; ++i) {
    correct_votes.push_back(ranks_of({{1, Rational(100 * i / (params.n - params.t - 1))}}));
  }
  std::vector<RankMap> votes_p = correct_votes;
  votes_p.push_back(ranks_of({{1, Rational(-500)}}));
  votes_p.push_back(ranks_of({{1, Rational(-600)}}));
  std::vector<RankMap> votes_q = correct_votes;
  votes_q.push_back(ranks_of({{1, Rational(500)}}));
  votes_q.push_back(ranks_of({{1, Rational(600)}}));

  std::set<Id> accepted_p{1};
  std::set<Id> accepted_q{1};
  const RankMap mine_p = ranks_of({{1, Rational(0)}});
  const RankMap mine_q = ranks_of({{1, Rational(100)}});
  const Rational new_p = approximate(params, accepted_p, mine_p, votes_p).new_ranks.at(1);
  const Rational new_q = approximate(params, accepted_q, mine_q, votes_q).new_ranks.at(1);
  const Rational spread = (new_p - new_q).abs();
  EXPECT_LE(spread, Rational(100) / Rational(sigma));
}

TEST(Approximate, ZeroFaultsAveragesAllVotes) {
  const sim::SystemParams params{.n = 3, .t = 0};
  std::set<Id> accepted{1};
  const RankMap mine = ranks_of({{1, Rational(1)}});
  std::vector<RankMap> votes;
  votes.push_back(ranks_of({{1, Rational(1)}}));
  votes.push_back(ranks_of({{1, Rational(2)}}));
  votes.push_back(ranks_of({{1, Rational(3)}}));
  const ApproximateResult result = approximate(params, accepted, mine, votes);
  EXPECT_EQ(result.new_ranks.at(1), Rational(2));
}

TEST(EncodeVote, RoundTripsThroughDecode) {
  const RankMap original =
      ranks_of({{3, Rational::of(7, 2)}, {8, Rational(5)}, {11, Rational::of(21, 4)}});
  RankMap decoded;
  ASSERT_TRUE(decode_vote(encode_vote(original), kParams, {}, decoded));
  EXPECT_EQ(decoded, original);
}

}  // namespace
}  // namespace byzrename::core
