// byzrenamed — multi-tenant renaming-as-a-service daemon.
//
// Long-running loopback HTTP service whose unit of traffic is one
// renaming instance (algorithm, N, t, adversary, faults, seed). Clients
// open sessions (POST /v1/session), submit batches of independent
// instances (POST /v1/submit, schema byzrename.submit/1), and poll
// completion-ordered byzrename.verdict/1 results (GET /v1/poll, with
// optional long-poll). A svc::Scheduler multiplexes every session over
// one work-stealing executor with per-session fair queueing and
// admission control (429 + Retry-After past the configured bounds);
// /metrics exposes per-tenant counter families live. docs/SERVICE.md
// has the full API.
//
// Verdicts are deterministic: the same instance submitted here, run via
// `byzrename --verdict-out`, or replayed from a repro bundle produces
// the same scenario and verdict objects byte-for-byte.
//
// SIGINT/SIGTERM drain: admission stops (503), queued instances report
// status "cancelled", in-flight instances complete and stay pollable
// until the drain grace period ends; then the daemon exits 0. A second
// signal hard-exits 130.

#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "svc/daemon.h"

namespace {

using namespace byzrename;

std::atomic<bool> g_interrupted{false};

extern "C" void handle_interrupt(int) {
  if (g_interrupted.exchange(true)) std::_Exit(130);
}

void print_usage() {
  std::cout <<
      "usage: byzrenamed [options]\n"
      "  --port <int>            loopback port to bind (default 8787; 0 = ephemeral,\n"
      "                          printed at startup)\n"
      "  --threads <int>         executor workers, >= 1 (default: hardware concurrency)\n"
      "  --max-queue-depth <n>   queued instances across all sessions (default 4096)\n"
      "  --max-inflight <n>      submitted-but-incomplete instances per session\n"
      "                          (default 1024)\n"
      "  --max-batch <n>         instances per submit request (default 512)\n"
      "  --quantum <n>           fair-queueing quantum: instances taken per session\n"
      "                          per dispatch batch (default 16)\n"
      "  --retention <n>         completed verdicts retained per session; older ones\n"
      "                          are evicted and their cursors poll 404 cursor-evicted\n"
      "                          (default 65536, 0 = unbounded)\n"
      "  --drain-grace <secs>    after the drain completes, keep serving polls this\n"
      "                          long so clients can collect results (default 2)\n"
      "  --quiet                 suppress status lines (the serving-on line still\n"
      "                          prints: with --port 0 it is the only way to learn\n"
      "                          the bound port)\n"
      "  --help                  this text\n"
      "\n"
      "API schemas and semantics: docs/SERVICE.md\n";
}

struct CliError {
  std::string message;
};

template <typename Number>
Number parse_number(std::string_view flag, std::string_view token) {
  Number value{};
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    throw CliError{std::string(flag) + " expects a number, got '" + std::string(token) + "'"};
  }
  return value;
}

struct Options {
  svc::DaemonOptions daemon;
  int port = 8787;
  double drain_grace_seconds = 2.0;
  bool quiet = false;
};

Options parse(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw CliError{std::string(argv[i]) + " needs a value"};
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help") {
      print_usage();
      std::exit(0);
    } else if (arg == "--port") {
      options.port = parse_number<int>("--port", next_value(i));
      if (options.port < 0 || options.port > 65535) {
        throw CliError{"--port expects a port in [0, 65535]"};
      }
    } else if (arg == "--threads") {
      options.daemon.scheduler.threads = parse_number<int>("--threads", next_value(i));
      if (options.daemon.scheduler.threads < 1) {
        throw CliError{"--threads must be >= 1 (omit the flag for hardware concurrency)"};
      }
    } else if (arg == "--max-queue-depth") {
      options.daemon.scheduler.admission.max_queue_depth =
          parse_number<std::size_t>("--max-queue-depth", next_value(i));
      if (options.daemon.scheduler.admission.max_queue_depth == 0) {
        throw CliError{"--max-queue-depth must be >= 1"};
      }
    } else if (arg == "--max-inflight") {
      options.daemon.scheduler.admission.max_session_inflight =
          parse_number<std::size_t>("--max-inflight", next_value(i));
      if (options.daemon.scheduler.admission.max_session_inflight == 0) {
        throw CliError{"--max-inflight must be >= 1"};
      }
    } else if (arg == "--max-batch") {
      options.daemon.scheduler.admission.max_batch =
          parse_number<std::size_t>("--max-batch", next_value(i));
      if (options.daemon.scheduler.admission.max_batch == 0) {
        throw CliError{"--max-batch must be >= 1"};
      }
    } else if (arg == "--quantum") {
      options.daemon.scheduler.fair_quantum =
          parse_number<std::size_t>("--quantum", next_value(i));
      if (options.daemon.scheduler.fair_quantum == 0) {
        throw CliError{"--quantum must be >= 1"};
      }
    } else if (arg == "--retention") {
      options.daemon.scheduler.retention_cap =
          parse_number<std::size_t>("--retention", next_value(i));
    } else if (arg == "--drain-grace") {
      options.drain_grace_seconds = parse_number<double>("--drain-grace", next_value(i));
      if (options.drain_grace_seconds < 0.0) throw CliError{"--drain-grace must be >= 0"};
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      throw CliError{"unknown option: " + std::string(arg)};
    }
  }
  options.daemon.port = static_cast<std::uint16_t>(options.port);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    options = parse(argc, argv);
  } catch (const CliError& error) {
    std::cerr << "byzrenamed: " << error.message << "\n\n";
    print_usage();
    return 2;
  }

  svc::Daemon daemon(options.daemon);
  try {
    daemon.start();
  } catch (const std::exception& error) {
    std::cerr << "byzrenamed: " << error.what() << '\n';
    return 2;
  }

  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);

  // The serving line always prints: with --port 0 it is the only way a
  // caller can learn the bound port (--quiet silences everything else).
  std::cout << "byzrenamed serving on http://127.0.0.1:" << daemon.port();
  if (!options.quiet) {
    std::cout << "  (POST /v1/session /v1/submit, GET /v1/poll /metrics /healthz /buildinfo; "
                 "threads="
              << daemon.scheduler().threads() << ")";
  }
  std::cout << '\n';
  std::cout.flush();

  while (!g_interrupted.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (!options.quiet) std::cout << "byzrenamed: draining (queued cancelled, in-flight complete)\n";
  // Drain first so every outcome is recorded, then keep the HTTP plane
  // up briefly: a client mid-poll can still collect final results.
  daemon.scheduler().shutdown(svc::Scheduler::DrainMode::kCancelQueued);
  if (options.drain_grace_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(options.drain_grace_seconds));
  }
  daemon.stop(svc::Scheduler::DrainMode::kCancelQueued);
  if (!options.quiet) std::cout << "byzrenamed: drained, exiting\n";
  return 0;
}
