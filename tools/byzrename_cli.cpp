// byzrename — command-line driver for any renaming scenario.
//
// Examples:
//   byzrename --algorithm op --n 13 --t 4 --adversary asymflood
//   byzrename --algorithm fast --n 11 --t 2 --adversary suppress --seed 9
//   byzrename --algorithm op --n 10 --t 3 --faults 1 --iterations 12 --trace
//   byzrename --n 13 --t 4 --adversary asymflood --json out.jsonl --trace-out out.trace.json
//   byzrename --list-adversaries
//
// Exit code 0 iff every renaming property held; 2 on usage errors.

#include <algorithm>
#include <atomic>
#include <charconv>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/adversary.h"
#include "core/harness.h"
#include "core/op_renaming.h"
#include "core/phase.h"
#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "exp/executor.h"
#include "exp/progress.h"
#include "exp/repro.h"
#include "sim/fault.h"
#include "obs/complexity_audit.h"
#include "obs/http/buildinfo.h"
#include "obs/http/exposition.h"
#include "obs/http/http_server.h"
#include "obs/metrics_registry.h"
#include "obs/prof/alloc_interpose.h"
#include "obs/prof/profile_io.h"
#include "obs/prof/profiler.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "svc/api.h"
#include "trace/event_log.h"
#include "trace/table.h"

namespace {

using namespace byzrename;

/// SIGINT/SIGTERM request a cooperative stop: single runs abort at the
/// next round boundary, --repeat stops starting new runs. Sinks flush
/// whatever was collected and the process exits 130 (campaign-tool
/// semantics). A second signal hard-exits immediately.
std::atomic<bool> g_interrupted{false};

extern "C" void handle_interrupt(int) {
  if (g_interrupted.exchange(true)) std::_Exit(130);
}

/// Thrown out of run_scenario by the interrupt observer; deliberately
/// not a std::exception so the generic error path cannot swallow it.
struct InterruptedRun {};

void print_usage() {
  std::cout <<
      "usage: byzrename [options]\n"
      "  --algorithm <op|const|fast|crash|consensus|bit|translated>   protocol (default op)\n"
      "  --n <int>             number of processes (default 10)\n"
      "  --t <int>             fault budget (default 3)\n"
      "  --faults <int>        actual faulty processes, <= t (default t)\n"
      "  --adversary <name>    Byzantine strategy (default silent)\n"
      "  --seed <uint64>       run seed (default 1)\n"
      "  --iterations <int>    voting iterations override (Alg. 1 only)\n"
      "  --rank-kernel <k>     voting arithmetic: fixed (default), exact (the\n"
      "                        oracle), or check (both in lockstep, throw on\n"
      "                        divergence); all three are observably identical\n"
      "  --no-validation       ABLATION: disable the Alg. 2 isValid filter\n"
      "  --ids <a,b,c,...>     explicit correct-process ids\n"
      "  --fault-plan <spec>   inject link/crash/partition faults, e.g.\n"
      "                        \"drop:0.2+crash:3@2..5\" (grammar: docs/FAULTS.md)\n"
      "  --repro <path>        replay a byzrename.repro/1 bundle (--repeat K replays it\n"
      "                        K times; exit 0 iff all verdicts match the bundle)\n"
      "  --repro-out <path>    write the byzrename.repro-verdict/1 replay outcome\n"
      "  --verdict-out <path>  write the single run's byzrename.verdict/1 document —\n"
      "                        byte-identical to what byzrenamed serves for the same\n"
      "                        scenario (not valid with --repeat/--repro/--ids)\n"
      "  --repeat <int>        run the scenario K times under derived seeds and print\n"
      "                        aggregate decide-round stats (campaign engine)\n"
      "  --threads <int>       worker threads for --repeat/--repro, >= 1\n"
      "                        (default: hardware concurrency)\n"
      "  --trace               print per-round metrics\n"
      "  --json <path>         write a JSONL run report (schema byzrename.run/1)\n"
      "  --trace-out <path>    write a Chrome trace-event file (chrome://tracing, Perfetto)\n"
      "  --metrics-out <path>  write a Prometheus text dump of the run's metrics registry\n"
      "  --metrics-jsonl <path> write the round-resolved timeseries (byzrename.metrics/1)\n"
      "  --serve <port>        expose live /metrics, /healthz, /progress on\n"
      "                        127.0.0.1:<port> during the run (0 = ephemeral port;\n"
      "                        not valid with --repro)\n"
      "  --prom-out <path>     final Prometheus snapshot through the same exposition\n"
      "                        path /metrics serves (registry + process gauges)\n"
      "  --profile             attach the phase-attributed profiler (timer tree, hardware\n"
      "                        counters when perf_event_open allows, per-scope allocation\n"
      "                        attribution) and print the scope tree; with --serve the\n"
      "                        live tree is at GET /profile\n"
      "  --profile-out <path>  write the byzrename.profile/1 document (implies --profile;\n"
      "                        with --repeat: one kind-\"cell\" aggregate line)\n"
      "  --flame-out <path>    write collapsed stacks for flamegraph.pl / speedscope\n"
      "                        (implies --profile; single run only)\n"
      "  --audit               check the paper's complexity budgets (steps, messages,\n"
      "                        bit sizes, Delta_r contraction) and print the verdict;\n"
      "                        exit 1 if any bound is violated\n"
      "  --audit-out <path>    write the byzrename.audit/1 verdict record (implies --audit)\n"
      "  --report              print the JSON run report to stdout\n"
      "  --quiet               print only the verdict line\n"
      "  --list-adversaries    list registered strategies and exit\n"
      "  --help                this text\n"
      "\n"
      "Report schema and trace-loading instructions: docs/OBSERVABILITY.md\n";
}

struct CliError {
  std::string message;
};

/// Strict full-token integer parse: no std::stoll, so malformed input
/// ("1x", "x", overflow) becomes a CliError with usage instead of an
/// uncaught exception.
template <typename Int>
Int parse_number(std::string_view flag, std::string_view text) {
  Int value{};
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw CliError{std::string(flag) + ": value out of range: " + std::string(text)};
  }
  if (ec != std::errc{} || end != text.data() + text.size()) {
    throw CliError{std::string(flag) + " expects an integer, got: " +
                   (text.empty() ? std::string("(empty)") : std::string(text))};
  }
  return value;
}

std::vector<sim::Id> parse_ids(const std::string& csv) {
  std::vector<sim::Id> ids;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) ids.push_back(parse_number<sim::Id>("--ids", token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (ids.empty()) throw CliError{"--ids expects a comma-separated id list"};
  return ids;
}

struct Options {
  core::ScenarioConfig config;
  bool trace = false;
  bool quiet = false;
  bool report = false;
  int repeat = 1;
  int threads = 0;
  std::string json_path;
  std::string trace_out_path;
  std::string repro_path;
  std::string repro_out_path;
  std::string verdict_out_path;
  std::string metrics_out_path;
  std::string metrics_jsonl_path;
  std::string audit_out_path;
  std::string prom_out_path;
  std::string profile_out_path;
  std::string flame_out_path;
  int serve_port = -1;  ///< -1 = no server; 0 = ephemeral port
  bool audit = false;
  bool profile = false;
};

Options parse(int argc, char** argv) {
  Options options;
  options.config.params = {.n = 10, .t = 3};
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw CliError{std::string(argv[i]) + " needs a value"};
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help") {
      print_usage();
      std::exit(0);
    } else if (arg == "--list-adversaries") {
      for (const std::string& name : adversary::adversary_names()) std::cout << name << '\n';
      std::exit(0);
    } else if (arg == "--algorithm") {
      const std::string value = next_value(i);
      const auto algorithm = core::algorithm_from_token(value);
      if (!algorithm.has_value()) throw CliError{"unknown algorithm: " + value};
      options.config.algorithm = *algorithm;
    } else if (arg == "--n") {
      options.config.params.n = parse_number<int>(arg, next_value(i));
    } else if (arg == "--t") {
      options.config.params.t = parse_number<int>(arg, next_value(i));
    } else if (arg == "--faults") {
      options.config.actual_faults = parse_number<int>(arg, next_value(i));
    } else if (arg == "--adversary") {
      options.config.adversary = next_value(i);
    } else if (arg == "--seed") {
      options.config.seed = parse_number<std::uint64_t>(arg, next_value(i));
    } else if (arg == "--iterations") {
      options.config.options.approximation_iterations = parse_number<int>(arg, next_value(i));
    } else if (arg == "--rank-kernel") {
      const std::string value = next_value(i);
      const auto kernel = core::rank_kernel_from_token(value);
      if (!kernel.has_value()) {
        throw CliError{"--rank-kernel expects fixed, exact, or check, got '" + value + "'"};
      }
      options.config.options.rank_kernel = *kernel;
    } else if (arg == "--no-validation") {
      options.config.options.validate_votes = false;
    } else if (arg == "--ids") {
      options.config.correct_ids = parse_ids(next_value(i));
    } else if (arg == "--fault-plan") {
      try {
        options.config.fault_plan = sim::parse_fault_plan(next_value(i));
      } catch (const std::invalid_argument& error) {
        throw CliError{error.what()};
      }
    } else if (arg == "--repro") {
      options.repro_path = next_value(i);
    } else if (arg == "--repro-out") {
      options.repro_out_path = next_value(i);
    } else if (arg == "--verdict-out") {
      options.verdict_out_path = next_value(i);
      if (options.verdict_out_path.empty()) throw CliError{"--verdict-out needs a path"};
    } else if (arg == "--repeat") {
      options.repeat = parse_number<int>(arg, next_value(i));
      if (options.repeat < 1) throw CliError{"--repeat must be >= 1"};
    } else if (arg == "--threads") {
      options.threads = parse_number<int>(arg, next_value(i));
      if (options.threads < 1) {
        throw CliError{"--threads must be >= 1 (omit the flag for hardware concurrency)"};
      }
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--json") {
      options.json_path = next_value(i);
    } else if (arg == "--trace-out") {
      options.trace_out_path = next_value(i);
    } else if (arg == "--metrics-out") {
      options.metrics_out_path = next_value(i);
    } else if (arg == "--metrics-jsonl") {
      options.metrics_jsonl_path = next_value(i);
    } else if (arg == "--serve") {
      const int port = parse_number<int>(arg, next_value(i));
      if (port < 0 || port > 65535) throw CliError{"--serve expects a port in [0, 65535]"};
      options.serve_port = port;
    } else if (arg == "--prom-out") {
      options.prom_out_path = next_value(i);
      if (options.prom_out_path.empty()) throw CliError{"--prom-out needs a path"};
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--profile-out") {
      options.profile_out_path = next_value(i);
      if (options.profile_out_path.empty()) throw CliError{"--profile-out needs a path"};
      options.profile = true;
    } else if (arg == "--flame-out") {
      options.flame_out_path = next_value(i);
      if (options.flame_out_path.empty()) throw CliError{"--flame-out needs a path"};
      options.profile = true;
    } else if (arg == "--audit") {
      options.audit = true;
    } else if (arg == "--audit-out") {
      options.audit_out_path = next_value(i);
      options.audit = true;
    } else if (arg == "--report") {
      options.report = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      throw CliError{"unknown option: " + std::string(arg)};
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    options = parse(argc, argv);
  } catch (const CliError& error) {
    std::cerr << "byzrename: " << error.message << "\n\n";
    print_usage();
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "byzrename: bad argument: " << error.what() << '\n';
    return 2;
  }

  if (!options.repro_path.empty() &&
      (options.serve_port >= 0 || !options.prom_out_path.empty() || options.profile)) {
    // Replays must stay pure: the verdict contract is "the replay IS the
    // original execution", and a telemetry plane has nothing to observe
    // that the bundle does not already pin.
    std::cerr << "byzrename: --serve/--prom-out/--profile are not valid with --repro\n";
    return 2;
  }
  if (options.repeat > 1 && !options.flame_out_path.empty()) {
    // Collapsed stacks render ONE tree; the repeat aggregate merges many.
    // The kind-"cell" --profile-out document is the aggregate answer.
    std::cerr << "byzrename: --flame-out describes a single run; not valid with --repeat\n";
    return 2;
  }
  if (!options.verdict_out_path.empty() &&
      (options.repeat > 1 || !options.repro_path.empty() ||
       !options.config.correct_ids.empty())) {
    // The verdict document carries the PORTABLE scenario; --ids pins
    // machine-chosen identities the byzrename.repro/1 shape cannot
    // express, and --repeat/--repro describe other execution modes.
    std::cerr << "byzrename: --verdict-out describes a single seeded run; "
                 "not valid with --repeat/--repro/--ids\n";
    return 2;
  }

  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);

  if (!options.repro_path.empty()) {
    // Repro mode: replay a byzrename.repro/1 bundle bit-for-bit. The
    // bundle's own seed is used verbatim (no campaign derivation), so the
    // replay IS the original execution; --repeat K runs it K times on the
    // work-stealing pool and demands identical verdicts at any --threads.
    std::ifstream in(options.repro_path);
    if (!in.is_open()) {
      std::cerr << "byzrename: cannot open --repro bundle: " << options.repro_path << '\n';
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    exp::ReproBundle bundle;
    try {
      bundle = exp::parse_repro_bundle(buffer.str());
    } catch (const std::exception& error) {
      std::cerr << "byzrename: " << options.repro_path << ": " << error.what() << '\n';
      return 2;
    }

    const std::size_t replays = static_cast<std::size_t>(options.repeat);
    std::vector<exp::ReproVerdict> verdicts(replays);
    exp::Executor executor(options.threads);
    executor.run(replays, [&](std::size_t index) {
      verdicts[index] = exp::evaluate_scenario(bundle.scenario);
    });
    const exp::ReproVerdict& observed = verdicts.front();
    const bool consistent = std::all_of(
        verdicts.begin(), verdicts.end(),
        [&observed](const exp::ReproVerdict& v) { return v == observed; });
    const bool matches = observed == bundle.expected;

    if (!options.repro_out_path.empty()) {
      std::ofstream verdict_out(options.repro_out_path, std::ios::trunc);
      if (!verdict_out.is_open()) {
        std::cerr << "byzrename: cannot open --repro-out path: " << options.repro_out_path
                  << '\n';
        return 2;
      }
      exp::write_repro_verdict(verdict_out, bundle, observed, options.repeat, consistent);
    }
    if (options.report || options.repro_out_path.empty()) {
      exp::write_repro_verdict(std::cout, bundle, observed, options.repeat, consistent);
    }
    if (!options.quiet) {
      std::cout << "repro: " << options.repro_path << " replayed " << replays << "x on "
                << executor.threads() << " thread(s): observed "
                << exp::to_string(observed.kind)
                << (observed.classes.empty() ? "" : " [" + observed.classes + "]") << ", "
                << (consistent ? "consistent" : "INCONSISTENT") << ", "
                << (matches ? "matches expected verdict" : "DOES NOT match expected verdict")
                << '\n';
    }
    return matches && consistent ? 0 : 1;
  }

  if (options.repeat > 1) {
    // Repeat mode: the same scenario K times under derived seeds, on the
    // campaign engine's work-stealing pool. Aggregate stats replace the
    // single-run name table; --json/--report stream per-run reports.
    if (!options.trace_out_path.empty() || options.trace) {
      std::cerr << "byzrename: --trace/--trace-out describe a single run; not valid with --repeat\n";
      return 2;
    }
    if (options.audit || !options.metrics_out_path.empty() ||
        !options.metrics_jsonl_path.empty()) {
      std::cerr << "byzrename: --metrics-*/--audit describe a single run; not valid with --repeat\n";
      return 2;
    }
    exp::CampaignSpec spec;
    spec.name = "cli-repeat";
    spec.scenarios.push_back(
        {options.config.algorithm, options.config.params, options.config.adversary});
    spec.repetitions = options.repeat;
    spec.master_seed = options.config.seed;
    spec.options = options.config.options;
    spec.actual_faults = options.config.actual_faults;
    spec.fault_plan = options.config.fault_plan;

    exp::CampaignOptions run;
    run.threads = options.threads;
    run.cancel = &g_interrupted;
    run.profile = options.profile;
    std::ofstream repeat_json;
    if (!options.json_path.empty()) {
      repeat_json.open(options.json_path, std::ios::trunc);
      if (!repeat_json.is_open()) {
        std::cerr << "byzrename: cannot open --json path: " << options.json_path << '\n';
        return 2;
      }
      run.runs_out = &repeat_json;
    } else if (options.report) {
      run.runs_out = &std::cout;
    }
    if (!options.config.correct_ids.empty()) {
      const std::vector<sim::Id>& ids = options.config.correct_ids;
      run.configure = [&ids](std::size_t, core::ScenarioConfig& config) {
        config.correct_ids = ids;
      };
    }

    // Live telemetry plane for the repeat sweep: the campaign tracker
    // feeds /progress and the campaign-level Prometheus families; the
    // same hub renders the --prom-out end-of-sweep snapshot.
    exp::ProgressTracker progress;
    obs::ExpositionHub hub;
    std::optional<obs::HttpServer> server;
    if (options.serve_port >= 0 || !options.prom_out_path.empty()) {
      run.progress = &progress;
      hub.add_writer([&progress](std::ostream& os) { progress.write_prometheus(os); });
      hub.add_writer([](std::ostream& os) { obs::write_process_metrics(os); });
    }
    if (options.serve_port >= 0) {
      server.emplace();
      obs::mount_prometheus(*server, hub);
      obs::mount_healthz(*server);
      obs::mount_buildinfo(*server);
      obs::mount_json(*server, "/progress",
                      [&progress](std::ostream& os) { progress.write_progress_json(os); });
      try {
        server->start(static_cast<std::uint16_t>(options.serve_port));
      } catch (const std::exception& error) {
        std::cerr << "byzrename: " << error.what() << '\n';
        return 2;
      }
      if (!options.quiet) {
        std::cout << "[serve] live telemetry on http://127.0.0.1:" << server->port()
                  << "  (/metrics /healthz /progress /buildinfo)\n";
      }
    }

    exp::CampaignResult result;
    try {
      result = exp::run_campaign(spec, run);
    } catch (const std::exception& error) {
      std::cerr << "byzrename: " << error.what() << '\n';
      return 2;
    }

    if (!options.prom_out_path.empty()) {
      std::ofstream prom(options.prom_out_path, std::ios::trunc);
      if (!prom.is_open()) {
        std::cerr << "byzrename: cannot open --prom-out path: " << options.prom_out_path << '\n';
        return 2;
      }
      hub.write(prom);
    }
    if (options.profile && !result.profiles.empty()) {
      if (!options.profile_out_path.empty()) {
        std::ofstream profile_out(options.profile_out_path, std::ios::trunc);
        if (!profile_out.is_open()) {
          std::cerr << "byzrename: cannot open --profile-out path: " << options.profile_out_path
                    << '\n';
          return 2;
        }
        exp::write_campaign_profiles(profile_out, spec, result);
      }
      if (!options.quiet) {
        const obs::prof::ProfileAggregate& aggregate = result.profiles.front();
        std::cout << "profile     " << aggregate.runs() << " run(s) aggregated"
                  << (aggregate.hw_available() ? ", hardware counters on" : ", timer-only")
                  << '\n';
        trace::Table profile_table({"scope", "calls", "wall s", "cpu s", "allocs"});
        for (const auto& [path, entry] : aggregate.entries()) {
          std::ostringstream wall, cpu;
          wall.precision(4);
          wall << static_cast<double>(entry.wall_ns) * 1e-9;
          cpu.precision(4);
          cpu << static_cast<double>(entry.cpu_ns) * 1e-9;
          profile_table.add_row({std::string(static_cast<std::size_t>(entry.depth) * 2, ' ') +
                                     entry.name,
                                 std::to_string(entry.calls), wall.str(), cpu.str(),
                                 std::to_string(entry.allocs)});
        }
        profile_table.print(std::cout);
        std::cout << '\n';
      }
    }
    const exp::CellAggregate& stats = result.aggregates.at(0);
    if (!options.quiet) {
      std::cout << "algorithm   " << core::to_string(options.config.algorithm) << '\n'
                << "system      N=" << options.config.params.n
                << " t=" << options.config.params.t
                << " adversary=" << options.config.adversary
                << " master seed=" << options.config.seed << '\n'
                << "runs        " << stats.executed << " x derived seeds, " << result.threads
                << " thread(s), " << result.wall_seconds << "s\n\n";
      trace::Table table({"metric", "min", "mean", "p50", "p95", "p99", "max"});
      const auto stat_row = [&table](const std::string& name, const exp::StreamingStats& s) {
        table.add_row({name, std::to_string(s.min()), std::to_string(s.mean()),
                       std::to_string(s.quantile(0.5)), std::to_string(s.quantile(0.95)),
                       std::to_string(s.quantile(0.99)), std::to_string(s.max())});
      };
      stat_row("decide rounds", stats.rounds);
      stat_row("messages", stats.messages);
      stat_row("max name", stats.max_name);
      stat_row("rejected votes", stats.rejected_votes);
      table.print(std::cout);
      std::cout << '\n';
    }
    std::cout << "verdict: " << stats.ok << '/' << stats.executed
              << " runs hold all renaming properties";
    if (stats.first_violation_rep >= 0) {
      std::cout << " (first violation at rep " << stats.first_violation_rep << ": "
                << stats.first_violation << ')';
    }
    if (result.interrupted) std::cout << " [interrupted]";
    std::cout << '\n';
    if (result.interrupted) return 130;
    return result.all_ok() ? 0 : 1;
  }

  // Telemetry wiring: a JSONL file sink, a stdout report sink, and a
  // structured event log for the trace-event exporter — all optional.
  obs::Telemetry telemetry;
  std::ofstream json_out;
  std::optional<obs::RunReportSink> json_sink;
  if (!options.json_path.empty()) {
    json_out.open(options.json_path, std::ios::trunc);
    if (!json_out.is_open()) {
      std::cerr << "byzrename: cannot open --json path: " << options.json_path << '\n';
      return 2;
    }
    json_sink.emplace(json_out);
    telemetry.add_sink(*json_sink);
  }
  std::optional<obs::RunReportSink> stdout_sink;
  if (options.report) {
    stdout_sink.emplace(std::cout);
    telemetry.add_sink(*stdout_sink);
  }
  std::optional<obs::MetricsSink> metrics_sink;
  if (!options.metrics_out_path.empty() || !options.metrics_jsonl_path.empty()) {
    metrics_sink.emplace();
    telemetry.add_sink(*metrics_sink);
  }
  std::optional<obs::ComplexityAuditor> auditor;
  if (options.audit) {
    auditor.emplace();
    telemetry.add_sink(*auditor);
  }

  // Live telemetry plane for a single run: a mutex-guarded metrics sink
  // feeds the run's registry to GET /metrics while the round loop is
  // producing it, and a one-cell progress tracker answers /progress.
  // --prom-out renders the same hub after the run, so a mid-run scrape
  // and the final snapshot differ only by the in-flight counters.
  const bool live = options.serve_port >= 0 || !options.prom_out_path.empty();
  exp::ProgressTracker progress;
  std::optional<obs::GuardedMetricsSink> live_sink;
  obs::ExpositionHub hub;
  std::optional<obs::HttpServer> server;
  std::optional<obs::prof::Profiler> profiler;
  if (options.profile) {
    profiler.emplace();
    options.config.profiler = &*profiler;
  }
  if (live) {
    live_sink.emplace();
    telemetry.add_sink(*live_sink);
    std::vector<exp::CampaignCell> cells(1);
    cells[0].algorithm = options.config.algorithm;
    cells[0].params = options.config.params;
    cells[0].adversary = options.config.adversary;
    progress.begin("cli-single", cells, 1, 1);
    hub.add_writer([&progress](std::ostream& os) { progress.write_prometheus(os); });
    hub.add_writer([&sink = *live_sink](std::ostream& os) { sink.write_prometheus(os); });
    hub.add_writer([](std::ostream& os) { obs::write_process_metrics(os); });
    if (profiler) {
      hub.add_writer([&prof = *profiler](std::ostream& os) {
        obs::prof::write_profile_prometheus(os, prof.snapshot());
      });
    }
  }
  if (options.serve_port >= 0) {
    server.emplace();
    obs::mount_prometheus(*server, hub);
    obs::mount_healthz(*server);
    obs::mount_buildinfo(*server);
    obs::mount_json(*server, "/progress",
                    [&progress](std::ostream& os) { progress.write_progress_json(os); });
    if (profiler) obs::prof::mount_profile(*server, *profiler, "cli-single");
    try {
      server->start(static_cast<std::uint16_t>(options.serve_port));
    } catch (const std::exception& error) {
      std::cerr << "byzrename: " << error.what() << '\n';
      return 2;
    }
    if (!options.quiet) {
      std::cout << "[serve] live telemetry on http://127.0.0.1:" << server->port()
                << "  (/metrics /healthz /progress /buildinfo"
                << (profiler ? " /profile" : "") << ")\n";
    }
  }

  trace::EventLog event_log;
  if (!options.trace_out_path.empty()) options.config.event_log = &event_log;
  if (telemetry.active()) options.config.telemetry = &telemetry;

  // Interrupt hook: SIGINT/SIGTERM abort the run at the next round
  // boundary (the same cooperative granularity as the repro watchdog),
  // after which every sink flushes what it collected and the process
  // exits 130 — a Ctrl-C'd run leaves valid partial artifacts, not
  // truncated files.
  options.config.observer = [prev = std::move(options.config.observer)](
                                sim::Round round, const sim::Network& network) {
    if (prev) prev(round, network);
    if (g_interrupted.load(std::memory_order_acquire)) throw InterruptedRun{};
  };

  // Partial flush targets for the interrupt path; the normal path writes
  // the same files with complete data further down.
  const auto flush_partial_sinks = [&]() {
    if (!options.prom_out_path.empty()) {
      std::ofstream prom(options.prom_out_path, std::ios::trunc);
      if (prom.is_open()) hub.write(prom);
    }
    if (metrics_sink.has_value()) {
      if (!options.metrics_out_path.empty()) {
        std::ofstream metrics_out(options.metrics_out_path, std::ios::trunc);
        if (metrics_out.is_open()) metrics_sink->write_prometheus(metrics_out);
      }
      if (!options.metrics_jsonl_path.empty()) {
        std::ofstream metrics_jsonl(options.metrics_jsonl_path, std::ios::trunc);
        if (metrics_jsonl.is_open()) metrics_sink->write_metrics_jsonl(metrics_jsonl);
      }
    }
  };

  core::ScenarioResult result;
  if (live) progress.task_started();
  try {
    result = core::run_scenario(options.config);
  } catch (const InterruptedRun&) {
    if (live) progress.finish(/*interrupted=*/true);
    flush_partial_sinks();
    std::cerr << "byzrename: interrupted; partial sinks flushed\n";
    return 130;
  } catch (const std::exception& error) {
    std::cerr << "byzrename: " << error.what() << '\n';
    return 2;
  }
  if (live) {
    progress.task_finished(0, result.report.all_ok(), /*quarantined=*/false);
    progress.finish(/*interrupted=*/false);
  }

  if (!options.prom_out_path.empty()) {
    std::ofstream prom(options.prom_out_path, std::ios::trunc);
    if (!prom.is_open()) {
      std::cerr << "byzrename: cannot open --prom-out path: " << options.prom_out_path << '\n';
      return 2;
    }
    hub.write(prom);
  }

  std::optional<obs::prof::ProfileSnapshot> profile_snapshot;
  if (profiler) profile_snapshot = profiler->snapshot();
  if (profile_snapshot && !options.profile_out_path.empty()) {
    std::ofstream profile_out(options.profile_out_path, std::ios::trunc);
    if (!profile_out.is_open()) {
      std::cerr << "byzrename: cannot open --profile-out path: " << options.profile_out_path
                << '\n';
      return 2;
    }
    obs::prof::write_profile_json(profile_out, *profile_snapshot, "cli-single");
  }
  if (profile_snapshot && !options.flame_out_path.empty()) {
    std::ofstream flame_out(options.flame_out_path, std::ios::trunc);
    if (!flame_out.is_open()) {
      std::cerr << "byzrename: cannot open --flame-out path: " << options.flame_out_path << '\n';
      return 2;
    }
    obs::prof::write_collapsed(flame_out, *profile_snapshot);
  }

  if (!options.trace_out_path.empty()) {
    std::ofstream trace_out(options.trace_out_path, std::ios::trunc);
    if (!trace_out.is_open()) {
      std::cerr << "byzrename: cannot open --trace-out path: " << options.trace_out_path << '\n';
      return 2;
    }
    const int faults =
        options.config.actual_faults >= 0 ? options.config.actual_faults : options.config.params.t;
    obs::TraceMeta meta;
    meta.title = std::string(core::to_string(options.config.algorithm)) +
                 " N=" + std::to_string(options.config.params.n) +
                 " t=" + std::to_string(options.config.params.t) + " adversary=" +
                 options.config.adversary + " seed=" + std::to_string(options.config.seed);
    meta.process_count = options.config.params.n;
    meta.rounds = result.run.rounds;
    meta.byzantine.assign(static_cast<std::size_t>(options.config.params.n), false);
    for (int i = options.config.params.n - faults; i < options.config.params.n; ++i) {
      meta.byzantine[static_cast<std::size_t>(i)] = true;
    }
    // Phase lane + counter tracks: the resolved iteration count follows
    // from expected_steps (op/const run exactly 4 + iterations rounds).
    int iterations = -1;
    if (options.config.algorithm == core::Algorithm::kOpRenaming ||
        options.config.algorithm == core::Algorithm::kOpRenamingConstantTime) {
      iterations = core::expected_steps(options.config.algorithm, options.config.params,
                                        options.config.options) - 4;
    }
    meta.phase_labels.reserve(static_cast<std::size_t>(result.run.rounds));
    for (int r = 1; r <= result.run.rounds; ++r) {
      meta.phase_labels.push_back(
          core::phase_label(core::round_phase(options.config.algorithm, r, iterations)));
    }
    meta.metrics = &result.run.metrics;
    obs::write_chrome_trace(trace_out, event_log, meta);
  }

  if (metrics_sink.has_value()) {
    if (!options.metrics_out_path.empty()) {
      std::ofstream metrics_out(options.metrics_out_path, std::ios::trunc);
      if (!metrics_out.is_open()) {
        std::cerr << "byzrename: cannot open --metrics-out path: " << options.metrics_out_path
                  << '\n';
        return 2;
      }
      metrics_sink->write_prometheus(metrics_out);
    }
    if (!options.metrics_jsonl_path.empty()) {
      std::ofstream metrics_jsonl(options.metrics_jsonl_path, std::ios::trunc);
      if (!metrics_jsonl.is_open()) {
        std::cerr << "byzrename: cannot open --metrics-jsonl path: "
                  << options.metrics_jsonl_path << '\n';
        return 2;
      }
      metrics_sink->write_metrics_jsonl(metrics_jsonl);
    }
  }

  if (!options.verdict_out_path.empty()) {
    std::ofstream verdict_out(options.verdict_out_path, std::ios::trunc);
    if (!verdict_out.is_open()) {
      std::cerr << "byzrename: cannot open --verdict-out path: " << options.verdict_out_path
                << '\n';
      return 2;
    }
    // The portable scenario + the digest evaluate_scenario would have
    // produced for it. Both serialize through the shared exp:: writers,
    // so this document is byte-identical to the byzrenamed service's
    // verdict for the same submission — the CI smoke test diffs them.
    exp::ReproScenario scenario;
    scenario.algorithm = options.config.algorithm;
    scenario.params = options.config.params;
    scenario.adversary = options.config.adversary;
    scenario.actual_faults = options.config.actual_faults;
    scenario.seed = options.config.seed;
    scenario.iterations = options.config.options.approximation_iterations;
    scenario.validate_votes = options.config.options.validate_votes;
    scenario.extra_rounds = options.config.extra_rounds;
    scenario.fault_plan = options.config.fault_plan;
    exp::ReproVerdict verdict;
    verdict.kind =
        result.report.all_ok() ? exp::FailureKind::kNone : exp::FailureKind::kViolation;
    verdict.classes = result.report.classes();
    verdict.detail = result.report.detail;
    verdict.rounds = result.run.rounds;
    verdict.terminated = result.run.terminated;
    verdict.max_name = static_cast<std::int64_t>(result.report.max_name);
    svc::write_verdict_document(verdict_out, scenario, verdict);
  }

  bool audit_ok = true;
  if (auditor.has_value()) {
    audit_ok = auditor->all_ok();
    if (!options.audit_out_path.empty()) {
      std::ofstream audit_out(options.audit_out_path, std::ios::trunc);
      if (!audit_out.is_open()) {
        std::cerr << "byzrename: cannot open --audit-out path: " << options.audit_out_path
                  << '\n';
        return 2;
      }
      auditor->write_audit_jsonl(audit_out);
    }
    if (!options.quiet || !audit_ok) {
      if (audit_ok) {
        std::cout << "audit: " << auditor->bounds().size()
                  << " complexity bound(s) checked, all hold\n";
      } else {
        for (const obs::AuditBound& bound : auditor->bounds()) {
          if (bound.ok) continue;
          std::cout << "audit: VIOLATED " << bound.bound << " [" << bound.formula
                    << "]: observed " << bound.observed << (bound.upper ? " > " : " < ")
                    << "limit " << bound.limit
                    << (bound.detail.empty() ? "" : " (" + bound.detail + ")") << '\n';
        }
      }
    }
  }

  if (!options.quiet) {
    std::cout << "algorithm   " << core::to_string(options.config.algorithm) << '\n'
              << "system      N=" << options.config.params.n << " t=" << options.config.params.t
              << " adversary=" << options.config.adversary << " seed=" << options.config.seed
              << '\n'
              << "rounds      " << result.run.rounds << '\n'
              << "namespace   [1.." << result.target_namespace << "], max used "
              << result.report.max_name << '\n'
              << "messages    " << result.run.metrics.total_messages() << " ("
              << result.run.metrics.total_bits() / 8 << " bytes on the wire)\n\n";
    trace::Table table({"original id", "new name"});
    for (const core::NamedProcess& p : result.named) {
      table.add_row({std::to_string(p.original_id),
                     p.new_name.has_value() ? std::to_string(*p.new_name) : "(none)"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  if (profile_snapshot && !options.quiet) {
    std::cout << "profile: " << profile_snapshot->nodes.size() << " scope(s), "
              << (profile_snapshot->hw_available ? "hardware counters on" : "timer-only mode")
              << (obs::prof::AllocProfiler::interposed() ? "" : ", allocation counting off")
              << '\n';
    trace::Table profile_table({"scope", "calls", "wall s", "cpu s", "allocs", "cycles"});
    for (const obs::prof::ProfileNode& node : profile_snapshot->nodes) {
      std::ostringstream wall, cpu;
      wall.precision(4);
      wall << static_cast<double>(node.wall_ns) * 1e-9;
      cpu.precision(4);
      cpu << static_cast<double>(node.cpu_ns) * 1e-9;
      profile_table.add_row(
          {std::string(static_cast<std::size_t>(node.depth) * 2, ' ') + node.name,
           std::to_string(node.calls), wall.str(), cpu.str(), std::to_string(node.allocs),
           std::to_string(node.hw.cycles)});
    }
    profile_table.print(std::cout);
    std::cout << '\n';
  }

  if (options.trace) {
    trace::Table table({"round", "messages", "bytes"});
    for (std::size_t r = 0; r < result.run.metrics.per_round().size(); ++r) {
      table.add_row({std::to_string(r + 1),
                     std::to_string(result.run.metrics.per_round()[r].messages),
                     std::to_string(result.run.metrics.per_round()[r].bits / 8)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "verdict: "
            << (result.report.all_ok() ? "all renaming properties hold" : result.report.detail)
            << '\n';
  return result.report.all_ok() && audit_ok ? 0 : 1;
}
