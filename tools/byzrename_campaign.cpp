// byzrename-campaign — parallel experiment campaign driver.
//
// Expands a declarative sweep spec into (cell, repetition) runs, executes
// them on a work-stealing thread pool, and emits deterministic per-cell
// aggregates (schema byzrename.campaign/1). The aggregate file is
// bit-identical at any --threads value, and --shard i/k outputs union to
// the full grid, so big campaigns can be split across machines and the
// pieces concatenated. See docs/CAMPAIGNS.md.
//
// Examples:
//   byzrename-campaign --grid "algo=op;n=10,13,22;t=3,4,7;adversary=split,asymflood;reps=5"
//   byzrename-campaign --preset table4 --threads 8 --out t4.jsonl
//   byzrename-campaign --grid "nt=13:4;adversary=orderbreak;reps=100" --fail-fast
//   byzrename-campaign --grid "..." --shard 0/4 --out part0.jsonl
//
// Exit code 0 iff every run's renaming properties held; 2 on usage
// errors; 130 when interrupted by SIGINT/SIGTERM (partial results are
// still flushed to every sink, with the summary marked interrupted).

#include <atomic>
#include <charconv>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "exp/progress.h"
#include "exp/repro.h"
#include "exp/spec_parse.h"
#include "obs/http/buildinfo.h"
#include "obs/http/exposition.h"
#include "obs/http/http_server.h"
#include "obs/prof/alloc_interpose.h"

namespace {

using namespace byzrename;

/// SIGINT/SIGTERM turn into cooperative cancellation: the executor
/// stops starting runs, in-flight runs finish, and every sink is
/// flushed with the partial results (summary marked interrupted:true).
/// A second signal exits immediately — the escape hatch when a run
/// itself is wedged.
std::atomic<bool> g_interrupted{false};

extern "C" void handle_interrupt(int) {
  if (g_interrupted.exchange(true)) std::_Exit(130);
}

void print_usage() {
  std::cout <<
      "usage: byzrename-campaign [options]\n"
      "  --grid <spec>         sweep spec, e.g. \"algo=op;n=10,13;t=3,4;adversary=split;reps=5\"\n"
      "                        (clauses: algo,n,t,nt,adversary,reps,seed,faults,iterations,\n"
      "                        extra,fault,keep-invalid,no-validation,name; ranges like\n"
      "                        n=4..16/3; fault=drop:0.2+forge:2+restart:3@5 injects\n"
      "                        link/crash/impersonation/restart faults)\n"
      "  --preset <name>       built-in grid: table4 (T4 complexity diagonal),\n"
      "                        smoke (tiny 2x2 sanity grid), forgeboundary /\n"
      "                        restartboundary (EXPERIMENTS.md degradation frontiers;\n"
      "                        rerun with fault=... per table row)\n"
      "  --threads <int>       worker threads, >= 1 (default: hardware concurrency)\n"
      "  --out <path>          deterministic byzrename.campaign/1 cell lines\n"
      "  --runs-out <path>     one byzrename.run/1 line per run (parallel writers,\n"
      "                        whole-line atomic)\n"
      "  --summary-out <path>  volatile byzrename.campaign-summary/1 line\n"
      "  --timeout <seconds>   per-run cooperative watchdog; expired runs are retried,\n"
      "                        then quarantined (0 = off)\n"
      "  --retries <int>       extra attempts before a throwing/hanging run is\n"
      "                        quarantined (default 1)\n"
      "  --quarantine-dir <d>  write one byzrename.repro/1 bundle per quarantined run\n"
      "                        into <d> (replayable via byzrename --repro)\n"
      "  --round-stats         aggregate per-round metric series into the cell lines\n"
      "                        (per_round array; deterministic at any --threads)\n"
      "  --fail-fast           cancel outstanding runs on the first violation\n"
      "  --shard <i>/<k>       execute only cells with index %% k == i\n"
      "  --serve <port>        expose live /metrics, /healthz, /progress on\n"
      "                        127.0.0.1:<port> while the campaign runs (0 = ephemeral)\n"
      "  --prom-out <path>     final Prometheus snapshot (same exposition path as /metrics)\n"
      "  --profile-out <path>  attach the phase-attributed profiler to every run and write\n"
      "                        one byzrename.profile/1 kind-\"cell\" line per cell; count\n"
      "                        fields are byte-identical at any --threads (wall/CPU/hw\n"
      "                        counters ride in each node's volatile object)\n"
      "  --quiet               suppress the human table\n"
      "  --help                this text\n"
      "\n"
      "Spec format and schema reference: docs/CAMPAIGNS.md, docs/FAULTS.md\n";
}

struct CliError {
  std::string message;
};

/// Strict whole-token numeric parse: no leading/trailing junk, no silent
/// truncation (unlike std::stoi, which accepts "8abc").
template <typename Number>
Number parse_number(std::string_view flag, std::string_view token) {
  Number value{};
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    throw CliError{std::string(flag) + " expects a number, got '" + std::string(token) + "'"};
  }
  return value;
}

exp::CampaignSpec preset_spec(std::string_view name) {
  if (name == "table4") {
    // The T4 complexity diagonal (Section IV-D formulas) under the
    // selection-loading split adversary — the acceptance grid for the
    // parallel engine.
    return exp::parse_campaign_spec(
        "name=table4;algo=op;nt=4:1,7:2,10:3,13:4,22:7,31:10,40:13,52:17,64:21;"
        "adversary=split;reps=3;seed=11");
  }
  if (name == "smoke") {
    return exp::parse_campaign_spec(
        "name=smoke;algo=op;n=7,10;t=2,3;adversary=silent,idflood;reps=2;seed=7");
  }
  if (name == "forgeboundary") {
    // Impersonation degradation frontier (EXPERIMENTS.md): one forged
    // sender per correct receiver per round against all three regimes at
    // a shared valid (n, t). Rows of the boundary table vary the rule —
    // rerun with fault=forge:K[xP] per row; the grid and seed stay fixed.
    return exp::parse_campaign_spec(
        "name=forgeboundary;algo=op,const,fast;n=13;t=2;adversary=silent;"
        "reps=50;seed=7;fault=forge:1");
  }
  if (name == "restartboundary") {
    // Transient-restart frontier (EXPERIMENTS.md): one correct process
    // loses its state mid-protocol. extra=12 gives the restarted process
    // headroom to re-finish so the table measures recovery, not just the
    // missed deadline. Rows vary fault=restart:PID@R[,scramble].
    return exp::parse_campaign_spec(
        "name=restartboundary;algo=op,const,fast;n=13;t=2;adversary=silent;"
        "reps=50;seed=7;extra=12;fault=restart:3@2");
  }
  throw CliError{"unknown preset: " + std::string(name)};
}

struct Options {
  exp::CampaignSpec spec;
  bool have_spec = false;
  exp::CampaignOptions run;
  std::string out_path;
  std::string runs_out_path;
  std::string summary_out_path;
  std::string quarantine_dir;
  std::string prom_out_path;
  std::string profile_out_path;
  int serve_port = -1;  ///< -1 = no server; 0 = ephemeral port
  bool quiet = false;
};

Options parse(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw CliError{std::string(argv[i]) + " needs a value"};
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help") {
      print_usage();
      std::exit(0);
    } else if (arg == "--grid") {
      options.spec = exp::parse_campaign_spec(next_value(i));
      options.have_spec = true;
    } else if (arg == "--preset") {
      options.spec = preset_spec(next_value(i));
      options.have_spec = true;
    } else if (arg == "--threads") {
      options.run.threads = parse_number<int>("--threads", next_value(i));
      if (options.run.threads < 1) {
        throw CliError{"--threads must be >= 1 (omit the flag for hardware concurrency)"};
      }
    } else if (arg == "--out") {
      options.out_path = next_value(i);
    } else if (arg == "--runs-out") {
      options.runs_out_path = next_value(i);
    } else if (arg == "--summary-out") {
      options.summary_out_path = next_value(i);
    } else if (arg == "--timeout") {
      options.run.run_timeout_seconds = parse_number<double>("--timeout", next_value(i));
      if (options.run.run_timeout_seconds < 0.0) {
        throw CliError{"--timeout must be >= 0 (0 disables the watchdog)"};
      }
    } else if (arg == "--retries") {
      options.run.quarantine_retries = parse_number<int>("--retries", next_value(i));
      if (options.run.quarantine_retries < 0) throw CliError{"--retries must be >= 0"};
    } else if (arg == "--quarantine-dir") {
      options.quarantine_dir = next_value(i);
      if (options.quarantine_dir.empty()) throw CliError{"--quarantine-dir needs a path"};
    } else if (arg == "--round-stats") {
      options.run.round_stats = true;
    } else if (arg == "--fail-fast") {
      options.run.fail_fast = true;
    } else if (arg == "--shard") {
      const std::string value = next_value(i);
      const std::size_t slash = value.find('/');
      if (slash == std::string::npos) throw CliError{"--shard expects i/k"};
      options.run.shard_index = parse_number<int>("--shard", value.substr(0, slash));
      options.run.shard_count = parse_number<int>("--shard", value.substr(slash + 1));
      if (options.run.shard_count < 1 || options.run.shard_index < 0 ||
          options.run.shard_index >= options.run.shard_count) {
        throw CliError{"--shard requires 0 <= i < k"};
      }
    } else if (arg == "--serve") {
      const int port = parse_number<int>("--serve", next_value(i));
      if (port < 0 || port > 65535) throw CliError{"--serve expects a port in [0, 65535]"};
      options.serve_port = port;
    } else if (arg == "--prom-out") {
      options.prom_out_path = next_value(i);
      if (options.prom_out_path.empty()) throw CliError{"--prom-out needs a path"};
    } else if (arg == "--profile-out") {
      options.profile_out_path = next_value(i);
      if (options.profile_out_path.empty()) throw CliError{"--profile-out needs a path"};
      options.run.profile = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      throw CliError{"unknown option: " + std::string(arg)};
    }
  }
  if (!options.have_spec) throw CliError{"--grid or --preset is required"};
  return options;
}

std::optional<std::ofstream> open_out(const std::string& path, const char* flag) {
  if (path.empty()) return std::nullopt;
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    throw CliError{std::string("cannot open ") + flag + " path: " + path};
  }
  return out;
}

/// Writes one byzrename.repro/1 bundle per quarantined run so CI (or a
/// human) can replay the exact failing execution with `byzrename --repro`.
/// Returns the number of bundles written.
std::size_t write_quarantine_bundles(const std::string& dir, const exp::CampaignSpec& spec,
                                     const exp::CampaignResult& result) {
  std::size_t written = 0;
  const std::size_t reps =
      result.cells.empty() ? 1 : result.runs.size() / result.cells.size();
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const exp::RunRecord& record = result.runs[i];
    if (!record.quarantined) continue;
    if (written == 0) std::filesystem::create_directories(dir);
    const exp::CampaignCell& cell = result.cells[i / reps];
    exp::ReproBundle bundle;
    bundle.campaign = spec.name;
    bundle.cell = exp::cell_key(cell);
    bundle.rep = record.rep;
    bundle.scenario.algorithm = cell.algorithm;
    bundle.scenario.params = cell.params;
    bundle.scenario.adversary = cell.adversary;
    bundle.scenario.actual_faults = spec.actual_faults;
    bundle.scenario.seed = record.seed;
    bundle.scenario.iterations = spec.options.approximation_iterations;
    bundle.scenario.validate_votes = spec.options.validate_votes;
    bundle.scenario.extra_rounds = spec.extra_rounds;
    bundle.scenario.fault_plan = spec.fault_plan;
    bundle.expected.kind = record.failure;
    bundle.expected.classes = record.violation_classes;
    bundle.expected.detail = record.detail;
    const std::string path = dir + "/quarantine-" + std::to_string(record.cell) + "-rep" +
                             std::to_string(record.rep) + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open()) throw CliError{"cannot write quarantine bundle: " + path};
    exp::write_repro_bundle(out, bundle);
    written += 1;
  }
  return written;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::optional<std::ofstream> out;
  std::optional<std::ofstream> runs_out;
  std::optional<std::ofstream> summary_out;
  std::optional<std::ofstream> profile_out;
  try {
    options = parse(argc, argv);
    out = open_out(options.out_path, "--out");
    runs_out = open_out(options.runs_out_path, "--runs-out");
    summary_out = open_out(options.summary_out_path, "--summary-out");
    profile_out = open_out(options.profile_out_path, "--profile-out");
  } catch (const CliError& error) {
    std::cerr << "byzrename-campaign: " << error.message << "\n\n";
    print_usage();
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "byzrename-campaign: " << error.what() << "\n\n";
    print_usage();
    return 2;
  }

  if (runs_out.has_value()) {
    options.run.runs_out = &*runs_out;
    options.run.runs_bench = options.spec.name;
  }

  // Graceful interruption: first SIGINT/SIGTERM flips the cooperative
  // cancel flag run_campaign polls at task start; every sink below still
  // runs on the partial results. A second signal hard-exits (130).
  options.run.cancel = &g_interrupted;
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);

  // Live telemetry plane. The tracker is fed from inside run_campaign
  // (lock-free counters); the server thread only ever reads snapshots,
  // so the deterministic aggregate path is untouched.
  exp::ProgressTracker progress;
  obs::ExpositionHub hub;
  std::optional<obs::HttpServer> server;
  if (options.serve_port >= 0 || !options.prom_out_path.empty()) {
    options.run.progress = &progress;
    hub.add_writer([&progress](std::ostream& os) { progress.write_prometheus(os); });
    hub.add_writer([](std::ostream& os) { obs::write_process_metrics(os); });
  }
  if (options.serve_port >= 0) {
    server.emplace();
    obs::mount_prometheus(*server, hub);
    obs::mount_healthz(*server);
    obs::mount_buildinfo(*server);
    obs::mount_json(*server, "/progress",
                    [&progress](std::ostream& os) { progress.write_progress_json(os); });
    try {
      server->start(static_cast<std::uint16_t>(options.serve_port));
    } catch (const std::exception& error) {
      std::cerr << "byzrename-campaign: " << error.what() << '\n';
      return 2;
    }
    if (!options.quiet) {
      std::cout << "[serve] live telemetry on http://127.0.0.1:" << server->port()
                << "  (/metrics /healthz /progress /buildinfo)\n";
    }
  }

  exp::CampaignResult result;
  try {
    result = exp::run_campaign(options.spec, options.run);
  } catch (const std::exception& error) {
    std::cerr << "byzrename-campaign: " << error.what() << '\n';
    return 2;
  }

  if (out.has_value()) exp::write_campaign_cells(*out, options.spec, result);
  if (summary_out.has_value()) exp::write_campaign_summary(*summary_out, options.spec, result);
  if (profile_out.has_value()) exp::write_campaign_profiles(*profile_out, options.spec, result);

  if (!options.prom_out_path.empty()) {
    std::ofstream prom(options.prom_out_path, std::ios::trunc);
    if (!prom.is_open()) {
      std::cerr << "byzrename-campaign: cannot open --prom-out path: "
                << options.prom_out_path << '\n';
      return 2;
    }
    hub.write(prom);
  }

  std::size_t bundles = 0;
  if (!options.quarantine_dir.empty()) {
    try {
      bundles = write_quarantine_bundles(options.quarantine_dir, options.spec, result);
    } catch (const CliError& error) {
      std::cerr << "byzrename-campaign: " << error.message << '\n';
      return 2;
    } catch (const std::exception& error) {
      std::cerr << "byzrename-campaign: " << error.what() << '\n';
      return 2;
    }
  }

  if (!options.quiet) {
    std::cout << "campaign " << options.spec.name << ": " << result.cells.size() << " cell(s) x "
              << options.spec.repetitions << " rep(s)";
    if (options.run.shard_count > 1) {
      std::cout << "  [shard " << options.run.shard_index << '/' << options.run.shard_count << ']';
    }
    std::cout << "\n\n";
    exp::print_campaign_table(std::cout, result);
    if (out.has_value()) std::cout << "\n[campaign] cell aggregates: " << options.out_path << '\n';
    if (runs_out.has_value()) std::cout << "[campaign] run reports: " << options.runs_out_path << '\n';
    if (bundles > 0) {
      std::cout << "[campaign] quarantine bundles: " << bundles << " in "
                << options.quarantine_dir << '\n';
    }
    if (!options.prom_out_path.empty()) {
      std::cout << "[campaign] prometheus snapshot: " << options.prom_out_path << '\n';
    }
    if (profile_out.has_value()) {
      std::cout << "[campaign] profile aggregates: " << options.profile_out_path << '\n';
    }
  }
  if (result.interrupted) return 130;
  return result.all_ok() ? 0 : 1;
}
