// byzrename-shrink — delta-debugging minimizer for failing scenarios.
//
// Takes a failing scenario (either scenario flags like the byzrename CLI,
// or an existing byzrename.repro/1 bundle) and greedily shrinks it to the
// smallest scenario that still fails the SAME way (same violation class
// set / exception message). Emits the minimized scenario as a
// self-contained repro bundle that `byzrename --repro` replays exactly.
//
// Examples:
//   byzrename-shrink --n 16 --t 5 --fault-plan drop:0.6 --seed 3 --out min.json
//   byzrename-shrink --bundle quarantine/quarantine-2-rep0.json --out min.json
//   byzrename-shrink --n 10 --t 3 --adversary orderbreak --no-validation -v
//
// Exit code 0 iff the input failed and a bundle was written (even when no
// candidate was smaller); 2 on usage errors or a non-failing input.

#include <charconv>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "core/algorithm.h"
#include "exp/repro.h"
#include "exp/shrink.h"
#include "sim/fault.h"

namespace {

using namespace byzrename;

void print_usage() {
  std::cout <<
      "usage: byzrename-shrink [options]\n"
      "  --bundle <path>       start from an existing byzrename.repro/1 bundle\n"
      "                        (scenario flags below then override its fields)\n"
      "  --algorithm <name>    protocol (default op)\n"
      "  --n <int>             number of processes (default 10)\n"
      "  --t <int>             fault budget (default 3)\n"
      "  --faults <int>        actual faulty processes, <= t (default t)\n"
      "  --adversary <name>    Byzantine strategy (default silent)\n"
      "  --seed <uint64>       run seed (default 1)\n"
      "  --iterations <int>    voting iterations override (Alg. 1 only)\n"
      "  --extra <int>         extra post-decision rounds\n"
      "  --no-validation       disable the Alg. 2 isValid filter\n"
      "  --fault-plan <spec>   injected faults, e.g. \"drop:0.4+crash:3@2..5\"\n"
      "  --max-attempts <int>  candidate-evaluation budget (default 200)\n"
      "  --timeout <seconds>   watchdog per candidate evaluation (0 = off)\n"
      "  --out <path>          minimized bundle path (default: stdout)\n"
      "  -v, --verbose         print each accepted shrink step\n"
      "  --help                this text\n"
      "\n"
      "Shrinker semantics and bundle schema: docs/FAULTS.md\n";
}

struct CliError {
  std::string message;
};

template <typename Number>
Number parse_number(std::string_view flag, std::string_view token) {
  Number value{};
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    throw CliError{std::string(flag) + " expects a number, got '" + std::string(token) + "'"};
  }
  return value;
}

struct Options {
  exp::ReproScenario scenario;
  exp::ShrinkOptions shrink;
  std::string bundle_path;
  std::string out_path;
  bool verbose = false;
};

Options parse(int argc, char** argv) {
  Options options;
  options.scenario.params = {.n = 10, .t = 3};
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw CliError{std::string(argv[i]) + " needs a value"};
    return argv[++i];
  };
  // First pass: load the bundle (if any) so explicit flags override it.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--bundle") {
      options.bundle_path = next_value(i);
      std::ifstream in(options.bundle_path);
      if (!in.is_open()) throw CliError{"cannot open --bundle: " + options.bundle_path};
      std::ostringstream buffer;
      buffer << in.rdbuf();
      try {
        options.scenario = exp::parse_repro_bundle(buffer.str()).scenario;
      } catch (const std::exception& error) {
        throw CliError{options.bundle_path + ": " + error.what()};
      }
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help") {
      print_usage();
      std::exit(0);
    } else if (arg == "--bundle") {
      ++i;  // consumed by the first pass
    } else if (arg == "--algorithm") {
      const std::string value = next_value(i);
      const auto algorithm = core::algorithm_from_token(value);
      if (!algorithm.has_value()) throw CliError{"unknown algorithm: " + value};
      options.scenario.algorithm = *algorithm;
    } else if (arg == "--n") {
      options.scenario.params.n = parse_number<int>(arg, next_value(i));
    } else if (arg == "--t") {
      options.scenario.params.t = parse_number<int>(arg, next_value(i));
    } else if (arg == "--faults") {
      options.scenario.actual_faults = parse_number<int>(arg, next_value(i));
    } else if (arg == "--adversary") {
      options.scenario.adversary = next_value(i);
    } else if (arg == "--seed") {
      options.scenario.seed = parse_number<std::uint64_t>(arg, next_value(i));
    } else if (arg == "--iterations") {
      options.scenario.iterations = parse_number<int>(arg, next_value(i));
    } else if (arg == "--extra") {
      options.scenario.extra_rounds = parse_number<int>(arg, next_value(i));
    } else if (arg == "--no-validation") {
      options.scenario.validate_votes = false;
    } else if (arg == "--fault-plan") {
      try {
        options.scenario.fault_plan = sim::parse_fault_plan(next_value(i));
      } catch (const std::invalid_argument& error) {
        throw CliError{error.what()};
      }
    } else if (arg == "--max-attempts") {
      options.shrink.max_attempts = parse_number<int>(arg, next_value(i));
      if (options.shrink.max_attempts < 1) throw CliError{"--max-attempts must be >= 1"};
    } else if (arg == "--timeout") {
      options.shrink.run_timeout_seconds = parse_number<double>(arg, next_value(i));
      if (options.shrink.run_timeout_seconds < 0.0) throw CliError{"--timeout must be >= 0"};
    } else if (arg == "--out") {
      options.out_path = next_value(i);
    } else if (arg == "-v" || arg == "--verbose") {
      options.verbose = true;
    } else {
      throw CliError{"unknown option: " + std::string(arg)};
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    options = parse(argc, argv);
  } catch (const CliError& error) {
    std::cerr << "byzrename-shrink: " << error.message << "\n\n";
    print_usage();
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "byzrename-shrink: " << error.what() << '\n';
    return 2;
  }

  if (options.verbose) {
    options.shrink.on_shrink = [](const exp::ReproScenario& scenario, std::size_t size) {
      std::cerr << "[shrink] size " << size << ": n=" << scenario.params.n
                << " t=" << scenario.params.t << " adversary=" << scenario.adversary
                << " faults=" << scenario.actual_faults
                << " plan=" << (scenario.fault_plan.empty() ? std::string("(none)")
                                                            : sim::to_spec(scenario.fault_plan))
                << '\n';
    };
  }

  exp::ShrinkResult result;
  try {
    result = exp::shrink_scenario(options.scenario, options.shrink);
  } catch (const std::invalid_argument& error) {
    std::cerr << "byzrename-shrink: " << error.what() << '\n';
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "byzrename-shrink: " << error.what() << '\n';
    return 2;
  }

  exp::ReproBundle bundle;
  bundle.campaign = "shrink";
  bundle.scenario = result.scenario;
  bundle.expected = result.verdict;
  if (options.out_path.empty()) {
    exp::write_repro_bundle(std::cout, bundle);
  } else {
    std::ofstream out(options.out_path, std::ios::trunc);
    if (!out.is_open()) {
      std::cerr << "byzrename-shrink: cannot open --out path: " << options.out_path << '\n';
      return 2;
    }
    exp::write_repro_bundle(out, bundle);
  }

  std::cerr << "shrink: size " << result.original_size << " -> " << result.final_size << " ("
            << result.accepted_shrinks << " accepted / " << result.attempts
            << " attempts), failure " << exp::to_string(result.verdict.kind)
            << (result.verdict.classes.empty() ? "" : " [" + result.verdict.classes + "]")
            << (result.shrank() ? "" : "; already minimal") << '\n';
  return 0;
}
