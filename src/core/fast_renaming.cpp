#include "core/fast_renaming.h"

#include <algorithm>
#include <stdexcept>

namespace byzrename::core {

using sim::Delivery;
using sim::Id;
using sim::IdMsg;
using sim::Inbox;
using sim::LinkIndex;
using sim::MultiEchoMsg;
using sim::Name;
using sim::Outbox;
using sim::Round;

FastRenamingProcess::FastRenamingProcess(sim::SystemParams params, Id my_id,
                                         RenamingOptions options)
    : params_(params),
      options_(options),
      my_id_(my_id),
      link_id_(static_cast<std::size_t>(params.n), 0),
      link_seen_(static_cast<std::size_t>(params.n), 0),
      echoed_(static_cast<std::size_t>(params.n), 0) {
  if (!valid_for_fast_renaming(params)) {
    throw std::invalid_argument("FastRenamingProcess: requires N > 2t^2 + t");
  }
}

void FastRenamingProcess::on_send(Round round, Outbox& out) {
  if (decided_) return;
  if (round == 1) {
    out.broadcast(IdMsg{my_id_});
  } else if (round == 2) {
    MultiEchoMsg echo;
    echo.ids.assign(timely_.begin(), timely_.end());
    out.broadcast(std::move(echo));
  }
}

bool FastRenamingProcess::is_valid_echo(LinkIndex link, const std::vector<Id>& ids) const {
  if (link_seen_[static_cast<std::size_t>(link)] == 0) {
    return false;  // sender never announced an id in step 1
  }
  if (static_cast<int>(ids.size()) > params_.n) return false;
  int common = 0;
  for (const Id id : ids) {
    if (timely_.contains(id)) ++common;
  }
  return common >= params_.n - params_.t;
}

void FastRenamingProcess::on_receive(Round round, const Inbox& inbox) {
  if (decided_) return;
  if (round == 1) {
    for (const Delivery& d : inbox) {
      const auto* msg = std::get_if<IdMsg>(&*d.payload);
      if (msg == nullptr) continue;
      auto& seen = link_seen_[static_cast<std::size_t>(d.link)];
      if (seen != 0) continue;  // one announcement per link
      seen = 1;
      link_id_[static_cast<std::size_t>(d.link)] = msg->id;
      timely_.insert(msg->id);
    }
    return;
  }
  if (round != 2) return;

  for (const Delivery& d : inbox) {
    const auto* msg = std::get_if<MultiEchoMsg>(&*d.payload);
    if (msg == nullptr) continue;
    auto& echoed = echoed_[static_cast<std::size_t>(d.link)];
    if (echoed != 0) continue;  // one MultiEcho per link
    echoed = 1;
    // Treat the id list as a set: repeating an id inside one message must
    // not inflate its counter.
    echo_ids_.assign(msg->ids.begin(), msg->ids.end());
    std::sort(echo_ids_.begin(), echo_ids_.end());
    echo_ids_.erase(std::unique(echo_ids_.begin(), echo_ids_.end()), echo_ids_.end());
    if (!is_valid_echo(d.link, echo_ids_)) {
      ++rejected_echoes_;
      continue;
    }
    for (const Id id : echo_ids_) {
      accepted_.insert(id);
      counter_[id] += 1;
    }
  }

  // Compute new names: prefix sums of clamped echo counters over the
  // sorted accepted set (Alg. 4, lines 18-22).
  Name accumulated_offset = 0;
  for (const Id id : accepted_) {  // std::set iterates in sorted order
    accumulated_offset +=
        std::min<Name>(counter_[id], static_cast<Name>(params_.n - params_.t));
    newid_[id] = accumulated_offset;
  }

  decided_ = true;
  const auto own = newid_.find(my_id_);
  decision_ = own != newid_.end() ? std::optional<Name>(own->second) : std::nullopt;
}

}  // namespace byzrename::core
