#include "core/fast_renaming.h"

#include <algorithm>
#include <stdexcept>

namespace byzrename::core {

using sim::Delivery;
using sim::Id;
using sim::IdMsg;
using sim::Inbox;
using sim::LinkIndex;
using sim::MultiEchoMsg;
using sim::Name;
using sim::Outbox;
using sim::Round;

FastRenamingProcess::FastRenamingProcess(sim::SystemParams params, Id my_id)
    : params_(params), my_id_(my_id) {
  if (!valid_for_fast_renaming(params)) {
    throw std::invalid_argument("FastRenamingProcess: requires N > 2t^2 + t");
  }
}

void FastRenamingProcess::on_send(Round round, Outbox& out) {
  if (decided_) return;
  if (round == 1) {
    out.broadcast(IdMsg{my_id_});
  } else if (round == 2) {
    MultiEchoMsg echo;
    echo.ids.assign(timely_.begin(), timely_.end());
    out.broadcast(std::move(echo));
  }
}

bool FastRenamingProcess::is_valid_echo(LinkIndex link, const std::vector<Id>& ids) const {
  if (!link_id_.contains(link)) return false;  // sender never announced an id in step 1
  if (static_cast<int>(ids.size()) > params_.n) return false;
  int common = 0;
  for (const Id id : ids) {
    if (timely_.contains(id)) ++common;
  }
  return common >= params_.n - params_.t;
}

void FastRenamingProcess::on_receive(Round round, const Inbox& inbox) {
  if (decided_) return;
  if (round == 1) {
    for (const Delivery& d : inbox) {
      const auto* msg = std::get_if<IdMsg>(&*d.payload);
      if (msg == nullptr) continue;
      if (link_id_.contains(d.link)) continue;  // one announcement per link
      link_id_.emplace(d.link, msg->id);
      timely_.insert(msg->id);
    }
    return;
  }
  if (round != 2) return;

  std::set<LinkIndex> echoed_links;
  for (const Delivery& d : inbox) {
    const auto* msg = std::get_if<MultiEchoMsg>(&*d.payload);
    if (msg == nullptr) continue;
    if (!echoed_links.insert(d.link).second) continue;  // one MultiEcho per link
    // Treat the id list as a set: repeating an id inside one message must
    // not inflate its counter.
    std::set<Id> unique_ids(msg->ids.begin(), msg->ids.end());
    std::vector<Id> ids(unique_ids.begin(), unique_ids.end());
    if (!is_valid_echo(d.link, ids)) {
      ++rejected_echoes_;
      continue;
    }
    for (const Id id : ids) {
      accepted_.insert(id);
      counter_[id] += 1;
    }
  }

  // Compute new names: prefix sums of clamped echo counters over the
  // sorted accepted set (Alg. 4, lines 18-22).
  Name accumulated_offset = 0;
  for (const Id id : accepted_) {  // std::set iterates in sorted order
    accumulated_offset +=
        std::min<Name>(counter_[id], static_cast<Name>(params_.n - params_.t));
    newid_[id] = accumulated_offset;
  }

  decided_ = true;
  const auto own = newid_.find(my_id_);
  decision_ = own != newid_.end() ? std::optional<Name>(own->second) : std::nullopt;
}

}  // namespace byzrename::core
