#ifndef BYZRENAME_CORE_PHASE_H
#define BYZRENAME_CORE_PHASE_H

#include <string>

#include "core/algorithm.h"
#include "sim/types.h"

namespace byzrename::core {

/// Protocol phase a synchronous round belongs to — the taxonomy the
/// metrics registry labels its per-phase counters with (Prometheus
/// `phase` label, trace phase lane, byzrename.metrics/1 `phase` field).
///
/// The op-renaming phases follow Alg. 1's structure: steps 1..4 run the
/// Echo/Ready id-selection (step 1 announces, step 2 echoes, steps 3-4
/// run the ready extension), steps 5 .. 4+iterations run the AA voting
/// loop, and the final voting step doubles as the decision step. Fast
/// renaming (Alg. 4) announces in step 1 and echo+decides in step 2.
/// Baseline protocols with internal structure this header does not model
/// classify as kProtocol.
enum class Phase {
  kSelection,  ///< id-selection announce (op/const step 1; fast step 1)
  kEcho,       ///< id-selection echo (op/const step 2)
  kReady,      ///< id-selection ready + extension (op/const steps 3-4)
  kVoting,     ///< AA voting iteration (op/const steps 5 .. 3+iterations)
  kDecision,   ///< the deciding step (op/const step 4+iterations; fast step 2)
  kProtocol,   ///< baseline algorithms without a modeled phase structure
};

[[nodiscard]] constexpr const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kSelection: return "selection";
    case Phase::kEcho: return "echo";
    case Phase::kReady: return "ready";
    case Phase::kVoting: return "voting";
    case Phase::kDecision: return "decision";
    case Phase::kProtocol: return "protocol";
  }
  return "unknown";
}

/// Classification of one round: its phase and, inside the voting loop,
/// the 1-based iteration k (the `r` of Lemma IV.8's Delta_r); 0 outside.
struct RoundPhase {
  Phase phase = Phase::kProtocol;
  int voting_iteration = 0;
};

/// Maps a round to its phase. @p iterations is the resolved voting
/// iteration count (RunInfo::iterations); pass <= 0 when not applicable.
/// Pure and total: any (algorithm, round) yields a classification, so
/// callers never need to special-case baselines.
[[nodiscard]] inline RoundPhase round_phase(Algorithm algorithm, sim::Round round,
                                            int iterations) noexcept {
  switch (algorithm) {
    case Algorithm::kOpRenaming:
    case Algorithm::kOpRenamingConstantTime:
      if (round <= 1) return {Phase::kSelection, 0};
      if (round == 2) return {Phase::kEcho, 0};
      if (round <= 4) return {Phase::kReady, 0};
      if (iterations > 0 && round == 4 + iterations) return {Phase::kDecision, iterations};
      return {Phase::kVoting, round - 4};
    case Algorithm::kFastRenaming:
      if (round <= 1) return {Phase::kSelection, 0};
      return {Phase::kDecision, 0};
    default:
      return {Phase::kProtocol, 0};
  }
}

/// Human label for one round, e.g. "voting k=2" — used by the trace
/// exporter's phase lane and the docs' worked examples.
[[nodiscard]] inline std::string phase_label(const RoundPhase& classified) {
  std::string label = to_string(classified.phase);
  if (classified.phase == Phase::kVoting || classified.phase == Phase::kDecision) {
    if (classified.voting_iteration > 0) {
      label += " k=" + std::to_string(classified.voting_iteration);
    }
  }
  return label;
}

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_PHASE_H
