#ifndef BYZRENAME_CORE_ID_SELECTION_H
#define BYZRENAME_CORE_ID_SELECTION_H

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "numeric/fixed_rank.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::core {

/// The 4-step id selection phase of Alg. 1 (steps 1-4).
///
/// Bounds the number of identifiers Byzantine processes can smuggle into
/// the computation without solving consensus on the id set. After step 4
/// the phase guarantees (Lemmas IV.1-IV.3 of the paper):
///   - every correct id is in the `timely` set of every correct process;
///   - timely_p (of any correct p) is a subset of accepted_q (of any
///     correct q);
///   - |accepted| <= N + floor(t^2 / (N - 2t)) <= N + t - 1 for N > 3t.
///
/// The message pattern is Bracha-style Echo/Ready, cut to exactly four
/// steps, with all counting done over *distinct link labels* because the
/// receiver never knows sender identities. Tallying uses flat sorted
/// (id, link) pair vectors rather than per-id link sets: the steps see
/// O(N^2) deliveries, and one sort + adjacent-unique scan per step
/// replaces millions of red-black-tree node insertions at large N with
/// the exact same distinct-link counts.
class IdSelection {
 public:
  IdSelection(sim::SystemParams params, sim::Id my_id);

  /// Emits this step's broadcasts; @p step must be 1..4.
  void on_send(sim::Round step, sim::Outbox& out);

  /// Consumes this step's inbox; @p step must be 1..4.
  void on_receive(sim::Round step, const sim::Inbox& inbox);

  /// Ids for which N-t Ready messages arrived by step 3 (the paper's
  /// `timely` set). Valid after step 3 (extended in step 4 only via
  /// accepted); stable after step 4.
  [[nodiscard]] const std::set<sim::Id>& timely() const noexcept { return timely_; }

  /// Ids accepted at the end of step 4 (the paper's `accepted` set).
  [[nodiscard]] const std::set<sim::Id>& accepted() const noexcept { return accepted_; }

  [[nodiscard]] sim::Id my_id() const noexcept { return my_id_; }

 private:
  /// (id, link) packed into one 128-bit key — sign-biased id in the top
  /// 96 bits, link in the low 32 — so the tally sorts compare flat
  /// unsigned integers instead of struct pairs.
  using IdLink = numeric::uwide_t;

  sim::SystemParams params_;
  sim::Id my_id_;

  /// Working id set carried between steps (the paper's `Ids` variable).
  std::set<sim::Id> ids_;
  /// Distinct (id, link) Ready pairs, cumulative over steps 3-4 (kept
  /// sorted + deduplicated between the two counting passes; released
  /// after step 4).
  std::vector<IdLink> ready_pairs_;
  /// Ids this process has already broadcast Ready for (step 3).
  std::set<sim::Id> ready_sent_;

  std::set<sim::Id> timely_;
  std::set<sim::Id> accepted_;
};

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_ID_SELECTION_H
