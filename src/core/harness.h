#ifndef BYZRENAME_CORE_HARNESS_H
#define BYZRENAME_CORE_HARNESS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/checker.h"
#include "core/params.h"
#include "sim/fault.h"
#include "sim/process.h"
#include "sim/runner.h"
#include "trace/event_log.h"

namespace byzrename::obs {
class Telemetry;
}  // namespace byzrename::obs

namespace byzrename::obs::prof {
class Profiler;
}  // namespace byzrename::obs::prof

namespace byzrename::core {

/// Creates a correct-process behavior for the given protocol. Also used
/// by adversary strategies that mimic or wrap honest processes (crash
/// faults, split-world equivocators). @p index is the process's physical
/// index, needed only by protocols in the sender-authenticated model
/// (consensus renaming); pass -1 otherwise.
[[nodiscard]] std::unique_ptr<sim::ProcessBehavior> make_correct_behavior(
    Algorithm algorithm, const sim::SystemParams& params, sim::Id id,
    const RenamingOptions& options = {}, sim::ProcessIndex index = -1);

/// Target namespace size M the protocol promises for (n, t); the checker
/// scores validity against this.
[[nodiscard]] sim::Name namespace_size(Algorithm algorithm, const sim::SystemParams& params);

/// Synchronous steps the protocol needs; the runner's round budget.
[[nodiscard]] int expected_steps(Algorithm algorithm, const sim::SystemParams& params,
                                 const RenamingOptions& options = {});

/// A complete experiment specification: protocol, fault budget, id
/// workload, adversary strategy, seed.
struct ScenarioConfig {
  sim::SystemParams params;
  Algorithm algorithm = Algorithm::kOpRenaming;
  /// Strategy name from the adversary registry ("silent", "idflood", ...).
  std::string adversary = "silent";
  /// Number of actually faulty processes, <= params.t. -1 means t.
  /// FaultPlan::fault_overshoot adds on top of this, deliberately past t.
  int actual_faults = -1;
  std::uint64_t seed = 1;
  /// Declarative model-violation plan (sim/fault.h): link drops /
  /// duplicates / delays, crash-recovery windows, transient partitions,
  /// and fault-count overshoot. Empty (the default) runs the paper's
  /// reliable lockstep model exactly. Injection randomness derives from
  /// the run seed, so faulted runs stay bit-reproducible.
  sim::FaultPlan fault_plan;
  /// Original ids of correct processes; generated from the seed if empty.
  std::vector<sim::Id> correct_ids;
  RenamingOptions options;
  /// Extra safety margin on the round budget (0 = exact expected_steps).
  int extra_rounds = 0;
  /// Single-slot per-round hook, kept for existing probes; composes with
  /// telemetry through the obs::ObserverHub the harness builds.
  sim::RoundObserver observer;
  /// Optional structured event trace (sends/deliveries/decisions);
  /// O(N^2) events per round, for debugging-scale scenarios only.
  trace::EventLog* event_log = nullptr;
  /// Optional telemetry hub (obs/telemetry.h). When attached and it has
  /// sinks, the harness samples per-round counters/probes/timers and
  /// reports the finished run; when null or sink-less the run costs
  /// exactly what it would without the telemetry layer.
  obs::Telemetry* telemetry = nullptr;
  /// Free-form label copied into telemetry reports (bench row id etc).
  std::string telemetry_label;
  /// Optional profiler (obs/prof/profiler.h). When attached the harness
  /// opens "setup" / "run" / "check" scopes, brackets every round with
  /// its phase scope ("run;voting k=2", core/phase.h taxonomy), and
  /// installs the profiler as the thread's ambient profiler so
  /// caller-defined prof::AmbientScope sites report into the same tree.
  /// Strictly read-only like telemetry: attaching one cannot change any
  /// run result. One profiler instruments one run at a time (its scope
  /// stack is per-run state); campaign workers attach a fresh local one
  /// per run. Null costs nothing.
  obs::prof::Profiler* profiler = nullptr;
};

/// Everything a test or bench wants to know about one run.
struct ScenarioResult {
  sim::RunResult run;
  CheckReport report;
  sim::Name target_namespace = 0;
  std::vector<NamedProcess> named;  ///< correct processes, in id order
  /// |accepted| extremes over correct processes (Alg. 1 / Alg. 4 only).
  std::size_t max_accepted = 0;
  std::size_t min_accepted = 0;
  /// Votes/echoes rejected by validation, summed over correct processes.
  long total_rejected = 0;
};

/// Deterministically generates @p count distinct ids from a large
/// namespace, seeded; ids of correct and faulty processes interleave so
/// Byzantine lies can target order boundaries.
[[nodiscard]] std::vector<sim::Id> generate_ids(int count, std::uint64_t seed);

/// Assembles the network (correct processes at indices 0..n-f-1 in id
/// order, faulty at the tail), runs it to completion, and scores it.
///
/// ## Re-entrancy contract (audited for the src/exp campaign engine)
///
/// run_scenario is safe to call concurrently from any number of threads
/// with DISTINCT ScenarioConfig objects, and the result for a given
/// config is bit-identical regardless of what runs next to it:
///  - every piece of run state (network, behaviors, RNG streams, metrics,
///    event log) is constructed inside the call and owned by its frame;
///  - there are no mutable globals anywhere under src/{sim,core,
///    adversary,aa,rbc,consensus,baselines,translate,numeric}: the only
///    function-local static is the adversary registry's const map, whose
///    initialization C++ magic statics make thread-safe;
///  - all randomness flows from ScenarioConfig::seed through explicitly
///    seeded sim::Rng instances local to the run.
///
/// The caller-supplied attachments are the exception: observer,
/// event_log, telemetry, and profiler are invoked on the calling thread and must
/// not be shared across concurrent runs unless they synchronize
/// internally (obs::RunReportSink buffers per-run state — one sink per
/// in-flight run; see obs/run_report.h). Anyone adding a cache or
/// static to code under this call tree must keep it either const or
/// thread-local, or the campaign engine's determinism guarantee breaks.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_HARNESS_H
