#include "core/rank_approx.h"

#include <algorithm>

namespace byzrename::core {

using numeric::Rational;
using sim::Id;

bool decode_vote(const sim::RanksMsg& msg, const sim::SystemParams& params,
                 const RenamingOptions& options, RankMap& out) {
  const int max_entries =
      options.max_vote_entries >= 0 ? options.max_vote_entries : params.n + params.t;
  if (static_cast<int>(msg.entries.size()) > max_entries) return false;
  out.clear();
  Id previous = 0;
  bool first = true;
  for (const sim::RankEntry& entry : msg.entries) {
    if (!first && entry.id <= previous) return false;  // unsorted or duplicate id
    if (entry.rank.encoded_bits() > options.max_rank_bits) return false;
    out.emplace(entry.id, entry.rank);
    previous = entry.id;
    first = false;
  }
  return true;
}

bool is_valid_ranks(const std::set<Id>& timely, const RankMap& vote, const Rational& delta) {
  // Walking timely in id order and checking consecutive gaps covers all
  // pairs: delta-gaps are transitive over a sorted sequence.
  const Rational* previous_rank = nullptr;
  for (const Id id : timely) {
    const auto it = vote.find(id);
    if (it == vote.end()) return false;
    if (previous_rank != nullptr && it->second - *previous_rank < delta) return false;
    previous_rank = &it->second;
  }
  return true;
}

std::vector<Rational> select_t(const std::vector<Rational>& sorted, int t) {
  if (t <= 0) return sorted;
  std::vector<Rational> chosen;
  for (std::size_t i = 0; i < sorted.size(); i += static_cast<std::size_t>(t)) {
    chosen.push_back(sorted[i]);
  }
  return chosen;
}

ApproximateResult approximate(const sim::SystemParams& params, std::set<Id>& accepted,
                              const RankMap& my_ranks, const std::vector<RankMap>& votes) {
  ApproximateResult result;
  const int n = params.n;
  const int t = params.t;

  for (auto it = accepted.begin(); it != accepted.end();) {
    const Id id = *it;
    std::vector<Rational> ballot;
    ballot.reserve(static_cast<std::size_t>(n));
    for (const RankMap& vote : votes) {
      const auto entry = vote.find(id);
      if (entry != vote.end()) ballot.push_back(entry->second);
    }

    if (static_cast<int>(ballot.size()) < n - t) {
      // Fewer than N-t votes: the id is discarded (Alg. 3, line 08). By
      // Corollary IV.5 this never happens to an id any correct process
      // holds timely.
      result.dropped.insert(id);
      it = accepted.erase(it);
      continue;
    }

    // Pad to exactly N entries with the local value (lines 10-11): local
    // values are always valid.
    const auto own = my_ranks.find(id);
    while (static_cast<int>(ballot.size()) < n) {
      ballot.push_back(own != my_ranks.end() ? own->second : Rational(0));
    }

    std::sort(ballot.begin(), ballot.end());
    // Discard the t lowest and t highest (lines 12-14); what remains is
    // guaranteed to lie within the range of correct inputs.
    std::vector<Rational> trimmed(ballot.begin() + t, ballot.end() - t);

    const std::vector<Rational> chosen = select_t(trimmed, t);
    Rational sum;
    for (const Rational& value : chosen) sum += value;
    result.new_ranks.emplace(id, sum / Rational(static_cast<std::int64_t>(chosen.size())));
    ++it;
  }
  return result;
}

sim::RanksMsg encode_vote(const RankMap& ranks) {
  sim::RanksMsg msg;
  msg.entries.reserve(ranks.size());
  for (const auto& [id, rank] : ranks) msg.entries.push_back({id, rank});
  return msg;
}

}  // namespace byzrename::core
