#include "core/id_selection.h"

#include <algorithm>
#include <stdexcept>

namespace byzrename::core {

using sim::Delivery;
using sim::EchoMsg;
using sim::Id;
using sim::IdMsg;
using sim::Inbox;
using sim::LinkIndex;
using sim::Outbox;
using sim::ReadyMsg;
using sim::Round;

IdSelection::IdSelection(sim::SystemParams params, Id my_id) : params_(params), my_id_(my_id) {}

void IdSelection::on_send(Round step, Outbox& out) {
  switch (step) {
    case 1:
      out.broadcast(IdMsg{my_id_});
      break;
    case 2:
      for (const Id id : ids_) out.broadcast(EchoMsg{id});
      break;
    case 3:
      for (const Id id : ids_) {
        out.broadcast(ReadyMsg{id});
        ready_sent_.insert(id);
      }
      break;
    case 4:
      for (const Id id : ids_) {
        out.broadcast(ReadyMsg{id});
        ready_sent_.insert(id);
      }
      break;
    default:
      throw std::logic_error("IdSelection::on_send: step out of range");
  }
}

void IdSelection::on_receive(Round step, const Inbox& inbox) {
  const int quorum = params_.n - params_.t;           // N - t
  const int weak_quorum = params_.n - 2 * params_.t;  // N - 2t

  // Sorted distinct (id, link) keys; a run of one id then has exactly
  // one entry per distinct link, so run length == the link-set size the
  // per-id sets of the map-based implementation used to track. Keys
  // pack the sign-biased id above the link, so id-major, link-minor
  // pair order becomes plain unsigned 128-bit order.
  constexpr std::uint64_t kIdBias = std::uint64_t{1} << 63;
  const auto pack = [](Id id, LinkIndex link) -> IdLink {
    return (static_cast<IdLink>(static_cast<std::uint64_t>(id) ^ kIdBias) << 32) |
           static_cast<std::uint32_t>(link);
  };
  const auto unpack_id = [](IdLink key) -> Id {
    return static_cast<Id>(static_cast<std::uint64_t>(key >> 32) ^ kIdBias);
  };
  // `sorted_prefix` keys at the front are already sorted and distinct
  // (the step-3 tally carried into step 4): sort only the appended tail
  // and merge, instead of re-sorting the whole cumulative buffer.
  const auto canonical = [](std::vector<IdLink>& pairs, std::size_t sorted_prefix = 0) {
    const auto mid = pairs.begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
    std::sort(mid, pairs.end());
    if (sorted_prefix > 0) std::inplace_merge(pairs.begin(), mid, pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  };
  const auto for_each_count = [&](const std::vector<IdLink>& pairs, auto&& fn) {
    for (std::size_t i = 0; i < pairs.size();) {
      std::size_t j = i;
      while (j < pairs.size() && (pairs[j] >> 32) == (pairs[i] >> 32)) ++j;
      fn(unpack_id(pairs[i]), static_cast<int>(j - i));
      i = j;
    }
  };

  switch (step) {
    case 1: {
      // One id per link: a link that announces several "own" ids is
      // provably faulty and only its first announcement counts. This is
      // what caps Byzantine step-1 injections at t*(N-t) id slots
      // (Lemma A.1's counting argument).
      std::vector<unsigned char> seen_links(static_cast<std::size_t>(params_.n), 0);
      ids_.clear();
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<IdMsg>(&*d.payload);
        if (msg == nullptr) continue;
        auto& seen = seen_links[static_cast<std::size_t>(d.link)];
        if (seen != 0) continue;
        seen = 1;
        ids_.insert(msg->id);
      }
      break;
    }
    case 2: {
      std::vector<IdLink> echo_pairs;
      echo_pairs.reserve(inbox.size());
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<EchoMsg>(&*d.payload);
        if (msg == nullptr) continue;
        echo_pairs.push_back(pack(msg->id, d.link));
      }
      canonical(echo_pairs);
      ids_.clear();
      for_each_count(echo_pairs, [&](Id id, int count) {
        if (count >= quorum) ids_.insert(id);
      });
      break;
    }
    case 3: {
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<ReadyMsg>(&*d.payload);
        if (msg == nullptr) continue;
        ready_pairs_.push_back(pack(msg->id, d.link));
      }
      canonical(ready_pairs_);
      ids_.clear();
      for_each_count(ready_pairs_, [&](Id id, int count) {
        if (count >= quorum) timely_.insert(id);
        // Amplification: a weak quorum of Readys means at least one
        // correct process observed an Echo quorum, so join in step 4.
        if (count >= weak_quorum && !ready_sent_.contains(id)) ids_.insert(id);
      });
      break;
    }
    case 4: {
      // Ready counts accumulate over steps 3 and 4 (paper, lines 24-25).
      const std::size_t step3_pairs = ready_pairs_.size();
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<ReadyMsg>(&*d.payload);
        if (msg == nullptr) continue;
        ready_pairs_.push_back(pack(msg->id, d.link));
      }
      canonical(ready_pairs_, step3_pairs);
      for_each_count(ready_pairs_, [&](Id id, int count) {
        if (count >= quorum) accepted_.insert(id);
      });
      // The selection phase is over; release the O(N^2) tally buffer so
      // long voting phases (and N=1024 instances) do not pin it.
      ready_pairs_ = std::vector<IdLink>();
      break;
    }
    default:
      throw std::logic_error("IdSelection::on_receive: step out of range");
  }
}

}  // namespace byzrename::core
