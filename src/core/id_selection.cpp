#include "core/id_selection.h"

#include <stdexcept>

namespace byzrename::core {

using sim::Delivery;
using sim::EchoMsg;
using sim::Id;
using sim::IdMsg;
using sim::Inbox;
using sim::LinkIndex;
using sim::Outbox;
using sim::ReadyMsg;
using sim::Round;

IdSelection::IdSelection(sim::SystemParams params, Id my_id) : params_(params), my_id_(my_id) {}

void IdSelection::on_send(Round step, Outbox& out) {
  switch (step) {
    case 1:
      out.broadcast(IdMsg{my_id_});
      break;
    case 2:
      for (const Id id : ids_) out.broadcast(EchoMsg{id});
      break;
    case 3:
      for (const Id id : ids_) {
        out.broadcast(ReadyMsg{id});
        ready_sent_.insert(id);
      }
      break;
    case 4:
      for (const Id id : ids_) {
        out.broadcast(ReadyMsg{id});
        ready_sent_.insert(id);
      }
      break;
    default:
      throw std::logic_error("IdSelection::on_send: step out of range");
  }
}

void IdSelection::on_receive(Round step, const Inbox& inbox) {
  const int quorum = params_.n - params_.t;          // N - t
  const int weak_quorum = params_.n - 2 * params_.t;  // N - 2t

  switch (step) {
    case 1: {
      // One id per link: a link that announces several "own" ids is
      // provably faulty and only its first announcement counts. This is
      // what caps Byzantine step-1 injections at t*(N-t) id slots
      // (Lemma A.1's counting argument).
      std::set<LinkIndex> seen_links;
      ids_.clear();
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<IdMsg>(&*d.payload);
        if (msg == nullptr) continue;
        if (!seen_links.insert(d.link).second) continue;
        ids_.insert(msg->id);
      }
      break;
    }
    case 2: {
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<EchoMsg>(&*d.payload);
        if (msg == nullptr) continue;
        echo_links_[msg->id].insert(d.link);
      }
      ids_.clear();
      for (const auto& [id, links] : echo_links_) {
        if (static_cast<int>(links.size()) >= quorum) ids_.insert(id);
      }
      break;
    }
    case 3: {
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<ReadyMsg>(&*d.payload);
        if (msg == nullptr) continue;
        ready_links_[msg->id].insert(d.link);
      }
      ids_.clear();
      for (const auto& [id, links] : ready_links_) {
        const int count = static_cast<int>(links.size());
        if (count >= quorum) timely_.insert(id);
        // Amplification: a weak quorum of Readys means at least one
        // correct process observed an Echo quorum, so join in step 4.
        if (count >= weak_quorum && !ready_sent_.contains(id)) ids_.insert(id);
      }
      break;
    }
    case 4: {
      // Ready counts accumulate over steps 3 and 4 (paper, lines 24-25).
      for (const Delivery& d : inbox) {
        const auto* msg = std::get_if<ReadyMsg>(&*d.payload);
        if (msg == nullptr) continue;
        ready_links_[msg->id].insert(d.link);
      }
      for (const auto& [id, links] : ready_links_) {
        if (static_cast<int>(links.size()) >= quorum) accepted_.insert(id);
      }
      break;
    }
    default:
      throw std::logic_error("IdSelection::on_receive: step out of range");
  }
}

}  // namespace byzrename::core
