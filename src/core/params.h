#ifndef BYZRENAME_CORE_PARAMS_H
#define BYZRENAME_CORE_PARAMS_H

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "numeric/rational.h"
#include "sim/types.h"

namespace byzrename::core {

/// The rank stretch factor delta = 1 + 1/(3(N+t)) (Alg. 1, line 02).
/// Large enough that ranks one position apart stay separated through the
/// approximation error the voting phase leaves behind.
[[nodiscard]] inline numeric::Rational delta(const sim::SystemParams& params) {
  return numeric::Rational(1) +
         numeric::Rational::of(1, 3 * (static_cast<std::int64_t>(params.n) + params.t));
}

/// Ceiling of log2 for positive arguments; 0 for x <= 1.
[[nodiscard]] inline int ceil_log2(int x) noexcept {
  int bits = 0;
  int capacity = 1;
  while (capacity < x) {
    capacity *= 2;
    ++bits;
  }
  return bits;
}

/// Number of voting-phase iterations of Alg. 1: 3*ceil(log2 t) + 3
/// (steps 5 .. 3*ceil(log2 t) + 7 of the paper). With t == 0 all correct
/// processes compute identical accepted sets, so no approximation is
/// needed at all.
[[nodiscard]] inline int default_approximation_iterations(int t) noexcept {
  if (t <= 0) return 0;
  return 3 * ceil_log2(t) + 3;
}

/// Iterations used by the constant-time mode of Section V; sound when
/// N > t^2 + 2t (Lemma V.2).
inline constexpr int kConstantTimeIterations = 4;

/// Convergence rate sigma_t = floor((N-2t)/t) + 1 claimed by the paper
/// for one approximation step (Lemma IV.8). Requires t >= 1.
[[nodiscard]] inline int sigma_t(const sim::SystemParams& params) {
  if (params.t < 1) throw std::domain_error("sigma_t: requires t >= 1");
  return (params.n - 2 * params.t) / params.t + 1;
}

/// Arithmetic backend for the voting phase's rank computations.
enum class RankKernel {
  /// Fixed-width limb arithmetic over the per-instance common
  /// denominator (numeric/fixed_rank.h); falls back to the exact oracle
  /// per ballot for off-grid Byzantine values, so decisions and every
  /// observable output are bit-identical to kExact.
  kFixed,
  /// Exact arbitrary-precision Rational arithmetic: the oracle.
  kExact,
  /// Runs kFixed while maintaining a shadow kExact state and throws
  /// std::logic_error on any divergence. Test/diagnostic mode.
  kCheck,
};

/// Parses a user-facing rank-kernel token (CLI --rank-kernel, campaign
/// spec kernel= clause).
[[nodiscard]] inline std::optional<RankKernel> rank_kernel_from_token(
    std::string_view token) noexcept {
  if (token == "fixed") return RankKernel::kFixed;
  if (token == "exact") return RankKernel::kExact;
  if (token == "check") return RankKernel::kCheck;
  return std::nullopt;
}

/// Canonical token for a kernel (inverse of rank_kernel_from_token).
[[nodiscard]] inline const char* rank_kernel_token(RankKernel kernel) noexcept {
  switch (kernel) {
    case RankKernel::kFixed: return "fixed";
    case RankKernel::kExact: return "exact";
    case RankKernel::kCheck: return "check";
  }
  return "fixed";
}

/// Configuration of the order-preserving renaming algorithm (Alg. 1).
struct RenamingOptions {
  /// Voting-phase iterations; -1 selects default_approximation_iterations.
  int approximation_iterations = -1;
  /// Upper bound on the encoded size of any single rank a vote may carry.
  /// The paper bounds message size (Section IV-D), so honest votes are
  /// small; this guards the exact-rational arithmetic against Byzantine
  /// denominator-inflation. Honest ranks after r iterations need about
  /// r*log2(N) + log2(3(N+t)) bits, far below this default.
  std::size_t max_rank_bits = 4096;
  /// Upper bound on entries accepted in one vote. Correct votes carry at
  /// most N+t-1 entries (Lemma IV.3); anything larger is Byzantine spam.
  /// -1 selects n + t.
  int max_vote_entries = -1;
  /// Voting-phase arithmetic backend. The default fixed-width kernel is
  /// observably identical to the exact oracle (the cross-check suite
  /// asserts byte-identical verdicts/metrics/audit output) but an order
  /// of magnitude cheaper; kExact remains as the oracle and kCheck runs
  /// both in lockstep.
  RankKernel rank_kernel = RankKernel::kFixed;
  /// ABLATION ONLY: when false, skips the Alg. 2 isValid filter on
  /// received votes (structural decode checks still apply). Exists so
  /// bench_a2 can demonstrate that without the filter a Byzantine vote
  /// stream breaks order preservation — the paper's Section IV-B
  /// motivation. Never disable this in real use.
  bool validate_votes = true;
};

/// True iff (n, t) satisfies Alg. 1's resilience requirement N > 3t.
[[nodiscard]] inline bool valid_for_op_renaming(const sim::SystemParams& p) noexcept {
  return p.n > 3 * p.t && p.t >= 0;
}

/// True iff (n, t) lies in the constant-time regime of Section V.
[[nodiscard]] inline bool valid_for_constant_time(const sim::SystemParams& p) noexcept {
  return p.n > p.t * p.t + 2 * p.t && p.t >= 0;
}

/// True iff (n, t) satisfies Alg. 4's requirement N > 2t^2 + t.
[[nodiscard]] inline bool valid_for_fast_renaming(const sim::SystemParams& p) noexcept {
  return p.n > 2 * p.t * p.t + p.t && p.t >= 0;
}

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_PARAMS_H
