#include "core/planner.h"

#include <algorithm>

namespace byzrename::core {

namespace {

bool algorithm_feasible(Algorithm algorithm, const sim::SystemParams& params,
                        const PlanConstraints& constraints) {
  switch (algorithm) {
    case Algorithm::kOpRenaming:
      return valid_for_op_renaming(params);
    case Algorithm::kOpRenamingConstantTime:
      return valid_for_constant_time(params);
    case Algorithm::kFastRenaming:
      return valid_for_fast_renaming(params);
    case Algorithm::kConsensusRenaming:
      return constraints.authenticated_links && params.n > 4 * params.t;
    case Algorithm::kBitRenaming:
      return !constraints.order_preserving && valid_for_op_renaming(params);
    default:
      return false;  // crash baseline tolerates no Byzantine faults
  }
}

}  // namespace

std::vector<PlanOption> plan_renaming(const sim::SystemParams& params,
                                      const PlanConstraints& constraints) {
  std::vector<PlanOption> options;
  for (const Algorithm algorithm :
       {Algorithm::kFastRenaming, Algorithm::kOpRenamingConstantTime, Algorithm::kOpRenaming,
        Algorithm::kBitRenaming, Algorithm::kConsensusRenaming}) {
    if (!algorithm_feasible(algorithm, params, constraints)) continue;
    PlanOption option;
    option.algorithm = algorithm;
    option.steps = expected_steps(algorithm, params);
    option.namespace_size = namespace_size(algorithm, params);
    option.order_preserving = algorithm != Algorithm::kBitRenaming;
    if (constraints.max_steps > 0 && option.steps > constraints.max_steps) continue;
    if (constraints.max_namespace > 0 && option.namespace_size > constraints.max_namespace) {
      continue;
    }
    options.push_back(option);
  }
  std::sort(options.begin(), options.end(), [](const PlanOption& a, const PlanOption& b) {
    if (a.steps != b.steps) return a.steps < b.steps;
    return a.namespace_size < b.namespace_size;
  });
  return options;
}

std::optional<PlanOption> recommend_renaming(const sim::SystemParams& params,
                                             const PlanConstraints& constraints) {
  const std::vector<PlanOption> options = plan_renaming(params, constraints);
  if (options.empty()) return std::nullopt;
  return options.front();
}

}  // namespace byzrename::core
