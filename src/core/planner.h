#ifndef BYZRENAME_CORE_PLANNER_H
#define BYZRENAME_CORE_PLANNER_H

#include <optional>
#include <vector>

#include "core/algorithm.h"
#include "core/harness.h"
#include "core/params.h"

namespace byzrename::core {

/// What a deployment cares about when choosing among the paper's three
/// regimes (and the baselines).
struct PlanConstraints {
  /// Largest acceptable target namespace; 0 = unconstrained.
  sim::Name max_namespace = 0;
  /// Largest acceptable number of synchronous steps; 0 = unconstrained.
  int max_steps = 0;
  /// Whether the new names must preserve original-id order.
  bool order_preserving = true;
  /// Whether receivers can attribute messages to senders. The paper's
  /// model says no; consensus-based renaming requires yes.
  bool authenticated_links = false;
};

/// One feasible choice, with its costs.
struct PlanOption {
  Algorithm algorithm = Algorithm::kOpRenaming;
  int steps = 0;
  sim::Name namespace_size = 0;
  bool order_preserving = true;
};

/// All algorithms whose resilience requirement, namespace, step count and
/// model assumptions fit (n, t) and the constraints — cheapest (fewest
/// steps, then smallest namespace) first. Empty means nothing in this
/// library fits; the caller must relax something.
///
/// This encodes the paper's decision surface: Alg. 4 when t is tiny and
/// steps are precious, constant-time Alg. 1 when N > t^2+2t and a tight
/// namespace matters, full Alg. 1 whenever N > 3t.
[[nodiscard]] std::vector<PlanOption> plan_renaming(const sim::SystemParams& params,
                                                    const PlanConstraints& constraints = {});

/// The single recommended choice, if any.
[[nodiscard]] std::optional<PlanOption> recommend_renaming(const sim::SystemParams& params,
                                                           const PlanConstraints& constraints = {});

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_PLANNER_H
