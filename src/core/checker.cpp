#include "core/checker.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace byzrename::core {

CheckReport check_renaming(const std::vector<NamedProcess>& processes,
                           sim::Name namespace_size) {
  CheckReport report;
  std::ostringstream detail;

  std::vector<NamedProcess> sorted = processes;
  std::sort(sorted.begin(), sorted.end(),
            [](const NamedProcess& a, const NamedProcess& b) {
              return a.original_id < b.original_id;
            });

  report.min_name = std::numeric_limits<sim::Name>::max();
  report.max_name = std::numeric_limits<sim::Name>::min();
  bool any_named = false;

  const NamedProcess* previous = nullptr;
  for (const NamedProcess& p : sorted) {
    if (!p.new_name.has_value()) {
      if (report.termination) {
        detail << "process with id " << p.original_id << " did not decide; ";
      }
      report.termination = false;
      continue;
    }
    const sim::Name name = *p.new_name;
    any_named = true;
    report.min_name = std::min(report.min_name, name);
    report.max_name = std::max(report.max_name, name);

    if (name < 1 || name > namespace_size) {
      if (report.validity) {
        detail << "id " << p.original_id << " got name " << name << " outside [1.."
               << namespace_size << "]; ";
      }
      report.validity = false;
    }
    if (previous != nullptr && previous->new_name.has_value() && *previous->new_name >= name) {
      if (report.order_preservation) {
        detail << "id order " << previous->original_id << " < " << p.original_id
               << " but names " << *previous->new_name << " >= " << name << "; ";
      }
      report.order_preservation = false;
    }
    previous = &p;
  }

  // Uniqueness is checked independently of id order so a duplicate is
  // reported as a uniqueness failure even when it also breaks ordering.
  std::vector<sim::Name> names;
  names.reserve(sorted.size());
  for (const NamedProcess& p : sorted) {
    if (p.new_name.has_value()) names.push_back(*p.new_name);
  }
  std::sort(names.begin(), names.end());
  for (std::size_t i = 1; i < names.size(); ++i) {
    if (names[i - 1] == names[i]) {
      if (report.uniqueness) detail << "name " << names[i] << " assigned twice; ";
      report.uniqueness = false;
    }
  }

  if (!any_named) {
    report.min_name = 0;
    report.max_name = 0;
  }
  report.detail = detail.str();
  return report;
}

}  // namespace byzrename::core
