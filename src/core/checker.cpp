#include "core/checker.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace byzrename::core {

namespace {

/// Renders the "(p2, r7)" provenance suffix; omits fields that are
/// unknown (hand-built checker inputs carry neither) and renders nothing
/// when both are.
std::string provenance(const NamedProcess& p) {
  std::ostringstream out;
  const bool has_pid = p.index >= 0;
  const bool has_round = p.decided_round > 0;
  if (!has_pid && !has_round) return {};
  out << " (";
  if (has_pid) out << "p" << p.index;
  if (has_pid && has_round) out << ", ";
  if (has_round) out << "r" << p.decided_round;
  out << ")";
  return out.str();
}

}  // namespace

std::string CheckReport::classes() const {
  std::string out;
  for (int c = 0; c < kViolationClassCount; ++c) {
    const auto cls = static_cast<ViolationClass>(c);
    if (!has(cls)) continue;
    if (!out.empty()) out += ',';
    out += to_string(cls);
  }
  return out;
}

CheckReport check_renaming(const std::vector<NamedProcess>& processes,
                           sim::Name namespace_size) {
  CheckReport report;
  std::ostringstream detail;

  // First violation of each class goes into the one-line summary; every
  // violation becomes a provenance record.
  auto record = [&](ViolationClass cls, const NamedProcess& p, bool first_of_class,
                    std::string message) {
    if (first_of_class) detail << message << "; ";
    report.violations.push_back(
        {cls, p.original_id, p.index, p.decided_round, std::move(message)});
  };

  std::vector<NamedProcess> sorted = processes;
  std::sort(sorted.begin(), sorted.end(),
            [](const NamedProcess& a, const NamedProcess& b) {
              return a.original_id < b.original_id;
            });

  // Which processes are implicated in some violation: pairwise classes
  // (order, uniqueness) implicate both members even though the record
  // names the second. Drives the recovered dimension.
  std::vector<bool> implicated(sorted.size(), false);
  const auto implicate = [&](const NamedProcess& p) {
    implicated[static_cast<std::size_t>(&p - sorted.data())] = true;
  };

  report.min_name = std::numeric_limits<sim::Name>::max();
  report.max_name = std::numeric_limits<sim::Name>::min();
  bool any_named = false;

  const NamedProcess* previous = nullptr;
  for (const NamedProcess& p : sorted) {
    if (!p.new_name.has_value()) {
      std::ostringstream msg;
      msg << "process with id " << p.original_id << " did not decide" << provenance(p);
      record(ViolationClass::kTermination, p, report.termination, msg.str());
      report.termination = false;
      implicate(p);
      continue;
    }
    const sim::Name name = *p.new_name;
    any_named = true;
    report.min_name = std::min(report.min_name, name);
    report.max_name = std::max(report.max_name, name);

    if (name < 1 || name > namespace_size) {
      std::ostringstream msg;
      msg << "id " << p.original_id << " got name " << name << " outside [1.."
          << namespace_size << "]" << provenance(p);
      record(ViolationClass::kRange, p, report.validity, msg.str());
      report.validity = false;
      implicate(p);
    }
    if (previous != nullptr && previous->new_name.has_value() && *previous->new_name >= name) {
      std::ostringstream msg;
      msg << "id order " << previous->original_id << " < " << p.original_id
          << " but names " << *previous->new_name << " >= " << name << provenance(p);
      record(ViolationClass::kOrder, p, report.order_preservation, msg.str());
      report.order_preservation = false;
      implicate(*previous);
      implicate(p);
    }
    previous = &p;
  }

  // Uniqueness is checked independently of id order so a duplicate is
  // reported as a uniqueness failure even when it also breaks ordering.
  // Pairs carry both holders so the record names a concrete collision.
  std::vector<const NamedProcess*> named;
  named.reserve(sorted.size());
  for (const NamedProcess& p : sorted) {
    if (p.new_name.has_value()) named.push_back(&p);
  }
  std::sort(named.begin(), named.end(),
            [](const NamedProcess* a, const NamedProcess* b) {
              if (*a->new_name != *b->new_name) return *a->new_name < *b->new_name;
              return a->original_id < b->original_id;
            });
  for (std::size_t i = 1; i < named.size(); ++i) {
    if (*named[i - 1]->new_name == *named[i]->new_name) {
      std::ostringstream msg;
      msg << "name " << *named[i]->new_name << " assigned twice, to id "
          << named[i - 1]->original_id << provenance(*named[i - 1]) << " and id "
          << named[i]->original_id << provenance(*named[i]);
      record(ViolationClass::kUniqueness, *named[i], report.uniqueness, msg.str());
      report.uniqueness = false;
      implicate(*named[i - 1]);
      implicate(*named[i]);
    }
  }

  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (!sorted[i].restarted) continue;
    report.restarted += 1;
    if (sorted[i].new_name.has_value() && !implicated[i]) report.recovered += 1;
  }

  if (!any_named) {
    report.min_name = 0;
    report.max_name = 0;
  }
  report.detail = detail.str();
  return report;
}

}  // namespace byzrename::core
