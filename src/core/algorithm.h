#ifndef BYZRENAME_CORE_ALGORITHM_H
#define BYZRENAME_CORE_ALGORITHM_H

#include <optional>
#include <string_view>

namespace byzrename::core {

/// Which protocol a scenario runs. Adversary strategies dispatch on this
/// to speak the protocol's message grammar when attacking it.
enum class Algorithm {
  kOpRenaming,              ///< Alg. 1, N > 3t, namespace N+t-1, 3*ceil(log t)+7 steps
  kOpRenamingConstantTime,  ///< Alg. 1 with 4 voting iterations, N > t^2+2t, namespace N
  kFastRenaming,            ///< Alg. 4, N > 2t^2+t, namespace N^2, 2 steps
  kCrashRenaming,           ///< baseline: Okun-style order-preserving renaming, crash faults
  kConsensusRenaming,       ///< baseline: phase-king consensus renaming, N > 4t, linear steps
  kBitRenaming,             ///< baseline: [15]-style non-order-preserving, namespace 2N
  kTranslatedRenaming,      ///< baseline: crash renaming [14] under the generic
                            ///< crash-to-Byzantine translation [3]/[13] — the approach
                            ///< the paper's introduction rejects; 2x steps, ~N x messages
  kScalarAA,                ///< substrate: one Byzantine approximate agreement instance
};

[[nodiscard]] constexpr std::string_view to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kOpRenaming: return "op-renaming";
    case Algorithm::kOpRenamingConstantTime: return "op-renaming-const";
    case Algorithm::kFastRenaming: return "fast-renaming";
    case Algorithm::kCrashRenaming: return "crash-renaming";
    case Algorithm::kConsensusRenaming: return "consensus-renaming";
    case Algorithm::kBitRenaming: return "bit-renaming";
    case Algorithm::kTranslatedRenaming: return "translated-renaming";
    case Algorithm::kScalarAA: return "scalar-aa";
  }
  return "unknown";
}

/// Short user-facing token, as accepted by the CLI's --algorithm flag and
/// the campaign grid's algo= clause. Kept distinct from to_string (the
/// stable telemetry/report name) so schemas never change when the CLI
/// vocabulary does.
[[nodiscard]] constexpr std::string_view cli_token(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kOpRenaming: return "op";
    case Algorithm::kOpRenamingConstantTime: return "const";
    case Algorithm::kFastRenaming: return "fast";
    case Algorithm::kCrashRenaming: return "crash";
    case Algorithm::kConsensusRenaming: return "consensus";
    case Algorithm::kBitRenaming: return "bit";
    case Algorithm::kTranslatedRenaming: return "translated";
    case Algorithm::kScalarAA: return "scalar-aa";
  }
  return "unknown";
}

/// Parses a stable telemetry/report name (as printed by to_string) back
/// to its Algorithm. Consumers of RunInfo::algorithm (the metrics
/// registry's phase classifier, the complexity auditor) dispatch through
/// this; unlike algorithm_from_token it accepts every algorithm,
/// substrates included, because reports can mention any of them.
[[nodiscard]] constexpr std::optional<Algorithm> algorithm_from_name(
    std::string_view name) noexcept {
  constexpr Algorithm kAll[] = {
      Algorithm::kOpRenaming,        Algorithm::kOpRenamingConstantTime,
      Algorithm::kFastRenaming,      Algorithm::kCrashRenaming,
      Algorithm::kConsensusRenaming, Algorithm::kBitRenaming,
      Algorithm::kTranslatedRenaming, Algorithm::kScalarAA,
  };
  for (const Algorithm algorithm : kAll) {
    if (name == to_string(algorithm)) return algorithm;
  }
  return std::nullopt;
}

/// Parses a short token (as printed by cli_token) back to its Algorithm.
/// kScalarAA is a substrate, not a user-facing renaming protocol, so its
/// token is deliberately not accepted here. The single parser both the
/// CLI and the campaign grid language dispatch through.
[[nodiscard]] constexpr std::optional<Algorithm> algorithm_from_token(
    std::string_view token) noexcept {
  constexpr Algorithm kUserFacing[] = {
      Algorithm::kOpRenaming,       Algorithm::kOpRenamingConstantTime,
      Algorithm::kFastRenaming,     Algorithm::kCrashRenaming,
      Algorithm::kConsensusRenaming, Algorithm::kBitRenaming,
      Algorithm::kTranslatedRenaming,
  };
  for (const Algorithm algorithm : kUserFacing) {
    if (token == cli_token(algorithm)) return algorithm;
  }
  return std::nullopt;
}

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_ALGORITHM_H
