#ifndef BYZRENAME_CORE_RANK_APPROX_H
#define BYZRENAME_CORE_RANK_APPROX_H

#include <map>
#include <set>
#include <vector>

#include "core/params.h"
#include "numeric/rational.h"
#include "sim/payload.h"
#include "sim/types.h"

namespace byzrename::core {

/// A process's current rank estimates, keyed by original id. This is the
/// paper's sparse `ranks` array.
using RankMap = std::map<sim::Id, numeric::Rational>;

/// Decodes a received RanksMsg into a RankMap, rejecting structurally
/// malformed votes: duplicate or unsorted ids, oversized entry counts, or
/// rank encodings beyond options.max_rank_bits (see RenamingOptions for
/// why the size guard is principled). Returns false on rejection.
[[nodiscard]] bool decode_vote(const sim::RanksMsg& msg, const sim::SystemParams& params,
                               const RenamingOptions& options, RankMap& out);

/// Alg. 2: a vote is valid iff it ranks every id in the local `timely`
/// set and those ranks appear in id order separated by at least delta.
/// Correct processes always produce valid votes (Lemma IV.4), while the
/// check forces Byzantine votes — however inconsistent across receivers —
/// to respect the ordering of all timely ids, which is what lets the
/// per-id approximate agreements converge consistently.
[[nodiscard]] bool is_valid_ranks(const std::set<sim::Id>& timely, const RankMap& vote,
                                  const numeric::Rational& delta);

/// select_t: "the smallest and each t-th element after it" of a sorted
/// multiset — 0-based positions 0, t, 2t, ... (paper, Section IV-B). For
/// t == 0 the whole multiset is returned.
[[nodiscard]] std::vector<numeric::Rational> select_t(const std::vector<numeric::Rational>& sorted,
                                                      int t);

/// Result of one approximation step.
struct ApproximateResult {
  RankMap new_ranks;
  /// Ids dropped because they gathered fewer than N-t votes (never a
  /// timely id of any correct process, by Corollary IV.5).
  std::set<sim::Id> dropped;
};

/// Alg. 3: one voting step. For each id still in `accepted`, gathers the
/// votes for that id from all (already validated) received rank arrays,
/// drops ids with fewer than N-t votes, pads the multiset with the local
/// value to exactly N entries, discards the t lowest and t highest, and
/// averages the select_t subsequence of the remainder.
///
/// @param accepted  in/out: the local accepted set; dropped ids are removed.
/// @param my_ranks  the local rank estimates (source of padding values).
/// @param votes     the validated rank arrays received this step
///                  (including the process's own, via the self-loop).
[[nodiscard]] ApproximateResult approximate(const sim::SystemParams& params,
                                            std::set<sim::Id>& accepted, const RankMap& my_ranks,
                                            const std::vector<RankMap>& votes);

/// Encodes a RankMap as the wire payload (entries sorted by id).
[[nodiscard]] sim::RanksMsg encode_vote(const RankMap& ranks);

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_RANK_APPROX_H
