#ifndef BYZRENAME_CORE_CHECKER_H
#define BYZRENAME_CORE_CHECKER_H

#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace byzrename::core {

/// One correct process's input/output pair as seen by the checker.
struct NamedProcess {
  sim::Id original_id = 0;
  std::optional<sim::Name> new_name;
};

/// Independent verdict on a renaming run, checking exactly the four
/// properties of Section II of the paper — over correct processes only,
/// as the definitions demand.
struct CheckReport {
  bool validity = true;           ///< every name in [1 .. namespace_size]
  bool termination = true;        ///< every correct process decided
  bool uniqueness = true;         ///< no two correct processes share a name
  bool order_preservation = true; ///< names ordered like original ids
  sim::Name max_name = 0;         ///< largest name actually used
  sim::Name min_name = 0;         ///< smallest name actually used
  std::string detail;             ///< human-readable description of the first violation

  [[nodiscard]] bool all_ok() const noexcept {
    return validity && termination && uniqueness && order_preservation;
  }
};

/// Scores a run against the target namespace [1 .. namespace_size].
[[nodiscard]] CheckReport check_renaming(const std::vector<NamedProcess>& processes,
                                         sim::Name namespace_size);

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_CHECKER_H
