#ifndef BYZRENAME_CORE_CHECKER_H
#define BYZRENAME_CORE_CHECKER_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace byzrename::core {

/// One correct process's input/output pair as seen by the checker, plus
/// the provenance the violation records report: the process's physical
/// index in the simulator (-1 = unknown, e.g. hand-built checker inputs)
/// and the round it decided in (0 = unknown or never decided).
struct NamedProcess {
  sim::Id original_id = 0;
  std::optional<sim::Name> new_name;
  sim::ProcessIndex index = -1;
  sim::Round decided_round = 0;
  /// True when a transient restart (sim/fault.h RestartEvent)
  /// re-initialized this process mid-protocol; feeds the checker's
  /// recovered dimension.
  bool restarted = false;
};

/// The four guarantees of Section II, as a classification rather than a
/// single bit: under deliberate model violations (sim/fault.h) an
/// experiment wants to know WHICH guarantee degraded first, not just that
/// one did. Declaration order is the canonical reporting order.
enum class ViolationClass {
  kTermination,  ///< a correct process never decided within the budget
  kRange,        ///< a name fell outside [1 .. namespace_size] (validity)
  kUniqueness,   ///< two correct processes share a name
  kOrder,        ///< names not ordered like original ids
};

inline constexpr int kViolationClassCount = 4;

[[nodiscard]] constexpr std::string_view to_string(ViolationClass cls) noexcept {
  switch (cls) {
    case ViolationClass::kTermination: return "termination";
    case ViolationClass::kRange: return "range";
    case ViolationClass::kUniqueness: return "uniqueness";
    case ViolationClass::kOrder: return "order";
  }
  return "unknown";
}

/// One concrete guarantee violation with full provenance, so quarantine
/// logs and shrinker output point at an actual (round, process) instead
/// of a bare boolean.
struct ViolationRecord {
  ViolationClass cls = ViolationClass::kTermination;
  /// Original id of the offending process (for pairwise violations, the
  /// later/second process of the pair).
  sim::Id id = 0;
  sim::ProcessIndex pid = -1;  ///< physical index, -1 when unknown
  sim::Round round = 0;        ///< decide round, 0 when unknown
  std::string message;         ///< human-readable, provenance included
};

/// Independent verdict on a renaming run, checking exactly the four
/// properties of Section II of the paper — over correct processes only,
/// as the definitions demand.
struct CheckReport {
  bool validity = true;           ///< every name in [1 .. namespace_size]
  bool termination = true;        ///< every correct process decided
  bool uniqueness = true;         ///< no two correct processes share a name
  bool order_preservation = true; ///< names ordered like original ids
  sim::Name max_name = 0;         ///< largest name actually used
  sim::Name min_name = 0;         ///< smallest name actually used
  /// First violation per class, joined — the one-line summary.
  std::string detail;
  /// Every violation found, in checking order, with provenance.
  std::vector<ViolationRecord> violations;
  /// Transient-restart verdict dimension (Lenzen–Rybicki): how many
  /// correct processes were restarted mid-protocol, and how many of
  /// those RECOVERED — re-joined, decided, and are implicated in no
  /// violation (pairwise violations implicate both members). recovered
  /// < restarted with all_ok() cannot happen; the converse — violations
  /// elsewhere while every restarted process recovered — can.
  int restarted = 0;
  int recovered = 0;

  [[nodiscard]] bool all_ok() const noexcept {
    return validity && termination && uniqueness && order_preservation;
  }

  [[nodiscard]] bool has(ViolationClass cls) const noexcept {
    switch (cls) {
      case ViolationClass::kTermination: return !termination;
      case ViolationClass::kRange: return !validity;
      case ViolationClass::kUniqueness: return !uniqueness;
      case ViolationClass::kOrder: return !order_preservation;
    }
    return false;
  }

  /// Canonical comma-joined list of violated classes, in declaration
  /// order ("termination,order"); empty when all_ok(). The join key for
  /// degradation curves and the shrinker's same-failure predicate.
  [[nodiscard]] std::string classes() const;
};

/// Scores a run against the target namespace [1 .. namespace_size].
[[nodiscard]] CheckReport check_renaming(const std::vector<NamedProcess>& processes,
                                         sim::Name namespace_size);

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_CHECKER_H
