#include "core/op_renaming.h"

#include <map>
#include <stdexcept>

namespace byzrename::core {

using numeric::Rational;
using sim::Id;
using sim::Inbox;
using sim::Outbox;
using sim::Round;

OpRenamingProcess::OpRenamingProcess(sim::SystemParams params, Id my_id, RenamingOptions options)
    : params_(params),
      options_(options),
      iterations_(options.approximation_iterations >= 0
                      ? options.approximation_iterations
                      : default_approximation_iterations(params.t)),
      delta_(delta(params)),
      selection_(params, my_id) {
  if (!valid_for_op_renaming(params)) {
    throw std::invalid_argument("OpRenamingProcess: requires N > 3t");
  }
}

void OpRenamingProcess::on_send(Round round, Outbox& out) {
  if (decided_) return;
  if (round <= 4) {
    selection_.on_send(round, out);
    return;
  }
  out.broadcast(encode_vote(ranks_));
}

void OpRenamingProcess::on_receive(Round round, const Inbox& inbox) {
  if (decided_) return;
  if (round <= 4) {
    selection_.on_receive(round, inbox);
    if (round == 4) {
      accepted_ = selection_.accepted();
      assign_initial_ranks();
      if (iterations_ == 0) decide();
    }
    return;
  }

  // Voting step: accept at most one vote per link (a link spamming
  // several arrays is provably faulty; counting them all would let one
  // Byzantine process outvote the trim).
  std::map<sim::LinkIndex, RankMap> per_link;
  for (const sim::Delivery& d : inbox) {
    const auto* msg = std::get_if<sim::RanksMsg>(&*d.payload);
    if (msg == nullptr) continue;
    if (per_link.contains(d.link)) {
      ++rejected_votes_;
      continue;
    }
    RankMap vote;
    if (!decode_vote(*msg, params_, options_, vote) ||
        (options_.validate_votes && !is_valid_ranks(selection_.timely(), vote, delta_))) {
      ++rejected_votes_;
      continue;
    }
    per_link.emplace(d.link, std::move(vote));
  }

  std::vector<RankMap> votes;
  votes.reserve(per_link.size());
  for (auto& [link, vote] : per_link) votes.push_back(std::move(vote));

  ApproximateResult result = approximate(params_, accepted_, ranks_, votes);
  ranks_ = std::move(result.new_ranks);

  if (round == 4 + iterations_) decide();
}

void OpRenamingProcess::assign_initial_ranks() {
  // ranks[id] := rank(accepted, id) * delta, rank being the 1-based
  // position in the sorted accepted set (Alg. 1, lines 26-28).
  ranks_.clear();
  std::int64_t position = 0;
  for (const Id id : accepted_) {  // std::set iterates in sorted order
    ++position;
    ranks_.emplace(id, Rational(position) * delta_);
  }
}

void OpRenamingProcess::decide() {
  decided_ = true;
  const auto it = ranks_.find(selection_.my_id());
  if (it == ranks_.end()) {
    // Cannot happen for valid parameters: my id is timely at every
    // correct process (Lemma IV.2), hence never dropped (Cor. IV.5).
    decision_ = std::nullopt;
    return;
  }
  decision_ = it->second.round().to_int64();
}

}  // namespace byzrename::core
