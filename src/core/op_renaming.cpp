#include "core/op_renaming.h"

#include <map>
#include <stdexcept>
#include <utility>

namespace byzrename::core {

using numeric::Rational;
using sim::Id;
using sim::Inbox;
using sim::Outbox;
using sim::Round;

OpRenamingProcess::OpRenamingProcess(sim::SystemParams params, Id my_id, RenamingOptions options)
    : params_(params),
      options_(options),
      iterations_(options.approximation_iterations >= 0
                      ? options.approximation_iterations
                      : default_approximation_iterations(params.t)),
      delta_(delta(params)),
      selection_(params, my_id) {
  if (!valid_for_op_renaming(params)) {
    throw std::invalid_argument("OpRenamingProcess: requires N > 3t");
  }
  if (options_.rank_kernel != RankKernel::kExact) {
    engine_.emplace(params_, options_, iterations_);
    if (!engine_->enabled()) engine_.reset();  // over-budget instance: oracle only
  }
  kernel_ = engine_.has_value() ? options_.rank_kernel : RankKernel::kExact;
}

void OpRenamingProcess::on_send(Round round, Outbox& out) {
  if (decided_) return;
  if (round <= 4) {
    selection_.on_send(round, out);
    return;
  }
  if (kernel_ == RankKernel::kExact) {
    out.broadcast(encode_vote(ranks_));
  } else {
    out.broadcast(engine_->encode_ranks());
  }
}

void OpRenamingProcess::on_receive(Round round, const Inbox& inbox) {
  if (decided_) return;
  if (round <= 4) {
    selection_.on_receive(round, inbox);
    if (round == 4) {
      accepted_ = selection_.accepted();
      assign_initial_ranks();
      if (iterations_ == 0) decide();
    }
    return;
  }

  if (kernel_ == RankKernel::kExact) {
    exact_step(inbox, ranks_, accepted_, rejected_votes_);
  } else {
    engine_->step(inbox, selection_.timely(), accepted_, rejected_votes_);
    ranks_cache_valid_ = false;
    if (kernel_ == RankKernel::kCheck) {
      exact_step(inbox, shadow_ranks_, shadow_accepted_, shadow_rejected_);
      if (engine_->materialize() != shadow_ranks_ || accepted_ != shadow_accepted_ ||
          rejected_votes_ != shadow_rejected_) {
        throw std::logic_error(
            "OpRenamingProcess: fixed kernel diverged from the exact oracle");
      }
    }
  }

  if (round == 4 + iterations_) decide();
}

void OpRenamingProcess::exact_step(const Inbox& inbox, RankMap& ranks, std::set<Id>& accepted,
                                   int& rejected) {
  // Voting step: accept at most one vote per link (a link spamming
  // several arrays is provably faulty; counting them all would let one
  // Byzantine process outvote the trim).
  std::map<sim::LinkIndex, RankMap> per_link;
  for (const sim::Delivery& d : inbox) {
    const auto* fixed = std::get_if<sim::FixedRanksMsg>(&*d.payload);
    const auto* msg = std::get_if<sim::RanksMsg>(&*d.payload);
    if (fixed == nullptr && msg == nullptr) continue;
    if (per_link.contains(d.link)) {
      ++rejected;
      continue;
    }
    sim::RanksMsg converted;
    if (fixed != nullptr) {
      converted = sim::to_ranks_msg(*fixed);
      msg = &converted;
    }
    RankMap vote;
    if (!decode_vote(*msg, params_, options_, vote) ||
        (options_.validate_votes && !is_valid_ranks(selection_.timely(), vote, delta_))) {
      ++rejected;
      continue;
    }
    per_link.emplace(d.link, std::move(vote));
  }

  std::vector<RankMap> votes;
  votes.reserve(per_link.size());
  for (auto& [link, vote] : per_link) votes.push_back(std::move(vote));

  ApproximateResult result = approximate(params_, accepted, ranks, votes);
  ranks = std::move(result.new_ranks);
}

void OpRenamingProcess::assign_initial_ranks() {
  // ranks[id] := rank(accepted, id) * delta, rank being the 1-based
  // position in the sorted accepted set (Alg. 1, lines 26-28).
  if (kernel_ == RankKernel::kExact) {
    ranks_.clear();
    std::int64_t position = 0;
    for (const Id id : accepted_) {  // std::set iterates in sorted order
      ++position;
      ranks_.emplace(id, Rational(position) * delta_);
    }
    return;
  }
  engine_->assign_initial_ranks(accepted_);
  ranks_cache_valid_ = false;
  if (kernel_ == RankKernel::kCheck) {
    shadow_accepted_ = accepted_;
    shadow_rejected_ = rejected_votes_;
    shadow_ranks_.clear();
    std::int64_t position = 0;
    for (const Id id : shadow_accepted_) {
      ++position;
      shadow_ranks_.emplace(id, Rational(position) * delta_);
    }
    if (engine_->materialize() != shadow_ranks_) {
      throw std::logic_error("OpRenamingProcess: fixed initial ranks diverged from exact");
    }
  }
}

const RankMap& OpRenamingProcess::ranks() const {
  if (kernel_ == RankKernel::kExact) return ranks_;
  if (!ranks_cache_valid_) {
    ranks_cache_ = engine_->materialize();
    ranks_cache_valid_ = true;
  }
  return ranks_cache_;
}

void OpRenamingProcess::decide() {
  decided_ = true;
  std::optional<Rational> rank;
  if (kernel_ == RankKernel::kExact) {
    const auto it = ranks_.find(selection_.my_id());
    if (it != ranks_.end()) rank = it->second;
  } else {
    rank = engine_->rank_of(selection_.my_id());
  }
  if (!rank.has_value()) {
    // Cannot happen for valid parameters: my id is timely at every
    // correct process (Lemma IV.2), hence never dropped (Cor. IV.5).
    decision_ = std::nullopt;
    return;
  }
  decision_ = rank->round().to_int64();
}

}  // namespace byzrename::core
