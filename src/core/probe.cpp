#include "core/probe.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/fast_renaming.h"
#include "core/op_renaming.h"

namespace byzrename::core {

using numeric::Rational;

Rational max_rank_spread(const sim::Network& network, bool timely_only) {
  std::map<sim::Id, std::pair<Rational, Rational>> extremes;
  std::set<sim::Id> timely_union;
  for (sim::ProcessIndex i = 0; i < network.size(); ++i) {
    if (network.is_byzantine(i)) continue;
    const auto* op = dynamic_cast<const OpRenamingProcess*>(&network.behavior(i));
    if (op == nullptr) continue;
    timely_union.insert(op->timely().begin(), op->timely().end());
    for (const auto& [id, rank] : op->ranks()) {
      const auto it = extremes.find(id);
      if (it == extremes.end()) {
        extremes.emplace(id, std::make_pair(rank, rank));
      } else {
        it->second.first = std::min(it->second.first, rank);
        it->second.second = std::max(it->second.second, rank);
      }
    }
  }
  Rational worst;
  for (const auto& [id, range] : extremes) {
    if (timely_only && !timely_union.contains(id)) continue;
    worst = std::max(worst, range.second - range.first);
  }
  return worst;
}

Rational min_adjacent_rank_gap(const sim::Network& network) {
  Rational best(1'000'000'000);
  for (sim::ProcessIndex i = 0; i < network.size(); ++i) {
    if (network.is_byzantine(i)) continue;
    const auto* op = dynamic_cast<const OpRenamingProcess*>(&network.behavior(i));
    if (op == nullptr) continue;
    const Rational* previous = nullptr;
    for (const sim::Id id : op->timely()) {
      const auto it = op->ranks().find(id);
      if (it == op->ranks().end()) continue;
      if (previous != nullptr) best = std::min(best, it->second - *previous);
      previous = &it->second;
    }
  }
  return best;
}

FastNameStats fast_name_stats(const sim::Network& network) {
  FastNameStats stats;
  std::vector<std::map<sim::Id, sim::Name>> newids;
  std::vector<sim::Id> correct_ids;
  for (sim::ProcessIndex i = 0; i < network.size(); ++i) {
    if (network.is_byzantine(i)) continue;
    const auto* fast = dynamic_cast<const FastRenamingProcess*>(&network.behavior(i));
    if (fast == nullptr) continue;
    newids.push_back(fast->newid());
    correct_ids.push_back(fast->my_id());
  }
  std::sort(correct_ids.begin(), correct_ids.end());

  for (const sim::Id id : correct_ids) {
    sim::Name lo = std::numeric_limits<sim::Name>::max();
    sim::Name hi = std::numeric_limits<sim::Name>::min();
    for (const auto& newid : newids) {
      const auto it = newid.find(id);
      if (it == newid.end()) continue;
      lo = std::min(lo, it->second);
      hi = std::max(hi, it->second);
    }
    if (lo <= hi) stats.max_discrepancy = std::max(stats.max_discrepancy, hi - lo);
  }
  for (const auto& newid : newids) {
    for (std::size_t i = 1; i < correct_ids.size(); ++i) {
      const auto lo = newid.find(correct_ids[i - 1]);
      const auto hi = newid.find(correct_ids[i]);
      if (lo == newid.end() || hi == newid.end()) continue;
      stats.min_gap = std::min(stats.min_gap, hi->second - lo->second);
    }
  }
  return stats;
}

}  // namespace byzrename::core
