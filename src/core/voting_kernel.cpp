#include "core/voting_kernel.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace byzrename::core {

using numeric::BigInt;
using numeric::FixedConvert;
using numeric::FixedSpec;
using numeric::kFixedAccLimbs;
using numeric::kFixedRankLimbs;
using numeric::limb_t;
using numeric::Rational;
using numeric::uwide_t;
using sim::Id;

namespace {

constexpr limb_t kSignBias = limb_t{1} << 63;

/// Pooled classic-vote scratch above this many value limbs is released
/// after the step: keeps N <= 512 instances allocation-free round over
/// round without pinning tens of megabytes per process at N = 1024.
constexpr std::size_t kArenaKeepLimbs = std::size_t{1} << 19;

void copy_limbs(limb_t* dst, const limb_t* src, int w) noexcept {
  for (int i = 0; i < w; ++i) dst[i] = src[i];
}

/// Bit length of |v| for a two's-complement value (scratch-free).
std::size_t signed_bit_length(const limb_t* v, int w) noexcept {
  limb_t mag[kFixedRankLimbs];
  if (numeric::limb_is_negative(v, w)) {
    numeric::limb_neg(mag, v, w);
  } else {
    copy_limbs(mag, v, w);
  }
  for (int i = w - 1; i >= 0; --i) {
    if (mag[i] != 0) {
      return static_cast<std::size_t>(i) * 64 + std::bit_width(mag[i]);
    }
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// FixedBallotKernel
// ---------------------------------------------------------------------------

FixedBallotKernel::Outcome FixedBallotKernel::average_keys(const FixedSpec& spec,
                                                           uwide_t* keys, int n, limb_t* out,
                                                           BigInt& sum_out) {
  const int w = spec.width;
  const int t = spec.t;
  const auto c = static_cast<limb_t>(spec.select_count);

  limb_t acc[kFixedAccLimbs] = {0, 0, 0};
  const auto accumulate_key = [&](uwide_t key) {
    limb_t value[3] = {static_cast<limb_t>(key), static_cast<limb_t>(key >> 64) ^ kSignBias, 0};
    numeric::limb_sign_extend(value, 2, 3);
    // Wrapping add: the true sum fits w+1 limbs, so modular two's
    // complement is exact.
    (void)numeric::limb_add_n(acc, acc, value, 3);
  };

  if (t <= 0) {
    // No trim and select_t keeps everything: the sum is order-free, so
    // no sort is needed at all.
    for (int i = 0; i < n; ++i) accumulate_key(keys[i]);
  } else {
    const int picks = static_cast<int>(spec.select_count);
    if (n <= numeric::kNetworkSortMax) {
      numeric::sort_u128_network(keys, n);
    } else if (picks <= 8) {
      // Few order statistics: successive nth_element over shrinking
      // suffixes beats a full sort (positions are t, 2t, ..., ct).
      int prev = -1;
      for (int j = 0; j < picks; ++j) {
        const int pos = t * (1 + j);
        std::nth_element(keys + prev + 1, keys + pos, keys + n);
        prev = pos;
      }
    } else {
      std::sort(keys, keys + n);
    }
    for (int j = 0; j < picks; ++j) accumulate_key(keys[t * (1 + j)]);
  }

  const bool negative = numeric::limb_is_negative(acc, 3);
  limb_t magnitude[kFixedAccLimbs];
  if (negative) {
    numeric::limb_neg(magnitude, acc, 3);
  } else {
    copy_limbs(magnitude, acc, 3);
  }
  limb_t quotient[kFixedAccLimbs];
  if (numeric::limb_divrem_1(quotient, magnitude, 3, c) != 0) {
    sum_out = BigInt::from_words64(magnitude, 3, negative);
    return Outcome::kRemainder;
  }
  if (negative) {
    numeric::limb_neg(out, quotient, w);
  } else {
    copy_limbs(out, quotient, w);
  }
  return Outcome::kOk;
}

FixedBallotKernel::Outcome FixedBallotKernel::average(const FixedSpec& spec, limb_t* ballot,
                                                      int n, limb_t* out, BigInt& sum_out) {
  const int w = spec.width;
  const int t = spec.t;
  const auto c = static_cast<limb_t>(spec.select_count);

  if (w == 2 && t > 0) {
    // Offset-binary u128 keys: flipping the sign bit of the top limb
    // maps two's-complement order onto unsigned order, so the sort is a
    // flat branch-free key compare and keys convert back bijectively.
    keys_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const limb_t lo = ballot[2 * i];
      const limb_t hi = ballot[2 * i + 1] ^ kSignBias;
      keys_[static_cast<std::size_t>(i)] = (static_cast<uwide_t>(hi) << 64) | lo;
    }
    return average_keys(spec, keys_.data(), n, out, sum_out);
  }

  limb_t acc[kFixedAccLimbs] = {0, 0, 0, 0, 0};
  limb_t tmp[kFixedAccLimbs];
  const auto accumulate = [&](const limb_t* value) {
    copy_limbs(tmp, value, w);
    numeric::limb_sign_extend(tmp, w, w + 1);
    // Wrapping add: the true sum fits w+1 limbs, so modular two's
    // complement is exact.
    (void)numeric::limb_add_n(acc, acc, tmp, w + 1);
  };

  if (t <= 0) {
    // No trim and select_t keeps everything: the sum is order-free, so
    // no sort is needed at all.
    for (int i = 0; i < n; ++i) accumulate(ballot + static_cast<std::size_t>(i) * w);
  } else {
    // Wide values: big-endian limb keys with a biased top limb, ordered
    // by std::array's lexicographic compare.
    wide_keys_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto& key = wide_keys_[static_cast<std::size_t>(i)];
      const limb_t* value = ballot + static_cast<std::size_t>(i) * w;
      for (int j = 0; j < w; ++j) key[static_cast<std::size_t>(j)] = value[w - 1 - j];
      key[0] ^= kSignBias;
      for (int j = w; j < kFixedRankLimbs; ++j) key[static_cast<std::size_t>(j)] = 0;
    }
    const int picks = static_cast<int>(spec.select_count);
    if (picks <= 8) {
      int prev = -1;
      for (int j = 0; j < picks; ++j) {
        const int pos = t * (1 + j);
        std::nth_element(wide_keys_.begin() + prev + 1, wide_keys_.begin() + pos,
                         wide_keys_.begin() + n);
        prev = pos;
      }
    } else {
      std::sort(wide_keys_.begin(), wide_keys_.begin() + n);
    }
    for (int j = 0; j < picks; ++j) {
      auto key = wide_keys_[static_cast<std::size_t>(t * (1 + j))];
      key[0] ^= kSignBias;
      limb_t value[kFixedRankLimbs];
      for (int i = 0; i < w; ++i) value[i] = key[static_cast<std::size_t>(w - 1 - i)];
      accumulate(value);
    }
  }

  const bool negative = numeric::limb_is_negative(acc, w + 1);
  limb_t magnitude[kFixedAccLimbs];
  if (negative) {
    numeric::limb_neg(magnitude, acc, w + 1);
  } else {
    copy_limbs(magnitude, acc, w + 1);
  }
  limb_t quotient[kFixedAccLimbs];
  if (numeric::limb_divrem_1(quotient, magnitude, w + 1, c) != 0) {
    sum_out = BigInt::from_words64(magnitude, w + 1, negative);
    return Outcome::kRemainder;
  }
  // The average of w-limb values is again a w-limb value (convexity),
  // so the top quotient limb is zero and the sign fits.
  if (negative) {
    numeric::limb_neg(out, quotient, w);
  } else {
    copy_limbs(out, quotient, w);
  }
  return Outcome::kOk;
}

// ---------------------------------------------------------------------------
// FixedVotingEngine
// ---------------------------------------------------------------------------

FixedVotingEngine::FixedVotingEngine(sim::SystemParams params, RenamingOptions options,
                                     int iterations)
    : params_(params),
      options_(options),
      spec_(numeric::derive_fixed_spec(params.n, params.t, iterations)),
      delta_(delta(params)),
      w_(spec_.width) {
  link_seen_.assign(static_cast<std::size_t>(params.n), 0);
  // Representable magnitudes stay below 2^(64w - 1), so when even the
  // widest on-grid value fits the rank-bits budget (it always does at
  // the default 4096), the per-entry check in admit_fixed is vacuous.
  bits_always_ok_ =
      spec_.ok && 64 * static_cast<std::size_t>(w_) - 1 + spec_.scale_bits + 2 <=
                      options_.max_rank_bits;
}

bool FixedVotingEngine::matches_spec(const sim::FixedRanksMsg& msg) const noexcept {
  return msg.width == w_ && msg.scale == spec_.scale &&
         msg.nums.size() == msg.ids.size() * static_cast<std::size_t>(w_);
}

void FixedVotingEngine::assign_initial_ranks(const std::set<Id>& accepted) {
  ids_.clear();
  nums_.clear();
  is_exact_.clear();
  overrides_.clear();
  limb_t position = 0;
  limb_t value[kFixedRankLimbs];
  for (const Id id : accepted) {
    ++position;
    // position * delta = position * (S + c^I) / S: always on-grid and
    // within width (the headroom covers (N+t) * delta * S).
    const limb_t carry = numeric::limb_mul_1(value, spec_.delta_scaled.data(), w_, position);
    if (carry != 0) throw std::logic_error("FixedVotingEngine: initial rank overflow");
    ids_.push_back(id);
    nums_.insert(nums_.end(), value, value + w_);
    is_exact_.push_back(0);
  }
}

sim::PayloadRef FixedVotingEngine::encode_ranks() const {
  if (overrides_.empty()) {
    sim::FixedRanksMsg msg;
    msg.width = w_;
    msg.scale = spec_.scale;
    msg.ids = ids_;
    msg.nums = nums_;
    return sim::PayloadRef(std::move(msg));
  }
  // Some rank is off-grid: fall back to the classic wire form (the
  // codec makes both encode to identical bytes anyway).
  sim::RanksMsg msg;
  msg.entries.reserve(ids_.size());
  for (std::size_t k = 0; k < ids_.size(); ++k) {
    if (is_exact_[k] != 0) {
      msg.entries.push_back({ids_[k], overrides_.at(ids_[k])});
    } else {
      msg.entries.push_back(
          {ids_[k], numeric::fixed_to_rational(nums_.data() + k * w_, w_, spec_.scale_big)});
    }
  }
  return sim::PayloadRef(std::move(msg));
}

bool FixedVotingEngine::rank_bits_ok(const limb_t* num) const {
  // Sufficient unreduced bound first: encoded_bits of the reduced form
  // never exceeds bits(|num|) + bits(S) + 2, so honest budgets pass
  // without a gcd; only artificially tiny max_rank_bits options reach
  // the exact computation.
  const std::size_t bound = signed_bit_length(num, w_) + spec_.scale_bits + 2;
  if (bound <= options_.max_rank_bits) return true;
  return numeric::fixed_to_rational(num, w_, spec_.scale_big).encoded_bits() <=
         options_.max_rank_bits;
}

namespace {

/// Gap validity over the fixed lane: cur - prev >= delta * S, computed
/// in w+1-limb two's complement (no overflow). Honest values (and the
/// strategy zoo's shifted variants) are small non-negative one-limb
/// numerators, so the common case folds to a single u64 compare.
bool gap_ok(const limb_t* prev, const limb_t* cur, const FixedSpec& spec) noexcept {
  const int w = spec.width;
  if (w == 2 && ((prev[1] | cur[1] | (prev[0] >> 63) | (cur[0] >> 63)) == 0) &&
      spec.delta_scaled[1] == 0) {
    // All three quantities in [0, 2^63): prev + delta cannot wrap.
    return cur[0] >= prev[0] + spec.delta_scaled[0];
  }
  limb_t a[kFixedAccLimbs];
  limb_t b[kFixedAccLimbs];
  limb_t diff[kFixedAccLimbs];
  copy_limbs(a, cur, w);
  numeric::limb_sign_extend(a, w, w + 1);
  copy_limbs(b, prev, w);
  numeric::limb_sign_extend(b, w, w + 1);
  (void)numeric::limb_sub_n(diff, a, b, w + 1);
  (void)numeric::limb_sub_n(diff, diff, spec.delta_scaled.data(), w + 1);
  return !numeric::limb_is_negative(diff, w + 1);
}

}  // namespace

bool FixedVotingEngine::admit_fixed(const sim::FixedRanksMsg& msg) {
  const int max_entries =
      options_.max_vote_entries >= 0 ? options_.max_vote_entries : params_.n + params_.t;
  if (static_cast<int>(msg.ids.size()) > max_entries) return false;
  Id previous = 0;
  bool first = true;
  for (std::size_t i = 0; i < msg.ids.size(); ++i) {
    if (!first && msg.ids[i] <= previous) return false;  // unsorted or duplicate id
    if (!bits_always_ok_ && !rank_bits_ok(msg.nums.data() + i * w_)) return false;
    previous = msg.ids[i];
    first = false;
  }

  if (options_.validate_votes) {
    // is_valid_ranks over the fixed lane: every timely id ranked, with
    // consecutive ranks separated by at least delta.
    const limb_t* prev_num = nullptr;
    std::uint32_t pos = 0;
    for (const Id id : timely_flat_) {
      while (pos < msg.ids.size() && msg.ids[pos] < id) ++pos;
      if (pos >= msg.ids.size() || msg.ids[pos] != id) return false;
      const limb_t* cur_num = msg.nums.data() + static_cast<std::size_t>(pos) * w_;
      if (prev_num != nullptr && !gap_ok(prev_num, cur_num, spec_)) return false;
      prev_num = cur_num;
    }
  }

  votes_.push_back(Vote{msg.ids.data(), msg.nums.data(),
                        static_cast<std::uint32_t>(msg.ids.size()), -1, 0, 0});
  return true;
}

bool FixedVotingEngine::admit_classic(const sim::RanksMsg& msg) {
  const int max_entries =
      options_.max_vote_entries >= 0 ? options_.max_vote_entries : params_.n + params_.t;
  if (static_cast<int>(msg.entries.size()) > max_entries) return false;
  Id previous = 0;
  bool first = true;
  for (const sim::RankEntry& entry : msg.entries) {
    if (!first && entry.id <= previous) return false;
    if (entry.rank.encoded_bits() > options_.max_rank_bits) return false;
    previous = entry.id;
    first = false;
  }

  // Convert into the pooled arena (reserved up front, so these appends
  // never reallocate mid-step); off-grid entries go to the exact list.
  const std::size_t id_mark = arena_ids_.size();
  const std::size_t num_mark = arena_nums_.size();
  std::int32_t exacts_index = -1;
  for (std::uint32_t i = 0; i < msg.entries.size(); ++i) {
    const sim::RankEntry& entry = msg.entries[i];
    arena_ids_.push_back(entry.id);
    limb_t value[kFixedRankLimbs] = {0, 0, 0, 0};
    if (numeric::rational_to_fixed(entry.rank, spec_, value) != FixedConvert::kOk) {
      if (exacts_index < 0) {
        if (vote_exacts_used_ == vote_exacts_.size()) vote_exacts_.emplace_back();
        exacts_index = static_cast<std::int32_t>(vote_exacts_used_++);
        vote_exacts_[static_cast<std::size_t>(exacts_index)].clear();
      }
      vote_exacts_[static_cast<std::size_t>(exacts_index)].emplace_back(i, entry.rank);
      // Zero placeholder keeps the limb lane index-aligned; shadowed by
      // the exact list everywhere it matters.
    }
    arena_nums_.insert(arena_nums_.end(), value, value + w_);
  }

  Vote vote{arena_ids_.data() + id_mark, arena_nums_.data() + num_mark,
            static_cast<std::uint32_t>(msg.entries.size()), exacts_index, 0, 0};

  if (options_.validate_votes) {
    const ExactEntries* exacts =
        exacts_index >= 0 ? &vote_exacts_[static_cast<std::size_t>(exacts_index)] : nullptr;
    const limb_t* prev_num = nullptr;
    const Rational* prev_exact = nullptr;
    bool valid = true;
    std::uint32_t pos = 0;
    std::uint32_t ec = 0;
    bool have_prev = false;
    for (const Id id : timely_flat_) {
      while (pos < vote.count && vote.ids[pos] < id) ++pos;
      if (pos >= vote.count || vote.ids[pos] != id) {
        valid = false;
        break;
      }
      if (exacts != nullptr) {
        while (ec < exacts->size() && (*exacts)[ec].first < pos) ++ec;
      }
      const Rational* cur_exact =
          (exacts != nullptr && ec < exacts->size() && (*exacts)[ec].first == pos)
              ? &(*exacts)[ec].second
              : nullptr;
      const limb_t* cur_num = vote.nums + static_cast<std::size_t>(pos) * w_;
      if (have_prev) {
        if (prev_exact == nullptr && cur_exact == nullptr) {
          if (!gap_ok(prev_num, cur_num, spec_)) {
            valid = false;
            break;
          }
        } else {
          const Rational a = prev_exact != nullptr
                                 ? *prev_exact
                                 : numeric::fixed_to_rational(prev_num, w_, spec_.scale_big);
          const Rational b = cur_exact != nullptr
                                 ? *cur_exact
                                 : numeric::fixed_to_rational(cur_num, w_, spec_.scale_big);
          if (b - a < delta_) {
            valid = false;
            break;
          }
        }
      }
      prev_num = cur_num;
      prev_exact = cur_exact;
      have_prev = true;
    }
    if (!valid) {
      // Roll the arena back; the vote was never published.
      arena_ids_.resize(id_mark);
      arena_nums_.resize(num_mark);
      if (exacts_index >= 0) --vote_exacts_used_;
      return false;
    }
  }

  votes_.push_back(vote);
  return true;
}

Rational FixedVotingEngine::value_at(const Vote& vote, std::uint32_t index) const {
  if (vote.exacts >= 0) {
    const ExactEntries& exacts = vote_exacts_[static_cast<std::size_t>(vote.exacts)];
    const auto it = std::lower_bound(
        exacts.begin(), exacts.end(), index,
        [](const auto& entry, std::uint32_t i) { return entry.first < i; });
    if (it != exacts.end() && it->first == index) return it->second;
  }
  return numeric::fixed_to_rational(vote.nums + static_cast<std::size_t>(index) * w_, w_,
                                    spec_.scale_big);
}

void FixedVotingEngine::push_result(Id id, const limb_t* num) {
  next_ids_.push_back(id);
  next_nums_.insert(next_nums_.end(), num, num + w_);
  next_is_exact_.push_back(0);
}

void FixedVotingEngine::push_override(Id id, Rational value) {
  next_ids_.push_back(id);
  for (int i = 0; i < w_; ++i) next_nums_.push_back(0);
  next_is_exact_.push_back(1);
  next_overrides_.emplace(id, std::move(value));
}

void FixedVotingEngine::step(const sim::Inbox& inbox, const std::set<Id>& timely,
                             std::set<Id>& accepted, int& rejected_votes) {
  const int n = params_.n;
  const int t = params_.t;
  ++step_serial_;
  timely_flat_.assign(timely.begin(), timely.end());
  votes_.clear();
  vote_exacts_used_ = 0;

  // Size the arena before taking pointers into it: classic (and
  // spec-mismatched) votes convert into contiguous storage that must
  // not move for the rest of the step.
  std::size_t classic_entries = 0;
  for (const sim::Delivery& d : inbox) {
    if (const auto* classic = std::get_if<sim::RanksMsg>(&*d.payload)) {
      classic_entries += classic->entries.size();
    } else if (const auto* fixed = std::get_if<sim::FixedRanksMsg>(&*d.payload)) {
      if (!matches_spec(*fixed)) classic_entries += fixed->ids.size();
    }
  }
  arena_ids_.clear();
  arena_ids_.reserve(classic_entries);
  arena_nums_.clear();
  arena_nums_.reserve(classic_entries * static_cast<std::size_t>(w_));

  // Admission: at most one vote per link, counted and filtered exactly
  // like the oracle path (decode_vote + is_valid_ranks). As there, a
  // link is only burned by an *accepted* vote.
  for (const sim::Delivery& d : inbox) {
    const auto* fixed = std::get_if<sim::FixedRanksMsg>(&*d.payload);
    const auto* classic = std::get_if<sim::RanksMsg>(&*d.payload);
    if (fixed == nullptr && classic == nullptr) continue;
    if (link_seen_[static_cast<std::size_t>(d.link)] == step_serial_) {
      ++rejected_votes;
      continue;
    }
    bool ok;
    if (fixed != nullptr && matches_spec(*fixed)) {
      ok = admit_fixed(*fixed);
    } else if (fixed != nullptr) {
      // Foreign-instance fixed vote: degrade to the classic path via
      // its exact equivalent (never produced by this simulator's
      // honest or adversarial senders; handled for totality).
      ok = admit_classic(sim::to_ranks_msg(*fixed));
    } else {
      ok = admit_classic(*classic);
    }
    if (ok) {
      link_seen_[static_cast<std::size_t>(d.link)] = step_serial_;
    } else {
      ++rejected_votes;
    }
  }

  // Gather-and-average, one merge pass over the sorted votes per id.
  next_ids_.clear();
  next_nums_.clear();
  next_is_exact_.clear();
  next_overrides_.clear();
  if (ballot_.size() < static_cast<std::size_t>(n) * static_cast<std::size_t>(w_)) {
    ballot_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(w_));
  }

  // Fused lane: when every admitted vote is pure fixed (the steady
  // state) and the local rank is on-grid, gather writes offset-binary
  // u128 keys directly — no intermediate limb ballot, no exacts branch
  // in the inner loop.
  bool all_fixed = w_ == 2;
  if (all_fixed) {
    for (const Vote& vote : votes_) {
      if (vote.exacts >= 0) {
        all_fixed = false;
        break;
      }
    }
  }
  if (all_fixed && key_ballot_.size() < static_cast<std::size_t>(n)) {
    key_ballot_.resize(static_cast<std::size_t>(n));
  }

  for (std::size_t k = 0; k < ids_.size(); ++k) {
    const Id id = ids_[k];
    if (all_fixed && is_exact_[k] == 0) {
      int count = 0;
      for (Vote& vote : votes_) {
        while (vote.cursor < vote.count && vote.ids[vote.cursor] < id) ++vote.cursor;
        if (vote.cursor >= vote.count || vote.ids[vote.cursor] != id) continue;
        const limb_t* v = vote.nums + static_cast<std::size_t>(vote.cursor) * 2;
        key_ballot_[static_cast<std::size_t>(count)] =
            (static_cast<uwide_t>(v[1] ^ kSignBias) << 64) | v[0];
        ++count;
        ++vote.cursor;
      }
      if (count < n - t) {
        accepted.erase(id);
        continue;
      }
      if (count < n) {
        const limb_t* own = nums_.data() + k * 2;
        const uwide_t own_key = (static_cast<uwide_t>(own[1] ^ kSignBias) << 64) | own[0];
        while (count < n) key_ballot_[static_cast<std::size_t>(count++)] = own_key;
      }
      limb_t result[kFixedRankLimbs];
      BigInt sum;
      if (kernel_.average_keys(spec_, key_ballot_.data(), n, result, sum) ==
          FixedBallotKernel::Outcome::kOk) {
        push_result(id, result);
      } else {
        push_override(id, Rational(sum, BigInt(spec_.select_count) * spec_.scale_big));
      }
      continue;
    }
    int count = 0;
    exact_hits_.clear();
    for (Vote& vote : votes_) {
      while (vote.cursor < vote.count && vote.ids[vote.cursor] < id) ++vote.cursor;
      if (vote.cursor >= vote.count || vote.ids[vote.cursor] != id) continue;
      if (vote.exacts >= 0) {
        const ExactEntries& exacts = vote_exacts_[static_cast<std::size_t>(vote.exacts)];
        while (vote.exact_cursor < exacts.size() &&
               exacts[vote.exact_cursor].first < vote.cursor) {
          ++vote.exact_cursor;
        }
        if (vote.exact_cursor < exacts.size() &&
            exacts[vote.exact_cursor].first == vote.cursor) {
          exact_hits_.emplace_back(static_cast<std::uint32_t>(count),
                                   &exacts[vote.exact_cursor].second);
          for (int i = 0; i < w_; ++i) ballot_[static_cast<std::size_t>(count) * w_ + i] = 0;
          ++count;
          ++vote.cursor;
          continue;
        }
      }
      copy_limbs(ballot_.data() + static_cast<std::size_t>(count) * w_,
                 vote.nums + static_cast<std::size_t>(vote.cursor) * w_, w_);
      ++count;
      ++vote.cursor;
    }

    if (count < n - t) {
      // Fewer than N-t votes: discarded (Alg. 3 line 08); never a
      // timely id of any correct process (Cor. IV.5).
      accepted.erase(id);
      continue;
    }

    // Pad to exactly N with the local value (Alg. 3 lines 10-11).
    if (count < n) {
      if (is_exact_[k] != 0) {
        const Rational& own = overrides_.at(id);
        while (count < n) {
          exact_hits_.emplace_back(static_cast<std::uint32_t>(count), &own);
          for (int i = 0; i < w_; ++i) ballot_[static_cast<std::size_t>(count) * w_ + i] = 0;
          ++count;
        }
      } else {
        const limb_t* own = nums_.data() + k * static_cast<std::size_t>(w_);
        while (count < n) {
          copy_limbs(ballot_.data() + static_cast<std::size_t>(count) * w_, own, w_);
          ++count;
        }
      }
    }

    if (exact_hits_.empty()) {
      limb_t result[kFixedRankLimbs];
      BigInt sum;
      if (kernel_.average(spec_, ballot_.data(), n, result, sum) ==
          FixedBallotKernel::Outcome::kOk) {
        push_result(id, result);
      } else {
        // Sum not divisible by c: the exact average sum / (c*S) left
        // the grid (only reachable via admitted Byzantine values).
        push_override(id, Rational(sum, BigInt(spec_.select_count) * spec_.scale_big));
      }
      continue;
    }

    // Exact-oracle lane: at least one ballot entry is off-grid.
    // Materializes the ballot in the oracle's order (vote order, then
    // padding) and replicates rank_approx::approximate verbatim.
    exact_ballot_.clear();
    std::size_t hit = 0;
    for (int j = 0; j < n; ++j) {
      if (hit < exact_hits_.size() &&
          exact_hits_[hit].first == static_cast<std::uint32_t>(j)) {
        exact_ballot_.push_back(*exact_hits_[hit].second);
        ++hit;
      } else {
        exact_ballot_.push_back(numeric::fixed_to_rational(
            ballot_.data() + static_cast<std::size_t>(j) * w_, w_, spec_.scale_big));
      }
    }
    std::sort(exact_ballot_.begin(), exact_ballot_.end());
    Rational sum;
    if (t > 0) {
      for (std::int64_t j = 0; j < spec_.select_count; ++j) {
        sum += exact_ballot_[static_cast<std::size_t>(t) * static_cast<std::size_t>(1 + j)];
      }
    } else {
      for (const Rational& value : exact_ballot_) sum += value;
    }
    Rational result = sum / Rational(spec_.select_count);
    limb_t fixed_result[kFixedRankLimbs];
    if (numeric::rational_to_fixed(result, spec_, fixed_result) == FixedConvert::kOk) {
      push_result(id, fixed_result);  // landed back on the grid
    } else {
      push_override(id, std::move(result));
    }
  }

  ids_.swap(next_ids_);
  nums_.swap(next_nums_);
  is_exact_.swap(next_is_exact_);
  overrides_.swap(next_overrides_);
  shrink_scratch();
}

void FixedVotingEngine::shrink_scratch() {
  if (arena_nums_.capacity() > kArenaKeepLimbs) {
    arena_nums_ = std::vector<limb_t>();
    arena_ids_ = std::vector<Id>();
  }
}

RankMap FixedVotingEngine::materialize() const {
  RankMap out;
  for (std::size_t k = 0; k < ids_.size(); ++k) {
    if (is_exact_[k] != 0) {
      out.emplace(ids_[k], overrides_.at(ids_[k]));
    } else {
      out.emplace(ids_[k], numeric::fixed_to_rational(
                               nums_.data() + k * static_cast<std::size_t>(w_), w_,
                               spec_.scale_big));
    }
  }
  return out;
}

std::optional<Rational> FixedVotingEngine::rank_of(Id id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return std::nullopt;
  const auto k = static_cast<std::size_t>(it - ids_.begin());
  if (is_exact_[k] != 0) return overrides_.at(id);
  return numeric::fixed_to_rational(nums_.data() + k * static_cast<std::size_t>(w_), w_,
                                    spec_.scale_big);
}

}  // namespace byzrename::core
