#ifndef BYZRENAME_CORE_PROBE_H
#define BYZRENAME_CORE_PROBE_H

#include <limits>

#include "numeric/rational.h"
#include "sim/network.h"
#include "sim/types.h"

namespace byzrename::core {

/// Read-only measurements over a live network's correct processes —
/// the quantities the paper's lemmas bound. Used by the convergence
/// benches (F1, T5, A1, E1) and the lemma-level tests; centralizing them
/// keeps every experiment measuring exactly the same thing.

/// Maximum over ids of the spread (max - min) of that id's rank across
/// all correct OpRenaming processes. With @p timely_only, only ids in
/// some correct process's timely set count — the quantity Lemmas IV.7-9
/// track; otherwise all ranked ids count.
[[nodiscard]] numeric::Rational max_rank_spread(const sim::Network& network,
                                                bool timely_only = false);

/// Minimum gap between consecutive timely ids' ranks over all correct
/// OpRenaming processes — Corollary IV.6 lower-bounds this by delta.
[[nodiscard]] numeric::Rational min_adjacent_rank_gap(const sim::Network& network);

/// Alg. 4 measurements after round 2.
struct FastNameStats {
  /// Max over correct ids of (max - min) of that id's estimated name
  /// across correct processes — Lemma VI.1 bounds this by 2t^2.
  sim::Name max_discrepancy = 0;
  /// Min over processes of the gap between consecutive correct ids'
  /// names — Lemma VI.2 lower-bounds this by N-t.
  sim::Name min_gap = std::numeric_limits<sim::Name>::max();
};

[[nodiscard]] FastNameStats fast_name_stats(const sim::Network& network);

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_PROBE_H
