#ifndef BYZRENAME_CORE_FAST_RENAMING_H
#define BYZRENAME_CORE_FAST_RENAMING_H

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/params.h"
#include "sim/process.h"

namespace byzrename::core {

/// Alg. 4: 2-step order-preserving Byzantine renaming for N > 2t^2 + t.
///
/// Step 1: every process announces its id; everything received is
/// `timely` and the arrival link of each announcement is remembered.
/// Step 2: every process echoes its whole timely set in one MultiEcho;
/// echoes are filtered by a validity check (sender announced an id in
/// step 1, carries at most N ids, shares at least N-t ids with the local
/// timely set) and counted per id. The new name is the prefix sum of
/// min(counter[id], N-t) over all accepted ids up to and including one's
/// own — clamping to N-t is what stops Byzantine selective echoing from
/// introducing an error linear in N (Section VI).
///
/// Guarantees (Theorem VI.3): names are unique, order-preserving, and in
/// [1 .. N^2]; discrepancy between any two correct estimates of the same
/// correct id's name is at most 2t^2 (Lemma VI.1) while consecutive
/// correct names differ by at least N-t (Lemma VI.2).
class FastRenamingProcess final : public sim::ProcessBehavior {
 public:
  /// `options` keeps the constructor signature uniform across the
  /// renaming algorithms (harness/spec plumbing); the 2-step algorithm
  /// has no rank arithmetic, so rank_kernel does not affect it.
  FastRenamingProcess(sim::SystemParams params, sim::Id my_id, RenamingOptions options = {});

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return decided_; }
  [[nodiscard]] std::optional<sim::Name> decision() const override { return decision_; }

  // --- Introspection for tests and benches -------------------------------

  [[nodiscard]] const std::set<sim::Id>& timely() const noexcept { return timely_; }
  [[nodiscard]] const std::set<sim::Id>& accepted() const noexcept { return accepted_; }
  /// Locally estimated new names for every accepted id (paper keeps these
  /// "only for clarity of the proofs"; we keep them for the tests that
  /// check Lemmas VI.1 and VI.2 directly).
  [[nodiscard]] const std::map<sim::Id, sim::Name>& newid() const noexcept { return newid_; }
  [[nodiscard]] int rejected_echoes() const noexcept { return rejected_echoes_; }
  [[nodiscard]] sim::Id my_id() const noexcept { return my_id_; }

 private:
  [[nodiscard]] bool is_valid_echo(sim::LinkIndex link, const std::vector<sim::Id>& ids) const;

  sim::SystemParams params_;
  RenamingOptions options_;
  sim::Id my_id_;

  // Paper's linkid array, literally: flat per-link slots (links are
  // dense in [0, N)) instead of the former std::map — no node churn on
  // the hot announcement path.
  std::vector<sim::Id> link_id_;
  std::vector<unsigned char> link_seen_;
  std::vector<unsigned char> echoed_;  ///< one MultiEcho per link (step 2)
  std::vector<sim::Id> echo_ids_;      ///< pooled sort/unique scratch

  std::set<sim::Id> timely_;
  std::set<sim::Id> accepted_;
  std::map<sim::Id, int> counter_;
  std::map<sim::Id, sim::Name> newid_;

  int rejected_echoes_ = 0;
  bool decided_ = false;
  std::optional<sim::Name> decision_;
};

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_FAST_RENAMING_H
