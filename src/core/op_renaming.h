#ifndef BYZRENAME_CORE_OP_RENAMING_H
#define BYZRENAME_CORE_OP_RENAMING_H

#include <optional>
#include <set>
#include <vector>

#include "core/id_selection.h"
#include "core/params.h"
#include "core/rank_approx.h"
#include "sim/process.h"

namespace byzrename::core {

/// Alg. 1: order-preserving Byzantine renaming for N > 3t.
///
/// Steps 1-4 run the id selection phase (IdSelection); steps 5 onwards
/// run the validated approximate-agreement voting phase. After the last
/// voting step the process decides round(ranks[my_id]).
///
/// Guarantees (Theorem IV.10): for N > 3t the decided names of correct
/// processes are unique, order-preserving with respect to original ids,
/// and lie in [1 .. N+t-1]. In the constant-time regime N > t^2 + 2t,
/// running exactly 4 voting iterations (RenamingOptions) yields names in
/// [1 .. N] after 8 total steps (Theorem V.3).
class OpRenamingProcess final : public sim::ProcessBehavior {
 public:
  OpRenamingProcess(sim::SystemParams params, sim::Id my_id, RenamingOptions options = {});

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return decided_; }
  [[nodiscard]] std::optional<sim::Name> decision() const override { return decision_; }

  /// Total synchronous steps this configuration runs (4 + iterations).
  [[nodiscard]] int total_steps() const noexcept { return 4 + iterations_; }

  // --- Introspection for tests and benches -------------------------------

  [[nodiscard]] const std::set<sim::Id>& timely() const noexcept { return selection_.timely(); }
  [[nodiscard]] const std::set<sim::Id>& accepted() const noexcept { return accepted_; }
  /// The accepted set as of the end of step 4, before the voting phase
  /// drops under-voted ids — the set Lemma IV.3 bounds.
  [[nodiscard]] const std::set<sim::Id>& selection_accepted() const noexcept {
    return selection_.accepted();
  }
  [[nodiscard]] const RankMap& ranks() const noexcept { return ranks_; }
  [[nodiscard]] sim::Id my_id() const noexcept { return selection_.my_id(); }
  /// Votes rejected by decode/isValid across the whole run.
  [[nodiscard]] int rejected_votes() const noexcept { return rejected_votes_; }

 private:
  void assign_initial_ranks();
  void decide();

  sim::SystemParams params_;
  RenamingOptions options_;
  int iterations_;
  numeric::Rational delta_;

  IdSelection selection_;
  std::set<sim::Id> accepted_;  ///< working copy, shrinks as ids are dropped
  RankMap ranks_;

  int rejected_votes_ = 0;
  bool decided_ = false;
  std::optional<sim::Name> decision_;
};

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_OP_RENAMING_H
