#ifndef BYZRENAME_CORE_OP_RENAMING_H
#define BYZRENAME_CORE_OP_RENAMING_H

#include <optional>
#include <set>
#include <vector>

#include "core/id_selection.h"
#include "core/params.h"
#include "core/rank_approx.h"
#include "core/voting_kernel.h"
#include "sim/process.h"

namespace byzrename::core {

/// Alg. 1: order-preserving Byzantine renaming for N > 3t.
///
/// Steps 1-4 run the id selection phase (IdSelection); steps 5 onwards
/// run the validated approximate-agreement voting phase. After the last
/// voting step the process decides round(ranks[my_id]).
///
/// The voting phase runs on one of two arithmetic kernels
/// (RenamingOptions::rank_kernel): the fixed-width SoA engine
/// (FixedVotingEngine, the default — zero heap allocations per voting
/// round) or the exact-Rational oracle it is bit-identical to. kCheck
/// runs both and throws on any divergence.
///
/// Guarantees (Theorem IV.10): for N > 3t the decided names of correct
/// processes are unique, order-preserving with respect to original ids,
/// and lie in [1 .. N+t-1]. In the constant-time regime N > t^2 + 2t,
/// running exactly 4 voting iterations (RenamingOptions) yields names in
/// [1 .. N] after 8 total steps (Theorem V.3).
class OpRenamingProcess final : public sim::ProcessBehavior {
 public:
  OpRenamingProcess(sim::SystemParams params, sim::Id my_id, RenamingOptions options = {});

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return decided_; }
  [[nodiscard]] std::optional<sim::Name> decision() const override { return decision_; }

  /// Total synchronous steps this configuration runs (4 + iterations).
  [[nodiscard]] int total_steps() const noexcept { return 4 + iterations_; }

  // --- Introspection for tests and benches -------------------------------

  [[nodiscard]] const std::set<sim::Id>& timely() const noexcept { return selection_.timely(); }
  [[nodiscard]] const std::set<sim::Id>& accepted() const noexcept { return accepted_; }
  /// The accepted set as of the end of step 4, before the voting phase
  /// drops under-voted ids — the set Lemma IV.3 bounds.
  [[nodiscard]] const std::set<sim::Id>& selection_accepted() const noexcept {
    return selection_.accepted();
  }
  /// Current rank estimates as canonical Rationals. On the fixed kernel
  /// this materializes (and caches) the SoA state, so the reference
  /// stays valid until the next voting step, exactly like before.
  [[nodiscard]] const RankMap& ranks() const;
  [[nodiscard]] sim::Id my_id() const noexcept { return selection_.my_id(); }
  /// Votes rejected by decode/isValid across the whole run.
  [[nodiscard]] int rejected_votes() const noexcept { return rejected_votes_; }
  /// The kernel actually running (an over-budget instance downgrades
  /// kFixed/kCheck to kExact).
  [[nodiscard]] RankKernel rank_kernel() const noexcept { return kernel_; }

 private:
  void assign_initial_ranks();
  void decide();
  /// One exact-oracle voting step over `inbox` (the pre-fixed-point
  /// pipeline, verbatim): used by the kExact kernel and as the kCheck
  /// shadow. Fixed-point votes are consumed via their exact equivalent.
  void exact_step(const sim::Inbox& inbox, RankMap& ranks, std::set<sim::Id>& accepted,
                  int& rejected);

  sim::SystemParams params_;
  RenamingOptions options_;
  int iterations_;
  numeric::Rational delta_;

  IdSelection selection_;
  std::set<sim::Id> accepted_;  ///< working copy, shrinks as ids are dropped
  RankMap ranks_;               ///< exact-kernel state (empty on kFixed/kCheck)

  RankKernel kernel_ = RankKernel::kExact;
  std::optional<FixedVotingEngine> engine_;
  mutable RankMap ranks_cache_;  ///< materialized engine state for ranks()
  mutable bool ranks_cache_valid_ = false;

  // kCheck: exact shadow of the fixed engine, compared after each step.
  RankMap shadow_ranks_;
  std::set<sim::Id> shadow_accepted_;
  int shadow_rejected_ = 0;

  int rejected_votes_ = 0;
  bool decided_ = false;
  std::optional<sim::Name> decision_;
};

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_OP_RENAMING_H
