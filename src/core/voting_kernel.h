#ifndef BYZRENAME_CORE_VOTING_KERNEL_H
#define BYZRENAME_CORE_VOTING_KERNEL_H

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/params.h"
#include "core/rank_approx.h"
#include "numeric/fixed_rank.h"
#include "sim/payload.h"
#include "sim/types.h"

namespace byzrename::core {

/// Trimmed-mean select_t averaging over a padded ballot of fixed-point
/// values — the arithmetic heart of one Alg. 3 voting step, shared by
/// the renaming engine and the AA substrate. Scratch buffers are pooled
/// inside the object, so steady-state calls allocate nothing.
class FixedBallotKernel {
 public:
  enum class Outcome {
    kOk,         ///< average written to out (on-grid)
    kRemainder,  ///< sum not divisible by c: caller must fall back to
                 ///< the exact value sum / (c * S), provided in sum_out
  };

  /// Sorts ballot (n values of spec.width two's-complement limbs,
  /// reordered in place), discards the t lowest/highest, sums the
  /// select_t positions and divides by spec.select_count. Equal by
  /// construction to rank_approx's exact pipeline on the same multiset.
  Outcome average(const numeric::FixedSpec& spec, numeric::limb_t* ballot, int n,
                  numeric::limb_t* out, numeric::BigInt& sum_out);

  /// width == 2 fast form: the ballot arrives as offset-binary u128
  /// keys (top limb sign-bit flipped), the representation `average`
  /// would build internally anyway — callers that gather straight into
  /// key form skip one full pass over the ballot. Keys are reordered.
  Outcome average_keys(const numeric::FixedSpec& spec, numeric::uwide_t* keys, int n,
                       numeric::limb_t* out, numeric::BigInt& sum_out);

 private:
  std::vector<numeric::uwide_t> keys_;  ///< width == 2: offset-binary u128 sort keys
  std::vector<std::array<numeric::limb_t, numeric::kFixedRankLimbs>>
      wide_keys_;  ///< width > 2: big-endian biased limbs, lexicographic order
};

/// Fixed-point voting engine: the SoA rank state of one renaming
/// process plus one Alg. 3 step over an inbox. Ranks live as `width`
/// two's-complement limbs over the instance scale S; the rare values
/// Byzantine senders push off the 1/S grid are carried as exact
/// Rational overrides, and any ballot touching one is averaged by the
/// exact oracle — which makes every observable output (decisions,
/// accepted sets, rejected counts, wire bytes) bit-identical to the
/// pure exact-Rational path while the honest fast path runs heap-free.
class FixedVotingEngine {
 public:
  FixedVotingEngine(sim::SystemParams params, RenamingOptions options, int iterations);

  /// False when the derived spec does not fit the supported width; the
  /// caller must run the exact kernel for the whole instance.
  [[nodiscard]] bool enabled() const noexcept { return spec_.ok; }

  [[nodiscard]] const numeric::FixedSpec& spec() const noexcept { return spec_; }

  /// ranks[id] := position * delta over the sorted accepted set.
  void assign_initial_ranks(const std::set<sim::Id>& accepted);

  /// This round's broadcast: a FixedRanksMsg while every rank is
  /// on-grid (the steady state), else the classic RanksMsg equivalent.
  /// Both encode to identical wire bytes.
  [[nodiscard]] sim::PayloadRef encode_ranks() const;

  /// One voting step: admits at most one structurally valid vote per
  /// link (mirroring decode_vote + is_valid_ranks), gathers per-id
  /// ballots by merge over the sorted votes, drops ids under n-t
  /// ballots from `accepted`, pads to n with the local rank, and
  /// averages. Steady-state heap allocations: zero.
  void step(const sim::Inbox& inbox, const std::set<sim::Id>& timely,
            std::set<sim::Id>& accepted, int& rejected_votes);

  /// Current ranks in the oracle representation (canonical Rationals).
  [[nodiscard]] RankMap materialize() const;

  /// Rank of one id, if still held.
  [[nodiscard]] std::optional<numeric::Rational> rank_of(sim::Id id) const;

  /// Number of ranks currently carried as exact overrides (diagnostics).
  [[nodiscard]] int override_count() const noexcept { return static_cast<int>(overrides_.size()); }

 private:
  struct Vote {
    const sim::Id* ids = nullptr;
    const numeric::limb_t* nums = nullptr;
    std::uint32_t count = 0;
    std::int32_t exacts = -1;  ///< index into vote_exacts_, -1 if none
    std::uint32_t cursor = 0;
    std::uint32_t exact_cursor = 0;
  };
  using ExactEntries = std::vector<std::pair<std::uint32_t, numeric::Rational>>;

  [[nodiscard]] bool matches_spec(const sim::FixedRanksMsg& msg) const noexcept;
  [[nodiscard]] bool admit_fixed(const sim::FixedRanksMsg& msg);
  [[nodiscard]] bool admit_classic(const sim::RanksMsg& msg);
  [[nodiscard]] bool rank_bits_ok(const numeric::limb_t* num) const;
  [[nodiscard]] numeric::Rational value_at(const Vote& vote, std::uint32_t index) const;
  void push_result(sim::Id id, const numeric::limb_t* num);
  void push_override(sim::Id id, numeric::Rational value);
  void shrink_scratch();

  sim::SystemParams params_;
  RenamingOptions options_;
  numeric::FixedSpec spec_;
  numeric::Rational delta_;
  int w_ = 0;
  /// True when every representable fixed value trivially satisfies
  /// max_rank_bits (the default budget): the per-entry bits check in
  /// admit_fixed then short-circuits entirely.
  bool bits_always_ok_ = false;

  // --- state: parallel arrays sorted by id, overrides on the side ----
  std::vector<sim::Id> ids_;
  std::vector<numeric::limb_t> nums_;
  std::vector<unsigned char> is_exact_;
  std::map<sim::Id, numeric::Rational> overrides_;

  std::vector<sim::Id> next_ids_;
  std::vector<numeric::limb_t> next_nums_;
  std::vector<unsigned char> next_is_exact_;
  std::map<sim::Id, numeric::Rational> next_overrides_;

  // --- pooled per-step scratch (reused round over round) -------------
  std::vector<Vote> votes_;
  std::vector<sim::Id> arena_ids_;         ///< converted classic-vote ids
  std::vector<numeric::limb_t> arena_nums_;
  std::vector<ExactEntries> vote_exacts_;
  std::size_t vote_exacts_used_ = 0;
  std::vector<int> link_seen_;  ///< stamped with step_serial_, never cleared
  int step_serial_ = 0;
  std::vector<sim::Id> timely_flat_;  ///< pooled copy of the timely set
  std::vector<numeric::limb_t> ballot_;
  std::vector<numeric::uwide_t> key_ballot_;  ///< width == 2 fused-gather lane
  std::vector<std::pair<std::uint32_t, const numeric::Rational*>> exact_hits_;
  std::vector<numeric::Rational> exact_ballot_;
  FixedBallotKernel kernel_;
};

}  // namespace byzrename::core

#endif  // BYZRENAME_CORE_VOTING_KERNEL_H
