#include "core/harness.h"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "adversary/adversary.h"
#include "adversary/strategies/forgery.h"
#include "aa/byzantine_aa.h"
#include "baselines/bit_renaming.h"
#include "baselines/consensus_renaming.h"
#include "baselines/crash_renaming.h"
#include "core/fast_renaming.h"
#include "core/op_renaming.h"
#include "obs/prof/phase_profile.h"
#include "obs/prof/profiler.h"
#include "obs/telemetry.h"
#include "sim/rng.h"
#include "translate/crash_to_byzantine.h"

namespace byzrename::core {

namespace {

/// Correct behaviors sometimes need the process's physical index (the
/// consensus baseline runs in the sender-authenticated model). This
/// overload is internal; the public make_correct_behavior forwards -1.
std::unique_ptr<sim::ProcessBehavior> make_behavior(Algorithm algorithm,
                                                    const sim::SystemParams& params, sim::Id id,
                                                    const RenamingOptions& options,
                                                    sim::ProcessIndex index) {
  switch (algorithm) {
    case Algorithm::kOpRenaming:
      return std::make_unique<OpRenamingProcess>(params, id, options);
    case Algorithm::kOpRenamingConstantTime: {
      // Fail fast outside Section V's regime: at N == t^2+2t exactly, the
      // flood adversary provably produces N+1 names (the bound is tight),
      // so running there would silently break Lemma V.1's promise.
      if (!valid_for_constant_time(params)) {
        throw std::invalid_argument("constant-time renaming requires N > t^2 + 2t");
      }
      RenamingOptions adjusted = options;
      adjusted.approximation_iterations = kConstantTimeIterations;
      return std::make_unique<OpRenamingProcess>(params, id, adjusted);
    }
    case Algorithm::kFastRenaming:
      return std::make_unique<FastRenamingProcess>(params, id, options);
    case Algorithm::kCrashRenaming:
      return std::make_unique<baselines::CrashRenamingProcess>(params, id, options);
    case Algorithm::kConsensusRenaming:
      if (index < 0) {
        throw std::invalid_argument("consensus renaming needs the process index");
      }
      return std::make_unique<baselines::ConsensusRenamingProcess>(params, index, id);
    case Algorithm::kBitRenaming:
      return std::make_unique<baselines::BitRenamingProcess>(params, id);
    case Algorithm::kTranslatedRenaming: {
      auto inner = std::make_unique<baselines::CrashRenamingProcess>(params, id, options);
      const int inner_steps = inner->total_steps();
      return std::make_unique<translate::TranslatedProcess>(params, std::move(inner),
                                                            inner_steps);
    }
    case Algorithm::kScalarAA: {
      const int rounds =
          options.approximation_iterations >= 0 ? options.approximation_iterations : 10;
      return std::make_unique<aa::ByzantineAAProcess>(params, numeric::Rational(id), rounds,
                                                      std::size_t{1} << 16, options.rank_kernel);
    }
  }
  throw std::invalid_argument("make_correct_behavior: unknown algorithm");
}

}  // namespace

std::unique_ptr<sim::ProcessBehavior> make_correct_behavior(Algorithm algorithm,
                                                            const sim::SystemParams& params,
                                                            sim::Id id,
                                                            const RenamingOptions& options,
                                                            sim::ProcessIndex index) {
  return make_behavior(algorithm, params, id, options, index);
}

sim::Name namespace_size(Algorithm algorithm, const sim::SystemParams& params) {
  const auto n = static_cast<sim::Name>(params.n);
  const auto t = static_cast<sim::Name>(params.t);
  switch (algorithm) {
    case Algorithm::kOpRenaming:
      return params.t > 0 ? n + t - 1 : n;
    case Algorithm::kOpRenamingConstantTime:
      return n;  // Lemma V.1: strong renaming in this regime
    case Algorithm::kFastRenaming:
      return n * n;
    case Algorithm::kCrashRenaming:
      return n;
    case Algorithm::kConsensusRenaming:
      return n;
    case Algorithm::kBitRenaming:
      return baselines::BitRenamingProcess::target_namespace(params);
    case Algorithm::kTranslatedRenaming:
      return n;  // the wrapped [14]-style protocol is strong
    case Algorithm::kScalarAA:
      break;
  }
  throw std::invalid_argument("namespace_size: not a renaming algorithm");
}

int expected_steps(Algorithm algorithm, const sim::SystemParams& params,
                   const RenamingOptions& options) {
  const int iterations = options.approximation_iterations >= 0
                             ? options.approximation_iterations
                             : default_approximation_iterations(params.t);
  switch (algorithm) {
    case Algorithm::kOpRenaming:
      return 4 + iterations;
    case Algorithm::kOpRenamingConstantTime:
      return 4 + kConstantTimeIterations;
    case Algorithm::kFastRenaming:
      return 2;
    case Algorithm::kCrashRenaming:
      return 1 + iterations;
    case Algorithm::kConsensusRenaming:
      return 1 + 2 * (params.t + 1);
    case Algorithm::kBitRenaming:
      return 4 + 2 * ceil_log2(2 * params.n);
    case Algorithm::kTranslatedRenaming:
      return translate::TranslatedProcess::real_steps(1 + iterations);
    case Algorithm::kScalarAA:
      return options.approximation_iterations >= 0 ? options.approximation_iterations : 10;
  }
  throw std::invalid_argument("expected_steps: unknown algorithm");
}

std::vector<sim::Id> generate_ids(int count, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::set<sim::Id> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    chosen.insert(rng.uniform(1, 1'000'000'000'000));
  }
  std::vector<sim::Id> ids(chosen.begin(), chosen.end());
  std::shuffle(ids.begin(), ids.end(), rng.engine());
  return ids;
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  const sim::SystemParams& params = config.params;
  if (config.algorithm == Algorithm::kScalarAA) {
    throw std::invalid_argument("run_scenario: drive scalar AA directly, not via scenarios");
  }
  // Base faults respect the model (<= t); the fault plan's overshoot is
  // the sanctioned way to exceed t — it is a deliberate model violation,
  // and the checker classifies which guarantee gives way first.
  const int base_faults = config.actual_faults >= 0 ? config.actual_faults : params.t;
  if (base_faults > params.t || base_faults >= params.n) {
    throw std::invalid_argument("run_scenario: invalid fault count");
  }
  if (config.fault_plan.fault_overshoot < 0) {
    throw std::invalid_argument("run_scenario: fault overshoot must be >= 0");
  }
  // Fail fast on a forge rule naming an unregistered strategy — a typo'd
  // sweep spec should error out before burning a campaign, not silently
  // inject nothing.
  for (const sim::ForgeRule& rule : config.fault_plan.forges) {
    if (!adversary::has_forgery_strategy(rule.strategy)) {
      throw std::invalid_argument("run_scenario: unknown forgery strategy: " + rule.strategy);
    }
  }
  const int faults = base_faults + config.fault_plan.fault_overshoot;
  if (faults >= params.n) {
    throw std::invalid_argument(
        "run_scenario: fault overshoot leaves no correct process");
  }
  const int correct_count = params.n - faults;

  // Profiler attachment: ambient for caller-defined scopes under the
  // call tree, plus the harness's own setup/run/check top-level scopes.
  // Everything below is a read-only observation — see ScenarioConfig.
  obs::prof::ThreadProfilerGuard profiler_guard(config.profiler);
  obs::prof::Scope setup_scope(config.profiler, "setup");

  // Ids: correct processes sit at indices 0..correct_count-1 in id order;
  // the faulty tail receives "natural" ids interleaved with them.
  std::vector<sim::Id> correct_ids = config.correct_ids;
  std::vector<sim::Id> byz_ids;
  if (correct_ids.empty()) {
    std::vector<sim::Id> all = generate_ids(params.n, config.seed * 7919 + 17);
    correct_ids.assign(all.begin(), all.begin() + correct_count);
    byz_ids.assign(all.begin() + correct_count, all.end());
  } else {
    if (static_cast<int>(correct_ids.size()) != correct_count) {
      throw std::invalid_argument("run_scenario: correct_ids size mismatch");
    }
    std::vector<sim::Id> extra = generate_ids(params.n, config.seed * 104729 + 29);
    for (const sim::Id id : extra) {
      if (static_cast<int>(byz_ids.size()) == faults) break;
      if (std::find(correct_ids.begin(), correct_ids.end(), id) == correct_ids.end()) {
        byz_ids.push_back(id);
      }
    }
  }
  std::sort(correct_ids.begin(), correct_ids.end());

  RenamingOptions options = config.options;
  if (config.algorithm == Algorithm::kOpRenamingConstantTime) {
    options.approximation_iterations = kConstantTimeIterations;
  }

  std::vector<std::unique_ptr<sim::ProcessBehavior>> behaviors;
  behaviors.reserve(static_cast<std::size_t>(params.n));
  for (int i = 0; i < correct_count; ++i) {
    behaviors.push_back(make_behavior(config.algorithm, params, correct_ids[static_cast<std::size_t>(i)],
                                      options, i));
  }

  adversary::AdversaryEnv env;
  env.params = params;
  env.algorithm = config.algorithm;
  env.options = options;
  for (int i = 0; i < correct_count; ++i) {
    env.correct.emplace_back(i, correct_ids[static_cast<std::size_t>(i)]);
  }
  for (int i = correct_count; i < params.n; ++i) env.byz_indices.push_back(i);
  env.byz_ids = byz_ids;
  env.seed = config.seed;

  std::vector<std::unique_ptr<sim::ProcessBehavior>> faulty =
      adversary::find_adversary(config.adversary)(env);
  if (static_cast<int>(faulty.size()) != faults) {
    throw std::logic_error("run_scenario: adversary produced wrong behavior count");
  }
  for (auto& behavior : faulty) behaviors.push_back(std::move(behavior));

  std::vector<bool> byzantine(static_cast<std::size_t>(params.n), false);
  for (int i = correct_count; i < params.n; ++i) byzantine[static_cast<std::size_t>(i)] = true;

  // Consensus and the crash-to-Byzantine translation presuppose
  // sender-authenticated links (see DESIGN.md).
  const bool scramble = config.algorithm != Algorithm::kConsensusRenaming &&
                        config.algorithm != Algorithm::kTranslatedRenaming;

  sim::Network network(std::move(behaviors), std::move(byzantine),
                       sim::Rng(config.seed ^ 0x9e3779b97f4a7c15ull), scramble);
  if (config.event_log != nullptr) network.attach_event_log(config.event_log);

  // The injector's stream is split off the run seed, so the same seed
  // with and without a plan shares all protocol randomness, and a faulted
  // run replays bit-for-bit from (seed, plan) alone.
  std::optional<sim::FaultInjector> injector;
  std::optional<adversary::RegistryForgerySource> forgery;
  if (!config.fault_plan.empty()) {
    injector.emplace(config.fault_plan,
                     sim::Rng::derive_stream(config.seed, 0xFA017ull));
    network.attach_fault_injector(&*injector);
    if (!config.fault_plan.forges.empty()) {
      // The registry source captures the env at construction; forge() is
      // then a pure function, keeping faulted runs order-independent.
      forgery.emplace(env);
      network.attach_forgery_source(&*forgery);
    }
    if (!config.fault_plan.restarts.empty()) {
      // Restart events rebuild the process exactly as it was first built:
      // same algorithm, id, options, and physical index — only its state
      // (and possibly its round counter) is lost.
      network.attach_behavior_factory(
          [algorithm = config.algorithm, params, options, correct_ids,
           correct_count](sim::ProcessIndex i) -> std::unique_ptr<sim::ProcessBehavior> {
            if (i < 0 || i >= correct_count) {
              throw std::logic_error("restart factory: index out of correct range");
            }
            return make_behavior(algorithm, params, correct_ids[static_cast<std::size_t>(i)],
                                 options, i);
          });
    }
  }

  ScenarioResult result;
  result.target_namespace = namespace_size(config.algorithm, params);
  const int budget = expected_steps(config.algorithm, params, options) + config.extra_rounds;
  const bool uses_iterations = config.algorithm == Algorithm::kOpRenaming ||
                               config.algorithm == Algorithm::kOpRenamingConstantTime ||
                               config.algorithm == Algorithm::kCrashRenaming ||
                               config.algorithm == Algorithm::kTranslatedRenaming;
  const int resolved_iterations = !uses_iterations ? -1
                                  : options.approximation_iterations >= 0
                                      ? options.approximation_iterations
                                      : default_approximation_iterations(params.t);

  // Fan the runner's single observer slot out to the caller's probe and
  // the telemetry sampler; with neither attached the run pays nothing.
  obs::ObserverHub hub;
  hub.add(config.observer);
  obs::Telemetry* telemetry =
      config.telemetry != nullptr && config.telemetry->active() ? config.telemetry : nullptr;
  if (telemetry != nullptr) {
    obs::RunInfo info;
    info.algorithm = std::string(to_string(config.algorithm));
    info.n = params.n;
    info.t = params.t;
    info.faults = faults;
    info.adversary = config.adversary;
    info.seed = config.seed;
    info.iterations = resolved_iterations;
    info.validate_votes = options.validate_votes;
    info.target_namespace = result.target_namespace;
    info.round_budget = budget;
    info.label = config.telemetry_label;
    if (!config.fault_plan.empty()) info.fault_plan = sim::to_spec(config.fault_plan);
    telemetry->begin_run(std::move(info));
    hub.add(telemetry->round_observer());
  }
  setup_scope.close();
  {
    // Per-round phase bracketing under a "run" scope: the hook fires
    // inside run_round only, so observer/telemetry cost stays out of
    // the phase nodes (it lands in "run" self time instead).
    obs::prof::Scope run_scope(config.profiler, "run");
    std::optional<obs::prof::PhaseRoundProfiler> phase_hook;
    if (config.profiler != nullptr) {
      phase_hook.emplace(*config.profiler, config.algorithm, resolved_iterations);
    }
    result.run = sim::run_to_completion(network, budget, hub.as_observer(),
                                        phase_hook ? &*phase_hook : nullptr);
  }
  obs::prof::Scope check_scope(config.profiler, "check");

  for (int i = 0; i < correct_count; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    result.named.push_back({correct_ids[slot], result.run.decisions[slot],
                            static_cast<sim::ProcessIndex>(i), result.run.decide_rounds[slot],
                            network.was_restarted(i)});
  }
  result.report = check_renaming(result.named, result.target_namespace);

  result.min_accepted = static_cast<std::size_t>(-1);
  for (int i = 0; i < correct_count; ++i) {
    const sim::ProcessBehavior& behavior = network.behavior(i);
    if (const auto* op = dynamic_cast<const OpRenamingProcess*>(&behavior)) {
      result.max_accepted = std::max(result.max_accepted, op->selection_accepted().size());
      result.min_accepted = std::min(result.min_accepted, op->selection_accepted().size());
      result.total_rejected += op->rejected_votes();
    } else if (const auto* fast = dynamic_cast<const FastRenamingProcess*>(&behavior)) {
      result.max_accepted = std::max(result.max_accepted, fast->accepted().size());
      result.min_accepted = std::min(result.min_accepted, fast->accepted().size());
      result.total_rejected += fast->rejected_echoes();
    }
  }
  if (result.min_accepted == static_cast<std::size_t>(-1)) result.min_accepted = 0;
  check_scope.close();
  if (telemetry != nullptr) telemetry->end_run(result);
  return result;
}

}  // namespace byzrename::core
