#include "exp/progress.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <ostream>

#include "obs/json.h"
#include "obs/schema.h"

namespace byzrename::exp {

namespace {

/// EWMA time constant: completions older than a few tau contribute
/// almost nothing, so the rate tracks the current regime of a sweep
/// whose cells have very different per-run costs.
constexpr double kEwmaTauSeconds = 5.0;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void ProgressTracker::begin(std::string campaign, const std::vector<CampaignCell>& cells,
                            std::size_t repetitions, int workers) {
  campaign_ = std::move(campaign);
  cell_count_ = cells.size();
  cells_ = std::make_unique<CellCounters[]>(cell_count_);
  for (std::size_t slot = 0; slot < cell_count_; ++slot) {
    cells_[slot].key = cell_key(cells[slot]);
    cells_[slot].total = repetitions;
  }
  total_runs_ = cell_count_ * repetitions;
  workers_ = workers;
  done_.store(false, std::memory_order_relaxed);
  interrupted_.store(false, std::memory_order_relaxed);
  end_ns_.store(0, std::memory_order_relaxed);
  start_ns_.store(now_ns(), std::memory_order_relaxed);
  // Release-publish the table: a scrape that observes started_ == true
  // also observes the initialized cells.
  started_.store(true, std::memory_order_release);
}

void ProgressTracker::task_started() noexcept {
  busy_workers_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressTracker::task_finished(std::size_t cell_slot, bool ok,
                                    bool quarantined) noexcept {
  busy_workers_.fetch_sub(1, std::memory_order_relaxed);
  if (cell_slot < cell_count_) {
    CellCounters& cell = cells_[cell_slot];
    cell.completed.fetch_add(1, std::memory_order_relaxed);
    if (quarantined) {
      cell.quarantined.fetch_add(1, std::memory_order_relaxed);
    } else if (ok) {
      cell.ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      cell.violations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (quarantined) {
    quarantined_.fetch_add(1, std::memory_order_relaxed);
  } else if (ok) {
    ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    violations_.fetch_add(1, std::memory_order_relaxed);
  }

  // Throughput EWMA over completion inter-arrival times, measured
  // across ALL workers (the aggregate campaign rate, not a per-worker
  // one). exchange + CAS keeps the update lock-free; a lost race
  // between two simultaneous completions only blurs one sample.
  const std::int64_t now = now_ns();
  const std::int64_t previous = last_finish_ns_.exchange(now, std::memory_order_relaxed);
  if (previous != 0 && now > previous) {
    const double dt = static_cast<double>(now - previous) * 1e-9;
    const double instantaneous = 1.0 / dt;
    const double alpha = -std::expm1(-dt / kEwmaTauSeconds);  // 1 - e^(-dt/tau)
    std::uint64_t expected = ewma_rate_bits_.load(std::memory_order_relaxed);
    for (;;) {
      const double current = std::bit_cast<double>(expected);
      const double next =
          current <= 0.0 ? instantaneous : current + alpha * (instantaneous - current);
      if (ewma_rate_bits_.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(next),
                                                std::memory_order_relaxed)) {
        break;
      }
    }
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressTracker::finish(bool interrupted) noexcept {
  end_ns_.store(now_ns(), std::memory_order_relaxed);
  interrupted_.store(interrupted, std::memory_order_relaxed);
  done_.store(true, std::memory_order_release);
}

double ProgressTracker::elapsed_seconds_now() const noexcept {
  const std::int64_t start = start_ns_.load(std::memory_order_relaxed);
  if (start == 0) return 0.0;
  const std::int64_t end = end_ns_.load(std::memory_order_relaxed);
  const std::int64_t reference = end != 0 ? end : now_ns();
  return static_cast<double>(reference - start) * 1e-9;
}

ProgressTracker::Snapshot ProgressTracker::snapshot() const {
  Snapshot snap;
  snap.started = started_.load(std::memory_order_acquire);
  if (!snap.started) return snap;
  snap.campaign = campaign_;
  snap.done = done_.load(std::memory_order_acquire);
  snap.interrupted = interrupted_.load(std::memory_order_relaxed);
  snap.total_runs = total_runs_;
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.ok = ok_.load(std::memory_order_relaxed);
  snap.violations = violations_.load(std::memory_order_relaxed);
  snap.quarantined = quarantined_.load(std::memory_order_relaxed);
  snap.workers = workers_;
  snap.workers_busy = busy_workers_.load(std::memory_order_relaxed);
  snap.elapsed_seconds = elapsed_seconds_now();
  snap.runs_per_second =
      std::bit_cast<double>(ewma_rate_bits_.load(std::memory_order_relaxed));
  snap.runs_per_second_mean = snap.elapsed_seconds > 0.0
                                  ? static_cast<double>(snap.completed) / snap.elapsed_seconds
                                  : 0.0;
  const std::size_t remaining =
      snap.total_runs > snap.completed ? snap.total_runs - snap.completed : 0;
  if (snap.done || remaining == 0) {
    snap.eta_seconds = 0.0;
    snap.rate_source = snap.runs_per_second > 0.0 ? "ewma"
                       : snap.runs_per_second_mean > 0.0 ? "mean"
                                                         : "none";
  } else {
    // Prefer the EWMA (tracks the current cell mix); until it has a
    // sample, the campaign mean is the only estimate available. The
    // snapshot says which one fed the ETA so consumers don't have to
    // guess why the estimate jumped when the EWMA warmed up.
    if (snap.runs_per_second > 0.0) {
      snap.rate_source = "ewma";
      snap.eta_seconds = static_cast<double>(remaining) / snap.runs_per_second;
    } else if (snap.runs_per_second_mean > 0.0) {
      snap.rate_source = "mean";
      snap.eta_seconds = static_cast<double>(remaining) / snap.runs_per_second_mean;
    } else {
      snap.rate_source = "none";
      snap.eta_seconds = -1.0;
    }
  }
  snap.cells.reserve(cell_count_);
  for (std::size_t slot = 0; slot < cell_count_; ++slot) {
    const CellCounters& cell = cells_[slot];
    CellSnapshot cell_snap;
    cell_snap.key = cell.key;
    cell_snap.total = cell.total;
    cell_snap.completed = cell.completed.load(std::memory_order_relaxed);
    cell_snap.ok = cell.ok.load(std::memory_order_relaxed);
    cell_snap.violations = cell.violations.load(std::memory_order_relaxed);
    cell_snap.quarantined = cell.quarantined.load(std::memory_order_relaxed);
    snap.cells.push_back(std::move(cell_snap));
  }
  return snap;
}

void ProgressTracker::write_progress_json(std::ostream& os) const {
  const Snapshot snap = snapshot();
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema", obs::kProgressSchema);
  json.field("campaign", snap.campaign);
  json.field("state", !snap.started      ? "idle"
                      : snap.interrupted ? "interrupted"
                      : snap.done        ? "done"
                                         : "running");
  json.field("total_runs", snap.total_runs)
      .field("completed", snap.completed)
      .field("ok", snap.ok)
      .field("violations", snap.violations)
      .field("quarantined", snap.quarantined)
      .field("elapsed_seconds", snap.elapsed_seconds)
      .field("runs_per_second", snap.runs_per_second)
      .field("runs_per_second_mean", snap.runs_per_second_mean)
      .field("eta_seconds", snap.eta_seconds)
      .field("rate_source", snap.rate_source);
  json.key("workers").begin_object();
  json.field("total", snap.workers).field("busy", snap.workers_busy);
  json.end_object();
  json.key("cells").begin_array();
  for (const CellSnapshot& cell : snap.cells) {
    json.begin_object();
    json.field("cell", cell.key)
        .field("total", cell.total)
        .field("completed", cell.completed)
        .field("ok", cell.ok)
        .field("violations", cell.violations)
        .field("quarantined", cell.quarantined);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

void ProgressTracker::write_prometheus(std::ostream& os) const {
  const Snapshot snap = snapshot();
  if (!snap.started) return;
  const auto counter = [&os](const char* name, const char* help, auto value) {
    os << "# HELP " << name << ' ' << help << '\n'
       << "# TYPE " << name << " counter\n"
       << name << ' ' << value << '\n';
  };
  const auto gauge = [&os](const char* name, const char* help, auto value) {
    os << "# HELP " << name << ' ' << help << '\n'
       << "# TYPE " << name << " gauge\n"
       << name << ' ' << value << '\n';
  };
  gauge("byzrename_campaign_runs", "Total runs this campaign will execute.", snap.total_runs);
  counter("byzrename_campaign_runs_completed_total", "Runs finished (any verdict).",
          snap.completed);
  counter("byzrename_campaign_runs_ok_total", "Runs with every renaming property held.",
          snap.ok);
  counter("byzrename_campaign_runs_violations_total", "Runs with a checker violation.",
          snap.violations);
  counter("byzrename_campaign_runs_quarantined_total",
          "Runs excluded after exhausting retries.", snap.quarantined);
  gauge("byzrename_campaign_runs_pending",
        "Runs not yet finished (executor queue depth plus in-flight).",
        snap.total_runs > snap.completed ? snap.total_runs - snap.completed : 0);
  gauge("byzrename_campaign_workers", "Executor worker threads.", snap.workers);
  gauge("byzrename_campaign_workers_busy", "Workers currently inside a run.",
        snap.workers_busy);
  gauge("byzrename_campaign_runs_per_second", "EWMA completion throughput.",
        snap.runs_per_second);
  gauge("byzrename_campaign_eta_seconds",
        "Estimated seconds to completion (negative: not yet estimable).",
        snap.eta_seconds);
  gauge("byzrename_campaign_elapsed_seconds", "Campaign wall clock so far.",
        snap.elapsed_seconds);
}

}  // namespace byzrename::exp
