#include "exp/campaign_io.h"

#include <ostream>
#include <string>

#include "obs/json.h"
#include "obs/schema.h"
#include "trace/table.h"

namespace byzrename::exp {

namespace {

void write_stat(obs::JsonWriter& json, std::string_view name, const StreamingStats& stats) {
  json.key(name).begin_object();
  json.field("count", stats.count())
      .field("min", static_cast<long long>(stats.min()))
      .field("max", static_cast<long long>(stats.max()))
      .field("sum", static_cast<long long>(stats.sum()))
      .field("mean", stats.mean())
      .field("p50", static_cast<long long>(stats.quantile(0.50)))
      .field("p95", static_cast<long long>(stats.quantile(0.95)))
      .field("p99", static_cast<long long>(stats.quantile(0.99)));
  json.end_object();
}

}  // namespace

void write_campaign_cells(std::ostream& os, const CampaignSpec& spec,
                          const CampaignResult& result) {
  for (std::size_t slot = 0; slot < result.cells.size(); ++slot) {
    const CampaignCell& cell = result.cells[slot];
    const CellAggregate& aggregate = result.aggregates[slot];
    obs::JsonWriter json(os);
    json.begin_object();
    json.field("schema", obs::kCampaignSchema)
        .field("campaign", spec.name)
        .field("cell", cell_key(cell))
        .field("cell_index", aggregate.cell)
        .field("algorithm", core::to_string(cell.algorithm))
        .field("n", cell.params.n)
        .field("t", cell.params.t)
        .field("adversary", cell.adversary)
        .field("reps", spec.repetitions)
        .field("master_seed", static_cast<unsigned long long>(spec.master_seed))
        .field("executed", aggregate.executed)
        .field("ok", aggregate.ok)
        .field("terminated", aggregate.terminated)
        .field("quarantined", aggregate.quarantined)
        .field("max_message_bits", aggregate.max_message_bits);
    if (!spec.fault_plan.empty()) json.field("fault_plan", sim::to_spec(spec.fault_plan));
    json.key("degradation").begin_object();
    json.field("termination", aggregate.degraded_termination)
        .field("range", aggregate.degraded_range)
        .field("uniqueness", aggregate.degraded_uniqueness)
        .field("order", aggregate.degraded_order);
    json.end_object();
    json.key("stats").begin_object();
    write_stat(json, "rounds", aggregate.rounds);
    write_stat(json, "messages", aggregate.messages);
    write_stat(json, "correct_messages", aggregate.correct_messages);
    write_stat(json, "bits", aggregate.bits);
    write_stat(json, "max_name", aggregate.max_name);
    write_stat(json, "rejected_votes", aggregate.rejected_votes);
    json.end_object();
    if (aggregate.first_violation_rep >= 0) {
      json.key("first_violation").begin_object();
      json.field("rep", aggregate.first_violation_rep).field("detail", aggregate.first_violation);
      json.end_object();
    }
    if (!aggregate.per_round.empty()) {
      json.key("per_round").begin_array();
      for (std::size_t i = 0; i < aggregate.per_round.size(); ++i) {
        const CellAggregate::RoundStats& stats = aggregate.per_round[i];
        json.begin_object();
        json.field("round", i + 1);
        write_stat(json, "messages", stats.messages);
        write_stat(json, "bits", stats.bits);
        write_stat(json, "correct_messages", stats.correct_messages);
        write_stat(json, "equivocating_sends", stats.equivocating_sends);
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
    os << '\n';
  }
  os.flush();
}

void write_campaign_summary(std::ostream& os, const CampaignSpec& spec,
                            const CampaignResult& result) {
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema", obs::kCampaignSummarySchema)
      .field("campaign", spec.name)
      .field("cells", result.cells.size())
      .field("runs", result.runs.size())
      .field("executed", result.executed)
      .field("violations", result.violations)
      .field("quarantined", result.quarantined)
      .field("cancelled", result.cancelled)
      .field("interrupted", result.interrupted)
      .field("threads", result.threads)
      .field("steals", result.steals)
      .field("wall_seconds", result.wall_seconds);
  if (result.quarantined > 0) {
    // Enough context per quarantined run to rebuild and replay it by
    // hand (or via a repro bundle): coordinates, exact seed, failure
    // kind, attempts spent, and the final error message.
    json.key("quarantined_runs").begin_array();
    const std::size_t reps =
        result.cells.empty() ? 1 : result.runs.size() / result.cells.size();
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
      const RunRecord& record = result.runs[i];
      if (!record.quarantined) continue;
      json.begin_object();
      json.field("cell", cell_key(result.cells[i / reps]))
          .field("cell_index", record.cell)
          .field("rep", record.rep)
          .field("seed", static_cast<unsigned long long>(record.seed))
          .field("kind", to_string(record.failure))
          .field("attempts", record.attempts)
          .field("detail", record.detail);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  os << '\n';
  os.flush();
}

void print_campaign_table(std::ostream& os, const CampaignResult& result) {
  trace::Table table(
      {"cell", "runs", "ok", "rounds p50", "rounds max", "msgs mean", "max name", "rejected"});
  for (std::size_t slot = 0; slot < result.cells.size(); ++slot) {
    const CellAggregate& aggregate = result.aggregates[slot];
    table.add_row({cell_key(result.cells[slot]), std::to_string(aggregate.executed),
                   std::to_string(aggregate.ok), std::to_string(aggregate.rounds.quantile(0.5)),
                   std::to_string(aggregate.rounds.max()),
                   std::to_string(static_cast<long long>(aggregate.messages.mean())),
                   std::to_string(aggregate.max_name.max()),
                   std::to_string(aggregate.rejected_votes.max())});
  }
  table.print(os);
  os << '\n'
     << (result.interrupted  ? "INTERRUPTED (partial results flushed)"
         : result.cancelled ? "CANCELLED (fail-fast)"
                            : "done")
     << ": " << result.executed << '/'
     << result.runs.size() << " runs, " << result.violations << " violation(s), "
     << result.quarantined << " quarantined, " << result.threads << " thread(s), "
     << result.steals << " steal(s), " << result.wall_seconds << "s\n";
}

void write_campaign_profiles(std::ostream& os, const CampaignSpec& spec,
                             const CampaignResult& result) {
  if (result.profiles.size() != result.cells.size()) return;
  for (std::size_t slot = 0; slot < result.cells.size(); ++slot) {
    obs::prof::write_profile_aggregate_json(os, result.profiles[slot], spec.name,
                                            cell_key(result.cells[slot]),
                                            result.cells[slot].index);
  }
  os.flush();
}

}  // namespace byzrename::exp
