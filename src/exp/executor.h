#ifndef BYZRENAME_EXP_EXECUTOR_H
#define BYZRENAME_EXP_EXECUTOR_H

#include <atomic>
#include <cstddef>
#include <functional>

namespace byzrename::exp {

/// Work-stealing executor for a fixed batch of independent tasks
/// (campaign runs, CLI --repeat repetitions).
///
/// Each worker owns a deque preloaded with a contiguous block of task
/// indices; it pops from the front of its own deque (preserving index
/// order, which keeps caches and the threads=1 case sequential) and,
/// when empty, steals from the BACK of a victim's deque — the classic
/// split that keeps owners and thieves on opposite ends. Deques are
/// mutex-guarded: lockstep simulations run for milliseconds per task, so
/// queue operations are nowhere near the critical path and a lock-free
/// Chase-Lev deque would buy nothing but TSan-audit surface.
///
/// Cancellation is cooperative: cancel() (typically from a task that
/// observed a checker violation under fail-fast) stops workers from
/// STARTING further tasks; in-flight tasks complete. Tasks are executed
/// at most once; after a cancelled run, exactly the tasks that were never
/// started remain unexecuted.
class Executor {
 public:
  struct Stats {
    std::size_t executed = 0;  ///< tasks actually run (== count unless cancelled)
    std::size_t stolen = 0;    ///< tasks a worker took from another's deque
  };

  /// @param threads worker count; values < 1 select the hardware
  ///        concurrency (at least 1).
  explicit Executor(int threads = 0);

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Runs task(0) .. task(count-1), each exactly once, blocking until all
  /// workers drain or cancellation stops the remainder. The task callable
  /// is invoked concurrently from multiple threads and must be safe for
  /// distinct indices. Resets the cancellation flag on entry; callable
  /// again after it returns.
  Stats run(std::size_t count, const std::function<void(std::size_t)>& task);

  /// Requests cooperative cancellation of the current run() batch.
  /// Callable from inside a task.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  int threads_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_EXECUTOR_H
