#include "exp/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace byzrename::exp {

StreamingStats::StreamingStats(std::size_t reservoir_capacity, std::uint64_t salt)
    : capacity_(reservoir_capacity), salt_(salt) {
  if (capacity_ == 0) throw std::invalid_argument("StreamingStats: capacity must be positive");
  reservoir_.reserve(capacity_);
}

void StreamingStats::add(std::uint64_t index, std::int64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  // The priority depends only on (salt, index): re-feeding the same
  // sample set in any order reproduces the same reservoir.
  offer({sim::splitmix64(salt_ ^ sim::splitmix64(index)), value});
}

void StreamingStats::offer(const Sample& sample) {
  const auto heap_cmp = [](const Sample& a, const Sample& b) {
    return a.priority < b.priority || (a.priority == b.priority && a.value < b.value);
  };
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(sample);
    std::push_heap(reservoir_.begin(), reservoir_.end(), heap_cmp);
    return;
  }
  if (heap_cmp(sample, reservoir_.front())) {
    std::pop_heap(reservoir_.begin(), reservoir_.end(), heap_cmp);
    reservoir_.back() = sample;
    std::push_heap(reservoir_.begin(), reservoir_.end(), heap_cmp);
  }
}

void StreamingStats::merge(const StreamingStats& other) {
  if (capacity_ != other.capacity_ || salt_ != other.salt_) {
    throw std::invalid_argument("StreamingStats::merge: incompatible accumulators");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const Sample& sample : other.reservoir_) offer(sample);
}

double StreamingStats::mean() const noexcept {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t StreamingStats::quantile(double q) const {
  if (reservoir_.empty()) return 0;
  std::vector<std::int64_t> values;
  values.reserve(reservoir_.size());
  for (const Sample& sample : reservoir_) values.push_back(sample.value);
  std::sort(values.begin(), values.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the ceil(q * n)-th smallest sample, 1-based.
  std::size_t rank = static_cast<std::size_t>(std::ceil(clamped * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

}  // namespace byzrename::exp
