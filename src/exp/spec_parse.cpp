#include "exp/spec_parse.h"

#include <charconv>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "sim/fault.h"

namespace byzrename::exp {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("campaign spec: " + message);
}

std::vector<std::string_view> split(std::string_view text, char separator) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

template <typename Int>
Int parse_int(std::string_view key, std::string_view token) {
  Int value{};
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    fail(std::string(key) + " expects an integer, got '" + std::string(token) + "'");
  }
  return value;
}

/// One value token of an integer axis: `7`, `4..16`, or `4..64/4`.
void expand_axis_token(std::string_view key, std::string_view token, std::vector<int>& out) {
  if (token.empty()) {
    fail(std::string(key) + ": empty value in list (stray comma?)");
  }
  const std::size_t dots = token.find("..");
  if (dots == std::string_view::npos) {
    out.push_back(parse_int<int>(key, token));
    return;
  }
  const std::string_view from_text = token.substr(0, dots);
  std::string_view to_text = token.substr(dots + 2);
  int step = 1;
  if (const std::size_t slash = to_text.find('/'); slash != std::string_view::npos) {
    step = parse_int<int>(key, to_text.substr(slash + 1));
    to_text = to_text.substr(0, slash);
  }
  const int from = parse_int<int>(key, from_text);
  const int to = parse_int<int>(key, to_text);
  if (step < 1) fail(std::string(key) + ": range step must be >= 1");
  if (to < from) fail(std::string(key) + ": empty range '" + std::string(token) + "'");
  for (int v = from; v <= to; v += step) out.push_back(v);
}

core::Algorithm parse_algorithm(std::string_view name) {
  const std::optional<core::Algorithm> algorithm = core::algorithm_from_token(name);
  if (!algorithm.has_value()) fail("unknown algorithm '" + std::string(name) + "'");
  return *algorithm;
}

}  // namespace

CampaignSpec parse_campaign_spec(std::string_view text) {
  CampaignSpec spec;
  for (std::string_view clause : split(text, ';')) {
    if (clause.empty()) continue;
    const std::size_t equals = clause.find('=');
    const std::string_view key = clause.substr(0, equals);
    const std::string_view value =
        equals == std::string_view::npos ? std::string_view{} : clause.substr(equals + 1);
    if (key != "keep-invalid" && key != "no-validation" && value.empty()) {
      fail("clause '" + std::string(clause) + "' needs a value");
    }

    if (key == "algo" || key == "algorithm") {
      for (const std::string_view token : split(value, ',')) {
        if (token.empty()) fail("algo: empty value in list (stray comma?)");
        spec.algorithms.push_back(parse_algorithm(token));
      }
    } else if (key == "n") {
      for (const std::string_view token : split(value, ',')) {
        expand_axis_token(key, token, spec.n_values);
      }
    } else if (key == "t") {
      for (const std::string_view token : split(value, ',')) {
        expand_axis_token(key, token, spec.t_values);
      }
    } else if (key == "nt") {
      for (const std::string_view token : split(value, ',')) {
        if (token.empty()) fail("nt: empty value in list (stray comma?)");
        const std::size_t colon = token.find(':');
        if (colon == std::string_view::npos) {
          fail("nt expects n:t pairs, got '" + std::string(token) + "'");
        }
        spec.systems.push_back({.n = parse_int<int>(key, token.substr(0, colon)),
                                .t = parse_int<int>(key, token.substr(colon + 1))});
      }
    } else if (key == "adversary") {
      for (const std::string_view token : split(value, ',')) {
        if (token.empty()) fail("adversary: empty name");
        spec.adversaries.emplace_back(token);
      }
    } else if (key == "reps") {
      spec.repetitions = parse_int<int>(key, value);
      if (spec.repetitions < 1) fail("reps must be >= 1");
    } else if (key == "seed") {
      spec.master_seed = parse_int<std::uint64_t>(key, value);
    } else if (key == "faults") {
      spec.actual_faults = parse_int<int>(key, value);
    } else if (key == "iterations") {
      spec.options.approximation_iterations = parse_int<int>(key, value);
    } else if (key == "extra") {
      spec.extra_rounds = parse_int<int>(key, value);
    } else if (key == "fault" || key == "fault-plan") {
      try {
        spec.fault_plan = sim::parse_fault_plan(value);
      } catch (const std::invalid_argument& error) {
        fail(error.what());
      }
    } else if (key == "keep-invalid") {
      spec.skip_invalid = false;
    } else if (key == "kernel") {
      const std::optional<core::RankKernel> kernel = core::rank_kernel_from_token(value);
      if (!kernel.has_value()) {
        fail("kernel expects fixed, exact, or check, got '" + std::string(value) + "'");
      }
      spec.options.rank_kernel = *kernel;
    } else if (key == "no-validation") {
      spec.options.validate_votes = false;  // ABLATION, see RenamingOptions
    } else if (key == "name") {
      spec.name = std::string(value);
    } else {
      fail("unknown key '" + std::string(key) + "'");
    }
  }

  if (spec.algorithms.empty()) spec.algorithms.push_back(core::Algorithm::kOpRenaming);
  if (spec.adversaries.empty()) spec.adversaries.emplace_back("silent");
  if (spec.n_values.empty() != spec.t_values.empty()) {
    fail("n and t must be given together (or use nt=n:t pairs)");
  }
  if (spec.n_values.empty() && spec.systems.empty()) {
    fail("no systems: give n=...;t=... or nt=n:t,...");
  }
  return spec;
}

}  // namespace byzrename::exp
