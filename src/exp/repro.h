#ifndef BYZRENAME_EXP_REPRO_H
#define BYZRENAME_EXP_REPRO_H

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/algorithm.h"
#include "core/harness.h"
#include "sim/fault.h"
#include "sim/runner.h"
#include "sim/types.h"

namespace byzrename::obs {
class JsonWriter;
class JsonValue;
}  // namespace byzrename::obs

namespace byzrename::exp {

/// The portable essence of one scenario: everything run_scenario needs,
/// nothing machine-local. A ReproScenario plus its seed names the exact
/// same execution on every machine — the unit the shrinker minimizes and
/// the repro bundle ships.
struct ReproScenario {
  core::Algorithm algorithm = core::Algorithm::kOpRenaming;
  sim::SystemParams params;
  std::string adversary = "silent";
  /// Actually faulty processes, <= t; -1 means t.
  int actual_faults = -1;
  std::uint64_t seed = 1;
  /// Voting iterations override; -1 selects the algorithm default.
  int iterations = -1;
  bool validate_votes = true;
  int extra_rounds = 0;
  sim::FaultPlan fault_plan;

  [[nodiscard]] core::ScenarioConfig to_config() const;

  friend bool operator==(const ReproScenario&, const ReproScenario&) = default;
};

/// How a run went wrong (or did not).
enum class FailureKind {
  kNone,       ///< all four renaming properties held
  kViolation,  ///< the checker flagged at least one property
  kException,  ///< run_scenario threw
  kTimeout,    ///< the watchdog deadline expired (volatile!)
};

[[nodiscard]] constexpr std::string_view to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kViolation: return "violation";
    case FailureKind::kException: return "exception";
    case FailureKind::kTimeout: return "timeout";
  }
  return "unknown";
}

/// Deterministic digest of one evaluation: the shrinker's comparison
/// object and the bundle's expected outcome. Every field is a pure
/// function of the scenario (kTimeout aside, which is wall-clock
/// dependent by nature and never stored as an expected verdict).
struct ReproVerdict {
  FailureKind kind = FailureKind::kNone;
  /// Canonical comma-joined violated classes (CheckReport::classes());
  /// empty unless kind == kViolation.
  std::string classes;
  /// Checker detail line or exception message.
  std::string detail;
  int rounds = 0;
  bool terminated = false;
  std::int64_t max_name = 0;

  [[nodiscard]] bool failed() const noexcept { return kind != FailureKind::kNone; }

  friend bool operator==(const ReproVerdict&, const ReproVerdict&) = default;
};

/// Thrown by the watchdog observer when a run exceeds its deadline.
class RunTimeoutError : public std::runtime_error {
 public:
  explicit RunTimeoutError(double seconds)
      : std::runtime_error("run exceeded watchdog deadline of " + std::to_string(seconds) +
                           "s") {}
};

/// Wraps @p inner with a cooperative wall-clock watchdog: the returned
/// observer checks a steady-clock deadline after every round and throws
/// RunTimeoutError past it. Cooperative because threads cannot be killed
/// safely; lockstep rounds are the natural check granularity, so a hang
/// *within* one round's process code is interrupted at the next round
/// boundary it never reaches — the campaign layer's retry/quarantine
/// handles that by catching the executor thread's eventual throw or, for
/// a true never-returns hang, by the operator's ctest-level TIMEOUT.
/// The deadline starts when this function is called.
[[nodiscard]] sim::RoundObserver with_deadline(sim::RoundObserver inner,
                                               double timeout_seconds);

/// Runs the scenario and digests the outcome. With @p timeout_seconds > 0
/// a watchdog observer guards the run. Never throws on run failures —
/// exceptions become kException verdicts; only malformed scenarios that
/// cannot even be digested (nothing today) would propagate.
[[nodiscard]] ReproVerdict evaluate_scenario(const ReproScenario& scenario,
                                             double timeout_seconds = 0.0);

/// The shrinker's acceptance predicate: does @p candidate fail the same
/// way as @p reference? Violations match on the CLASS SET (the message
/// text legitimately changes as the scenario shrinks); exceptions match
/// on the message; timeouts match on kind alone.
[[nodiscard]] bool same_failure(const ReproVerdict& reference, const ReproVerdict& candidate);

/// Self-contained failure reproduction: scenario + seed + the verdict the
/// scenario is expected to produce. Schema byzrename.repro/1 (see
/// obs/schema.h and docs/FAULTS.md); replayed by `byzrename --repro`.
struct ReproBundle {
  /// Where the failure was first seen (campaign name / cell key / rep);
  /// informational only, empty for hand-written bundles.
  std::string campaign;
  std::string cell;
  int rep = -1;
  ReproScenario scenario;
  ReproVerdict expected;
};

/// Emits `"scenario": {...}` (key plus object) into an open JSON object.
/// The single serialization of a portable scenario: repro bundles, the
/// service's byzrename.verdict/1 items, and `byzrename --verdict-out`
/// all call this, which is what makes their scenario objects
/// byte-comparable.
void write_repro_scenario(obs::JsonWriter& json, const ReproScenario& scenario);

/// Emits the verdict fields (kind/classes/detail/rounds/terminated/
/// max_name) into an already-open JSON object — the counterpart of
/// write_repro_scenario for the verdict shape shared by repro bundles
/// and the service API.
void write_repro_verdict_body(obs::JsonWriter& json, const ReproVerdict& verdict);

/// Parses the object written by write_repro_scenario; throws
/// std::invalid_argument on missing fields, unknown algorithm tokens,
/// or a malformed fault plan.
[[nodiscard]] ReproScenario parse_repro_scenario(const obs::JsonValue& value);

/// Parses the object written by write_repro_verdict_body.
[[nodiscard]] ReproVerdict parse_repro_verdict(const obs::JsonValue& value);

/// Serializes the bundle as one deterministic JSON document.
void write_repro_bundle(std::ostream& os, const ReproBundle& bundle);

/// Parses a byzrename.repro/1 document; throws std::invalid_argument on
/// malformed input or an unknown schema.
[[nodiscard]] ReproBundle parse_repro_bundle(std::string_view text);

/// Writes the byzrename.repro-verdict/1 replay outcome: deterministic
/// (no wall clock, no thread count), so two replays of one bundle — at
/// any thread counts — must produce byte-identical files.
void write_repro_verdict(std::ostream& os, const ReproBundle& bundle,
                         const ReproVerdict& observed, int replays, bool consistent);

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_REPRO_H
