#ifndef BYZRENAME_EXP_SPEC_PARSE_H
#define BYZRENAME_EXP_SPEC_PARSE_H

#include <string_view>

#include "exp/campaign.h"

namespace byzrename::exp {

/// Parses the CLI grid mini-language into a CampaignSpec. The format is
/// `key=values` clauses joined by ';':
///
///   algo=op,fast          algorithms (op|const|fast|crash|consensus|bit|translated)
///   n=4,7,10..16          n axis; `a..b` and `a..b/step` expand ranges
///   t=1..4                t axis
///   nt=13:4,22:7          explicit (n, t) pairs, appended after the n x t grid
///   adversary=split,hybrid  strategy names from the adversary registry
///   reps=5                repetitions per cell (default 1)
///   seed=42               master seed (default 1)
///   faults=2              actual faulty processes (default t)
///   iterations=12         voting-iterations override (default algorithmic)
///   extra=1               extra rounds on the budget (default 0)
///   keep-invalid          keep cells outside the algorithm's regime
///   no-validation         ABLATION: disable the Alg. 2 isValid filter
///   name=my-sweep         campaign name stamped into every output line
///
/// Defaults when a clause is absent: algo=op, adversary=silent. At least
/// one of n/nt must be given (with n, t is required too). Throws
/// std::invalid_argument with a human-readable message on any malformed
/// clause; the CLI turns that into usage text.
[[nodiscard]] CampaignSpec parse_campaign_spec(std::string_view text);

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_SPEC_PARSE_H
