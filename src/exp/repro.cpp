#include "exp/repro.h"

#include <chrono>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/schema.h"

namespace byzrename::exp {

core::ScenarioConfig ReproScenario::to_config() const {
  core::ScenarioConfig config;
  config.algorithm = algorithm;
  config.params = params;
  config.adversary = adversary;
  config.actual_faults = actual_faults;
  config.seed = seed;
  config.options.approximation_iterations = iterations;
  config.options.validate_votes = validate_votes;
  config.extra_rounds = extra_rounds;
  config.fault_plan = fault_plan;
  return config;
}

sim::RoundObserver with_deadline(sim::RoundObserver inner, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  return [inner = std::move(inner), deadline, timeout_seconds](sim::Round round,
                                                               const sim::Network& network) {
    if (inner) inner(round, network);
    if (std::chrono::steady_clock::now() > deadline) throw RunTimeoutError(timeout_seconds);
  };
}

ReproVerdict evaluate_scenario(const ReproScenario& scenario, double timeout_seconds) {
  ReproVerdict verdict;
  core::ScenarioConfig config = scenario.to_config();
  if (timeout_seconds > 0.0) {
    config.observer = with_deadline(std::move(config.observer), timeout_seconds);
  }
  try {
    const core::ScenarioResult result = core::run_scenario(config);
    verdict.kind = result.report.all_ok() ? FailureKind::kNone : FailureKind::kViolation;
    verdict.classes = result.report.classes();
    verdict.detail = result.report.detail;
    verdict.rounds = result.run.rounds;
    verdict.terminated = result.run.terminated;
    verdict.max_name = static_cast<std::int64_t>(result.report.max_name);
  } catch (const RunTimeoutError& error) {
    verdict.kind = FailureKind::kTimeout;
    verdict.detail = error.what();
  } catch (const std::exception& error) {
    verdict.kind = FailureKind::kException;
    verdict.detail = error.what();
  }
  return verdict;
}

bool same_failure(const ReproVerdict& reference, const ReproVerdict& candidate) {
  if (reference.kind != candidate.kind) return false;
  switch (reference.kind) {
    case FailureKind::kNone: return true;
    case FailureKind::kViolation: return reference.classes == candidate.classes;
    case FailureKind::kException: return reference.detail == candidate.detail;
    case FailureKind::kTimeout: return true;
  }
  return false;
}

void write_repro_scenario(obs::JsonWriter& json, const ReproScenario& scenario) {
  json.key("scenario").begin_object();
  json.field("algorithm", core::cli_token(scenario.algorithm))
      .field("n", scenario.params.n)
      .field("t", scenario.params.t)
      .field("adversary", scenario.adversary)
      .field("faults", scenario.actual_faults)
      .field("seed", static_cast<std::uint64_t>(scenario.seed))
      .field("iterations", scenario.iterations)
      .field("validate_votes", scenario.validate_votes)
      .field("extra_rounds", scenario.extra_rounds)
      .field("fault_plan", sim::to_spec(scenario.fault_plan));
  json.end_object();
}

void write_repro_verdict_body(obs::JsonWriter& json, const ReproVerdict& verdict) {
  json.field("kind", to_string(verdict.kind))
      .field("classes", verdict.classes)
      .field("detail", verdict.detail)
      .field("rounds", verdict.rounds)
      .field("terminated", verdict.terminated)
      .field("max_name", static_cast<std::int64_t>(verdict.max_name));
}

ReproVerdict parse_repro_verdict(const obs::JsonValue& value) {
  ReproVerdict verdict;
  const std::string& kind = value.at("kind").as_string();
  if (kind == "none") {
    verdict.kind = FailureKind::kNone;
  } else if (kind == "violation") {
    verdict.kind = FailureKind::kViolation;
  } else if (kind == "exception") {
    verdict.kind = FailureKind::kException;
  } else if (kind == "timeout") {
    verdict.kind = FailureKind::kTimeout;
  } else {
    throw std::invalid_argument("repro bundle: unknown verdict kind '" + kind + "'");
  }
  verdict.classes = value.at("classes").as_string();
  verdict.detail = value.at("detail").as_string();
  verdict.rounds = static_cast<int>(value.at("rounds").as_int());
  verdict.terminated = value.at("terminated").as_bool();
  verdict.max_name = value.at("max_name").as_int();
  return verdict;
}

ReproScenario parse_repro_scenario(const obs::JsonValue& value) {
  ReproScenario scenario;
  const std::string& token = value.at("algorithm").as_string();
  const std::optional<core::Algorithm> algorithm = core::algorithm_from_token(token);
  if (!algorithm.has_value()) {
    throw std::invalid_argument("scenario: unknown algorithm '" + token + "'");
  }
  scenario.algorithm = *algorithm;
  scenario.params.n = static_cast<int>(value.at("n").as_int());
  scenario.params.t = static_cast<int>(value.at("t").as_int());
  scenario.adversary = value.at("adversary").as_string();
  scenario.actual_faults = static_cast<int>(value.at("faults").as_int());
  scenario.seed = value.at("seed").as_uint();
  scenario.iterations = static_cast<int>(value.at("iterations").as_int());
  scenario.validate_votes = value.at("validate_votes").as_bool();
  scenario.extra_rounds = static_cast<int>(value.at("extra_rounds").as_int());
  scenario.fault_plan = sim::parse_fault_plan(value.at("fault_plan").as_string());
  return scenario;
}

void write_repro_bundle(std::ostream& os, const ReproBundle& bundle) {
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema", obs::kReproSchema);
  if (!bundle.campaign.empty()) json.field("campaign", bundle.campaign);
  if (!bundle.cell.empty()) json.field("cell", bundle.cell);
  if (bundle.rep >= 0) json.field("rep", bundle.rep);
  write_repro_scenario(json, bundle.scenario);
  json.key("expected").begin_object();
  write_repro_verdict_body(json, bundle.expected);
  json.end_object();
  json.end_object();
  os << '\n';
}

ReproBundle parse_repro_bundle(std::string_view text) {
  const obs::JsonValue doc = obs::parse_json(text);
  const std::string& schema = doc.at("schema").as_string();
  if (schema != obs::kReproSchema) {
    throw std::invalid_argument("repro bundle: unknown schema '" + schema + "'");
  }
  ReproBundle bundle;
  if (const obs::JsonValue* campaign = doc.find("campaign")) {
    bundle.campaign = campaign->as_string();
  }
  if (const obs::JsonValue* cell = doc.find("cell")) bundle.cell = cell->as_string();
  if (const obs::JsonValue* rep = doc.find("rep")) bundle.rep = static_cast<int>(rep->as_int());
  bundle.scenario = parse_repro_scenario(doc.at("scenario"));
  bundle.expected = parse_repro_verdict(doc.at("expected"));
  return bundle;
}

void write_repro_verdict(std::ostream& os, const ReproBundle& bundle,
                         const ReproVerdict& observed, int replays, bool consistent) {
  obs::JsonWriter json(os);
  json.begin_object();
  json.field("schema", obs::kReproVerdictSchema);
  write_repro_scenario(json, bundle.scenario);
  json.key("expected").begin_object();
  write_repro_verdict_body(json, bundle.expected);
  json.end_object();
  json.key("observed").begin_object();
  write_repro_verdict_body(json, observed);
  json.end_object();
  json.field("replays", replays)
      .field("consistent", consistent)
      .field("matches_expected", observed == bundle.expected);
  json.end_object();
  os << '\n';
}

}  // namespace byzrename::exp
