#include "exp/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "exp/executor.h"
#include "exp/progress.h"
#include "exp/repro.h"
#include "obs/prof/profiler.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "sim/rng.h"

namespace byzrename::exp {

bool cell_valid(core::Algorithm algorithm, const sim::SystemParams& params) {
  if (params.n < 1 || params.t < 0 || params.t >= params.n) return false;
  switch (algorithm) {
    case core::Algorithm::kOpRenaming:
      return core::valid_for_op_renaming(params);
    case core::Algorithm::kOpRenamingConstantTime:
      return core::valid_for_constant_time(params);
    case core::Algorithm::kFastRenaming:
      return core::valid_for_fast_renaming(params);
    case core::Algorithm::kConsensusRenaming:
      return params.n > 4 * params.t;
    case core::Algorithm::kCrashRenaming:
    case core::Algorithm::kBitRenaming:
    case core::Algorithm::kTranslatedRenaming:
      return core::valid_for_op_renaming(params);
    case core::Algorithm::kScalarAA:
      return false;  // not a scenario algorithm (run_scenario rejects it)
  }
  return false;
}

std::vector<CampaignCell> expand_cells(const CampaignSpec& spec) {
  std::vector<CampaignCell> cells;
  std::vector<sim::SystemParams> grid_systems;
  for (const int n : spec.n_values) {
    for (const int t : spec.t_values) grid_systems.push_back({.n = n, .t = t});
  }
  grid_systems.insert(grid_systems.end(), spec.systems.begin(), spec.systems.end());

  for (const core::Algorithm algorithm : spec.algorithms) {
    for (const sim::SystemParams& params : grid_systems) {
      if (spec.skip_invalid && !cell_valid(algorithm, params)) continue;
      for (const std::string& adversary : spec.adversaries) {
        cells.push_back({cells.size(), algorithm, params, adversary});
      }
    }
  }
  for (const CampaignScenario& scenario : spec.scenarios) {
    cells.push_back({cells.size(), scenario.algorithm, scenario.params, scenario.adversary});
  }
  return cells;
}

std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t cell, std::uint64_t rep) {
  return sim::Rng::derive_stream(sim::Rng::derive_stream(master_seed, cell), rep);
}

std::string cell_key(const CampaignCell& cell) {
  std::string key(core::to_string(cell.algorithm));
  key += "/n" + std::to_string(cell.params.n);
  key += "/t" + std::to_string(cell.params.t);
  key += "/" + cell.adversary;
  return key;
}

namespace {

CellAggregate make_aggregate(const CampaignCell& cell) {
  // Salting the reservoir hash with the global cell index makes the
  // sample selection a pure function of (cell, rep): identical between
  // the unsharded campaign and any shard that contains the cell.
  const std::uint64_t salt = sim::splitmix64(cell.index);
  CellAggregate aggregate;
  aggregate.cell = cell.index;
  aggregate.salt = salt;
  aggregate.rounds = StreamingStats(StreamingStats::kDefaultReservoir, salt);
  aggregate.messages = StreamingStats(StreamingStats::kDefaultReservoir, salt);
  aggregate.correct_messages = StreamingStats(StreamingStats::kDefaultReservoir, salt);
  aggregate.bits = StreamingStats(StreamingStats::kDefaultReservoir, salt);
  aggregate.max_name = StreamingStats(StreamingStats::kDefaultReservoir, salt);
  aggregate.rejected_votes = StreamingStats(StreamingStats::kDefaultReservoir, salt);
  return aggregate;
}

void fold_run(CellAggregate& aggregate, const RunRecord& record) {
  if (record.quarantined) {
    // Quarantined runs never enter the deterministic aggregate: their
    // outcome is an infrastructure failure, not a measurement.
    aggregate.quarantined += 1;
    return;
  }
  const auto rep = static_cast<std::uint64_t>(record.rep);
  aggregate.executed += 1;
  aggregate.degraded_termination += record.violated_termination ? 1 : 0;
  aggregate.degraded_range += record.violated_range ? 1 : 0;
  aggregate.degraded_uniqueness += record.violated_uniqueness ? 1 : 0;
  aggregate.degraded_order += record.violated_order ? 1 : 0;
  aggregate.ok += record.ok ? 1 : 0;
  aggregate.terminated += record.terminated ? 1 : 0;
  aggregate.rounds.add(rep, record.rounds);
  aggregate.messages.add(rep, static_cast<std::int64_t>(record.messages));
  aggregate.correct_messages.add(rep, static_cast<std::int64_t>(record.correct_messages));
  aggregate.bits.add(rep, static_cast<std::int64_t>(record.bits));
  aggregate.max_name.add(rep, record.max_name);
  aggregate.rejected_votes.add(rep, record.rejected_votes);
  aggregate.max_message_bits = std::max(aggregate.max_message_bits, record.max_message_bits);
  if (!record.ok &&
      (aggregate.first_violation_rep < 0 || record.rep < aggregate.first_violation_rep)) {
    aggregate.first_violation_rep = record.rep;
    aggregate.first_violation = record.detail;
  }
}

/// Folds one run's per-round series into the cell's round-resolved
/// aggregates, growing the vector to the longest run seen so far. The
/// growth is deterministic: the final length is max(rounds) over the
/// cell's runs and every new accumulator starts from the cell salt, so
/// neither depends on which run arrived first.
void fold_round_stats(CellAggregate& aggregate, const RunRecord& record,
                      const std::vector<sim::RoundMetrics>& per_round) {
  if (per_round.size() > aggregate.per_round.size()) {
    aggregate.per_round.reserve(per_round.size());
    while (aggregate.per_round.size() < per_round.size()) {
      CellAggregate::RoundStats stats;
      stats.messages = StreamingStats(StreamingStats::kDefaultReservoir, aggregate.salt);
      stats.bits = StreamingStats(StreamingStats::kDefaultReservoir, aggregate.salt);
      stats.correct_messages =
          StreamingStats(StreamingStats::kDefaultReservoir, aggregate.salt);
      stats.equivocating_sends =
          StreamingStats(StreamingStats::kDefaultReservoir, aggregate.salt);
      aggregate.per_round.push_back(std::move(stats));
    }
  }
  const auto rep = static_cast<std::uint64_t>(record.rep);
  for (std::size_t i = 0; i < per_round.size(); ++i) {
    const sim::RoundMetrics& m = per_round[i];
    CellAggregate::RoundStats& stats = aggregate.per_round[i];
    stats.messages.add(rep, static_cast<std::int64_t>(m.messages));
    stats.bits.add(rep, static_cast<std::int64_t>(m.bits));
    stats.correct_messages.add(rep, static_cast<std::int64_t>(m.correct_messages));
    stats.equivocating_sends.add(rep, static_cast<std::int64_t>(m.equivocating_sends));
  }
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec, const CampaignOptions& options) {
  if (spec.repetitions < 1) {
    throw std::invalid_argument("run_campaign: repetitions must be >= 1");
  }
  if (options.shard_count < 1 || options.shard_index < 0 ||
      options.shard_index >= options.shard_count) {
    throw std::invalid_argument("run_campaign: shard index must satisfy 0 <= i < k");
  }

  CampaignResult result;
  for (CampaignCell& cell : expand_cells(spec)) {
    if (static_cast<int>(cell.index % static_cast<std::size_t>(options.shard_count)) ==
        options.shard_index) {
      result.cells.push_back(std::move(cell));
    }
  }
  const std::size_t reps = static_cast<std::size_t>(spec.repetitions);
  const std::size_t total_runs = result.cells.size() * reps;
  result.runs.resize(total_runs);
  result.aggregates.reserve(result.cells.size());
  for (const CampaignCell& cell : result.cells) result.aggregates.push_back(make_aggregate(cell));
  if (options.profile) result.profiles.resize(result.cells.size());

  Executor executor(options.threads);
  result.threads = executor.threads();
  if (options.progress != nullptr) {
    options.progress->begin(spec.name, result.cells, reps, executor.threads());
  }

  // One mutex per cell guards its aggregate; a separate mutex serializes
  // whole lines on the shared runs_out stream.
  std::vector<std::mutex> cell_mutexes(result.cells.empty() ? 1 : result.cells.size());
  std::mutex internal_runs_mutex;
  std::mutex* runs_mutex =
      options.runs_out_mutex != nullptr ? options.runs_out_mutex : &internal_runs_mutex;
  std::atomic<std::size_t> violations{0};
  std::atomic<std::size_t> quarantined{0};
  // Tasks dequeued but skipped by an external interrupt: the executor
  // counts them as executed (it ran the callable), the campaign must not.
  std::atomic<std::size_t> skipped{0};

  const auto task = [&](std::size_t run_index) {
    // External interrupt (SIGINT via the campaign CLI): stop starting
    // runs. This run was already dequeued, so it is skipped outright —
    // its record keeps executed=false, same as never-started tasks.
    if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
      executor.cancel();
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (options.progress != nullptr) options.progress->task_started();
    const std::size_t slot = run_index / reps;
    const int rep = static_cast<int>(run_index % reps);
    const CampaignCell& cell = result.cells[slot];
    RunRecord& record = result.runs[run_index];
    record.cell = cell.index;
    record.rep = rep;
    record.seed = derive_seed(spec.master_seed, cell.index, static_cast<std::uint64_t>(rep));

    core::ScenarioConfig base_config;
    base_config.params = cell.params;
    base_config.algorithm = cell.algorithm;
    base_config.adversary = cell.adversary;
    base_config.actual_faults = spec.actual_faults;
    base_config.seed = record.seed;
    base_config.options = spec.options;
    base_config.extra_rounds = spec.extra_rounds;
    base_config.fault_plan = spec.fault_plan;
    if (options.configure) options.configure(run_index, base_config);

    // Per-round series of the successful attempt, kept on this worker's
    // frame until the cell mutex is held (RunRecord deliberately does
    // not carry per-round vectors).
    std::vector<sim::RoundMetrics> per_round_copy;
    // Profile tree of the successful attempt, same lifecycle: one fresh
    // profiler per attempt (its scope stack is per-run state), snapshot
    // taken on this worker's frame, merged under the cell mutex.
    std::optional<obs::prof::ProfileSnapshot> profile_copy;

    // Retry-then-quarantine: exceptions and watchdog timeouts are
    // infrastructure failures, so the run gets fresh attempts; a checker
    // violation is a RESULT and is recorded on the first attempt. A run
    // still failing after all attempts is quarantined — the sweep itself
    // always survives individual run failures.
    const int max_attempts = 1 + std::max(0, options.quarantine_retries);
    const auto start = std::chrono::steady_clock::now();
    for (record.attempts = 1; record.attempts <= max_attempts; ++record.attempts) {
      core::ScenarioConfig config = base_config;
      // The watchdog wraps whatever observer `configure` installed, so a
      // hang inside a caller-attached probe is caught too. The deadline
      // starts per attempt.
      if (options.run_timeout_seconds > 0.0) {
        config.observer = with_deadline(std::move(config.observer),
                                        options.run_timeout_seconds);
      }
      // Per-attempt telemetry stack on this worker's frame; the sinks
      // write whole lines under runs_out_mutex, so parallel runs cannot
      // interleave partial JSONL.
      obs::Telemetry telemetry;
      std::optional<obs::RunReportSink> sink;
      if (options.runs_out != nullptr) {
        sink.emplace(*options.runs_out, options.runs_bench, runs_mutex);
        telemetry.add_sink(*sink);
        telemetry.set_probes_enabled(options.sample_probes);
        config.telemetry = &telemetry;
        config.telemetry_label = cell_key(cell) + "/rep" + std::to_string(rep);
      }
      std::optional<obs::prof::Profiler> profiler;
      if (options.profile) {
        profiler.emplace();
        config.profiler = &*profiler;
      }
      try {
        const core::ScenarioResult scenario = core::run_scenario(config);
        if (options.round_stats) per_round_copy = scenario.run.metrics.per_round();
        if (profiler) profile_copy = profiler->snapshot();
        record.ok = scenario.report.all_ok();
        record.failure = record.ok ? FailureKind::kNone : FailureKind::kViolation;
        record.terminated = scenario.run.terminated;
        record.rounds = scenario.run.rounds;
        record.max_name = scenario.report.max_name;
        record.messages = scenario.run.metrics.total_messages();
        record.bits = scenario.run.metrics.total_bits();
        record.correct_messages = scenario.run.metrics.total_correct_messages();
        record.correct_bits = scenario.run.metrics.total_correct_bits();
        record.equivocating_sends = scenario.run.metrics.total_equivocating_sends();
        record.max_message_bits = scenario.run.metrics.max_message_bits();
        record.max_correct_message_bits = scenario.run.metrics.max_correct_message_bits();
        record.min_accepted = scenario.min_accepted;
        record.max_accepted = scenario.max_accepted;
        record.rejected_votes = scenario.total_rejected;
        record.violation_classes = scenario.report.classes();
        record.violated_termination = !scenario.report.termination;
        record.violated_range = !scenario.report.validity;
        record.violated_uniqueness = !scenario.report.uniqueness;
        record.violated_order = !scenario.report.order_preservation;
        if (!record.ok) record.detail = scenario.report.detail;
        record.quarantined = false;
        if (options.inspect) options.inspect(run_index, scenario);
        break;
      } catch (const RunTimeoutError& error) {
        record.ok = false;
        record.failure = FailureKind::kTimeout;
        record.detail = error.what();
        record.quarantined = true;
      } catch (const std::exception& error) {
        record.ok = false;
        record.failure = FailureKind::kException;
        record.detail = error.what();
        record.quarantined = true;
      }
    }
    record.attempts = std::min(record.attempts, max_attempts);
    record.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    record.executed = true;

    {
      const std::lock_guard<std::mutex> lock(cell_mutexes[slot]);
      fold_run(result.aggregates[slot], record);
      if (options.round_stats && !record.quarantined) {
        fold_round_stats(result.aggregates[slot], record, per_round_copy);
      }
      if (profile_copy && !record.quarantined) {
        result.profiles[slot].merge(*profile_copy);
      }
    }
    if (record.quarantined) {
      quarantined.fetch_add(1, std::memory_order_relaxed);
      if (options.fail_fast) executor.cancel();
    } else if (!record.ok) {
      violations.fetch_add(1, std::memory_order_relaxed);
      if (options.fail_fast) executor.cancel();
    }
    if (options.progress != nullptr) {
      options.progress->task_finished(slot, record.ok, record.quarantined);
    }
  };

  const auto campaign_start = std::chrono::steady_clock::now();
  const Executor::Stats stats = executor.run(total_runs, task);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_start).count();
  result.executed = stats.executed - skipped.load(std::memory_order_relaxed);
  result.steals = stats.stolen;
  result.violations = violations.load(std::memory_order_relaxed);
  result.quarantined = quarantined.load(std::memory_order_relaxed);
  result.cancelled = executor.cancelled();
  result.interrupted =
      options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
  if (options.progress != nullptr) options.progress->finish(result.interrupted);
  return result;
}

}  // namespace byzrename::exp
