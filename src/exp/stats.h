#ifndef BYZRENAME_EXP_STATS_H
#define BYZRENAME_EXP_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace byzrename::exp {

/// Order-independent streaming accumulator for one integer-valued metric
/// of a campaign cell (decide rounds, messages, bits, max name, ...).
///
/// The campaign engine feeds it from many worker threads in whatever
/// order runs happen to finish, yet the emitted aggregate must be
/// bit-identical at any thread count. Every operation is therefore
/// commutative by construction:
///  - count/min/max over integers are order-independent;
///  - the mean is computed at emission time from the exact integer sum
///    (no floating-point accumulation, whose rounding depends on order);
///  - quantiles come from a bounded reservoir whose membership is decided
///    by a per-sample priority hash of (salt, sample index) — a function
///    of the sample's canonical index only, never of arrival order. The
///    reservoir keeps the capacity samples of smallest priority, which is
///    a uniform random subset, exact whenever count <= capacity.
///
/// Thread safety: add() and merge() are NOT internally synchronized; the
/// engine guards each cell's accumulators with a per-cell mutex.
class StreamingStats {
 public:
  static constexpr std::size_t kDefaultReservoir = 256;

  explicit StreamingStats(std::size_t reservoir_capacity = kDefaultReservoir,
                          std::uint64_t salt = 0);

  /// Folds in one sample. @p index is the sample's canonical position
  /// (e.g. the repetition number); feeding the same (index, value) set in
  /// any order yields the same state. Indices must be distinct.
  void add(std::uint64_t index, std::int64_t value);

  /// Union of two accumulators over disjoint index sets (per-shard or
  /// per-worker partials). Requires equal capacity and salt.
  void merge(const StreamingStats& other);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t min() const noexcept { return min_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  /// Exact integer sum divided once; deterministic for a fixed sample set.
  [[nodiscard]] double mean() const noexcept;

  /// Nearest-rank quantile (q in [0, 1]) over the reservoir: an actual
  /// sample value, never an interpolation. Exact when count <= capacity.
  [[nodiscard]] std::int64_t quantile(double q) const;

  [[nodiscard]] std::size_t reservoir_size() const noexcept { return reservoir_.size(); }

 private:
  struct Sample {
    std::uint64_t priority = 0;
    std::int64_t value = 0;
  };

  std::size_t capacity_;
  std::uint64_t salt_;
  std::size_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
  /// Max-heap on priority: top() is the eviction candidate.
  std::vector<Sample> reservoir_;

  void offer(const Sample& sample);
};

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_STATS_H
