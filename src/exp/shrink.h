#ifndef BYZRENAME_EXP_SHRINK_H
#define BYZRENAME_EXP_SHRINK_H

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/repro.h"

namespace byzrename::exp {

/// Scenario-size metric the shrinker strictly decreases: a weighted sum
/// of everything a human has to hold in their head while debugging —
/// processes, fault budget, round budget, iterations, plan events, and
/// adversary complexity. Smaller is simpler.
[[nodiscard]] std::size_t scenario_size(const ReproScenario& scenario);

struct ShrinkOptions {
  /// Evaluation budget: total candidate runs the shrinker may spend.
  int max_attempts = 200;
  /// Watchdog per candidate evaluation; 0 disables. A shrink candidate
  /// may hang where the original did not, so a budget here keeps the
  /// shrinker itself from hanging.
  double run_timeout_seconds = 0.0;
  /// Progress hook (accepted candidates only); called with the new
  /// scenario and its size. Used by the CLI's -v mode.
  std::function<void(const ReproScenario&, std::size_t)> on_shrink;
};

struct ShrinkResult {
  /// Smallest scenario found that still fails the same way.
  ReproScenario scenario;
  /// Verdict of that scenario (same failure class set as the original's).
  ReproVerdict verdict;
  std::size_t original_size = 0;
  std::size_t final_size = 0;
  int attempts = 0;         ///< candidate evaluations spent
  int accepted_shrinks = 0; ///< candidates that were kept

  [[nodiscard]] bool shrank() const noexcept { return final_size < original_size; }
};

/// Greedy delta-debugging over one failing scenario: propose simpler
/// candidates (fewer processes, smaller budgets, silent adversary,
/// dropped fault-plan events, ...), keep a candidate iff it still fails
/// with the SAME failure (same_failure), repeat until a whole pass
/// accepts nothing or the attempt budget runs out. The input scenario
/// must fail (evaluate to a non-kNone verdict); throws
/// std::invalid_argument otherwise. Deterministic: candidate order is
/// fixed and evaluation is seeded, so the same input shrinks to the same
/// output everywhere (timeout verdicts excepted).
[[nodiscard]] ShrinkResult shrink_scenario(const ReproScenario& scenario,
                                           const ShrinkOptions& options = {});

/// The candidate scenarios one shrink pass proposes for @p scenario, in
/// the deterministic order they are tried. Exposed for tests.
[[nodiscard]] std::vector<ReproScenario> shrink_candidates(const ReproScenario& scenario);

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_SHRINK_H
