#include "exp/shrink.h"

#include <stdexcept>
#include <utility>

#include "core/params.h"
#include "exp/campaign.h"

namespace byzrename::exp {

std::size_t scenario_size(const ReproScenario& scenario) {
  // Weights order the search: a process is the most expensive thing to
  // keep (every process multiplies the trace a human must read), then
  // fault-plan events, then budgets. Any strict decrease in any term
  // lowers the total, so the greedy loop terminates.
  std::size_t size = static_cast<std::size_t>(scenario.params.n) * 16;
  size += static_cast<std::size_t>(scenario.params.t) * 8;
  const int base_faults =
      scenario.actual_faults >= 0 ? scenario.actual_faults : scenario.params.t;
  size += static_cast<std::size_t>(base_faults) * 4;
  size += scenario.iterations >= 0
              ? static_cast<std::size_t>(scenario.iterations)
              : static_cast<std::size_t>(
                    core::default_approximation_iterations(scenario.params.t));
  size += static_cast<std::size_t>(scenario.extra_rounds);
  size += scenario.fault_plan.event_count() * 12;
  size += static_cast<std::size_t>(scenario.fault_plan.fault_overshoot) * 4;
  for (const sim::LinkFaultRule& rule : scenario.fault_plan.links) {
    if (rule.kind == sim::LinkFaultKind::kDelay && rule.delay_rounds > 1) {
      size += static_cast<std::size_t>(rule.delay_rounds);
    }
  }
  // Each forged message per receiver per round is something a human must
  // read past, so a forge rule's k weighs like extra delay rounds.
  for (const sim::ForgeRule& rule : scenario.fault_plan.forges) {
    if (rule.count > 1) size += static_cast<std::size_t>(rule.count);
  }
  if (scenario.adversary != "silent") size += 24;
  return size;
}

namespace {

/// Would run_scenario even accept this candidate? Mirrors the harness's
/// validation so invalid candidates are skipped for free instead of
/// burning an attempt on a guaranteed kException verdict.
bool candidate_valid(const ReproScenario& scenario) {
  if (scenario.params.n < 1 || scenario.params.t < 0) return false;
  const int base = scenario.actual_faults >= 0 ? scenario.actual_faults : scenario.params.t;
  if (base > scenario.params.t || base >= scenario.params.n) return false;
  if (scenario.fault_plan.fault_overshoot < 0) return false;
  if (base + scenario.fault_plan.fault_overshoot >= scenario.params.n) return false;
  return cell_valid(scenario.algorithm, scenario.params);
}

/// Clamp follower fields after a (n, t) reduction so a candidate is
/// rejected for being uninteresting, not for being inconsistent.
void clamp(ReproScenario& scenario) {
  if (scenario.actual_faults > scenario.params.t) {
    scenario.actual_faults = scenario.params.t;
  }
}

}  // namespace

std::vector<ReproScenario> shrink_candidates(const ReproScenario& scenario) {
  std::vector<ReproScenario> candidates;
  auto propose = [&](ReproScenario candidate) {
    clamp(candidate);
    candidates.push_back(std::move(candidate));
  };

  // Aggressive simplifications first: a single accepted big step saves
  // dozens of one-step passes.
  if (scenario.adversary != "silent") {
    ReproScenario candidate = scenario;
    candidate.adversary = "silent";
    propose(std::move(candidate));
  }
  if (!scenario.fault_plan.empty()) {
    ReproScenario candidate = scenario;
    candidate.fault_plan = {};
    propose(std::move(candidate));
  }
  if (scenario.params.n > 1) {
    ReproScenario halved = scenario;
    halved.params.n = scenario.params.n / 2;
    propose(std::move(halved));
    ReproScenario stepped = scenario;
    stepped.params.n = scenario.params.n - 1;
    propose(std::move(stepped));
  }
  if (scenario.params.t > 0) {
    ReproScenario halved = scenario;
    halved.params.t = scenario.params.t / 2;
    propose(std::move(halved));
    ReproScenario stepped = scenario;
    stepped.params.t = scenario.params.t - 1;
    propose(std::move(stepped));
  }
  {
    const int base = scenario.actual_faults >= 0 ? scenario.actual_faults : scenario.params.t;
    if (base > 0) {
      ReproScenario none = scenario;
      none.actual_faults = 0;
      propose(std::move(none));
      ReproScenario halved = scenario;
      halved.actual_faults = base / 2;
      propose(std::move(halved));
    }
  }
  if (scenario.iterations > 0) {
    ReproScenario candidate = scenario;
    candidate.iterations = scenario.iterations / 2;
    propose(std::move(candidate));
  }
  if (scenario.extra_rounds > 0) {
    ReproScenario zeroed = scenario;
    zeroed.extra_rounds = 0;
    propose(std::move(zeroed));
    ReproScenario halved = scenario;
    halved.extra_rounds = scenario.extra_rounds / 2;
    propose(std::move(halved));
  }

  // Fault-plan event deltas: drop each event individually, soften what
  // remains.
  for (std::size_t i = 0; i < scenario.fault_plan.links.size(); ++i) {
    ReproScenario candidate = scenario;
    candidate.fault_plan.links.erase(candidate.fault_plan.links.begin() +
                                     static_cast<std::ptrdiff_t>(i));
    propose(std::move(candidate));
  }
  for (std::size_t i = 0; i < scenario.fault_plan.crashes.size(); ++i) {
    ReproScenario candidate = scenario;
    candidate.fault_plan.crashes.erase(candidate.fault_plan.crashes.begin() +
                                       static_cast<std::ptrdiff_t>(i));
    propose(std::move(candidate));
  }
  for (std::size_t i = 0; i < scenario.fault_plan.partitions.size(); ++i) {
    ReproScenario candidate = scenario;
    candidate.fault_plan.partitions.erase(candidate.fault_plan.partitions.begin() +
                                          static_cast<std::ptrdiff_t>(i));
    propose(std::move(candidate));
  }
  for (std::size_t i = 0; i < scenario.fault_plan.forges.size(); ++i) {
    ReproScenario candidate = scenario;
    candidate.fault_plan.forges.erase(candidate.fault_plan.forges.begin() +
                                      static_cast<std::ptrdiff_t>(i));
    propose(std::move(candidate));
  }
  for (std::size_t i = 0; i < scenario.fault_plan.restarts.size(); ++i) {
    ReproScenario candidate = scenario;
    candidate.fault_plan.restarts.erase(candidate.fault_plan.restarts.begin() +
                                        static_cast<std::ptrdiff_t>(i));
    propose(std::move(candidate));
  }
  if (scenario.fault_plan.fault_overshoot > 0) {
    ReproScenario candidate = scenario;
    candidate.fault_plan.fault_overshoot = scenario.fault_plan.fault_overshoot / 2;
    propose(std::move(candidate));
  }
  for (std::size_t i = 0; i < scenario.fault_plan.links.size(); ++i) {
    const sim::LinkFaultRule& rule = scenario.fault_plan.links[i];
    if (rule.kind == sim::LinkFaultKind::kDelay && rule.delay_rounds > 1) {
      ReproScenario candidate = scenario;
      candidate.fault_plan.links[i].delay_rounds = rule.delay_rounds / 2;
      propose(std::move(candidate));
    }
  }
  for (std::size_t i = 0; i < scenario.fault_plan.forges.size(); ++i) {
    if (scenario.fault_plan.forges[i].count > 1) {
      ReproScenario candidate = scenario;
      candidate.fault_plan.forges[i].count = scenario.fault_plan.forges[i].count / 2;
      propose(std::move(candidate));
    }
  }
  return candidates;
}

ShrinkResult shrink_scenario(const ReproScenario& scenario, const ShrinkOptions& options) {
  ShrinkResult result;
  result.original_size = scenario_size(scenario);
  result.scenario = scenario;
  result.verdict = evaluate_scenario(scenario, options.run_timeout_seconds);
  if (!result.verdict.failed()) {
    throw std::invalid_argument("shrink: scenario does not fail — nothing to minimize");
  }
  const ReproVerdict reference = result.verdict;

  bool progress = true;
  while (progress && result.attempts < options.max_attempts) {
    progress = false;
    for (const ReproScenario& candidate : shrink_candidates(result.scenario)) {
      if (result.attempts >= options.max_attempts) break;
      if (!candidate_valid(candidate)) continue;
      const std::size_t candidate_size = scenario_size(candidate);
      if (candidate_size >= scenario_size(result.scenario)) continue;
      ++result.attempts;
      const ReproVerdict verdict = evaluate_scenario(candidate, options.run_timeout_seconds);
      if (!verdict.failed() || !same_failure(reference, verdict)) continue;
      result.scenario = candidate;
      result.verdict = verdict;
      ++result.accepted_shrinks;
      progress = true;
      if (options.on_shrink) options.on_shrink(result.scenario, candidate_size);
      // Restart the pass from the smaller scenario: its candidate list
      // is different, and the aggressive steps come first again.
      break;
    }
  }
  result.final_size = scenario_size(result.scenario);
  return result;
}

}  // namespace byzrename::exp
