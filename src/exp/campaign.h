#ifndef BYZRENAME_EXP_CAMPAIGN_H
#define BYZRENAME_EXP_CAMPAIGN_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/harness.h"
#include "core/params.h"
#include "exp/repro.h"
#include "exp/stats.h"
#include "obs/prof/profile_io.h"
#include "sim/fault.h"
#include "sim/types.h"

namespace byzrename::exp {

class ProgressTracker;

/// One explicit (algorithm, system, adversary) scenario, for sweeps that
/// are not cartesian (each case pairs its own system with its own
/// adversary, like bench_f1's worst-case profile).
struct CampaignScenario {
  core::Algorithm algorithm = core::Algorithm::kOpRenaming;
  sim::SystemParams params;
  std::string adversary = "silent";
};

/// Declarative description of an experiment campaign: a cartesian grid
/// (algorithms x systems x adversaries) plus an explicit scenario list,
/// each cell repeated `repetitions` times under seeds derived from
/// `master_seed`. Expansion (expand_cells) is a pure function of the
/// spec, so a spec names the exact same run set on every machine.
struct CampaignSpec {
  std::string name = "campaign";

  // --- cartesian grid ----------------------------------------------------
  std::vector<core::Algorithm> algorithms;
  /// (n, t) axis: the cross product n_values x t_values, plus the
  /// explicit `systems` list for non-rectangular grids (Table-IV-style
  /// diagonal sweeps).
  std::vector<int> n_values;
  std::vector<int> t_values;
  std::vector<sim::SystemParams> systems;
  std::vector<std::string> adversaries;

  // --- explicit scenarios, appended after the grid -----------------------
  std::vector<CampaignScenario> scenarios;

  /// Runs per cell; per-run seeds are sim::Rng::derive_stream splits of
  /// (master_seed, cell index, repetition), see derive_seed().
  int repetitions = 1;
  std::uint64_t master_seed = 1;

  /// Forwarded into every ScenarioConfig.
  core::RenamingOptions options;
  int actual_faults = -1;
  int extra_rounds = 0;
  /// Fault-injection plan applied to every run (sim/fault.h); empty runs
  /// the clean model. Injection randomness derives from each run's seed,
  /// so the bit-determinism guarantee is unaffected.
  sim::FaultPlan fault_plan;

  /// Drop grid cells that violate the algorithm's resilience
  /// precondition (e.g. n <= 3t for Alg. 1) instead of erroring at run
  /// time; explicit `scenarios` are never filtered.
  bool skip_invalid = true;
};

/// One expanded cell. `index` is the cell's position in the FULL
/// expansion (before sharding): it keys seed derivation and sharding, so
/// a cell's runs are identical whether executed alone, in a shard, or in
/// the full campaign.
struct CampaignCell {
  std::size_t index = 0;
  core::Algorithm algorithm = core::Algorithm::kOpRenaming;
  sim::SystemParams params;
  std::string adversary;
};

/// Grid cells in deterministic order: algorithms x (n x t then systems)
/// x adversaries, then explicit scenarios.
[[nodiscard]] std::vector<CampaignCell> expand_cells(const CampaignSpec& spec);

/// Canonical cell label, "op-renaming/n13/t4/asymflood": the join key of
/// byzrename.campaign/1 lines and the run-line label prefix.
[[nodiscard]] std::string cell_key(const CampaignCell& cell);

/// True iff (algorithm, params) satisfies the algorithm's resilience
/// precondition (the run would not throw on construction).
[[nodiscard]] bool cell_valid(core::Algorithm algorithm, const sim::SystemParams& params);

/// Seed of repetition @p rep of cell @p cell: two chained SplitMix
/// stream splits. Pure; pinned by golden tests — changing it invalidates
/// every recorded campaign.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t cell,
                                        std::uint64_t rep);

/// Everything recorded about one campaign run. Integral copies of the
/// scenario outcome (not the full ScenarioResult: per-round vectors of a
/// large campaign would dwarf the aggregate).
struct RunRecord {
  std::size_t cell = 0;  ///< CampaignCell::index
  int rep = 0;
  std::uint64_t seed = 0;
  bool executed = false;  ///< false: skipped by fail-fast cancellation
  bool ok = false;        ///< checker verdict all_ok
  bool terminated = false;
  int rounds = 0;
  std::int64_t max_name = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t correct_messages = 0;
  std::uint64_t correct_bits = 0;
  std::uint64_t equivocating_sends = 0;
  std::uint64_t max_message_bits = 0;
  std::uint64_t max_correct_message_bits = 0;
  std::size_t min_accepted = 0;
  std::size_t max_accepted = 0;
  long rejected_votes = 0;
  /// Wall clock of this run. Volatile: never enters deterministic
  /// aggregates, reported only in the summary.
  double wall_seconds = 0.0;
  /// First checker violation or the run's exception message.
  std::string detail;
  /// How the run concluded: kNone/kViolation are normal results;
  /// kException/kTimeout mark infrastructure failures that went through
  /// the retry-then-quarantine path.
  FailureKind failure = FailureKind::kNone;
  /// Canonical comma-joined violated property classes ("" when ok).
  std::string violation_classes;
  /// Per-class verdict breakdown (a run can violate several at once).
  bool violated_termination = false;
  bool violated_range = false;
  bool violated_uniqueness = false;
  bool violated_order = false;
  /// True: the run failed (threw or timed out) on every attempt and was
  /// excluded from the cell's aggregate. The sweep continues regardless.
  bool quarantined = false;
  /// Evaluation attempts consumed (1 = first try succeeded or was a
  /// normal verdict; > 1 = retries happened).
  int attempts = 0;
};

/// Deterministic per-cell aggregate, built online as runs finish (any
/// order, any thread count — see StreamingStats for why that is sound).
struct CellAggregate {
  /// Round-resolved aggregates across the cell's runs: entry i covers
  /// round i+1. Populated only with CampaignOptions::round_stats; grows
  /// to the longest run seen, so a stats object's count is less than
  /// `executed` for rounds some runs never reached. Deterministic like
  /// everything else here: the final length is the max over runs and
  /// each accumulator's state is a pure function of its (rep, value)
  /// sample set, neither depending on completion order.
  struct RoundStats {
    StreamingStats messages;
    StreamingStats bits;
    StreamingStats correct_messages;
    StreamingStats equivocating_sends;
  };

  std::size_t cell = 0;
  /// Reservoir salt shared by every accumulator of this cell (including
  /// per_round entries created later), splitmix64(cell index).
  std::uint64_t salt = 0;
  std::size_t executed = 0;
  std::size_t ok = 0;
  std::size_t terminated = 0;
  StreamingStats rounds;
  StreamingStats messages;
  StreamingStats correct_messages;
  StreamingStats bits;
  StreamingStats max_name;
  StreamingStats rejected_votes;
  std::uint64_t max_message_bits = 0;
  /// detail of the first violating repetition (lowest rep index).
  int first_violation_rep = -1;
  std::string first_violation;
  /// Runs excluded after exhausting retries; NOT part of `executed` and
  /// never folded into the stats, so the deterministic aggregate stays a
  /// pure function of the runs that actually completed.
  std::size_t quarantined = 0;
  /// Degradation curve: runs violating each property class. A run can
  /// count toward several classes at once.
  std::size_t degraded_termination = 0;
  std::size_t degraded_range = 0;
  std::size_t degraded_uniqueness = 0;
  std::size_t degraded_order = 0;
  /// See RoundStats; empty unless CampaignOptions::round_stats.
  std::vector<RoundStats> per_round;
};

/// Execution knobs, separate from the spec so the same spec can run
/// serial, parallel, or sharded and mean the same thing.
struct CampaignOptions {
  /// Worker threads; < 1 selects the hardware concurrency.
  int threads = 0;
  /// Cancel outstanding runs after the first checker violation. The
  /// aggregate of a cancelled campaign is NOT deterministic (which runs
  /// completed depends on timing); use for CI gating, not for recording.
  bool fail_fast = false;
  /// Execute only cells with index % shard_count == shard_index. The
  /// union of all shards' cell lines equals the unsharded campaign's.
  int shard_index = 0;
  int shard_count = 1;
  /// Stream one byzrename.run/1 line per finished run (mutex-guarded;
  /// lines never interleave). Optional `runs_bench` tags the lines.
  std::ostream* runs_out = nullptr;
  std::string runs_bench;
  /// Mutex guarding runs_out. Supply the stream's existing guard when
  /// other writers (obs::BenchReporter) share it; the engine uses an
  /// internal one when null.
  std::mutex* runs_out_mutex = nullptr;
  /// Sample exact-rational probes into runs_out lines (costly; off by
  /// default for sweep throughput).
  bool sample_probes = false;
  /// Aggregate per-round metric series into CellAggregate::per_round
  /// (emitted as the campaign/1 `per_round` array). Off by default so
  /// existing campaign outputs stay byte-identical; when on, the series
  /// are as deterministic as the cell stats — CI diffs --threads 1
  /// against --threads 8 byte-for-byte.
  bool round_stats = false;
  /// Per-run cooperative watchdog (exp/repro.h with_deadline); 0
  /// disables. A timed-out run is retried, then quarantined. NOTE:
  /// timeouts depend on wall clocks, so a campaign recorded for
  /// byte-comparison must run without one.
  double run_timeout_seconds = 0.0;
  /// Extra attempts after a run throws or times out, before it is
  /// quarantined. Checker violations are results, never retried.
  int quarantine_retries = 1;
  /// Attach a fresh obs/prof profiler to every run and merge the
  /// snapshots into CampaignResult::profiles (one phase-attributed
  /// aggregate per cell, byzrename.profile/1 kind "cell"). Count-based
  /// aggregate fields stay byte-identical across --threads values: the
  /// profiler observes, never steers, and per-run allocation attribution
  /// is thread-local. Off by default — per-round scope bracketing is
  /// cheap but not free at sweep volume.
  bool profile = false;
  /// Live progress observer (exp/progress.h), fed from worker threads
  /// and scraped by the obs/http /progress endpoint. Strictly read-only
  /// with respect to results: attaching one cannot change any
  /// deterministic output. Must outlive run_campaign. Null = off.
  ProgressTracker* progress = nullptr;
  /// Cooperative external cancellation (the campaign CLI's SIGINT
  /// path): when non-null and set, workers stop STARTING runs —
  /// in-flight runs complete, sinks stay flushed whole-line, and the
  /// partial result returns with cancelled (and interrupted) set.
  const std::atomic<bool>* cancel = nullptr;
  /// Per-run hooks, invoked from worker threads. `configure` may attach
  /// observers or tweak the config before the run; `inspect` sees the
  /// full ScenarioResult right after it. Both are called concurrently
  /// for distinct run indices and must not share unsynchronized state
  /// across indices.
  std::function<void(std::size_t run_index, core::ScenarioConfig&)> configure;
  std::function<void(std::size_t run_index, const core::ScenarioResult&)> inspect;
};

struct CampaignResult {
  /// Cells this execution was responsible for (after sharding), in
  /// deterministic expansion order.
  std::vector<CampaignCell> cells;
  /// cells.size() * repetitions records; run_index = cell slot *
  /// repetitions + rep. Records of cancelled runs have executed=false.
  std::vector<RunRecord> runs;
  /// One aggregate per entry of `cells`, same order.
  std::vector<CellAggregate> aggregates;
  /// Per-cell profile aggregates, same order as `cells`; empty unless
  /// CampaignOptions::profile. Quarantined runs never merge (their
  /// trees describe an aborted attempt, not a measurement).
  std::vector<obs::prof::ProfileAggregate> profiles;
  int threads = 1;
  double wall_seconds = 0.0;  ///< volatile whole-campaign wall clock
  std::size_t executed = 0;
  std::size_t violations = 0;
  /// Runs that failed every attempt and were excluded from aggregates.
  std::size_t quarantined = 0;
  std::size_t steals = 0;
  bool cancelled = false;
  /// True iff cancellation came from CampaignOptions::cancel (an
  /// operator interrupt) rather than fail-fast; the summary line
  /// carries it as `interrupted`.
  bool interrupted = false;

  [[nodiscard]] bool all_ok() const noexcept {
    return violations == 0 && quarantined == 0 && !cancelled;
  }
};

/// Expands the spec, runs every (cell, repetition) through
/// core::run_scenario on the work-stealing executor, and aggregates.
/// Throws std::invalid_argument on malformed specs (unknown adversary
/// names surface when the first affected run starts).
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const CampaignOptions& options = {});

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_CAMPAIGN_H
