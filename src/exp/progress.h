#ifndef BYZRENAME_EXP_PROGRESS_H
#define BYZRENAME_EXP_PROGRESS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "exp/campaign.h"

namespace byzrename::exp {

/// Live progress state of one campaign execution, built for concurrent
/// observation: worker threads update plain relaxed atomics (no locks,
/// no allocation — the campaign hot path is untouched) and the HTTP
/// server thread reads consistent-enough snapshots whenever a scrape
/// arrives. The tracker is a pure observer — nothing it computes feeds
/// back into run scheduling or results, so the 1-vs-8-thread
/// byte-determinism gates cannot be affected by its presence.
///
/// Throughput is a time-decayed EWMA over run completion inter-arrival
/// times (tau = 5 s), updated lock-free with a CAS loop; the ETA is
/// remaining / EWMA rate, falling back to the whole-campaign mean rate
/// until the EWMA has warmed up.
class ProgressTracker {
 public:
  /// Point-in-time copy of one cell's counters.
  struct CellSnapshot {
    std::string key;  ///< cell_key() of the cell
    std::size_t total = 0;
    std::size_t completed = 0;
    std::size_t ok = 0;
    std::size_t violations = 0;
    std::size_t quarantined = 0;
  };

  /// Point-in-time copy of the whole campaign's state. completed may
  /// lag the sum of per-cell counters by in-flight updates; every field
  /// is individually monotonic.
  struct Snapshot {
    std::string campaign;
    bool started = false;
    bool done = false;
    bool interrupted = false;
    std::size_t total_runs = 0;
    std::size_t completed = 0;
    std::size_t ok = 0;
    std::size_t violations = 0;
    std::size_t quarantined = 0;
    int workers = 0;
    int workers_busy = 0;
    double elapsed_seconds = 0.0;
    /// EWMA throughput (runs/s); 0 until the first completion interval.
    double runs_per_second = 0.0;
    /// Whole-campaign mean throughput (completed / elapsed).
    double runs_per_second_mean = 0.0;
    /// Estimated seconds to completion; negative = not yet estimable.
    double eta_seconds = -1.0;
    /// Which throughput produced eta_seconds: "ewma" (warm EWMA),
    /// "mean" (EWMA cold, whole-campaign mean used instead), or "none"
    /// (no rate yet; eta_seconds carries the -1 sentinel). Disambiguates
    /// an ETA that would otherwise silently switch estimators.
    const char* rate_source = "none";
    std::vector<CellSnapshot> cells;
  };

  ProgressTracker() = default;
  ProgressTracker(const ProgressTracker&) = delete;
  ProgressTracker& operator=(const ProgressTracker&) = delete;

  /// Arms the tracker for one campaign execution: allocates the
  /// per-cell counter table (the only allocation the tracker ever
  /// does) and starts the elapsed clock. Called by run_campaign.
  void begin(std::string campaign, const std::vector<CampaignCell>& cells,
             std::size_t repetitions, int workers);

  /// Worker-occupancy hooks, called per run from worker threads.
  void task_started() noexcept;

  /// Records one finished run. @p cell_slot indexes the cells vector
  /// handed to begin() (the post-sharding slot, not CampaignCell::index).
  void task_finished(std::size_t cell_slot, bool ok, bool quarantined) noexcept;

  /// Freezes the elapsed clock and marks the campaign done (or
  /// interrupted). Scrapes keep working after the campaign ends.
  void finish(bool interrupted) noexcept;

  [[nodiscard]] Snapshot snapshot() const;

  /// One byzrename.progress/1 JSON document (obs/schema.h), the body of
  /// GET /progress. Safe to call from any thread at any time.
  void write_progress_json(std::ostream& os) const;

  /// Campaign-level Prometheus families (runs completed/ok/violations/
  /// quarantined/pending, worker occupancy, throughput, ETA) for the
  /// ExpositionHub. Per-cell detail stays JSON-only: a million-run
  /// sweep's cell count is scrape-hostile label cardinality.
  void write_prometheus(std::ostream& os) const;

 private:
  struct CellCounters {
    std::string key;
    std::size_t total = 0;
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> violations{0};
    std::atomic<std::size_t> quarantined{0};
  };

  [[nodiscard]] double elapsed_seconds_now() const noexcept;

  std::string campaign_;
  std::unique_ptr<CellCounters[]> cells_;
  std::size_t cell_count_ = 0;
  std::size_t total_runs_ = 0;
  int workers_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> interrupted_{false};
  std::atomic<int> busy_workers_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> ok_{0};
  std::atomic<std::size_t> violations_{0};
  std::atomic<std::size_t> quarantined_{0};
  /// steady_clock epochs in nanoseconds; 0 = unset.
  std::atomic<std::int64_t> start_ns_{0};
  std::atomic<std::int64_t> end_ns_{0};
  std::atomic<std::int64_t> last_finish_ns_{0};
  /// Bit pattern of the EWMA rate double, CAS-updated on completion.
  std::atomic<std::uint64_t> ewma_rate_bits_{0};
};

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_PROGRESS_H
