#include "exp/executor.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace byzrename::exp {

namespace {

struct WorkerDeque {
  std::mutex mutex;
  std::deque<std::size_t> tasks;

  std::optional<std::size_t> pop_front() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return std::nullopt;
    const std::size_t task = tasks.front();
    tasks.pop_front();
    return task;
  }

  std::optional<std::size_t> steal_back() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return std::nullopt;
    const std::size_t task = tasks.back();
    tasks.pop_back();
    return task;
  }
};

}  // namespace

Executor::Executor(int threads) : threads_(threads) {
  if (threads_ < 1) {
    const unsigned hardware = std::thread::hardware_concurrency();
    threads_ = hardware > 0 ? static_cast<int>(hardware) : 1;
  }
}

Executor::Stats Executor::run(std::size_t count, const std::function<void(std::size_t)>& task) {
  cancelled_.store(false, std::memory_order_relaxed);
  Stats stats;
  if (count == 0) return stats;

  const std::size_t workers =
      std::min(static_cast<std::size_t>(threads_), count);
  std::vector<WorkerDeque> deques(workers);
  // Contiguous blocks: worker w starts at its own slice, so with no
  // stealing (threads=1, or uniform task durations) execution order is
  // simply 0..count-1 and neighboring tasks share a worker.
  for (std::size_t i = 0; i < count; ++i) {
    deques[i * workers / count].tasks.push_back(i);
  }

  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> stolen{0};

  const auto worker_loop = [&](std::size_t self) {
    while (!cancelled()) {
      std::optional<std::size_t> next = deques[self].pop_front();
      if (!next.has_value()) {
        // Sweep victims round-robin from our right-hand neighbor; one
        // full empty sweep means the batch is drained (tasks are never
        // re-enqueued, so emptiness is stable per deque).
        for (std::size_t offset = 1; offset < workers && !next.has_value(); ++offset) {
          next = deques[(self + offset) % workers].steal_back();
          if (next.has_value()) stolen.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!next.has_value()) return;
      task(*next);
      executed.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (workers == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_loop, w);
    for (std::thread& thread : pool) thread.join();
  }

  stats.executed = executed.load(std::memory_order_relaxed);
  stats.stolen = stolen.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace byzrename::exp
