#ifndef BYZRENAME_EXP_CAMPAIGN_IO_H
#define BYZRENAME_EXP_CAMPAIGN_IO_H

#include <iosfwd>

#include "exp/campaign.h"

namespace byzrename::exp {

/// Writes one byzrename.campaign/1 line per cell of @p result, in cell
/// order. Every emitted field is deterministic — derived from counters
/// and the spec, never from wall clocks — so the byte stream is
/// identical at any thread count and the determinism CI gate can `cmp`
/// two files outright. Field reference: obs/schema.h, docs/CAMPAIGNS.md.
void write_campaign_cells(std::ostream& os, const CampaignSpec& spec,
                          const CampaignResult& result);

/// Writes the single byzrename.campaign-summary/1 line: totals plus the
/// volatile execution facts (wall clock, threads, steals). Kept a
/// separate schema precisely because it is NOT deterministic.
void write_campaign_summary(std::ostream& os, const CampaignSpec& spec,
                            const CampaignResult& result);

/// Human-readable per-cell table plus a closing summary line, for the
/// campaign CLI's default (non-quiet) output.
void print_campaign_table(std::ostream& os, const CampaignResult& result);

/// Writes one byzrename.profile/1 kind-"cell" line per cell of @p
/// result, in cell order. No-op unless the campaign ran with
/// CampaignOptions::profile. Count-based fields are deterministic at
/// any thread count; wall/CPU/hardware counters ride inside each node's
/// `volatile` object (obs/schema.h has the strip recipe).
void write_campaign_profiles(std::ostream& os, const CampaignSpec& spec,
                             const CampaignResult& result);

}  // namespace byzrename::exp

#endif  // BYZRENAME_EXP_CAMPAIGN_IO_H
