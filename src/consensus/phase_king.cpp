#include "consensus/phase_king.h"

#include <map>
#include <stdexcept>

namespace byzrename::consensus {

using sim::Delivery;
using sim::Inbox;
using sim::Outbox;
using sim::Round;
using sim::WordMsg;

PhaseKingInstance::PhaseKingInstance(sim::SystemParams params, std::int64_t initial)
    : params_(params), value_(initial) {
  if (params.n <= 4 * params.t) {
    throw std::invalid_argument("PhaseKingInstance: simple king variant requires N > 4t");
  }
}

void PhaseKingInstance::on_round_a(const std::vector<std::int64_t>& received) {
  std::map<std::int64_t, int> counts;
  for (const std::int64_t v : received) counts[v] += 1;
  majority_ = kBottom;
  majority_count_ = 0;
  for (const auto& [v, count] : counts) {  // ascending order: smallest value wins ties
    if (count > majority_count_) {
      majority_ = v;
      majority_count_ = count;
    }
  }
  // Tentatively adopt the plurality so the king's round-B broadcast is
  // its round-A plurality, as the protocol requires.
  value_ = majority_;
}

void PhaseKingInstance::on_round_b(std::optional<std::int64_t> king_value) {
  if (majority_count_ >= params_.n - params_.t) {
    value_ = majority_;  // strong count: stick with the plurality
  } else if (king_value.has_value()) {
    value_ = *king_value;
  }
  // Silent king: keep the plurality adopted in round A; a silent king is
  // faulty and a later correct king's phase will align everyone.
}

PhaseKingProcess::PhaseKingProcess(sim::SystemParams params, sim::ProcessIndex my_index,
                                   std::int64_t initial)
    : params_(params), my_index_(my_index), instance_(params, initial) {}

bool PhaseKingProcess::done() const { return last_round_ >= total_rounds(params_); }

void PhaseKingProcess::on_send(Round round, Outbox& out) {
  if (round > total_rounds(params_)) return;
  const int phase = (round - 1) / 2;
  const bool is_round_a = (round - 1) % 2 == 0;
  if (is_round_a) {
    out.broadcast(WordMsg{round, {instance_.value()}});
  } else if (my_index_ == phase) {
    out.broadcast(WordMsg{round, {instance_.value()}});
  }
}

void PhaseKingProcess::on_receive(Round round, const Inbox& inbox) {
  last_round_ = round;
  if (round > total_rounds(params_)) return;
  const int phase = (round - 1) / 2;
  const bool is_round_a = (round - 1) % 2 == 0;

  if (is_round_a) {
    // One value per link; link label == sender index in this model.
    std::map<sim::LinkIndex, std::int64_t> per_link;
    for (const Delivery& d : inbox) {
      const auto* msg = std::get_if<WordMsg>(&*d.payload);
      if (msg == nullptr || msg->tag != round || msg->words.size() != 1) continue;
      per_link.emplace(d.link, msg->words[0]);
    }
    std::vector<std::int64_t> received;
    received.reserve(per_link.size());
    for (const auto& [link, v] : per_link) received.push_back(v);
    instance_.on_round_a(received);
  } else {
    std::optional<std::int64_t> king_value;
    for (const Delivery& d : inbox) {
      if (d.link != phase) continue;  // only the phase king's link counts
      const auto* msg = std::get_if<WordMsg>(&*d.payload);
      if (msg == nullptr || msg->tag != round || msg->words.size() != 1) continue;
      king_value = msg->words[0];
      break;
    }
    instance_.on_round_b(king_value);
    // After the final phase the instance value is the decision;
    // decided_value() reports it once done() is true.
  }
}

}  // namespace byzrename::consensus
