#ifndef BYZRENAME_CONSENSUS_PHASE_KING_H
#define BYZRENAME_CONSENSUS_PHASE_KING_H

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::consensus {

/// One instance of multivalued phase-king consensus (simple king variant,
/// Berman-Garay lineage), tolerating t < N/4 and running t+1 phases of
/// two rounds each.
///
/// The paper cites consensus-based renaming as the "obvious" solution it
/// improves on: consensus needs a linear number of rounds (t+1 phases
/// here, Omega(t) in general by Dolev-Strong), while Alg. 1 renames in
/// O(log t) steps. This substrate powers the consensus renaming baseline
/// so bench_t7 can measure that gap. Like every consensus protocol it
/// presupposes sender-authenticated links (scramble_links == false).
///
/// This class is a pure state machine: the owner feeds it the per-round
/// values it extracted from the wire, so N instances can share one
/// physical message per round (the renaming baseline does exactly that).
class PhaseKingInstance {
 public:
  /// Absent/unknown value marker.
  static constexpr std::int64_t kBottom = std::numeric_limits<std::int64_t>::min();

  PhaseKingInstance(sim::SystemParams params, std::int64_t initial);

  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

  /// Consumes the round-A values (one entry per process that sent a
  /// well-formed vector; missing senders simply absent). Computes the
  /// plurality candidate, smallest value winning ties.
  void on_round_a(const std::vector<std::int64_t>& received);

  /// Consumes the king's round-B value (nullopt if the king was silent or
  /// malformed): keep the plurality when it had a strong count, else
  /// adopt the king's value.
  void on_round_b(std::optional<std::int64_t> king_value);

 private:
  sim::SystemParams params_;
  std::int64_t value_;
  std::int64_t majority_ = kBottom;
  int majority_count_ = 0;
};

/// A standalone process behavior running exactly one phase-king instance;
/// used by the substrate tests. Rounds 1..2(t+1): phase k occupies rounds
/// 2k+1 (all-to-all value exchange) and 2k+2 (king k's broadcast).
class PhaseKingProcess final : public sim::ProcessBehavior {
 public:
  PhaseKingProcess(sim::SystemParams params, sim::ProcessIndex my_index, std::int64_t initial);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override;

  [[nodiscard]] std::int64_t decided_value() const noexcept { return instance_.value(); }

  /// Total rounds this configuration runs: 2(t+1).
  [[nodiscard]] static int total_rounds(const sim::SystemParams& params) noexcept {
    return 2 * (params.t + 1);
  }

 private:
  sim::SystemParams params_;
  sim::ProcessIndex my_index_;
  PhaseKingInstance instance_;
  int last_round_ = 0;
};

}  // namespace byzrename::consensus

#endif  // BYZRENAME_CONSENSUS_PHASE_KING_H
