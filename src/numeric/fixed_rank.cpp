#include "numeric/fixed_rank.h"

namespace byzrename::numeric {

namespace {

/// Stops the scale derivation once S can no longer fit a convertible
/// width; keeps user-supplied iteration counts from driving a pointless
/// big-integer power loop.
constexpr std::size_t kScaleBitCap = 64 * kFixedRankLimbs;

/// Schoolbook a(aw limbs) * b(bw limbs) -> r (aw+bw limbs, zeroed here).
void mul_mag(limb_t* r, const limb_t* a, int aw, const limb_t* b, int bw) noexcept {
  for (int i = 0; i < aw + bw; ++i) r[i] = 0;
  for (int i = 0; i < aw; ++i) {
    limb_t carry = 0;
    for (int j = 0; j < bw; ++j) {
      const uwide_t p = static_cast<uwide_t>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<limb_t>(p);
      carry = static_cast<limb_t>(p >> 64);
    }
    r[i + bw] = carry;
  }
}

int significant_words(const limb_t* v, int w) noexcept {
  while (w > 0 && v[w - 1] == 0) --w;
  return w;
}

}  // namespace

FixedSpec derive_fixed_spec(int n, int t, int iterations) {
  FixedSpec spec;
  spec.n = n;
  spec.t = t;
  spec.iterations = iterations < 0 ? 0 : iterations;
  if (n < 1 || t < 0 || (t > 0 && n - 2 * t - 1 < 0)) return spec;
  spec.select_count = t > 0 ? static_cast<std::int64_t>((n - 2 * t - 1) / t) + 1
                            : static_cast<std::int64_t>(n);

  BigInt power(1);
  for (int i = 0; i < spec.iterations; ++i) {
    power *= BigInt(spec.select_count);
    if (power.bit_length() > kScaleBitCap) return spec;  // oracle-only instance
  }
  spec.scale_big = BigInt(3 * (static_cast<std::int64_t>(n) + t)) * power;
  spec.scale_bits = spec.scale_big.bit_length();
  if (spec.scale_bits + kFixedHeadroomBits + 1 > kScaleBitCap) return spec;

  spec.width = std::max(
      2, static_cast<int>((spec.scale_bits + kFixedHeadroomBits + 1 + 63) / 64));
  spec.scale_limbs = spec.scale_big.magnitude_words64(spec.scale.data(), kFixedRankLimbs);

  // delta * S = S + S/(3(N+t)) = S + c^I: the integer the validity
  // check's gap comparison uses (is_valid_ranks over the fixed lane).
  std::array<limb_t, kFixedRankLimbs> power_words{};
  power.magnitude_words64(power_words.data(), kFixedRankLimbs);
  std::array<limb_t, kFixedRankLimbs> sum{};
  limb_add_n(sum.data(), spec.scale.data(), power_words.data(), kFixedRankLimbs);
  for (int i = 0; i < kFixedRankLimbs; ++i) spec.delta_scaled[i] = sum[i];
  spec.delta_scaled[kFixedRankLimbs] = 0;

  spec.ok = true;
  return spec;
}

FixedConvert rational_to_fixed(const Rational& value, const FixedSpec& spec, limb_t* out) {
  // Denominator must divide S exactly; m = S / den is the grid multiplier.
  limb_t den[kFixedRankLimbs];
  const int den_words = value.denominator().magnitude_words64(den, kFixedRankLimbs);
  if (den_words < 0) return FixedConvert::kOffGrid;  // den > S, cannot divide it

  limb_t multiplier[kFixedRankLimbs];
  int multiplier_words;
  if (den_words <= 1) {
    const limb_t d = den_words == 0 ? 1 : den[0];  // canonical den is never 0
    if (limb_divrem_1(multiplier, spec.scale.data(), spec.scale_limbs, d) != 0) {
      return FixedConvert::kOffGrid;
    }
    multiplier_words = significant_words(multiplier, spec.scale_limbs);
  } else {
    BigInt quotient;
    BigInt remainder;
    BigInt::div_mod(spec.scale_big, value.denominator(), quotient, remainder);
    if (!remainder.is_zero()) return FixedConvert::kOffGrid;
    multiplier_words = quotient.magnitude_words64(multiplier, kFixedRankLimbs);
  }

  limb_t num[kFixedRankLimbs];
  const int num_words = value.numerator().magnitude_words64(num, kFixedRankLimbs);
  if (num_words < 0) return FixedConvert::kOverflow;

  // Hot path: honest traffic has one-limb numerators and multipliers
  // (the §IV-D budget keeps S itself small for moderate N), so the
  // scaled numerator is a single 64x64 multiply.
  if (num_words <= 1 && multiplier_words <= 1) {
    const uwide_t p = static_cast<uwide_t>(num_words == 0 ? 0 : num[0]) *
                      (multiplier_words == 0 ? 0 : multiplier[0]);
    const limb_t hi = static_cast<limb_t>(p >> 64);
    if (spec.width == 2 && (hi >> 63) != 0) return FixedConvert::kOverflow;
    limb_t product2[kFixedRankLimbs] = {static_cast<limb_t>(p), hi, 0, 0};
    if (value.is_negative()) {
      limb_neg(out, product2, spec.width);
    } else {
      for (int i = 0; i < spec.width; ++i) out[i] = product2[i];
    }
    return FixedConvert::kOk;
  }

  limb_t product[2 * kFixedRankLimbs];
  mul_mag(product, num, num_words, multiplier, multiplier_words);
  // Reject magnitudes >= 2^(64*width - 1): the symmetric two's-complement
  // range, so sign handling below cannot overflow.
  const int product_words = significant_words(product, num_words + multiplier_words);
  if (product_words > spec.width) return FixedConvert::kOverflow;
  for (int i = product_words; i < spec.width; ++i) product[i] = 0;
  if ((product[spec.width - 1] >> 63) != 0) return FixedConvert::kOverflow;

  if (value.is_negative()) {
    limb_neg(out, product, spec.width);
  } else {
    for (int i = 0; i < spec.width; ++i) out[i] = product[i];
  }
  return FixedConvert::kOk;
}

Rational fixed_to_rational(const limb_t* num, int width, const BigInt& scale) {
  limb_t magnitude[kFixedRankLimbs];
  const bool negative = limb_is_negative(num, width);
  if (negative) {
    limb_neg(magnitude, num, width);
  } else {
    for (int i = 0; i < width; ++i) magnitude[i] = num[i];
  }
  return Rational(BigInt::from_words64(magnitude, width, negative), scale);
}

}  // namespace byzrename::numeric
