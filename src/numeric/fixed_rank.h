#ifndef BYZRENAME_NUMERIC_FIXED_RANK_H
#define BYZRENAME_NUMERIC_FIXED_RANK_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace byzrename::numeric {

__extension__ typedef unsigned __int128 uwide_t;

/// 64-bit limb of a fixed-width rank value. Values are little-endian
/// two's-complement words, so negation/compare/add work without a sign
/// flag and a sorted SoA column can be scanned branch-free.
using limb_t = std::uint64_t;

/// Widest fixed rank the kernels support: 256 bits of two's complement.
/// Section IV-D of the paper bounds every honest rank numerator well
/// below this for any (N, t) the simulator accepts; instances whose
/// derived budget would not fit simply run the exact-Rational oracle.
inline constexpr int kFixedRankLimbs = 4;

/// Accumulator width: one extra limb absorbs the carry of summing up to
/// 2^12 full-width ballot values (ballots are padded to exactly N).
inline constexpr int kFixedAccLimbs = kFixedRankLimbs + 1;

/// Headroom kept between the scale's bit length and the value width so
/// that initial ranks (ids reach 1e12 in the harness, ~2^40) and every
/// adversarial integer shift the strategy zoo produces stay convertible.
inline constexpr std::size_t kFixedHeadroomBits = 48;

// ---------------------------------------------------------------------------
// Flat mpn-style kernels. All operate on `w` little-endian 64-bit limbs
// through raw pointers: no virtual dispatch, no allocation, no hidden
// state. `w` is tiny (2..kFixedAccLimbs) so the loops fully unroll.
// ---------------------------------------------------------------------------

/// r = a + b (two's complement, wrapping); returns the carry-out.
inline limb_t limb_add_n(limb_t* r, const limb_t* a, const limb_t* b, int w) noexcept {
  limb_t carry = 0;
  for (int i = 0; i < w; ++i) {
    const uwide_t s = static_cast<uwide_t>(a[i]) + b[i] + carry;
    r[i] = static_cast<limb_t>(s);
    carry = static_cast<limb_t>(s >> 64);
  }
  return carry;
}

/// r = a - b (two's complement, wrapping); returns the borrow-out.
inline limb_t limb_sub_n(limb_t* r, const limb_t* a, const limb_t* b, int w) noexcept {
  limb_t borrow = 0;
  for (int i = 0; i < w; ++i) {
    const uwide_t d = static_cast<uwide_t>(a[i]) - b[i] - borrow;
    r[i] = static_cast<limb_t>(d);
    borrow = static_cast<limb_t>((d >> 64) & 1);
  }
  return borrow;
}

/// Unsigned lexicographic compare: -1, 0 or +1.
inline int limb_cmp(const limb_t* a, const limb_t* b, int w) noexcept {
  for (int i = w - 1; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// r = a * m (unsigned); returns the carry-out limb.
inline limb_t limb_mul_1(limb_t* r, const limb_t* a, int w, limb_t m) noexcept {
  limb_t carry = 0;
  for (int i = 0; i < w; ++i) {
    const uwide_t p = static_cast<uwide_t>(a[i]) * m + carry;
    r[i] = static_cast<limb_t>(p);
    carry = static_cast<limb_t>(p >> 64);
  }
  return carry;
}

/// q = a / d, returns a % d (unsigned, d != 0).
inline limb_t limb_divrem_1(limb_t* q, const limb_t* a, int w, limb_t d) noexcept {
  limb_t rem = 0;
  for (int i = w - 1; i >= 0; --i) {
    const uwide_t cur = (static_cast<uwide_t>(rem) << 64) | a[i];
    q[i] = static_cast<limb_t>(cur / d);
    rem = static_cast<limb_t>(cur % d);
  }
  return rem;
}

/// r = -a (two's complement).
inline void limb_neg(limb_t* r, const limb_t* a, int w) noexcept {
  limb_t carry = 1;
  for (int i = 0; i < w; ++i) {
    const uwide_t s = static_cast<uwide_t>(~a[i]) + carry;
    r[i] = static_cast<limb_t>(s);
    carry = static_cast<limb_t>(s >> 64);
  }
}

/// Sign bit of a two's-complement value.
inline bool limb_is_negative(const limb_t* v, int w) noexcept {
  return (v[w - 1] >> 63) != 0;
}

/// Widens a two's-complement value in place from from_w to to_w limbs.
inline void limb_sign_extend(limb_t* v, int from_w, int to_w) noexcept {
  const limb_t fill = limb_is_negative(v, from_w) ? ~limb_t{0} : limb_t{0};
  for (int i = from_w; i < to_w; ++i) v[i] = fill;
}

/// Signed three-way compare of two two's-complement values: flipping the
/// top limb's sign bit maps signed order onto unsigned lexicographic
/// order (offset-binary), so one branchless scan decides.
inline int limb_cmp_signed(const limb_t* a, const limb_t* b, int w) noexcept {
  constexpr limb_t kBias = limb_t{1} << 63;
  const limb_t ahi = a[w - 1] ^ kBias;
  const limb_t bhi = b[w - 1] ^ kBias;
  if (ahi != bhi) return ahi < bhi ? -1 : 1;
  return limb_cmp(a, b, w - 1);
}

// ---------------------------------------------------------------------------
// Branch-free small sort for 128-bit keys.
// ---------------------------------------------------------------------------

/// Odd-even transposition network over 128-bit keys: every pass is a
/// data-independent sweep of compare-exchanges the compiler lowers to
/// conditional moves (no mispredictable branches), which beats
/// introsort's bookkeeping for the ballot sizes small instances produce.
inline void sort_u128_network(uwide_t* v, int count) noexcept {
  for (int pass = 0; pass < count; ++pass) {
    for (int i = pass & 1; i + 1 < count; i += 2) {
      const uwide_t lo = v[i] < v[i + 1] ? v[i] : v[i + 1];
      const uwide_t hi = v[i] < v[i + 1] ? v[i + 1] : v[i];
      v[i] = lo;
      v[i + 1] = hi;
    }
  }
}

/// Count at or below which the transposition network wins over std::sort.
inline constexpr int kNetworkSortMax = 32;

inline void sort_u128(uwide_t* v, int count) {
  if (count <= kNetworkSortMax) {
    sort_u128_network(v, count);
  } else {
    std::sort(v, v + count);
  }
}

// ---------------------------------------------------------------------------
// Per-instance fixed-point spec.
// ---------------------------------------------------------------------------

/// Conversion outcome for Rational -> fixed.
enum class FixedConvert {
  kOk,
  kOffGrid,   ///< denominator does not divide the instance scale
  kOverflow,  ///< scaled numerator exceeds the fixed width
};

/// Derived fixed-point parameters of one protocol instance.
///
/// Every honest rank the voting phase of Alg. 1 (or the AA substrate)
/// can ever hold is an integer multiple of 1 / S where
///
///   S = 3(N+t) * c^I,   c = |select_t of the trimmed ballot|
///
/// because initial ranks are integer multiples of delta =
/// (3(N+t)+1) / (3(N+t)), ballots are padded to exactly N entries, so
/// select_t always picks the constant count c = floor((N-2t-1)/t)+1
/// (all of N when t == 0), and each of the I averaging iterations
/// divides a sum of c grid values by c. Fixed ranks therefore store the
/// integer numerator over the common denominator S in `width` 64-bit
/// two's-complement limbs; `width` adds kFixedHeadroomBits above S's
/// bit length so initial ranks and integer-shifted Byzantine values
/// convert too. Values off that grid (adversarial denominators) fall
/// back per ballot to the exact-Rational oracle, and instances whose S
/// does not fit kFixedRankLimbs run entirely on the oracle (ok ==
/// false). This is the constructive instantiation of the paper's
/// Section IV-D value-size envelope: honest numerators stay within
/// log2(S) + log2((N+t)*delta) bits.
struct FixedSpec {
  bool ok = false;
  int n = 0;
  int t = 0;
  int iterations = 0;
  std::int64_t select_count = 0;  ///< c; always >= 1 when ok
  int width = 0;                  ///< limbs per stored value, 2..kFixedRankLimbs
  int scale_limbs = 0;            ///< significant limbs of S
  std::size_t scale_bits = 0;     ///< bit length of S
  std::array<limb_t, kFixedRankLimbs> scale{};        ///< S, little-endian
  std::array<limb_t, kFixedAccLimbs> delta_scaled{};  ///< delta * S = S + c^I
  BigInt scale_big;               ///< S for the slow/oracle paths

  /// Exclusive magnitude bound of a convertible scaled numerator:
  /// 2^(64*width - 1). Conversions reject anything at or beyond it.
  [[nodiscard]] std::size_t max_scaled_bits() const noexcept {
    return static_cast<std::size_t>(64 * width) - 1;
  }
};

/// Derives the spec for an instance; iterations < 0 is treated as 0.
/// Returns ok == false (oracle-only instance) when n/t are out of range
/// or S would not fit the supported width.
[[nodiscard]] FixedSpec derive_fixed_spec(int n, int t, int iterations);

/// Converts an exact rational to `spec.width` two's-complement limbs
/// over denominator S. kOffGrid if den does not divide S, kOverflow if
/// |num * (S/den)| >= 2^(64*width - 1). Heap-free on every input whose
/// numerator and denominator fit 128 bits (all honest traffic).
[[nodiscard]] FixedConvert rational_to_fixed(const Rational& value, const FixedSpec& spec,
                                             limb_t* out);

/// Exact inverse: materializes num/S as a canonical (reduced) Rational.
[[nodiscard]] Rational fixed_to_rational(const limb_t* num, int width, const BigInt& scale);

}  // namespace byzrename::numeric

#endif  // BYZRENAME_NUMERIC_FIXED_RANK_H
