#ifndef BYZRENAME_NUMERIC_RATIONAL_H
#define BYZRENAME_NUMERIC_RATIONAL_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "numeric/bigint.h"

namespace byzrename::numeric {

/// Exact rational number with arbitrary-precision numerator/denominator.
///
/// Invariants: the denominator is strictly positive, gcd(num, den) == 1,
/// and zero is canonically 0/1. Every operation restores the invariants.
///
/// Ranks in the renaming algorithm are rationals of the form
/// k * (1 + 1/(3(N+t))) repeatedly averaged over select_t subsets; the
/// correctness proofs are exact statements about these values, so the
/// library computes with them exactly.
class Rational {
 public:
  /// Constructs zero.
  Rational() : den_(1) {}

  /// Constructs an integer value.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT: deliberate implicit

  Rational(BigInt numerator, BigInt denominator);

  /// num / den as built-in integers.
  static Rational of(std::int64_t numerator, std::int64_t denominator);

  [[nodiscard]] const BigInt& numerator() const noexcept { return num_; }
  [[nodiscard]] const BigInt& denominator() const noexcept { return den_; }

  [[nodiscard]] bool is_zero() const noexcept { return num_.is_zero(); }
  [[nodiscard]] bool is_negative() const noexcept { return num_.is_negative(); }
  [[nodiscard]] bool is_integer() const noexcept { return den_ == BigInt(1); }

  /// Total bits needed to represent numerator and denominator; used to
  /// enforce the wire-size bound on Byzantine-supplied values.
  [[nodiscard]] std::size_t encoded_bits() const noexcept {
    return num_.bit_length() + den_.bit_length() + 2;
  }

  [[nodiscard]] int compare(const Rational& other) const;

  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational abs() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws std::domain_error on division by zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& a, const Rational& b) { return a.compare(b) == 0; }
  friend bool operator!=(const Rational& a, const Rational& b) { return a.compare(b) != 0; }
  friend bool operator<(const Rational& a, const Rational& b) { return a.compare(b) < 0; }
  friend bool operator<=(const Rational& a, const Rational& b) { return a.compare(b) <= 0; }
  friend bool operator>(const Rational& a, const Rational& b) { return a.compare(b) > 0; }
  friend bool operator>=(const Rational& a, const Rational& b) { return a.compare(b) >= 0; }

  /// Nearest integer, halves away from zero (matches the paper's Round()).
  [[nodiscard]] BigInt round() const;

  /// Largest integer <= value.
  [[nodiscard]] BigInt floor() const;

  /// Best-effort double (may lose precision; for reporting only).
  [[nodiscard]] double to_double() const noexcept;

  /// "num/den" (or just "num" for integers).
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Rational& v);

 private:
  BigInt num_;
  BigInt den_;  // > 0 always

  void normalize();
};

}  // namespace byzrename::numeric

#endif  // BYZRENAME_NUMERIC_RATIONAL_H
