#include "numeric/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace byzrename::numeric {

namespace {

constexpr std::uint64_t kLimbBase = 1ull << 32;

}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Convert through uint64 so INT64_MIN negates safely.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1 : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<Limb>(magnitude & 0xFFFFFFFFu));
    magnitude >>= kLimbBits;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt::from_string: empty input");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
    if (pos == text.size()) throw std::invalid_argument("BigInt::from_string: sign only");
  }
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt::from_string: non-digit");
    result *= ten;
    result += BigInt(c - '0');
  }
  result.negative_ = negative && !result.is_zero();
  return result;
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  Limb top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

int BigInt::compare_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::compare(const BigInt& other) const noexcept {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  const int mag = compare_magnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

bool BigInt::fits_int64() const noexcept {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  const std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << kLimbBits) | limbs_[0];
  const std::uint64_t limit =
      negative_ ? (1ull << 63) : (1ull << 63) - 1;
  return magnitude <= limit;
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64: out of range");
  std::uint64_t magnitude = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    magnitude = (magnitude << kLimbBits) | limbs_[i];
  }
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const noexcept {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * static_cast<double>(kLimbBase) + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -value : value;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

std::vector<BigInt::Limb> BigInt::add_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  const std::vector<Limb>& longer = a.size() >= b.size() ? a : b;
  const std::vector<Limb>& shorter = a.size() >= b.size() ? b : a;
  std::vector<Limb> out(longer.size());
  WideLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    WideLimb sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out[i] = static_cast<Limb>(sum & 0xFFFFFFFFu);
    carry = sum >> kLimbBits;
  }
  if (carry != 0) out.push_back(static_cast<Limb>(carry));
  return out;
}

std::vector<BigInt::Limb> BigInt::sub_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  std::vector<Limb> out(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= static_cast<std::int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<Limb>(diff);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    WideLimb carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      WideLimb cur = static_cast<WideLimb>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xFFFFFFFFu);
      carry = cur >> kLimbBits;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      WideLimb cur = carry + out[k];
      out[k] = static_cast<Limb>(cur & 0xFFFFFFFFu);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// Knuth TAOCP vol. 2, Algorithm D, specialized to 32-bit limbs.
void BigInt::div_mod_magnitude(const std::vector<Limb>& num, const std::vector<Limb>& den,
                               std::vector<Limb>& quot, std::vector<Limb>& rem) {
  quot.clear();
  rem.clear();
  if (den.empty()) throw std::domain_error("BigInt: division by zero");
  if (compare_magnitude(num, den) < 0) {
    rem = num;
    return;
  }
  if (den.size() == 1) {
    // Short division by a single limb.
    const WideLimb d = den[0];
    quot.assign(num.size(), 0);
    WideLimb carry = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      WideLimb cur = (carry << kLimbBits) | num[i];
      quot[i] = static_cast<Limb>(cur / d);
      carry = cur % d;
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    if (carry != 0) rem.push_back(static_cast<Limb>(carry));
    return;
  }

  // D1: normalize so the divisor's top limb has its high bit set.
  unsigned shift = 0;
  {
    Limb top = den.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shifted_left = [](const std::vector<Limb>& v, unsigned s) {
    std::vector<Limb> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= static_cast<Limb>((static_cast<WideLimb>(v[i]) << s) & 0xFFFFFFFFu);
      if (s != 0) out[i + 1] = static_cast<Limb>(static_cast<WideLimb>(v[i]) >> (kLimbBits - s));
    }
    return out;
  };
  std::vector<Limb> u = shifted_left(num, shift);  // size m+n+1 (keeps the extra top limb)
  std::vector<Limb> v = shifted_left(den, shift);
  while (!v.empty() && v.back() == 0) v.pop_back();
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n - 1;
  quot.assign(m + 1, 0);

  const WideLimb v_top = v[n - 1];
  const WideLimb v_second = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate the quotient limb.
    WideLimb numerator = (static_cast<WideLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
    WideLimb q_hat = numerator / v_top;
    WideLimb r_hat = numerator % v_top;
    while (q_hat >= kLimbBase ||
           q_hat * v_second > ((r_hat << kLimbBits) | u[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kLimbBase) break;
    }
    // D4: multiply and subtract.
    std::int64_t borrow = 0;
    WideLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      WideLimb product = q_hat * v[i] + carry;
      carry = product >> kLimbBits;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFFu) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t top_diff =
        static_cast<std::int64_t>(u[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // D6: the estimate was one too large; add the divisor back.
      top_diff += static_cast<std::int64_t>(kLimbBase);
      --q_hat;
      WideLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        WideLimb sum = static_cast<WideLimb>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<Limb>(sum & 0xFFFFFFFFu);
        add_carry = sum >> kLimbBits;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xFFFFFFFF;
    }
    u[j + n] = static_cast<Limb>(top_diff);
    quot[j] = static_cast<Limb>(q_hat);
  }
  while (!quot.empty() && quot.back() == 0) quot.pop_back();

  // D8: denormalize the remainder.
  rem.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    for (std::size_t i = 0; i < rem.size(); ++i) {
      rem[i] >>= shift;
      if (i + 1 < u.size()) {
        rem[i] |= static_cast<Limb>((static_cast<WideLimb>(u[i + 1]) << (kLimbBits - shift)) &
                                    0xFFFFFFFFu);
      }
    }
  }
  while (!rem.empty() && rem.back() == 0) rem.pop_back();
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else if (compare_magnitude(limbs_, rhs.limbs_) >= 0) {
    limbs_ = sub_magnitude(limbs_, rhs.limbs_);
  } else {
    limbs_ = sub_magnitude(rhs.limbs_, limbs_);
    negative_ = rhs.negative_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  BigInt negated = rhs;
  if (!negated.is_zero()) negated.negative_ = !negated.negative_;
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  negative_ = negative_ != rhs.negative_;
  limbs_ = mul_magnitude(limbs_, rhs.limbs_);
  trim();
  return *this;
}

void BigInt::div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem) {
  std::vector<Limb> q;
  std::vector<Limb> r;
  div_mod_magnitude(num.limbs_, den.limbs_, q, r);
  quot.limbs_ = std::move(q);
  quot.negative_ = num.negative_ != den.negative_;
  quot.trim();
  rem.limbs_ = std::move(r);
  rem.negative_ = num.negative_;
  rem.trim();
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt quot;
  BigInt rem;
  div_mod(*this, rhs, quot, rem);
  *this = std::move(quot);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt quot;
  BigInt rem;
  div_mod(*this, rhs, quot, rem);
  *this = std::move(rem);
  return *this;
}

BigInt& BigInt::operator<<=(unsigned bits) {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  limbs_.insert(limbs_.begin(), limb_shift, 0);
  if (bit_shift != 0) {
    Limb carry = 0;
    for (std::size_t i = limb_shift; i < limbs_.size(); ++i) {
      const WideLimb cur = (static_cast<WideLimb>(limbs_[i]) << bit_shift) | carry;
      limbs_[i] = static_cast<Limb>(cur & 0xFFFFFFFFu);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    if (carry != 0) limbs_.push_back(carry);
  }
  return *this;
}

BigInt& BigInt::operator>>=(unsigned bits) {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  limbs_.erase(limbs_.begin(), limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      limbs_[i] >>= bit_shift;
      if (i + 1 < limbs_.size()) {
        limbs_[i] |= static_cast<Limb>(
            (static_cast<WideLimb>(limbs_[i + 1]) << (kLimbBits - bit_shift)) & 0xFFFFFFFFu);
      }
    }
  }
  trim();
  return *this;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt quot;
    BigInt rem;
    div_mod(a, b, quot, rem);
    a = std::move(b);
    b = std::move(rem);
  }
  return a;
}

std::vector<std::uint8_t> BigInt::magnitude_bytes() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(limbs_.size() * 4);
  for (const Limb limb : limbs_) {
    bytes.push_back(static_cast<std::uint8_t>(limb & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((limb >> 8) & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((limb >> 16) & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((limb >> 24) & 0xFF));
  }
  while (!bytes.empty() && bytes.back() == 0) bytes.pop_back();
  return bytes;
}

BigInt BigInt::from_magnitude_bytes(const std::vector<std::uint8_t>& bytes, bool negative) {
  BigInt value;
  value.limbs_.resize((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    value.limbs_[i / 4] |= static_cast<Limb>(bytes[i]) << (8 * (i % 4));
  }
  value.trim();
  value.negative_ = negative && !value.is_zero();
  return value;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Peel nine decimal digits at a time via short division by 10^9.
  std::string digits;
  BigInt value = abs();
  const BigInt chunk(1000000000);
  while (!value.is_zero()) {
    BigInt quot;
    BigInt rem;
    div_mod(value, chunk, quot, rem);
    std::uint32_t part = rem.limbs_.empty() ? 0 : rem.limbs_[0];
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + part % 10));
      part /= 10;
    }
    value = std::move(quot);
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) { return os << v.to_string(); }

}  // namespace byzrename::numeric
