#include "numeric/bigint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace byzrename::numeric {

namespace {

constexpr std::uint64_t kLimbBase = 1ull << 32;

// Portable 64x64->128 multiply for the small-value fast paths. GCC/Clang
// lower this to a single mulx/umulh pair; the __extension__ keeps
// -Wpedantic quiet about the non-ISO type.
__extension__ typedef unsigned __int128 u128;

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept {
  while (b != 0) {
    const std::uint64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Convert through uint64 so INT64_MIN negates safely.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1 : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<Limb>(magnitude & 0xFFFFFFFFu));
    magnitude >>= kLimbBits;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt::from_string: empty input");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
    if (pos == text.size()) throw std::invalid_argument("BigInt::from_string: sign only");
  }
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt::from_string: non-digit");
    result *= ten;
    result += BigInt(c - '0');
  }
  result.negative_ = negative && !result.is_zero();
  return result;
}

std::uint64_t BigInt::mag64() const noexcept {
  switch (limbs_.size()) {
    case 0:
      return 0;
    case 1:
      return limbs_[0];
    default:
      return (static_cast<std::uint64_t>(limbs_[1]) << kLimbBits) | limbs_[0];
  }
}

void BigInt::set_mag128(std::uint64_t lo, std::uint64_t hi) {
  limbs_.clear();
  const Limb parts[4] = {static_cast<Limb>(lo & 0xFFFFFFFFu), static_cast<Limb>(lo >> kLimbBits),
                         static_cast<Limb>(hi & 0xFFFFFFFFu), static_cast<Limb>(hi >> kLimbBits)};
  std::size_t count = 4;
  while (count > 0 && parts[count - 1] == 0) --count;
  for (std::size_t i = 0; i < count; ++i) limbs_.push_back(parts[i]);
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_mag_parts(std::uint64_t lo, std::uint64_t hi, bool negative) {
  BigInt value;
  value.set_mag128(lo, hi);
  value.negative_ = negative && !value.limbs_.empty();
  return value;
}

int BigInt::magnitude_words64(std::uint64_t* out, int max_words) const noexcept {
  const std::size_t words = (limbs_.size() + 1) / 2;
  if (words > static_cast<std::size_t>(max_words)) return -1;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t lo = limbs_[2 * w];
    const std::uint64_t hi = 2 * w + 1 < limbs_.size() ? limbs_[2 * w + 1] : 0;
    out[w] = lo | (hi << 32);
  }
  return static_cast<int>(words);
}

BigInt BigInt::from_words64(const std::uint64_t* words, int count, bool negative) {
  BigInt value;
  for (int w = 0; w < count; ++w) {
    value.limbs_.push_back(static_cast<Limb>(words[w] & 0xFFFFFFFFU));
    value.limbs_.push_back(static_cast<Limb>(words[w] >> 32));
  }
  value.trim();
  value.negative_ = negative && !value.limbs_.empty();
  return value;
}

unsigned BigInt::trailing_zero_bits() const noexcept {
  std::size_t i = 0;
  while (limbs_[i] == 0) ++i;
  return static_cast<unsigned>(i) * kLimbBits +
         static_cast<unsigned>(std::countr_zero(limbs_[i]));
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * kLimbBits +
         static_cast<std::size_t>(std::bit_width(limbs_.back()));
}

int BigInt::compare_magnitude(const LimbVec& a, const LimbVec& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::compare(const BigInt& other) const noexcept {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  const int mag = compare_magnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

bool BigInt::fits_int64() const noexcept {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  const std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << kLimbBits) | limbs_[0];
  const std::uint64_t limit =
      negative_ ? (1ull << 63) : (1ull << 63) - 1;
  return magnitude <= limit;
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64: out of range");
  const std::uint64_t magnitude = mag64();
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const noexcept {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * static_cast<double>(kLimbBase) + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -value : value;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

BigInt::LimbVec BigInt::add_magnitude(const LimbVec& a, const LimbVec& b) {
  const LimbVec& longer = a.size() >= b.size() ? a : b;
  const LimbVec& shorter = a.size() >= b.size() ? b : a;
  LimbVec out;
  out.resize(longer.size());
  WideLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    WideLimb sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out[i] = static_cast<Limb>(sum & 0xFFFFFFFFu);
    carry = sum >> kLimbBits;
  }
  if (carry != 0) out.push_back(static_cast<Limb>(carry));
  return out;
}

BigInt::LimbVec BigInt::sub_magnitude(const LimbVec& a, const LimbVec& b) {
  LimbVec out;
  out.resize(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= static_cast<std::int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<Limb>(diff);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt::LimbVec BigInt::mul_magnitude(const LimbVec& a, const LimbVec& b) {
  LimbVec out;
  if (a.empty() || b.empty()) return out;
  out.resize(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    WideLimb carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      WideLimb cur = static_cast<WideLimb>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xFFFFFFFFu);
      carry = cur >> kLimbBits;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      WideLimb cur = carry + out[k];
      out[k] = static_cast<Limb>(cur & 0xFFFFFFFFu);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// Knuth TAOCP vol. 2, Algorithm D, specialized to 32-bit limbs.
void BigInt::div_mod_magnitude(const LimbVec& num, const LimbVec& den, LimbVec& quot,
                               LimbVec& rem) {
  quot.clear();
  rem.clear();
  if (den.empty()) throw std::domain_error("BigInt: division by zero");
  if (compare_magnitude(num, den) < 0) {
    rem = num;
    return;
  }
  if (den.size() == 1) {
    // Short division by a single limb.
    const WideLimb d = den[0];
    quot.assign(num.size(), 0);
    WideLimb carry = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      WideLimb cur = (carry << kLimbBits) | num[i];
      quot[i] = static_cast<Limb>(cur / d);
      carry = cur % d;
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    if (carry != 0) rem.push_back(static_cast<Limb>(carry));
    return;
  }

  // D1: normalize so the divisor's top limb has its high bit set.
  unsigned shift = 0;
  {
    Limb top = den.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shifted_left = [](const LimbVec& v, unsigned s) {
    LimbVec out;
    out.resize(v.size() + 1);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= static_cast<Limb>((static_cast<WideLimb>(v[i]) << s) & 0xFFFFFFFFu);
      if (s != 0) out[i + 1] = static_cast<Limb>(static_cast<WideLimb>(v[i]) >> (kLimbBits - s));
    }
    return out;
  };
  LimbVec u = shifted_left(num, shift);  // size m+n+1 (keeps the extra top limb)
  LimbVec v = shifted_left(den, shift);
  while (!v.empty() && v.back() == 0) v.pop_back();
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n - 1;
  quot.assign(m + 1, 0);

  const WideLimb v_top = v[n - 1];
  const WideLimb v_second = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate the quotient limb.
    WideLimb numerator = (static_cast<WideLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
    WideLimb q_hat = numerator / v_top;
    WideLimb r_hat = numerator % v_top;
    while (q_hat >= kLimbBase ||
           q_hat * v_second > ((r_hat << kLimbBits) | u[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kLimbBase) break;
    }
    // D4: multiply and subtract.
    std::int64_t borrow = 0;
    WideLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      WideLimb product = q_hat * v[i] + carry;
      carry = product >> kLimbBits;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFFu) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t top_diff =
        static_cast<std::int64_t>(u[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // D6: the estimate was one too large; add the divisor back.
      top_diff += static_cast<std::int64_t>(kLimbBase);
      --q_hat;
      WideLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        WideLimb sum = static_cast<WideLimb>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<Limb>(sum & 0xFFFFFFFFu);
        add_carry = sum >> kLimbBits;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xFFFFFFFF;
    }
    u[j + n] = static_cast<Limb>(top_diff);
    quot[j] = static_cast<Limb>(q_hat);
  }
  while (!quot.empty() && quot.back() == 0) quot.pop_back();

  // D8: denormalize the remainder.
  rem.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    for (std::size_t i = 0; i < rem.size(); ++i) {
      rem[i] >>= shift;
      if (i + 1 < u.size()) {
        rem[i] |= static_cast<Limb>((static_cast<WideLimb>(u[i + 1]) << (kLimbBits - shift)) &
                                    0xFFFFFFFFu);
      }
    }
  }
  while (!rem.empty() && rem.back() == 0) rem.pop_back();
}

BigInt& BigInt::add_signed(const BigInt& rhs, bool rhs_negative) {
  // Fast path: both magnitudes fit a 64-bit word, so the whole signed
  // addition is one hardware add/sub plus a possible 65th carry bit.
  if (small() && rhs.small()) {
    const std::uint64_t a = mag64();
    const std::uint64_t b = rhs.mag64();
    if (negative_ == rhs_negative) {
      const std::uint64_t sum = a + b;
      set_mag128(sum, sum < a ? 1 : 0);
    } else if (a >= b) {
      set_mag128(a - b, 0);
    } else {
      set_mag128(b - a, 0);
      negative_ = rhs_negative;
    }
    if (limbs_.empty()) negative_ = false;
    return *this;
  }
  if (negative_ == rhs_negative) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else if (compare_magnitude(limbs_, rhs.limbs_) >= 0) {
    limbs_ = sub_magnitude(limbs_, rhs.limbs_);
  } else {
    limbs_ = sub_magnitude(rhs.limbs_, limbs_);
    negative_ = rhs_negative;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& rhs) { return add_signed(rhs, rhs.negative_); }

BigInt& BigInt::operator-=(const BigInt& rhs) {
  // Flipping the sign at the call, instead of copying-and-negating rhs,
  // keeps subtraction allocation-free. A zero rhs is harmless: both
  // add_signed branches leave *this unchanged for a zero magnitude.
  return add_signed(rhs, !rhs.negative_);
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (small() && rhs.small()) {
    const u128 product = static_cast<u128>(mag64()) * rhs.mag64();
    negative_ = negative_ != rhs.negative_;
    set_mag128(static_cast<std::uint64_t>(product), static_cast<std::uint64_t>(product >> 64));
    if (limbs_.empty()) negative_ = false;
    return *this;
  }
  negative_ = negative_ != rhs.negative_;
  limbs_ = mul_magnitude(limbs_, rhs.limbs_);
  trim();
  return *this;
}

void BigInt::div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem) {
  if (num.small() && den.small()) {
    const std::uint64_t d = den.mag64();
    if (d == 0) throw std::domain_error("BigInt: division by zero");
    const std::uint64_t a = num.mag64();
    const bool quot_negative = num.negative_ != den.negative_;
    const bool rem_negative = num.negative_;
    quot.set_mag128(a / d, 0);
    quot.negative_ = quot_negative && !quot.limbs_.empty();
    rem.set_mag128(a % d, 0);
    rem.negative_ = rem_negative && !rem.limbs_.empty();
    return;
  }
  LimbVec q;
  LimbVec r;
  div_mod_magnitude(num.limbs_, den.limbs_, q, r);
  quot.limbs_ = std::move(q);
  quot.negative_ = num.negative_ != den.negative_;
  quot.trim();
  rem.limbs_ = std::move(r);
  rem.negative_ = num.negative_;
  rem.trim();
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt quot;
  BigInt rem;
  div_mod(*this, rhs, quot, rem);
  *this = std::move(quot);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt quot;
  BigInt rem;
  div_mod(*this, rhs, quot, rem);
  *this = std::move(rem);
  return *this;
}

BigInt& BigInt::operator<<=(unsigned bits) {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  limbs_.prepend_zeros(limb_shift);
  if (bit_shift != 0) {
    Limb carry = 0;
    for (std::size_t i = limb_shift; i < limbs_.size(); ++i) {
      const WideLimb cur = (static_cast<WideLimb>(limbs_[i]) << bit_shift) | carry;
      limbs_[i] = static_cast<Limb>(cur & 0xFFFFFFFFu);
      carry = static_cast<Limb>(cur >> kLimbBits);
    }
    if (carry != 0) limbs_.push_back(carry);
  }
  return *this;
}

BigInt& BigInt::operator>>=(unsigned bits) {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  limbs_.erase_front(limb_shift);
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      limbs_[i] >>= bit_shift;
      if (i + 1 < limbs_.size()) {
        limbs_[i] |= static_cast<Limb>(
            (static_cast<WideLimb>(limbs_[i + 1]) << (kLimbBits - bit_shift)) & 0xFFFFFFFFu);
      }
    }
  }
  trim();
  return *this;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  if (a.small() && b.small()) {
    return from_mag_parts(gcd_u64(a.mag64(), b.mag64()), 0, false);
  }
  // Binary (Stein) GCD: strip common powers of two, then subtract-and-
  // shift. Each subtraction of two odd values produces an even result,
  // so every iteration removes at least one bit — no multi-limb division
  // (the dominant cost of the Euclidean form) is ever performed, and the
  // loop drops into the hardware-division path as soon as both values
  // shrink to 64 bits.
  const unsigned common = std::min(a.trailing_zero_bits(), b.trailing_zero_bits());
  a >>= a.trailing_zero_bits();
  b >>= b.trailing_zero_bits();
  for (;;) {
    if (a.small() && b.small()) {
      BigInt result = from_mag_parts(gcd_u64(a.mag64(), b.mag64()), 0, false);
      result <<= common;
      return result;
    }
    if (compare_magnitude(a.limbs_, b.limbs_) > 0) std::swap(a, b);
    b -= a;  // both non-negative with |b| >= |a|
    if (b.is_zero()) {
      a <<= common;
      return a;
    }
    b >>= b.trailing_zero_bits();
  }
}

std::vector<std::uint8_t> BigInt::magnitude_bytes() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(limbs_.size() * 4);
  for (const Limb limb : limbs_) {
    bytes.push_back(static_cast<std::uint8_t>(limb & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((limb >> 8) & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((limb >> 16) & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>((limb >> 24) & 0xFF));
  }
  while (!bytes.empty() && bytes.back() == 0) bytes.pop_back();
  return bytes;
}

BigInt BigInt::from_magnitude_bytes(const std::vector<std::uint8_t>& bytes, bool negative) {
  BigInt value;
  value.limbs_.resize((bytes.size() + 3) / 4);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    value.limbs_[i / 4] |= static_cast<Limb>(bytes[i]) << (8 * (i % 4));
  }
  value.trim();
  value.negative_ = negative && !value.is_zero();
  return value;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Peel nine decimal digits at a time via short division by 10^9.
  std::string digits;
  BigInt value = abs();
  const BigInt chunk(1000000000);
  while (!value.is_zero()) {
    BigInt quot;
    BigInt rem;
    div_mod(value, chunk, quot, rem);
    std::uint32_t part = rem.limbs_.empty() ? 0 : rem.limbs_[0];
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + part % 10));
      part /= 10;
    }
    value = std::move(quot);
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) { return os << v.to_string(); }

}  // namespace byzrename::numeric
