#ifndef BYZRENAME_NUMERIC_BIGINT_H
#define BYZRENAME_NUMERIC_BIGINT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace byzrename::numeric {

/// Arbitrary-precision signed integer.
///
/// Representation is sign-magnitude with base-2^32 limbs stored
/// little-endian (limb 0 is least significant). Zero is canonically the
/// empty limb vector with a non-negative sign. All operations produce
/// canonical values (no leading zero limbs, no negative zero).
///
/// This class exists because the renaming algorithm's correctness proofs
/// (Lemmas IV.4-IV.9 of the paper) are statements about *exact* rational
/// ranks: δ-separation must survive dozens of trimmed-averaging rounds.
/// Fixed-width integers overflow under adversarial inputs, and floating
/// point silently destroys the invariant the tests assert.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a built-in signed integer.
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): deliberate implicit widening

  /// Parses a decimal string with optional leading '-'.
  /// Throws std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

  /// True iff the value is strictly negative.
  [[nodiscard]] bool is_negative() const noexcept { return negative_; }

  /// Number of significant bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Three-way comparison; total order over the integers.
  [[nodiscard]] int compare(const BigInt& other) const noexcept;

  /// Value as int64 if representable.
  /// Throws std::overflow_error otherwise.
  [[nodiscard]] std::int64_t to_int64() const;

  /// True iff the value fits in int64.
  [[nodiscard]] bool fits_int64() const noexcept;

  /// Decimal string representation.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Throws std::domain_error on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs);
  BigInt& operator<<=(unsigned bits);
  BigInt& operator>>=(unsigned bits);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  friend BigInt operator<<(BigInt lhs, unsigned bits) { return lhs <<= bits; }
  friend BigInt operator>>(BigInt lhs, unsigned bits) { return lhs >>= bits; }

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) >= 0; }

  /// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
  static BigInt gcd(BigInt a, BigInt b);

  /// Quotient and remainder in one division pass.
  static void div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem);

  /// Best-effort conversion to double (may lose precision; never throws).
  [[nodiscard]] double to_double() const noexcept;

  /// Magnitude as little-endian bytes, no leading zero byte; empty for
  /// zero. Together with is_negative() this is the wire representation
  /// the codec uses.
  [[nodiscard]] std::vector<std::uint8_t> magnitude_bytes() const;

  /// Reconstructs a value from magnitude bytes (little-endian) and sign.
  /// Trailing zero bytes are tolerated; a zero magnitude ignores the sign.
  static BigInt from_magnitude_bytes(const std::vector<std::uint8_t>& bytes, bool negative);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

 private:
  using Limb = std::uint32_t;
  using WideLimb = std::uint64_t;
  static constexpr unsigned kLimbBits = 32;

  std::vector<Limb> limbs_;
  bool negative_ = false;

  void trim() noexcept;
  static int compare_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept;
  static std::vector<Limb> add_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  /// Requires |a| >= |b|.
  static std::vector<Limb> sub_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mul_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static void div_mod_magnitude(const std::vector<Limb>& num, const std::vector<Limb>& den,
                                std::vector<Limb>& quot, std::vector<Limb>& rem);
};

}  // namespace byzrename::numeric

#endif  // BYZRENAME_NUMERIC_BIGINT_H
