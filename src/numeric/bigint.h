#ifndef BYZRENAME_NUMERIC_BIGINT_H
#define BYZRENAME_NUMERIC_BIGINT_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace byzrename::numeric {

/// Arbitrary-precision signed integer.
///
/// Representation is sign-magnitude with base-2^32 limbs stored
/// little-endian (limb 0 is least significant). Zero is canonically the
/// empty limb sequence with a non-negative sign. All operations produce
/// canonical values (no leading zero limbs, no negative zero).
///
/// Limbs use a small-buffer store: magnitudes up to 128 bits — which
/// covers every rank numerator/denominator a converged Alg. 3 voting
/// phase produces, and all int64 workloads — live inline in the object
/// with no heap allocation; only genuinely large values spill.
///
/// This class exists because the renaming algorithm's correctness proofs
/// (Lemmas IV.4-IV.9 of the paper) are statements about *exact* rational
/// ranks: δ-separation must survive dozens of trimmed-averaging rounds.
/// Fixed-width integers overflow under adversarial inputs, and floating
/// point silently destroys the invariant the tests assert.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a built-in signed integer.
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): deliberate implicit widening

  /// Parses a decimal string with optional leading '-'.
  /// Throws std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  /// Builds a value from a 128-bit magnitude split into 64-bit halves.
  /// Zero magnitudes ignore the sign. This is the no-allocation bridge
  /// the Rational fast paths use to store 128-bit intermediate results.
  static BigInt from_mag_parts(std::uint64_t lo, std::uint64_t hi, bool negative);

  /// Copies the magnitude into little-endian 64-bit words and returns
  /// the count of significant words written, or -1 if the magnitude
  /// needs more than max_words (out is untouched then). Zero yields 0.
  /// This is the no-allocation bridge into the fixed-rank limb kernels.
  int magnitude_words64(std::uint64_t* out, int max_words) const noexcept;

  /// Builds a value from little-endian 64-bit magnitude words (leading
  /// zero words tolerated); a zero magnitude ignores the sign.
  static BigInt from_words64(const std::uint64_t* words, int count, bool negative);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

  /// True iff the value is strictly negative.
  [[nodiscard]] bool is_negative() const noexcept { return negative_; }

  /// Number of significant bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  /// Three-way comparison; total order over the integers.
  [[nodiscard]] int compare(const BigInt& other) const noexcept;

  /// Value as int64 if representable.
  /// Throws std::overflow_error otherwise.
  [[nodiscard]] std::int64_t to_int64() const;

  /// True iff the value fits in int64.
  [[nodiscard]] bool fits_int64() const noexcept;

  /// Decimal string representation.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Throws std::domain_error on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs);
  BigInt& operator<<=(unsigned bits);
  BigInt& operator>>=(unsigned bits);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  friend BigInt operator<<(BigInt lhs, unsigned bits) { return lhs <<= bits; }
  friend BigInt operator>>(BigInt lhs, unsigned bits) { return lhs >>= bits; }

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept { return a.compare(b) >= 0; }

  /// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0. Uses
  /// hardware division while both magnitudes fit 64 bits and binary
  /// (Stein) reduction — shifts and subtractions only — beyond that.
  static BigInt gcd(BigInt a, BigInt b);

  /// Quotient and remainder in one division pass.
  static void div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem);

  /// Best-effort conversion to double (may lose precision; never throws).
  [[nodiscard]] double to_double() const noexcept;

  /// Magnitude as little-endian bytes, no leading zero byte; empty for
  /// zero. Together with is_negative() this is the wire representation
  /// the codec uses.
  [[nodiscard]] std::vector<std::uint8_t> magnitude_bytes() const;

  /// Reconstructs a value from magnitude bytes (little-endian) and sign.
  /// Trailing zero bytes are tolerated; a zero magnitude ignores the sign.
  static BigInt from_magnitude_bytes(const std::vector<std::uint8_t>& bytes, bool negative);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

 private:
  using Limb = std::uint32_t;
  using WideLimb = std::uint64_t;
  static constexpr unsigned kLimbBits = 32;

  /// Vector of limbs with a small-buffer store: the first kInlineLimbs
  /// limbs live inside the object; larger magnitudes spill to the heap
  /// (and stay there until destruction — shrinking back would only add
  /// branches to the hot paths).
  class LimbVec {
   public:
    static constexpr std::size_t kInlineLimbs = 4;

    LimbVec() noexcept = default;
    LimbVec(const LimbVec& other) { append(other.data(), other.size_); }
    LimbVec(LimbVec&& other) noexcept { steal(other); }
    LimbVec& operator=(const LimbVec& other) {
      if (this != &other) {
        size_ = 0;
        append(other.data(), other.size_);
      }
      return *this;
    }
    LimbVec& operator=(LimbVec&& other) noexcept {
      if (this != &other) {
        delete[] heap_;
        heap_ = nullptr;
        steal(other);
      }
      return *this;
    }
    ~LimbVec() { delete[] heap_; }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] Limb* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
    [[nodiscard]] const Limb* data() const noexcept { return heap_ != nullptr ? heap_ : inline_; }
    [[nodiscard]] Limb& operator[](std::size_t i) noexcept { return data()[i]; }
    [[nodiscard]] const Limb& operator[](std::size_t i) const noexcept { return data()[i]; }
    [[nodiscard]] Limb& back() noexcept { return data()[size_ - 1]; }
    [[nodiscard]] const Limb& back() const noexcept { return data()[size_ - 1]; }
    [[nodiscard]] Limb* begin() noexcept { return data(); }
    [[nodiscard]] Limb* end() noexcept { return data() + size_; }
    [[nodiscard]] const Limb* begin() const noexcept { return data(); }
    [[nodiscard]] const Limb* end() const noexcept { return data() + size_; }

    void clear() noexcept { size_ = 0; }
    void pop_back() noexcept { --size_; }
    void push_back(Limb v) {
      if (size_ == capacity_) grow(size_ + 1);
      data()[size_++] = v;
    }
    void resize(std::size_t n) {
      if (n > size_) {
        if (n > capacity_) grow(n);
        std::fill(data() + size_, data() + n, Limb{0});
      }
      size_ = static_cast<std::uint32_t>(n);
    }
    void assign(std::size_t n, Limb v) {
      if (n > capacity_) grow(n);
      std::fill(data(), data() + n, v);
      size_ = static_cast<std::uint32_t>(n);
    }
    void assign(const Limb* first, const Limb* last) {
      size_ = 0;
      append(first, static_cast<std::size_t>(last - first));
    }
    /// Inserts @p k zero limbs at the front (limb-granular left shift).
    void prepend_zeros(std::size_t k) {
      if (k == 0) return;
      const std::size_t n = size_ + k;
      if (n > capacity_) grow(n);
      Limb* p = data();
      std::copy_backward(p, p + size_, p + n);
      std::fill(p, p + k, Limb{0});
      size_ = static_cast<std::uint32_t>(n);
    }
    /// Removes the @p k least significant limbs (limb-granular right shift).
    void erase_front(std::size_t k) {
      if (k == 0) return;
      Limb* p = data();
      std::copy(p + k, p + size_, p);
      size_ -= static_cast<std::uint32_t>(k);
    }

   private:
    void append(const Limb* src, std::size_t count) {
      const std::size_t n = size_ + count;
      if (n > capacity_) grow(n);
      std::copy(src, src + count, data() + size_);
      size_ = static_cast<std::uint32_t>(n);
    }
    void grow(std::size_t need) {
      std::size_t cap = static_cast<std::size_t>(capacity_) * 2;
      if (cap < need) cap = need;
      Limb* fresh = new Limb[cap];
      std::copy(data(), data() + size_, fresh);
      delete[] heap_;
      heap_ = fresh;
      capacity_ = static_cast<std::uint32_t>(cap);
    }
    void steal(LimbVec& other) noexcept {
      heap_ = other.heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      if (heap_ == nullptr) std::copy(other.inline_, other.inline_ + size_, inline_);
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = kInlineLimbs;
    }

    Limb inline_[kInlineLimbs];
    Limb* heap_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t capacity_ = kInlineLimbs;
  };

  LimbVec limbs_;
  bool negative_ = false;

  /// True when the magnitude fits one 64-bit word — the gate for every
  /// hardware-arithmetic fast path.
  [[nodiscard]] bool small() const noexcept { return limbs_.size() <= 2; }
  /// Magnitude as uint64; requires small().
  [[nodiscard]] std::uint64_t mag64() const noexcept;
  /// Replaces the magnitude with a 128-bit value, canonically trimmed.
  void set_mag128(std::uint64_t lo, std::uint64_t hi);
  /// Count of trailing zero bits; requires a non-zero value.
  [[nodiscard]] unsigned trailing_zero_bits() const noexcept;
  /// Shared signed-addition core: *this += (rhs with rhs_negative sign).
  BigInt& add_signed(const BigInt& rhs, bool rhs_negative);

  void trim() noexcept;
  static int compare_magnitude(const LimbVec& a, const LimbVec& b) noexcept;
  static LimbVec add_magnitude(const LimbVec& a, const LimbVec& b);
  /// Requires |a| >= |b|.
  static LimbVec sub_magnitude(const LimbVec& a, const LimbVec& b);
  static LimbVec mul_magnitude(const LimbVec& a, const LimbVec& b);
  static void div_mod_magnitude(const LimbVec& num, const LimbVec& den, LimbVec& quot,
                                LimbVec& rem);
};

}  // namespace byzrename::numeric

#endif  // BYZRENAME_NUMERIC_BIGINT_H
