#include "numeric/rational.h"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace byzrename::numeric {

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

Rational Rational::of(std::int64_t numerator, std::int64_t denominator) {
  return Rational(BigInt(numerator), BigInt(denominator));
}

void Rational::normalize() {
  if (den_.is_negative()) {
    den_ = -den_;
    num_ = -num_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  const BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

int Rational::compare(const Rational& other) const {
  // Cross-multiplication is safe: denominators are positive.
  return (num_ * other.den_).compare(other.num_ * den_);
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.num_ = -result.num_;
  return result;
}

Rational Rational::abs() const {
  Rational result = *this;
  result.num_ = result.num_.abs();
  return result;
}

Rational& Rational::operator+=(const Rational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_.is_zero()) throw std::domain_error("Rational: division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

BigInt Rational::floor() const {
  BigInt quot;
  BigInt rem;
  BigInt::div_mod(num_, den_, quot, rem);
  if (num_.is_negative() && !rem.is_zero()) quot -= BigInt(1);
  return quot;
}

BigInt Rational::round() const {
  // round(x) = floor(x + 1/2) except that exact .5 rounds away from zero
  // for negatives too; the ranks in the algorithm never land exactly on
  // a half after convergence, so either convention satisfies the proofs.
  const Rational half = Rational::of(1, 2);
  if (!is_negative()) return (*this + half).floor();
  return -((-*this + half).floor());
}

double Rational::to_double() const noexcept { return num_.to_double() / den_.to_double(); }

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rational& v) { return os << v.to_string(); }

}  // namespace byzrename::numeric
