#include "numeric/rational.h"

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace byzrename::numeric {

namespace {

// The renaming workload's ranks overwhelmingly fit int64 numerators and
// denominators (they start as small integers and are repeatedly averaged
// over ≤ N values). When both operands fit, every arithmetic operator
// below runs entirely in 128-bit machine words: cross products bounded by
// 2^63 * (2^63 - 1) < 2^126 never overflow, and the gcd reduction uses
// hardware division instead of multi-limb Algorithm D. The __extension__
// keeps -Wpedantic quiet about the non-ISO type.
__extension__ typedef unsigned __int128 u128;
__extension__ typedef __int128 i128;

u128 u128_abs(i128 value) noexcept {
  // Two's complement negate through the unsigned type: safe for the most
  // negative value, where -value would overflow.
  return value < 0 ? ~static_cast<u128>(value) + 1 : static_cast<u128>(value);
}

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept {
  while (b != 0) {
    const std::uint64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

u128 gcd_u128(u128 a, u128 b) noexcept {
  while (b != 0) {
    const u128 r = a % b;
    a = b;
    b = r;
  }
  return a;
}

bool both_fit_int64(const BigInt& a, const BigInt& b) noexcept {
  return a.fits_int64() && b.fits_int64();
}

struct Parts {
  BigInt num;
  BigInt den;
};

/// Canonicalizes num/den (den > 0) computed in 128-bit words into
/// reduced BigInt numerator/denominator without touching the heap.
Parts reduce_i128(i128 num, u128 den) {
  if (num == 0) return {BigInt(0), BigInt(1)};
  const u128 mag = u128_abs(num);
  const u128 g = gcd_u128(mag, den);
  const u128 rn = mag / g;
  const u128 rd = den / g;
  return {BigInt::from_mag_parts(static_cast<std::uint64_t>(rn),
                                 static_cast<std::uint64_t>(rn >> 64), num < 0),
          BigInt::from_mag_parts(static_cast<std::uint64_t>(rd),
                                 static_cast<std::uint64_t>(rd >> 64), false)};
}

}  // namespace

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

Rational Rational::of(std::int64_t numerator, std::int64_t denominator) {
  return Rational(BigInt(numerator), BigInt(denominator));
}

void Rational::normalize() {
  if (den_.is_negative()) {
    den_ = -den_;
    num_ = -num_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  if (both_fit_int64(num_, den_)) {
    const std::int64_t n = num_.to_int64();
    const auto d = static_cast<std::uint64_t>(den_.to_int64());
    const std::uint64_t mag =
        n < 0 ? ~static_cast<std::uint64_t>(n) + 1 : static_cast<std::uint64_t>(n);
    const std::uint64_t g = gcd_u64(mag, d);
    if (g > 1) {
      num_ = BigInt::from_mag_parts(mag / g, 0, n < 0);
      den_ = BigInt::from_mag_parts(d / g, 0, false);
    }
    return;
  }
  const BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

int Rational::compare(const Rational& other) const {
  if (both_fit_int64(num_, den_) && both_fit_int64(other.num_, other.den_)) {
    const i128 lhs = static_cast<i128>(num_.to_int64()) * other.den_.to_int64();
    const i128 rhs = static_cast<i128>(other.num_.to_int64()) * den_.to_int64();
    if (lhs != rhs) return lhs < rhs ? -1 : 1;
    return 0;
  }
  // Cross-multiplication is safe: denominators are positive.
  return (num_ * other.den_).compare(other.num_ * den_);
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.num_ = -result.num_;
  return result;
}

Rational Rational::abs() const {
  Rational result = *this;
  result.num_ = result.num_.abs();
  return result;
}

Rational& Rational::operator+=(const Rational& rhs) {
  if (both_fit_int64(num_, den_) && both_fit_int64(rhs.num_, rhs.den_)) {
    const i128 an = num_.to_int64();
    const i128 ad = den_.to_int64();
    const i128 bn = rhs.num_.to_int64();
    const i128 bd = rhs.den_.to_int64();
    Parts parts = reduce_i128(an * bd + bn * ad, static_cast<u128>(ad * bd));
    num_ = std::move(parts.num);
    den_ = std::move(parts.den);
    return *this;
  }
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  if (both_fit_int64(num_, den_) && both_fit_int64(rhs.num_, rhs.den_)) {
    const i128 an = num_.to_int64();
    const i128 ad = den_.to_int64();
    const i128 bn = rhs.num_.to_int64();
    const i128 bd = rhs.den_.to_int64();
    Parts parts = reduce_i128(an * bd - bn * ad, static_cast<u128>(ad * bd));
    num_ = std::move(parts.num);
    den_ = std::move(parts.den);
    return *this;
  }
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  if (both_fit_int64(num_, den_) && both_fit_int64(rhs.num_, rhs.den_)) {
    const i128 an = num_.to_int64();
    const i128 ad = den_.to_int64();
    const i128 bn = rhs.num_.to_int64();
    const i128 bd = rhs.den_.to_int64();
    Parts parts = reduce_i128(an * bn, static_cast<u128>(ad * bd));
    num_ = std::move(parts.num);
    den_ = std::move(parts.den);
    return *this;
  }
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_.is_zero()) throw std::domain_error("Rational: division by zero");
  if (both_fit_int64(num_, den_) && both_fit_int64(rhs.num_, rhs.den_)) {
    const i128 an = num_.to_int64();
    const i128 ad = den_.to_int64();
    const i128 bn = rhs.num_.to_int64();
    const i128 bd = rhs.den_.to_int64();
    i128 n = an * bd;
    i128 d = ad * bn;
    if (d < 0) {
      n = -n;
      d = -d;
    }
    Parts parts = reduce_i128(n, static_cast<u128>(d));
    num_ = std::move(parts.num);
    den_ = std::move(parts.den);
    return *this;
  }
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

BigInt Rational::floor() const {
  BigInt quot;
  BigInt rem;
  BigInt::div_mod(num_, den_, quot, rem);
  if (num_.is_negative() && !rem.is_zero()) quot -= BigInt(1);
  return quot;
}

BigInt Rational::round() const {
  // round(x) = floor(x + 1/2) except that exact .5 rounds away from zero
  // for negatives too; the ranks in the algorithm never land exactly on
  // a half after convergence, so either convention satisfies the proofs.
  const Rational half = Rational::of(1, 2);
  if (!is_negative()) return (*this + half).floor();
  return -((-*this + half).floor());
}

double Rational::to_double() const noexcept { return num_.to_double() / den_.to_double(); }

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rational& v) { return os << v.to_string(); }

}  // namespace byzrename::numeric
