#include "aa/crash_aa.h"

#include <map>
#include <stdexcept>

namespace byzrename::aa {

using numeric::Rational;

CrashAAProcess::CrashAAProcess(sim::SystemParams params, Rational initial, int rounds)
    : params_(params), value_(std::move(initial)), rounds_left_(rounds) {
  if (rounds < 0) throw std::invalid_argument("CrashAAProcess: negative round count");
}

void CrashAAProcess::on_send(sim::Round, sim::Outbox& out) {
  if (done()) return;
  out.broadcast(sim::AAValueMsg{value_});
}

void CrashAAProcess::on_receive(sim::Round, const sim::Inbox& inbox) {
  if (done()) return;
  std::map<sim::LinkIndex, Rational> per_link;
  for (const sim::Delivery& d : inbox) {
    const auto* msg = std::get_if<sim::AAValueMsg>(&*d.payload);
    if (msg == nullptr) continue;
    per_link.emplace(d.link, msg->value);
  }
  if (per_link.empty()) {
    --rounds_left_;
    return;  // keep the current value; everyone else crashed
  }
  Rational sum;
  for (const auto& [link, v] : per_link) sum += v;
  value_ = sum / Rational(static_cast<std::int64_t>(per_link.size()));
  --rounds_left_;
}

}  // namespace byzrename::aa
