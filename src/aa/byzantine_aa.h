#ifndef BYZRENAME_AA_BYZANTINE_AA_H
#define BYZRENAME_AA_BYZANTINE_AA_H

#include <cstddef>
#include <optional>
#include <vector>

#include "numeric/rational.h"
#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::aa {

/// Synchronous Byzantine approximate agreement after Dolev, Lynch,
/// Pinter, Stark and Weihl (J.ACM 1986) — the substrate reference [7] of
/// the paper, isolated here as a standalone reusable component.
///
/// Each round every process broadcasts its value, pads the received
/// multiset to N with its own value, discards the t lowest and t highest,
/// and moves to the average of the select_t subsequence. For N > 3t each
/// round shrinks the spread of correct values by at least
/// sigma_t = floor((N-2t)/t) + 1, and new values stay inside the range of
/// the old correct values.
class ByzantineAAProcess final : public sim::ProcessBehavior {
 public:
  /// @param rounds number of exchange rounds to run before halting.
  ByzantineAAProcess(sim::SystemParams params, numeric::Rational initial, int rounds,
                     std::size_t max_value_bits = 1 << 16);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return rounds_left_ == 0; }

  /// Current estimate; the protocol's output once done().
  [[nodiscard]] const numeric::Rational& value() const noexcept { return value_; }

 private:
  sim::SystemParams params_;
  numeric::Rational value_;
  int rounds_left_;
  std::size_t max_value_bits_;
};

}  // namespace byzrename::aa

#endif  // BYZRENAME_AA_BYZANTINE_AA_H
