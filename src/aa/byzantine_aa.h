#ifndef BYZRENAME_AA_BYZANTINE_AA_H
#define BYZRENAME_AA_BYZANTINE_AA_H

#include <cstddef>
#include <optional>
#include <vector>

#include "core/params.h"
#include "core/voting_kernel.h"
#include "numeric/fixed_rank.h"
#include "numeric/rational.h"
#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::aa {

/// Synchronous Byzantine approximate agreement after Dolev, Lynch,
/// Pinter, Stark and Weihl (J.ACM 1986) — the substrate reference [7] of
/// the paper, isolated here as a standalone reusable component.
///
/// Each round every process broadcasts its value, pads the received
/// multiset to N with its own value, discards the t lowest and t highest,
/// and moves to the average of the select_t subsequence. For N > 3t each
/// round shrinks the spread of correct values by at least
/// sigma_t = floor((N-2t)/t) + 1, and new values stay inside the range of
/// the old correct values.
///
/// The averaging arithmetic runs on the fixed-width ballot kernel by
/// default (numeric/fixed_rank.h): integer initial values stay on the
/// instance's 1/S grid through every round, so the sort + trim + select
/// pipeline works on flat two's-complement limbs with zero heap
/// allocations. Any off-grid value (crafted Byzantine denominators, or
/// an instance whose grid exceeds the supported width) drops that round
/// — or the whole instance — back to the exact-Rational pipeline, whose
/// results are bit-identical by construction. kCheck runs both and
/// throws on divergence.
class ByzantineAAProcess final : public sim::ProcessBehavior {
 public:
  /// @param rounds number of exchange rounds to run before halting.
  ByzantineAAProcess(sim::SystemParams params, numeric::Rational initial, int rounds,
                     std::size_t max_value_bits = 1 << 16,
                     core::RankKernel kernel = core::RankKernel::kFixed);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return rounds_left_ == 0; }

  /// Current estimate; the protocol's output once done().
  [[nodiscard]] const numeric::Rational& value() const noexcept { return value_; }

  /// The kernel actually running (an over-budget grid downgrades
  /// kFixed/kCheck to kExact).
  [[nodiscard]] core::RankKernel kernel() const noexcept { return kernel_; }

 private:
  sim::SystemParams params_;
  numeric::Rational value_;
  int rounds_left_;
  std::size_t max_value_bits_;
  core::RankKernel kernel_;
  numeric::FixedSpec spec_;
  core::FixedBallotKernel ballot_kernel_;

  // Pooled per-round scratch: flat per-link slots (stamped, never
  // cleared) instead of a std::map, plus reusable ballot storage — a
  // steady-state round on the fixed path allocates nothing, and even
  // the exact path drops all per-round map-node churn.
  std::vector<int> link_stamp_;
  int round_serial_ = 0;
  std::vector<const numeric::Rational*> admitted_;
  std::vector<numeric::limb_t> ballot_;
  std::vector<numeric::Rational> exact_ballot_;
};

}  // namespace byzrename::aa

#endif  // BYZRENAME_AA_BYZANTINE_AA_H
