#ifndef BYZRENAME_AA_CRASH_AA_H
#define BYZRENAME_AA_CRASH_AA_H

#include <optional>

#include "numeric/rational.h"
#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::aa {

/// Synchronous crash-tolerant approximate agreement: each round every
/// process broadcasts its value and moves to the mean of everything it
/// received. With crash faults only, any two correct processes' receive
/// multisets differ in at most f elements, so the spread contracts
/// geometrically. Used as the comparison substrate for the crash-model
/// renaming baseline [14] and as a contrast case in the AA bench.
class CrashAAProcess final : public sim::ProcessBehavior {
 public:
  CrashAAProcess(sim::SystemParams params, numeric::Rational initial, int rounds);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return rounds_left_ == 0; }

  [[nodiscard]] const numeric::Rational& value() const noexcept { return value_; }

 private:
  sim::SystemParams params_;
  numeric::Rational value_;
  int rounds_left_;
};

}  // namespace byzrename::aa

#endif  // BYZRENAME_AA_CRASH_AA_H
