#include "aa/byzantine_aa.h"

#include <algorithm>
#include <stdexcept>

namespace byzrename::aa {

using numeric::BigInt;
using numeric::FixedConvert;
using numeric::limb_t;
using numeric::Rational;

ByzantineAAProcess::ByzantineAAProcess(sim::SystemParams params, Rational initial, int rounds,
                                       std::size_t max_value_bits, core::RankKernel kernel)
    : params_(params),
      value_(std::move(initial)),
      rounds_left_(rounds),
      max_value_bits_(max_value_bits),
      kernel_(kernel),
      spec_(kernel == core::RankKernel::kExact
                ? numeric::FixedSpec{}
                : numeric::derive_fixed_spec(params.n, params.t, rounds)) {
  if (params.n <= 3 * params.t) {
    throw std::invalid_argument("ByzantineAAProcess: requires N > 3t");
  }
  if (rounds < 0) throw std::invalid_argument("ByzantineAAProcess: negative round count");
  if (!spec_.ok) kernel_ = core::RankKernel::kExact;
  link_stamp_.assign(static_cast<std::size_t>(params.n), 0);
}

void ByzantineAAProcess::on_send(sim::Round, sim::Outbox& out) {
  if (done()) return;
  out.broadcast(sim::AAValueMsg{value_});
}

void ByzantineAAProcess::on_receive(sim::Round, const sim::Inbox& inbox) {
  if (done()) return;
  const int n = params_.n;
  const int t = params_.t;

  // One value per link; spamming links are provably faulty and their
  // extra messages are discarded, as is any value whose encoding exceeds
  // the wire budget (Byzantine denominator inflation). First value per
  // link wins, exactly like the historical per-link map.
  ++round_serial_;
  admitted_.clear();
  for (const sim::Delivery& d : inbox) {
    const auto* msg = std::get_if<sim::AAValueMsg>(&*d.payload);
    if (msg == nullptr) continue;
    if (msg->value.encoded_bits() > max_value_bits_) continue;
    auto& stamp = link_stamp_[static_cast<std::size_t>(d.link)];
    if (stamp == round_serial_) continue;
    stamp = round_serial_;
    admitted_.push_back(&msg->value);
  }
  // More than N entries cannot happen: links are distinct and there are N.

  // select_t of the t/t-trimmed sorted ballot: global 0-based positions
  // t, 2t, ..., and for t == 0 the entire ballot.
  const std::int64_t picks = t > 0 ? (n - 2 * t - 1) / t + 1 : n;

  // Fixed lane: every admitted value (and the pad value) on the 1/S
  // grid within width — the steady state of integer-seeded AA.
  bool have_fixed = false;
  Rational fixed_value;
  if (kernel_ != core::RankKernel::kExact) {
    const int w = spec_.width;
    ballot_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(w));
    bool all_on_grid = true;
    int count = 0;
    for (const Rational* v : admitted_) {
      if (numeric::rational_to_fixed(*v, spec_,
                                     ballot_.data() + static_cast<std::size_t>(count) * w) !=
          FixedConvert::kOk) {
        all_on_grid = false;
        break;
      }
      ++count;
    }
    if (all_on_grid && count < n) {
      limb_t own[numeric::kFixedRankLimbs];
      if (numeric::rational_to_fixed(value_, spec_, own) == FixedConvert::kOk) {
        while (count < n) {
          for (int i = 0; i < w; ++i) ballot_[static_cast<std::size_t>(count) * w + i] = own[i];
          ++count;
        }
      } else {
        all_on_grid = false;
      }
    }
    if (all_on_grid) {
      limb_t result[numeric::kFixedRankLimbs];
      BigInt sum;
      if (ballot_kernel_.average(spec_, ballot_.data(), n, result, sum) ==
          core::FixedBallotKernel::Outcome::kOk) {
        fixed_value = numeric::fixed_to_rational(result, w, spec_.scale_big);
      } else {
        fixed_value = Rational(sum, BigInt(spec_.select_count) * spec_.scale_big);
      }
      have_fixed = true;
    }
  }

  if (!have_fixed || kernel_ == core::RankKernel::kCheck) {
    exact_ballot_.clear();
    for (const Rational* v : admitted_) exact_ballot_.push_back(*v);
    while (static_cast<int>(exact_ballot_.size()) < n) exact_ballot_.push_back(value_);
    std::sort(exact_ballot_.begin(), exact_ballot_.end());
    Rational sum;
    for (std::int64_t j = 0; j < picks; ++j) {
      sum += exact_ballot_[t > 0 ? static_cast<std::size_t>(t) * static_cast<std::size_t>(1 + j)
                                 : static_cast<std::size_t>(j)];
    }
    Rational exact_value = sum / Rational(picks);
    if (have_fixed && fixed_value != exact_value) {
      throw std::logic_error("ByzantineAAProcess: fixed kernel diverged from the exact oracle");
    }
    value_ = std::move(exact_value);
  } else {
    value_ = std::move(fixed_value);
  }

  --rounds_left_;
}

}  // namespace byzrename::aa
