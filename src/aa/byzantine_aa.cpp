#include "aa/byzantine_aa.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/rank_approx.h"

namespace byzrename::aa {

using numeric::Rational;

ByzantineAAProcess::ByzantineAAProcess(sim::SystemParams params, Rational initial, int rounds,
                                       std::size_t max_value_bits)
    : params_(params),
      value_(std::move(initial)),
      rounds_left_(rounds),
      max_value_bits_(max_value_bits) {
  if (params.n <= 3 * params.t) {
    throw std::invalid_argument("ByzantineAAProcess: requires N > 3t");
  }
  if (rounds < 0) throw std::invalid_argument("ByzantineAAProcess: negative round count");
}

void ByzantineAAProcess::on_send(sim::Round, sim::Outbox& out) {
  if (done()) return;
  out.broadcast(sim::AAValueMsg{value_});
}

void ByzantineAAProcess::on_receive(sim::Round, const sim::Inbox& inbox) {
  if (done()) return;

  // One value per link; spamming links are provably faulty and their
  // extra messages are discarded, as is any value whose encoding exceeds
  // the wire budget (Byzantine denominator inflation).
  std::map<sim::LinkIndex, Rational> per_link;
  for (const sim::Delivery& d : inbox) {
    const auto* msg = std::get_if<sim::AAValueMsg>(&*d.payload);
    if (msg == nullptr) continue;
    if (msg->value.encoded_bits() > max_value_bits_) continue;
    per_link.emplace(d.link, msg->value);
  }

  std::vector<Rational> ballot;
  ballot.reserve(static_cast<std::size_t>(params_.n));
  for (const auto& [link, v] : per_link) ballot.push_back(v);
  while (static_cast<int>(ballot.size()) < params_.n) ballot.push_back(value_);
  // More than N entries cannot happen: links are distinct and there are N.

  std::sort(ballot.begin(), ballot.end());
  const std::vector<Rational> trimmed(ballot.begin() + params_.t, ballot.end() - params_.t);
  const std::vector<Rational> chosen = core::select_t(trimmed, params_.t);

  Rational sum;
  for (const Rational& v : chosen) sum += v;
  value_ = sum / Rational(static_cast<std::int64_t>(chosen.size()));

  --rounds_left_;
}

}  // namespace byzrename::aa
