#ifndef BYZRENAME_OBS_JSON_H
#define BYZRENAME_OBS_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace byzrename::obs {

/// Minimal streaming JSON writer — the only JSON producer in the repo,
/// shared by the run-report emitter and the trace-event exporter.
/// Handles comma placement and string escaping; the caller is
/// responsible for structural balance (asserted in debug builds via the
/// context stack). No DOM: reports stream out line by line.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be followed by exactly one value (or a
  /// begin_object/begin_array).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  // Fundamental integer types (not the fixed-width aliases, which would
  // collide with them on some ABIs); everything widens to (u)int64 range.
  JsonWriter& value(long long n);
  JsonWriter& value(unsigned long long n);
  JsonWriter& value(int n) { return value(static_cast<long long>(n)); }
  JsonWriter& value(unsigned int n) { return value(static_cast<unsigned long long>(n)); }
  JsonWriter& value(long n) { return value(static_cast<long long>(n)); }
  JsonWriter& value(unsigned long n) { return value(static_cast<unsigned long long>(n)); }
  /// Non-finite doubles have no JSON representation; emitted as null.
  JsonWriter& value(double d);

  /// key + scalar value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

 private:
  void prefix();

  std::ostream& os_;
  /// One entry per open container: true until its first element lands.
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Appends @p text to @p os as a JSON string literal (quotes included).
void write_json_string(std::ostream& os, std::string_view text);

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_JSON_H
