#include "obs/run_report.h"

#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/harness.h"
#include "obs/json.h"
#include "obs/schema.h"

namespace byzrename::obs {

RunReportSink::RunReportSink(std::ostream& os, std::string bench, std::mutex* write_mutex)
    : os_(os), bench_(std::move(bench)), write_mutex_(write_mutex) {}

void RunReportSink::on_run_start(const RunInfo& info) {
  info_ = info;
  rounds_.clear();
}

void RunReportSink::on_round(const RoundSample& sample) { rounds_.push_back(sample); }

void RunReportSink::on_run_end(const RunSummary& summary) {
  const core::ScenarioResult& result = summary.result;
  const sim::Metrics& metrics = result.run.metrics;

  // Render into a private buffer first: the stream sees exactly one
  // append per run, which the optional mutex turns into an atomic line.
  std::ostringstream line;
  JsonWriter json(line);
  json.begin_object();
  json.field("schema", kRunSchema);
  if (!bench_.empty()) json.field("bench", bench_);
  if (!info_.label.empty()) json.field("label", info_.label);

  json.key("scenario").begin_object();
  json.field("algorithm", info_.algorithm)
      .field("n", info_.n)
      .field("t", info_.t)
      .field("faults", info_.faults)
      .field("adversary", info_.adversary)
      .field("seed", static_cast<std::uint64_t>(info_.seed))
      .field("iterations", info_.iterations)
      .field("validate_votes", info_.validate_votes)
      .field("target_namespace", static_cast<std::int64_t>(info_.target_namespace))
      .field("round_budget", info_.round_budget);
  if (!info_.fault_plan.empty()) json.field("fault_plan", info_.fault_plan);
  json.end_object();

  json.key("outcome").begin_object();
  json.field("rounds", result.run.rounds)
      .field("terminated", result.run.terminated)
      .field("wall_seconds", summary.wall_seconds)
      .field("max_name", static_cast<std::int64_t>(result.report.max_name))
      .field("min_name", static_cast<std::int64_t>(result.report.min_name));
  json.key("accepted").begin_object();
  json.field("min", result.min_accepted).field("max", result.max_accepted);
  json.end_object();
  json.field("rejected_votes", result.total_rejected);
  json.key("verdict").begin_object();
  json.field("validity", result.report.validity)
      .field("termination", result.report.termination)
      .field("uniqueness", result.report.uniqueness)
      .field("order_preservation", result.report.order_preservation)
      .field("all_ok", result.report.all_ok())
      .field("classes", result.report.classes())
      .field("detail", result.report.detail);
  // Transient-restart dimension; omitted on runs without restarts so
  // pre-existing reports keep their exact bytes.
  if (result.report.restarted > 0) {
    json.field("restarted", result.report.restarted)
        .field("recovered", result.report.recovered);
  }
  json.end_object();
  json.end_object();

  json.key("totals").begin_object();
  json.field("messages", metrics.total_messages())
      .field("bits", metrics.total_bits())
      .field("correct_messages", metrics.total_correct_messages())
      .field("correct_bits", metrics.total_correct_bits())
      .field("equivocating_sends", metrics.total_equivocating_sends())
      .field("max_message_bits", metrics.max_message_bits())
      .field("max_correct_message_bits", metrics.max_correct_message_bits())
      .field("injected_drops", metrics.total_injected_drops())
      .field("injected_duplicates", metrics.total_injected_duplicates())
      .field("injected_delays", metrics.total_injected_delays());
  if (metrics.total_injected_forgeries() > 0) {
    json.field("injected_forgeries", metrics.total_injected_forgeries());
  }
  if (metrics.total_injected_restarts() > 0) {
    json.field("injected_restarts", metrics.total_injected_restarts());
  }
  json.end_object();

  json.key("per_round").begin_array();
  for (const RoundSample& sample : rounds_) {
    json.begin_object();
    json.field("round", sample.round)
        .field("messages", sample.metrics.messages)
        .field("bits", sample.metrics.bits)
        .field("correct_messages", sample.metrics.correct_messages)
        .field("correct_bits", sample.metrics.correct_bits)
        .field("equivocating_sends", sample.metrics.equivocating_sends)
        .field("max_message_bits", sample.metrics.max_message_bits)
        .field("max_correct_message_bits", sample.metrics.max_correct_message_bits)
        .field("wall_seconds", sample.wall_seconds);
    if (sample.has_acceptance) {
      json.key("accepted").begin_object();
      json.field("min", sample.min_accepted).field("max", sample.max_accepted);
      json.end_object();
      json.field("rejected_votes", sample.rejected_votes);
    }
    if (sample.has_rank_probes) {
      json.field("rank_spread", sample.rank_spread)
          .field("rank_spread_exact", sample.rank_spread_exact)
          .field("adjacent_gap", sample.adjacent_gap)
          .field("adjacent_gap_exact", sample.adjacent_gap_exact);
    }
    if (sample.has_fast_probes) {
      json.field("fast_max_discrepancy", static_cast<std::int64_t>(sample.fast_max_discrepancy))
          .field("fast_min_gap", static_cast<std::int64_t>(sample.fast_min_gap));
    }
    json.end_object();
  }
  json.end_array();

  json.end_object();
  line << '\n';
  if (write_mutex_ != nullptr) {
    const std::lock_guard<std::mutex> lock(*write_mutex_);
    os_ << line.str();
    os_.flush();
  } else {
    os_ << line.str();
    os_.flush();
  }
}

}  // namespace byzrename::obs
