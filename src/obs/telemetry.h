#ifndef BYZRENAME_OBS_TELEMETRY_H
#define BYZRENAME_OBS_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/types.h"

namespace byzrename::core {
struct ScenarioResult;
}  // namespace byzrename::core

namespace byzrename::obs {

/// Resolved identity of one scenario run, captured at start. Field
/// meanings mirror core::ScenarioConfig after the harness resolved the
/// defaults (faults, iterations, round budget).
struct RunInfo {
  std::string algorithm;
  int n = 0;
  int t = 0;
  int faults = 0;
  std::string adversary;
  std::uint64_t seed = 0;
  int iterations = -1;  ///< resolved voting iterations; -1 = not applicable
  bool validate_votes = true;
  sim::Name target_namespace = 0;
  int round_budget = 0;
  /// Free-form row label propagated from ScenarioConfig::telemetry_label.
  std::string label;
  /// Canonical fault-plan spec (sim::to_spec); empty = clean model.
  std::string fault_plan;
};

/// Everything the telemetry layer measures about one synchronous round:
/// the round's communication counters, its wall clock, the acceptance /
/// rejection counters over correct processes, and (when the run's
/// algorithm exposes them) the core::probe quantities the paper's lemmas
/// bound. Probe fields are guarded by the has_* flags.
struct RoundSample {
  sim::Round round = 0;
  sim::RoundMetrics metrics;  ///< this round only, not cumulative
  double wall_seconds = 0.0;

  /// |accepted| extremes and cumulative rejected votes/echoes over
  /// correct Alg. 1 / Alg. 4 processes.
  bool has_acceptance = false;
  std::size_t min_accepted = 0;
  std::size_t max_accepted = 0;
  long rejected_votes = 0;

  /// Alg. 1 rank probes: Delta_r (Lemmas IV.7-9) and the adjacent-rank
  /// gap (Corollary IV.6). Exact rationals carried as strings so no
  /// precision is lost in the report; doubles for plotting.
  bool has_rank_probes = false;
  std::string rank_spread_exact;
  double rank_spread = 0.0;
  std::string adjacent_gap_exact;
  double adjacent_gap = 0.0;

  /// Alg. 4 name probes (Lemmas VI.1 / VI.2), meaningful from round 2.
  bool has_fast_probes = false;
  sim::Name fast_max_discrepancy = 0;
  sim::Name fast_min_gap = 0;
};

/// A finished run as handed to sinks: the full harness result plus the
/// whole-run wall clock measured by the telemetry layer.
struct RunSummary {
  const core::ScenarioResult& result;
  double wall_seconds = 0.0;
};

/// Consumer interface. Sinks are non-owning and must outlive the
/// Telemetry they are attached to. All hooks have empty defaults so a
/// sink overrides only what it consumes.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_run_start(const RunInfo& info) { (void)info; }
  virtual void on_round(const RoundSample& sample) { (void)sample; }
  virtual void on_run_end(const RunSummary& summary) { (void)summary; }
};

/// Fans the runner's single sim::RoundObserver slot out to any number of
/// consumers, invoked in the order they were added. Exists because
/// ScenarioConfig::observer is one slot: without the hub a bench could
/// not keep its own probe lambda AND attach telemetry.
class ObserverHub {
 public:
  void add(sim::RoundObserver observer) {
    if (observer) observers_.push_back(std::move(observer));
  }

  [[nodiscard]] bool empty() const noexcept { return observers_.empty(); }

  void operator()(sim::Round round, const sim::Network& network) const {
    for (const sim::RoundObserver& observer : observers_) observer(round, network);
  }

  /// A single observer that fans out to every added one. Captures this
  /// hub by reference: the hub must outlive the run (the harness keeps
  /// it on the stack around run_to_completion).
  [[nodiscard]] sim::RoundObserver as_observer() const {
    if (observers_.empty()) return {};
    return [this](sim::Round round, const sim::Network& network) { (*this)(round, network); };
  }

 private:
  std::vector<sim::RoundObserver> observers_;
};

/// The hub the harness drives. Pay-for-what-you-use: with no sinks
/// attached, active() is false and the harness skips sampling entirely —
/// a run without telemetry costs exactly what it did before this layer
/// existed.
class Telemetry {
 public:
  /// Attaches a non-owning sink; call order is delivery order.
  void add_sink(TelemetrySink& sink) { sinks_.push_back(&sink); }

  [[nodiscard]] bool active() const noexcept { return !sinks_.empty(); }

  /// Per-round probe sampling (exact-rational rank measurements) can be
  /// switched off for huge sweeps; counters and timers always run.
  void set_probes_enabled(bool enabled) noexcept { probes_ = enabled; }

  // --- Harness-facing API ------------------------------------------------

  void begin_run(RunInfo info);

  /// Samples the network after a round's receive phase; wrap in a
  /// RoundObserver via round_observer().
  void sample_round(sim::Round round, const sim::Network& network);

  [[nodiscard]] sim::RoundObserver round_observer() {
    return [this](sim::Round round, const sim::Network& network) {
      sample_round(round, network);
    };
  }

  void end_run(const core::ScenarioResult& result);

 private:
  std::vector<TelemetrySink*> sinks_;
  bool probes_ = true;
  std::chrono::steady_clock::time_point run_start_{};
  std::chrono::steady_clock::time_point last_round_{};
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_TELEMETRY_H
