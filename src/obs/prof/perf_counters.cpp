#include "obs/prof/perf_counters.h"

#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace byzrename::obs::prof {

bool PerfCounters::disabled_by_env() noexcept {
  const char* value = std::getenv("BYZRENAME_NO_PERF");
  return value != nullptr && value[0] == '1';
}

#ifdef __linux__

namespace {

/// The fixed event list, index-aligned with HwCounts' fields.
constexpr std::uint64_t kEventConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,  // last-level cache misses
    PERF_COUNT_HW_BRANCH_MISSES,
};

int open_event(std::uint64_t config) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // user-space attribution; also lowers the
  attr.exclude_hv = 1;      // perf_event_paranoid privilege bar
  // pid=0, cpu=-1: this thread, on whatever CPU it runs.
  const long fd = ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL);
  return fd < 0 ? -1 : static_cast<int>(fd);
}

}  // namespace

void PerfCounters::open() noexcept {
  if (opened_) return;
  opened_ = true;
  if (disabled_by_env()) return;
  for (int i = 0; i < 4; ++i) fds_[i] = open_event(kEventConfigs[i]);
  for (const int fd : fds_) {
    if (fd >= 0) {
      available_ = true;
      break;
    }
  }
}

void PerfCounters::close() noexcept {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  available_ = false;
  opened_ = false;
}

HwCounts PerfCounters::read() const noexcept {
  HwCounts counts;
  if (!available_) return counts;
  std::uint64_t values[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    if (fds_[i] < 0) continue;
    std::uint64_t value = 0;
    if (::read(fds_[i], &value, sizeof(value)) == sizeof(value)) values[i] = value;
  }
  counts.cycles = values[0];
  counts.instructions = values[1];
  counts.llc_misses = values[2];
  counts.branch_misses = values[3];
  return counts;
}

#else  // !__linux__

void PerfCounters::open() noexcept { opened_ = true; }
void PerfCounters::close() noexcept {
  available_ = false;
  opened_ = false;
}
HwCounts PerfCounters::read() const noexcept { return {}; }

#endif

PerfCounters::~PerfCounters() { close(); }

}  // namespace byzrename::obs::prof
