#include "obs/prof/profiler.h"

#include <chrono>
#include <ctime>

namespace byzrename::obs::prof {

namespace {

std::uint64_t steady_wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local Profiler* t_profiler = nullptr;

}  // namespace

std::uint64_t thread_cpu_ns() noexcept {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

std::uint64_t Profiler::wall_now() const noexcept {
  return options_.clock.wall_ns != nullptr ? options_.clock.wall_ns() : steady_wall_ns();
}

std::uint64_t Profiler::cpu_now() const noexcept {
  return options_.clock.cpu_ns != nullptr ? options_.clock.cpu_ns() : thread_cpu_ns();
}

void Profiler::enter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (options_.hw_counters) counters_.open();  // idempotent, lazy: binds this thread
  const int parent = stack_.empty() ? 0 : stack_.back().node;
  int node = -1;
  for (const int child : nodes_[static_cast<std::size_t>(parent)].children) {
    if (nodes_[static_cast<std::size_t>(child)].name == name) {
      node = child;
      break;
    }
  }
  if (node < 0) {
    node = static_cast<int>(nodes_.size());
    Node fresh;
    fresh.name.assign(name);
    fresh.parent = parent;
    fresh.depth = parent == 0 ? 0 : nodes_[static_cast<std::size_t>(parent)].depth + 1;
    nodes_.push_back(std::move(fresh));
    nodes_[static_cast<std::size_t>(parent)].children.push_back(node);
  }
  Frame frame;
  frame.node = node;
  // Read the clocks LAST so interning/allocation above is not charged
  // as scope time, and the alloc counters FIRST of the measured set so
  // the frame's own bookkeeping never enters the delta.
  const AllocCounts allocs = AllocProfiler::thread_counts();
  frame.allocs0 = allocs.count;
  frame.bytes0 = allocs.bytes;
  if (counters_.available()) frame.hw0 = counters_.read();
  frame.cpu0 = cpu_now();
  frame.wall0 = wall_now();
  stack_.push_back(frame);
}

void Profiler::exit() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stack_.empty()) return;
  const Frame frame = stack_.back();
  stack_.pop_back();
  Node& node = nodes_[static_cast<std::size_t>(frame.node)];
  node.calls += 1;
  const std::uint64_t wall = wall_now();
  if (wall > frame.wall0) node.wall_ns += wall - frame.wall0;
  const std::uint64_t cpu = cpu_now();
  if (cpu > frame.cpu0) node.cpu_ns += cpu - frame.cpu0;
  const AllocCounts allocs = AllocProfiler::thread_counts();
  node.allocs += allocs.count - frame.allocs0;
  node.alloc_bytes += allocs.bytes - frame.bytes0;
  if (counters_.available()) {
    const HwCounts hw = counters_.read();
    node.hw.cycles += hw.cycles - frame.hw0.cycles;
    node.hw.instructions += hw.instructions - frame.hw0.instructions;
    node.hw.llc_misses += hw.llc_misses - frame.hw0.llc_misses;
    node.hw.branch_misses += hw.branch_misses - frame.hw0.branch_misses;
  }
}

bool Profiler::hw_available() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.available();
}

ProfileSnapshot Profiler::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ProfileSnapshot snap;
  snap.hw_available = counters_.available();
  snap.nodes.reserve(nodes_.size() - 1);
  // nodes_ is already in first-visit order with parents before children
  // (a child is interned while its parent exists); dropping the
  // synthetic root shifts every index down by one.
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    ProfileNode out;
    out.name = node.name;
    out.parent = node.parent - 1;  // root's children become parent -1
    out.depth = node.depth;
    out.calls = node.calls;
    out.wall_ns = node.wall_ns;
    out.cpu_ns = node.cpu_ns;
    out.allocs = node.allocs;
    out.alloc_bytes = node.alloc_bytes;
    out.hw = node.hw;
    snap.nodes.push_back(std::move(out));
  }
  return snap;
}

std::string ProfileSnapshot::path(std::size_t index) const {
  std::string joined;
  // Walk up, then reverse-build by prepending — paths are short (phase
  // depth is 2), so the quadratic prepend never matters.
  for (int at = static_cast<int>(index); at >= 0;
       at = nodes[static_cast<std::size_t>(at)].parent) {
    const std::string& name = nodes[static_cast<std::size_t>(at)].name;
    joined = joined.empty() ? name : name + ';' + joined;
  }
  return joined;
}

Profiler* thread_profiler() noexcept { return t_profiler; }

ThreadProfilerGuard::ThreadProfilerGuard(Profiler* profiler) noexcept
    : previous_(t_profiler) {
  t_profiler = profiler;
}

ThreadProfilerGuard::~ThreadProfilerGuard() { t_profiler = previous_; }

}  // namespace byzrename::obs::prof
