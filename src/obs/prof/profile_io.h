#ifndef BYZRENAME_OBS_PROF_PROFILE_IO_H
#define BYZRENAME_OBS_PROF_PROFILE_IO_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "obs/prof/profiler.h"

namespace byzrename::obs {
class HttpServer;
}  // namespace byzrename::obs

namespace byzrename::obs::prof {

/// One byzrename.profile/1 document (kind "run") for a single
/// profiler's tree, on one line. Field-by-field schema in obs/schema.h;
/// the split that matters: `calls`/`allocs`/`alloc_bytes` are
/// deterministic, everything under each node's `volatile` object is
/// wall-clock- or hardware-dependent.
void write_profile_json(std::ostream& os, const ProfileSnapshot& snapshot,
                        std::string_view label);

/// Flamegraph collapsed-stack text: one `root;path value` line per
/// node, value = SELF wall-clock microseconds (inclusive minus
/// children), nodes in first-visit order. Feed to flamegraph.pl /
/// inferno / speedscope as-is.
void write_collapsed(std::ostream& os, const ProfileSnapshot& snapshot,
                     std::string_view root = "byzrename");

/// Prometheus counter families (`byzrename_profile_*_total{scope=...}`)
/// for the ExpositionHub, so a live scrape of /metrics sees per-scope
/// attribution next to the protocol counters. Hardware families are
/// emitted only when counters opened — absent, not zero, per the
/// registry convention.
void write_profile_prometheus(std::ostream& os, const ProfileSnapshot& snapshot);

/// Mounts GET /profile serving @p profiler's live tree as a
/// byzrename.profile/1 document. The profiler must outlive the server;
/// snapshot() does the cross-thread synchronization.
void mount_profile(HttpServer& server, const Profiler& profiler, std::string label);

/// Order-independent merge of per-run profile trees into one per-cell
/// aggregate, keyed by full scope path. Built for the campaign engine's
/// determinism contract: merging is commutative over runs (sums of
/// unsigned counters into a path-sorted map), so the count-based fields
/// of the emitted document are byte-identical at any --threads and
/// across shards, while wall/CPU/hardware sums ride in each node's
/// `volatile` object. Not internally synchronized — the campaign folds
/// under its per-cell mutex, same as CellAggregate.
class ProfileAggregate {
 public:
  struct Entry {
    std::string name;  ///< leaf name (last path segment)
    int depth = 0;
    std::uint64_t runs = 0;  ///< runs whose tree contained this path
    std::uint64_t calls = 0;
    std::uint64_t allocs = 0;
    std::uint64_t alloc_bytes = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t cpu_ns = 0;
    HwCounts hw;
  };

  /// Folds one finished run's tree in.
  void merge(const ProfileSnapshot& snapshot);

  [[nodiscard]] const std::map<std::string, Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t runs() const noexcept { return runs_; }
  [[nodiscard]] bool hw_available() const noexcept { return hw_available_; }

 private:
  std::map<std::string, Entry> entries_;  ///< path -> sums, sorted by path
  std::size_t runs_ = 0;
  bool hw_available_ = false;
};

/// One byzrename.profile/1 document (kind "cell") for a campaign cell's
/// aggregate, on one line. Nodes emit in path-sorted order — the
/// deterministic order merging guarantees.
void write_profile_aggregate_json(std::ostream& os, const ProfileAggregate& aggregate,
                                  std::string_view campaign, std::string_view cell,
                                  std::size_t cell_index);

}  // namespace byzrename::obs::prof

#endif  // BYZRENAME_OBS_PROF_PROFILE_IO_H
