#ifndef BYZRENAME_OBS_PROF_ALLOC_INTERPOSE_H
#define BYZRENAME_OBS_PROF_ALLOC_INTERPOSE_H

// Global operator new/delete replacement that feeds obs::AllocProfiler.
//
// Include this header in EXACTLY ONE translation unit of a binary that
// wants allocation accounting (the benches' main files, the CLI tools).
// Replaceable allocation functions must be ordinary non-inline
// definitions, so a second including TU in the same binary is a
// duplicate-symbol link error — which is the guard against accidentally
// double-counting, not a limitation to work around.
//
// The stubs forward the raw size to prof::detail::note_alloc and then
// to std::malloc / std::aligned_alloc, the same shape the original
// bench_w3_hotpath interposition used (verified under the ASan/UBSan CI
// matrix: a user-provided operator new takes precedence over the
// sanitizer's and its malloc call is still intercepted, so leak checks
// keep working). Deallocation is left uncounted on purpose — see
// AllocProfiler's header comment.

#include <cstdlib>
#include <new>

#include "obs/prof/alloc_profiler.h"

namespace byzrename::obs::prof::detail {
/// Flags interposed() at static-init time, before main.
inline const bool alloc_interpose_registered = (mark_interposed(), true);
}  // namespace byzrename::obs::prof::detail

void* operator new(std::size_t size) {
  byzrename::obs::prof::detail::note_alloc(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  byzrename::obs::prof::detail::note_alloc(size);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// GCC's -Wmismatched-new-delete pairs an inlined free() here with the
// (non-inlined) replaced operator new at some call sites and flags a
// mismatch; the pairing is correct — every pointer the news above
// return came from malloc/aligned_alloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // BYZRENAME_OBS_PROF_ALLOC_INTERPOSE_H
