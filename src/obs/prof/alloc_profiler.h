#ifndef BYZRENAME_OBS_PROF_ALLOC_PROFILER_H
#define BYZRENAME_OBS_PROF_ALLOC_PROFILER_H

#include <cstddef>
#include <cstdint>

namespace byzrename::obs::prof {

/// Monotonic allocation totals: operator-new calls and requested bytes.
/// Frees are deliberately not tracked — the profiler answers "how much
/// allocation PRESSURE does this scope cause", not "what is live".
struct AllocCounts {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Heap-allocation accounting, fed by the per-binary interposition
/// header (obs/prof/alloc_interpose.h). The counting itself lives here
/// in the library so it exists exactly once; a binary opts in by
/// including the interposition header in ONE translation unit, which
/// replaces the global operator new/delete set with forwarding stubs.
///
/// Two counter planes, updated on every allocation:
///  - process totals (relaxed atomics) — what the benches diff around a
///    measured region;
///  - thread-local totals — what Profiler scopes diff, so one run's
///    per-phase allocation attribution is exact and independent of
///    whatever other campaign workers allocate concurrently. This
///    thread-locality is what keeps per-run alloc counts byte-identical
///    at --threads 1 vs 8.
///
/// In a binary that never included the interposition header every query
/// returns zeros and interposed() is false; callers degrade to
/// reporting "allocation counting unavailable" rather than fake zeros.
class AllocProfiler {
 public:
  /// True iff this binary compiled obs/prof/alloc_interpose.h.
  [[nodiscard]] static bool interposed() noexcept;

  /// Process-wide totals since start.
  [[nodiscard]] static AllocCounts process_counts() noexcept;

  /// The calling thread's totals since thread start.
  [[nodiscard]] static AllocCounts thread_counts() noexcept;
};

namespace detail {

/// Called by the interposition stubs on every allocation. Must stay
/// allocation-free and async-signal-tolerant: relaxed atomics plus a
/// trivially-initialized thread_local only.
void note_alloc(std::size_t size) noexcept;

/// Static-init registration proof from the interposition header.
void mark_interposed() noexcept;

}  // namespace detail

}  // namespace byzrename::obs::prof

namespace byzrename::obs {
/// The issue-facing alias: obs::AllocProfiler.
using AllocProfiler = prof::AllocProfiler;
}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_PROF_ALLOC_PROFILER_H
