#ifndef BYZRENAME_OBS_PROF_PROFILER_H
#define BYZRENAME_OBS_PROF_PROFILER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/prof/alloc_profiler.h"
#include "obs/prof/perf_counters.h"

namespace byzrename::obs::prof {

/// One aggregated node of the scoped timer tree. All measured fields
/// are INCLUSIVE of children (standard profile semantics); exporters
/// derive self-values by subtracting child totals.
///
/// Determinism contract (what the campaign's per-cell aggregation and
/// its --threads 1 vs 8 byte-compare gate rely on): `calls`, `allocs`,
/// and `alloc_bytes` are pure functions of the instrumented execution —
/// call counts come from the code path taken and allocation deltas from
/// the executing THREAD's counters (obs/prof/alloc_profiler.h), so
/// concurrent runs on other workers cannot bleed in. Everything else
/// (wall, CPU, hardware counters) is volatile by nature and exporters
/// segregate it accordingly.
struct ProfileNode {
  std::string name;
  int parent = -1;  ///< index into ProfileSnapshot::nodes; -1 = top level
  int depth = 0;    ///< 0 for top-level scopes
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;       ///< CLOCK_THREAD_CPUTIME_ID deltas
  std::uint64_t allocs = 0;       ///< operator-new calls inside the scope
  std::uint64_t alloc_bytes = 0;  ///< bytes requested inside the scope
  HwCounts hw;                    ///< zeros in timer-only mode
};

/// Point-in-time deep copy of a Profiler's tree, safe to hold and
/// export with no further synchronization. Nodes are in first-visit
/// (preorder-compatible) order: a parent always precedes its children.
struct ProfileSnapshot {
  bool hw_available = false;  ///< any hardware counter opened
  std::vector<ProfileNode> nodes;

  /// Semicolon-joined path from the top-level ancestor down to
  /// @p index, e.g. "run;voting k=2" — the collapsed-stack key and the
  /// deterministic sort key of campaign aggregates.
  [[nodiscard]] std::string path(std::size_t index) const;
};

/// Current CLOCK_THREAD_CPUTIME_ID in nanoseconds (0 where unsupported).
/// Exposed for callers that attribute CPU time without a full profiler,
/// e.g. the byzrenamed per-tenant accounting.
[[nodiscard]] std::uint64_t thread_cpu_ns() noexcept;

/// Low-overhead scoped profiler: a tree of named scopes aggregated into
/// per-node wall/CPU time, call counts, allocation deltas, and (when
/// perf_event_open works — see PerfCounters) hardware counters.
///
/// ## Threading model
///
/// One Profiler instruments ONE thread at a time: enter/exit pair on the
/// measuring thread (Scope enforces this by construction), while
/// snapshot() and the write_* exporters in profile_io.h may run
/// concurrently on any number of scrape threads. Every operation takes
/// the internal mutex — uncontended in steady state, the same pattern
/// as obs::GuardedMetricsSink — which is what makes a live GET /profile
/// during a run safe under TSan. Hardware counters open lazily on the
/// first enter() so they attach to the thread actually being measured,
/// not the one that constructed the Profiler.
///
/// ## Steady-state allocation freedom
///
/// Tree nodes are interned on first visit (name copied once, children
/// scanned linearly — no hashing); after a scope has been visited and
/// the frame stack has reached its deepest nesting, enter()/exit() do
/// not allocate. bench_w3_hotpath enforces this: a warmed profiled
/// voting step must show zero heap allocations.
///
/// Like the ProgressTracker, the profiler is a strictly read-only
/// observer: nothing it measures feeds back into any run result, so
/// attaching one cannot perturb the determinism gates.
class Profiler {
 public:
  /// Injectable time sources, for deterministic exporter goldens. Plain
  /// function pointers so the hot path stays allocation- and
  /// indirection-cheap; null selects the real clock.
  struct ClockOverride {
    std::uint64_t (*wall_ns)() = nullptr;
    std::uint64_t (*cpu_ns)() = nullptr;
  };

  struct Options {
    /// Request hardware counters (still subject to PerfCounters
    /// availability and BYZRENAME_NO_PERF).
    bool hw_counters = true;
    ClockOverride clock;
  };

  Profiler() = default;
  explicit Profiler(Options options) : options_(options) {}
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Opens (interns) the named child of the current scope and pushes it.
  /// Prefer the RAII Scope over calling this directly.
  void enter(std::string_view name);

  /// Pops the current scope, folding its deltas into the node.
  /// Tolerates an unbalanced call (no-op on an empty stack) so an
  /// exception unwinding past manual enter() calls cannot corrupt state.
  void exit();

  /// True once hardware counters opened (false before the first enter).
  [[nodiscard]] bool hw_available() const;

  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  struct Node {
    std::string name;
    int parent = 0;  ///< internal index (0 = synthetic root)
    int depth = 0;
    std::vector<int> children;
    std::uint64_t calls = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t cpu_ns = 0;
    std::uint64_t allocs = 0;
    std::uint64_t alloc_bytes = 0;
    HwCounts hw;
  };

  struct Frame {
    int node = 0;
    std::uint64_t wall0 = 0;
    std::uint64_t cpu0 = 0;
    std::uint64_t allocs0 = 0;
    std::uint64_t bytes0 = 0;
    HwCounts hw0;
  };

  [[nodiscard]] std::uint64_t wall_now() const noexcept;
  [[nodiscard]] std::uint64_t cpu_now() const noexcept;

  Options options_;
  mutable std::mutex mutex_;
  /// nodes_[0] is a synthetic root holding the top-level children; it
  /// never appears in snapshots.
  std::vector<Node> nodes_{1};
  std::vector<Frame> stack_;
  PerfCounters counters_;
};

/// RAII scope. Null profiler = fully inert (a test of a branch, not a
/// lock), so call sites can stay unconditional:
///   prof::Scope scope(config.profiler, "setup");
class Scope {
 public:
  Scope(Profiler* profiler, std::string_view name) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->enter(name);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope() { close(); }

  /// Ends the scope early (idempotent) — for functions whose
  /// instrumented region ends before their frame does.
  void close() {
    if (profiler_ != nullptr) profiler_->exit();
    profiler_ = nullptr;
  }

 private:
  Profiler* profiler_;
};

/// The calling thread's ambient profiler (null when none installed).
/// Lets deeply nested code open caller-defined scopes without threading
/// a Profiler* through every signature.
[[nodiscard]] Profiler* thread_profiler() noexcept;

/// Installs @p profiler as the calling thread's ambient profiler for
/// the guard's lifetime, restoring the previous one after (guards
/// nest). Null is allowed and installs "no profiler".
class ThreadProfilerGuard {
 public:
  explicit ThreadProfilerGuard(Profiler* profiler) noexcept;
  ThreadProfilerGuard(const ThreadProfilerGuard&) = delete;
  ThreadProfilerGuard& operator=(const ThreadProfilerGuard&) = delete;
  ~ThreadProfilerGuard();

 private:
  Profiler* previous_;
};

/// Scope against the ambient thread profiler; inert when none is
/// installed. The instrument of choice for library-internal call sites.
class AmbientScope : public Scope {
 public:
  explicit AmbientScope(std::string_view name) : Scope(thread_profiler(), name) {}
};

}  // namespace byzrename::obs::prof

#endif  // BYZRENAME_OBS_PROF_PROFILER_H
