#ifndef BYZRENAME_OBS_PROF_PERF_COUNTERS_H
#define BYZRENAME_OBS_PROF_PERF_COUNTERS_H

#include <cstdint>

namespace byzrename::obs::prof {

/// One hardware-counter reading (or a delta between two readings).
/// Counters that could not be opened stay 0, so consumers can always
/// sum/subtract without branching on availability.
struct HwCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// The four fixed hardware events the profiler samples at scope
/// boundaries, opened via the raw perf_event_open syscall (there is no
/// libc wrapper) against the calling thread.
///
/// Availability is strictly best-effort — the profiler's contract is to
/// degrade to timer-only mode, never to fail:
///  - the syscall itself may be absent or forbidden (ENOSYS in seccomp'd
///    CI containers, EACCES/EPERM under perf_event_paranoid >= 2 without
///    CAP_PERFMON, ENOENT when the PMU is not exposed, e.g. many VMs);
///  - individual events may be missing while others work (LLC-miss
///    counters are frequently unavailable under virtualization), in
///    which case the open events count and the rest read 0.
/// `BYZRENAME_NO_PERF=1` forces timer-only mode, which is how the prof
/// test suite exercises the degraded path on machines where the
/// counters would otherwise work.
///
/// The events are opened with pid=0/cpu=-1: they follow the OPENING
/// thread. Profiler opens its counters lazily on the first scope enter
/// so they attach to the thread actually being measured.
class PerfCounters {
 public:
  PerfCounters() = default;
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// Attempts to open all four events on the calling thread. Idempotent;
  /// respects disabled_by_env(). Never throws.
  void open() noexcept;
  void close() noexcept;

  /// True when at least one event opened.
  [[nodiscard]] bool available() const noexcept { return available_; }

  /// Current cumulative values of the open events (0 for closed ones).
  [[nodiscard]] HwCounts read() const noexcept;

  /// BYZRENAME_NO_PERF=1 in the environment: force timer-only mode.
  [[nodiscard]] static bool disabled_by_env() noexcept;

 private:
  int fds_[4] = {-1, -1, -1, -1};
  bool available_ = false;
  bool opened_ = false;
};

}  // namespace byzrename::obs::prof

#endif  // BYZRENAME_OBS_PROF_PERF_COUNTERS_H
