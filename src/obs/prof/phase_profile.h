#ifndef BYZRENAME_OBS_PROF_PHASE_PROFILE_H
#define BYZRENAME_OBS_PROF_PHASE_PROFILE_H

#include <cstdio>

#include "core/phase.h"
#include "obs/prof/profiler.h"
#include "sim/runner.h"

namespace byzrename::obs::prof {

/// sim::RoundHook adapter that opens one profiler scope per round,
/// named by the core/phase.h taxonomy — "selection", "echo", "ready",
/// "voting k=<k>", "decision k=<k>" (matching core::phase_label), or
/// "protocol" for unmodeled baselines. The harness stacks it under its
/// "run" scope, so paths come out as "run;voting k=2".
///
/// The label is formatted into a fixed buffer: after each distinct
/// round label has been interned once, per-round bracketing allocates
/// nothing.
class PhaseRoundProfiler final : public sim::RoundHook {
 public:
  /// @p iterations is the resolved voting iteration count
  /// (core::round_phase's contract; pass <= 0 when not applicable).
  PhaseRoundProfiler(Profiler& profiler, core::Algorithm algorithm, int iterations) noexcept
      : profiler_(profiler), algorithm_(algorithm), iterations_(iterations) {}

  void on_round_begin(sim::Round round) override {
    const core::RoundPhase classified = core::round_phase(algorithm_, round, iterations_);
    if (classified.voting_iteration > 0) {
      char label[32];
      std::snprintf(label, sizeof(label), "%s k=%d", core::to_string(classified.phase),
                    classified.voting_iteration);
      profiler_.enter(label);
    } else {
      profiler_.enter(core::to_string(classified.phase));
    }
  }

  void on_round_end(sim::Round) override { profiler_.exit(); }

 private:
  Profiler& profiler_;
  core::Algorithm algorithm_;
  int iterations_;
};

}  // namespace byzrename::obs::prof

#endif  // BYZRENAME_OBS_PROF_PHASE_PROFILE_H
