#include "obs/prof/alloc_profiler.h"

#include <atomic>

namespace byzrename::obs::prof {

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<bool> g_interposed{false};

/// Trivially constructible/destructible: no TLS guard variable, no
/// destructor ordering hazard when operator delete runs during thread
/// teardown (we never touch it from deallocation anyway).
thread_local AllocCounts t_alloc_counts;

}  // namespace

void detail::note_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  t_alloc_counts.count += 1;
  t_alloc_counts.bytes += size;
}

void detail::mark_interposed() noexcept {
  g_interposed.store(true, std::memory_order_relaxed);
}

bool AllocProfiler::interposed() noexcept {
  return g_interposed.load(std::memory_order_relaxed);
}

AllocCounts AllocProfiler::process_counts() noexcept {
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

AllocCounts AllocProfiler::thread_counts() noexcept { return t_alloc_counts; }

}  // namespace byzrename::obs::prof
