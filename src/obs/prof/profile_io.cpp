#include "obs/prof/profile_io.h"

#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/http/exposition.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/schema.h"

namespace byzrename::obs::prof {

namespace {

/// The per-node measurement block shared by run and cell documents.
/// Deterministic fields first, volatile (wall/CPU/hardware) nested —
/// the campaign byte-compare gate strips `volatile` with jq and
/// compares the rest.
void write_node_fields(JsonWriter& json, std::string_view path, std::string_view name,
                       int depth, std::uint64_t calls, std::uint64_t allocs,
                       std::uint64_t alloc_bytes, std::uint64_t wall_ns,
                       std::uint64_t cpu_ns, const HwCounts& hw) {
  json.field("path", path)
      .field("name", name)
      .field("depth", depth)
      .field("calls", calls)
      .field("allocs", allocs)
      .field("alloc_bytes", alloc_bytes);
  json.key("volatile").begin_object();
  json.field("wall_seconds", static_cast<double>(wall_ns) * 1e-9)
      .field("cpu_seconds", static_cast<double>(cpu_ns) * 1e-9)
      .field("cycles", hw.cycles)
      .field("instructions", hw.instructions)
      .field("llc_misses", hw.llc_misses)
      .field("branch_misses", hw.branch_misses);
  json.end_object();
}

}  // namespace

void write_profile_json(std::ostream& os, const ProfileSnapshot& snapshot,
                        std::string_view label) {
  JsonWriter json(os);
  json.begin_object();
  json.field("schema", kProfileSchema).field("kind", "run");
  if (!label.empty()) json.field("label", label);
  json.field("hw_counters", snapshot.hw_available);
  json.field("alloc_counting", AllocProfiler::interposed());
  json.key("nodes").begin_array();
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const ProfileNode& node = snapshot.nodes[i];
    json.begin_object();
    write_node_fields(json, snapshot.path(i), node.name, node.depth, node.calls,
                      node.allocs, node.alloc_bytes, node.wall_ns, node.cpu_ns, node.hw);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

void write_collapsed(std::ostream& os, const ProfileSnapshot& snapshot,
                     std::string_view root) {
  // Self time = inclusive minus the sum of children (clamped: clock
  // jitter can make children sum slightly past the parent).
  std::vector<std::uint64_t> child_wall(snapshot.nodes.size(), 0);
  for (const ProfileNode& node : snapshot.nodes) {
    if (node.parent >= 0) {
      child_wall[static_cast<std::size_t>(node.parent)] += node.wall_ns;
    }
  }
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const ProfileNode& node = snapshot.nodes[i];
    const std::uint64_t self_ns =
        node.wall_ns > child_wall[i] ? node.wall_ns - child_wall[i] : 0;
    os << root << ';' << snapshot.path(i) << ' ' << self_ns / 1000 << '\n';
  }
}

void write_profile_prometheus(std::ostream& os, const ProfileSnapshot& snapshot) {
  if (snapshot.nodes.empty()) return;
  struct Family {
    const char* name;
    const char* help;
    bool hw;
  };
  // One pass per family keeps # HELP/# TYPE headers grouped the way the
  // text format requires.
  const auto emit = [&](const char* name, const char* help, auto value_of) {
    os << "# HELP " << name << ' ' << help << '\n' << "# TYPE " << name << " counter\n";
    for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
      os << name << "{scope=\"";
      write_prometheus_label_value(os, snapshot.path(i));
      os << "\"} " << value_of(snapshot.nodes[i]) << '\n';
    }
  };
  emit("byzrename_profile_wall_seconds_total",
       "Wall-clock seconds attributed to the scope (inclusive of children).",
       [](const ProfileNode& n) { return static_cast<double>(n.wall_ns) * 1e-9; });
  emit("byzrename_profile_cpu_seconds_total",
       "Thread CPU seconds attributed to the scope (inclusive).",
       [](const ProfileNode& n) { return static_cast<double>(n.cpu_ns) * 1e-9; });
  emit("byzrename_profile_calls_total", "Scope enter/exit pairs.",
       [](const ProfileNode& n) { return n.calls; });
  emit("byzrename_profile_allocations_total",
       "Heap allocations inside the scope (0 without alloc interposition).",
       [](const ProfileNode& n) { return n.allocs; });
  emit("byzrename_profile_alloc_bytes_total",
       "Heap bytes requested inside the scope.",
       [](const ProfileNode& n) { return n.alloc_bytes; });
  if (snapshot.hw_available) {
    emit("byzrename_profile_cycles_total", "CPU cycles inside the scope (perf_event).",
         [](const ProfileNode& n) { return n.hw.cycles; });
    emit("byzrename_profile_instructions_total",
         "Instructions retired inside the scope (perf_event).",
         [](const ProfileNode& n) { return n.hw.instructions; });
    emit("byzrename_profile_llc_misses_total",
         "Last-level cache misses inside the scope (perf_event).",
         [](const ProfileNode& n) { return n.hw.llc_misses; });
    emit("byzrename_profile_branch_misses_total",
         "Branch mispredictions inside the scope (perf_event).",
         [](const ProfileNode& n) { return n.hw.branch_misses; });
  }
}

void mount_profile(HttpServer& server, const Profiler& profiler, std::string label) {
  mount_json(server, "/profile", [&profiler, label = std::move(label)](std::ostream& os) {
    write_profile_json(os, profiler.snapshot(), label);
  });
}

void ProfileAggregate::merge(const ProfileSnapshot& snapshot) {
  runs_ += 1;
  hw_available_ = hw_available_ || snapshot.hw_available;
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const ProfileNode& node = snapshot.nodes[i];
    Entry& entry = entries_[snapshot.path(i)];
    if (entry.runs == 0) {
      entry.name = node.name;
      entry.depth = node.depth;
    }
    entry.runs += 1;
    entry.calls += node.calls;
    entry.allocs += node.allocs;
    entry.alloc_bytes += node.alloc_bytes;
    entry.wall_ns += node.wall_ns;
    entry.cpu_ns += node.cpu_ns;
    entry.hw.cycles += node.hw.cycles;
    entry.hw.instructions += node.hw.instructions;
    entry.hw.llc_misses += node.hw.llc_misses;
    entry.hw.branch_misses += node.hw.branch_misses;
  }
}

void write_profile_aggregate_json(std::ostream& os, const ProfileAggregate& aggregate,
                                  std::string_view campaign, std::string_view cell,
                                  std::size_t cell_index) {
  JsonWriter json(os);
  json.begin_object();
  json.field("schema", kProfileSchema)
      .field("kind", "cell")
      .field("campaign", campaign)
      .field("cell", cell)
      .field("cell_index", static_cast<std::uint64_t>(cell_index))
      .field("runs", static_cast<std::uint64_t>(aggregate.runs()))
      .field("hw_counters", aggregate.hw_available())
      .field("alloc_counting", AllocProfiler::interposed());
  json.key("nodes").begin_array();
  for (const auto& [path, entry] : aggregate.entries()) {
    json.begin_object();
    json.field("path", path)
        .field("name", entry.name)
        .field("depth", entry.depth)
        .field("node_runs", entry.runs)
        .field("calls", entry.calls)
        .field("allocs", entry.allocs)
        .field("alloc_bytes", entry.alloc_bytes);
    json.key("volatile").begin_object();
    json.field("wall_seconds", static_cast<double>(entry.wall_ns) * 1e-9)
        .field("cpu_seconds", static_cast<double>(entry.cpu_ns) * 1e-9)
        .field("cycles", entry.hw.cycles)
        .field("instructions", entry.hw.instructions)
        .field("llc_misses", entry.hw.llc_misses)
        .field("branch_misses", entry.hw.branch_misses);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

}  // namespace byzrename::obs::prof
