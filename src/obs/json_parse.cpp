#include "obs/json_parse.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace byzrename::obs {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::invalid_argument(std::string("json: value is not ") + wanted);
}

/// Nesting bound: the parser recurses once per container level, so a
/// hostile body of 100k '['s would otherwise overrun the stack. Far
/// above anything the repo's own writers or the service API produce.
constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("json: " + message + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      // Duplicate keys are ambiguous (RFC 8259 leaves the semantics to
      // the implementation) and this parser now reads request bodies
      // from service clients, so reject instead of silently last-wins.
      if (members.contains(key)) fail("duplicate object key '" + key + "'");
      members.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') {
        --depth_;
        return JsonValue(std::move(members));
      }
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') {
        --depth_;
        return JsonValue(std::move(elements));
      }
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    const bool integral = token.find_first_of(".eE") == std::string_view::npos;
    if (integral && token[0] == '-') {
      std::int64_t value = 0;
      const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && end == token.data() + token.size()) return JsonValue(value);
    } else if (integral) {
      // Non-negative integers parse as uint64 so seeds above int64 max
      // (which JsonWriter emits as plain numbers) round-trip exactly.
      std::uint64_t value = 0;
      const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && end == token.data() + token.size()) return JsonValue(value);
    }
    double value = 0.0;
    const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || end != token.data() + token.size()) fail("bad number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) type_error("a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kInt || !int_fits_) type_error("an int64");
  return int_;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind_ != Kind::kInt || !uint_fits_) type_error("a uint64");
  return uint_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) {
    return int_fits_ ? static_cast<double>(int_) : static_cast<double>(uint_);
  }
  if (kind_ != Kind::kDouble) type_error("a number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) type_error("a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) type_error("an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) type_error("an object");
  return object_;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* member = find(key);
  if (member == nullptr) {
    throw std::invalid_argument("json: missing member '" + std::string(key) + "'");
  }
  return *member;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace byzrename::obs
