#include "obs/telemetry.h"

#include <limits>

#include "core/fast_renaming.h"
#include "core/harness.h"
#include "core/op_renaming.h"
#include "core/probe.h"
#include "sim/network.h"

namespace byzrename::obs {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

void Telemetry::begin_run(RunInfo info) {
  if (sinks_.empty()) return;
  run_start_ = std::chrono::steady_clock::now();
  last_round_ = run_start_;
  for (TelemetrySink* sink : sinks_) sink->on_run_start(info);
}

void Telemetry::sample_round(sim::Round round, const sim::Network& network) {
  if (sinks_.empty()) return;

  RoundSample sample;
  sample.round = round;
  if (!network.metrics().per_round().empty()) {
    sample.metrics = network.metrics().per_round().back();
  }
  const auto now = std::chrono::steady_clock::now();
  sample.wall_seconds = seconds_between(last_round_, now);
  last_round_ = now;

  // Acceptance/rejection counters over correct Alg. 1 / Alg. 4 processes
  // — the same introspection the harness performs once at run end, here
  // per round so reports carry the whole series.
  bool any_op = false;
  bool any_fast = false;
  std::size_t min_accepted = std::numeric_limits<std::size_t>::max();
  std::size_t max_accepted = 0;
  long rejected = 0;
  for (sim::ProcessIndex i = 0; i < network.size(); ++i) {
    if (network.is_byzantine(i)) continue;
    const sim::ProcessBehavior& behavior = network.behavior(i);
    if (const auto* op = dynamic_cast<const core::OpRenamingProcess*>(&behavior)) {
      any_op = true;
      min_accepted = std::min(min_accepted, op->accepted().size());
      max_accepted = std::max(max_accepted, op->accepted().size());
      rejected += op->rejected_votes();
    } else if (const auto* fast = dynamic_cast<const core::FastRenamingProcess*>(&behavior)) {
      any_fast = true;
      min_accepted = std::min(min_accepted, fast->accepted().size());
      max_accepted = std::max(max_accepted, fast->accepted().size());
      rejected += fast->rejected_echoes();
    }
  }
  if (any_op || any_fast) {
    sample.has_acceptance = true;
    sample.min_accepted = min_accepted;
    sample.max_accepted = max_accepted;
    sample.rejected_votes = rejected;
  }

  if (probes_ && any_op) {
    sample.has_rank_probes = true;
    const numeric::Rational spread = core::max_rank_spread(network, /*timely_only=*/true);
    sample.rank_spread_exact = spread.to_string();
    sample.rank_spread = spread.to_double();
    const numeric::Rational gap = core::min_adjacent_rank_gap(network);
    sample.adjacent_gap_exact = gap.to_string();
    sample.adjacent_gap = gap.to_double();
  }
  if (probes_ && any_fast && round >= 2) {
    const core::FastNameStats stats = core::fast_name_stats(network);
    if (stats.min_gap != std::numeric_limits<sim::Name>::max()) {
      sample.has_fast_probes = true;
      sample.fast_max_discrepancy = stats.max_discrepancy;
      sample.fast_min_gap = stats.min_gap;
    }
  }

  for (TelemetrySink* sink : sinks_) sink->on_round(sample);
}

void Telemetry::end_run(const core::ScenarioResult& result) {
  if (sinks_.empty()) return;
  const RunSummary summary{result, seconds_between(run_start_, std::chrono::steady_clock::now())};
  for (TelemetrySink* sink : sinks_) sink->on_run_end(summary);
}

}  // namespace byzrename::obs
