#ifndef BYZRENAME_OBS_TRACE_EXPORT_H
#define BYZRENAME_OBS_TRACE_EXPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event_log.h"

namespace byzrename::sim {
class Metrics;
}  // namespace byzrename::sim

namespace byzrename::obs {

/// Context for the trace-event exporter. Everything is optional: counts
/// left at 0 are inferred from the event log, at the price of missing
/// silent processes (a process that never sent nor received would get no
/// track) — the harness knows the real N and passes it.
struct TraceMeta {
  std::string title;            ///< shown as the process name in the UI
  int process_count = 0;        ///< tracks to render; 0 = infer from events
  std::vector<bool> byzantine;  ///< per-process flag, marks tracks "[byz]"
  int rounds = 0;               ///< round-boundary track length; 0 = infer
  /// Per-round phase labels (core::phase_label), phase_labels[r-1] naming
  /// round r — rendered as a dedicated "phase" lane above the round
  /// track. Empty = no phase lane.
  std::vector<std::string> phase_labels;
  /// Per-round communication counters; when attached the exporter emits
  /// Chrome counter ("C") tracks — messages, bits, equivocating sends,
  /// injected faults — aligned with the round windows. Non-owning.
  const sim::Metrics* metrics = nullptr;
};

/// Renders an EventLog as Chrome trace-event JSON ("traceEvents" array
/// of complete events), loadable in chrome://tracing and Perfetto.
///
/// Layout: the synchronous lockstep timeline is synthesized — round r
/// occupies the window [(r-1)*1ms, r*1ms). Each process is one track
/// (tid = physical index); its send slices fill the first half of the
/// window, deliver slices the second half, and a decide slice closes the
/// round in which the process first reported done(). A dedicated
/// "rounds" track carries one slice per round so round boundaries stay
/// visible at any zoom. Within a phase, a track's events split the phase
/// window evenly, preserving log order.
///
/// Fault-injection decisions (trace::Event::Kind::kFault) render as
/// instant ("i") events on the affected endpoint's track, so a dropped
/// or delayed delivery is visible exactly where the message would have
/// landed. With TraceMeta::phase_labels a "phase" lane names each
/// round's protocol phase; with TraceMeta::metrics counter ("C") tracks
/// plot the per-round message/bit/fault series under the slices.
void write_chrome_trace(std::ostream& os, const trace::EventLog& log,
                        const TraceMeta& meta = {});

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_TRACE_EXPORT_H
