#include "obs/complexity_audit.h"

#include <cmath>
#include <ostream>
#include <string>

#include "core/harness.h"
#include "obs/json.h"
#include "obs/schema.h"

namespace byzrename::obs {

namespace {

/// ceil(log2(x)) for x >= 1; 0 for x <= 1 (matches core/params.h's
/// iteration-count convention where log of a single fault is 0).
int ceil_log2(int x) {
  int bits = 0;
  for (int v = 1; v < x; v *= 2) bits += 1;
  return bits;
}

/// Floating-point slack for the contraction envelope: the exact-rational
/// probe is rendered through a double, so allow relative epsilon plus a
/// tiny absolute floor for envelopes that reach zero.
constexpr double kRelTolerance = 1e-9;
constexpr double kAbsTolerance = 1e-9;

bool within_upper(double observed, double limit) {
  return observed <= limit * (1.0 + kRelTolerance) + kAbsTolerance;
}

}  // namespace

void ComplexityAuditor::on_run_start(const RunInfo& info) {
  info_ = info;
  const auto algorithm = core::algorithm_from_name(info.algorithm);
  algorithm_known_ = algorithm.has_value();
  if (algorithm_known_) algorithm_ = *algorithm;
  complete_ = false;
  have_baseline_ = false;
  baseline_spread_ = 0.0;
  have_contraction_ = false;
  worst_spread_ = worst_envelope_ = 0.0;
  worst_round_ = worst_iteration_ = 0;
  have_fast_ = false;
  fast_worst_discrepancy_ = 0.0;
  fast_worst_gap_ = 0.0;
  fast_discrepancy_round_ = fast_gap_round_ = 0;
  bounds_.clear();
}

void ComplexityAuditor::on_round(const RoundSample& sample) {
  const bool voting_shape = algorithm_known_ &&
                            (algorithm_ == core::Algorithm::kOpRenaming ||
                             algorithm_ == core::Algorithm::kOpRenamingConstantTime);
  if (voting_shape && sample.has_rank_probes && info_.t >= 1) {
    if (sample.round == 4) {
      // Delta_4: the spread the ready extension hands to the voting loop
      // (initial ranks are assigned at the end of round 4).
      have_baseline_ = true;
      baseline_spread_ = sample.rank_spread;
    } else if (sample.round > 4 && have_baseline_) {
      const int k = sample.round - 4;  // voting iteration, Lemma IV.8's r
      const double rate = contraction_rate(info_.n, info_.t);
      const double envelope = baseline_spread_ / std::pow(rate, k);
      // Keep the single worst round by margin over its own envelope.
      const bool worse = !have_contraction_ ||
                         sample.rank_spread - envelope > worst_spread_ - worst_envelope_;
      if (worse) {
        have_contraction_ = true;
        worst_spread_ = sample.rank_spread;
        worst_envelope_ = envelope;
        worst_round_ = sample.round;
        worst_iteration_ = k;
      }
    }
  }
  if (algorithm_known_ && algorithm_ == core::Algorithm::kFastRenaming &&
      sample.has_fast_probes) {
    const auto discrepancy = static_cast<double>(sample.fast_max_discrepancy);
    const auto gap = static_cast<double>(sample.fast_min_gap);
    if (!have_fast_) {
      have_fast_ = true;
      fast_worst_discrepancy_ = discrepancy;
      fast_worst_gap_ = gap;
      fast_discrepancy_round_ = fast_gap_round_ = sample.round;
    } else {
      if (discrepancy > fast_worst_discrepancy_) {
        fast_worst_discrepancy_ = discrepancy;
        fast_discrepancy_round_ = sample.round;
      }
      if (gap < fast_worst_gap_) {
        fast_worst_gap_ = gap;
        fast_gap_round_ = sample.round;
      }
    }
  }
}

void ComplexityAuditor::on_run_end(const RunSummary& summary) {
  bounds_.clear();
  const sim::Metrics& metrics = summary.result.run.metrics;
  const double n = info_.n;
  const double t = info_.t;
  const int rounds = summary.result.run.rounds;

  const bool voting_shape = algorithm_known_ &&
                            (algorithm_ == core::Algorithm::kOpRenaming ||
                             algorithm_ == core::Algorithm::kOpRenamingConstantTime);
  const bool fast = algorithm_known_ && algorithm_ == core::Algorithm::kFastRenaming;

  // steps: the protocol's closed-form round count. For op/const that is
  // 4 + iterations (Thm. IV.12's 3*ceil(log2 t)+7 when iterations keep
  // their default 3*ceil(log2 t)+3); for fast it is Alg. 4's 2 steps.
  if ((voting_shape && info_.iterations > 0) || fast) {
    AuditBound steps;
    steps.bound = "steps";
    if (fast) {
      steps.formula = "2 (Alg. 4)";
      steps.limit = 2.0;
    } else if (info_.iterations == 3 * ceil_log2(info_.t) + 3) {
      steps.formula = "3*ceil(log2 t)+7 (Thm. IV.12)";
      steps.limit = 4.0 + info_.iterations;
    } else {
      steps.formula = "4 + iterations (Alg. 1)";
      steps.limit = 4.0 + info_.iterations;
    }
    steps.observed = rounds;
    steps.ok = within_upper(steps.observed, steps.limit);
    bounds_.push_back(std::move(steps));
  }

  // messages: correct processes only broadcast, so the hard ceiling is
  // N^2 per round; the 4.5x measured envelope keeps the same shape with
  // slack to spare (EXPERIMENTS.md T4).
  {
    AuditBound messages;
    messages.bound = "messages";
    messages.formula = "4.5 * N^2 * rounds (Sec. IV-D, measured constant)";
    messages.limit = kMessageConstant * n * n * static_cast<double>(rounds > 0 ? rounds : 1);
    messages.observed = static_cast<double>(metrics.total_correct_messages());
    messages.ok = within_upper(messages.observed, messages.limit);
    messages.detail = std::to_string(rounds) + " rounds";
    bounds_.push_back(std::move(messages));
  }

  // bit_size: Section IV-D's vote-vector size — N+t accepted ids, each
  // carried with a 64-bit original id, a log N rank numerator, and the
  // codec's fixed per-entry overhead (measured 40 bits).
  if (voting_shape) {
    AuditBound bits;
    bits.bound = "bit_size";
    bits.formula = "(N+t)*(64+ceil(log2 N)+40) bits (Sec. IV-D)";
    bits.limit = (n + t) * (64.0 + ceil_log2(info_.n) + 40.0);
    bits.observed = static_cast<double>(metrics.max_correct_message_bits());
    bits.ok = within_upper(bits.observed, bits.limit);
    bounds_.push_back(std::move(bits));
  }

  // rank_contraction: Delta_r against the constructive per-iteration
  // contraction envelope (Finding #1's rate, seeded at Delta_4).
  if (have_contraction_) {
    AuditBound contraction;
    contraction.bound = "rank_contraction";
    contraction.formula = "Delta_4 / (floor((N-2t-1)/t)+1)^k (Lemma IV.8, Finding #1)";
    contraction.limit = worst_envelope_;
    contraction.observed = worst_spread_;
    contraction.ok = within_upper(contraction.observed, contraction.limit);
    contraction.detail = "round " + std::to_string(worst_round_) + " (k=" +
                         std::to_string(worst_iteration_) +
                         "), rate=" + std::to_string(contraction_rate(info_.n, info_.t));
    bounds_.push_back(std::move(contraction));
  }

  if (fast && have_fast_) {
    AuditBound discrepancy;
    discrepancy.bound = "fast_discrepancy";
    discrepancy.formula = "2*t^2 (Lemma VI.1)";
    discrepancy.limit = 2.0 * t * t;
    discrepancy.observed = fast_worst_discrepancy_;
    discrepancy.ok = within_upper(discrepancy.observed, discrepancy.limit);
    discrepancy.detail = "round " + std::to_string(fast_discrepancy_round_);
    bounds_.push_back(std::move(discrepancy));

    AuditBound gap;
    gap.bound = "fast_gap";
    gap.formula = "N-t (Lemma VI.2, lower bound)";
    gap.upper = false;
    gap.limit = n - t;
    gap.observed = fast_worst_gap_;
    gap.ok = gap.observed >= gap.limit * (1.0 - kRelTolerance) - kAbsTolerance;
    gap.detail = "round " + std::to_string(fast_gap_round_);
    bounds_.push_back(std::move(gap));
  }

  complete_ = true;
}

bool ComplexityAuditor::all_ok() const noexcept {
  for (const AuditBound& bound : bounds_) {
    if (!bound.ok) return false;
  }
  return true;
}

void ComplexityAuditor::write_audit_jsonl(std::ostream& os) const {
  JsonWriter json(os);
  json.begin_object();
  json.field("schema", kAuditSchema);
  if (!info_.label.empty()) json.field("label", info_.label);
  json.key("run").begin_object();
  json.field("algorithm", info_.algorithm)
      .field("n", info_.n)
      .field("t", info_.t)
      .field("faults", info_.faults)
      .field("adversary", info_.adversary)
      .field("seed", static_cast<unsigned long long>(info_.seed))
      .field("iterations", info_.iterations)
      .field("round_budget", info_.round_budget);
  json.end_object();
  int violations = 0;
  for (const AuditBound& bound : bounds_) {
    if (!bound.ok) violations += 1;
  }
  json.key("verdict").begin_object();
  json.field("complete", complete_)
      .field("all_ok", all_ok())
      .field("bounds_checked", static_cast<int>(bounds_.size()))
      .field("violations", violations);
  json.end_object();
  json.key("bounds").begin_array();
  for (const AuditBound& bound : bounds_) {
    json.begin_object();
    json.field("bound", bound.bound)
        .field("formula", bound.formula)
        .field("direction", bound.upper ? "upper" : "lower")
        .field("limit", bound.limit)
        .field("observed", bound.observed)
        .field("ok", bound.ok);
    if (!bound.detail.empty()) json.field("detail", bound.detail);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
  os.flush();
}

}  // namespace byzrename::obs
