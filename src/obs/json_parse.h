#ifndef BYZRENAME_OBS_JSON_PARSE_H
#define BYZRENAME_OBS_JSON_PARSE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace byzrename::obs {

/// Minimal JSON document tree — the reading counterpart of JsonWriter,
/// added for the repro-bundle loader (exp/repro.h) and now also the
/// byzrenamed request parser. Deliberately small — no streaming, no
/// comments, no tolerance of malformed input — but hardened for client
/// bodies: nesting is capped and duplicate object keys are rejected
/// (both throw std::invalid_argument, like every other malformation).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// std::map: deterministic iteration order for anything re-emitting.
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(std::int64_t n)
      : kind_(Kind::kInt), int_(n), uint_(static_cast<std::uint64_t>(n)), int_fits_(true),
        uint_fits_(n >= 0) {}
  explicit JsonValue(std::uint64_t n)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(n)), uint_(n),
        int_fits_(n <= 0x7fffffffffffffffull), uint_fits_(true) {}
  explicit JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch so
  /// a malformed bundle fails loudly instead of yielding zeros.
  [[nodiscard]] bool as_bool() const;
  /// Accepts kInt in int64 range; numbers parsed with a '.', 'e', or 'E'
  /// are kDouble and must be read with as_double.
  [[nodiscard]] std::int64_t as_int() const;
  /// Accepts non-negative kInt; exact across the full uint64 range
  /// (seeds are uint64 and must round-trip bit-for-bit).
  [[nodiscard]] std::uint64_t as_uint() const;
  /// Accepts kInt or kDouble.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; throws std::invalid_argument when this is not
  /// an object or the key is absent. Use find() for optional members.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// nullptr when this is not an object or the key is absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  bool int_fits_ = false;
  bool uint_fits_ = false;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document; trailing non-whitespace, unpaired
/// surrogates, or any other malformation throws std::invalid_argument
/// with a byte offset in the message.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_JSON_PARSE_H
