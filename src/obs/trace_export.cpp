#include "obs/trace_export.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <tuple>

#include "obs/json.h"
#include "sim/metrics.h"

namespace byzrename::obs {

namespace {

// One synchronous round = 1000 µs of synthesized timeline. The send
// phase fills the first half, the receive phase the second, and decide
// slices close the round — mirroring the lockstep semantics (all round-r
// sends happen before any round-r delivery).
constexpr double kRoundUs = 1000.0;
constexpr double kSendStartUs = 0.0;
constexpr double kSendWidthUs = 480.0;
constexpr double kDeliverStartUs = 500.0;
constexpr double kDeliverWidthUs = 440.0;
constexpr double kDecideStartUs = 950.0;
constexpr double kDecideWidthUs = 50.0;

struct PhaseWindow {
  double start;
  double width;
};

PhaseWindow phase_window(trace::Event::Kind kind) {
  switch (kind) {
    case trace::Event::Kind::kSend: return {kSendStartUs, kSendWidthUs};
    case trace::Event::Kind::kDeliver: return {kDeliverStartUs, kDeliverWidthUs};
    case trace::Event::Kind::kDecide: return {kDecideStartUs, kDecideWidthUs};
    // Fault instants spread over the whole round window: drops/dups/
    // delays conceptually replace deliveries, crashes span both halves.
    case trace::Event::Kind::kFault: return {0.0, kRoundUs};
  }
  return {0.0, kRoundUs};
}

std::string event_name(const trace::Event& event) {
  switch (event.kind) {
    case trace::Event::Kind::kSend:
      if (event.peer.has_value()) return "send to p" + std::to_string(*event.peer);
      return "broadcast";
    case trace::Event::Kind::kDeliver:
      return "recv link " + std::to_string(event.link);
    case trace::Event::Kind::kDecide:
      return "decide " + event.payload;
    case trace::Event::Kind::kFault:
      return "fault: " + event.payload;
  }
  return "?";
}

void write_thread_name(JsonWriter& json, int tid, const std::string& name, int sort_index) {
  json.begin_object();
  json.field("name", "thread_name").field("ph", "M").field("pid", 0).field("tid", tid);
  json.key("args").begin_object();
  json.field("name", name);
  json.end_object();
  json.end_object();

  json.begin_object();
  json.field("name", "thread_sort_index").field("ph", "M").field("pid", 0).field("tid", tid);
  json.key("args").begin_object();
  json.field("sort_index", sort_index);
  json.end_object();
  json.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const trace::EventLog& log, const TraceMeta& meta) {
  int process_count = meta.process_count;
  int rounds = meta.rounds;
  for (const trace::Event& event : log.events()) {
    process_count = std::max(process_count, event.actor + 1);
    if (event.kind == trace::Event::Kind::kSend && event.peer.has_value()) {
      process_count = std::max(process_count, *event.peer + 1);
    }
    rounds = std::max(rounds, event.round);
  }

  // First pass: how many events share each (round, actor, phase) window,
  // so slices can split it evenly without overlapping.
  std::map<std::tuple<sim::Round, sim::ProcessIndex, int>, int> window_population;
  for (const trace::Event& event : log.events()) {
    ++window_population[{event.round, event.actor, static_cast<int>(event.kind)}];
  }

  JsonWriter json(os);
  json.begin_object();
  json.key("traceEvents").begin_array();

  json.begin_object();
  json.field("name", "process_name").field("ph", "M").field("pid", 0);
  json.field("tid", 0);
  json.key("args").begin_object();
  json.field("name", meta.title.empty() ? std::string("byzrename run") : meta.title);
  json.end_object();
  json.end_object();

  // The rounds track sits above the per-process tracks; the phase lane
  // (when labels were provided) sits above the rounds track.
  const int rounds_tid = process_count;
  const int phase_tid = process_count + 1;
  write_thread_name(json, rounds_tid, "rounds", -1);
  if (!meta.phase_labels.empty()) write_thread_name(json, phase_tid, "phase", -2);
  for (int i = 0; i < process_count; ++i) {
    // Built by append, not operator+(const char*, string&&): GCC 12's
    // -Wrestrict misfires on that overload under -O2 (PR 105651 family).
    std::string name = "p";
    name += std::to_string(i);
    if (static_cast<std::size_t>(i) < meta.byzantine.size() && meta.byzantine[static_cast<std::size_t>(i)]) {
      name += " [byz]";
    }
    write_thread_name(json, i, name, i);
  }

  for (int r = 1; r <= rounds; ++r) {
    json.begin_object();
    json.field("name", "round " + std::to_string(r))
        .field("ph", "X")
        .field("ts", (r - 1) * kRoundUs)
        .field("dur", kRoundUs)
        .field("pid", 0)
        .field("tid", rounds_tid)
        .field("cat", "round");
    json.end_object();
    if (static_cast<std::size_t>(r) <= meta.phase_labels.size()) {
      json.begin_object();
      json.field("name", meta.phase_labels[static_cast<std::size_t>(r - 1)])
          .field("ph", "X")
          .field("ts", (r - 1) * kRoundUs)
          .field("dur", kRoundUs)
          .field("pid", 0)
          .field("tid", phase_tid)
          .field("cat", "phase");
      json.end_object();
    }
  }

  // Counter tracks: one sample per round at the round's start, rendered
  // by the trace UI as stacked area charts under the slice tracks.
  if (meta.metrics != nullptr) {
    const auto& per_round = meta.metrics->per_round();
    for (std::size_t i = 0; i < per_round.size(); ++i) {
      const sim::RoundMetrics& m = per_round[i];
      const double ts = static_cast<double>(i) * kRoundUs;
      const auto counter = [&](const char* name, auto emit_args) {
        json.begin_object();
        json.field("name", name).field("ph", "C").field("ts", ts).field("pid", 0);
        json.key("args").begin_object();
        emit_args();
        json.end_object();
        json.end_object();
      };
      counter("messages", [&] {
        json.field("correct", m.correct_messages)
            .field("byzantine", m.messages - m.correct_messages);
      });
      counter("bits", [&] {
        json.field("correct", m.correct_bits).field("byzantine", m.bits - m.correct_bits);
      });
      counter("equivocating sends", [&] { json.field("sends", m.equivocating_sends); });
      if (m.injected_drops + m.injected_duplicates + m.injected_delays +
              m.injected_forgeries + m.injected_restarts >
          0) {
        counter("injected faults", [&] {
          json.field("drops", m.injected_drops)
              .field("dups", m.injected_duplicates)
              .field("delays", m.injected_delays);
          // Omitted when zero so pre-existing traces byte-match.
          if (m.injected_forgeries > 0) json.field("forgeries", m.injected_forgeries);
          if (m.injected_restarts > 0) json.field("restarts", m.injected_restarts);
        });
      }
    }
  }

  // Second pass: emit one complete ("X") slice per event; the next slot
  // counter walks each window left to right in log order.
  std::map<std::tuple<sim::Round, sim::ProcessIndex, int>, int> next_slot;
  for (const trace::Event& event : log.events()) {
    const auto window_key =
        std::make_tuple(event.round, event.actor, static_cast<int>(event.kind));
    const PhaseWindow window = phase_window(event.kind);
    const int population = window_population[window_key];
    const double slot_width = window.width / population;
    const int slot = next_slot[window_key]++;
    const double ts = (event.round - 1) * kRoundUs + window.start + slot * slot_width;

    const char* category = event.kind == trace::Event::Kind::kSend      ? "send"
                           : event.kind == trace::Event::Kind::kDeliver ? "deliver"
                           : event.kind == trace::Event::Kind::kFault   ? "fault"
                                                                        : "decide";
    json.begin_object();
    json.field("name", event_name(event));
    if (event.kind == trace::Event::Kind::kFault) {
      // Injector decisions are instants, not durations: they mark the
      // point on the affected track where a delivery was dropped,
      // duplicated, delayed, or lost to a crash.
      json.field("ph", "i").field("ts", ts).field("s", "t");
    } else {
      json.field("ph", "X").field("ts", ts).field("dur", std::max(slot_width * 0.95, 1.0));
    }
    json.field("pid", 0)
        .field("tid", event.actor)
        .field("cat", event.byzantine_actor ? std::string(category) + ",byzantine" : category);
    json.key("args").begin_object();
    json.field("round", event.round).field("payload", event.payload);
    if (event.byzantine_actor) json.field("byzantine", true);
    if (event.kind == trace::Event::Kind::kDeliver) json.field("link", event.link);
    if (event.kind == trace::Event::Kind::kFault && event.link >= 0) {
      json.field("link", event.link);
    }
    json.end_object();
    json.end_object();
  }

  json.end_array();
  json.field("displayTimeUnit", "ms");
  json.end_object();
  os << '\n';
  os.flush();
}

}  // namespace byzrename::obs
