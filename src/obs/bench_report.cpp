#include "obs/bench_report.h"

#include <filesystem>
#include <ostream>
#include <system_error>

#include "obs/json.h"
#include "obs/schema.h"

namespace byzrename::obs {

BenchReporter::BenchReporter(std::string bench_name, std::string out_dir)
    : bench_(std::move(bench_name)), sink_(out_, bench_) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return;
  path_ = out_dir + "/" + bench_ + ".jsonl";
  out_.open(path_, std::ios::trunc);
  if (out_.is_open()) telemetry_.add_sink(sink_);
}

core::ScenarioResult BenchReporter::run(core::ScenarioConfig config, std::string label) {
  config.telemetry = &telemetry_;
  config.telemetry_label = std::move(label);
  return core::run_scenario(config);
}

void BenchReporter::write_series(const std::string& label,
                                 const std::vector<std::pair<std::string, double>>& values) {
  if (!enabled()) return;
  JsonWriter json(out_);
  json.begin_object();
  json.field("schema", kSeriesSchema).field("bench", bench_).field("label", label);
  json.key("values").begin_object();
  for (const auto& [name, value] : values) json.field(name, value);
  json.end_object();
  json.end_object();
  out_ << '\n';
  out_.flush();
}

void BenchReporter::announce(std::ostream& os) const {
  if (enabled()) os << "\n[telemetry] run reports: " << path_ << "\n";
}

}  // namespace byzrename::obs
