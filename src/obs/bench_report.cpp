#include "obs/bench_report.h"

#include <filesystem>
#include <ostream>
#include <system_error>

#include "exp/campaign_io.h"
#include "obs/json.h"
#include "obs/schema.h"

namespace byzrename::obs {

namespace {

// A bench name carrying an explicit .json/.jsonl extension names the
// output file verbatim (the perf baseline lands at the repo root as
// BENCH_hotpath.json); the schema's `bench` field always drops it.
std::string strip_report_extension(std::string name) {
  if (name.ends_with(".jsonl")) name.resize(name.size() - 6);
  else if (name.ends_with(".json")) name.resize(name.size() - 5);
  return name;
}

}  // namespace

BenchReporter::BenchReporter(std::string bench_name, std::string out_dir)
    : bench_(strip_report_extension(bench_name)), sink_(out_, bench_, &write_mutex_) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return;
  const bool explicit_file = bench_name.size() != bench_.size();
  path_ = out_dir + "/" + (explicit_file ? bench_name : bench_ + ".jsonl");
  out_.open(path_, std::ios::trunc);
  if (out_.is_open()) telemetry_.add_sink(sink_);
}

core::ScenarioResult BenchReporter::run(core::ScenarioConfig config, std::string label) {
  // The shared sink buffers one run's rounds between start and end, so
  // whole scenarios are serialized; parallel throughput lives in
  // run_campaign(), which hands each worker a private sink.
  const std::lock_guard<std::mutex> lock(run_mutex_);
  config.telemetry = &telemetry_;
  config.telemetry_label = std::move(label);
  return core::run_scenario(config);
}

exp::CampaignResult BenchReporter::run_campaign(const exp::CampaignSpec& spec,
                                                exp::CampaignOptions options) {
  if (enabled()) {
    options.runs_out = &out_;
    options.runs_bench = bench_;
    options.runs_out_mutex = &write_mutex_;
  } else {
    options.runs_out = nullptr;
  }
  exp::CampaignResult result = exp::run_campaign(spec, options);
  if (enabled()) exp::write_campaign_cells(out_, spec, result);
  return result;
}

void BenchReporter::write_series(const std::string& label,
                                 const std::vector<std::pair<std::string, double>>& values) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(write_mutex_);
  JsonWriter json(out_);
  json.begin_object();
  json.field("schema", kSeriesSchema).field("bench", bench_).field("label", label);
  json.key("values").begin_object();
  for (const auto& [name, value] : values) json.field(name, value);
  json.end_object();
  json.end_object();
  out_ << '\n';
  out_.flush();
}

void BenchReporter::announce(std::ostream& os) const {
  if (enabled()) os << "\n[telemetry] run reports: " << path_ << "\n";
}

}  // namespace byzrename::obs
