#include "obs/http/exposition.h"

#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace byzrename::obs {

void ExpositionHub::write(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Writer& writer : writers_) writer(os);
}

namespace {

/// Reads one "Key:   12345 kB" line value from /proc/self/status;
/// returns 0 when absent (non-Linux, or the field is missing).
std::uint64_t proc_status_kb(const std::string& key) {
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key + ':', 0) != 0) continue;
    std::uint64_t value = 0;
    std::istringstream fields(line.substr(key.size() + 1));
    fields >> value;
    return value;
  }
  return 0;
}

}  // namespace

void write_process_metrics(std::ostream& os) {
  const std::uint64_t rss_kb = proc_status_kb("VmRSS");
  const std::uint64_t peak_kb = proc_status_kb("VmHWM");
  if (rss_kb > 0) {
    os << "# HELP process_resident_memory_bytes Resident set size.\n"
       << "# TYPE process_resident_memory_bytes gauge\n"
       << "process_resident_memory_bytes " << rss_kb * 1024 << '\n';
  }
  if (peak_kb > 0) {
    os << "# HELP process_resident_memory_peak_bytes Peak resident set size.\n"
       << "# TYPE process_resident_memory_peak_bytes gauge\n"
       << "process_resident_memory_peak_bytes " << peak_kb * 1024 << '\n';
  }
}

void mount_prometheus(HttpServer& server, const ExpositionHub& hub) {
  server.handle("/metrics", [&hub](const HttpRequest&) {
    HttpResponse response;
    std::ostringstream body;
    hub.write(body);
    response.body = body.str();
    return response;
  });
}

void mount_healthz(HttpServer& server) {
  server.handle("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "ok\n";
    return response;
  });
}

void mount_json(HttpServer& server, std::string path,
                std::function<void(std::ostream&)> writer) {
  server.handle(std::move(path), [writer = std::move(writer)](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    std::ostringstream body;
    writer(body);
    response.body = body.str();
    return response;
  });
}

}  // namespace byzrename::obs
