#include "obs/http/exposition.h"

#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#ifdef __linux__
#include <unistd.h>
#endif

#include "obs/http/buildinfo.h"
#include "obs/metrics_registry.h"

namespace byzrename::obs {

void ExpositionHub::write(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Writer& writer : writers_) writer(os);
}

namespace {

/// Reads one "Key:   12345 kB" line value from /proc/self/status;
/// returns 0 when absent (non-Linux, or the field is missing).
std::uint64_t proc_status_kb(const std::string& key) {
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key + ':', 0) != 0) continue;
    std::uint64_t value = 0;
    std::istringstream fields(line.substr(key.size() + 1));
    fields >> value;
    return value;
  }
  return 0;
}

/// Unix start time of this process in seconds, or a negative value when
/// it cannot be determined (non-Linux, unreadable procfs). Combines
/// /proc/self/stat field 22 (start ticks after boot; parsed after the
/// last ')' because the comm field may contain spaces and parentheses)
/// with /proc/stat's btime (boot epoch seconds).
double process_start_epoch_seconds() {
#ifdef __linux__
  std::ifstream self_stat("/proc/self/stat");
  if (!self_stat.is_open()) return -1.0;
  std::string stat_line;
  std::getline(self_stat, stat_line);
  const std::size_t comm_end = stat_line.rfind(')');
  if (comm_end == std::string::npos) return -1.0;
  std::istringstream fields(stat_line.substr(comm_end + 1));
  // Fields 3..21 precede starttime (field 22); field 2 was comm.
  std::string skip;
  for (int field = 3; field < 22; ++field) {
    if (!(fields >> skip)) return -1.0;
  }
  std::uint64_t start_ticks = 0;
  if (!(fields >> start_ticks)) return -1.0;

  std::ifstream proc_stat("/proc/stat");
  if (!proc_stat.is_open()) return -1.0;
  std::string line;
  std::int64_t boot_epoch = -1;
  while (std::getline(proc_stat, line)) {
    if (line.rfind("btime ", 0) != 0) continue;
    std::istringstream btime(line.substr(6));
    if (!(btime >> boot_epoch)) return -1.0;
    break;
  }
  if (boot_epoch < 0) return -1.0;

  const long ticks_per_second = ::sysconf(_SC_CLK_TCK);
  if (ticks_per_second <= 0) return -1.0;
  return static_cast<double>(boot_epoch) +
         static_cast<double>(start_ticks) / static_cast<double>(ticks_per_second);
#else
  return -1.0;
#endif
}

}  // namespace

void write_process_metrics(std::ostream& os) {
  const std::uint64_t rss_kb = proc_status_kb("VmRSS");
  const std::uint64_t peak_kb = proc_status_kb("VmHWM");
  if (rss_kb > 0) {
    os << "# HELP process_resident_memory_bytes Resident set size.\n"
       << "# TYPE process_resident_memory_bytes gauge\n"
       << "process_resident_memory_bytes " << rss_kb * 1024 << '\n';
  }
  if (peak_kb > 0) {
    os << "# HELP process_resident_memory_peak_bytes Peak resident set size.\n"
       << "# TYPE process_resident_memory_peak_bytes gauge\n"
       << "process_resident_memory_peak_bytes " << peak_kb * 1024 << '\n';
  }
  // Absent-not-zero, like the memory gauges: a start time of 0 would be
  // 1970 and an aggregator would happily compute a 55-year uptime.
  const double start_epoch = process_start_epoch_seconds();
  if (start_epoch >= 0.0) {
    os << "# HELP process_start_time_seconds Start time of the process since unix epoch.\n"
       << "# TYPE process_start_time_seconds gauge\n"
       << "process_start_time_seconds " << start_epoch << '\n';
  }
  // The /buildinfo identity as a value-1 info gauge, so every scrape
  // can be joined to the exact build that produced it without a second
  // HTTP round trip.
  const BuildInfo& info = build_info();
  os << "# HELP byzrename_build_info Build identity of the serving binary (value is always 1).\n"
     << "# TYPE byzrename_build_info gauge\n"
     << "byzrename_build_info{version=\"";
  write_prometheus_label_value(os, info.version);
  os << "\",git_sha=\"";
  write_prometheus_label_value(os, info.git_sha);
  os << "\",build_type=\"";
  write_prometheus_label_value(os, info.build_type);
  os << "\"} 1\n";
}

void mount_prometheus(HttpServer& server, const ExpositionHub& hub) {
  server.handle("/metrics", [&hub](const HttpRequest&) {
    HttpResponse response;
    std::ostringstream body;
    hub.write(body);
    response.body = body.str();
    return response;
  });
}

void mount_healthz(HttpServer& server) {
  server.handle("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "ok\n";
    return response;
  });
}

void mount_json(HttpServer& server, std::string path,
                std::function<void(std::ostream&)> writer) {
  server.handle(std::move(path), [writer = std::move(writer)](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    std::ostringstream body;
    writer(body);
    response.body = body.str();
    return response;
  });
}

}  // namespace byzrename::obs
