#ifndef BYZRENAME_OBS_HTTP_HTTP_SERVER_H
#define BYZRENAME_OBS_HTTP_HTTP_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace byzrename::obs {

/// One parsed request as handed to a handler. Only the request line is
/// interpreted: the target is the path with any query string stripped
/// (the query is preserved separately for handlers that want it).
struct HttpRequest {
  std::string method;  ///< "GET" or "HEAD" (anything else is rejected)
  std::string target;  ///< path component, e.g. "/metrics"
  std::string query;   ///< raw query string without the '?', may be empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Minimal dependency-free HTTP/1.1 exposition server: a blocking
/// accept loop on its own thread, poll-based so stop() takes effect
/// within one poll interval, serving registered exact-path GET/HEAD
/// handlers one connection at a time ("Connection: close" on every
/// response). Built for read-only observability endpoints — /metrics,
/// /healthz, /progress — where scrapes are small, infrequent, and must
/// never feed back into the observed computation: handlers run on the
/// server thread and must be safe against the threads that produce the
/// data they read (see ExpositionHub / ProgressTracker snapshots).
///
/// Binds the IPv4 loopback interface only: the telemetry plane is a
/// local observer, not a public service. This is the seam the future
/// byzrenamed daemon mounts its admission/session endpoints on; wider
/// binding belongs to that change, not this one.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path ("/metrics"). Must be called
  /// before start(); later registrations would race the server thread.
  void handle(std::string path, HttpHandler handler);

  /// Binds 127.0.0.1:@p port (0 selects an ephemeral port, readable via
  /// port()) and launches the accept thread. Throws std::runtime_error
  /// when the socket cannot be created, bound, or listened on.
  void start(std::uint16_t port);

  /// Stops the accept loop and joins the server thread. Idempotent;
  /// also invoked by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Port actually bound (resolves port 0 requests); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status), for idle-overhead accounting.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  std::vector<std::pair<std::string, HttpHandler>> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_HTTP_HTTP_SERVER_H
