#ifndef BYZRENAME_OBS_HTTP_HTTP_SERVER_H
#define BYZRENAME_OBS_HTTP_HTTP_SERVER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace byzrename::obs {

/// One parsed request as handed to a handler. The request line and the
/// headers the server itself needs (Content-Length, Content-Type) are
/// interpreted; the target is the path with any query string stripped
/// (the query is preserved separately for handlers that want it).
struct HttpRequest {
  std::string method;        ///< "GET", "HEAD", or "POST"
  std::string target;        ///< path component, e.g. "/metrics"
  std::string query;         ///< raw query string without the '?', may be empty
  std::string content_type;  ///< Content-Type header value, may be empty
  std::string body;          ///< request body (POST routes only)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  /// Extra response headers ("Retry-After" on 429s); Content-Type,
  /// Content-Length, and Connection are always emitted by the server.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Minimal dependency-free HTTP/1.1 server: a blocking accept loop on
/// its own thread, poll-based so stop() takes effect within one poll
/// interval, serving registered exact-path handlers one connection at a
/// time ("Connection: close" on every response). Originally built for
/// read-only observability endpoints (/metrics, /healthz, /progress);
/// the byzrenamed service daemon additionally mounts POST routes for
/// session/submit traffic, so requests with bodies are validated before
/// any handler runs:
///   405  method without a handler on the route (GET route hit by POST,
///        or any method other than GET/HEAD/POST)
///   411  POST without a Content-Length header
///   413  declared body larger than the route's max_body_bytes — the
///        body is never read, so an attacker cannot make the server
///        buffer it
///   415  Content-Type does not match the route's expected type
///   400  malformed request line, malformed Content-Length, or a body
///        shorter than its declared length
/// Handlers run on the server thread and must be safe against the
/// threads that produce the data they read (see ExpositionHub /
/// ProgressTracker snapshots, svc::Scheduler's internal mutex).
///
/// Binds the IPv4 loopback interface only: both the telemetry plane and
/// the renaming service are local by construction; wider binding would
/// need authentication this layer deliberately does not have.
class HttpServer {
 public:
  /// Per-route POST policy. The defaults fit JSON control-plane bodies;
  /// routes accepting large batches raise max_body_bytes explicitly.
  struct PostOptions {
    std::size_t max_body_bytes = 1 << 20;  ///< 413 above this
    /// Required Content-Type (compared up to any ';' parameter, e.g.
    /// "application/json; charset=utf-8" matches "application/json").
    /// Empty accepts any type.
    std::string content_type = "application/json";
  };

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a GET/HEAD handler for an exact path ("/metrics"). Must
  /// be called before start(); later registrations would race the
  /// server thread.
  void handle(std::string path, HttpHandler handler);

  /// Registers a POST handler for an exact path ("/v1/submit"). A path
  /// may carry both a GET and a POST handler. Must be called before
  /// start().
  void handle_post(std::string path, HttpHandler handler, PostOptions options);
  // Not a default argument: PostOptions' member initializers are only
  // parsed once HttpServer is complete, so `= {}` would not compile.
  void handle_post(std::string path, HttpHandler handler) {
    handle_post(std::move(path), std::move(handler), PostOptions{});
  }

  /// Binds 127.0.0.1:@p port (0 selects an ephemeral port, readable via
  /// port()) and launches the accept thread. Throws std::runtime_error
  /// when the socket cannot be created, bound, or listened on.
  void start(std::uint16_t port);

  /// Stops the accept loop and joins the server thread. Idempotent;
  /// also invoked by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Port actually bound (resolves port 0 requests); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status), for idle-overhead accounting.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string path;
    HttpHandler get;   ///< also serves HEAD
    HttpHandler post;
    PostOptions post_options;
  };

  Route& route_for(std::string path);
  void serve_loop();
  void handle_connection(int client_fd);

  std::vector<Route> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_HTTP_HTTP_SERVER_H
